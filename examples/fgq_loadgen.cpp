// Open-loop load generator for the fgq wire protocol.
//
//   fgq_loadgen --self-serve                         boot an in-process
//                                                    NetServer and sweep
//                                                    --qps x --shards
//   fgq_loadgen --connect=HOST:PORT --qps=500        drive a live server
//   fgq_loadgen --self-serve --json=BENCH_PR6_serve.json
//                                                    record the sweep in the
//                                                    BENCH_PR*.json schema
//
// Open-loop means requests are sent on a fixed schedule derived from the
// target QPS, and every latency is measured from the *intended* send time,
// not the actual one. A closed-loop generator (send, wait, send) lets a
// slow server throttle its own load and silently erases queueing delay —
// the coordinated-omission trap. Here a stalled server keeps accumulating
// scheduled requests, so p99/p999 honestly include the time requests spent
// waiting to be serviced.
//
// The query mix is fgq::ServeWorkloadMix() over ServeWorkloadDatabase():
// weighted free-connex lookups, the paper's Figure-1 query, a 2-path, and
// count traffic. Row-returning queries are sent as kEnumerateLimit with a
// small limit — the paper's constant-delay contract makes the first k
// answers O(k) after preprocessing, so per-request cost stays bounded and
// the measured latency is dominated by serving, not by streaming a full
// result set.
//
// Exit status is nonzero on any transport failure, protocol error, or
// unexpected remote error. Queue-full rejections (ResourceExhausted) are
// counted but are not failures: an overloaded open-loop run is *supposed*
// to shed load.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json_io.h"
#include "fgq/net/client.h"
#include "fgq/net/server.h"
#include "fgq/util/random.h"
#include "fgq/workload/generators.h"

using namespace fgq;
using Clock = std::chrono::steady_clock;

namespace {

struct Options {
  bool self_serve = false;
  std::string connect_host;
  uint16_t connect_port = 0;
  std::vector<double> qps = {200, 1000, 4000};
  std::vector<size_t> shards = {1, 2};
  size_t conns = 4;
  int duration_ms = 2000;
  int warmup_ms = 300;
  size_t tuples = 2000;
  uint64_t seed = 1;
  uint32_t limit = 32;
  std::string json_path;
};

/// One scheduled request: the wire request plus its intended send offset
/// from the connection's start instant. Precomputed before the clock
/// starts so the send loop does nothing but sleep_until + write.
struct Scheduled {
  net::Request req;
  int64_t intended_ns = 0;
  bool measured = true;  ///< False during warmup.
};

/// What one connection observed. Latencies are receive_time -
/// intended_send_time, post-warmup only.
struct ConnOutcome {
  std::vector<int64_t> latencies_ns;
  uint64_t received = 0;
  uint64_t rejected = 0;   ///< Remote ResourceExhausted (load shedding).
  uint64_t errors = 0;     ///< Any other remote error (unexpected).
  Status transport = Status::OK();
};

std::vector<Scheduled> BuildSchedule(const std::vector<ServeWorkloadQuery>& mix,
                                     double qps, int duration_ms,
                                     int warmup_ms, uint32_t limit,
                                     uint64_t seed) {
  double total_weight = 0;
  for (const auto& q : mix) total_weight += q.weight;
  const double interval_ns = 1e9 / qps;
  const auto n = static_cast<size_t>(qps * duration_ms / 1000.0);
  const int64_t warmup_ns = int64_t{warmup_ms} * 1000000;
  Rng rng(seed);
  std::vector<Scheduled> plan;
  plan.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double pick = rng.NextDouble() * total_weight;
    const ServeWorkloadQuery* q = &mix.back();
    for (const auto& cand : mix) {
      pick -= cand.weight;
      if (pick <= 0) {
        q = &cand;
        break;
      }
    }
    Scheduled s;
    s.req.id = i + 1;
    s.req.query = q->text;
    if (q->count) {
      s.req.verb = net::Verb::kCount;
    } else {
      s.req.verb = net::Verb::kEnumerateLimit;
      s.req.limit = limit;
    }
    s.intended_ns = static_cast<int64_t>(i * interval_ns);
    s.measured = s.intended_ns >= warmup_ns;
    plan.push_back(std::move(s));
  }
  return plan;
}

/// Runs one connection: a sender thread paces the schedule while this
/// thread blocks on responses (strict request order, so the i-th receive
/// answers the i-th send).
ConnOutcome RunConnection(const std::string& host, uint16_t port,
                          const std::vector<Scheduled>& plan) {
  ConnOutcome out;
  Result<std::unique_ptr<net::Client>> client = net::Client::Connect(host, port);
  if (!client.ok()) {
    out.transport = client.status();
    return out;
  }
  net::Client& c = **client;
  const Clock::time_point start = Clock::now();
  Status send_status = Status::OK();
  std::thread sender([&] {
    for (const Scheduled& s : plan) {
      std::this_thread::sleep_until(
          start + std::chrono::nanoseconds(s.intended_ns));
      send_status = c.Send(s.req);
      if (!send_status.ok()) return;
    }
  });
  for (const Scheduled& s : plan) {
    Result<net::Response> resp = c.Receive(s.req.verb);
    if (!resp.ok()) {
      out.transport = resp.status();
      break;
    }
    const int64_t latency =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - start).count() - s.intended_ns;
    ++out.received;
    if (!resp->ok()) {
      if (static_cast<StatusCode>(resp->status) ==
          StatusCode::kResourceExhausted) {
        ++out.rejected;
      } else {
        ++out.errors;
        std::fprintf(stderr, "loadgen: remote error on id %llu: %s\n",
                     static_cast<unsigned long long>(resp->id),
                     resp->text.c_str());
      }
    } else if (s.measured) {
      out.latencies_ns.push_back(latency);
    }
  }
  sender.join();
  if (out.transport.ok() && !send_status.ok()) out.transport = send_status;
  return out;
}

int64_t Percentile(const std::vector<int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  double rank = q * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(rank + 0.5)];
}

struct PointResult {
  double qps_target = 0;
  double qps_achieved = 0;
  uint64_t measured = 0;
  uint64_t rejected = 0;
  uint64_t errors = 0;
  bool transport_failed = false;
  int64_t p50 = 0, p99 = 0, p999 = 0, mean = 0, max = 0;
};

/// One (server, qps) measurement across `conns` connections. The target
/// rate is split evenly; each connection gets its own deterministic
/// schedule (seed + index) so reruns are comparable.
PointResult MeasurePoint(const Options& opt, const std::string& host,
                         uint16_t port, double qps,
                         const std::vector<ServeWorkloadQuery>& mix) {
  PointResult pr;
  pr.qps_target = qps;
  std::vector<std::vector<Scheduled>> plans;
  for (size_t i = 0; i < opt.conns; ++i) {
    plans.push_back(BuildSchedule(mix, qps / static_cast<double>(opt.conns),
                                  opt.duration_ms, opt.warmup_ms, opt.limit,
                                  opt.seed + 100 * (i + 1)));
  }
  std::vector<ConnOutcome> outcomes(opt.conns);
  const Clock::time_point t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    for (size_t i = 0; i < opt.conns; ++i) {
      threads.emplace_back([&, i] {
        outcomes[i] = RunConnection(host, port, plans[i]);
      });
    }
    for (auto& t : threads) t.join();
  }
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<int64_t> all;
  uint64_t received = 0;
  for (const ConnOutcome& o : outcomes) {
    all.insert(all.end(), o.latencies_ns.begin(), o.latencies_ns.end());
    received += o.received;
    pr.rejected += o.rejected;
    pr.errors += o.errors;
    if (!o.transport.ok()) {
      pr.transport_failed = true;
      std::fprintf(stderr, "loadgen: transport failure: %s\n",
                   o.transport.ToString().c_str());
    }
  }
  std::sort(all.begin(), all.end());
  pr.measured = all.size();
  pr.qps_achieved = elapsed_s > 0 ? static_cast<double>(received) / elapsed_s
                                  : 0;
  pr.p50 = Percentile(all, 0.50);
  pr.p99 = Percentile(all, 0.99);
  pr.p999 = Percentile(all, 0.999);
  pr.max = all.empty() ? 0 : all.back();
  if (!all.empty()) {
    long double sum = 0;
    for (int64_t v : all) sum += static_cast<long double>(v);
    pr.mean = static_cast<int64_t>(sum / static_cast<long double>(all.size()));
  }
  return pr;
}

void PrintPoint(const std::string& label, const PointResult& pr) {
  std::printf(
      "%-28s target %8.0f qps  achieved %8.0f  p50 %8.1fus  p99 %8.1fus  "
      "p999 %8.1fus  rejected %llu  errors %llu\n",
      label.c_str(), pr.qps_target, pr.qps_achieved,
      static_cast<double>(pr.p50) / 1e3, static_cast<double>(pr.p99) / 1e3,
      static_cast<double>(pr.p999) / 1e3,
      static_cast<unsigned long long>(pr.rejected),
      static_cast<unsigned long long>(pr.errors));
  std::fflush(stdout);
}

benchjson::Entry ToEntry(const std::string& name, const Options& opt,
                         size_t shards, const PointResult& pr) {
  benchjson::Entry e;
  e.name = name;
  e.real_ns = static_cast<double>(pr.mean);
  e.cpu_ns = 0;
  e.iterations = static_cast<int64_t>(pr.measured);
  e.counters = {
      {"qps_target", pr.qps_target},
      {"qps_achieved", pr.qps_achieved},
      {"p50_ns", static_cast<double>(pr.p50)},
      {"p99_ns", static_cast<double>(pr.p99)},
      {"p999_ns", static_cast<double>(pr.p999)},
      {"max_ns", static_cast<double>(pr.max)},
      {"conns", static_cast<double>(opt.conns)},
      {"shards", static_cast<double>(shards)},
      {"rejected", static_cast<double>(pr.rejected)},
      {"errors", static_cast<double>(pr.errors)},
  };
  return e;
}

std::vector<double> ParseDoubles(const std::string& s) {
  std::vector<double> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::stod(s.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: fgq_loadgen (--self-serve | --connect=HOST:PORT)\n"
      "  --qps=L          comma list of target rates (default 200,1000,4000)\n"
      "  --shards=L       comma list of shard counts, self-serve only "
      "(default 1,2)\n"
      "  --conns=N        client connections per point (default 4)\n"
      "  --duration-ms=N  measured window per point (default 2000)\n"
      "  --warmup-ms=N    leading unmeasured slice (default 300)\n"
      "  --tuples=N       rows per workload relation (default 2000)\n"
      "  --limit=N        kEnumerateLimit row cap (default 32)\n"
      "  --seed=N         schedule + database seed (default 1)\n"
      "  --json=PATH      write the sweep in the BENCH_PR*.json schema\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    const char* v;
    if (arg == "--self-serve") {
      opt.self_serve = true;
    } else if ((v = val("--connect="))) {
      const char* colon = std::strrchr(v, ':');
      if (!colon) return Usage();
      opt.connect_host.assign(v, colon - v);
      opt.connect_port = static_cast<uint16_t>(std::atoi(colon + 1));
    } else if ((v = val("--qps="))) {
      opt.qps = ParseDoubles(v);
    } else if ((v = val("--shards="))) {
      opt.shards.clear();
      for (double d : ParseDoubles(v)) opt.shards.push_back(static_cast<size_t>(d));
    } else if ((v = val("--conns="))) {
      opt.conns = static_cast<size_t>(std::atoi(v));
    } else if ((v = val("--duration-ms="))) {
      opt.duration_ms = std::atoi(v);
    } else if ((v = val("--warmup-ms="))) {
      opt.warmup_ms = std::atoi(v);
    } else if ((v = val("--tuples="))) {
      opt.tuples = static_cast<size_t>(std::atoll(v));
    } else if ((v = val("--limit="))) {
      opt.limit = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--seed="))) {
      opt.seed = static_cast<uint64_t>(std::atoll(v));
    } else if ((v = val("--json="))) {
      opt.json_path = v;
    } else {
      return Usage();
    }
  }
  if (opt.self_serve == !opt.connect_host.empty()) return Usage();
  if (opt.qps.empty() || opt.conns == 0 || opt.duration_ms <= 0) return Usage();

  const std::vector<ServeWorkloadQuery> mix = ServeWorkloadMix();
  std::vector<benchjson::Entry> entries;
  bool failed = false;

  if (!opt.connect_host.empty()) {
    for (double qps : opt.qps) {
      PointResult pr =
          MeasurePoint(opt, opt.connect_host, opt.connect_port, qps, mix);
      char label[64];
      std::snprintf(label, sizeof label, "serve/external/qps:%.0f", qps);
      PrintPoint(label, pr);
      entries.push_back(ToEntry(label, opt, 0, pr));
      failed |= pr.transport_failed || pr.errors > 0;
    }
  } else {
    const Database db = ServeWorkloadDatabase(opt.tuples, opt.seed);
    for (size_t shards : opt.shards) {
      net::NetServerOptions sopt;
      sopt.num_shards = shards;
      Result<std::unique_ptr<net::NetServer>> server =
          net::NetServer::Start(&db, sopt);
      if (!server.ok()) {
        std::fprintf(stderr, "loadgen: cannot start server: %s\n",
                     server.status().ToString().c_str());
        return 1;
      }
      // One server instance per shard count, reused across the QPS sweep:
      // after the first point the plan cache is warm, which is the steady
      // state a latency curve should describe.
      for (double qps : opt.qps) {
        PointResult pr =
            MeasurePoint(opt, "127.0.0.1", (*server)->port(), qps, mix);
        char label[64];
        std::snprintf(label, sizeof label, "serve/shards:%zu/qps:%.0f",
                      shards, qps);
        PrintPoint(label, pr);
        entries.push_back(ToEntry(label, opt, shards, pr));
        failed |= pr.transport_failed || pr.errors > 0;
      }
      (*server)->Stop();
      const net::NetServerStats stats = (*server)->stats();
      if (stats.protocol_errors != 0) {
        std::fprintf(stderr, "loadgen: server saw %llu protocol errors\n",
                     static_cast<unsigned long long>(stats.protocol_errors));
        failed = true;
      }
    }
  }

  if (!opt.json_path.empty()) {
    if (!benchjson::WriteJson(opt.json_path, argv[0], entries)) {
      std::fprintf(stderr, "loadgen: cannot write '%s'\n",
                   opt.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu entries)\n", opt.json_path.c_str(),
                entries.size());
  }
  return failed ? 1 : 0;
}
