// A line-protocol front end over fgq::QueryService.
//
// Where query_shell runs each query inline, fgq_serve pushes every request
// through the full serving stack: classification, admission control, plan
// caching, deadlines, and metrics. Repeating a query hits the plan cache;
// `\stats` shows the counters; `deadline` makes hopeless cyclic queries
// fail fast instead of hanging the session.
//
//   ./build/examples/fgq_serve [--trace=out.json] < script.txt
//
// With --listen=PORT the binary instead boots the fgq::net socket server
// over the synthetic serving workload (see fgq_loadgen) and runs until
// SIGINT/SIGTERM, then drains gracefully and dumps stats:
//
//   ./build/examples/fgq_serve --listen=7411 --shards=2 --tuples=2000 &
//   ./build/examples/fgq_loadgen --connect=127.0.0.1:7411 --qps=500
//
// Commands:
//   fact <Rel> <v1> <v2> ...   add a fact (bumps the db version,
//                              invalidating cached plans)
//   load <path>                load a fact file
//   query <rule>               evaluate, e.g. query Q(x) :- R(x, y).
//   count <rule>               count answers
//   explain <rule>             classification verdict + witness + theorem
//                              (no execution)
//   trace <rule>               evaluate through the service with a span
//                              trace attached; prints the per-phase
//                              breakdown and appends the spans to the
//                              --trace file (if given)
//   deadline <ms>              per-request deadline for later queries
//                              (0 = none)
//   \stats                     dump metrics + cache occupancy
//   help / quit
//
// With --trace=PATH, every `trace` request's spans are collected and the
// merged Chrome trace_event JSON is written to PATH on exit — load it at
// chrome://tracing or https://ui.perfetto.dev.

#include <chrono>
#include <csignal>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "fgq/db/loader.h"
#include "fgq/net/server.h"
#include "fgq/query/parser.h"
#include "fgq/serve/query_service.h"
#include "fgq/trace/explain.h"
#include "fgq/trace/trace.h"
#include "fgq/workload/generators.h"

using namespace fgq;

namespace {

void PrintTuple(const Tuple& t, const Dictionary& dict) {
  std::cout << "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i) std::cout << ", ";
    if (t[i] >= 0 && static_cast<size_t>(t[i]) < dict.size()) {
      std::cout << dict.Lookup(t[i]);
    } else {
      std::cout << t[i];
    }
  }
  std::cout << ")";
}

void PrintResponse(const ServiceResponse& resp, ServeVerb verb,
                   const Dictionary& dict) {
  std::cout << "  class: " << QueryClassName(resp.classification)
            << (resp.cache_hit ? " [cache hit]" : " [cache miss]") << "\n";
  if (!resp.status.ok()) {
    std::cout << "  error: " << resp.status << "\n";
    return;
  }
  if (verb == ServeVerb::kCount) {
    std::cout << "  |phi(D)| = " << resp.count << "\n";
    return;
  }
  std::cout << "  engine: " << resp.algorithm << ", "
            << resp.answers->NumTuples() << " answers\n";
  const size_t limit = 20;
  for (size_t i = 0; i < std::min(limit, resp.answers->NumTuples()); ++i) {
    std::cout << "    ";
    PrintTuple(resp.answers->Row(i).ToTuple(), dict);
    std::cout << "\n";
  }
  if (resp.answers->NumTuples() > limit) std::cout << "    ...\n";
}

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

/// --listen mode: socket server over the canonical serving workload.
/// `fact_file` (from --db=PATH) substitutes a user database for the
/// synthetic one.
int RunNetServer(uint16_t port, size_t shards, size_t tuples,
                 const std::string& fact_file) {
  Database db;
  if (fact_file.empty()) {
    db = ServeWorkloadDatabase(tuples, /*seed=*/1);
  } else {
    Dictionary dict;
    Status st = LoadFactsFromFile(fact_file, &db, &dict);
    if (!st.ok()) {
      std::cerr << "fgq_serve: " << st << "\n";
      return 2;
    }
  }
  net::NetServerOptions opts;
  opts.port = port;
  opts.num_shards = shards;
  Result<std::unique_ptr<net::NetServer>> server =
      net::NetServer::Start(&db, opts);
  if (!server.ok()) {
    std::cerr << "fgq_serve: " << server.status() << "\n";
    return 2;
  }
  std::cout << "fgq_serve: listening on " << opts.host << ":"
            << (*server)->port() << " with " << (*server)->num_shards()
            << " shard(s)\n"
            << std::flush;
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  (*server)->Stop();
  std::cout << (*server)->StatsDump();
  return 0;
}

std::string Indent(const std::string& block) {
  std::istringstream in(block);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) out << "  " << line << "\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string fact_file;
  bool listen = false;
  uint16_t listen_port = 0;
  size_t shards = 1;
  size_t tuples = 2000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--listen=", 0) == 0) {
      listen = true;
      listen_port = static_cast<uint16_t>(std::stoi(arg.substr(9)));
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = static_cast<size_t>(std::stoull(arg.substr(9)));
    } else if (arg.rfind("--tuples=", 0) == 0) {
      tuples = static_cast<size_t>(std::stoull(arg.substr(9)));
    } else if (arg.rfind("--db=", 0) == 0) {
      fact_file = arg.substr(5);
    } else {
      std::cerr << "unknown flag '" << arg
                << "' (try --trace=out.json or --listen=PORT "
                   "[--shards=N] [--tuples=N] [--db=facts.txt])\n";
      return 2;
    }
  }
  if (listen) return RunNetServer(listen_port, shards, tuples, fact_file);

  Database db;
  Dictionary dict;
  ServiceOptions opts;
  opts.num_workers = 2;
  QueryService service(&db, opts);
  // One long-lived sink for all `trace` verbs of the session; flushed to
  // --trace=PATH on exit. (Per-request isolation is about correctness of
  // nesting — each request still runs under its own serve.request span.)
  TraceContext session_trace;
  bool traced_any = false;
  std::chrono::milliseconds deadline{0};
  std::string line;
  std::cout << "fgq serve — 'help' for commands\n";
  while (std::getline(std::cin, line)) {
    std::istringstream ls(line);
    std::string cmd;
    if (!(ls >> cmd) || cmd[0] == '#') continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::cout << "fact <Rel> <v>... | load <path> | query <rule> | "
                   "count <rule> | explain <rule> | trace <rule> | "
                   "deadline <ms> | \\stats | quit\n";
      continue;
    }
    if (cmd == "\\stats") {
      std::cout << service.StatsDump();
      continue;
    }
    std::string rest;
    std::getline(ls, rest);
    if (cmd == "fact") {
      // A mutation: the db version bump invalidates every cached plan.
      Status st = LoadFactsFromString(rest, &db, &dict, "<stdin>");
      if (!st.ok()) std::cout << "  " << st << "\n";
      continue;
    }
    if (cmd == "load") {
      std::istringstream rs(rest);
      std::string path;
      rs >> path;
      Status st = LoadFactsFromFile(path, &db, &dict);
      if (!st.ok()) std::cout << "  " << st << "\n";
      continue;
    }
    if (cmd == "deadline") {
      deadline = std::chrono::milliseconds(std::stoll(rest));
      std::cout << "  deadline: " << deadline.count() << " ms\n";
      continue;
    }
    if (cmd == "explain") {
      auto q = ParseConjunctiveQuery(rest);
      if (!q.ok()) {
        std::cout << "  " << q.status() << "\n";
        continue;
      }
      Result<Explanation> ex = Explain(*q, db);
      if (!ex.ok()) {
        std::cout << "  " << ex.status() << "\n";
        continue;
      }
      std::cout << Indent(ex->Text());
      continue;
    }
    if (cmd == "query" || cmd == "count" || cmd == "trace") {
      auto q = ParseConjunctiveQuery(rest);
      if (!q.ok()) {
        std::cout << "  " << q.status() << "\n";
        continue;
      }
      const bool traced = cmd == "trace";
      const size_t trace_mark = session_trace.events().size();
      ServiceRequest req;
      req.query = std::move(q).value();
      req.verb = cmd == "count" ? ServeVerb::kCount : ServeVerb::kRows;
      req.timeout = deadline;
      if (traced) {
        req.trace = &session_trace;
        traced_any = true;
      }
      ServiceResponse resp = service.Submit(std::move(req)).get();
      PrintResponse(resp, cmd == "count" ? ServeVerb::kCount : ServeVerb::kRows,
                    dict);
      if (traced) std::cout << Indent(session_trace.RenderText(trace_mark));
      continue;
    }
    std::cout << "  unknown command '" << cmd << "' — try 'help'\n";
  }
  if (!trace_path.empty() && traced_any) {
    Status st = session_trace.WriteChromeTrace(trace_path);
    if (st.ok()) {
      std::cout << "trace written to " << trace_path << "\n";
    } else {
      std::cerr << st << "\n";
    }
  }
  return 0;
}
