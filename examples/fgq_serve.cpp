// A line-protocol front end over fgq::QueryService.
//
// Where query_shell runs each query inline, fgq_serve pushes every request
// through the full serving stack: classification, admission control, plan
// caching, deadlines, and metrics. Repeating a query hits the plan cache;
// `\stats` shows the counters; `deadline` makes hopeless cyclic queries
// fail fast instead of hanging the session.
//
//   ./build/examples/fgq_serve < script.txt
//
// Commands:
//   fact <Rel> <v1> <v2> ...   add a fact (bumps the db version,
//                              invalidating cached plans)
//   load <path>                load a fact file
//   query <rule>               evaluate, e.g. query Q(x) :- R(x, y).
//   count <rule>               count answers
//   deadline <ms>              per-request deadline for later queries
//                              (0 = none)
//   \stats                     dump metrics + cache occupancy
//   help / quit

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>

#include "fgq/db/loader.h"
#include "fgq/query/parser.h"
#include "fgq/serve/query_service.h"

using namespace fgq;

namespace {

void PrintTuple(const Tuple& t, const Dictionary& dict) {
  std::cout << "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i) std::cout << ", ";
    if (t[i] >= 0 && static_cast<size_t>(t[i]) < dict.size()) {
      std::cout << dict.Lookup(t[i]);
    } else {
      std::cout << t[i];
    }
  }
  std::cout << ")";
}

void PrintResponse(const ServiceResponse& resp, ServeVerb verb,
                   const Dictionary& dict) {
  std::cout << "  class: " << QueryClassName(resp.classification)
            << (resp.cache_hit ? " [cache hit]" : " [cache miss]") << "\n";
  if (!resp.status.ok()) {
    std::cout << "  error: " << resp.status << "\n";
    return;
  }
  if (verb == ServeVerb::kCount) {
    std::cout << "  |phi(D)| = " << resp.count << "\n";
    return;
  }
  std::cout << "  engine: " << resp.algorithm << ", "
            << resp.answers->NumTuples() << " answers\n";
  const size_t limit = 20;
  for (size_t i = 0; i < std::min(limit, resp.answers->NumTuples()); ++i) {
    std::cout << "    ";
    PrintTuple(resp.answers->Row(i).ToTuple(), dict);
    std::cout << "\n";
  }
  if (resp.answers->NumTuples() > limit) std::cout << "    ...\n";
}

}  // namespace

int main() {
  Database db;
  Dictionary dict;
  ServiceOptions opts;
  opts.num_workers = 2;
  QueryService service(&db, opts);
  std::chrono::milliseconds deadline{0};
  std::string line;
  std::cout << "fgq serve — 'help' for commands\n";
  while (std::getline(std::cin, line)) {
    std::istringstream ls(line);
    std::string cmd;
    if (!(ls >> cmd) || cmd[0] == '#') continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::cout << "fact <Rel> <v>... | load <path> | query <rule> | "
                   "count <rule> | deadline <ms> | \\stats | quit\n";
      continue;
    }
    if (cmd == "\\stats") {
      std::cout << service.StatsDump();
      continue;
    }
    std::string rest;
    std::getline(ls, rest);
    if (cmd == "fact") {
      // A mutation: the db version bump invalidates every cached plan.
      Status st = LoadFactsFromString(rest, &db, &dict, "<stdin>");
      if (!st.ok()) std::cout << "  " << st << "\n";
      continue;
    }
    if (cmd == "load") {
      std::istringstream rs(rest);
      std::string path;
      rs >> path;
      Status st = LoadFactsFromFile(path, &db, &dict);
      if (!st.ok()) std::cout << "  " << st << "\n";
      continue;
    }
    if (cmd == "deadline") {
      deadline = std::chrono::milliseconds(std::stoll(rest));
      std::cout << "  deadline: " << deadline.count() << " ms\n";
      continue;
    }
    if (cmd == "query" || cmd == "count") {
      auto q = ParseConjunctiveQuery(rest);
      if (!q.ok()) {
        std::cout << "  " << q.status() << "\n";
        continue;
      }
      ServiceRequest req;
      req.query = std::move(q).value();
      req.verb = cmd == "count" ? ServeVerb::kCount : ServeVerb::kRows;
      req.timeout = deadline;
      ServiceResponse resp = service.Call(std::move(req));
      PrintResponse(resp, cmd == "count" ? ServeVerb::kCount : ServeVerb::kRows,
                    dict);
      continue;
    }
    std::cout << "  unknown command '" << cmd << "' — try 'help'\n";
  }
  return 0;
}
