// Quickstart: the fgq public API in one file.
//
// Builds a small database, parses conjunctive queries, checks the
// structural properties the paper's dichotomies hinge on (acyclicity,
// free-connexity, quantified star size), and runs the three core engines:
// Yannakakis evaluation, constant-delay enumeration, and the counting DP.
//
//   ./build/examples/quickstart

#include <iostream>

#include "fgq/count/acq_count.h"
#include "fgq/db/loader.h"
#include "fgq/eval/enumerate.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/hypergraph/star_size.h"
#include "fgq/query/parser.h"

using namespace fgq;

int main() {
  // 1. Load a database from text. Strings are dictionary-encoded.
  Database db;
  Dictionary dict;
  Status st = LoadFactsFromString(
      "# follows(a, b): a follows b          likes(a, p): a likes post p\n"
      "Follows alice bob\n"
      "Follows bob carol\n"
      "Follows carol dave\n"
      "Follows alice carol\n"
      "Likes bob post1\n"
      "Likes carol post1\n"
      "Likes carol post2\n"
      "Likes dave post2\n",
      &db, &dict);
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "Database: " << db.ToString(4) << "\n\n";

  // 2. Parse a conjunctive query: the friends I follow who liked any
  // post. This one is free-connex (the head pair lives inside the
  // Follows atom), so every engine below applies.
  auto query = ParseConjunctiveQuery(
      "Q(me, friend) :- Follows(me, friend), Likes(friend, post).");
  if (!query.ok()) {
    std::cerr << query.status() << "\n";
    return 1;
  }
  std::cout << "Query: " << query->ToString() << "\n";

  // 3. Structural analysis (Section 4 of the paper).
  std::cout << "  acyclic:       " << std::boolalpha << IsAcyclicQuery(*query)
            << "\n"
            << "  free-connex:   " << IsFreeConnex(*query) << "\n"
            << "  star size:     " << QuantifiedStarSize(*query) << "\n\n";

  // 4. Evaluate with Yannakakis (Theorem 4.2).
  auto answers = EvaluateYannakakis(*query, db);
  if (!answers.ok()) {
    std::cerr << answers.status() << "\n";
    return 1;
  }
  std::cout << "phi(D) has " << answers->NumTuples() << " answers:\n";
  for (size_t i = 0; i < answers->NumTuples(); ++i) {
    std::cout << "  (" << dict.Lookup(answers->Row(i)[0]) << ", "
              << dict.Lookup(answers->Row(i)[1]) << ")\n";
  }

  // 5. Enumerate the same answers with constant delay (Theorem 4.6):
  // linear preprocessing, then data-independent work per answer.
  auto enumerator = MakeConstantDelayEnumerator(*query, db);
  if (!enumerator.ok()) {
    std::cerr << enumerator.status() << "\n";
    return 1;
  }
  std::cout << "\nConstant-delay enumeration:\n";
  Tuple t;
  while ((*enumerator)->Next(&t)) {
    std::cout << "  (" << dict.Lookup(t[0]) << ", " << dict.Lookup(t[1])
              << ")\n";
  }

  // 6. Count without enumerating (Theorem 4.21 / 4.28).
  auto count = CountAcq(*query, db);
  if (!count.ok()) {
    std::cerr << count.status() << "\n";
    return 1;
  }
  std::cout << "\n|phi(D)| = " << *count << "\n";

  // 7. The matrix-shaped variant — posts liked by someone I follow — is
  // acyclic but NOT free-connex (its star size is 2). The constant-delay
  // engine rejects it with Theorem 4.8's explanation, yet the counting
  // engine still handles it through the star-size pipeline.
  auto pi = ParseConjunctiveQuery(
      "Reach(me, post) :- Follows(me, friend), Likes(friend, post).");
  std::cout << "\nMatrix-shaped query: " << pi->ToString() << "\n"
            << "  free-connex: " << IsFreeConnex(*pi)
            << ", star size: " << QuantifiedStarSize(*pi) << "\n";
  auto rejected = MakeConstantDelayEnumerator(*pi, db);
  std::cout << "  constant-delay engine says: " << rejected.status() << "\n";
  std::cout << "  counting engine still works: |Reach(D)| = "
            << *CountAcq(*pi, db) << "\n";
  return 0;
}
