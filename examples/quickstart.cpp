// Quickstart: the fgq public API in one file.
//
// Builds a small database, parses conjunctive queries, checks the
// structural properties the paper's dichotomies hinge on (acyclicity,
// free-connexity, quantified star size), and runs everything through the
// fgq::Engine facade — it classifies each query and dispatches to the
// right algorithm (Yannakakis, constant-delay enumeration, counting DP,
// witness elimination, backtracking).
//
//   ./build/examples/quickstart

#include <iostream>

#include "fgq/db/loader.h"
#include "fgq/eval/engine.h"
#include "fgq/hypergraph/star_size.h"
#include "fgq/query/parser.h"

using namespace fgq;

int main() {
  // 1. Load a database from text. Strings are dictionary-encoded.
  Database db;
  Dictionary dict;
  Status st = LoadFactsFromString(
      "# follows(a, b): a follows b          likes(a, p): a likes post p\n"
      "Follows alice bob\n"
      "Follows bob carol\n"
      "Follows carol dave\n"
      "Follows alice carol\n"
      "Likes bob post1\n"
      "Likes carol post1\n"
      "Likes carol post2\n"
      "Likes dave post2\n",
      &db, &dict);
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "Database: " << db.ToString(4) << "\n\n";

  // 2. Parse a conjunctive query: the friends I follow who liked any
  // post. This one is free-connex (the head pair lives inside the
  // Follows atom), so the strongest guarantees apply.
  auto query = ParseConjunctiveQuery(
      "Q(me, friend) :- Follows(me, friend), Likes(friend, post).");
  if (!query.ok()) {
    std::cerr << query.status() << "\n";
    return 1;
  }
  std::cout << "Query: " << query->ToString() << "\n";

  // 3. An Engine carries the execution options (thread count, morsel
  // size) and a shared thread pool; the default is serial. One engine
  // serves any number of queries.
  Engine engine;
  std::cout << "  class:       " << QueryClassName(Engine::Classify(*query))
            << "\n"
            << "  star size:   " << QuantifiedStarSize(*query) << "\n\n";

  // 4. Execute: the engine picks the algorithm from the classification
  // and reports which one ran.
  auto result = engine.Run(ExecRequest(*query, db));
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "phi(D) via " << result->algorithm << ", "
            << result->NumAnswers() << " answers:\n";
  for (size_t i = 0; i < result->answers.NumTuples(); ++i) {
    std::cout << "  (" << dict.Lookup(result->answers.Row(i)[0]) << ", "
              << dict.Lookup(result->answers.Row(i)[1]) << ")\n";
  }

  // 5. Stream the same answers. For this free-connex query the engine
  // hands back the Theorem 4.6 constant-delay enumerator: linear
  // preprocessing, then data-independent work per answer.
  auto enumerator = engine.Enumerate(*query, db);
  if (!enumerator.ok()) {
    std::cerr << enumerator.status() << "\n";
    return 1;
  }
  std::cout << "\nConstant-delay enumeration:\n";
  Tuple t;
  while ((*enumerator)->Next(&t)) {
    std::cout << "  (" << dict.Lookup(t[0]) << ", " << dict.Lookup(t[1])
              << ")\n";
  }

  // 6. Count without enumerating (Theorem 4.21 / 4.28).
  auto count = engine.Count(*query, db);
  if (!count.ok()) {
    std::cerr << count.status() << "\n";
    return 1;
  }
  std::cout << "\n|phi(D)| = " << *count << "\n";

  // 7. The matrix-shaped variant — posts liked by someone I follow — is
  // acyclic but NOT free-connex (its star size is 2). The engine
  // classifies it as general-acyclic and falls back to full Yannakakis,
  // while counting still runs in the star-size pipeline.
  auto pi = ParseConjunctiveQuery(
      "Reach(me, post) :- Follows(me, friend), Likes(friend, post).");
  std::cout << "\nMatrix-shaped query: " << pi->ToString() << "\n"
            << "  class: " << QueryClassName(Engine::Classify(*pi))
            << ", star size: " << QuantifiedStarSize(*pi) << "\n";
  auto reach = engine.Run(ExecRequest(*pi, db));
  std::cout << "  engine ran " << reach->algorithm << ": |Reach(D)| = "
            << reach->NumAnswers() << "\n";
  std::cout << "  counting engine agrees: |Reach(D)| = "
            << *engine.Count(*pi, db) << "\n";

  // 8. The same engine parallelized: ExecOptions plumb a work-stealing
  // pool through preparation, semijoin sweeps, and index builds. Results
  // are identical to serial execution.
  Engine parallel(ExecOptions::Parallel(4));
  auto par = parallel.Run(ExecRequest(*query, db));
  std::cout << "\nWith 4 threads: " << par->NumAnswers()
            << " answers (same as serial: " << std::boolalpha
            << (par->NumAnswers() == result->NumAnswers()) << ")\n";
  return 0;
}
