// Differential fuzzing driver (src/fgq/check/).
//
// Runs a deterministic seed range through every evaluation path in the
// library and diffs each against the brute-force reference. Exits 0 on
// zero mismatches, 1 otherwise — this is the binary the CI sanitizer jobs
// run with --seeds=500.
//
//   fuzz_check [--seeds=N] [--first-seed=S] [--classes=a,b,...]
//              [--no-shrink] [--regress-dir=DIR] [--no-service]
//              [--heavy-dup=P] [--net] [--net-frames=N]
//
//   --seeds=N        total cases (cycling through the classes). Default 64.
//   --first-seed=S   first seed of the range. Default 0.
//   --classes=...    comma-separated FuzzClassName list. Default: all.
//   --no-shrink      report raw failures without shrinking.
//   --regress-dir=D  write shrunk failures as .fgqr files under D.
//   --no-service     skip the QueryService paths (faster under TSan).
//   --heavy-dup=P    probability of key-collapsed (all-duplicate-key)
//                    relations, the open-addressing worst case. Default 0.15.
//   --net            also run every case through an fgq::net loopback
//                    server (rows/count/enumerate-limit over a real socket).
//   --net-frames=N   run N iterations of the wire-protocol frame fuzz
//                    (mutated/garbage frames must never crash the decoders)
//                    before the differential seeds.
//
// Reproduce a single failure with --seeds=1 --first-seed=S --classes=C.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fgq/check/check.h"
#include "fgq/check/net_fuzz.h"

namespace {

bool ParseSize(const char* s, size_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<size_t>(v);
  return true;
}

bool ParseProb(const char* s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || v < 0.0 || v > 1.0) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fgq::CheckOptions opt;
  opt.num_seeds = 64;
  size_t net_frames = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    size_t n = 0;
    if (arg.rfind("--seeds=", 0) == 0 && ParseSize(value("--seeds="), &n)) {
      opt.num_seeds = n;
    } else if (arg.rfind("--first-seed=", 0) == 0 &&
               ParseSize(value("--first-seed="), &n)) {
      opt.first_seed = n;
    } else if (arg.rfind("--classes=", 0) == 0) {
      std::string list = value("--classes=");
      size_t pos = 0;
      while (pos <= list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        fgq::FuzzClass cls;
        if (!fgq::FuzzClassFromName(name, &cls)) {
          std::fprintf(stderr, "unknown class '%s'\n", name.c_str());
          return 2;
        }
        opt.classes.push_back(cls);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--no-shrink") {
      opt.shrink = false;
    } else if (arg.rfind("--regress-dir=", 0) == 0) {
      opt.regress_dir = value("--regress-dir=");
    } else if (arg == "--no-service") {
      opt.fuzz.include_service = false;
    } else if (arg == "--net") {
      opt.fuzz.include_net = true;
    } else if (arg.rfind("--net-frames=", 0) == 0 &&
               ParseSize(value("--net-frames="), &n)) {
      net_frames = n;
    } else if (arg.rfind("--heavy-dup=", 0) == 0 &&
               ParseProb(value("--heavy-dup="), &opt.fuzz.heavy_dup_prob)) {
      // Parsed in place.
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (net_frames > 0) {
    fgq::check::FrameFuzzOptions fopt;
    fopt.iterations = net_frames;
    fopt.seed = opt.first_seed + 1;
    const fgq::check::FrameFuzzReport frames = fgq::check::RunFrameFuzz(fopt);
    std::printf("%s\n", frames.Summary().c_str());
    if (!frames.ok()) {
      for (const std::string& f : frames.failures) {
        std::fprintf(stderr, "NET-FRAME FAILURE: %s\n", f.c_str());
      }
      return 1;
    }
  }

  const fgq::CheckSummary summary = fgq::RunSeedRange(opt);
  std::printf("%s", summary.ToString().c_str());
  if (!summary.ok()) {
    std::fprintf(stderr, "fuzz_check: %zu failing case(s)\n",
                 summary.failures.size());
    return 1;
  }
  return 0;
}
