// EXPLAIN over the committed regression corpus — the classifier-drift
// guard and the Chrome-trace producer CI runs.
//
//   fgq_explain --corpus=tests/regress                    print explanations
//   fgq_explain --corpus=... --golden=tests/regress/golden --update
//                                                         (re)write goldens
//   fgq_explain --corpus=... --golden=...                 diff against goldens
//                                                         (exit 1 on drift)
//   fgq_explain --corpus=... --execute --trace-out=t.json also run each case
//                                                         traced; write one
//                                                         merged Chrome trace
//
// Golden files pin Explanation::ClassificationText() — the deterministic,
// timing-free subset (class, theorem, bound, witness). A classifier change
// that silently reroutes a query class shows up as a golden diff here
// before it shows up as a perf mystery in production. Regenerate with
// --update after an *intentional* change and review the diff like any
// other code change.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fgq/check/regress.h"
#include "fgq/trace/explain.h"
#include "fgq/trace/trace.h"

using namespace fgq;

namespace {

std::string Stem(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The golden payload of one case: every disjunct's deterministic
/// classification text, separated by a disjunct header (most corpus cases
/// are single-disjunct; union cases explain each branch).
std::string ExplainCase(const RegressionCase& c, bool execute,
                        TraceContext* trace, Status* failure) {
  std::ostringstream out;
  Engine engine;
  for (size_t i = 0; i < c.query.disjuncts.size(); ++i) {
    if (c.query.disjuncts.size() > 1) out << "disjunct " << i << ":\n";
    Result<Explanation> ex = Explain(c.query.disjuncts[i], c.db, engine);
    if (!ex.ok()) {
      *failure = ex.status();
      return out.str();
    }
    out << ex->ClassificationText();
    if (execute) {
      // The traced run is for the Chrome artifact, not the golden text
      // (timings are nondeterministic by nature). All cases share one
      // context — one artifact, one timeline — so the evaluation runs
      // directly under a per-case span on that context.
      const std::string label =
          c.name + (c.query.disjuncts.size() > 1 ? "#" + std::to_string(i)
                                                 : "");
      TraceSpan case_span(trace, label.c_str(), "corpus");
      ExecRequest exec(c.query.disjuncts[i], c.db);
      exec.trace = trace;
      Result<ExecResult> run = engine.Run(exec);
      if (!run.ok()) {
        *failure = run.status();
        return out.str();
      }
      case_span.Arg("answers", std::to_string(run->NumAnswers()));
    }
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus = "tests/regress";
  std::string golden_dir;
  std::string trace_out;
  bool update = false;
  bool execute = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--corpus=", 0) == 0) {
      corpus = arg.substr(9);
    } else if (arg.rfind("--golden=", 0) == 0) {
      golden_dir = arg.substr(9);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
      execute = true;
    } else if (arg == "--update") {
      update = true;
    } else if (arg == "--execute") {
      execute = true;
    } else {
      std::cerr << "unknown flag '" << arg << "'\n"
                << "usage: fgq_explain --corpus=DIR [--golden=DIR "
                   "[--update]] [--execute] [--trace-out=FILE]\n";
      return 2;
    }
  }

  std::vector<std::string> files = ListRegressionFiles(corpus);
  if (files.empty()) {
    std::cerr << "no .fgqr files under " << corpus << "\n";
    return 2;
  }

  TraceContext trace;
  size_t drifted = 0;
  for (const std::string& path : files) {
    Result<RegressionCase> c = LoadRegressionCase(path);
    if (!c.ok()) {
      std::cerr << path << ": " << c.status() << "\n";
      return 2;
    }
    Status failure = Status::OK();
    std::string text =
        ExplainCase(*c, execute, execute ? &trace : nullptr, &failure);
    if (!failure.ok()) {
      std::cerr << c->name << ": " << failure << "\n";
      return 2;
    }

    if (golden_dir.empty()) {
      std::cout << "==== " << c->name << " ====\n" << text << "\n";
      continue;
    }
    const std::string golden_path = golden_dir + "/" + Stem(path) + ".explain";
    if (update) {
      std::ofstream out(golden_path, std::ios::binary);
      if (!out) {
        std::cerr << "cannot write " << golden_path << "\n";
        return 2;
      }
      out << text;
      std::cout << "wrote " << golden_path << "\n";
      continue;
    }
    Result<std::string> want = ReadFile(golden_path);
    if (!want.ok()) {
      std::cerr << c->name << ": " << want.status()
                << " (run with --update to create goldens)\n";
      ++drifted;
      continue;
    }
    if (*want != text) {
      ++drifted;
      std::cerr << "CLASSIFICATION DRIFT in " << c->name << "\n"
                << "---- golden (" << golden_path << ") ----\n"
                << *want << "---- current ----\n"
                << text << "----\n";
    } else {
      std::cout << c->name << ": ok\n";
    }
  }

  if (!trace_out.empty()) {
    Status st = trace.WriteChromeTrace(trace_out);
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 2;
    }
    std::cout << "chrome trace written to " << trace_out << "\n";
  }
  if (drifted > 0) {
    std::cerr << drifted << " case(s) drifted\n";
    return 1;
  }
  return 0;
}
