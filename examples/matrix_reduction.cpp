// The fine-grained lower-bound story, executable (Section 4.1.2).
//
// Theorem 4.8 ties enumeration complexity to Boolean matrix
// multiplication: the query Pi(x, y) = exists z. A(x, z) & B(z, y) is
// acyclic but not free-connex, and enumerating it efficiently IS
// multiplying matrices. This example runs the reduction in both
// directions:
//   1. multiply two random matrices through the query engine and check
//      the result against the cubic loop;
//   2. embed a matrix product into a different self-join-free query
//      (Example 4.7's padding construction) and read the product back.
//
//   ./build/examples/matrix_reduction [n]

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "fgq/eval/bmm.h"
#include "fgq/eval/oracle.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

using namespace fgq;

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 256;
  Rng rng(7);
  BoolMatrix a = RandomMatrix(n, 0.05, &rng);
  BoolMatrix b = RandomMatrix(n, 0.05, &rng);

  ConjunctiveQuery pi = MatrixProductQuery();
  std::cout << "Pi: " << pi.ToString() << "\n"
            << "  acyclic:     " << std::boolalpha << IsAcyclicQuery(pi) << "\n"
            << "  free-connex: " << IsFreeConnex(pi)
            << "   (so constant-delay enumeration would beat Mat-Mul)\n\n";

  auto t0 = std::chrono::steady_clock::now();
  auto via_query = MultiplyViaQuery(a, b);
  auto t1 = std::chrono::steady_clock::now();
  BoolMatrix naive = MultiplyNaive(a, b);
  auto t2 = std::chrono::steady_clock::now();
  if (!via_query.ok()) {
    std::cerr << via_query.status() << "\n";
    return 1;
  }
  size_t ones = 0;
  for (bool bit : via_query->bits) ones += bit;
  std::cout << n << "x" << n << " product (" << ones << " ones):\n"
            << "  via query engine: "
            << std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0)
                   .count()
            << " ms\n"
            << "  cubic loop:       "
            << std::chrono::duration_cast<std::chrono::milliseconds>(t2 - t1)
                   .count()
            << " ms\n"
            << "  results match:    " << (via_query->bits == naive.bits)
            << "\n\n";

  // Direction 2: Example 4.7. Any self-join-free non-free-connex ACQ
  // hides a matrix product; build the padded database and extract it.
  auto victim = ParseConjunctiveQuery(
      "Q(x, y) :- E(x, u), S(x, z), T(z, y, u).");
  if (!victim.ok()) {
    std::cerr << victim.status() << "\n";
    return 1;
  }
  std::cout << "Victim query: " << victim->ToString() << "\n"
            << "  free-connex: " << IsFreeConnex(*victim) << "\n";
  const size_t m = 32;  // The oracle evaluates the embedded instance.
  BoolMatrix a2 = RandomMatrix(m, 0.2, &rng);
  BoolMatrix b2 = RandomMatrix(m, 0.2, &rng);
  auto embedded = EmbedMatricesIntoQuery(*victim, "x", "y", "z", a2, b2);
  if (!embedded.ok()) {
    std::cerr << embedded.status() << "\n";
    return 1;
  }
  auto answers = EvaluateBacktrack(*victim, *embedded);
  if (!answers.ok()) {
    std::cerr << answers.status() << "\n";
    return 1;
  }
  BoolMatrix recovered(m);
  for (size_t r = 0; r < answers->NumTuples(); ++r) {
    const Value* row = answers->RowData(r);
    recovered.Set(static_cast<size_t>(row[0]), static_cast<size_t>(row[1]),
                  true);
  }
  std::cout << "  embedded " << m << "x" << m
            << " product recovered correctly: "
            << (recovered.bits == MultiplyNaive(a2, b2).bits) << "\n";
  return 0;
}
