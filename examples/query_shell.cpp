// An interactive mini-shell over the fgq engines.
//
// Feed it facts and Datalog-style rules on stdin; it classifies each query
// (acyclic? free-connex? star size?) and runs the best engine. Intended
// both as a demo and as a scratchpad for exploring the paper's
// dichotomies on concrete instances.
//
//   ./build/examples/query_shell < script.txt
//
// Commands:
//   fact  <Rel> <v1> <v2> ...      add a fact (strings or ints)
//   query <rule>                   evaluate, e.g. query Q(x) :- R(x, y).
//   count <rule>                   count answers without materializing
//   sample <rule> <k>              k uniform random answers (free-connex)
//   classify <rule>                structural report only
//   explain <rule>                 classification + witness + theorem,
//                                  then a traced run with per-phase times
//   db                             print the database
//   help / quit

#include <iostream>
#include <sstream>
#include <string>

#include "fgq/db/loader.h"
#include "fgq/eval/engine.h"
#include "fgq/eval/random_access.h"
#include "fgq/hypergraph/star_size.h"
#include "fgq/query/parser.h"
#include "fgq/trace/explain.h"

using namespace fgq;

namespace {

void PrintTuple(const Tuple& t, const Dictionary& dict) {
  std::cout << "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i) std::cout << ", ";
    if (t[i] >= 0 && static_cast<size_t>(t[i]) < dict.size()) {
      std::cout << dict.Lookup(t[i]);
    } else {
      std::cout << t[i];
    }
  }
  std::cout << ")";
}

void Classify(const ConjunctiveQuery& q) {
  QueryClass cls = Engine::Classify(q);
  std::cout << "  class: " << QueryClassName(cls);
  if (cls != QueryClass::kNegated && cls != QueryClass::kCyclic) {
    std::cout << ", star size: " << QuantifiedStarSize(q);
  }
  std::cout << ", self-join-free: " << std::boolalpha << q.IsSelfJoinFree()
            << ", negation: " << q.HasNegation()
            << ", comparisons: " << q.comparisons().size() << "\n";
}

void RunQuery(const Engine& engine, const ConjunctiveQuery& q,
              const Database& db, const Dictionary& dict) {
  Classify(q);
  Result<ExecResult> res = engine.Run(ExecRequest(q, db));
  if (!res.ok()) {
    std::cout << "  error: " << res.status() << "\n";
    return;
  }
  std::cout << "  engine: " << res->algorithm << ", " << res->NumAnswers()
            << " answers\n";
  const size_t limit = 20;
  const Relation& rel = res->answers;
  for (size_t i = 0; i < std::min(limit, rel.NumTuples()); ++i) {
    std::cout << "    ";
    PrintTuple(rel.Row(i).ToTuple(), dict);
    std::cout << "\n";
  }
  if (rel.NumTuples() > limit) std::cout << "    ...\n";
}

}  // namespace

int main() {
  Database db;
  Dictionary dict;
  Engine engine;
  std::string line;
  std::cout << "fgq shell — 'help' for commands\n";
  while (std::getline(std::cin, line)) {
    std::istringstream ls(line);
    std::string cmd;
    if (!(ls >> cmd) || cmd[0] == '#') continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::cout << "fact <Rel> <v>... | query <rule> | count <rule> | "
                   "sample <rule> <k> | classify <rule> | explain <rule> | "
                   "db | quit\n";
      continue;
    }
    if (cmd == "db") {
      std::cout << db.ToString() << "\n";
      continue;
    }
    std::string rest;
    std::getline(ls, rest);
    if (cmd == "fact") {
      Status st = LoadFactsFromString(rest, &db, &dict);
      if (!st.ok()) std::cout << "  " << st << "\n";
      continue;
    }
    if (cmd == "query" || cmd == "count" || cmd == "classify" ||
        cmd == "explain" || cmd == "sample") {
      size_t k = 3;
      if (cmd == "sample") {
        // Last token is the sample size.
        size_t pos = rest.find_last_of(' ');
        if (pos != std::string::npos && pos + 1 < rest.size() &&
            isdigit(static_cast<unsigned char>(rest[pos + 1]))) {
          k = static_cast<size_t>(std::stoll(rest.substr(pos + 1)));
          rest = rest.substr(0, pos);
        }
      }
      auto q = ParseConjunctiveQuery(rest);
      if (!q.ok()) {
        std::cout << "  " << q.status() << "\n";
        continue;
      }
      if (cmd == "classify") {
        Classify(*q);
      } else if (cmd == "explain") {
        ExplainOptions eopts;
        eopts.execute = true;
        Result<Explanation> ex = Explain(*q, db, engine, eopts);
        if (!ex.ok()) {
          std::cout << "  " << ex.status() << "\n";
          continue;
        }
        std::istringstream in(ex->Text());
        std::string out_line;
        while (std::getline(in, out_line)) std::cout << "  " << out_line << "\n";
      } else if (cmd == "query") {
        RunQuery(engine, *q, db, dict);
      } else if (cmd == "count") {
        auto c = engine.Count(*q, db);
        if (c.ok()) {
          std::cout << "  |phi(D)| = " << *c << "\n";
        } else {
          std::cout << "  " << c.status() << "\n";
        }
      } else {  // sample
        auto ra = BuildRandomAccess(*q, db);
        if (!ra.ok()) {
          std::cout << "  " << ra.status() << "\n";
          continue;
        }
        std::cout << "  " << (*ra)->Count() << " answers; " << k
                  << " uniform samples:\n";
        Rng rng(static_cast<uint64_t>((*ra)->Count()) + 17);
        for (size_t i = 0; i < k; ++i) {
          auto t = (*ra)->Sample(&rng);
          if (!t.ok()) break;
          std::cout << "    ";
          PrintTuple(*t, dict);
          std::cout << "\n";
        }
      }
      continue;
    }
    std::cout << "  unknown command '" << cmd << "' — try 'help'\n";
  }
  return 0;
}
