// Counting and aggregation without materialization (Section 4.4).
//
// A synthetic census schema — People(person, city), Employment(person,
// sector), Sectors(sector) — is counted and aggregated through the
// weighted counting DP (Theorem 4.21): the number of (person, city,
// sector) certificates and a weighted sum are both computed in one linear
// pass, even when the answer set itself is enormous. The example also
// shows the star-size frontier (Theorem 4.28) and the Section 5 toolkit
// (exact #Sigma0 with astronomically large counts, Karp-Luby FPRAS).
//
//   ./build/examples/census_counting [n]

#include <cstdlib>
#include <iostream>

#include "fgq/count/acq_count.h"
#include "fgq/count/matchings.h"
#include "fgq/hypergraph/star_size.h"
#include "fgq/query/parser.h"
#include "fgq/so/sigma_count.h"
#include "fgq/workload/generators.h"

using namespace fgq;

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 50000;
  Rng rng(11);
  Database db;
  Value people = static_cast<Value>(n / 5);
  db.PutRelation(RandomRelation("People", 2, n, people, &rng));
  db.PutRelation(RandomRelation("Employment", 2, n, people, &rng));
  db.PutRelation(RandomRelation("Sectors", 1, 64, people, &rng));
  db.DeclareDomainSize(people);

  auto q = ParseConjunctiveQuery(
      "Q(person, city, sector) :- People(person, city), "
      "Employment(person, sector), Sectors(sector).");
  std::cout << "Query: " << q->ToString() << "\n"
            << "  star size: " << QuantifiedStarSize(*q) << "\n";

  // Exact count via the join-tree DP — no materialization.
  auto count = CountAcq(*q, db);
  if (!count.ok()) {
    std::cerr << count.status() << "\n";
    return 1;
  }
  std::cout << "  |phi(D)| = " << *count << "\n";

  // Weighted aggregation: weight each answer by a per-element score.
  auto weighted = WeightedCountAcq(
      *q, db, [](Value v) { return 1.0 + (v % 10) * 0.01; });
  std::cout << "  weighted sum = " << *weighted << "\n\n";

  // The quantified frontier: projecting out the person makes pairs
  // (city, sector) — star size 2 — still fine; the counting engine
  // materializes one component.
  auto pairs = ParseConjunctiveQuery(
      "P(city, sector) :- People(person, city), Employment(person, sector).");
  std::cout << "Projected query: " << pairs->ToString() << "\n"
            << "  star size: " << QuantifiedStarSize(*pairs) << "\n"
            << "  |phi(D)| = " << *CountAcq(*pairs, db) << "\n\n";

  // The hard end of the spectrum: Equation (2) — counting perfect
  // matchings as a difference of two ACQ counts (psi has star size n).
  BipartiteGraph g = RandomBipartite(5, 3, &rng);
  auto pm_query = CountPerfectMatchingsViaQuery(g);
  auto pm_ryser = CountPerfectMatchingsRyser(g);
  std::cout << "Perfect matchings of a random 5x5 bipartite graph:\n"
            << "  |phi| - |psi| (query engine) = " << *pm_query << "\n"
            << "  Ryser permanent              = " << *pm_ryser << "\n\n";

  // Section 5: second-order counting. #Sigma0 counts are huge but exact.
  SoQuery cut;
  cut.formula =
      std::move(ParseFoFormula("People(x, y) & X(x) & ~X(y)", {"X"})).value();
  cut.so_vars = {{"X", 1}};
  cut.fo_free = {"x", "y"};
  // Use a small sub-universe so the count prints nicely.
  Database small;
  small.PutRelation(RandomRelation("People", 2, 40, 24, &rng));
  small.DeclareDomainSize(24);
  auto sigma0 = CountSigma0(cut, small);
  std::cout << "#Sigma0 over a 24-element domain (2^24-scale counts): "
            << *sigma0 << "\n";

  // And the FPRAS for #DNF, Section 5.1's approximate counterpart.
  DnfFormula dnf = RandomDnf(40, 12, 4, &rng);
  Rng kl(99);
  auto est = EstimateDnf(dnf, 0.05, &kl);
  std::cout << "Karp-Luby #DNF estimate (40 vars, 12 clauses, eps=0.05): "
            << *est << "\n";
  return 0;
}
