// Social-network analytics: top-k style early termination with
// constant-delay enumeration (the paper's motivating scenario for
// enumeration — "one can start exploiting the first answers while waiting
// for the others").
//
// A synthetic follower graph with ~100k edges is queried for pairs of
// users with a common interest. The materializing engine must finish the
// whole join before the first answer; the constant-delay enumerator
// serves the first answers immediately after a linear preprocessing pass
// and can stop after k answers, paying nothing for the rest.
//
//   ./build/examples/social_network [n]

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "fgq/eval/enumerate.h"
#include "fgq/eval/ucq_enum.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

using namespace fgq;
using Clock = std::chrono::steady_clock;

namespace {

double MsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start)
             .count() /
         1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 5000;
  Rng rng(2020);
  Database db;
  Value users = static_cast<Value>(n / 10);
  db.PutRelation(RandomRelation("Follows", 2, n, users, &rng));
  db.PutRelation(RandomRelation("Interest", 2, n, users, &rng));
  db.PutRelation(RandomRelation("Likes", 2, n, users, &rng));
  db.PutRelation(RandomRelation("Active", 1, n / 10, users, &rng));
  db.DeclareDomainSize(users);
  std::cout << "Synthetic network: " << n << " follow edges, " << users
            << " users, ||D|| = " << db.SizeWeight() << "\n\n";

  // "Pairs (a, b) where a follows someone and b has an active interest":
  // free-connex, so constant-delay enumerable.
  auto query = ParseConjunctiveQuery(
      "Pairs(a, b) :- Follows(a, f), Interest(b, i), Active(i).");
  if (!query.ok()) {
    std::cerr << query.status() << "\n";
    return 1;
  }
  std::cout << "Query: " << query->ToString() << "\n";
  std::cout << "free-connex: " << std::boolalpha << IsFreeConnex(*query)
            << "\n\n";

  constexpr int kTopK = 10;

  // Route 1: materialize everything, then take the first k.
  Clock::time_point start = Clock::now();
  auto all = EvaluateYannakakis(*query, db);
  if (!all.ok()) {
    std::cerr << all.status() << "\n";
    return 1;
  }
  double materialize_ms = MsSince(start);
  std::cout << "materialize-first: " << all->NumTuples() << " answers in "
            << materialize_ms << " ms before the first one is usable\n";

  // Route 2: constant-delay enumeration, stop after k.
  start = Clock::now();
  auto e = MakeConstantDelayEnumerator(*query, db);
  if (!e.ok()) {
    std::cerr << e.status() << "\n";
    return 1;
  }
  double preprocess_ms = MsSince(start);
  Tuple t;
  int produced = 0;
  start = Clock::now();
  while (produced < kTopK && (*e)->Next(&t)) ++produced;
  double first_k_ms = MsSince(start);
  std::cout << "constant-delay:    first " << produced << " answers after "
            << preprocess_ms << " ms preprocessing + " << first_k_ms
            << " ms enumeration\n\n";

  // A union query shaped like the paper's Equation (1): the first
  // disjunct is not free-connex, but the second provides the variables
  // {a, b, c} through a body homomorphism, so the union extension repairs
  // it (Theorem 4.13).
  auto ucq = ParseUnionQuery(
      "R(a, c, w) :- Follows(a, b), Interest(b, c), Likes(a, w).\n"
      "R(a, c, w) :- Follows(a, c), Interest(c, w).");
  if (!ucq.ok()) {
    std::cerr << ucq.status() << "\n";
    return 1;
  }
  std::cout << "Union query:\n" << ucq->ToString() << "\n";
  start = Clock::now();
  auto ue = MakeUnionEnumerator(*ucq, db);
  if (!ue.ok()) {
    std::cout << "union enumeration unavailable: " << ue.status() << "\n";
    return 0;
  }
  produced = 0;
  while (produced < kTopK && (*ue)->Next(&t)) ++produced;
  std::cout << "union extension produced the first " << produced
            << " answers in " << MsSince(start) << " ms\n";
  return 0;
}
