#include <gtest/gtest.h>

#include "fgq/hypergraph/hypergraph.h"
#include "fgq/hypergraph/star_size.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto r = ParseConjunctiveQuery(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

// ---- Example 4.1 of the paper ------------------------------------------------

TEST(Acyclicity, Example41PathIsAcyclic) {
  EXPECT_TRUE(IsAcyclicQuery(Q("Q(x, y, z) :- E(x, y), F(y, z).")));
}

TEST(Acyclicity, Example41TriangleIsCyclic) {
  EXPECT_FALSE(
      IsAcyclicQuery(Q("Q(x, y, z) :- E(x, y), F(y, z), G(z, x).")));
}

TEST(Acyclicity, Example41TriangleWithCoverIsAcyclic) {
  // Adding T(x,y,z) makes the triangle acyclic (join tree rooted at T).
  EXPECT_TRUE(IsAcyclicQuery(
      Q("Q(x, y, z) :- E(x, y), F(y, z), G(z, x), T(x, y, z).")));
}

TEST(Acyclicity, BiggerCyclesDetected) {
  EXPECT_FALSE(IsAcyclicQuery(
      Q("Q() :- A(x, y), B(y, z), C(z, w), D(w, x).")));
}

TEST(Acyclicity, SingleAtomAlwaysAcyclic) {
  EXPECT_TRUE(IsAcyclicQuery(Q("Q(x) :- R(x, y, z).")));
}

TEST(JoinTree, ValidForFigure1Query) {
  ConjunctiveQuery q = Figure1Query();
  Hypergraph hg = Hypergraph::FromQuery(q);
  GyoResult gyo = GyoReduce(hg);
  ASSERT_TRUE(gyo.acyclic);
  EXPECT_TRUE(gyo.tree.IsValid(hg));
  // All five atoms are nodes.
  EXPECT_EQ(gyo.tree.TopDownOrder().size(), 5u);
}

TEST(JoinTree, ReRootPreservesValidity) {
  ConjunctiveQuery q = Figure1Query();
  Hypergraph hg = Hypergraph::FromQuery(q);
  GyoResult gyo = GyoReduce(hg);
  ASSERT_TRUE(gyo.acyclic);
  for (int e = 0; e < static_cast<int>(hg.NumEdges()); ++e) {
    JoinTree t = gyo.tree;
    t.ReRoot(e);
    EXPECT_EQ(t.root, e);
    EXPECT_TRUE(t.IsValid(hg)) << "re-rooted at " << e;
  }
}

TEST(JoinTree, OrdersAreConsistent) {
  ConjunctiveQuery q = Figure1Query();
  GyoResult gyo = GyoReduce(Hypergraph::FromQuery(q));
  std::vector<int> top = gyo.tree.TopDownOrder();
  std::vector<int> bottom = gyo.tree.BottomUpOrder();
  std::reverse(bottom.begin(), bottom.end());
  EXPECT_EQ(top, bottom);
  EXPECT_EQ(top[0], gyo.tree.root);
}

// ---- Free-connexity (Definition 4.4, Example 4.5) -----------------------------

TEST(FreeConnex, Example45PositiveCase) {
  EXPECT_TRUE(IsFreeConnex(Q("Q(x, y) :- E(x, w), F(y, z), B(z).")));
}

TEST(FreeConnex, MatrixQueryIsNotFreeConnex) {
  ConjunctiveQuery pi = Q("Pi(x, y) :- A(x, z), B(z, y).");
  EXPECT_TRUE(IsAcyclicQuery(pi));
  EXPECT_FALSE(IsFreeConnex(pi));
}

TEST(FreeConnex, BooleanAndUnaryAreTriviallyFreeConnex) {
  EXPECT_TRUE(IsFreeConnex(Q("Q() :- A(x, z), B(z, y).")));
  EXPECT_TRUE(IsFreeConnex(Q("Q(x) :- A(x, z), B(z, y).")));
}

TEST(FreeConnex, QuantifierFreeIsFreeConnex) {
  EXPECT_TRUE(IsFreeConnex(Q("Q(x, y, z) :- A(x, z), B(z, y).")));
}

TEST(FreeConnex, Figure1QueryIsFreeConnex) {
  EXPECT_TRUE(IsFreeConnex(Figure1Query()));
}

TEST(FreeConnex, PathQueriesNotFreeConnexBeyondOneHop) {
  EXPECT_TRUE(IsFreeConnex(PathQuery(1)));
  EXPECT_FALSE(IsFreeConnex(PathQuery(2)));
  EXPECT_FALSE(IsFreeConnex(PathQuery(3)));
}

// ---- Beta-acyclicity (Definition 4.29) ----------------------------------------

TEST(BetaAcyclicity, ChainIsBetaAcyclic) {
  BetaResult r = BetaAcyclicity(
      Hypergraph::FromQuery(Q("Q() :- A(x, y), B(y, z), C(z, w).")));
  EXPECT_TRUE(r.beta_acyclic);
  EXPECT_EQ(r.elimination_order.size(), 4u);
}

TEST(BetaAcyclicity, TriangleIsNotBetaAcyclic) {
  EXPECT_FALSE(IsBetaAcyclicQuery(Q("Q() :- A(x, y), B(y, z), C(z, x).")));
}

TEST(BetaAcyclicity, AlphaButNotBeta) {
  // Triangle plus covering edge: alpha-acyclic, but the triangle
  // subhypergraph is cyclic, so not beta-acyclic.
  ConjunctiveQuery q =
      Q("Q() :- A(x, y), B(y, z), C(z, x), T(x, y, z).");
  EXPECT_TRUE(IsAcyclicQuery(q));
  EXPECT_FALSE(IsBetaAcyclicQuery(q));
}

TEST(BetaAcyclicity, NestedAtomsAreBetaAcyclic) {
  EXPECT_TRUE(IsBetaAcyclicQuery(
      Q("Q() :- A(x), B(x, y), C(x, y, z).")));
}

// ---- S-components and star size (Figures 2/3, Definitions 4.23-4.26) ---------

/// The hypergraph of Figure 2: S = {y1..y7} free, x1..x9 quantified.
/// Edges reconstructed from Figure 3's three components:
///   left component:    {x1, y1, y2} (x1 connecting y1, y2), {x2, y2}?
/// The figure gives: component 1 = {y1,y2} with x1, x2, x3;
/// central (yellow) component with y3, y5, y6 independent; right with y6,y7.
/// We reproduce the *quantitative* claims: three S-components and star
/// size 3 with witness {y3, y5, y6}.
ConjunctiveQuery Figure2Query() {
  // A faithful reconstruction matching Figure 3's decomposition:
  // Component A: edges {y1,x1},{x1,y2},{y2,x2},{x2,x1},{x3,y1}
  // Component B: edges {y3,x6},{x6,x7},{x7,y4},{x4,y3,y5},{x4,x8}?,{x8,y6}
  // Component C: edges {x5,y6},{x5,y7},{x9,y7}
  // plus constraints keeping it acyclic are not required for
  // S-component computation (star size is defined on any hypergraph).
  ConjunctiveQuery q("fig2", {"y1", "y2", "y3", "y4", "y5", "y6", "y7"}, {});
  auto add = [&q](const std::string& rel,
                  const std::vector<std::string>& vars) {
    Atom a;
    a.relation = rel;
    for (const std::string& v : vars) a.args.push_back(Term::Var(v));
    q.AddAtom(std::move(a));
  };
  // Component A: {y1, y2} through the connected block x1 - x2 - x3.
  add("A1", {"x1", "y1"});
  add("A2", {"x1", "x2", "y2"});
  add("A3", {"x2", "x3"});
  add("A4", {"x3", "y1", "y2"});
  // Component B (the central one): S-vertices y3, y4, y5, y6 reached
  // through the connected block x6 - x7 - x4 - x8; y4 and y5 share an
  // edge, so the maximum independent set is {y3, y5, y6} of size 3.
  add("B1", {"x6", "y3"});
  add("B2", {"x6", "x7"});
  add("B3", {"x7", "x4"});
  add("B4", {"x4", "y4", "y5"});
  add("B5", {"x4", "x8"});
  add("B6", {"x8", "y6"});
  // Component C: y6 and y7 again, through the block x5 - x9.
  add("C1", {"x5", "y6"});
  add("C2", {"x5", "y7"});
  add("C3", {"x5", "x9"});
  add("C4", {"x9", "y7"});
  return q;
}

TEST(SComponents, Figure2HasThreeComponents) {
  ConjunctiveQuery q = Figure2Query();
  Hypergraph hg = Hypergraph::FromQuery(q);
  std::vector<int> s;
  for (const std::string& v : q.head()) s.push_back(hg.FindVertex(v));
  std::vector<SComponent> comps = DecomposeSComponents(hg, s);
  EXPECT_EQ(comps.size(), 3u);
}

TEST(SComponents, Figure2StarSizeIsThree) {
  // The central component contains the independent set {y3, y5, y6}.
  EXPECT_EQ(QuantifiedStarSize(Figure2Query()), 3u);
}

TEST(StarSize, FreeConnexHasStarSizeOne) {
  EXPECT_EQ(QuantifiedStarSize(Q("Q(x) :- A(x, z), B(z, y).")), 1u);
  EXPECT_EQ(QuantifiedStarSize(Figure1Query()), 1u);
}

TEST(StarSize, StarQueryHasStarSizeEqualToArity) {
  for (size_t s = 1; s <= 5; ++s) {
    EXPECT_EQ(QuantifiedStarSize(StarQuery(s)), std::max<size_t>(1, s));
  }
}

TEST(StarSize, MatrixQueryHasStarSizeTwo) {
  // Pi(x,y): one S-component around z containing both free variables,
  // which are non-adjacent: star size 2.
  EXPECT_EQ(QuantifiedStarSize(Q("Pi(x, y) :- A(x, z), B(z, y).")), 2u);
}

TEST(StarSize, QuantifierFreeQueryHasStarSizeOne) {
  EXPECT_EQ(QuantifiedStarSize(Q("Q(x, y) :- A(x, y).")), 1u);
}

TEST(MaxIndependentSet, SmallCases) {
  Hypergraph hg;
  int a = hg.AddVertex("a");
  int b = hg.AddVertex("b");
  int c = hg.AddVertex("c");
  int e1 = hg.AddEdge({a, b});
  int e2 = hg.AddEdge({b, c});
  EXPECT_EQ(MaxIndependentSetSize(hg, {a, b, c}, {e1, e2}), 2u);  // {a, c}.
  EXPECT_EQ(MaxIndependentSetSize(hg, {a, b}, {e1}), 1u);
  EXPECT_EQ(MaxIndependentSetSize(hg, {}, {e1}), 0u);
}

TEST(Hypergraph, AdjacencyAndSubset) {
  Hypergraph hg;
  int a = hg.AddVertex("a");
  int b = hg.AddVertex("b");
  int c = hg.AddVertex("c");
  int e1 = hg.AddEdge({a, b, c});
  int e2 = hg.AddEdge({a, b});
  EXPECT_TRUE(hg.EdgeSubset(e2, e1));
  EXPECT_FALSE(hg.EdgeSubset(e1, e2));
  EXPECT_TRUE(hg.Adjacent(a, c));
  int d = hg.AddVertex("d");
  EXPECT_FALSE(hg.Adjacent(a, d));
}

TEST(Hypergraph, FromQueryUsesDistinctVariables) {
  // R(x, x, y) contributes the edge {x, y}.
  ConjunctiveQuery q = Q("Q(x, y) :- R(x, x, y).");
  Hypergraph hg = Hypergraph::FromQuery(q);
  EXPECT_EQ(hg.NumEdges(), 1u);
  EXPECT_EQ(hg.Edge(0).size(), 2u);
}

TEST(Gyo, EmptyAndSingleEdgeGraphs) {
  Hypergraph empty;
  EXPECT_TRUE(GyoReduce(empty).acyclic);
  Hypergraph single;
  single.AddEdgeByNames({"x", "y"});
  GyoResult r = GyoReduce(single);
  EXPECT_TRUE(r.acyclic);
  EXPECT_EQ(r.tree.root, 0);
}

}  // namespace
}  // namespace fgq
