#include <gtest/gtest.h>

#include <string>

#include "fgq/eval/clique_gadget.h"
#include "fgq/eval/ncq.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto r = ParseConjunctiveQuery(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

TEST(Ncq, SatClauseSemantics) {
  // The paper's example: a clause as a negative atom. Domain {0,1},
  // R = {(0,0,0,0,1,1)}: the query not R(x1..x6) is satisfiable (any
  // other assignment works).
  Database db;
  Relation r("R", 6);
  r.Add({0, 0, 0, 0, 1, 1});
  db.PutRelation(r);
  db.DeclareDomainSize(2);
  ConjunctiveQuery q = Q("Q() :- not R(x1, x2, x3, x4, x5, x6).");
  auto fast = DecideBetaAcyclicNcq(q, db);
  ASSERT_TRUE(fast.ok()) << fast.status();
  EXPECT_TRUE(*fast);
}

TEST(Ncq, FullyForbiddenDomainIsFalse) {
  Database db;
  Relation r("R", 1);
  r.Add({0});
  r.Add({1});
  db.PutRelation(r);
  db.DeclareDomainSize(2);
  auto v = DecideBetaAcyclicNcq(Q("Q() :- not R(x)."), db);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(*v);
}

TEST(Ncq, GroundNegatedAtomFalsifies) {
  Database db;
  Relation r("R", 1);
  r.Add({3});
  db.PutRelation(r);
  db.DeclareDomainSize(5);
  auto v = DecideBetaAcyclicNcq(Q("Q() :- not R(3), not S(x)."), db);
  // R(3) holds, so not R(3) is false regardless of x.
  Database db2 = db;
  db2.PutRelation(Relation("S", 1));
  auto v2 = DecideBetaAcyclicNcq(Q("Q() :- not R(3), not S(x)."), db2);
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_FALSE(*v2);
}

TEST(Ncq, ChainResolutionPropagates) {
  // Domain {0,1}; constraints force x = 1 (not R1(0)-style) transitively.
  Database db;
  Relation r1("R1", 1);
  r1.Add({0});  // x != 0 -> x = 1.
  Relation r2("R2", 2);
  r2.Add({1, 0});  // (x,y) != (1,0): with x=1 forces y=1.
  Relation r3("R3", 2);
  r3.Add({1, 1});
  r3.Add({1, 0});  // With y=1: (y,z) != (1,1),(1,0): no z left -> false.
  db.PutRelation(r1);
  db.PutRelation(r2);
  db.PutRelation(r3);
  db.DeclareDomainSize(2);
  ConjunctiveQuery q =
      Q("Q() :- not R1(x), not R2(x, y), not R3(y, z).");
  auto fast = DecideBetaAcyclicNcq(q, db);
  auto brute = DecideNcqBruteForce(q, db);
  ASSERT_TRUE(fast.ok()) << fast.status();
  ASSERT_TRUE(brute.ok());
  EXPECT_EQ(*fast, *brute);
  EXPECT_FALSE(*fast);
}

TEST(Ncq, RejectsNonBetaAcyclic) {
  Database db;
  db.PutRelation(Relation("A", 2));
  db.PutRelation(Relation("B", 2));
  db.PutRelation(Relation("C", 2));
  db.DeclareDomainSize(2);
  auto v = DecideBetaAcyclicNcq(
      Q("Q() :- not A(x, y), not B(y, z), not C(z, x)."), db);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(Ncq, RejectsPositiveAtoms) {
  Database db;
  db.PutRelation(Relation("A", 1));
  auto v = DecideBetaAcyclicNcq(Q("Q() :- A(x)."), db);
  EXPECT_FALSE(v.ok());
}

TEST(Ncq, RejectsNonBoolean) {
  Database db;
  db.PutRelation(Relation("A", 1));
  auto v = DecideBetaAcyclicNcq(Q("Q(x) :- not A(x)."), db);
  EXPECT_FALSE(v.ok());
}

TEST(Ncq, NestedScopesChain) {
  // Beta-acyclic with properly nested scopes A(x) ⊆ B(x,y) ⊆ C(x,y,z).
  Database db;
  Relation a("A", 1), b("B", 2), c("C", 3);
  a.Add({0});
  b.Add({1, 0});
  b.Add({1, 1});
  c.Add({1, 2, 0});
  db.PutRelation(a);
  db.PutRelation(b);
  db.PutRelation(c);
  db.DeclareDomainSize(3);
  ConjunctiveQuery q = Q("Q() :- not A(x), not B(x, y), not C(x, y, z).");
  auto fast = DecideBetaAcyclicNcq(q, db);
  auto brute = DecideNcqBruteForce(q, db);
  ASSERT_TRUE(fast.ok()) << fast.status();
  EXPECT_EQ(*fast, *brute);
}

// ---- Randomized agreement with brute force ------------------------------------

struct NcqParam {
  size_t vars;
  size_t tuples;
  Value domain;
  uint64_t seed;
};

void PrintTo(const NcqParam& p, std::ostream* os) {
  *os << "vars=" << p.vars << " tuples=" << p.tuples << " dom=" << p.domain
      << " seed=" << p.seed;
}

class NcqSweep : public ::testing::TestWithParam<NcqParam> {};

TEST_P(NcqSweep, ChainAgreesWithBruteForce) {
  const NcqParam& p = GetParam();
  Rng rng(p.seed);
  Database db;
  ConjunctiveQuery q =
      RandomChainNcq(p.vars, p.tuples, p.domain, &db, &rng);
  auto fast = DecideBetaAcyclicNcq(q, db);
  auto brute = DecideNcqBruteForce(q, db);
  ASSERT_TRUE(fast.ok()) << fast.status();
  ASSERT_TRUE(brute.ok());
  EXPECT_EQ(*fast, *brute);
}

INSTANTIATE_TEST_SUITE_P(
    RandomChains, NcqSweep,
    ::testing::Values(
        // Dense constraints over a tiny domain: unsatisfiable cases arise.
        NcqParam{3, 3, 2, 1}, NcqParam{3, 4, 2, 2}, NcqParam{4, 4, 2, 3},
        NcqParam{4, 3, 2, 4}, NcqParam{4, 4, 2, 5}, NcqParam{5, 4, 2, 6},
        NcqParam{3, 8, 3, 7}, NcqParam{4, 9, 3, 8}, NcqParam{4, 8, 3, 9},
        NcqParam{5, 9, 3, 10}, NcqParam{3, 15, 4, 11}, NcqParam{4, 14, 4, 12},
        NcqParam{5, 16, 4, 13}, NcqParam{5, 2, 2, 14}, NcqParam{6, 4, 2, 15},
        NcqParam{6, 9, 3, 16}));

TEST(Ncq, RandomNestedScopesAgainstBruteForce) {
  // Nested-scope queries: not A(x, y), not B(x, y, z) — exercises the
  // multi-level chain path of the elimination.
  Rng rng(55);
  for (int trial = 0; trial < 12; ++trial) {
    Database db;
    db.PutRelation(RandomRelation("A", 2, 3 + rng.Below(4), 2, &rng));
    db.PutRelation(RandomRelation("B", 3, 4 + rng.Below(5), 2, &rng));
    db.DeclareDomainSize(2);
    ConjunctiveQuery q = Q("Q() :- not A(x, y), not B(x, y, z).");
    auto fast = DecideBetaAcyclicNcq(q, db);
    auto brute = DecideNcqBruteForce(q, db);
    ASSERT_TRUE(fast.ok()) << fast.status();
    EXPECT_EQ(*fast, *brute) << "trial " << trial;
  }
}


// ---- The Triangle reduction (hardness side of Theorem 4.31) --------------------

TEST(TriangleNcqTest, QueryIsCyclicAndRejectedByFastDecider) {
  Graph g(4);
  g.AddEdge(0, 1);
  TriangleNcq t = BuildTriangleNcq(g);
  EXPECT_FALSE(IsBetaAcyclicQuery(t.query));
  auto fast = DecideBetaAcyclicNcq(t.query, t.db);
  EXPECT_FALSE(fast.ok());
  EXPECT_EQ(fast.status().code(), StatusCode::kInvalidArgument);
}

TEST(TriangleNcqTest, DecisionEqualsTriangleExistence) {
  Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomGraph(6, static_cast<int>(rng.Below(10)), &rng);
    TriangleNcq t = BuildTriangleNcq(g);
    auto decided = DecideNcqBruteForce(t.query, t.db);
    ASSERT_TRUE(decided.ok()) << decided.status();
    EXPECT_EQ(*decided, HasClique(g, 3)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace fgq

