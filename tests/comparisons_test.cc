#include <gtest/gtest.h>

#include "fgq/eval/clique_gadget.h"
#include "fgq/eval/oracle.h"
#include "fgq/fo/naive_fo.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

// ---- The ACQ_< clique gadget (Theorem 4.15) ------------------------------------

TEST(CliqueGadget, QueryIsAcyclicWithoutComparisons) {
  Graph g(4);
  g.AddEdge(0, 1);
  CliqueGadget gadget = BuildCliqueGadget(g, 2);
  EXPECT_TRUE(IsAcyclicQuery(gadget.query));
  EXPECT_FALSE(gadget.query.comparisons().empty());
  EXPECT_TRUE(gadget.query.IsBoolean());
}

TEST(CliqueGadget, K2DetectsAnEdge) {
  // k = 2: a 2-clique is just an edge.
  Graph with_edge(4);
  with_edge.AddEdge(1, 3);
  CliqueGadget g1 = BuildCliqueGadget(with_edge, 2);
  auto r1 = EvaluateBacktrack(g1.query, g1.db);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_GT(r1->NumTuples(), 0u);

  Graph no_edge(4);
  CliqueGadget g2 = BuildCliqueGadget(no_edge, 2);
  auto r2 = EvaluateBacktrack(g2.query, g2.db);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->NumTuples(), 0u);
}

TEST(CliqueGadget, K3OnTinyGraphs) {
  // Triangle present.
  Graph tri(3);
  tri.AddEdge(0, 1);
  tri.AddEdge(1, 2);
  tri.AddEdge(0, 2);
  ASSERT_TRUE(HasClique(tri, 3));
  CliqueGadget g1 = BuildCliqueGadget(tri, 3);
  auto r1 = EvaluateBacktrack(g1.query, g1.db);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_GT(r1->NumTuples(), 0u);

  // Path of three vertices: no triangle.
  Graph path(3);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  ASSERT_FALSE(HasClique(path, 3));
  CliqueGadget g2 = BuildCliqueGadget(path, 3);
  auto r2 = EvaluateBacktrack(g2.query, g2.db);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->NumTuples(), 0u);
}

TEST(CliqueGadget, AgreementSweepK2) {
  Rng rng(23);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = RandomGraph(5, static_cast<int>(rng.Below(6)), &rng);
    CliqueGadget gadget = BuildCliqueGadget(g, 2);
    auto r = EvaluateBacktrack(gadget.query, gadget.db);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->NumTuples() > 0, HasClique(g, 2)) << "trial " << trial;
  }
}

TEST(CliqueGadget, HasCliqueReference) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  EXPECT_TRUE(HasClique(g, 3));
  EXPECT_FALSE(HasClique(g, 4));
  EXPECT_TRUE(HasClique(g, 1));
  EXPECT_TRUE(HasClique(Graph(3), 1));
  EXPECT_FALSE(HasClique(Graph(3), 2));
}

// ---- Example 5.2: FO with order expresses a 3-clique ---------------------------

TEST(OrderedFo, ThreeCliqueSentence) {
  // Psi_0: exists v1 v2 v3 with v1 < v2 < v3 forming a triangle
  // (on the symmetric edge relation).
  auto f = ParseFoFormula(
      "exists v1. exists v2. exists v3. "
      "(v1 < v2 & v2 < v3 & E(v1, v2) & E(v2, v3) & E(v3, v1))");
  ASSERT_TRUE(f.ok()) << f.status();

  Graph tri(4);
  tri.AddEdge(0, 1);
  tri.AddEdge(1, 2);
  tri.AddEdge(0, 2);
  auto yes = ModelCheckFoNaive(**f, GraphDatabase(tri));
  ASSERT_TRUE(yes.ok()) << yes.status();
  EXPECT_TRUE(*yes);

  Graph path(4);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);
  auto no = ModelCheckFoNaive(**f, GraphDatabase(path));
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

// ---- Order comparisons in the oracle -------------------------------------------

TEST(OrderComparisons, LessAndLessEqSemantics) {
  Database db;
  Relation r("R", 2);
  r.Add({1, 2});
  r.Add({2, 2});
  r.Add({3, 2});
  db.PutRelation(r);
  auto lt = EvaluateBacktrack(
      *ParseConjunctiveQuery("Q(x, y) :- R(x, y), x < y."), db);
  EXPECT_EQ(lt->NumTuples(), 1u);
  auto le = EvaluateBacktrack(
      *ParseConjunctiveQuery("Q(x, y) :- R(x, y), x <= y."), db);
  EXPECT_EQ(le->NumTuples(), 2u);
  auto ne = EvaluateBacktrack(
      *ParseConjunctiveQuery("Q(x, y) :- R(x, y), x != y."), db);
  EXPECT_EQ(ne->NumTuples(), 2u);
}

TEST(OrderComparisons, JoinMaterializePostFilterAgrees) {
  Rng rng(29);
  Database db;
  db.PutRelation(RandomRelation("R", 2, 30, 6, &rng));
  db.PutRelation(RandomRelation("S", 2, 30, 6, &rng));
  auto q = ParseConjunctiveQuery("Q(x, z) :- R(x, y), S(y, z), x < z.");
  ASSERT_TRUE(q.ok());
  auto a = EvaluateJoinMaterialize(*q, db);
  auto b = EvaluateBacktrack(*q, db);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Relation ra = *a;
  Relation rb = *b;
  ra.SortDedup();
  rb.SortDedup();
  EXPECT_EQ(ra.NumTuples(), rb.NumTuples());
}

}  // namespace
}  // namespace fgq
