#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fgq/eval/oracle.h"
#include "fgq/eval/random_access.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto r = ParseConjunctiveQuery(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Database RandomDbFor(const ConjunctiveQuery& q, size_t tuples, Value domain,
                     uint64_t seed) {
  Rng rng(seed);
  Database db;
  for (const Atom& a : q.atoms()) {
    if (!db.Has(a.relation)) {
      db.PutRelation(
          RandomRelation(a.relation, a.arity(), tuples, domain, &rng));
    }
  }
  db.DeclareDomainSize(domain);
  return db;
}

TEST(RandomAccess, CountMatchesOracle) {
  ConjunctiveQuery q = Q("Q(x, y) :- R(x, w), S(y, z), B(z).");
  Database db = RandomDbFor(q, 30, 6, 201);
  auto ra = BuildRandomAccess(q, db);
  ASSERT_TRUE(ra.ok()) << ra.status();
  auto oracle = EvaluateBacktrack(q, db);
  EXPECT_EQ(static_cast<size_t>((*ra)->Count()), oracle->NumTuples());
}

TEST(RandomAccess, RanksCoverExactlyTheAnswerSet) {
  ConjunctiveQuery q = Q("Q(x, y, z) :- R(x, y), S(y, z), T(z).");
  Database db = RandomDbFor(q, 25, 5, 202);
  auto ra = BuildRandomAccess(q, db);
  ASSERT_TRUE(ra.ok()) << ra.status();
  auto oracle = EvaluateBacktrack(q, db);
  std::set<Tuple> seen;
  for (int64_t j = 0; j < (*ra)->Count(); ++j) {
    auto t = (*ra)->Answer(j);
    ASSERT_TRUE(t.ok()) << t.status();
    EXPECT_TRUE(oracle->Contains(*t)) << "rank " << j;
    EXPECT_TRUE(seen.insert(*t).second) << "duplicate at rank " << j;
  }
  EXPECT_EQ(seen.size(), oracle->NumTuples());
}

TEST(RandomAccess, OutOfRangeRanksRejected) {
  ConjunctiveQuery q = Q("Q(x) :- R(x, y).");
  Database db = RandomDbFor(q, 10, 5, 203);
  auto ra = BuildRandomAccess(q, db);
  ASSERT_TRUE(ra.ok());
  EXPECT_FALSE((*ra)->Answer(-1).ok());
  EXPECT_FALSE((*ra)->Answer((*ra)->Count()).ok());
}

TEST(RandomAccess, SamplingHitsOnlyAnswers) {
  ConjunctiveQuery q = Q("Q(a, b) :- R(a, b), S(b).");
  Database db = RandomDbFor(q, 20, 5, 204);
  auto ra = BuildRandomAccess(q, db);
  ASSERT_TRUE(ra.ok());
  if ((*ra)->Count() == 0) GTEST_SKIP() << "empty instance";
  auto oracle = EvaluateBacktrack(q, db);
  Rng rng(205);
  for (int trial = 0; trial < 50; ++trial) {
    auto t = (*ra)->Sample(&rng);
    ASSERT_TRUE(t.ok());
    EXPECT_TRUE(oracle->Contains(*t));
  }
}

TEST(RandomAccess, SamplingIsRoughlyUniform) {
  // A fixed tiny instance with a known answer count; chi-square-lite.
  Database db;
  Relation r("R", 2);
  for (Value i = 0; i < 4; ++i) {
    for (Value j = 0; j < 4; ++j) r.Add({i, j});
  }
  db.PutRelation(r);
  ConjunctiveQuery q = Q("Q(x, y) :- R(x, y).");
  auto ra = BuildRandomAccess(q, db);
  ASSERT_TRUE(ra.ok());
  ASSERT_EQ((*ra)->Count(), 16);
  std::map<Tuple, int> hits;
  Rng rng(206);
  const int kTrials = 3200;
  for (int t = 0; t < kTrials; ++t) {
    hits[*(*ra)->Sample(&rng)]++;
  }
  EXPECT_EQ(hits.size(), 16u);
  for (const auto& [t, c] : hits) {
    EXPECT_GT(c, kTrials / 16 / 2);   // Within a factor 2 of uniform.
    EXPECT_LT(c, kTrials / 16 * 2);
  }
}

TEST(RandomAccess, EmptyAndBooleanQueries) {
  Database db;
  db.PutRelation(Relation("R", 2));
  auto empty = BuildRandomAccess(Q("Q(x) :- R(x, y)."), db);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ((*empty)->Count(), 0);
  Rng rng(1);
  EXPECT_FALSE((*empty)->Sample(&rng).ok());

  Relation r("R", 2);
  r.Add({1, 2});
  db.PutRelation(r);
  auto boolean = BuildRandomAccess(Q("Q() :- R(x, y)."), db);
  ASSERT_TRUE(boolean.ok());
  EXPECT_EQ((*boolean)->Count(), 1);
  EXPECT_TRUE((*boolean)->Answer(0)->empty());
}

TEST(RandomAccess, RejectsNonFreeConnex) {
  Database db;
  db.PutRelation(Relation("A", 2));
  db.PutRelation(Relation("B", 2));
  auto ra = BuildRandomAccess(Q("Pi(x, y) :- A(x, z), B(z, y)."), db);
  EXPECT_FALSE(ra.ok());
}

struct RaParam {
  std::string query;
  size_t tuples;
  Value domain;
  uint64_t seed;
};

void PrintTo(const RaParam& p, std::ostream* os) { *os << p.query; }

class RandomAccessSweep : public ::testing::TestWithParam<RaParam> {};

TEST_P(RandomAccessSweep, EveryRankDistinctAndValid) {
  const RaParam& p = GetParam();
  ConjunctiveQuery q = Q(p.query);
  Database db = RandomDbFor(q, p.tuples, p.domain, p.seed);
  auto ra = BuildRandomAccess(q, db);
  ASSERT_TRUE(ra.ok()) << ra.status();
  auto oracle = EvaluateBacktrack(q, db);
  ASSERT_EQ(static_cast<size_t>((*ra)->Count()), oracle->NumTuples());
  std::set<Tuple> seen;
  for (int64_t j = 0; j < (*ra)->Count(); ++j) {
    Tuple t = *(*ra)->Answer(j);
    EXPECT_TRUE(oracle->Contains(t));
    EXPECT_TRUE(seen.insert(t).second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FreeConnexInstances, RandomAccessSweep,
    ::testing::Values(
        RaParam{"Q(x, y) :- R(x, y).", 25, 5, 211},
        RaParam{"Q(x, y) :- R(x, y), S(y, z).", 30, 5, 212},
        RaParam{"Q(x, y, z) :- R(x, y), S(y, z).", 25, 4, 213},
        RaParam{"Q(x, y) :- R(x, w), S(y, z), B(z).", 25, 5, 214},
        RaParam{"Q(u, v) :- A(u), B(v).", 12, 6, 215},
        RaParam{"Q(a, b, c) :- R(a, b), S(b, c), T(c), U(a, b, c).", 40, 4,
                216}));

}  // namespace
}  // namespace fgq
