#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fgq/query/parser.h"
#include "fgq/serve/plan_cache.h"
#include "fgq/serve/query_service.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto q = ParseConjunctiveQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

/// E = {(0,1),(1,2),(2,0),(0,3)}, B = {1, 2}.
Database TinyGraph() {
  Database db;
  Relation e("E", 2);
  e.Add({0, 1});
  e.Add({1, 2});
  e.Add({2, 0});
  e.Add({0, 3});
  Relation b("B", 1);
  b.Add({1});
  b.Add({2});
  db.PutRelation(std::move(e));
  db.PutRelation(std::move(b));
  return db;
}

std::set<Tuple> Rows(const Relation& rel) {
  std::set<Tuple> out;
  for (size_t i = 0; i < rel.NumTuples(); ++i) {
    out.insert(rel.Row(i).ToTuple());
  }
  return out;
}

/// A cyclic (triangle) query over big enough relations that the
/// backtracking oracle runs visibly long — the deadline/cancellation
/// tests need in-flight time to interrupt.
ConjunctiveQuery TriangleQuery() {
  return Q("T(x, y, z) :- E1(x, y), E2(y, z), E3(z, x).");
}

Database TriangleDatabase(size_t tuples) {
  Rng rng(3);
  return PathDatabase(3, tuples, static_cast<Value>(tuples / 2), &rng);
}

// ---- CanonicalQueryText -----------------------------------------------------

TEST(CanonicalQueryText, AlphaRenamedQueriesCollide) {
  EXPECT_EQ(CanonicalQueryText(Q("Q(x) :- E(x, y), B(y).")),
            CanonicalQueryText(Q("Q(a) :- E(a, b), B(b).")));
}

TEST(CanonicalQueryText, DistinguishesStructure) {
  std::set<std::string> keys;
  keys.insert(CanonicalQueryText(Q("Q(x) :- E(x, y).")));
  keys.insert(CanonicalQueryText(Q("Q(y) :- E(x, y).")));
  keys.insert(CanonicalQueryText(Q("Q(x) :- E(x, x).")));
  keys.insert(CanonicalQueryText(Q("Q(x) :- E(x, 1).")));
  keys.insert(CanonicalQueryText(Q("Q(x) :- E(x, y), not B(y).")));
  keys.insert(CanonicalQueryText(Q("Q(x) :- E(x, y), x != y.")));
  keys.insert(CanonicalQueryText(Q("Q(x) :- E(x, y), x < y.")));
  EXPECT_EQ(keys.size(), 7u);
}

// ---- PlanCache --------------------------------------------------------------

TEST(PlanCache, LruEviction) {
  PlanCache cache(2);
  auto mk = [] { return std::make_shared<const CachedPlan>(); };
  cache.Put({"a", 1}, mk());
  cache.Put({"b", 1}, mk());
  EXPECT_NE(cache.Get({"a", 1}), nullptr);  // "a" is now most recent.
  cache.Put({"c", 1}, mk());                // Evicts "b".
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Get({"a", 1}), nullptr);
  EXPECT_EQ(cache.Get({"b", 1}), nullptr);
  EXPECT_NE(cache.Get({"c", 1}), nullptr);
}

TEST(PlanCache, VersionIsPartOfKey) {
  PlanCache cache(8);
  cache.Put({"q", 1}, std::make_shared<const CachedPlan>());
  EXPECT_NE(cache.Get({"q", 1}), nullptr);
  EXPECT_EQ(cache.Get({"q", 2}), nullptr);
}

// ---- QueryService: caching --------------------------------------------------

TEST(QueryService, CacheHitReturnsIdenticalResults) {
  Database db = TinyGraph();
  ServiceOptions opts;
  opts.num_workers = 2;
  QueryService service(&db, opts);
  ServiceRequest req;
  req.query = Q("Q(x) :- E(x, y), B(y).");

  ServiceResponse cold = service.Submit(req).get();
  ASSERT_TRUE(cold.status.ok()) << cold.status;
  EXPECT_FALSE(cold.cache_hit);

  ServiceResponse warm = service.Submit(req).get();
  ASSERT_TRUE(warm.status.ok()) << warm.status;
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(Rows(*warm.answers), Rows(*cold.answers));
  EXPECT_EQ(Rows(*cold.answers), (std::set<Tuple>{{0}, {1}}));
}

TEST(QueryService, AlphaRenamedQueryHitsCache) {
  Database db = TinyGraph();
  QueryService service(&db);
  ServiceRequest a;
  a.query = Q("Q(x) :- E(x, y), B(y).");
  ASSERT_TRUE(service.Submit(a).get().status.ok());
  ServiceRequest b;
  b.query = Q("Q(u) :- E(u, v), B(v).");
  ServiceResponse resp = service.Submit(b).get();
  ASSERT_TRUE(resp.status.ok());
  EXPECT_TRUE(resp.cache_hit);
}

TEST(QueryService, MutationInvalidatesCachedPlans) {
  Database db = TinyGraph();
  QueryService service(&db);
  ServiceRequest req;
  req.query = Q("Q(x) :- E(x, y), B(y).");

  ServiceResponse before = service.Submit(req).get();
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(Rows(*before.answers), (std::set<Tuple>{{0}, {1}}));

  // Mutate the database: B gains 3, so E(0,3) now witnesses 0 — and the
  // stale plan (which pre-projects B) must not be reused.
  Relation b("B", 1);
  b.Add({1});
  b.Add({2});
  b.Add({3});
  db.PutRelation(std::move(b));

  ServiceResponse after = service.Submit(req).get();
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(Rows(*after.answers), (std::set<Tuple>{{0}, {1}}));
  // Same answers here (0 already present), so check via a query whose
  // output actually changes.
  ServiceRequest req2;
  req2.query = Q("P(y) :- B(y).");
  ServiceResponse p1 = service.Submit(req2).get();
  ASSERT_TRUE(p1.status.ok());
  EXPECT_EQ(p1.answers->NumTuples(), 3u);
}

TEST(QueryService, CountVerbMatchesRowCount) {
  Database db = TinyGraph();
  QueryService service(&db);
  ServiceRequest rows;
  rows.query = Q("Q(x, y) :- E(x, y).");
  ServiceResponse r = service.Submit(rows).get();
  ASSERT_TRUE(r.status.ok());

  ServiceRequest count;
  count.query = Q("Q(x, y) :- E(x, y).");
  count.verb = ServeVerb::kCount;
  ServiceResponse c = service.Submit(count).get();
  ASSERT_TRUE(c.status.ok());
  EXPECT_TRUE(c.cache_hit);  // Rows and count share the cached plan.
  EXPECT_EQ(c.count, BigInt(static_cast<int64_t>(r.answers->NumTuples())));
}

TEST(QueryService, BooleanAndNonFreeConnexClasses) {
  Database db = TinyGraph();
  QueryService service(&db);

  ServiceRequest boolean;
  boolean.query = Q("Q() :- E(x, y), B(y).");
  ServiceResponse b = service.Submit(boolean).get();
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(b.classification, QueryClass::kBooleanAcyclic);
  EXPECT_EQ(b.answers->NumTuples(), 1u);  // Satisfiable.

  // Path of length 2 with endpoints free: acyclic, not free-connex —
  // cached as materialized answers.
  ServiceRequest path;
  path.query = Q("Q(x, z) :- E(x, y), E(y, z).");
  ServiceResponse p1 = service.Submit(path).get();
  ASSERT_TRUE(p1.status.ok());
  EXPECT_EQ(p1.classification, QueryClass::kGeneralAcyclic);
  ServiceResponse p2 = service.Submit(path).get();
  ASSERT_TRUE(p2.status.ok());
  EXPECT_TRUE(p2.cache_hit);
  EXPECT_EQ(Rows(*p2.answers), Rows(*p1.answers));

  // Cyclic triangle: oracle-backed, also cached as answers.
  ServiceRequest tri;
  tri.query = Q("T(x) :- E(x, y), E(y, z), E(z, x).");
  ServiceResponse t = service.Submit(tri).get();
  ASSERT_TRUE(t.status.ok());
  EXPECT_EQ(t.classification, QueryClass::kCyclic);
  EXPECT_EQ(Rows(*t.answers), (std::set<Tuple>{{0}, {1}, {2}}));
}

TEST(QueryService, LruEvictionBoundsResidentPlans) {
  Database db = TinyGraph();
  ServiceOptions opts;
  opts.cache_capacity = 2;
  QueryService service(&db, opts);
  for (const char* text :
       {"A(x) :- E(x, y).", "B(y) :- E(x, y).", "C(x) :- B(x)."}) {
    ServiceRequest req;
    req.query = Q(text);
    ASSERT_TRUE(service.Submit(req).get().status.ok()) << text;
  }
  EXPECT_LE(service.cache().size(), 2u);
  // The first query was evicted; re-running it is a miss.
  ServiceRequest req;
  req.query = Q("A(x) :- E(x, y).");
  EXPECT_FALSE(service.Submit(req).get().cache_hit);
}

// ---- QueryService: deadlines and cancellation -------------------------------

TEST(QueryService, ZeroDeadlineCyclicQueryReturnsDeadlineExceeded) {
  Database db = TriangleDatabase(800);
  QueryService service(&db);
  ServiceRequest req;
  req.query = TriangleQuery();
  req.timeout = std::chrono::nanoseconds(1);
  ServiceResponse resp = service.Submit(req).get();
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded)
      << resp.status;
  EXPECT_EQ(resp.classification, QueryClass::kCyclic);
  // Failed requests are never cached.
  EXPECT_EQ(service.cache().size(), 0u);
  EXPECT_EQ(service.metrics().GetCounter("serve.deadline_exceeded").Value(),
            1u);
}

TEST(QueryService, ZeroDeadlineFreeConnexReturnsDeadlineExceeded) {
  Rng rng(9);
  Database db = Figure1Database(5000, 500, &rng);
  QueryService service(&db);
  ServiceRequest req;
  req.query = Figure1Query();
  req.timeout = std::chrono::nanoseconds(1);
  ServiceResponse resp = service.Submit(req).get();
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded)
      << resp.status;
}

TEST(QueryService, CancelAllInterruptsInflightRequests) {
  Database db = TriangleDatabase(2000);
  ServiceOptions opts;
  opts.num_workers = 1;
  QueryService service(&db, opts);
  ServiceRequest req;
  req.query = TriangleQuery();
  std::future<ServiceResponse> fut = service.Submit(std::move(req));
  service.CancelAll();
  ServiceResponse resp = fut.get();
  EXPECT_EQ(resp.status.code(), StatusCode::kCancelled) << resp.status;
}

TEST(QueryService, StopCancelsQueuedRequests) {
  Database db = TriangleDatabase(2000);
  ServiceOptions opts;
  opts.num_workers = 1;
  opts.max_pending = 8;
  auto service = std::make_unique<QueryService>(&db, opts);
  std::vector<std::future<ServiceResponse>> futs;
  for (int i = 0; i < 4; ++i) {
    ServiceRequest req;
    req.query = TriangleQuery();
    futs.push_back(service->Submit(std::move(req)));
  }
  service.reset();  // Stop(): cancels queued + in-flight, joins.
  for (auto& f : futs) {
    Status st = f.get().status;
    EXPECT_EQ(st.code(), StatusCode::kCancelled) << st;
  }
}

// ---- QueryService: admission control ----------------------------------------

TEST(QueryService, RejectPolicyBouncesWhenQueueFull) {
  Database db = TriangleDatabase(2000);
  ServiceOptions opts;
  opts.num_workers = 1;
  opts.max_pending = 1;
  QueryService service(&db, opts);

  // Occupy the single worker with a slow cyclic query, then fill the
  // one queue slot; the next Reject-policy Submit must bounce — its
  // future resolves immediately with ResourceExhausted.
  std::vector<std::future<ServiceResponse>> futs;
  ServiceRequest slow;
  slow.query = TriangleQuery();
  futs.push_back(service.Submit(slow));

  bool saw_rejection = false;
  for (int i = 0; i < 8 && !saw_rejection; ++i) {
    std::future<ServiceResponse> f =
        service.Submit(slow, SubmitPolicy::Reject());
    // A rejected future is ready before Submit returns; accepted slow
    // triangles are not (and can only fail later with Cancelled).
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready &&
        f.get().status.code() == StatusCode::kResourceExhausted) {
      saw_rejection = true;
    } else {
      futs.push_back(std::move(f));
    }
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_GE(service.metrics().GetCounter("serve.rejected").Value(), 1u);

  service.CancelAll();
  for (auto& f : futs) {
    if (f.valid()) f.get();
  }
}

TEST(QueryService, BlockPolicyBoundedWaitTimesOut) {
  Database db = TriangleDatabase(2000);
  ServiceOptions opts;
  opts.num_workers = 1;
  opts.max_pending = 1;
  QueryService service(&db, opts);

  std::vector<std::future<ServiceResponse>> futs;
  ServiceRequest slow;
  slow.query = TriangleQuery();
  // Worker + the single queue slot: both occupied.
  futs.push_back(service.Submit(slow));
  futs.push_back(service.Submit(slow));

  // A bounded blocking Submit must give up on its own instead of hanging.
  SubmitPolicy bounded;
  bounded.max_wait = std::chrono::milliseconds(50);
  std::future<ServiceResponse> f = service.Submit(slow, bounded);
  EXPECT_EQ(f.get().status.code(), StatusCode::kResourceExhausted);

  service.CancelAll();
  for (auto& fut : futs) fut.get();
}

TEST(QueryService, RowLimitTruncatesAnswers) {
  Database db = TinyGraph();
  QueryService service(&db);
  ServiceRequest req;
  req.query = Q("Q(x, y) :- E(x, y).");
  req.limit = 1;
  ServiceResponse one = service.Submit(req).get();
  ASSERT_TRUE(one.status.ok()) << one.status;
  EXPECT_EQ(one.answers->NumTuples(), 1u);

  // The cached (materialized or cursor) path honors the limit too.
  req.limit = 3;
  ServiceResponse three = service.Submit(req).get();
  ASSERT_TRUE(three.status.ok());
  EXPECT_TRUE(three.cache_hit);
  EXPECT_EQ(three.answers->NumTuples(), 3u);

  req.limit = 0;  // 0 = everything.
  ServiceResponse all = service.Submit(req).get();
  ASSERT_TRUE(all.status.ok());
  EXPECT_EQ(all.answers->NumTuples(), 4u);
}

TEST(QueryService, OnDoneHookFiresAfterFutureIsReady) {
  Database db = TinyGraph();
  QueryService service(&db);
  ServiceRequest req;
  req.query = Q("Q(x) :- E(x, y).");
  std::promise<Status> hook;
  std::future<Status> hooked = hook.get_future();
  req.on_done = [&hook](const ServiceResponse& resp) {
    hook.set_value(resp.status);
  };
  std::future<ServiceResponse> fut = service.Submit(std::move(req));
  // The hook contract: it fires exactly once, after the future is ready.
  ASSERT_EQ(hooked.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_TRUE(hooked.get().ok());
  EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_TRUE(fut.get().status.ok());
}

TEST(QueryService, OnDoneHookFiresForRejectedRequests) {
  Database db = TriangleDatabase(2000);
  ServiceOptions opts;
  opts.num_workers = 1;
  opts.max_pending = 1;
  QueryService service(&db, opts);
  std::vector<std::future<ServiceResponse>> futs;
  ServiceRequest slow;
  slow.query = TriangleQuery();
  futs.push_back(service.Submit(slow));
  futs.push_back(service.Submit(slow));

  int fired = 0;
  StatusCode seen = StatusCode::kOk;
  for (int i = 0; i < 8; ++i) {
    ServiceRequest req;
    req.query = TriangleQuery();
    req.on_done = [&fired, &seen](const ServiceResponse& resp) {
      ++fired;  // Rejection fires the hook on this (submitting) thread.
      seen = resp.status.code();
    };
    std::future<ServiceResponse> f =
        service.Submit(std::move(req), SubmitPolicy::Reject());
    if (fired > 0) {
      futs.push_back(std::move(f));
      break;
    }
    futs.push_back(std::move(f));
  }
  EXPECT_GE(fired, 1);
  EXPECT_EQ(seen, StatusCode::kResourceExhausted);

  service.CancelAll();
  for (auto& f : futs) f.get();
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(QueryService, DeprecatedShimsStillWork) {
  // The pre-SubmitPolicy surface must keep its exact semantics until
  // removal (see DESIGN.md): Call == Submit().get(), TrySubmit ==
  // Reject policy with the rejection surfaced as a Status.
  Database db = TinyGraph();
  QueryService service(&db);
  ServiceRequest req;
  req.query = Q("Q(x) :- E(x, y), B(y).");
  ServiceResponse resp = service.Call(req);
  ASSERT_TRUE(resp.status.ok()) << resp.status;
  EXPECT_EQ(Rows(*resp.answers), (std::set<Tuple>{{0}, {1}}));

  Result<std::future<ServiceResponse>> r = service.TrySubmit(req);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(std::move(r).value().get().status.ok());
}
#pragma GCC diagnostic pop

TEST(QueryService, HeavyLaneCannotStarveLightQueries) {
  Database db = TriangleDatabase(1500);
  Relation b("B", 1);
  b.Add({0});
  db.PutRelation(std::move(b));
  ServiceOptions opts;
  opts.num_workers = 2;
  opts.max_concurrent_heavy = 1;  // One worker always free for light work.
  opts.max_pending = 64;
  QueryService service(&db, opts);

  // Flood the heavy lane with slow cyclic queries...
  std::vector<std::future<ServiceResponse>> heavy;
  for (int i = 0; i < 6; ++i) {
    ServiceRequest req;
    req.query = TriangleQuery();
    heavy.push_back(service.Submit(std::move(req)));
  }
  // ...and a light free-connex query must still complete promptly.
  ServiceRequest light;
  light.query = Q("Q(x) :- B(x).");
  std::future<ServiceResponse> lf = service.Submit(std::move(light));
  ASSERT_EQ(lf.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  ServiceResponse resp = lf.get();
  EXPECT_TRUE(resp.status.ok()) << resp.status;
  EXPECT_EQ(resp.answers->NumTuples(), 1u);

  service.CancelAll();
  for (auto& f : heavy) f.get();
}

// ---- QueryService: metrics --------------------------------------------------

TEST(QueryService, MetricsCountersMatchIssuedRequests) {
  Database db = TinyGraph();
  QueryService service(&db);
  const int kFreeConnex = 5;
  const int kCyclic = 2;
  for (int i = 0; i < kFreeConnex; ++i) {
    ServiceRequest req;
    req.query = Q("Q(x) :- E(x, y), B(y).");
    ASSERT_TRUE(service.Submit(req).get().status.ok());
  }
  for (int i = 0; i < kCyclic; ++i) {
    ServiceRequest req;
    req.query = Q("T(x) :- E(x, y), E(y, z), E(z, x).");
    ASSERT_TRUE(service.Submit(req).get().status.ok());
  }
  MetricsRegistry& m = service.metrics();
  EXPECT_EQ(m.GetCounter("serve.requests").Value(),
            static_cast<uint64_t>(kFreeConnex + kCyclic));
  EXPECT_EQ(m.GetCounter("serve.requests.free-connex").Value(),
            static_cast<uint64_t>(kFreeConnex));
  EXPECT_EQ(m.GetCounter("serve.requests.cyclic").Value(),
            static_cast<uint64_t>(kCyclic));
  // First request of each query misses; repeats hit.
  EXPECT_EQ(m.GetCounter("serve.cache.misses").Value(), 2u);
  EXPECT_EQ(m.GetCounter("serve.cache.hits").Value(),
            static_cast<uint64_t>(kFreeConnex + kCyclic - 2));

  std::string dump = service.StatsDump();
  EXPECT_NE(dump.find("counter serve.requests 7"), std::string::npos) << dump;
  EXPECT_NE(dump.find("histogram serve.exec_us"), std::string::npos);
  EXPECT_NE(dump.find("cache size="), std::string::npos);
}

TEST(QueryService, ConcurrentStopIsSerialized) {
  // Regression: two threads racing into Stop() both used to pass the
  // "already stopped" guard (stopping_ was set but workers_ not yet
  // cleared) and then join the same std::thread objects concurrently —
  // a double join and a data race on workers_. Stop() now serializes the
  // whole shutdown; under TSan this test fails on the old code.
  for (int round = 0; round < 8; ++round) {
    Database db = TinyGraph();
    ServiceOptions opts;
    opts.num_workers = 3;
    QueryService service(&db, opts);
    // Keep workers busy so Stop() has in-flight work to wait for.
    std::vector<std::future<ServiceResponse>> pending;
    for (int i = 0; i < 6; ++i) {
      ServiceRequest req;
      req.query = Q("A(x, y) :- E(x, z), E(z, y).");
      pending.push_back(service.Submit(std::move(req)));
    }
    std::vector<std::thread> stoppers;
    for (int t = 0; t < 4; ++t) {
      stoppers.emplace_back([&service] { service.Stop(); });
    }
    for (std::thread& t : stoppers) t.join();
    for (auto& f : pending) {
      // Completed or cancelled — either way the future must resolve.
      f.get();
    }
    service.Stop();  // Still idempotent after the concurrent shutdown.
  }
}

TEST(QueryService, DatabaseVersionBumpsOnMutation) {
  Database db;
  uint64_t v0 = db.version();
  Relation e("E", 2);
  e.Add({0, 1});
  db.PutRelation(std::move(e));
  EXPECT_GT(db.version(), v0);
  uint64_t v1 = db.version();
  (void)db.FindMutable("E");
  EXPECT_GT(db.version(), v1);  // Conservative: handing out a mutable
                                // pointer counts as a mutation.
}

}  // namespace
}  // namespace fgq
