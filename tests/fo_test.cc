#include <gtest/gtest.h>

#include <set>

#include "fgq/fo/bounded_degree.h"
#include "fgq/fo/naive_fo.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

Database TriangleAndPath() {
  // 0-1-2 triangle, 3-4 pendant path.
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(3, 4);
  return GraphDatabase(g);
}

// ---- Naive FO evaluation (the ||D||^h baseline of Section 3) -------------------

TEST(NaiveFo, ModelChecking) {
  Database db = TriangleAndPath();
  auto tri = ParseFoFormula(
      "exists x. exists y. exists z. (E(x, y) & E(y, z) & E(z, x) & "
      "x != y & y != z & x != z)");
  ASSERT_TRUE(tri.ok());
  EXPECT_TRUE(*ModelCheckFoNaive(**tri, db));

  auto square = ParseFoFormula(
      "exists a. exists b. exists c. exists d. (E(a, b) & E(b, c) & "
      "E(c, d) & E(d, a) & a != c & b != d)");
  ASSERT_TRUE(square.ok());
  EXPECT_FALSE(*ModelCheckFoNaive(**square, db));
}

TEST(NaiveFo, UniversalQuantifier) {
  Database db = TriangleAndPath();
  // "Every vertex has a neighbor" — true here.
  auto f = ParseFoFormula("forall x. exists y. E(x, y)");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(*ModelCheckFoNaive(**f, db));
  // "Every vertex neighbors vertex 0" — false.
  auto g = ParseFoFormula("forall x. (x = 0 | E(x, 0))");
  EXPECT_FALSE(*ModelCheckFoNaive(**g, db));
}

TEST(NaiveFo, AnswerSetEvaluation) {
  Database db = TriangleAndPath();
  // Vertices on a triangle.
  auto f = ParseFoFormula(
      "exists y. exists z. (E(x, y) & E(y, z) & E(z, x) & x != y & "
      "y != z & x != z)");
  ASSERT_TRUE(f.ok());
  auto res = EvaluateFoNaive(**f, db, {"x"});
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->NumTuples(), 3u);  // 0, 1, 2.
  auto cnt = CountFoNaive(**f, db, {"x"});
  EXPECT_EQ(*cnt, 3);
}

TEST(NaiveFo, NegationAndEquality) {
  Database db = TriangleAndPath();
  // Isolated-from-0 vertices: no edge to 0 and not 0 itself.
  auto f = ParseFoFormula("~E(x, 0) & x != 0");
  ASSERT_TRUE(f.ok());
  auto res = EvaluateFoNaive(**f, db, {"x"});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->NumTuples(), 2u);  // 3 and 4.
}

TEST(NaiveFo, RejectsSoAtoms) {
  Database db = TriangleAndPath();
  auto f = ParseFoFormula("X(x)", {"X"});
  ASSERT_TRUE(f.ok());
  auto res = EvaluateFoNaive(**f, db, {"x"});
  EXPECT_FALSE(res.ok());
}

TEST(NaiveFo, SentenceRejectsFreeVariables) {
  Database db = TriangleAndPath();
  auto f = ParseFoFormula("E(x, 0)");
  EXPECT_FALSE(ModelCheckFoNaive(**f, db).ok());
}

// ---- Degree, adjacency, balls (Section 3.1) ------------------------------------

TEST(Degree, StructureDegree) {
  Database db = TriangleAndPath();
  // Symmetric encoding: vertex 0 is in 4 tuples (0,1),(1,0),(0,2),(2,0).
  EXPECT_EQ(db.Degree(), 4u);
}

TEST(AdjacencyIndex, NeighborsAndBalls) {
  Database db = TriangleAndPath();
  AdjacencyIndex adj(db);
  EXPECT_EQ(adj.Neighbors(0).size(), 2u);
  EXPECT_EQ(adj.Neighbors(3).size(), 1u);
  std::vector<Value> ball0 = adj.Ball(0, 1);
  EXPECT_EQ(ball0.size(), 3u);  // {0, 1, 2}.
  std::vector<Value> ball3 = adj.Ball(3, 2);
  EXPECT_EQ(ball3.size(), 2u);  // {3, 4}.
  EXPECT_EQ(adj.Ball(0, 0).size(), 1u);
}

TEST(LowDegree, DefinitionCheck) {
  Rng rng(41);
  Graph sparse = RandomBoundedDegreeGraph(200, 3, &rng);
  EXPECT_TRUE(IsLowDegree(GraphDatabase(sparse), 0.5));
  // A clique has degree n-1 > n^0.5.
  Graph clique(20);
  for (int u = 0; u < 20; ++u) {
    for (int v = u + 1; v < 20; ++v) clique.AddEdge(u, v);
  }
  EXPECT_FALSE(IsLowDegree(GraphDatabase(clique), 0.5));
}

// ---- Local query evaluation (Theorems 3.1/3.2) ----------------------------------

TEST(LocalQuery, TriangleMembershipIsOneLocal) {
  Database db = TriangleAndPath();
  LocalQuery q;
  q.var = "x";
  q.radius = 1;
  q.theta = std::move(ParseFoFormula(
                  "exists y. exists z. (E(x, y) & E(y, z) & E(z, x) & "
                  "x != y & y != z & x != z)"))
                .value();
  auto mc = ModelCheckExistsLocal(q, db);
  ASSERT_TRUE(mc.ok()) << mc.status();
  EXPECT_TRUE(*mc);
  auto cnt = CountLocal(q, db);
  EXPECT_EQ(*cnt, 3);
  auto e = MakeLocalEnumerator(q, db);
  ASSERT_TRUE(e.ok());
  Tuple t;
  std::set<Value> sat;
  while ((*e)->Next(&t)) sat.insert(t[0]);
  EXPECT_EQ(sat, (std::set<Value>{0, 1, 2}));
}

TEST(LocalQuery, BallRelativizationMatters) {
  // "Some vertex is within distance 1 of everything in its ball" vs the
  // naive global quantifier: build a star; the center's ball is the whole
  // graph, a leaf's ball is just {leaf, center}.
  Graph star(5);
  for (int i = 1; i < 5; ++i) star.AddEdge(0, i);
  Database db = GraphDatabase(star);
  LocalQuery q;
  q.var = "x";
  q.radius = 1;
  // "All ball members equal x or neighbor x" — true for every vertex at
  // radius 1 (trivially), so count = 5.
  q.theta = std::move(ParseFoFormula("forall y. (y = x | E(x, y))")).value();
  EXPECT_EQ(*CountLocal(q, db), 5);
  // Naive global evaluation of the same formula: only the center.
  auto parsed = ParseFoFormula("forall y. (y = x | E(x, y))");
  auto global = EvaluateFoNaive(**parsed, db, {"x"});
  EXPECT_EQ(global->NumTuples(), 1u);
}

TEST(LocalQuery, AgreesWithNaiveOnRadiusCoveringGraph) {
  // With radius >= diameter the relativized and global semantics agree on
  // connected graphs.
  Rng rng(43);
  Graph g = RandomTree(12, &rng);
  Database db = GraphDatabase(g);
  LocalQuery q;
  q.var = "x";
  q.radius = 12;
  q.theta =
      std::move(ParseFoFormula(
                    "exists y. (E(x, y) & exists z. (E(y, z) & z != x))"))
          .value();
  auto local_count = CountLocal(q, db);
  ASSERT_TRUE(local_count.ok());
  auto naive = CountFoNaive(*q.theta, db, {"x"});
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(*local_count, *naive);
}

// ---- Example 3.3 and Algorithm 1 ------------------------------------------------

FunctionalStructure SmallFs() {
  FunctionalStructure fs;
  fs.psi = {true, true, false, true};  // psi = {0, 1, 3}.
  fs.funcs = {
      {1, 2, 3, 0},                                    // f0: rotation.
      {0, 0, FunctionalStructure::kNoValue, 3},        // f1: partial.
  };
  return fs;
}

TEST(Example33, ExistsPsiAvoiding) {
  FunctionalStructure fs = SmallFs();
  // |psi| = 3. Exclusions {f0(0)} = {1}: 1 in psi -> 1 distinct -> 1 < 3.
  EXPECT_TRUE(ExistsPsiAvoiding(fs, {0}, {0}));
  // Exclude f0(0)=1, f0(3)=0, f1(3)=3: three distinct psi elements -> no
  // psi element left.
  EXPECT_FALSE(ExistsPsiAvoiding(fs, {0, 0, 1}, {0, 3, 3}));
  // f1(2) undefined: contributes nothing.
  EXPECT_TRUE(ExistsPsiAvoiding(fs, {1}, {2}));
  // Excluding a non-psi element does not count: f0(1) = 2 not in psi.
  EXPECT_TRUE(ExistsPsiAvoiding(fs, {0, 0, 0}, {1, 1, 1}));
}

TEST(Example33, MatchesBruteForceSemantics) {
  FunctionalStructure fs = SmallFs();
  Rng rng(44);
  for (int trial = 0; trial < 50; ++trial) {
    size_t k = 1 + rng.Below(3);
    std::vector<size_t> ids;
    std::vector<Value> args;
    for (size_t i = 0; i < k; ++i) {
      ids.push_back(rng.Below(2));
      args.push_back(static_cast<Value>(rng.Below(4)));
    }
    bool brute = false;
    for (Value y = 0; y < 4 && !brute; ++y) {
      if (!fs.psi[static_cast<size_t>(y)]) continue;
      bool ok = true;
      for (size_t i = 0; i < k; ++i) {
        if (fs.funcs[ids[i]][static_cast<size_t>(args[i])] == y) ok = false;
      }
      brute = ok;
    }
    EXPECT_EQ(ExistsPsiAvoiding(fs, ids, args), brute) << "trial " << trial;
  }
}

TEST(Algorithm1, EnumeratesPairsMinusExceptions) {
  std::vector<Value> lhs = {0, 1, 2};
  std::vector<Value> rhs = {10, 11, 12, 13};
  auto exclusions = [](Value a) -> std::vector<Value> {
    if (a == 0) return {10};
    if (a == 1) return {11, 13};
    return {};
  };
  std::set<std::pair<Value, Value>> got;
  int64_t n = EnumeratePairsWithExceptions(
      lhs, rhs, exclusions,
      [&](Value a, Value b) { got.insert({a, b}); });
  EXPECT_EQ(n, 12 - 3);
  EXPECT_EQ(got.size(), 9u);
  EXPECT_FALSE(got.count({0, 10}));
  EXPECT_FALSE(got.count({1, 11}));
  EXPECT_TRUE(got.count({2, 10}));
}

}  // namespace
}  // namespace fgq
