#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fgq/eval/enumerate.h"
#include "fgq/eval/oracle.h"
#include "fgq/eval/ucq_enum.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto r = ParseConjunctiveQuery(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

std::string Key(Relation r) {
  r.SortDedup();
  std::string s = std::to_string(r.NumTuples()) + ":";
  for (size_t i = 0; i < r.NumTuples(); ++i) {
    for (size_t j = 0; j < r.arity(); ++j) {
      s += std::to_string(r.Row(i)[j]) + ",";
    }
    s += ";";
  }
  return s;
}

/// Checks the enumerator produces exactly the oracle's answers, with no
/// repetitions.
void ExpectEnumeratesExactly(AnswerEnumerator* e, const ConjunctiveQuery& q,
                             const Database& db) {
  std::set<Tuple> seen;
  Tuple t;
  size_t count = 0;
  while (e->Next(&t)) {
    EXPECT_TRUE(seen.insert(t).second) << "duplicate answer";
    ++count;
  }
  auto oracle = EvaluateBacktrack(q, db);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  EXPECT_EQ(count, oracle->NumTuples());
  for (const Tuple& answer : seen) {
    EXPECT_TRUE(oracle->Contains(answer));
  }
}

Database TinyGraph() {
  Database db;
  Relation e("E", 2);
  e.Add({1, 2});
  e.Add({2, 3});
  e.Add({3, 4});
  e.Add({2, 4});
  db.PutRelation(e);
  Relation b("B", 1);
  b.Add({4});
  b.Add({3});
  db.PutRelation(b);
  return db;
}

// ---- Constant-delay enumerator (Theorem 4.6) ---------------------------------

TEST(ConstantDelay, Example45Query) {
  Database db = TinyGraph();
  // phi(x, y) = exists w, z: E(x, w) & E(y, z) & B(z)  — free-connex.
  ConjunctiveQuery q = Q("Q(x, y) :- E(x, w), E(y, z), B(z).");
  auto e = MakeConstantDelayEnumerator(q, db);
  ASSERT_TRUE(e.ok()) << e.status();
  ExpectEnumeratesExactly(e->get(), q, db);
}

TEST(ConstantDelay, RejectsNonFreeConnex) {
  Database db;
  db.PutRelation(Relation("A", 2));
  db.PutRelation(Relation("B", 2));
  auto e = MakeConstantDelayEnumerator(Q("Pi(x, y) :- A(x, z), B(z, y)."), db);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConstantDelay, RejectsCyclic) {
  Database db;
  db.PutRelation(Relation("E", 2));
  db.PutRelation(Relation("F", 2));
  db.PutRelation(Relation("G", 2));
  auto e = MakeConstantDelayEnumerator(
      Q("Q(x, y, z) :- E(x, y), F(y, z), G(z, x)."), db);
  EXPECT_FALSE(e.ok());
}

TEST(ConstantDelay, BooleanQueries) {
  Database db = TinyGraph();
  auto t = MakeConstantDelayEnumerator(Q("Q() :- E(x, y)."), db);
  ASSERT_TRUE(t.ok());
  Tuple out;
  EXPECT_TRUE((*t)->Next(&out));
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE((*t)->Next(&out));

  auto f = MakeConstantDelayEnumerator(Q("Q() :- E(x, x)."), db);
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE((*f)->Next(&out));
}

TEST(ConstantDelay, EmptyResult) {
  Database db = TinyGraph();
  auto e = MakeConstantDelayEnumerator(Q("Q(x) :- E(x, x)."), db);
  ASSERT_TRUE(e.ok());
  Tuple out;
  EXPECT_FALSE((*e)->Next(&out));
}

TEST(ConstantDelay, UnaryQuery) {
  Database db = TinyGraph();
  ConjunctiveQuery q = Q("Q(x) :- E(x, y), B(y).");
  auto e = MakeConstantDelayEnumerator(q, db);
  ASSERT_TRUE(e.ok()) << e.status();
  ExpectEnumeratesExactly(e->get(), q, db);
}

TEST(ConstantDelay, Figure1QueryOnRandomData) {
  Rng rng(5);
  Database db = Figure1Database(50, 6, &rng);
  ConjunctiveQuery q = Figure1Query();
  auto e = MakeConstantDelayEnumerator(q, db);
  ASSERT_TRUE(e.ok()) << e.status();
  ExpectEnumeratesExactly(e->get(), q, db);
}

struct EnumParam {
  std::string query;
  size_t tuples;
  Value domain;
  uint64_t seed;
};

void PrintTo(const EnumParam& p, std::ostream* os) { *os << p.query; }

class ConstantDelaySweep : public ::testing::TestWithParam<EnumParam> {};

TEST_P(ConstantDelaySweep, MatchesOracle) {
  const EnumParam& p = GetParam();
  Rng rng(p.seed);
  ConjunctiveQuery q = Q(p.query);
  Database db;
  for (const Atom& a : q.atoms()) {
    if (!db.Has(a.relation)) {
      db.PutRelation(
          RandomRelation(a.relation, a.arity(), p.tuples, p.domain, &rng));
    }
  }
  db.DeclareDomainSize(p.domain);
  auto e = MakeConstantDelayEnumerator(q, db);
  ASSERT_TRUE(e.ok()) << e.status();
  ExpectEnumeratesExactly(e->get(), q, db);
}

INSTANTIATE_TEST_SUITE_P(
    FreeConnexInstances, ConstantDelaySweep,
    ::testing::Values(
        EnumParam{"Q(x, y) :- R(x, y).", 25, 5, 21},
        EnumParam{"Q(x, y) :- R(x, y), S(y, z).", 30, 5, 22},
        EnumParam{"Q(x, y, z) :- R(x, y), S(y, z).", 30, 4, 23},
        EnumParam{"Q(x, y) :- R(x, w), S(y, z), B(z).", 25, 5, 24},
        EnumParam{"Q(x1, x2, x3) :- R(x1, x2), S(x2, x3, y), T(y, w).", 30,
                  4, 25},
        EnumParam{"Q(a, b) :- R(a, b), S(b), T(a).", 25, 5, 26},
        EnumParam{"Q(a, b, c) :- R(a, b), S(b, c), T(c), U(a, b, c).", 40,
                  4, 27},
        EnumParam{"Q(x) :- R(x, y), S(y, z).", 30, 5, 28},
        EnumParam{"Q(u, v) :- A(u), B(v).", 15, 6, 29}));

// ---- Linear-delay enumerator (Theorem 4.3 / Algorithm 2) ---------------------

class LinearDelaySweep : public ::testing::TestWithParam<EnumParam> {};

TEST_P(LinearDelaySweep, MatchesOracle) {
  const EnumParam& p = GetParam();
  Rng rng(p.seed);
  ConjunctiveQuery q = Q(p.query);
  Database db;
  for (const Atom& a : q.atoms()) {
    if (!db.Has(a.relation)) {
      db.PutRelation(
          RandomRelation(a.relation, a.arity(), p.tuples, p.domain, &rng));
    }
  }
  db.DeclareDomainSize(p.domain);
  auto e = MakeLinearDelayEnumerator(q, db);
  ASSERT_TRUE(e.ok()) << e.status();
  ExpectEnumeratesExactly(e->get(), q, db);
}

INSTANTIATE_TEST_SUITE_P(
    AcyclicInstances, LinearDelaySweep,
    ::testing::Values(
        // Crucially includes NON-free-connex queries: Algorithm 2 covers
        // every ACQ.
        EnumParam{"Q(x, y) :- A(x, z), B(z, y).", 30, 5, 31},
        EnumParam{"Q(x1, x4) :- E1(x1, x2), E2(x2, x3), E3(x3, x4).", 25, 4,
                  32},
        EnumParam{"Q(x, y) :- R(x, y).", 20, 5, 33},
        EnumParam{"Q(x, y, z) :- A(x, w), B(w, y), C(y, z).", 25, 4, 34},
        EnumParam{"Q(a) :- R(a, b), S(b).", 25, 5, 35}));

TEST(LinearDelay, BooleanQuery) {
  Database db = TinyGraph();
  auto e = MakeLinearDelayEnumerator(Q("Q() :- E(x, y), B(y)."), db);
  ASSERT_TRUE(e.ok());
  Tuple out;
  EXPECT_TRUE((*e)->Next(&out));
  EXPECT_FALSE((*e)->Next(&out));
}

TEST(LinearDelay, RejectsComparisons) {
  Database db = TinyGraph();
  auto e = MakeLinearDelayEnumerator(Q("Q(x, y) :- E(x, y), x != y."), db);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kUnsupported);
}

// ---- Materialized baseline ----------------------------------------------------

TEST(Materialized, ReplaysRelation) {
  Relation r("R", 2);
  r.Add({1, 2});
  r.Add({3, 4});
  auto e = MakeMaterializedEnumerator(r);
  Tuple t;
  EXPECT_TRUE(e->Next(&t));
  EXPECT_TRUE(e->Next(&t));
  EXPECT_FALSE(e->Next(&t));
}

TEST(Materialized, DrainEnumerator) {
  Relation r("R", 1);
  r.Add({2});
  r.Add({1});
  auto e = MakeMaterializedEnumerator(r);
  Relation out = DrainEnumerator(e.get(), "out", 1);
  EXPECT_EQ(out.NumTuples(), 2u);
}

// ---- Union enumeration (Theorem 4.13) -----------------------------------------

TEST(UnionEnum, AllFreeConnexDisjuncts) {
  Database db = TinyGraph();
  auto u = ParseUnionQuery(
      "Q(x, y) :- E(x, y).\n"
      "Q(a, b) :- E(a, w), E(b, z), B(z).");
  ASSERT_TRUE(u.ok());
  auto e = MakeUnionEnumerator(*u, db);
  ASSERT_TRUE(e.ok()) << e.status();
  std::set<Tuple> seen;
  Tuple t;
  while ((*e)->Next(&t)) {
    EXPECT_TRUE(seen.insert(t).second) << "duplicate in union";
  }
  // Union semantics against the two oracles.
  auto o1 = EvaluateBacktrack(u->disjuncts[0], db);
  auto o2 = EvaluateBacktrack(u->disjuncts[1], db);
  std::set<Tuple> expected;
  for (size_t i = 0; i < o1->NumTuples(); ++i) {
    expected.insert(o1->Row(i).ToTuple());
  }
  for (size_t i = 0; i < o2->NumTuples(); ++i) {
    expected.insert(o2->Row(i).ToTuple());
  }
  EXPECT_EQ(seen, expected);
}

TEST(UnionEnum, Equation1UnionExtension) {
  // The paper's Equation (1): phi1 is NOT free-connex, but phi2 provides
  // {x, z, y} and repairs it.
  auto u = ParseUnionQuery(
      "Q(x, y, w) :- R1(x, z), R2(z, y), R3(x, w).\n"
      "Q(x, y, w) :- R1(x, y), R2(y, w).");
  ASSERT_TRUE(u.ok());
  EXPECT_FALSE(IsFreeConnex(u->disjuncts[0]));
  EXPECT_TRUE(IsFreeConnex(u->disjuncts[1]));

  Rng rng(77);
  Database db;
  db.PutRelation(RandomRelation("R1", 2, 30, 5, &rng));
  db.PutRelation(RandomRelation("R2", 2, 30, 5, &rng));
  db.PutRelation(RandomRelation("R3", 2, 30, 5, &rng));
  db.DeclareDomainSize(5);

  auto e = MakeUnionEnumerator(*u, db);
  ASSERT_TRUE(e.ok()) << e.status();
  std::set<Tuple> seen;
  Tuple t;
  while ((*e)->Next(&t)) {
    EXPECT_TRUE(seen.insert(t).second);
  }
  std::set<Tuple> expected;
  for (const ConjunctiveQuery& d : u->disjuncts) {
    auto o = EvaluateBacktrack(d, db);
    ASSERT_TRUE(o.ok());
    for (size_t i = 0; i < o->NumTuples(); ++i) {
      expected.insert(o->Row(i).ToTuple());
    }
  }
  EXPECT_EQ(seen, expected);
}

TEST(UnionEnum, ProvidesVariablesOnEquation1) {
  auto u = ParseUnionQuery(
      "Q(x, y, w) :- R1(x, z), R2(z, y), R3(x, w).\n"
      "Q(x, y, w) :- R1(x, y), R2(y, w).");
  ASSERT_TRUE(u.ok());
  std::vector<std::pair<std::string, std::string>> h;
  EXPECT_TRUE(ProvidesVariables(u->disjuncts[1], u->disjuncts[0],
                                {"x", "z", "y"}, &h));
  EXPECT_FALSE(h.empty());
}

TEST(UnionEnum, RepairedUnionOutlivesFactoryScratch) {
  // The first disjunct is not free-connex; the factory repairs it with a
  // provided atom materialized into a factory-local scratch database and
  // builds every disjunct enumerator against a factory-local merged view.
  // Draining only after the factory has returned (under ASan in CI) pins
  // the ownership contract: the union enumerator itself must keep the
  // merged view alive, since no caller can.
  auto u = ParseUnionQuery(
      "Q(x, y, w) :- R1(x, z), R2(z, y), R3(x, w).\n"
      "Q(x, y, w) :- R1(x, y), R2(y, w).");
  ASSERT_TRUE(u.ok());
  Database db;
  Relation r1("R1", 2);
  r1.Add({0, 1});
  r1.Add({1, 2});
  Relation r2("R2", 2);
  r2.Add({1, 3});
  r2.Add({2, 0});
  Relation r3("R3", 2);
  r3.Add({0, 4});
  r3.Add({1, 4});
  db.PutRelation(r1);
  db.PutRelation(r2);
  db.PutRelation(r3);

  std::unique_ptr<AnswerEnumerator> e;
  {
    auto made = MakeUnionEnumerator(*u, db);
    ASSERT_TRUE(made.ok()) << made.status();
    e = std::move(made.value());
  }

  Relation want("Q", 3);
  for (const ConjunctiveQuery& q : u->disjuncts) {
    auto r = EvaluateBacktrack(q, db);
    ASSERT_TRUE(r.ok()) << r.status();
    want.AppendFrom(*r);
  }
  want.SortDedup();

  Relation got = DrainEnumerator(e.get(), "Q", 3);
  got.SortDedup();
  EXPECT_GT(got.NumTuples(), 0u);
  EXPECT_EQ(got.raw(), want.raw());
}

TEST(UnionEnum, IrreparableUnionFails) {
  // Two copies of the matrix query over disjoint relations: nothing
  // provides the missing variables.
  auto u = ParseUnionQuery(
      "Q(x, y) :- A(x, z), B(z, y).\n"
      "Q(x, y) :- C(x, z), D(z, y).");
  ASSERT_TRUE(u.ok());
  Database db;
  db.PutRelation(Relation("A", 2));
  db.PutRelation(Relation("B", 2));
  db.PutRelation(Relation("C", 2));
  db.PutRelation(Relation("D", 2));
  auto e = MakeUnionEnumerator(*u, db);
  EXPECT_FALSE(e.ok());
}

}  // namespace
}  // namespace fgq
