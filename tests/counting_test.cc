#include <gtest/gtest.h>

#include <string>

#include "fgq/count/acq_count.h"
#include "fgq/count/fields.h"
#include "fgq/count/matchings.h"
#include "fgq/eval/oracle.h"
#include "fgq/hypergraph/star_size.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto r = ParseConjunctiveQuery(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Database RandomDbFor(const ConjunctiveQuery& q, size_t tuples, Value domain,
                     uint64_t seed) {
  Rng rng(seed);
  Database db;
  for (const Atom& a : q.atoms()) {
    if (!db.Has(a.relation)) {
      db.PutRelation(
          RandomRelation(a.relation, a.arity(), tuples, domain, &rng));
    }
  }
  db.DeclareDomainSize(domain);
  return db;
}

// ---- Quantifier-free counting DP (Theorem 4.21) -------------------------------

TEST(CountAcq0, SimpleJoin) {
  Database db;
  Relation e("E", 2);
  e.Add({1, 2});
  e.Add({2, 3});
  e.Add({2, 4});
  db.PutRelation(e);
  Relation f = e;
  f.set_name("F");
  db.PutRelation(f);
  auto ones = [](Value) { return BigInt(1); };
  auto c = WeightedCountAcq0<BigIntField>(
      Q("Q(x, y, z) :- E(x, y), F(y, z)."), db, ones);
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(c->ToString(), "2");  // (1,2,3), (1,2,4).
}

TEST(CountAcq0, RejectsQuantifiedQuery) {
  Database db;
  db.PutRelation(Relation("E", 2));
  auto ones = [](Value) { return BigInt(1); };
  auto c = WeightedCountAcq0<BigIntField>(Q("Q(x) :- E(x, y)."), db, ones);
  EXPECT_FALSE(c.ok());
}

TEST(CountAcq0, WeightedSumMatchesManualComputation) {
  Database db;
  Relation e("E", 2);
  e.Add({0, 1});
  e.Add({1, 2});
  db.PutRelation(e);
  // Weight w(v) = v + 1; answers (0,1) and (1,2) weigh 1*2 and 2*3.
  auto w = [](Value v) { return static_cast<double>(v + 1); };
  auto c = WeightedCountAcq0<DoubleField>(Q("Q(x, y) :- E(x, y)."), db, w);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(*c, 8.0);
}

TEST(CountAcq0, FieldsAgreeModulo) {
  ConjunctiveQuery q = Q("Q(x, y, z) :- R(x, y), S(y, z), T(z).");
  Database db = RandomDbFor(q, 60, 6, 404);
  auto big = WeightedCountAcq0<BigIntField>(q, db,
                                            [](Value) { return BigInt(1); });
  auto mod = WeightedCountAcq0<ModField<1000000007>>(
      q, db, [](Value) { return uint64_t{1}; });
  auto i64 = WeightedCountAcq0<Int64Field>(q, db,
                                           [](Value) { return int64_t{1}; });
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(mod.ok());
  ASSERT_TRUE(i64.ok());
  EXPECT_EQ(big->ToInt64() % 1000000007, static_cast<int64_t>(*mod));
  EXPECT_EQ(big->ToInt64(), *i64);
}

// ---- Star-size counting (Theorem 4.28) ----------------------------------------

struct CountParam {
  std::string query;
  size_t tuples;
  Value domain;
  uint64_t seed;
};

void PrintTo(const CountParam& p, std::ostream* os) { *os << p.query; }

class CountSweep : public ::testing::TestWithParam<CountParam> {};

TEST_P(CountSweep, MatchesOracleCount) {
  const CountParam& p = GetParam();
  ConjunctiveQuery q = Q(p.query);
  Database db = RandomDbFor(q, p.tuples, p.domain, p.seed);
  auto fast = CountAcq(q, db);
  ASSERT_TRUE(fast.ok()) << fast.status();
  auto oracle = EvaluateBacktrack(q, db);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(fast->ToString(), std::to_string(oracle->NumTuples()));
}

INSTANTIATE_TEST_SUITE_P(
    AcyclicInstances, CountSweep,
    ::testing::Values(
        // Quantifier-free (pure DP).
        CountParam{"Q(x, y) :- R(x, y).", 30, 6, 51},
        CountParam{"Q(x, y, z) :- R(x, y), S(y, z).", 40, 5, 52},
        CountParam{"Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d).", 40, 4, 53},
        // Free-connex (star size 1).
        CountParam{"Q(x) :- R(x, y).", 30, 6, 54},
        CountParam{"Q(x, y) :- R(x, w), S(y, z), B(z).", 30, 5, 55},
        // Star size 2: the matrix query.
        CountParam{"Q(x, y) :- A(x, z), B(z, y).", 30, 5, 56},
        // Star size 3.
        CountParam{"Q(x1, x2, x3) :- E1(t, x1), E2(t, x2), E3(t, x3).", 25,
                   5, 57},
        // Mixed: component plus quantifier-free part.
        CountParam{"Q(x, y) :- A(x, z), B(z), C(x, y).", 30, 5, 58},
        // Boolean.
        CountParam{"Q() :- R(x, y), S(y, z).", 10, 6, 59},
        // Path with both ends free.
        CountParam{"Q(x1, x4) :- E1(x1, x2), E2(x2, x3), E3(x3, x4).", 30, 4,
                   60}));

TEST(CountAcq, StarQueryAgainstOracleAcrossSizes) {
  for (size_t s = 1; s <= 3; ++s) {
    ConjunctiveQuery q = StarQuery(s);
    Database db = RandomDbFor(q, 20, 5, 70 + s);
    auto fast = CountAcq(q, db);
    ASSERT_TRUE(fast.ok()) << fast.status();
    auto oracle = EvaluateBacktrack(q, db);
    EXPECT_EQ(fast->ToString(), std::to_string(oracle->NumTuples()))
        << "star size " << s;
  }
}

TEST(CountAcq, RejectsCyclic) {
  Database db;
  db.PutRelation(Relation("E", 2));
  db.PutRelation(Relation("F", 2));
  db.PutRelation(Relation("G", 2));
  auto c = CountAcq(Q("Q() :- E(x, y), F(y, z), G(z, x)."), db);
  EXPECT_FALSE(c.ok());
}

TEST(CountAnswers, FallsBackOnCyclicQueries) {
  ConjunctiveQuery q = Q("Q() :- E(x, y), F(y, z), G(z, x).");
  Database db = RandomDbFor(q, 15, 5, 81);
  auto c = CountAnswers(q, db);
  ASSERT_TRUE(c.ok()) << c.status();
  auto oracle = EvaluateBacktrack(q, db);
  EXPECT_EQ(c->ToString(), std::to_string(oracle->NumTuples()));
}

TEST(WeightedCountAcq, QuantifiedWeighted) {
  // Q(x) :- E(x, y): weight of answer = w(x); sum over distinct x with a
  // successor.
  Database db;
  Relation e("E", 2);
  e.Add({0, 5});
  e.Add({0, 6});
  e.Add({2, 5});
  db.PutRelation(e);
  auto c = WeightedCountAcq(Q("Q(x) :- E(x, y)."), db,
                            [](Value v) { return static_cast<double>(v + 1); });
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_DOUBLE_EQ(*c, 1.0 + 3.0);  // x = 0 and x = 2.
}

// ---- Equation (2): perfect matchings (Section 4.4) -----------------------------

TEST(Matchings, RyserOnKnownGraphs) {
  // Complete bipartite K3,3: 3! = 6 perfect matchings.
  BipartiteGraph k33;
  k33.adj.assign(3, std::vector<bool>(3, true));
  EXPECT_EQ(CountPerfectMatchingsRyser(k33)->ToString(), "6");
  // Identity matrix: exactly 1.
  BipartiteGraph id;
  id.adj.assign(4, std::vector<bool>(4, false));
  for (int i = 0; i < 4; ++i) id.adj[static_cast<size_t>(i)][static_cast<size_t>(i)] = true;
  EXPECT_EQ(CountPerfectMatchingsRyser(id)->ToString(), "1");
  // No edges: 0.
  BipartiteGraph none;
  none.adj.assign(3, std::vector<bool>(3, false));
  EXPECT_EQ(CountPerfectMatchingsRyser(none)->ToString(), "0");
}

TEST(Matchings, QueryIdentityMatchesRyser) {
  Rng rng(31);
  for (size_t n = 1; n <= 4; ++n) {
    for (int trial = 0; trial < 3; ++trial) {
      BipartiteGraph g = RandomBipartite(n, 2, &rng);
      auto via_query = CountPerfectMatchingsViaQuery(g);
      auto via_ryser = CountPerfectMatchingsRyser(g);
      ASSERT_TRUE(via_query.ok()) << via_query.status();
      ASSERT_TRUE(via_ryser.ok());
      EXPECT_EQ(via_query->ToString(), via_ryser->ToString())
          << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(Matchings, PsiHasStarSizeN) {
  for (size_t n = 2; n <= 5; ++n) {
    EXPECT_EQ(QuantifiedStarSize(BuildMatchingPsi(n)), n);
    EXPECT_EQ(QuantifiedStarSize(BuildMatchingPhi(n)), 1u);
  }
}

TEST(Matchings, RyserRejectsLargeN) {
  BipartiteGraph g;
  g.adj.assign(25, std::vector<bool>(25, true));
  EXPECT_FALSE(CountPerfectMatchingsRyser(g).ok());
}

}  // namespace
}  // namespace fgq
