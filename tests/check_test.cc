// Tests for the differential-testing subsystem (src/fgq/check/): generator
// class targeting and determinism, the brute-force reference, the seed-range
// runner (zero mismatches expected), the regression file format, and the
// committed corpus replay. FGQ_REGRESS_DIR points at tests/regress in the
// source tree.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fgq/check/check.h"
#include "fgq/check/differ.h"
#include "fgq/check/gen.h"
#include "fgq/check/reference.h"
#include "fgq/check/regress.h"
#include "fgq/check/shrink.h"
#include "fgq/eval/engine.h"
#include "fgq/query/parser.h"

namespace fgq {
namespace {

FuzzOptions SmallOptions() {
  FuzzOptions opt;
  // Keep the test fast under TSan: smaller service footprint, fewer
  // parallel threads.
  opt.parallel_threads = 4;
  return opt;
}

TEST(FuzzGen, DeterministicAcrossRuns) {
  const FuzzOptions opt;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng a(seed), b(seed);
    const ConjunctiveQuery qa =
        GenerateFuzzQuery(FuzzClass::kGeneralAcyclic, opt, &a);
    const ConjunctiveQuery qb =
        GenerateFuzzQuery(FuzzClass::kGeneralAcyclic, opt, &b);
    EXPECT_EQ(qa.ToString(), qb.ToString());
    UnionQuery ua;
    ua.disjuncts.push_back(qa);
    UnionQuery ub;
    ub.disjuncts.push_back(qb);
    const Database da = GenerateFuzzDatabase(ua, opt, &a);
    const Database db = GenerateFuzzDatabase(ub, opt, &b);
    EXPECT_EQ(da.ToString(100), db.ToString(100));
  }
}

TEST(FuzzGen, HitsTargetClass) {
  const FuzzOptions opt;
  const struct {
    FuzzClass fuzz;
    QueryClass want;
  } kCases[] = {
      {FuzzClass::kBooleanAcyclic, QueryClass::kBooleanAcyclic},
      {FuzzClass::kFreeConnex, QueryClass::kFreeConnexAcyclic},
      {FuzzClass::kGeneralAcyclic, QueryClass::kGeneralAcyclic},
      {FuzzClass::kDisequalities, QueryClass::kAcyclicDisequalities},
      {FuzzClass::kOrderComparisons, QueryClass::kAcyclicOrderComparisons},
      {FuzzClass::kNegated, QueryClass::kNegated},
      {FuzzClass::kCyclic, QueryClass::kCyclic},
  };
  for (const auto& c : kCases) {
    for (uint64_t seed = 0; seed < 12; ++seed) {
      Rng rng(seed);
      const ConjunctiveQuery q = GenerateFuzzQuery(c.fuzz, opt, &rng);
      EXPECT_TRUE(q.Validate().ok()) << q.ToString();
      EXPECT_EQ(Engine::Classify(q), c.want)
          << FuzzClassName(c.fuzz) << " seed " << seed << ": "
          << q.ToString();
    }
  }
}

TEST(FuzzGen, UnionSharesHeadArity) {
  const FuzzOptions opt;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    const UnionQuery u = GenerateFuzzUnion(opt, &rng);
    ASSERT_GE(u.disjuncts.size(), 2u);
    EXPECT_TRUE(u.Validate().ok()) << u.ToString();
    for (const ConjunctiveQuery& q : u.disjuncts) {
      EXPECT_EQ(q.arity(), u.arity());
    }
  }
}

TEST(FuzzClassNames, RoundTrip) {
  for (size_t c = 0; c < kNumFuzzClasses; ++c) {
    const FuzzClass cls = static_cast<FuzzClass>(c);
    FuzzClass back;
    ASSERT_TRUE(FuzzClassFromName(FuzzClassName(cls), &back));
    EXPECT_EQ(back, cls);
  }
  FuzzClass ignored;
  EXPECT_FALSE(FuzzClassFromName("no-such-class", &ignored));
}

TEST(Reference, MatchesHandComputedJoin) {
  auto q = ParseConjunctiveQuery("Q(x, y) :- R(x, z), S(z, y).");
  ASSERT_TRUE(q.ok());
  Database db;
  Relation r("R", 2);
  r.Add({0, 1});
  r.Add({2, 1});
  Relation s("S", 2);
  s.Add({1, 3});
  s.Add({1, 0});
  db.PutRelation(r);
  db.PutRelation(s);
  auto res = ReferenceEvaluate(q.value(), db);
  ASSERT_TRUE(res.ok());
  Relation want("Q", 2);
  want.Add({0, 0});
  want.Add({0, 3});
  want.Add({2, 0});
  want.Add({2, 3});
  want.SortDedup();
  EXPECT_EQ(res.value().raw(), want.raw());
}

TEST(Reference, NegationRangesOverDeclaredDomain) {
  auto q = ParseConjunctiveQuery("Q(x) :- R(x), not T(x).");
  ASSERT_TRUE(q.ok());
  Database db;
  Relation r("R", 1);
  r.Add({0});
  r.Add({1});
  r.Add({2});
  Relation t("T", 1);
  t.Add({1});
  db.PutRelation(r);
  db.PutRelation(t);
  db.DeclareDomainSize(5);
  auto res = ReferenceEvaluate(q.value(), db);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().NumTuples(), 2u);
  EXPECT_EQ(res.value().Row(0)[0], 0);
  EXPECT_EQ(res.value().Row(1)[0], 2);
}

TEST(Reference, RefusesOverAssignmentBudget) {
  auto q = ParseConjunctiveQuery("Q(a, b, c) :- R(a, b), S(b, c).");
  ASSERT_TRUE(q.ok());
  Database db;
  Relation r("R", 2);
  r.Add({9, 9});
  Relation s("S", 2);
  s.Add({9, 9});
  db.PutRelation(r);
  db.PutRelation(s);
  auto res = ReferenceEvaluate(q.value(), db, /*assignment_limit=*/10);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kUnsupported);
}

TEST(DifferentialRunner, SeedRangeIsClean) {
  CheckOptions opt;
  opt.fuzz = SmallOptions();
  opt.num_seeds = 48;  // 6 cases per class, every class covered.
  const CheckSummary summary = RunSeedRange(opt);
  EXPECT_EQ(summary.cases_run, 48u);
  EXPECT_GT(summary.paths_diffed, 48u * 4);
  EXPECT_EQ(summary.skipped, 0u) << summary.ToString();
  EXPECT_TRUE(summary.ok()) << summary.ToString();
}

TEST(DifferentialRunner, SingleCaseReportsPaths) {
  const DiffReport report =
      RunDifferentialCase(3, FuzzClass::kFreeConnex, SmallOptions());
  EXPECT_TRUE(report.ok()) << report.ToString();
  // Serial + parallel + count + enumerate + linear + constant delay +
  // four service paths.
  EXPECT_GE(report.paths_run, 8u);
}

TEST(Shrink, PassingCaseComesBackUntouched) {
  auto q = ParseConjunctiveQuery("Q(x) :- R(x).");
  ASSERT_TRUE(q.ok());
  UnionQuery u;
  u.disjuncts.push_back(q.value());
  Database db;
  Relation r("R", 1);
  r.Add({0});
  db.PutRelation(r);
  db.DeclareDomainSize(3);
  const ShrinkResult res = ShrinkCase(u, db, SmallOptions());
  EXPECT_EQ(res.steps, 0u);
  EXPECT_TRUE(res.mismatches.empty());
  EXPECT_EQ(res.query.ToString(), u.ToString());
}

TEST(Regress, WriteLoadRoundTrip) {
  auto parsed = ParseUnionQuery(
      "Q(x, y) :- R(x, y), S(y), x != y. Q(a, b) :- T(a, b).");
  ASSERT_TRUE(parsed.ok());
  Database db;
  Relation r("R", 2);
  r.Add({0, 1});
  r.Add({2, 2});
  Relation s("S", 1);
  s.Add({1});
  Relation t("T", 2);
  t.Add({3, 0});
  db.PutRelation(r);
  db.PutRelation(s);
  db.PutRelation(t);
  db.DeclareDomainSize(6);

  const std::string path =
      testing::TempDir() + "/check_test_roundtrip.fgqr";
  ASSERT_TRUE(WriteRegressionCase(path, parsed.value(), db,
                                  {"round-trip test"})
                  .ok());
  auto loaded = LoadRegressionCase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().query.ToString(), parsed.value().ToString());
  EXPECT_EQ(loaded.value().db.DomainSize(), 6);
  EXPECT_EQ(loaded.value().db.ToString(100), db.ToString(100));

  // The round-tripped case diffs clean, too.
  const std::vector<std::string> mm =
      DiffCase(loaded.value().query, loaded.value().db, SmallOptions());
  EXPECT_TRUE(mm.empty()) << mm.front();
}

TEST(Regress, RejectsArityMismatch) {
  const std::string path = testing::TempDir() + "/check_test_bad.fgqr";
  {
    std::vector<std::string> none;
    auto q = ParseConjunctiveQuery("Q(x) :- R(x).");
    ASSERT_TRUE(q.ok());
    UnionQuery u;
    u.disjuncts.push_back(q.value());
    Database db;
    Relation r("R", 1);
    r.Add({0});
    db.PutRelation(r);
    ASSERT_TRUE(WriteRegressionCase(path, u, db, none).ok());
  }
  // Corrupt: append a two-column tuple to the arity-1 relation.
  {
    FILE* f = fopen(path.c_str(), "a");
    ASSERT_NE(f, nullptr);
    fputs("1 2\n", f);
    fclose(f);
  }
  auto loaded = LoadRegressionCase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(Regress, CommittedCorpusReplaysClean) {
  const std::vector<std::string> files = ListRegressionFiles(FGQ_REGRESS_DIR);
  ASSERT_FALSE(files.empty()) << "no corpus at " << FGQ_REGRESS_DIR;
  std::string report;
  const Status st = ReplayRegressionDir(FGQ_REGRESS_DIR, SmallOptions(),
                                        &report);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace fgq
