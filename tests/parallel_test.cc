// Parallel execution: thread-pool unit tests plus serial-vs-parallel
// equivalence for every engine that takes ExecOptions. The equivalence
// tests are the contract behind DESIGN.md's determinism claim: the same
// query on the same database yields identical answer sets at 1, 2 and 8
// threads.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "fgq/count/acq_count.h"
#include "fgq/eval/engine.h"
#include "fgq/eval/enumerate.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/query/parser.h"
#include "fgq/util/thread_pool.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool unit tests.

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(4);
  auto f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroTaskShutdown) {
  // Construct and immediately destroy pools of every size; the destructor
  // must join cleanly with no tasks ever submitted.
  for (size_t n = 1; n <= 8; ++n) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  constexpr int kTasks = 500;
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPool, ParallelForCoversEachIndexOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(1000, 10,
                                [&](size_t begin, size_t) {
                                  if (begin >= 500) {
                                    throw std::runtime_error("body failed");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Inner ParallelFor calls run from within outer tasks; the caller-runs
  // protocol must keep making progress even with more nested loops than
  // workers.
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  pool.ParallelFor(8, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(64, 8, [&](size_t b, size_t e) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 8u * 64u);
}

TEST(ThreadPool, FreeParallelForRunsInlineWithoutPool) {
  std::vector<int> hits(100, 0);
  ParallelFor(nullptr, hits.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

// ---------------------------------------------------------------------------
// Serial-vs-parallel equivalence.

ConjunctiveQuery Q(const std::string& text) {
  auto r = ParseConjunctiveQuery(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

std::string Key(Relation r) {
  r.SortDedup();
  std::string s = std::to_string(r.NumTuples()) + ":";
  for (size_t i = 0; i < r.NumTuples(); ++i) {
    for (size_t j = 0; j < r.arity(); ++j) {
      s += std::to_string(r.Row(i)[j]) + ",";
    }
    s += ";";
  }
  return s;
}

// Thread counts exercised by every equivalence test: serial baseline,
// minimal parallelism, oversubscription.
const int kThreadCounts[] = {1, 2, 8};

// A small morsel size so that even modest test databases split into many
// morsels and genuinely exercise the parallel paths.
ExecOptions Opts(int threads) {
  ExecOptions o;
  o.num_threads = threads;
  o.morsel_size = 64;
  return o;
}

struct Workload {
  std::string label;
  ConjunctiveQuery query;
  Database db;
};

std::vector<Workload> EquivalenceWorkloads() {
  std::vector<Workload> w;
  Rng rng(20260805);
  w.push_back({"path3", PathQuery(3), PathDatabase(3, 3000, 200, &rng)});
  w.push_back({"fullpath3", FullPathQuery(3), PathDatabase(3, 3000, 200, &rng)});
  w.push_back({"star3", StarQuery(3), PathDatabase(3, 2000, 300, &rng)});
  w.push_back({"figure1", Figure1Query(), Figure1Database(3000, 150, &rng)});
  // Boolean variant of the path query.
  w.push_back({"bool-path3",
               Q("Q() :- E1(x1, x2), E2(x2, x3), E3(x3, x4)."),
               PathDatabase(3, 3000, 5000, &rng)});
  // Empty-result instance: disjoint domains make the join empty.
  Database disjoint;
  {
    Relation a("E1", 2), b("E2", 2);
    for (Value v = 0; v < 500; ++v) a.Add({v, v + 1});
    for (Value v = 10'000; v < 10'500; ++v) b.Add({v, v + 1});
    disjoint.PutRelation(a);
    disjoint.PutRelation(b);
  }
  w.push_back({"empty", Q("Q(x, z) :- E1(x, y), E2(y, z)."), disjoint});
  return w;
}

TEST(ParallelEquivalence, EvaluateYannakakis) {
  for (const Workload& w : EquivalenceWorkloads()) {
    auto serial = EvaluateYannakakis(w.query, w.db);
    ASSERT_TRUE(serial.ok()) << w.label << ": " << serial.status();
    const std::string want = Key(*serial);
    for (int t : kThreadCounts) {
      auto par = EvaluateYannakakis(w.query, w.db, Opts(t));
      ASSERT_TRUE(par.ok()) << w.label << "@" << t << ": " << par.status();
      EXPECT_EQ(Key(*par), want) << w.label << " at " << t << " threads";
    }
  }
}

TEST(ParallelEquivalence, FullReduceAtomSets) {
  for (const Workload& w : EquivalenceWorkloads()) {
    auto serial = FullReduce(w.query, w.db);
    ASSERT_TRUE(serial.ok()) << w.label << ": " << serial.status();
    for (int t : kThreadCounts) {
      auto par = FullReduce(w.query, w.db, Opts(t));
      ASSERT_TRUE(par.ok()) << w.label << "@" << t << ": " << par.status();
      EXPECT_EQ(par->empty, serial->empty) << w.label;
      ASSERT_EQ(par->atoms.size(), serial->atoms.size()) << w.label;
      for (size_t i = 0; i < serial->atoms.size(); ++i) {
        EXPECT_EQ(Key(par->atoms[i].rel), Key(serial->atoms[i].rel))
            << w.label << " atom " << i << " at " << t << " threads";
      }
    }
  }
}

TEST(ParallelEquivalence, Enumerators) {
  for (const Workload& w : EquivalenceWorkloads()) {
    const size_t arity = w.query.arity();
    auto make = [&](int t) -> Result<std::unique_ptr<AnswerEnumerator>> {
      if (IsFreeConnex(w.query)) {
        return MakeConstantDelayEnumerator(w.query, w.db, Opts(t));
      }
      return MakeLinearDelayEnumerator(w.query, w.db, Opts(t));
    };
    auto serial = make(1);
    ASSERT_TRUE(serial.ok()) << w.label << ": " << serial.status();
    const std::string want =
        Key(DrainEnumerator(serial->get(), w.query.name(), arity));
    for (int t : kThreadCounts) {
      auto par = make(t);
      ASSERT_TRUE(par.ok()) << w.label << "@" << t << ": " << par.status();
      EXPECT_EQ(Key(DrainEnumerator(par->get(), w.query.name(), arity)), want)
          << w.label << " at " << t << " threads";
    }
  }
}

TEST(ParallelEquivalence, EngineExecute) {
  for (const Workload& w : EquivalenceWorkloads()) {
    Engine serial;
    auto want = serial.Run(ExecRequest(w.query, w.db));
    ASSERT_TRUE(want.ok()) << w.label << ": " << want.status();
    for (int t : kThreadCounts) {
      Engine engine(Opts(t));
      auto got = engine.Run(ExecRequest(w.query, w.db));
      ASSERT_TRUE(got.ok()) << w.label << "@" << t << ": " << got.status();
      EXPECT_EQ(got->classification, want->classification) << w.label;
      EXPECT_EQ(Key(got->answers), Key(want->answers))
          << w.label << " at " << t << " threads";
    }
  }
}

TEST(ParallelEquivalence, EngineCountMatchesExecute) {
  for (const Workload& w : EquivalenceWorkloads()) {
    Engine engine(Opts(8));
    auto res = engine.Run(ExecRequest(w.query, w.db));
    ASSERT_TRUE(res.ok()) << w.label << ": " << res.status();
    auto count = engine.Count(w.query, w.db);
    ASSERT_TRUE(count.ok()) << w.label << ": " << count.status();
    if (w.query.IsBoolean()) {
      EXPECT_EQ(*count == BigInt(0), !res->BooleanValue()) << w.label;
    } else {
      EXPECT_EQ(*count, BigInt(static_cast<int64_t>(res->NumAnswers())))
          << w.label;
    }
  }
}

// One engine, shared pool, many queries back to back: exercises pool reuse
// across Execute calls.
TEST(ParallelEquivalence, EngineReuseAcrossQueries) {
  Engine engine(Opts(4));
  Engine ref;
  for (int round = 0; round < 3; ++round) {
    for (const Workload& w : EquivalenceWorkloads()) {
      auto got = engine.Run(ExecRequest(w.query, w.db));
      auto want = ref.Run(ExecRequest(w.query, w.db));
      ASSERT_TRUE(got.ok() && want.ok()) << w.label;
      EXPECT_EQ(Key(got->answers), Key(want->answers)) << w.label;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine classification.

TEST(Engine, Classify) {
  EXPECT_EQ(Engine::Classify(Q("Q() :- E(x, y).")),
            QueryClass::kBooleanAcyclic);
  EXPECT_EQ(Engine::Classify(Q("Q(x) :- E(x, y).")),
            QueryClass::kFreeConnexAcyclic);
  EXPECT_EQ(Engine::Classify(PathQuery(2)), QueryClass::kGeneralAcyclic);
  EXPECT_EQ(Engine::Classify(Q("Q(x) :- E(x, y), x != y.")),
            QueryClass::kAcyclicDisequalities);
  EXPECT_EQ(Engine::Classify(Q("Q(x) :- E(x, y), x < y.")),
            QueryClass::kAcyclicOrderComparisons);
  EXPECT_EQ(Engine::Classify(Q("Q(x) :- E(x, y), not F(x).")),
            QueryClass::kNegated);
  EXPECT_EQ(Engine::Classify(
                Q("Q() :- E(x, y), E(y, z), E(z, x).")),
            QueryClass::kCyclic);
  for (QueryClass c :
       {QueryClass::kBooleanAcyclic, QueryClass::kFreeConnexAcyclic,
        QueryClass::kGeneralAcyclic, QueryClass::kAcyclicDisequalities,
        QueryClass::kAcyclicOrderComparisons, QueryClass::kNegated,
        QueryClass::kCyclic}) {
    EXPECT_STRNE(QueryClassName(c), "unknown");
  }
}

TEST(Engine, EnumerateMatchesExecute) {
  Rng rng(7);
  Database db = PathDatabase(2, 500, 60, &rng);
  Engine engine(Opts(2));
  for (const ConjunctiveQuery& q :
       {PathQuery(2), FullPathQuery(2), Q("Q(x) :- E1(x, y), x != y.")}) {
    auto res = engine.Run(ExecRequest(q, db));
    ASSERT_TRUE(res.ok()) << q.ToString() << ": " << res.status();
    auto e = engine.Enumerate(q, db);
    ASSERT_TRUE(e.ok()) << q.ToString() << ": " << e.status();
    Relation drained = DrainEnumerator(e->get(), q.name(), q.arity());
    EXPECT_EQ(Key(drained), Key(res->answers)) << q.ToString();
  }
}

}  // namespace
}  // namespace fgq
