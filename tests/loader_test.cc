#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "fgq/db/loader.h"

namespace fgq {
namespace {

// Every loader failure must say *where*: source name + line number, so a
// bad line in a million-fact file is findable.

TEST(Loader, MalformedLineReportsSourceAndLine) {
  Database db;
  Dictionary dict;
  Status st = LoadFactsFromString("E a b\n42 7\n", &db, &dict);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("<string>:2:"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("malformed fact line"), std::string::npos);
  EXPECT_NE(st.message().find("'42'"), std::string::npos);
}

TEST(Loader, ArityDriftReportsSourceAndLine) {
  Database db;
  Dictionary dict;
  Status st = LoadFactsFromString("E a b\nE c d e\n", &db, &dict, "facts.txt");
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("facts.txt:2:"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("arity mismatch for relation 'E'"),
            std::string::npos);
  EXPECT_NE(st.message().find("expected 2, got 3"), std::string::npos);
}

TEST(Loader, MissingFileReportsPath) {
  Database db;
  Dictionary dict;
  Status st = LoadFactsFromFile("/nonexistent/facts.txt", &db, &dict);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_NE(st.message().find("/nonexistent/facts.txt"), std::string::npos)
      << st.message();
}

TEST(Loader, FileErrorsCarryThePath) {
  const std::string path = ::testing::TempDir() + "fgq_loader_test_facts.txt";
  {
    std::ofstream f(path);
    f << "E 1 2\n"
         "# comment lines and blanks are skipped\n"
         "\n"
         "E 3\n";
  }
  Database db;
  Dictionary dict;
  Status st = LoadFactsFromFile(path, &db, &dict);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find(path + ":4:"), std::string::npos)
      << st.message();
  std::remove(path.c_str());
}

TEST(Loader, CommentsBlanksAndInterningStillWork) {
  Database db;
  Dictionary dict;
  Status st = LoadFactsFromString("# header\nE a b\n\nE b c\nB 7\n",
                                  &db, &dict);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ((*db.Find("E"))->NumTuples(), 2u);
  EXPECT_EQ((*db.Find("B"))->NumTuples(), 1u);
  // Integer tokens stay literal; identifiers are interned.
  EXPECT_EQ((*db.Find("B"))->Row(0).ToTuple(), (Tuple{7}));
}

}  // namespace
}  // namespace fgq
