#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "fgq/query/parser.h"
#include "fgq/so/enum_so.h"
#include "fgq/so/sigma_count.h"
#include "fgq/so/so_query.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

/// A tiny database: unary D = {0,1,2}, binary E = {(0,1),(1,2)}.
Database TinyDb() {
  Database db;
  Relation d("D", 1);
  d.Add({0});
  d.Add({1});
  d.Add({2});
  Relation e("E", 2);
  e.Add({0, 1});
  e.Add({1, 2});
  db.PutRelation(d);
  db.PutRelation(e);
  db.DeclareDomainSize(3);
  return db;
}

SoQuery MakeQuery(const std::string& text,
                  const std::vector<SoVar>& so_vars,
                  const std::vector<std::string>& fo_free = {}) {
  std::set<std::string> names;
  for (const SoVar& v : so_vars) names.insert(v.name);
  auto f = ParseFoFormula(text, names);
  EXPECT_TRUE(f.ok()) << f.status();
  SoQuery q;
  q.formula = std::move(*f);
  q.so_vars = so_vars;
  q.fo_free = fo_free;
  return q;
}

// ---- SlotSpace -------------------------------------------------------------------

TEST(SlotSpace, NumberingRoundTrips) {
  auto space = SlotSpace::Create({{"X", 1}, {"Y", 2}}, 3);
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->total_slots(), 3u + 9u);
  std::set<uint64_t> seen;
  for (Value a = 0; a < 3; ++a) {
    seen.insert(space->SlotOf(0, {a}));
    for (Value b = 0; b < 3; ++b) {
      seen.insert(space->SlotOf(1, {a, b}));
    }
  }
  EXPECT_EQ(seen.size(), 12u);
  size_t var;
  std::vector<Value> tuple;
  space->Decode(space->SlotOf(1, {2, 1}), &var, &tuple);
  EXPECT_EQ(var, 1u);
  EXPECT_EQ(tuple, (std::vector<Value>{2, 1}));
}

TEST(SlotSpace, RejectsHugeSpaces) {
  EXPECT_FALSE(SlotSpace::Create({{"X", 9}}, 1000000).ok());
}

// ---- #Sigma0 (Theorem 5.3) --------------------------------------------------------

TEST(CountSigma0, UnconstrainedVariableCountsPowerSet) {
  Database db = TinyDb();
  // "true" with one unary SO var: 2^3 assignments.
  SoQuery q = MakeQuery("true", {{"X", 1}});
  EXPECT_EQ(CountSigma0(q, db)->ToString(), "8");
}

TEST(CountSigma0, SingleMembershipAtom) {
  Database db = TinyDb();
  // X(0): half the assignments.
  SoQuery q = MakeQuery("X(0)", {{"X", 1}});
  EXPECT_EQ(CountSigma0(q, db)->ToString(), "4");
  // X(0) & ~X(1): a quarter.
  SoQuery q2 = MakeQuery("X(0) & ~X(1)", {{"X", 1}});
  EXPECT_EQ(CountSigma0(q2, db)->ToString(), "2");
}

TEST(CountSigma0, WithFreeFoVariable) {
  Database db = TinyDb();
  // phi(x, X) = D(x) & X(x): for each of the 3 x's, half of 2^3.
  SoQuery q = MakeQuery("D(x) & X(x)", {{"X", 1}}, {"x"});
  EXPECT_EQ(CountSigma0(q, db)->ToString(), "12");
}

TEST(CountSigma0, BinarySoVariable) {
  Database db = TinyDb();
  // T(0, 1): half of 2^9.
  SoQuery q = MakeQuery("T(0, 1)", {{"T", 2}});
  EXPECT_EQ(CountSigma0(q, db)->ToString(), "256");
}

TEST(CountSigma0, BruteForceAgreementSweep) {
  Database db = TinyDb();
  // For several Sigma0 formulas, compare against enumeration of all 2^3
  // unary SO assignments times FO values.
  struct Case {
    std::string text;
    std::vector<std::string> fo;
  };
  for (const Case& c : {Case{"X(0) | X(1)", {}},
                        Case{"X(0) & (~X(1) | X(2))", {}},
                        Case{"D(x) & (X(x) | X(0))", {"x"}},
                        Case{"E(x, y) & X(x) & ~X(y)", {"x", "y"}}}) {
    SoQuery q = MakeQuery(c.text, {{"X", 1}}, c.fo);
    auto fast = CountSigma0(q, db);
    ASSERT_TRUE(fast.ok()) << fast.status() << " for " << c.text;
    // Brute force.
    FoEvalContext ctx(db);
    auto space = SlotSpace::Create(q.so_vars, 3);
    int64_t brute = 0;
    std::vector<Value> fo_vals(c.fo.size(), 0);
    while (true) {
      std::map<std::string, Value> assignment;
      for (size_t i = 0; i < c.fo.size(); ++i) assignment[c.fo[i]] = fo_vals[i];
      for (uint64_t bits = 0; bits < 8; ++bits) {
        std::map<uint64_t, bool> bm;
        for (uint64_t s = 0; s < 3; ++s) bm[s] = (bits >> s) & 1;
        auto v = EvalSigmaMatrix(*q.formula, q, ctx, *space, &assignment, bm);
        ASSERT_TRUE(v.ok()) << v.status();
        if (*v) ++brute;
      }
      size_t p = 0;
      while (p < fo_vals.size() && ++fo_vals[p] == 3) {
        fo_vals[p] = 0;
        ++p;
      }
      if (p == fo_vals.size() || c.fo.empty()) break;
    }
    EXPECT_EQ(fast->ToString(), std::to_string(brute)) << c.text;
  }
}

// ---- #Sigma1 and cubes -------------------------------------------------------------

TEST(Sigma1, CubesAndBruteCount) {
  Database db = TinyDb();
  // exists x. D(x) & X(x): X's containing at least one element = 2^3 - 1.
  SoQuery q = MakeQuery("exists x. (D(x) & X(x))", {{"X", 1}});
  ASSERT_TRUE(q.IsSigma1());
  EXPECT_FALSE(q.IsSigma0());
  auto cubes = Sigma1Cubes(q, db);
  ASSERT_TRUE(cubes.ok()) << cubes.status();
  EXPECT_EQ(cubes->size(), 3u);  // One per witness x.
  EXPECT_EQ(CountSigma1Brute(q, db)->ToString(), "7");
}

TEST(Sigma1, EdgeWitnessCount) {
  Database db = TinyDb();
  // exists x. exists y. E(x, y) & X(x) & ~X(y).
  SoQuery q = MakeQuery("exists x. exists y. (E(x, y) & X(x) & ~X(y))",
                        {{"X", 1}});
  // Solutions: X with 0 in, 1 out => {0},{0,2}; or 1 in, 2 out => {1},{0,1}.
  EXPECT_EQ(CountSigma1Brute(q, db)->ToString(), "4");
}

// ---- Example 5.1: #3DNF through #Sigma1 ---------------------------------------------

/// Builds the sigma_3DNF structure A_phi for a 3DNF formula and the query
/// Phi_0(T) of Example 5.1, then checks #Sigma1 equals #DNF.
TEST(Sigma1, Example51ThreeDnf) {
  // phi = (v0 & v1) | (~v1 & v2) over 3 variables, padded to 3 literals by
  // repeating a literal: disjuncts (v0 & v1 & v1), (~v1 & v2 & v2).
  DnfFormula dnf;
  dnf.num_vars = 3;
  dnf.clauses = {{1, 2, 2}, {-2, 3, 3}};

  Database db;
  Relation d0("D0", 3), d1("D1", 3), d2("D2", 3), d3("D3", 3);
  // D_i(x1, x2, x3): first i literals negative, rest positive.
  d0.Add({0, 1, 1});  // All-positive disjunct v0 & v1 & v1.
  d1.Add({1, 2, 2});  // ~v1 & v2 & v2.
  db.PutRelation(d0);
  db.PutRelation(d1);
  db.PutRelation(d2);
  db.PutRelation(d3);
  db.DeclareDomainSize(3);

  SoQuery q = MakeQuery(
      "exists x. exists y. exists z. ("
      "(D0(x, y, z) & T(x) & T(y) & T(z)) | "
      "(D1(x, y, z) & ~T(x) & T(y) & T(z)) | "
      "(D2(x, y, z) & ~T(x) & ~T(y) & T(z)) | "
      "(D3(x, y, z) & ~T(x) & ~T(y) & ~T(z)))",
      {{"T", 1}});
  auto via_query = CountSigma1Brute(q, db);
  ASSERT_TRUE(via_query.ok()) << via_query.status();
  auto direct = CountDnfExact(dnf);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_query->ToString(), direct->ToString());
}

// ---- #DNF exact and Karp-Luby FPRAS -------------------------------------------------

TEST(Dnf, ExactCountsKnownFormulas) {
  // x1 | ~x1 over 1 var: both assignments.
  DnfFormula taut{1, {{1}, {-1}}};
  EXPECT_EQ(CountDnfExact(taut)->ToString(), "2");
  // Contradictory clause is dropped: (x1 & ~x1) -> 0 models.
  DnfFormula contra{2, {{1, -1}}};
  EXPECT_EQ(CountDnfExact(contra)->ToString(), "0");
  // Single clause of width 2 over 4 vars: 2^2 completions.
  DnfFormula one{4, {{1, -2}}};
  EXPECT_EQ(CountDnfExact(one)->ToString(), "4");
}

TEST(Dnf, KarpLubyWithinEpsilon) {
  Rng data_rng(71);
  Rng kl_rng(72);
  for (int trial = 0; trial < 5; ++trial) {
    DnfFormula dnf = RandomDnf(14, 6, 3, &data_rng);
    auto exact = CountDnfExact(dnf);
    ASSERT_TRUE(exact.ok());
    auto est = EstimateDnf(dnf, 0.1, &kl_rng);
    ASSERT_TRUE(est.ok()) << est.status();
    double ex = exact->ToDouble();
    double es = est->ToDouble();
    if (ex == 0) {
      EXPECT_EQ(es, 0.0);
    } else {
      EXPECT_NEAR(es / ex, 1.0, 0.15) << "trial " << trial;
    }
  }
}

TEST(Sigma1, FprasMatchesBruteCount) {
  Database db = TinyDb();
  SoQuery q = MakeQuery("exists x. (D(x) & X(x))", {{"X", 1}});
  Rng rng(73);
  auto est = EstimateSigma1(q, db, 0.05, &rng);
  ASSERT_TRUE(est.ok()) << est.status();
  double exact = CountSigma1Brute(q, db)->ToDouble();
  EXPECT_NEAR(est->ToDouble() / exact, 1.0, 0.1);
}

TEST(UnionOfCubes, EstimatorHandlesSingleCube) {
  Rng rng(74);
  std::vector<Cube> cubes = {Cube{{{0, true}, {3, false}}}};
  auto est = EstimateUnionOfCubes(cubes, 10, 0.05, &rng);
  ASSERT_TRUE(est.ok());
  // Exactly 2^8 = 256; a single cube has zero variance.
  EXPECT_EQ(est->ToString(), "256");
}

// ---- Sigma0 Gray-code enumeration (Theorem 5.5) --------------------------------------

TEST(GrayEnum, EnumeratesAllSolutionsOnceWithSingleBitDeltas) {
  Database db = TinyDb();
  SoQuery q = MakeQuery("X(0) | X(1)", {{"X", 1}});
  CollectingVisitor visitor;
  Status st = EnumerateSigma0GrayCode(q, db, &visitor);
  ASSERT_TRUE(st.ok()) << st;
  // Solutions distinct and complete.
  std::set<std::vector<bool>> seen(visitor.solutions().begin(),
                                   visitor.solutions().end());
  EXPECT_EQ(seen.size(), visitor.solutions().size());
  EXPECT_EQ(std::to_string(seen.size()), CountSigma0(q, db)->ToString());
  for (const std::vector<bool>& s : seen) {
    EXPECT_TRUE(s[0] || s[1]);
  }
}

TEST(GrayEnum, ConsecutiveSolutionsWithinRunDifferByOneBit) {
  Database db = TinyDb();
  SoQuery q = MakeQuery("X(2)", {{"X", 1}});
  CollectingVisitor visitor;
  ASSERT_TRUE(EnumerateSigma0GrayCode(q, db, &visitor).ok());
  const auto& sols = visitor.solutions();
  ASSERT_EQ(sols.size(), 4u);  // X(2) fixed true, 2 free slots.
  for (size_t i = 1; i < sols.size(); ++i) {
    int diff = 0;
    for (size_t b = 0; b < sols[i].size(); ++b) {
      diff += sols[i][b] != sols[i - 1][b];
    }
    EXPECT_EQ(diff, 1) << "delta-constant violated at step " << i;
  }
}

TEST(GrayEnum, RejectsFreeFoVariables) {
  Database db = TinyDb();
  SoQuery q = MakeQuery("D(x) & X(x)", {{"X", 1}}, {"x"});
  CollectingVisitor visitor;
  EXPECT_FALSE(EnumerateSigma0GrayCode(q, db, &visitor).ok());
}

// ---- Sigma1 flashlight enumeration (Theorem 5.5) -------------------------------------

TEST(Flashlight, EnumeratesExactlyTheSolutions) {
  Database db = TinyDb();
  SoQuery q = MakeQuery("exists x. (D(x) & X(x))", {{"X", 1}});
  std::set<std::vector<bool>> seen;
  Status st = EnumerateSigma1Flashlight(
      q, db, 0, [&](const std::vector<bool>& s) { seen.insert(s); });
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(std::to_string(seen.size()),
            CountSigma1Brute(q, db)->ToString());
  for (const std::vector<bool>& s : seen) {
    EXPECT_TRUE(s[0] || s[1] || s[2]);
  }
}

TEST(Flashlight, RespectsMaxSolutions) {
  Database db = TinyDb();
  SoQuery q = MakeQuery("exists x. (D(x) & X(x))", {{"X", 1}});
  int count = 0;
  ASSERT_TRUE(EnumerateSigma1Flashlight(
                  q, db, 3, [&](const std::vector<bool>&) { ++count; })
                  .ok());
  EXPECT_EQ(count, 3);
}

TEST(Flashlight, EmptySolutionSet) {
  Database db = TinyDb();
  // X(x) & ~X(x) is unsatisfiable.
  SoQuery q = MakeQuery("exists x. (D(x) & X(x) & ~X(x))", {{"X", 1}});
  int count = 0;
  ASSERT_TRUE(EnumerateSigma1Flashlight(
                  q, db, 0, [&](const std::vector<bool>&) { ++count; })
                  .ok());
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace fgq
