#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fgq/eval/enumerate.h"
#include "fgq/eval/oracle.h"
#include "fgq/eval/prepared.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

// ---- PreparedAtom ------------------------------------------------------------

TEST(PreparedAtom, ConstantsAndRepeatsResolved) {
  Database db;
  Relation r("R", 3);
  r.Add({1, 1, 5});
  r.Add({1, 2, 5});
  r.Add({2, 2, 5});
  r.Add({1, 1, 6});
  db.PutRelation(r);
  Atom a;
  a.relation = "R";
  a.args = {Term::Var("x"), Term::Var("x"), Term::Const(5)};
  auto pa = PrepareAtom(a, db);
  ASSERT_TRUE(pa.ok()) << pa.status();
  EXPECT_EQ(pa->vars, (std::vector<std::string>{"x"}));
  EXPECT_EQ(pa->rel.NumTuples(), 2u);  // x = 1 and x = 2.
}

TEST(PreparedAtom, ArityMismatchRejected) {
  Database db;
  db.PutRelation(Relation("R", 2));
  Atom a;
  a.relation = "R";
  a.args = {Term::Var("x")};
  EXPECT_FALSE(PrepareAtom(a, db).ok());
}

TEST(Semijoin, ReducesBysSharedVariables) {
  PreparedAtom left;
  left.vars = {"x", "y"};
  left.rel = Relation("L", 2);
  left.rel.Add({1, 10});
  left.rel.Add({2, 20});
  left.rel.Add({3, 30});
  PreparedAtom right;
  right.vars = {"y", "z"};
  right.rel = Relation("R", 2);
  right.rel.Add({10, 7});
  right.rel.Add({30, 8});
  SemijoinReduce(&left, right);
  EXPECT_EQ(left.rel.NumTuples(), 2u);
}

TEST(Semijoin, DisjointVarsOnlyEmptinessPropagates) {
  PreparedAtom left;
  left.vars = {"x"};
  left.rel = Relation("L", 1);
  left.rel.Add({1});
  PreparedAtom right;
  right.vars = {"z"};
  right.rel = Relation("R", 1);
  right.rel.Add({5});
  SemijoinReduce(&left, right);
  EXPECT_EQ(left.rel.NumTuples(), 1u);  // Nonempty source: no-op.
  right.rel = Relation("R", 1);         // Now empty.
  SemijoinReduce(&left, right);
  EXPECT_EQ(left.rel.NumTuples(), 0u);
}

TEST(JoinProject, KeepsRequestedColumnsOnly) {
  PreparedAtom left;
  left.vars = {"x", "y"};
  left.rel = Relation("L", 2);
  left.rel.Add({1, 10});
  left.rel.Add({2, 10});
  PreparedAtom right;
  right.vars = {"y", "z"};
  right.rel = Relation("R", 2);
  right.rel.Add({10, 7});
  right.rel.Add({10, 8});
  PreparedAtom out = JoinProject(left, right, {"x", "z"});
  EXPECT_EQ(out.vars, (std::vector<std::string>{"x", "z"}));
  EXPECT_EQ(out.rel.NumTuples(), 4u);
}

// ---- FreeConnexPlan ----------------------------------------------------------

TEST(FreeConnexPlan, NodesCoverHeadAndParentsPrecedeChildren) {
  Rng rng(301);
  Database db = Figure1Database(40, 6, &rng);
  ConjunctiveQuery q = Figure1Query();
  auto plan = BuildFreeConnexPlan(q, db);
  ASSERT_TRUE(plan.ok()) << plan.status();
  if (plan->empty) GTEST_SKIP() << "random instance empty";
  std::set<std::string> vars;
  for (const PreparedAtom& n : plan->nodes) {
    vars.insert(n.vars.begin(), n.vars.end());
  }
  for (const std::string& h : q.head()) {
    EXPECT_TRUE(vars.count(h)) << h;
  }
  // Every variable in the plan is a head variable (pure free projection).
  EXPECT_EQ(vars.size(), q.head().size());
  for (size_t i = 0; i < plan->parent.size(); ++i) {
    EXPECT_LT(plan->parent[i], static_cast<int>(i));
  }
  EXPECT_EQ(plan->parent[0], -1);
}

TEST(FreeConnexPlan, EmptyFlag) {
  Database db;
  db.PutRelation(Relation("R", 2));
  auto plan = BuildFreeConnexPlan(
      *ParseConjunctiveQuery("Q(x, y) :- R(x, y)."), db);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty);
}

// ---- Random acyclic-hypergraph property sweep ---------------------------------

/// Generates a random acyclic query by building a random join tree first:
/// each new atom shares a random subset of an existing atom's variables
/// and adds fresh ones. By construction the result is alpha-acyclic.
ConjunctiveQuery RandomAcyclicQuery(size_t atoms, Rng* rng) {
  ConjunctiveQuery q("Rnd", {}, {});
  int fresh = 0;
  std::vector<std::vector<std::string>> atom_vars;
  for (size_t i = 0; i < atoms; ++i) {
    std::vector<std::string> vars;
    if (i > 0) {
      const std::vector<std::string>& base = atom_vars[rng->Below(i)];
      for (const std::string& v : base) {
        if (rng->Chance(0.5)) vars.push_back(v);
      }
    }
    size_t fresh_count = 1 + rng->Below(2);
    for (size_t f = 0; f < fresh_count; ++f) {
      vars.push_back("v" + std::to_string(fresh++));
    }
    Atom a;
    a.relation = "R" + std::to_string(i);
    for (const std::string& v : vars) a.args.push_back(Term::Var(v));
    q.AddAtom(std::move(a));
    atom_vars.push_back(vars);
  }
  // Random subset of variables as head.
  std::vector<std::string> head;
  for (const std::string& v : q.Variables()) {
    if (rng->Chance(0.4)) head.push_back(v);
  }
  q.set_head(head);
  return q;
}

TEST(GyoProperty, RandomTreeShapedQueriesAreAcyclicWithValidJoinTrees) {
  Rng rng(302);
  for (int trial = 0; trial < 40; ++trial) {
    ConjunctiveQuery q = RandomAcyclicQuery(2 + rng.Below(6), &rng);
    Hypergraph hg = Hypergraph::FromQuery(q);
    GyoResult gyo = GyoReduce(hg);
    ASSERT_TRUE(gyo.acyclic) << "trial " << trial << ": " << q.ToString();
    EXPECT_TRUE(gyo.tree.IsValid(hg)) << q.ToString();
  }
}

TEST(GyoProperty, YannakakisMatchesOracleOnRandomAcyclicQueries) {
  Rng rng(303);
  for (int trial = 0; trial < 20; ++trial) {
    ConjunctiveQuery q = RandomAcyclicQuery(2 + rng.Below(4), &rng);
    if (q.Variables().size() > 7) continue;  // Keep the oracle fast.
    Database db;
    for (const Atom& a : q.atoms()) {
      db.PutRelation(RandomRelation(a.relation, a.arity(), 20, 4, &rng));
    }
    db.DeclareDomainSize(4);
    auto fast = EvaluateYannakakis(q, db);
    auto slow = EvaluateBacktrack(q, db);
    ASSERT_TRUE(fast.ok()) << fast.status() << " for " << q.ToString();
    ASSERT_TRUE(slow.ok());
    Relation a = *fast;
    Relation b = *slow;
    a.SortDedup();
    b.SortDedup();
    ASSERT_EQ(a.NumTuples(), b.NumTuples()) << q.ToString();
  }
}

TEST(GyoProperty, FreeConnexQueriesEnumerateCorrectly) {
  Rng rng(304);
  int tested = 0;
  for (int trial = 0; trial < 60 && tested < 15; ++trial) {
    ConjunctiveQuery q = RandomAcyclicQuery(2 + rng.Below(4), &rng);
    if (!IsFreeConnex(q) || q.arity() == 0 || q.Variables().size() > 7) {
      continue;
    }
    ++tested;
    Database db;
    for (const Atom& a : q.atoms()) {
      db.PutRelation(RandomRelation(a.relation, a.arity(), 18, 4, &rng));
    }
    db.DeclareDomainSize(4);
    auto e = MakeConstantDelayEnumerator(q, db);
    ASSERT_TRUE(e.ok()) << e.status() << " for " << q.ToString();
    Relation got = DrainEnumerator(e->get(), "got", q.arity());
    auto oracle = EvaluateBacktrack(q, db);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(got.NumTuples(), oracle->NumTuples()) << q.ToString();
  }
  EXPECT_GE(tested, 10);
}

}  // namespace
}  // namespace fgq
