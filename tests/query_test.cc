#include <gtest/gtest.h>

#include "fgq/query/cq.h"
#include "fgq/query/fo.h"
#include "fgq/query/parser.h"

namespace fgq {
namespace {

TEST(ParserCq, BasicRule) {
  auto r = ParseConjunctiveQuery("Q(x, y) :- R(x, z), S(z, y).");
  ASSERT_TRUE(r.ok()) << r.status();
  const ConjunctiveQuery& q = *r;
  EXPECT_EQ(q.name(), "Q");
  EXPECT_EQ(q.arity(), 2u);
  ASSERT_EQ(q.atoms().size(), 2u);
  EXPECT_EQ(q.atoms()[0].relation, "R");
  EXPECT_EQ(q.Variables(), (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_EQ(q.ExistentialVariables(), (std::vector<std::string>{"z"}));
}

TEST(ParserCq, ConstantsAndNegationAndComparisons) {
  auto r = ParseConjunctiveQuery(
      "Q(x) :- R(x, 5), not T(x), x != y, S(y), y < x, x <= y.");
  ASSERT_TRUE(r.ok()) << r.status();
  const ConjunctiveQuery& q = *r;
  EXPECT_FALSE(q.atoms()[0].args[1].is_var());
  EXPECT_EQ(q.atoms()[0].args[1].constant, 5);
  EXPECT_TRUE(q.atoms()[1].negated);
  ASSERT_EQ(q.comparisons().size(), 3u);
  EXPECT_EQ(q.comparisons()[0].op, Comparison::Op::kNotEqual);
  EXPECT_EQ(q.comparisons()[1].op, Comparison::Op::kLess);
  EXPECT_EQ(q.comparisons()[2].op, Comparison::Op::kLessEq);
  EXPECT_TRUE(q.HasNegation());
  EXPECT_FALSE(q.IsNegative());
}

TEST(ParserCq, BooleanQuery) {
  auto r = ParseConjunctiveQuery("Q() :- R(x, y).");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsBoolean());
}

TEST(ParserCq, NegativeNumbersAreConstants) {
  auto r = ParseConjunctiveQuery("Q(x) :- R(x, -3).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->atoms()[0].args[1].constant, -3);
}

TEST(ParserCq, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseConjunctiveQuery("Q(x) :- R(x). extra").ok());
}

TEST(ParserCq, RejectsHeadVarNotInBody) {
  auto r = ParseConjunctiveQuery("Q(w) :- R(x, y).");
  EXPECT_FALSE(r.ok());
}

TEST(ParserCq, RejectsDuplicateHeadVar) {
  EXPECT_FALSE(ParseConjunctiveQuery("Q(x, x) :- R(x, y).").ok());
}

TEST(ParserCq, RejectsComparisonOnUnboundVar) {
  EXPECT_FALSE(ParseConjunctiveQuery("Q(x) :- R(x, y), x != w.").ok());
}

TEST(ParserCq, RejectsOutOfRangeIntegerLiteral) {
  // strtoll clamps an overflowing literal to INT64_MAX/INT64_MIN and only
  // signals through errno; without the range check the constant below
  // silently parsed as 9223372036854775807.
  auto r = ParseConjunctiveQuery("Q(x) :- R(x, 99999999999999999999).");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos)
      << r.status();
  EXPECT_FALSE(
      ParseConjunctiveQuery("Q(x) :- R(x, -99999999999999999999).").ok());

  // The representable extremes still parse.
  auto max = ParseConjunctiveQuery("Q(x) :- R(x, 9223372036854775807).");
  ASSERT_TRUE(max.ok()) << max.status();
  EXPECT_EQ(max->atoms()[0].args[1].constant, INT64_MAX);
  auto min = ParseConjunctiveQuery("Q(x) :- R(x, -9223372036854775808).");
  ASSERT_TRUE(min.ok()) << min.status();
  EXPECT_EQ(min->atoms()[0].args[1].constant, INT64_MIN);
}

TEST(ParserFo, RejectsOutOfRangeIntegerLiteral) {
  // Both places FO formulas hold integer terms: atom arguments and
  // comparison operands.
  EXPECT_FALSE(ParseFoFormula("A(x, 99999999999999999999)").ok());
  EXPECT_FALSE(ParseFoFormula("x = 99999999999999999999").ok());
  EXPECT_FALSE(ParseFoFormula("18446744073709551616 < x").ok());
  auto ok = ParseFoFormula("A(x, 9223372036854775807) & x = -5");
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST(ParserCq, ToStringRoundTrips) {
  std::string text = "Q(x, y) :- R(x, z), not T(z), S(z, y), x != y.";
  auto q1 = ParseConjunctiveQuery(text);
  ASSERT_TRUE(q1.ok());
  auto q2 = ParseConjunctiveQuery(q1->ToString());
  ASSERT_TRUE(q2.ok()) << q1->ToString();
  EXPECT_EQ(q1->ToString(), q2->ToString());
}

TEST(ParserUcq, MultipleRules) {
  auto r = ParseUnionQuery(
      "Q(x, y) :- R(x, z), S(z, y).\n"
      "Q(a, b) :- T(a, b).");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->disjuncts.size(), 2u);
  EXPECT_EQ(r->arity(), 2u);
}

TEST(ParserUcq, RejectsArityMismatch) {
  EXPECT_FALSE(ParseUnionQuery("Q(x) :- R(x).\nQ(x, y) :- S(x, y).").ok());
}

TEST(SelfJoinFree, DetectsRepeatedSymbols) {
  auto q1 = ParseConjunctiveQuery("Q(x) :- R(x, y), S(y).");
  EXPECT_TRUE(q1->IsSelfJoinFree());
  auto q2 = ParseConjunctiveQuery("Q(x) :- R(x, y), R(y, x).");
  EXPECT_FALSE(q2->IsSelfJoinFree());
}

// ---- FO parsing -------------------------------------------------------------

TEST(ParserFo, QuantifiersAndConnectives) {
  auto r = ParseFoFormula("exists z. (A(x, z) & B(z, y)) | x < y");
  ASSERT_TRUE(r.ok()) << r.status();
  const FoFormula& f = **r;
  EXPECT_EQ(f.kind(), FoFormula::Kind::kOr);
  EXPECT_EQ(f.FreeVariables(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(f.QuantifierDepth(), 1u);
  EXPECT_FALSE(f.IsQuantifierFree());
}

TEST(ParserFo, SugarForNeqAndLeq) {
  auto r = ParseFoFormula("x != y & x <= y");
  ASSERT_TRUE(r.ok());
  // ~(x = y) & (x < y | x = y)
  EXPECT_EQ((*r)->children()[0]->kind(), FoFormula::Kind::kNot);
  EXPECT_EQ((*r)->children()[1]->kind(), FoFormula::Kind::kOr);
}

TEST(ParserFo, SoVarsMarked) {
  auto r = ParseFoFormula("T(x) & E(x, y)", {"T"});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->children()[0]->is_so_atom());
  EXPECT_FALSE((*r)->children()[1]->is_so_atom());
  EXPECT_EQ((*r)->SecondOrderVariables(), (std::vector<std::string>{"T"}));
}

TEST(ParserFo, PrecedenceNotOverAndOverOr) {
  auto r = ParseFoFormula("~A() & B() | C()");
  ASSERT_TRUE(r.ok());
  // ((~A & B) | C)
  EXPECT_EQ((*r)->kind(), FoFormula::Kind::kOr);
  EXPECT_EQ((*r)->children()[0]->kind(), FoFormula::Kind::kAnd);
}

TEST(ParserFo, QuantifierScopesGreedily) {
  auto r = ParseFoFormula("exists x. E(x, y) & F(y)");
  ASSERT_TRUE(r.ok());
  // exists binds only the next unary formula: (exists x. E(x,y)) & F(y).
  EXPECT_EQ((*r)->kind(), FoFormula::Kind::kAnd);
}

TEST(ParserFo, RejectsBadSyntax) {
  EXPECT_FALSE(ParseFoFormula("exists . A(x)").ok());
  EXPECT_FALSE(ParseFoFormula("A(x) &").ok());
  EXPECT_FALSE(ParseFoFormula("A(x,)").ok());
}

TEST(FoFormula, FreeVariablesRespectBinding) {
  auto r = ParseFoFormula("exists x. E(x, y) & E(x, z)");
  ASSERT_TRUE(r.ok());
  // First conjunct binds x; second atom's x is free (different scope).
  EXPECT_EQ((*r)->FreeVariables(),
            (std::vector<std::string>{"y", "x", "z"}));
}

TEST(FoFormula, MaxSubformulaFreeVars) {
  auto r = ParseFoFormula("exists z. (A(x, z) & B(z, y))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->MaxSubformulaFreeVars(), 3u);  // Inner conjunction: x,z,y.
}

TEST(FoFormula, CloneIsDeepAndEqualText) {
  auto r = ParseFoFormula("forall x. (E(x, x) | x = 0)");
  ASSERT_TRUE(r.ok());
  FoPtr copy = (*r)->Clone();
  EXPECT_EQ(copy->ToString(), (*r)->ToString());
}

TEST(FoFormula, MakeExistsBlock) {
  FoPtr atom = FoFormula::MakeAtom("R", {Term::Var("a"), Term::Var("b")});
  FoPtr f = FoFormula::MakeExistsBlock({"a", "b"}, std::move(atom));
  EXPECT_EQ(f->kind(), FoFormula::Kind::kExists);
  EXPECT_EQ(f->quantified_var(), "a");
  EXPECT_TRUE(f->FreeVariables().empty());
}

}  // namespace
}  // namespace fgq
