#include <gtest/gtest.h>

#include "fgq/eval/bmm.h"
#include "fgq/eval/oracle.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

TEST(Bmm, MatrixProductQueryShape) {
  ConjunctiveQuery pi = MatrixProductQuery();
  EXPECT_TRUE(IsAcyclicQuery(pi));
  EXPECT_FALSE(IsFreeConnex(pi));
  EXPECT_TRUE(pi.IsSelfJoinFree());
}

TEST(Bmm, QueryMultiplicationMatchesNaive) {
  Rng rng(17);
  for (size_t n : {1u, 2u, 5u, 16u}) {
    BoolMatrix a = RandomMatrix(n, 0.3, &rng);
    BoolMatrix b = RandomMatrix(n, 0.3, &rng);
    BoolMatrix expected = MultiplyNaive(a, b);
    auto got = MultiplyViaQuery(a, b);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->bits, expected.bits) << "n=" << n;
  }
}

TEST(Bmm, IdentityTimesAnything) {
  Rng rng(18);
  size_t n = 8;
  BoolMatrix id(n);
  for (size_t i = 0; i < n; ++i) id.Set(i, i, true);
  BoolMatrix b = RandomMatrix(n, 0.4, &rng);
  auto got = MultiplyViaQuery(id, b);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->bits, b.bits);
}

TEST(Bmm, EmbedExample47) {
  // Example 4.7: phi(x1..x4 projected) = E(x1,x4), S(x1,x1,x3),
  // T(x3,x2,x4); x1, x2 play x, y; x3 plays z.
  auto q = ParseConjunctiveQuery(
      "Q(x1, x2, x4) :- E(x1, x4), S(x1, x1, x3), T(x3, x2, x4).");
  ASSERT_TRUE(q.ok());
  Rng rng(19);
  const size_t n = 6;
  BoolMatrix a = RandomMatrix(n, 0.35, &rng);
  BoolMatrix b = RandomMatrix(n, 0.35, &rng);
  auto db = EmbedMatricesIntoQuery(*q, "x1", "x2", "x3", a, b);
  ASSERT_TRUE(db.ok()) << db.status();
  // The Example 4.7 query is itself cyclic once x2 is stripped (the point
  // is the reduction, not acyclic evaluation) — use the oracle.
  auto answers = EvaluateBacktrack(*q, *db);
  ASSERT_TRUE(answers.ok()) << answers.status();
  // Answers are (x1, x2, bottom) with product bit set.
  BoolMatrix expected = MultiplyNaive(a, b);
  BoolMatrix got(n);
  for (size_t r = 0; r < answers->NumTuples(); ++r) {
    const Value* row = answers->RowData(r);
    ASSERT_EQ(row[2], static_cast<Value>(n));  // The padding element.
    got.Set(static_cast<size_t>(row[0]), static_cast<size_t>(row[1]), true);
  }
  EXPECT_EQ(got.bits, expected.bits);
}

TEST(Bmm, EmbedRejectsSharedAtomForXY) {
  auto q = ParseConjunctiveQuery("Q(x, y) :- R(x, y, z).");
  ASSERT_TRUE(q.ok());
  BoolMatrix a(2), b(2);
  auto db = EmbedMatricesIntoQuery(*q, "x", "y", "z", a, b);
  EXPECT_FALSE(db.ok());
}

TEST(Bmm, EmbedRejectsSelfJoins) {
  auto q = ParseConjunctiveQuery("Q(x, y) :- R(x, z), R(z, y).");
  ASSERT_TRUE(q.ok());
  BoolMatrix a(2), b(2);
  auto db = EmbedMatricesIntoQuery(*q, "x", "y", "z", a, b);
  EXPECT_FALSE(db.ok());
}

TEST(Bmm, SparseMatrices) {
  Rng rng(20);
  BoolMatrix a = RandomMatrix(12, 0.05, &rng);
  BoolMatrix b = RandomMatrix(12, 0.05, &rng);
  auto got = MultiplyViaQuery(a, b);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->bits, MultiplyNaive(a, b).bits);
}

TEST(Bmm, AllOnes) {
  size_t n = 5;
  BoolMatrix a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a.Set(i, j, true);
      b.Set(i, j, true);
    }
  }
  auto got = MultiplyViaQuery(a, b);
  ASSERT_TRUE(got.ok());
  for (bool bit : got->bits) EXPECT_TRUE(bit);
}

}  // namespace
}  // namespace fgq
