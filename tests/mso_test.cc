#include <gtest/gtest.h>

#include <set>

#include "fgq/mso/courcelle.h"
#include "fgq/mso/tree_decomposition.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

Graph Cycle(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) g.AddEdge(i, (i + 1) % n);
  return g;
}

// ---- Tree decompositions -------------------------------------------------------

TEST(TreeDecomposition, ValidOnTrees) {
  Rng rng(61);
  for (int n : {1, 2, 5, 20, 100}) {
    Graph t = RandomTree(n, &rng);
    TreeDecomposition td = DecomposeMinDegree(t);
    EXPECT_TRUE(td.Validate(t).ok()) << "n=" << n;
    EXPECT_LE(td.Width(), 1u) << "trees have width 1";
  }
}

TEST(TreeDecomposition, ValidOnCyclesWithWidthTwo) {
  for (int n : {3, 4, 8, 15}) {
    Graph c = Cycle(n);
    TreeDecomposition td = DecomposeMinDegree(c);
    EXPECT_TRUE(td.Validate(c).ok());
    EXPECT_EQ(td.Width(), 2u) << "cycles have treewidth 2";
  }
}

TEST(TreeDecomposition, ValidOnRandomGraphs) {
  Rng rng(62);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = RandomGraph(12, 18, &rng);
    TreeDecomposition td = DecomposeMinDegree(g);
    EXPECT_TRUE(td.Validate(g).ok()) << "trial " << trial;
  }
}

TEST(TreeDecomposition, ValidOnPartialKTrees) {
  Rng rng(63);
  for (int k : {2, 3}) {
    Graph g = RandomPartialKTree(30, k, 20, &rng);
    TreeDecomposition td = DecomposeMinDegree(g);
    EXPECT_TRUE(td.Validate(g).ok());
    // Min-degree on partial k-trees stays near the true width.
    EXPECT_LE(td.Width(), static_cast<size_t>(2 * k + 1));
  }
}

TEST(TreeDecomposition, DisconnectedGraphs) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(3, 4);  // Two components plus isolated vertices.
  TreeDecomposition td = DecomposeMinDegree(g);
  EXPECT_TRUE(td.Validate(g).ok());
}

// ---- Courcelle-style counting and deciding (Theorem 3.11, [6]) ------------------

TEST(Courcelle, IndependentSetCountsMatchBruteForce) {
  Rng rng(64);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomGraph(10, 14, &rng);
    TreeDecomposition td = DecomposeMinDegree(g);
    auto dp = CountIndependentSets(g, td);
    ASSERT_TRUE(dp.ok()) << dp.status();
    EXPECT_EQ(dp->ToString(), CountIndependentSetsBrute(g).ToString())
        << "trial " << trial;
  }
}

TEST(Courcelle, IndependentSetsOnKnownGraphs) {
  // Path of 3 vertices: IS = {}, {0}, {1}, {2}, {0,2} = 5 (Fibonacci).
  Graph p3(3);
  p3.AddEdge(0, 1);
  p3.AddEdge(1, 2);
  TreeDecomposition td = DecomposeMinDegree(p3);
  EXPECT_EQ(CountIndependentSets(p3, td)->ToString(), "5");
  // Empty graph on 4 vertices: 2^4.
  Graph e4(4);
  TreeDecomposition td4 = DecomposeMinDegree(e4);
  EXPECT_EQ(CountIndependentSets(e4, td4)->ToString(), "16");
}

TEST(Courcelle, ColoringCountsMatchBruteForce) {
  Rng rng(65);
  for (int q : {2, 3}) {
    for (int trial = 0; trial < 6; ++trial) {
      Graph g = RandomGraph(8, 11, &rng);
      TreeDecomposition td = DecomposeMinDegree(g);
      auto dp = CountProperColorings(g, td, q);
      ASSERT_TRUE(dp.ok()) << dp.status();
      EXPECT_EQ(dp->ToString(), CountProperColoringsBrute(g, q).ToString())
          << "q=" << q << " trial=" << trial;
    }
  }
}

TEST(Courcelle, ColorabilityDecisions) {
  // Odd cycle: 2-colorable no, 3-colorable yes.
  Graph c5 = Cycle(5);
  TreeDecomposition td = DecomposeMinDegree(c5);
  EXPECT_FALSE(*IsQColorable(c5, td, 2));
  EXPECT_TRUE(*IsQColorable(c5, td, 3));
  // Even cycle: 2-colorable.
  Graph c6 = Cycle(6);
  TreeDecomposition td6 = DecomposeMinDegree(c6);
  EXPECT_TRUE(*IsQColorable(c6, td6, 2));
}

TEST(Courcelle, TreesAreTwoColorable) {
  Rng rng(66);
  Graph t = RandomTree(40, &rng);
  TreeDecomposition td = DecomposeMinDegree(t);
  EXPECT_TRUE(*IsQColorable(t, td, 2));
  // #2-colorings of a tree = 2^(#components) * ... for a connected tree: 2.
  EXPECT_EQ(CountProperColorings(t, td, 2)->ToString(), "2");
}

// ---- MSO enumeration (Theorem 3.12) ---------------------------------------------

TEST(MsoEnum, EnumeratesAllIndependentSetsOnce) {
  Rng rng(67);
  Graph g = RandomGraph(9, 12, &rng);
  IndependentSetEnumerator e(g);
  std::set<std::vector<bool>> seen;
  std::vector<bool> s;
  while (e.Next(&s)) {
    EXPECT_TRUE(seen.insert(s).second) << "duplicate solution";
    // Verify independence.
    for (const auto& [u, v] : g.edges) {
      EXPECT_FALSE(s[static_cast<size_t>(u)] && s[static_cast<size_t>(v)]);
    }
  }
  TreeDecomposition td = DecomposeMinDegree(g);
  EXPECT_EQ(std::to_string(seen.size()),
            CountIndependentSets(g, td)->ToString());
}

TEST(MsoEnum, FirstSolutionIsEmptySet) {
  Graph g(3);
  g.AddEdge(0, 1);
  IndependentSetEnumerator e(g);
  std::vector<bool> s;
  ASSERT_TRUE(e.Next(&s));
  EXPECT_EQ(s, std::vector<bool>(3, false));
}

TEST(MsoEnum, PaperExampleTwoFarApartSolutions) {
  // The paper's MSO example (Section 3.3.1): the two solutions
  // {1..n} and {n+1..2n} are disjoint — any enumerator must rewrite the
  // whole tape between them, hence delay must be measured in output size.
  // We check the two sets both appear among the independent sets of the
  // graph that connects each half into an independent-set-friendly shape:
  // take the complete bipartite graph between halves; its maximal
  // independent sets are exactly the two halves.
  const int n = 4;
  Graph g(2 * n);
  for (int a = 0; a < n; ++a) {
    for (int b = n; b < 2 * n; ++b) g.AddEdge(a, b);
  }
  IndependentSetEnumerator e(g);
  std::vector<bool> s;
  std::set<std::vector<bool>> seen;
  while (e.Next(&s)) seen.insert(s);
  std::vector<bool> left(2 * n, false), right(2 * n, false);
  for (int i = 0; i < n; ++i) left[static_cast<size_t>(i)] = true;
  for (int i = n; i < 2 * n; ++i) right[static_cast<size_t>(i)] = true;
  EXPECT_TRUE(seen.count(left));
  EXPECT_TRUE(seen.count(right));
  // 2 * 2^n - 1 independent sets (subsets of either side).
  EXPECT_EQ(seen.size(), 2u * (1u << n) - 1u);
}

TEST(MsoEnum, EmptyGraphEnumeratesPowerSet) {
  Graph g(3);
  IndependentSetEnumerator e(g);
  std::vector<bool> s;
  size_t count = 0;
  while (e.Next(&s)) ++count;
  EXPECT_EQ(count, 8u);
}

TEST(Brute, ColoringBruteSanity) {
  Graph g(2);
  g.AddEdge(0, 1);
  EXPECT_EQ(CountProperColoringsBrute(g, 3).ToString(), "6");
  EXPECT_EQ(CountIndependentSetsBrute(g).ToString(), "3");
}


// ---- Grids (Section 3.3's witness against MSO beyond bounded treewidth) --------

TEST(Grid, StructureAndTreewidth) {
  Graph g = GridGraph(4, 6);
  EXPECT_EQ(g.n, 24);
  // 4*5 horizontal + 3*6 vertical edges.
  EXPECT_EQ(g.edges.size(), static_cast<size_t>(4 * 5 + 3 * 6));
  TreeDecomposition td = DecomposeMinDegree(g);
  EXPECT_TRUE(td.Validate(g).ok());
  // Treewidth of a 4xN grid is 4; min-degree gets close.
  EXPECT_GE(td.Width(), 4u);
  EXPECT_LE(td.Width(), 8u);
}

TEST(Grid, GridsAreTwoColorableAndCountable) {
  Graph g = GridGraph(3, 5);
  TreeDecomposition td = DecomposeMinDegree(g);
  EXPECT_TRUE(*IsQColorable(g, td, 2));  // Grids are bipartite.
  auto is = CountIndependentSets(g, td);
  ASSERT_TRUE(is.ok());
  EXPECT_EQ(is->ToString(), CountIndependentSetsBrute(g).ToString());
}

TEST(Grid, NarrowGridsStayCheapWideGridsGrowInWidth) {
  // The per-width constant of the Courcelle DP: a 3xN grid (width ~3) is
  // far cheaper per vertex than an NxN grid (width ~N) — the measurable
  // face of "MSO tractability stops at bounded treewidth".
  Graph narrow = GridGraph(3, 27);
  Graph square = GridGraph(9, 9);
  TreeDecomposition tn = DecomposeMinDegree(narrow);
  TreeDecomposition ts = DecomposeMinDegree(square);
  EXPECT_LT(tn.Width(), ts.Width());
  auto cn = CountIndependentSets(narrow, tn);
  auto cs = CountIndependentSets(square, ts);
  ASSERT_TRUE(cn.ok());
  ASSERT_TRUE(cs.ok());  // Same vertex count, much bigger state space.
}

}  // namespace
}  // namespace fgq

