#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fgq/eval/engine.h"
#include "fgq/query/parser.h"

namespace fgq {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto q = ParseConjunctiveQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

struct GoldenCase {
  const char* text;
  QueryClass expected;
};

// A golden corpus pinning Engine::Classify across all seven classes. The
// service keys admission (heavy vs light lane) and metrics on this
// classification, so silent drift here would change serving behavior.
const GoldenCase kGolden[] = {
    // Boolean acyclic: no free variables, acyclic body.
    {"Q() :- E(x, y).", QueryClass::kBooleanAcyclic},
    {"Q() :- E(x, y), F(y, z).", QueryClass::kBooleanAcyclic},
    // Free-connex: quantifier-free queries, single atoms, and heads whose
    // variables form a connected extension of the join tree.
    {"Q(x, y) :- E(x, y).", QueryClass::kFreeConnexAcyclic},
    {"Q(x) :- E(x, y), B(y).", QueryClass::kFreeConnexAcyclic},
    {"Q(x, y, z) :- E(x, y), F(y, z).", QueryClass::kFreeConnexAcyclic},
    // General acyclic: the path query with existential middle (the
    // paper's canonical non-free-connex example).
    {"Q(x, z) :- E(x, y), F(y, z).", QueryClass::kGeneralAcyclic},
    {"Q(x, w) :- E(x, y), F(y, z), G(z, w).", QueryClass::kGeneralAcyclic},
    // Acyclic with only disequalities (ACQ_!=, Theorem 4.20 territory).
    {"Q(x, y) :- E(x, y), x != y.", QueryClass::kAcyclicDisequalities},
    // Any order comparison puts the query in the W[1]-hard fragment.
    {"Q(x, y) :- E(x, y), x < y.", QueryClass::kAcyclicOrderComparisons},
    {"Q(x, y) :- E(x, y), x <= y.", QueryClass::kAcyclicOrderComparisons},
    {"Q(x, y) :- E(x, y), x < y, x != y.",
     QueryClass::kAcyclicOrderComparisons},
    // Negation dominates every other feature.
    {"Q(x) :- E(x, y), not B(y).", QueryClass::kNegated},
    {"Q() :- E(x, y), not E(y, x).", QueryClass::kNegated},
    // Cyclic: triangle and 4-cycle.
    {"Q(x) :- E(x, y), F(y, z), G(z, x).", QueryClass::kCyclic},
    {"Q() :- E(x, y), F(y, z), G(z, w), H(w, x).", QueryClass::kCyclic},
};

TEST(EngineClassify, GoldenCorpus) {
  for (const GoldenCase& c : kGolden) {
    EXPECT_EQ(Engine::Classify(Q(c.text)), c.expected)
        << c.text << " expected " << QueryClassName(c.expected) << " got "
        << QueryClassName(Engine::Classify(Q(c.text)));
  }
}

TEST(EngineClassify, CoversAllSevenClasses) {
  std::vector<bool> seen(7, false);
  for (const GoldenCase& c : kGolden) {
    seen[static_cast<size_t>(c.expected)] = true;
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "class " << i << " ("
                         << QueryClassName(static_cast<QueryClass>(i))
                         << ") missing from the golden corpus";
  }
}

TEST(EngineClassify, NamesAreStable) {
  EXPECT_STREQ(QueryClassName(QueryClass::kBooleanAcyclic),
               "boolean-acyclic");
  EXPECT_STREQ(QueryClassName(QueryClass::kFreeConnexAcyclic), "free-connex");
  EXPECT_STREQ(QueryClassName(QueryClass::kGeneralAcyclic), "general-acyclic");
  EXPECT_STREQ(QueryClassName(QueryClass::kAcyclicDisequalities),
               "acyclic-disequalities");
  EXPECT_STREQ(QueryClassName(QueryClass::kAcyclicOrderComparisons),
               "acyclic-order-comparisons");
  EXPECT_STREQ(QueryClassName(QueryClass::kNegated), "negated");
  EXPECT_STREQ(QueryClassName(QueryClass::kCyclic), "cyclic");
}

}  // namespace
}  // namespace fgq
