#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "fgq/util/bigint.h"
#include "fgq/util/cancel.h"
#include "fgq/util/delay_recorder.h"
#include "fgq/util/hash.h"
#include "fgq/util/metrics.h"
#include "fgq/util/random.h"
#include "fgq/util/status.h"

namespace fgq {
namespace {

// ---- Status / Result --------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("relation 'R'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: relation 'R'");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kUnsupported, StatusCode::kParseError,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> good = Half(8);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 4);
  Result<int> bad = Half(7);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ValueOr(-1), -1);
  EXPECT_EQ(good.ValueOr(-1), 4);
}

Result<int> Quarter(int x) {
  FGQ_ASSIGN_OR_RETURN(int h, Half(x));
  FGQ_ASSIGN_OR_RETURN(int r, Half(h));
  return r;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(12), 3);
  EXPECT_FALSE(Quarter(6).ok());
}

// ---- BigInt -----------------------------------------------------------------

TEST(BigInt, SmallArithmetic) {
  EXPECT_EQ((BigInt(2) + BigInt(3)).ToString(), "5");
  EXPECT_EQ((BigInt(2) - BigInt(3)).ToString(), "-1");
  EXPECT_EQ((BigInt(-4) * BigInt(-5)).ToString(), "20");
  EXPECT_EQ((BigInt(-4) * BigInt(5)).ToString(), "-20");
  EXPECT_EQ(BigInt(0).ToString(), "0");
  EXPECT_TRUE(BigInt(0).is_zero());
  EXPECT_TRUE((BigInt(7) - BigInt(7)).is_zero());
}

TEST(BigInt, Int64Extremes) {
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
  EXPECT_EQ(BigInt(INT64_MAX).ToString(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MAX).ToInt64(), INT64_MAX);
}

TEST(BigInt, FromUint64CoversTheFullUnsignedRange) {
  EXPECT_TRUE(BigInt::FromUint64(0).is_zero());
  EXPECT_EQ(BigInt::FromUint64(123), BigInt(123));
  EXPECT_EQ(BigInt::FromUint64(uint64_t{INT64_MAX}), BigInt(INT64_MAX));
  // Above 2^63 - 1, routing through the int64_t constructor would wrap
  // negative — this is how answer counts used to truncate in the serving
  // layer.
  EXPECT_EQ(BigInt::FromUint64(uint64_t{1} << 63).ToString(),
            "9223372036854775808");
  EXPECT_EQ(BigInt::FromUint64(UINT64_MAX).ToString(),
            "18446744073709551615");
  EXPECT_EQ(BigInt::FromUint64(UINT64_MAX) + BigInt(1),
            BigInt::Pow2(64));
}

TEST(BigInt, Pow2) {
  EXPECT_EQ(BigInt::Pow2(0).ToString(), "1");
  EXPECT_EQ(BigInt::Pow2(10).ToString(), "1024");
  EXPECT_EQ(BigInt::Pow2(64).ToString(), "18446744073709551616");
  EXPECT_EQ(BigInt::Pow2(100).ToString(), "1267650600228229401496703205376");
}

TEST(BigInt, PowMatchesRepeatedMultiplication) {
  BigInt b(7);
  BigInt acc(1);
  for (int e = 0; e < 20; ++e) {
    EXPECT_EQ(BigInt::Pow(b, static_cast<uint64_t>(e)).ToString(),
              acc.ToString());
    acc *= b;
  }
}

TEST(BigInt, FromStringRoundTrip) {
  for (const std::string& s :
       {"0", "1", "-1", "123456789012345678901234567890",
        "-999999999999999999999999999999999"}) {
    EXPECT_EQ(BigInt::FromString(s).ToString(), s);
  }
}

TEST(BigInt, Comparison) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_LT(BigInt::Pow2(64), BigInt::Pow2(65));
  EXPECT_GE(BigInt(5), BigInt(5));
}

TEST(BigInt, DivSmall) {
  EXPECT_EQ(BigInt(100).DivSmall(7).ToString(), "14");
  EXPECT_EQ(BigInt::Pow2(100).DivSmall(1).ToString(),
            BigInt::Pow2(100).ToString());
  // 2^100 / 2^20 == 2^80.
  BigInt v = BigInt::Pow2(100);
  for (int i = 0; i < 2; ++i) v = v.DivSmall(1024);
  EXPECT_EQ(v.ToString(), BigInt::Pow2(80).ToString());
}

TEST(BigInt, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(1000).ToDouble(), 1000.0);
  EXPECT_NEAR(BigInt::Pow2(70).ToDouble(), std::ldexp(1.0, 70), 1e3);
  EXPECT_LT(BigInt(-12).ToDouble(), 0);
}

TEST(BigInt, RandomizedRingAxioms) {
  Rng rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    int64_t a = static_cast<int64_t>(rng.Next() >> 20) - (1LL << 42);
    int64_t b = static_cast<int64_t>(rng.Next() >> 20) - (1LL << 42);
    int64_t c = static_cast<int64_t>(rng.Next() >> 40);
    BigInt A(a), B(b), C(c);
    EXPECT_EQ(((A + B) * C).ToString(), (A * C + B * C).ToString());
    EXPECT_EQ((A + B).ToString(), (B + A).ToString());
    EXPECT_EQ((A - B).ToString(), (-(B - A)).ToString());
  }
}

// ---- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, BelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All five values hit.
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ---- Hash -------------------------------------------------------------------

TEST(Hash, VecHashDistinguishesOrderAndContent) {
  VecHash h;
  EXPECT_NE(h({1, 2}), h({2, 1}));
  EXPECT_NE(h({1}), h({1, 0}));
  EXPECT_EQ(h({5, 6, 7}), h({5, 6, 7}));
}

TEST(Hash, Mix64Avalanches) {
  // Consecutive inputs should differ in many bits.
  int total_diff = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    total_diff += __builtin_popcountll(Mix64(i) ^ Mix64(i + 1));
  }
  EXPECT_GT(total_diff / 64, 20);
}

// ---- DelayRecorder ----------------------------------------------------------

TEST(DelayRecorder, CountsAndMeans) {
  DelayRecorder rec;
  rec.StartEnumeration();
  for (int i = 0; i < 10; ++i) rec.RecordOutput();
  EXPECT_EQ(rec.count(), 10);
  EXPECT_GE(rec.max_delay_ns(), 0);
  EXPECT_GE(rec.mean_delay_ns(), 0.0);
  EXPECT_LE(rec.mean_delay_ns(), static_cast<double>(rec.max_delay_ns()));
}

TEST(DelayRecorder, PercentilesAreOrderedAndBounded) {
  DelayRecorder rec;
  rec.StartEnumeration();
  for (int i = 0; i < 200; ++i) rec.RecordOutput();
  EXPECT_LE(rec.p50_delay_ns(), rec.p95_delay_ns());
  EXPECT_LE(rec.p95_delay_ns(), rec.p99_delay_ns());
  EXPECT_LE(rec.p99_delay_ns(), rec.max_delay_ns());
  EXPECT_EQ(rec.quantile_delay_ns(1.0), rec.max_delay_ns());
}

TEST(DelayRecorder, EmptyRecorderReportsZero) {
  DelayRecorder rec;
  rec.StartEnumeration();
  EXPECT_EQ(rec.count(), 0);
  EXPECT_EQ(rec.p50_delay_ns(), 0);
  EXPECT_EQ(rec.p99_delay_ns(), 0);
}

// ---- CancelToken ------------------------------------------------------------

TEST(CancelToken, InertTokenNeverTrips) {
  CancelToken t;
  EXPECT_FALSE(t.cancellable());
  EXPECT_FALSE(t.cancelled());
  t.Cancel();  // No-op.
  EXPECT_FALSE(t.cancelled());
  EXPECT_TRUE(t.Check().ok());
}

TEST(CancelToken, ExplicitCancelLatchesAcrossCopies) {
  CancelToken t = CancelToken::Cancellable();
  CancelToken copy = t;
  EXPECT_FALSE(copy.cancelled());
  t.Cancel();
  EXPECT_TRUE(copy.cancelled());
  Status st = copy.Check("unit test");
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.message().find("during unit test"), std::string::npos);
}

TEST(CancelToken, ExpiredDeadlineTripsOnFirstCheck) {
  // A deadline in the past must trip immediately — the amortized clock
  // stride always reads the clock on the first poll.
  CancelToken t = CancelToken::WithTimeout(std::chrono::nanoseconds(-1));
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.Check("seed").code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelToken, FutureDeadlineDoesNotTrip) {
  CancelToken t = CancelToken::WithTimeout(std::chrono::hours(24));
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(t.cancelled());
}

TEST(CancelToken, SameStateAsIdentifiesCopies) {
  CancelToken a = CancelToken::Cancellable();
  CancelToken b = a;
  CancelToken c = CancelToken::Cancellable();
  EXPECT_TRUE(a.SameStateAs(b));
  EXPECT_FALSE(a.SameStateAs(c));
  EXPECT_FALSE(CancelToken().SameStateAs(CancelToken()));
}

// ---- Metrics ----------------------------------------------------------------

TEST(Metrics, CounterIncrements) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Metrics, HistogramQuantilesOnUniformData) {
  Histogram h({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int v = 1; v <= 100; ++v) h.Observe(v);
  EXPECT_EQ(h.TotalCount(), 100u);
  EXPECT_NEAR(h.Mean(), 50.5, 0.01);
  EXPECT_NEAR(h.Quantile(0.5), 50, 10.01);
  EXPECT_NEAR(h.Quantile(0.95), 95, 10.01);
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.95));
}

TEST(Metrics, HistogramOverflowReportsLastBound) {
  Histogram h({1, 2});
  h.Observe(1000);
  EXPECT_EQ(h.TotalCount(), 1u);
  EXPECT_EQ(h.Quantile(0.99), 2.0);  // Clamped to the last finite bound.
}

TEST(Metrics, ExponentialBounds) {
  std::vector<double> b = Histogram::ExponentialBounds(1.0, 2.0, 5);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[4], 16.0);
}

TEST(Metrics, LatencyBoundsResolveSubMicrosecondObservations) {
  // Regression: the serving histograms used ExponentialBounds(1.0, ...),
  // whose first bucket is [0, 1us] — every sub-microsecond phase (a plan
  // cache hit costs ~38ns) interpolated to ~0.5us, a 13x overstatement.
  // LatencyBounds starts at 1ns so the same observation lands in a bucket
  // narrow enough to read back at the right order of magnitude.
  Histogram coarse(Histogram::ExponentialBounds(1.0, 2.0, 34));
  Histogram fine(Histogram::LatencyBounds());
  for (int i = 0; i < 100; ++i) {
    coarse.Observe(0.038);  // 38ns, in microseconds
    fine.Observe(0.038);
  }
  EXPECT_GT(coarse.Quantile(0.5), 0.25);  // The bug: reads as ~0.5us.
  EXPECT_LT(fine.Quantile(0.5), 0.064);   // Containing bucket (0.032, 0.064].
  EXPECT_GT(fine.Quantile(0.5), 0.032);
  // The top of the range still covers multi-second outliers.
  double top = Histogram::LatencyBounds().back();
  EXPECT_GE(top, 4e6);  // >= ~4s in microseconds.
}

TEST(Metrics, RegistryStableHandlesAndTextDump) {
  MetricsRegistry reg;
  Counter& c1 = reg.GetCounter("requests");
  Counter& c2 = reg.GetCounter("requests");
  EXPECT_EQ(&c1, &c2);
  c1.Increment(3);
  reg.GetHistogram("latency", {1, 10, 100}).Observe(5);
  std::string dump = reg.TextDump();
  EXPECT_NE(dump.find("counter requests 3"), std::string::npos) << dump;
  EXPECT_NE(dump.find("histogram latency count=1"), std::string::npos)
      << dump;
}

}  // namespace
}  // namespace fgq
