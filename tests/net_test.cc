#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fgq/check/check.h"
#include "fgq/check/net_fuzz.h"
#include "fgq/eval/engine.h"
#include "fgq/net/client.h"
#include "fgq/net/protocol.h"
#include "fgq/net/server.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

// Loopback integration tests for fgq::net: a real NetServer on 127.0.0.1,
// a real Client, and every wire answer compared against a direct Engine
// run on the same database. The protocol codec itself is unit-fuzzed in
// check_test / RunFrameFuzz; this file is about the server semantics —
// pipelining, per-request vs per-connection error handling, shard
// routing, graceful shutdown.

namespace fgq {
namespace {

using net::Client;
using net::NetServer;
using net::NetServerOptions;
using net::Request;
using net::Response;
using net::Verb;

ConjunctiveQuery Q(const std::string& text) {
  auto q = ParseConjunctiveQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

/// E = {(0,1),(1,2),(2,0),(0,3)}, B = {1, 2}.
Database TinyGraph() {
  Database db;
  Relation e("E", 2);
  e.Add({0, 1});
  e.Add({1, 2});
  e.Add({2, 0});
  e.Add({0, 3});
  Relation b("B", 1);
  b.Add({1});
  b.Add({2});
  db.PutRelation(std::move(e));
  db.PutRelation(std::move(b));
  return db;
}

std::set<Tuple> Rows(const Relation& rel) {
  std::set<Tuple> out;
  for (size_t i = 0; i < rel.NumTuples(); ++i) {
    out.insert(rel.Row(i).ToTuple());
  }
  return out;
}

std::set<Tuple> WireRows(const Response& resp) {
  std::set<Tuple> out;
  for (size_t r = 0; r < resp.num_rows(); ++r) {
    Tuple t(resp.arity);
    for (size_t c = 0; c < resp.arity; ++c) t[c] = resp.values[r * resp.arity + c];
    out.insert(std::move(t));
  }
  return out;
}

std::unique_ptr<NetServer> StartOrSkip(const Database& db,
                                       NetServerOptions opts) {
  auto server = NetServer::Start(&db, std::move(opts));
  if (!server.ok() &&
      server.status().code() == StatusCode::kUnsupported) {
    return nullptr;  // Non-Linux build of the stub; caller GTEST_SKIPs.
  }
  EXPECT_TRUE(server.ok()) << server.status();
  return server.ok() ? std::move(*server) : nullptr;
}

#define START_OR_SKIP(server, db, opts)                         \
  std::unique_ptr<NetServer> server = StartOrSkip(db, opts);    \
  if (!server) GTEST_SKIP() << "fgq::net unsupported platform"

std::unique_ptr<Client> Connect(const NetServer& server) {
  auto c = Client::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(c.ok()) << c.status();
  return std::move(*c);
}

Request Make(uint64_t id, Verb verb, const std::string& query,
             uint32_t limit = 0) {
  Request r;
  r.id = id;
  r.verb = verb;
  r.query = query;
  r.limit = limit;
  return r;
}

// ---- Pipelined mixed verbs vs direct Engine --------------------------------

TEST(NetTest, PipelinedMixedVerbsMatchDirectEngine) {
  const Database db = TinyGraph();
  START_OR_SKIP(server, db, NetServerOptions{});
  std::unique_ptr<Client> client = Connect(*server);

  const std::string rule = "Q(x, y) :- E(x, y), B(y).";
  const std::string boolean_rule = "Q() :- E(x, y), B(x).";
  // Send everything before reading anything: rows, count, limited
  // enumeration, explain, a Boolean (nullary) query, and a ping. The
  // server must answer strictly in this order.
  ASSERT_TRUE(client->Send(Make(1, Verb::kRows, rule)).ok());
  ASSERT_TRUE(client->Send(Make(2, Verb::kCount, rule)).ok());
  ASSERT_TRUE(client->Send(Make(3, Verb::kEnumerateLimit, rule, 1)).ok());
  ASSERT_TRUE(client->Send(Make(4, Verb::kExplain, rule)).ok());
  ASSERT_TRUE(client->Send(Make(5, Verb::kRows, boolean_rule)).ok());
  ASSERT_TRUE(client->Send(Make(6, Verb::kPing, "")).ok());

  Engine engine;
  const ConjunctiveQuery q = Q(rule);
  Result<ExecResult> direct = engine.Run(ExecRequest(q, db));
  ASSERT_TRUE(direct.ok()) << direct.status();

  Result<Response> rows = client->Receive(Verb::kRows);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->id, 1u);
  ASSERT_TRUE(rows->ok()) << rows->text;
  EXPECT_EQ(rows->arity, 2u);
  EXPECT_EQ(WireRows(*rows), Rows(direct->answers));

  Result<Response> count = client->Receive(Verb::kCount);
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count->id, 2u);
  ASSERT_TRUE(count->ok()) << count->text;
  EXPECT_EQ(count->count, std::to_string(direct->NumAnswers()));

  Result<Response> limited = client->Receive(Verb::kEnumerateLimit);
  ASSERT_TRUE(limited.ok()) << limited.status();
  EXPECT_EQ(limited->id, 3u);
  ASSERT_TRUE(limited->ok()) << limited->text;
  EXPECT_EQ(limited->num_rows(), 1u);
  const std::set<Tuple> full = Rows(direct->answers);
  for (const Tuple& t : WireRows(*limited)) {
    EXPECT_TRUE(full.count(t)) << "limited row not in full answer set";
  }

  Result<Response> explain = client->Receive(Verb::kExplain);
  ASSERT_TRUE(explain.ok()) << explain.status();
  EXPECT_EQ(explain->id, 4u);
  ASSERT_TRUE(explain->ok()) << explain->text;
  EXPECT_NE(explain->explain.find("free-connex"), std::string::npos)
      << explain->explain;

  Result<Response> boolean = client->Receive(Verb::kRows);
  ASSERT_TRUE(boolean.ok()) << boolean.status();
  EXPECT_EQ(boolean->id, 5u);
  ASSERT_TRUE(boolean->ok()) << boolean->text;
  EXPECT_EQ(boolean->arity, 0u);
  EXPECT_EQ(boolean->num_rows(), 1u);  // E(x,y) with B(x) holds (x=1,y=2).

  Result<Response> pong = client->Receive(Verb::kPing);
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_EQ(pong->id, 6u);
  EXPECT_TRUE(pong->ok());

  server->Stop();
  const net::NetServerStats stats = server->stats();
  EXPECT_EQ(stats.requests, 6u);
  EXPECT_EQ(stats.responses, 6u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.parse_errors, 0u);
}

TEST(NetTest, CacheHitFlagSetOnRepeat) {
  const Database db = TinyGraph();
  START_OR_SKIP(server, db, NetServerOptions{});
  std::unique_ptr<Client> client = Connect(*server);
  const std::string rule = "Q(x) :- E(x, y).";
  Result<Response> cold = client->Call(Make(1, Verb::kRows, rule));
  ASSERT_TRUE(cold.ok()) << cold.status();
  ASSERT_TRUE(cold->ok()) << cold->text;
  EXPECT_FALSE(cold->cache_hit());
  Result<Response> warm = client->Call(Make(2, Verb::kRows, rule));
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_TRUE(warm->ok()) << warm->text;
  EXPECT_TRUE(warm->cache_hit());
  EXPECT_EQ(WireRows(*cold), WireRows(*warm));
}

// ---- Error handling ---------------------------------------------------------

TEST(NetTest, ParseErrorKeepsConnectionUsable) {
  const Database db = TinyGraph();
  START_OR_SKIP(server, db, NetServerOptions{});
  std::unique_ptr<Client> client = Connect(*server);

  Result<Response> bad =
      client->Call(Make(7, Verb::kRows, "this is not datalog"));
  ASSERT_TRUE(bad.ok()) << bad.status();
  EXPECT_EQ(bad->id, 7u);
  EXPECT_FALSE(bad->ok());
  EXPECT_EQ(static_cast<StatusCode>(bad->status), StatusCode::kParseError)
      << bad->text;

  // The connection survives an application error: the next request works.
  Result<Response> good =
      client->Call(Make(8, Verb::kCount, "Q(x) :- E(x, y)."));
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_EQ(good->id, 8u);
  ASSERT_TRUE(good->ok()) << good->text;
  EXPECT_EQ(good->count, "3");  // x in {0, 1, 2}.

  server->Stop();
  const net::NetServerStats stats = server->stats();
  EXPECT_EQ(stats.parse_errors, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(NetTest, FramingErrorClosesConnection) {
  const Database db = TinyGraph();
  START_OR_SKIP(server, db, NetServerOptions{});
  std::unique_ptr<Client> client = Connect(*server);

  // Garbage with a wrong magic: a framing violation, not an application
  // error. The server answers with one error frame (id 0 — the stream is
  // desynchronized, no id can be trusted) and closes.
  ASSERT_TRUE(client->SendRaw("XXXXGARBAGEGARBAGE").ok());
  Result<Response> err = client->Receive(Verb::kPing);
  ASSERT_TRUE(err.ok()) << err.status();
  EXPECT_EQ(err->id, 0u);
  EXPECT_FALSE(err->ok());
  // Then EOF: the next receive fails because the server closed.
  Result<Response> eof = client->Receive(Verb::kPing);
  EXPECT_FALSE(eof.ok());

  server->Stop();
  EXPECT_GE(server->stats().protocol_errors, 1u);

  // A fresh connection is unaffected.
  // (Server restarted per test; this asserts the *server* survived.)
}

TEST(NetTest, FreshConnectionWorksAfterFramingError) {
  const Database db = TinyGraph();
  START_OR_SKIP(server, db, NetServerOptions{});
  {
    std::unique_ptr<Client> broken = Connect(*server);
    ASSERT_TRUE(broken->SendRaw("not a frame at all.....").ok());
    Result<Response> err = broken->Receive(Verb::kPing);
    ASSERT_TRUE(err.ok()) << err.status();
    EXPECT_FALSE(err->ok());
  }
  std::unique_ptr<Client> fresh = Connect(*server);
  Result<Response> pong = fresh->Call(Make(1, Verb::kPing, ""));
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(pong->ok());
}

// ---- Routing ----------------------------------------------------------------

TEST(NetTest, RouterModeServesManyConnections) {
  const Database db = TinyGraph();
  NetServerOptions opts;
  opts.num_shards = 2;
  opts.use_reuseport = false;  // Round-robin fd handoff through shard 0.
  START_OR_SKIP(server, db, opts);
  EXPECT_EQ(server->num_shards(), 2u);

  // More connections than shards so every shard serves at least one.
  constexpr int kConns = 6;
  for (int i = 0; i < kConns; ++i) {
    std::unique_ptr<Client> client = Connect(*server);
    Result<Response> resp =
        client->Call(Make(static_cast<uint64_t>(i + 1), Verb::kCount,
                          "Q(x, y) :- E(x, y)."));
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_TRUE(resp->ok()) << resp->text;
    EXPECT_EQ(resp->count, "4");
  }
  server->Stop();
  const net::NetServerStats stats = server->stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kConns));
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kConns));
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(NetTest, ReuseportModeServesManyConnections) {
  const Database db = TinyGraph();
  NetServerOptions opts;
  opts.num_shards = 2;
  opts.use_reuseport = true;
  START_OR_SKIP(server, db, opts);
  for (int i = 0; i < 6; ++i) {
    std::unique_ptr<Client> client = Connect(*server);
    Result<Response> resp = client->Call(
        Make(1, Verb::kCount, "Q(x) :- B(x)."));
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_TRUE(resp->ok()) << resp->text;
    EXPECT_EQ(resp->count, "2");
  }
}

// ---- Shutdown ---------------------------------------------------------------

TEST(NetTest, GracefulStopFlushesInFlightResponses) {
  const Database db = TinyGraph();
  START_OR_SKIP(server, db, NetServerOptions{});
  std::unique_ptr<Client> client = Connect(*server);

  // Pipeline a batch, then stop the server before reading: the drain
  // phase must flush every pending response before the close.
  constexpr int kBatch = 16;
  for (int i = 0; i < kBatch; ++i) {
    ASSERT_TRUE(
        client->Send(Make(static_cast<uint64_t>(i + 1), Verb::kCount,
                          "Q(x, y) :- E(x, y), B(y)."))
            .ok());
  }
  std::thread stopper([&] { server->Stop(); });
  int received = 0;
  for (int i = 0; i < kBatch; ++i) {
    Result<Response> resp = client->Receive(Verb::kCount);
    if (!resp.ok()) break;  // Drain deadline may cut the tail under load.
    EXPECT_EQ(resp->id, static_cast<uint64_t>(i + 1));
    if (resp->ok()) EXPECT_EQ(resp->count, "2");
    ++received;
  }
  stopper.join();
  // The batch is tiny and the drain window is 2s: everything flushes.
  EXPECT_EQ(received, kBatch);
}

TEST(NetTest, ClientHalfCloseDrainsThenEof) {
  const Database db = TinyGraph();
  START_OR_SKIP(server, db, NetServerOptions{});
  std::unique_ptr<Client> client = Connect(*server);
  ASSERT_TRUE(client->Send(Make(1, Verb::kCount, "Q(x) :- E(x, y).")).ok());
  client->ShutdownWrite();
  Result<Response> resp = client->Receive(Verb::kCount);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->count, "3");
  Result<Response> eof = client->Receive(Verb::kCount);
  EXPECT_FALSE(eof.ok());
}

// ---- Codec fuzz smoke -------------------------------------------------------

TEST(NetTest, FrameFuzzSmoke) {
  check::FrameFuzzOptions opt;
  opt.seed = 7;
  opt.iterations = 300;
  const check::FrameFuzzReport report = check::RunFrameFuzz(opt);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.roundtrips, 0u);
  EXPECT_GT(report.clean_errors, 0u);
}

// ---- Differential equivalence on the committed corpus -----------------------

#ifdef FGQ_REGRESS_DIR
TEST(NetTest, RegressionCorpusMatchesOverTheWire) {
  // Every committed .fgqr case re-diffed with the loopback net paths on:
  // wire answers must be bit-identical to the reference for rows, count
  // and limited enumeration. This is the acceptance bar for the socket
  // front end — the network hop may not change a single answer.
  FuzzOptions opt;
  opt.include_net = true;
  std::string report;
  Status st = ReplayRegressionDir(FGQ_REGRESS_DIR, opt, &report);
  EXPECT_TRUE(st.ok()) << report;
}
#endif

}  // namespace
}  // namespace fgq
