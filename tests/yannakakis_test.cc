#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "fgq/eval/oracle.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto r = ParseConjunctiveQuery(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

std::string Key(const Relation& r) {
  std::string s = std::to_string(r.NumTuples()) + ":";
  for (size_t i = 0; i < r.NumTuples(); ++i) {
    for (size_t j = 0; j < r.arity(); ++j) {
      s += std::to_string(r.Row(i)[j]) + ",";
    }
    s += ";";
  }
  return s;
}

/// Asserts that two relations hold the same tuple set.
void ExpectSameAnswers(Relation a, Relation b) {
  a.SortDedup();
  b.SortDedup();
  ASSERT_EQ(a.arity(), b.arity());
  EXPECT_EQ(Key(a), Key(b));
}

TEST(Yannakakis, SimplePathJoin) {
  Database db;
  Relation e("E", 2);
  e.Add({1, 2});
  e.Add({2, 3});
  e.Add({3, 4});
  db.PutRelation(e);
  Relation f = e;
  f.set_name("F");
  db.PutRelation(f);
  auto res = EvaluateYannakakis(Q("Q(x, z) :- E(x, y), F(y, z)."), db);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->NumTuples(), 2u);  // (1,3), (2,4).
  EXPECT_TRUE(res->Contains({1, 3}));
  EXPECT_TRUE(res->Contains({2, 4}));
}

TEST(Yannakakis, BooleanQueryTrueAndFalse) {
  Database db;
  Relation e("E", 2);
  e.Add({1, 2});
  db.PutRelation(e);
  Relation f("F", 2);
  db.PutRelation(f);
  auto t = EvaluateBooleanAcq(Q("Q() :- E(x, y)."), db);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(*t);
  auto fr = EvaluateBooleanAcq(Q("Q() :- E(x, y), F(y, z)."), db);
  ASSERT_TRUE(fr.ok());
  EXPECT_FALSE(*fr);
}

TEST(Yannakakis, ConstantsFilterRows) {
  Database db;
  Relation e("E", 2);
  e.Add({1, 2});
  e.Add({1, 3});
  e.Add({2, 3});
  db.PutRelation(e);
  auto res = EvaluateYannakakis(Q("Q(y) :- E(1, y)."), db);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->NumTuples(), 2u);
}

TEST(Yannakakis, RepeatedVariableInAtom) {
  Database db;
  Relation e("E", 2);
  e.Add({1, 1});
  e.Add({1, 2});
  e.Add({3, 3});
  db.PutRelation(e);
  auto res = EvaluateYannakakis(Q("Q(x) :- E(x, x)."), db);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->NumTuples(), 2u);  // 1, 3.
}

TEST(Yannakakis, RejectsCyclicQuery) {
  Database db;
  db.PutRelation(Relation("E", 2));
  db.PutRelation(Relation("F", 2));
  db.PutRelation(Relation("G", 2));
  auto res = EvaluateYannakakis(Q("Q() :- E(x, y), F(y, z), G(z, x)."), db);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(Yannakakis, MissingRelationIsNotFound) {
  Database db;
  auto res = EvaluateYannakakis(Q("Q(x) :- Nope(x)."), db);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kNotFound);
}

TEST(Yannakakis, CartesianProductViaDisconnectedAtoms) {
  Database db;
  Relation a("A", 1), b("B", 1);
  a.Add({1});
  a.Add({2});
  b.Add({7});
  b.Add({8});
  db.PutRelation(a);
  db.PutRelation(b);
  auto res = EvaluateYannakakis(Q("Q(x, y) :- A(x), B(y)."), db);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->NumTuples(), 4u);
}

TEST(Yannakakis, EmptyRelationPropagatesThroughDisconnectedParts) {
  Database db;
  Relation a("A", 1), b("B", 1);
  a.Add({1});
  db.PutRelation(a);
  db.PutRelation(b);  // Empty.
  auto res = EvaluateYannakakis(Q("Q(x) :- A(x), B(y)."), db);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->NumTuples(), 0u);
}

TEST(Yannakakis, SelfJoinSameRelationTwice) {
  Database db;
  Relation e("E", 2);
  e.Add({1, 2});
  e.Add({2, 3});
  db.PutRelation(e);
  auto res = EvaluateYannakakis(Q("Q(x, z) :- E(x, y), E(y, z)."), db);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->NumTuples(), 1u);
  EXPECT_TRUE(res->Contains({1, 3}));
}

TEST(Yannakakis, MatchesOracleOnFigure1Workload) {
  Rng rng(11);
  Database db = Figure1Database(/*tuples=*/40, /*domain=*/6, &rng);
  ConjunctiveQuery q = Figure1Query();
  auto fast = EvaluateYannakakis(q, db);
  auto slow = EvaluateBacktrack(q, db);
  ASSERT_TRUE(fast.ok()) << fast.status();
  ASSERT_TRUE(slow.ok()) << slow.status();
  ExpectSameAnswers(*fast, *slow);
}

TEST(Yannakakis, JoinMaterializeBaselineAgrees) {
  Rng rng(12);
  Database db = PathDatabase(3, 50, 7, &rng);
  ConjunctiveQuery q = PathQuery(3);
  auto fast = EvaluateYannakakis(q, db);
  auto base = EvaluateJoinMaterialize(q, db);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(base.ok());
  ExpectSameAnswers(*fast, *base);
}

// ---- Property sweep: random acyclic queries vs the oracle --------------------

struct SweepParam {
  std::string query;
  size_t tuples;
  Value domain;
  uint64_t seed;
};

void PrintTo(const SweepParam& p, std::ostream* os) { *os << p.query; }

class YannakakisSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(YannakakisSweep, MatchesOracle) {
  const SweepParam& p = GetParam();
  Rng rng(p.seed);
  ConjunctiveQuery q = Q(p.query);
  Database db;
  for (const Atom& a : q.atoms()) {
    if (!db.Has(a.relation)) {
      db.PutRelation(
          RandomRelation(a.relation, a.arity(), p.tuples, p.domain, &rng));
    }
  }
  db.DeclareDomainSize(p.domain);
  auto fast = EvaluateYannakakis(q, db);
  auto slow = EvaluateBacktrack(q, db);
  ASSERT_TRUE(fast.ok()) << fast.status();
  ASSERT_TRUE(slow.ok()) << slow.status();
  ExpectSameAnswers(*fast, *slow);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, YannakakisSweep,
    ::testing::Values(
        SweepParam{"Q(x, y) :- R(x, y).", 20, 5, 1},
        SweepParam{"Q(x) :- R(x, y), S(y).", 25, 6, 2},
        SweepParam{"Q(x, z) :- R(x, y), S(y, z).", 30, 5, 3},
        SweepParam{"Q(x, y, z) :- R(x, y), S(y, z).", 30, 5, 4},
        SweepParam{"Q() :- R(x, y), S(y, z), T(z, w).", 10, 8, 5},
        SweepParam{"Q(a) :- R(a, b), S(b, c), T(c, d).", 25, 5, 6},
        SweepParam{"Q(a, d) :- R(a, b), S(b, c), T(c, d).", 25, 4, 7},
        SweepParam{"Q(x, y, z) :- E(x, y), F(y, z), G(z, x), T(x, y, z).",
                   20, 4, 8},
        SweepParam{"Q(x) :- R(x, x, y), S(y, 2).", 40, 4, 9},
        SweepParam{"Q(u, v) :- A(u), B(v), C(u, v).", 15, 5, 10},
        SweepParam{"Q(x) :- R(x, y), S(y, z), U(z), V(y).", 25, 5, 11},
        SweepParam{"Q(x, w) :- R(x, y), S(x, w), T(w, u).", 25, 5, 12}));

/// Full reduction leaves only tuples that participate in some answer
/// (global consistency, the property both the constant-delay enumerator
/// and Algorithm 2 rely on).
TEST(FullReduce, ReducedRelationsAreGloballyConsistent) {
  Rng rng(99);
  Database db = PathDatabase(3, 60, 8, &rng);
  ConjunctiveQuery q = PathQuery(3);
  auto rq = FullReduce(q, db);
  ASSERT_TRUE(rq.ok()) << rq.status();
  if (rq->empty) GTEST_SKIP() << "random instance had empty result";
  ConjunctiveQuery full = FullPathQuery(3);
  auto all = EvaluateYannakakis(full, db);
  ASSERT_TRUE(all.ok());
  for (size_t ai = 0; ai < rq->atoms.size(); ++ai) {
    const PreparedAtom& pa = rq->atoms[ai];
    for (size_t r = 0; r < pa.rel.NumTuples(); ++r) {
      bool found = false;
      for (size_t s = 0; s < all->NumTuples() && !found; ++s) {
        bool match = true;
        for (size_t c = 0; c < pa.vars.size(); ++c) {
          // Variables are x1..x4; their column in the full answer.
          size_t col = static_cast<size_t>(pa.vars[c][1] - '1');
          if (all->Row(s)[col] != pa.rel.Row(r)[c]) {
            match = false;
            break;
          }
        }
        found = match;
      }
      EXPECT_TRUE(found) << "dangling tuple survived full reduction";
    }
  }
}

TEST(FullReduce, EmptyFlagSetWhenUnsatisfiable) {
  Database db;
  Relation a("A", 2);
  a.Add({1, 2});
  Relation b("B", 2);
  b.Add({3, 4});  // No join partner.
  db.PutRelation(a);
  db.PutRelation(b);
  auto rq = FullReduce(Q("Q(x) :- A(x, y), B(y, z)."), db);
  ASSERT_TRUE(rq.ok());
  EXPECT_TRUE(rq->empty);
}

}  // namespace
}  // namespace fgq
