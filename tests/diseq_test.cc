#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "fgq/eval/diseq.h"
#include "fgq/eval/oracle.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto r = ParseConjunctiveQuery(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

// ---- Covers machinery (Definitions 4.16-4.19) ---------------------------------

/// The exact table of Example 4.19 (columns f1..f4 over rows a..f).
FunctionTable Example419Table() {
  FunctionTable t;
  t.k = 4;
  t.rows = {
      {1, 2, 4, 5},  // a
      {1, 5, 1, 5},  // b
      {3, 2, 4, 5},  // c
      {3, 5, 3, 5},  // d
      {5, 2, 4, 5},  // e
      {2, 2, 4, 5},  // f
  };
  return t;
}

TEST(Covers, DefinitionBasics) {
  FunctionTable t = Example419Table();
  // (⊔,⊔,⊔,5) covers: every row has f4 = 5.
  EXPECT_TRUE(CoversTable(t, {kBlank, kBlank, kBlank, 5}));
  // (1,2,3,⊔): a,b hit on f1; c,d hit? c: f1=3 no, f2=2 yes; d: f1=3? no —
  // d = (3,5,3,5): f3=3 hit. e: f2=2. f: f2=2. Covers.
  EXPECT_TRUE(CoversTable(t, {1, 2, 3, kBlank}));
  // (1,2,⊔,⊔) misses d = (3,5,3,5).
  EXPECT_FALSE(CoversTable(t, {1, 2, kBlank, kBlank}));
  // All-blank covers nothing (unless the table is empty).
  EXPECT_FALSE(CoversTable(t, {kBlank, kBlank, kBlank, kBlank}));
  FunctionTable empty;
  empty.k = 4;
  EXPECT_TRUE(CoversTable(empty, {kBlank, kBlank, kBlank, kBlank}));
}

TEST(Covers, MoreGeneralOrder) {
  EXPECT_TRUE(MoreGeneral({2, 1, kBlank}, {2, 1, 1}));
  EXPECT_TRUE(MoreGeneral({kBlank, kBlank}, {1, 2}));
  EXPECT_FALSE(MoreGeneral({2, 1, 1}, {2, 1, kBlank}));
  EXPECT_FALSE(MoreGeneral({3, 1}, {2, 1}));
  EXPECT_TRUE(MoreGeneral({2, 1}, {2, 1}));  // Reflexive.
}

TEST(Covers, Example419MinimalCoverSet) {
  // The paper: the minimal cover set has size 4:
  // {(1,2,3,⊔), (3,2,1,⊔), (⊔,5,4,⊔), (⊔,⊔,⊔,5)}.
  std::vector<Tuple> minimal = MinimalCovers(Example419Table());
  std::sort(minimal.begin(), minimal.end());
  std::vector<Tuple> expected = {
      {1, 2, 3, kBlank},
      {3, 2, 1, kBlank},
      {kBlank, 5, 4, kBlank},
      {kBlank, kBlank, kBlank, 5},
  };
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(minimal, expected);
}

TEST(Covers, MinimalCoverCountBoundedByKFactorial) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    FunctionTable t;
    t.k = 3;
    size_t rows = 1 + rng.Below(8);
    for (size_t r = 0; r < rows; ++r) {
      t.rows.push_back({static_cast<Value>(rng.Below(3)),
                        static_cast<Value>(rng.Below(3)),
                        static_cast<Value>(rng.Below(3))});
    }
    EXPECT_LE(MinimalCovers(t).size(), 6u) << "k! bound violated";  // 3! = 6.
  }
}

TEST(Covers, MinimalCoversAreCoversAndMinimal) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    FunctionTable t;
    t.k = 3;
    size_t rows = 1 + rng.Below(6);
    for (size_t r = 0; r < rows; ++r) {
      t.rows.push_back({static_cast<Value>(rng.Below(3)),
                        static_cast<Value>(rng.Below(3)),
                        static_cast<Value>(rng.Below(3))});
    }
    // Alphabet: all values in the table.
    std::vector<Value> range;
    for (size_t c = 0; c < t.k; ++c) {
      for (Value v : t.ColumnValues(c)) {
        if (std::find(range.begin(), range.end(), v) == range.end()) {
          range.push_back(v);
        }
      }
    }
    std::vector<Tuple> all = AllCoversBruteForce(t, range);
    std::vector<Tuple> minimal = MinimalCovers(t);
    for (const Tuple& m : minimal) {
      EXPECT_TRUE(CoversTable(t, m));
      // No strictly more general cover exists.
      for (const Tuple& c : all) {
        if (c != m && MoreGeneral(c, m)) {
          ADD_FAILURE() << "non-minimal cover returned";
        }
      }
    }
    // Every brute-force cover is dominated by some minimal cover.
    for (const Tuple& c : all) {
      bool dominated = false;
      for (const Tuple& m : minimal) {
        if (MoreGeneral(m, c)) {
          dominated = true;
          break;
        }
      }
      EXPECT_TRUE(dominated) << "cover not dominated by any minimal cover";
    }
  }
}

TEST(Covers, RepresentativeSetPreservesCovers) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    FunctionTable t;
    t.k = 3;
    size_t rows = 1 + rng.Below(7);
    for (size_t r = 0; r < rows; ++r) {
      t.rows.push_back({static_cast<Value>(rng.Below(3)),
                        static_cast<Value>(rng.Below(3)),
                        static_cast<Value>(rng.Below(3))});
    }
    std::vector<size_t> reps = RepresentativeSet(t);
    FunctionTable sub;
    sub.k = t.k;
    for (size_t r : reps) sub.rows.push_back(t.rows[r]);
    std::vector<Value> range = {0, 1, 2};
    EXPECT_EQ(AllCoversBruteForce(t, range), AllCoversBruteForce(sub, range));
  }
}

TEST(Covers, Example419RepresentativeSet) {
  std::vector<size_t> reps = RepresentativeSet(Example419Table());
  // The paper names {a, b, c, d} (indices 0-3) as a representative set;
  // our recursive procedure must produce a representative set too
  // (possibly a different one). Verify the defining property.
  FunctionTable t = Example419Table();
  FunctionTable sub;
  sub.k = t.k;
  for (size_t r : reps) sub.rows.push_back(t.rows[r]);
  std::vector<Value> range = {1, 2, 3, 4, 5};
  EXPECT_EQ(AllCoversBruteForce(t, range), AllCoversBruteForce(sub, range));
  EXPECT_LE(reps.size(), 24u + 1);  // O(k!) with k = 4.
}

// ---- ACQ_!= evaluation (Theorem 4.20) -----------------------------------------

struct NeqParam {
  std::string query;
  size_t tuples;
  Value domain;
  uint64_t seed;
};

void PrintTo(const NeqParam& p, std::ostream* os) { *os << p.query; }

class NeqSweep : public ::testing::TestWithParam<NeqParam> {};

TEST_P(NeqSweep, MatchesOracle) {
  const NeqParam& p = GetParam();
  Rng rng(p.seed);
  ConjunctiveQuery q = Q(p.query);
  Database db;
  for (const Atom& a : q.atoms()) {
    if (!db.Has(a.relation)) {
      db.PutRelation(
          RandomRelation(a.relation, a.arity(), p.tuples, p.domain, &rng));
    }
  }
  db.DeclareDomainSize(p.domain);
  auto fast = EvaluateAcqNeq(q, db);
  ASSERT_TRUE(fast.ok()) << fast.status();
  auto oracle = EvaluateBacktrack(q, db);
  ASSERT_TRUE(oracle.ok());
  Relation a = *fast;
  Relation b = *oracle;
  a.SortDedup();
  b.SortDedup();
  ASSERT_EQ(a.NumTuples(), b.NumTuples());
  for (size_t i = 0; i < a.NumTuples(); ++i) {
    EXPECT_TRUE(b.Contains(a.Row(i).ToTuple()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DisequalityInstances, NeqSweep,
    ::testing::Values(
        // Free-free disequality only.
        NeqParam{"Q(x, y) :- R(x, y), x != y.", 30, 5, 91},
        // Quantified z with one disequality to a free variable (fast path).
        NeqParam{"Q(x, y) :- R(x, y), S(y, z), z != x.", 30, 5, 92},
        // Quantified z with two disequalities.
        NeqParam{"Q(x, y) :- R(x, y), S(y, z), z != x, z != y.", 30, 4, 93},
        // Two quantified variables, each in its own atom.
        NeqParam{"Q(x, y) :- R(x, y), S(y, z), T(x, w), z != x, w != y.", 25,
                 4, 94},
        // Mixed with free-free.
        NeqParam{"Q(x, y) :- R(x, y), S(y, z), z != x, x != y.", 30, 4, 95},
        // Fallback shape (quantified-quantified disequality): oracle path.
        NeqParam{"Q(x) :- R(x, y), S(x, z), y != z.", 20, 4, 96}));

TEST(NeqEnumerator, NoDuplicatesAndCorrectOnSmallWorld) {
  Database db;
  Relation r("R", 2), s("S", 2);
  for (Value i = 0; i < 4; ++i) {
    for (Value j = 0; j < 4; ++j) {
      r.Add({i, j});
      s.Add({i, j});
    }
  }
  db.PutRelation(r);
  db.PutRelation(s);
  ConjunctiveQuery q = Q("Q(x, y) :- R(x, y), S(y, z), z != x, z != y.");
  auto e = MakeNeqEnumerator(q, db);
  ASSERT_TRUE(e.ok()) << e.status();
  std::set<Tuple> seen;
  Tuple t;
  while ((*e)->Next(&t)) {
    EXPECT_TRUE(seen.insert(t).second);
  }
  // Domain {0..3}: for every (x, y) there are 4 z-values, at most 2
  // excluded, so every pair is an answer.
  EXPECT_EQ(seen.size(), 16u);
}

TEST(NeqEnumerator, WitnessExhaustionExcludesAnswers) {
  // S(y, z) has exactly one z per y; z != x kills pairs where that z == x.
  Database db;
  Relation r("R", 2), s("S", 2);
  r.Add({0, 1});
  r.Add({2, 1});
  s.Add({1, 0});  // Only witness for y=1 is z=0.
  db.PutRelation(r);
  db.PutRelation(s);
  ConjunctiveQuery q = Q("Q(x, y) :- R(x, y), S(y, z), z != x.");
  auto res = EvaluateAcqNeq(q, db);
  ASSERT_TRUE(res.ok());
  // (0,1) excluded (z would have to be 0 = x); (2,1) survives.
  EXPECT_EQ(res->NumTuples(), 1u);
  EXPECT_TRUE(res->Contains({2, 1}));
}

TEST(NeqEnumerator, UnsupportedShapesReportUnsupported) {
  Database db;
  db.PutRelation(Relation("R", 2));
  db.PutRelation(Relation("S", 2));
  // Disequality between two quantified variables.
  auto e = MakeNeqEnumerator(Q("Q(x) :- R(x, y), S(x, z), y != z."), db);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kUnsupported);
}

TEST(NeqEnumerator, RejectsOrderComparisons) {
  Database db;
  db.PutRelation(Relation("R", 2));
  auto e = MakeNeqEnumerator(Q("Q(x, y) :- R(x, y), x < y."), db);
  EXPECT_FALSE(e.ok());
}

}  // namespace
}  // namespace fgq
