#include <gtest/gtest.h>

#include <string>

#include "fgq/count/acq_count.h"
#include "fgq/eval/prepared.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/mso/courcelle.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

// ---- SharedColumnOrder (the counting DP's key alignment) ----------------------

TEST(SharedColumnOrder, CanonicalAcrossDifferentLayouts) {
  PreparedAtom node;
  node.vars = {"b", "a", "c"};
  PreparedAtom parent;
  parent.vars = {"c", "b", "x"};
  // Shared = {b, c}; sorted by name -> b then c.
  std::vector<size_t> node_side = SharedColumnOrder(node, parent);
  std::vector<size_t> parent_side = SharedColumnOrder(parent, node);
  ASSERT_EQ(node_side.size(), 2u);
  ASSERT_EQ(parent_side.size(), 2u);
  EXPECT_EQ(node.vars[node_side[0]], "b");
  EXPECT_EQ(node.vars[node_side[1]], "c");
  EXPECT_EQ(parent.vars[parent_side[0]], "b");
  EXPECT_EQ(parent.vars[parent_side[1]], "c");
}

TEST(SharedColumnOrder, DisjointAtoms) {
  PreparedAtom a, b;
  a.vars = {"x"};
  b.vars = {"y"};
  EXPECT_TRUE(SharedColumnOrder(a, b).empty());
}

// ---- Beta elimination order property -------------------------------------------

TEST(BetaOrder, EliminationOrderIsANestPointSequence) {
  // Replay the elimination order and check the nest-point condition holds
  // at each step.
  auto q = ParseConjunctiveQuery("Q() :- A(x), B(x, y), C(x, y, z), D(z, w).");
  Hypergraph hg = Hypergraph::FromQuery(*q);
  BetaResult r = BetaAcyclicity(hg);
  ASSERT_TRUE(r.beta_acyclic);
  ASSERT_EQ(r.elimination_order.size(), hg.NumVertices());

  std::vector<std::set<int>> sets(hg.NumEdges());
  for (size_t e = 0; e < hg.NumEdges(); ++e) {
    sets[e].insert(hg.Edge(static_cast<int>(e)).begin(),
                   hg.Edge(static_cast<int>(e)).end());
  }
  for (int v : r.elimination_order) {
    std::vector<const std::set<int>*> containing;
    for (size_t e = 0; e < sets.size(); ++e) {
      if (sets[e].count(v)) containing.push_back(&sets[e]);
    }
    std::sort(containing.begin(), containing.end(),
              [](const std::set<int>* a, const std::set<int>* b) {
                return a->size() < b->size();
              });
    for (size_t i = 0; i + 1 < containing.size(); ++i) {
      EXPECT_TRUE(std::includes(containing[i + 1]->begin(),
                                containing[i + 1]->end(),
                                containing[i]->begin(),
                                containing[i]->end()))
          << "vertex " << v << " was not a nest point at its turn";
    }
    for (auto& s : sets) s.erase(v);
  }
}

// ---- ToString smoke tests (debug surfaces stay usable) --------------------------

TEST(ToString, RelationAndDatabase) {
  Relation r("R", 2);
  r.Add({1, 2});
  EXPECT_NE(r.ToString().find("R/2"), std::string::npos);
  Database db;
  db.PutRelation(r);
  EXPECT_NE(db.ToString().find("|dom|=3"), std::string::npos);
}

TEST(ToString, HypergraphAndJoinTree) {
  auto q = ParseConjunctiveQuery("Q(x) :- R(x, y), S(y).");
  Hypergraph hg = Hypergraph::FromQuery(*q);
  EXPECT_NE(hg.ToString().find("E=2"), std::string::npos);
  GyoResult gyo = GyoReduce(hg);
  ASSERT_TRUE(gyo.acyclic);
  EXPECT_FALSE(gyo.tree.ToString(hg).empty());
}

TEST(ToString, QueryRendering) {
  auto q = ParseConjunctiveQuery("Q(x) :- R(x, 3), not T(x), x != y, S(y).");
  std::string s = q->ToString();
  EXPECT_NE(s.find("not T(x)"), std::string::npos);
  EXPECT_NE(s.find("x != y"), std::string::npos);
  EXPECT_NE(s.find("R(x, 3)"), std::string::npos);
}

// ---- Vertex covers via complementation ------------------------------------------

TEST(VertexCovers, MatchesBruteForceComplement) {
  Rng rng(401);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = RandomGraph(9, 12, &rng);
    TreeDecomposition td = DecomposeMinDegree(g);
    auto vc = CountVertexCovers(g, td);
    ASSERT_TRUE(vc.ok());
    // Brute force vertex covers.
    int64_t brute = 0;
    for (uint64_t mask = 0; mask < (uint64_t{1} << g.n); ++mask) {
      bool cover = true;
      for (const auto& [u, v] : g.edges) {
        if (!((mask >> u) & 1) && !((mask >> v) & 1)) {
          cover = false;
          break;
        }
      }
      if (cover) ++brute;
    }
    EXPECT_EQ(vc->ToString(), std::to_string(brute)) << "trial " << trial;
  }
}

// ---- Nested FO quantifiers through the parser ------------------------------------

TEST(FoParser, AlternatingQuantifiers) {
  auto f = ParseFoFormula("forall x. exists y. (E(x, y) & forall z. "
                          "(E(y, z) | z = x))");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ((*f)->QuantifierDepth(), 3u);
  EXPECT_TRUE((*f)->FreeVariables().empty());
}

// ---- Generator sanity -------------------------------------------------------------

TEST(Generators, BoundedDegreeRespectsBound) {
  Rng rng(402);
  for (int d : {2, 5}) {
    Graph g = RandomBoundedDegreeGraph(200, d, &rng);
    for (int v = 0; v < g.n; ++v) {
      EXPECT_LE(g.adj[static_cast<size_t>(v)].size(),
                static_cast<size_t>(d));
    }
  }
}

TEST(Generators, RandomTreeIsConnectedAcyclic) {
  Rng rng(403);
  Graph t = RandomTree(50, &rng);
  EXPECT_EQ(t.edges.size(), 49u);
  TreeDecomposition td = DecomposeMinDegree(t);
  EXPECT_LE(td.Width(), 1u);
}

TEST(Generators, PathQueryShapes) {
  ConjunctiveQuery p3 = PathQuery(3);
  EXPECT_EQ(p3.arity(), 2u);
  EXPECT_EQ(p3.atoms().size(), 3u);
  EXPECT_EQ(FullPathQuery(3).arity(), 4u);
  EXPECT_EQ(StarQuery(4).ExistentialVariables(),
            (std::vector<std::string>{"t"}));
}

TEST(Generators, RandomDnfRespectsWidth) {
  Rng rng(404);
  DnfFormula dnf = RandomDnf(20, 15, 3, &rng);
  EXPECT_EQ(dnf.clauses.size(), 15u);
  for (const auto& c : dnf.clauses) {
    EXPECT_EQ(c.size(), 3u);
    for (int lit : c) {
      EXPECT_NE(lit, 0);
      EXPECT_LE(std::abs(lit), 20);
    }
  }
}

}  // namespace
}  // namespace fgq
