#include <gtest/gtest.h>

#include "fgq/db/database.h"
#include "fgq/db/index.h"
#include "fgq/db/loader.h"
#include "fgq/db/relation.h"
#include "fgq/db/trie.h"
#include "fgq/db/value.h"

namespace fgq {
namespace {

Relation MakeEdges() {
  Relation r("E", 2);
  r.Add({1, 2});
  r.Add({2, 3});
  r.Add({1, 2});  // Duplicate.
  r.Add({0, 1});
  return r;
}

TEST(Relation, SortDedupEstablishesSetSemantics) {
  Relation r = MakeEdges();
  EXPECT_EQ(r.NumTuples(), 4u);
  r.SortDedup();
  ASSERT_EQ(r.NumTuples(), 3u);
  EXPECT_EQ(r.Row(0)[0], 0);
  EXPECT_EQ(r.Row(1)[0], 1);
  EXPECT_EQ(r.Row(2)[0], 2);
}

TEST(Relation, ProjectDedups) {
  Relation r = MakeEdges();
  Relation p = r.Project({0}, "P");
  ASSERT_EQ(p.arity(), 1u);
  EXPECT_EQ(p.NumTuples(), 3u);  // {0, 1, 2}.
}

TEST(Relation, ProjectCanRepeatAndReorderColumns) {
  Relation r("R", 2);
  r.Add({7, 8});
  Relation p = r.Project({1, 0, 1}, "P");
  ASSERT_EQ(p.NumTuples(), 1u);
  EXPECT_EQ(p.Row(0)[0], 8);
  EXPECT_EQ(p.Row(0)[1], 7);
  EXPECT_EQ(p.Row(0)[2], 8);
}

TEST(Relation, ProjectToNullary) {
  Relation r = MakeEdges();
  Relation p = r.Project({}, "B");
  EXPECT_EQ(p.arity(), 0u);
  EXPECT_EQ(p.NumTuples(), 1u);  // "true".
  Relation empty("X", 2);
  EXPECT_EQ(empty.Project({}, "B").NumTuples(), 0u);
}

TEST(Relation, FilterKeepsMatching) {
  Relation r = MakeEdges();
  r.Filter([](TupleView t) { return t[0] == 1; });
  EXPECT_EQ(r.NumTuples(), 2u);
}

TEST(Relation, SortByColumnOrder) {
  Relation r("R", 2);
  r.Add({1, 9});
  r.Add({2, 3});
  r.Add({3, 5});
  r.SortBy({1});
  EXPECT_EQ(r.Row(0)[1], 3);
  EXPECT_EQ(r.Row(1)[1], 5);
  EXPECT_EQ(r.Row(2)[1], 9);
}

TEST(Relation, ContainsAndMax) {
  Relation r = MakeEdges();
  EXPECT_TRUE(r.Contains({2, 3}));
  EXPECT_FALSE(r.Contains({3, 2}));
  EXPECT_EQ(r.MaxValue(), 3);
  EXPECT_EQ(Relation("X", 2).MaxValue(), -1);
}

TEST(Relation, NullaryRelation) {
  Relation b("B", 0);
  EXPECT_TRUE(b.empty());
  b.AddNullary();
  EXPECT_EQ(b.NumTuples(), 1u);
  EXPECT_TRUE(b.Contains({}));
  b.Filter([](TupleView) { return false; });
  EXPECT_TRUE(b.empty());
}

TEST(Relation, SizeWeight) {
  Relation r = MakeEdges();
  r.SortDedup();
  EXPECT_EQ(r.SizeWeight(), 6u);  // 3 tuples * arity 2.
}

TEST(Database, AddAndFind) {
  Database db;
  ASSERT_TRUE(db.AddRelation(MakeEdges()).ok());
  EXPECT_FALSE(db.AddRelation(MakeEdges()).ok());  // AlreadyExists.
  ASSERT_TRUE(db.Find("E").ok());
  EXPECT_EQ(db.Find("E").value()->NumTuples(), 4u);
  EXPECT_FALSE(db.Find("Nope").ok());
  EXPECT_TRUE(db.Has("E"));
}

TEST(Database, DomainSizeFromDataAndDeclaration) {
  Database db;
  db.PutRelation(MakeEdges());
  EXPECT_EQ(db.DomainSize(), 4);  // Max value 3.
  db.DeclareDomainSize(10);
  EXPECT_EQ(db.DomainSize(), 10);
}

TEST(Database, DegreeCountsTuplesPerElement) {
  // Element 1 appears in tuples (1,2), (1,2)dup->once after nodedup... use
  // fresh relation: degree counts tuple membership, repeated positions once.
  Database db;
  Relation r("R", 2);
  r.Add({1, 2});
  r.Add({1, 3});
  r.Add({1, 1});  // Repeated position counts once.
  db.PutRelation(std::move(r));
  EXPECT_EQ(db.Degree(), 3u);  // Element 1 is in three tuples.
}

TEST(HashIndex, LookupByKeyColumns) {
  Relation r = MakeEdges();
  r.SortDedup();
  HashIndex idx(r, {0});
  EXPECT_EQ(idx.Lookup({1}).size(), 1u);
  EXPECT_EQ(idx.Lookup({9}).size(), 0u);
  EXPECT_TRUE(idx.ContainsKey({2}));
  EXPECT_EQ(idx.NumKeys(), 3u);
}

TEST(HashIndex, EmptyKeyMatchesAllRows) {
  Relation r = MakeEdges();
  r.SortDedup();
  HashIndex idx(r, {});
  EXPECT_EQ(idx.Lookup({}).size(), 3u);
}

TEST(HashIndex, CompositeKey) {
  Relation r("R", 3);
  r.Add({1, 2, 3});
  r.Add({1, 2, 4});
  r.Add({1, 3, 5});
  HashIndex idx(r, {0, 1});
  EXPECT_EQ(idx.Lookup({1, 2}).size(), 2u);
  EXPECT_EQ(idx.Lookup({1, 3}).size(), 1u);
}

TEST(HashIndex, CollisionHeavyAllRowsOneKey) {
  // Every row shares one key: the CSR payload degenerates to a single fat
  // posting list; spans must still come back complete and ascending.
  constexpr size_t kRows = 20000;  // Above the sharded-build cutoff.
  Relation r("R", 2);
  for (size_t i = 0; i < kRows; ++i) r.Add({7, static_cast<Value>(i)});
  HashIndex idx(r, {0});
  EXPECT_EQ(idx.NumKeys(), 1u);
  HashIndex::RowSpan span = idx.Lookup({7});
  ASSERT_EQ(span.size(), kRows);
  for (size_t i = 0; i < kRows; ++i) {
    EXPECT_EQ(span[i], static_cast<uint32_t>(i));
  }
  EXPECT_TRUE(idx.Lookup({8}).empty());
}

TEST(HashIndex, EmptyRelation) {
  Relation r("R", 2);
  HashIndex idx(r, {0});
  EXPECT_EQ(idx.NumKeys(), 0u);
  EXPECT_TRUE(idx.Lookup({1}).empty());
  HashIndex all(r, {});
  EXPECT_EQ(all.NumKeys(), 0u);
  EXPECT_TRUE(all.Lookup({}).empty());
}

TEST(HashIndex, ParallelBuildBitIdenticalLayout) {
  // The determinism contract: serial and parallel builds must produce the
  // same flat arrays — not just the same lookup results — for any thread
  // count. Skewed keys keep some posting lists fat.
  constexpr size_t kRows = 40000;  // Above the parallel-build cutoff.
  Relation r("R", 2);
  uint64_t x = 88172645463325252ull;
  for (size_t i = 0; i < kRows; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    r.Add({static_cast<Value>(x % 512), static_cast<Value>(i)});
  }
  HashIndex serial(r, {0});
  for (int threads : {1, 2, 8}) {
    ExecOptions opts;
    opts.num_threads = threads;
    ExecContext ctx(opts);
    HashIndex par(r, {0}, ctx);
    EXPECT_EQ(par.NumKeys(), serial.NumKeys()) << threads << " threads";
    EXPECT_EQ(par.offsets(), serial.offsets()) << threads << " threads";
    EXPECT_EQ(par.row_ids(), serial.row_ids()) << threads << " threads";
    EXPECT_EQ(par.slots(), serial.slots()) << threads << " threads";
  }
}

TEST(Trie, LevelsAndLookup) {
  Relation r("R", 2);
  r.Add({1, 10});
  r.Add({1, 11});
  r.Add({2, 10});
  Trie trie(r, {0, 1});
  EXPECT_EQ(trie.depth(), 2u);
  EXPECT_EQ(trie.Roots().size(), 2u);
  const Trie::Node* one = trie.FindRoot(1);
  ASSERT_NE(one, nullptr);
  EXPECT_EQ(trie.ChildEnd(0, *one) - trie.ChildBegin(0, *one), 2);
  EXPECT_NE(trie.FindChild(0, *one, 11), nullptr);
  EXPECT_EQ(trie.FindChild(0, *one, 12), nullptr);
  EXPECT_EQ(trie.FindRoot(5), nullptr);
  EXPECT_EQ(trie.NumLeaves(), 3u);
}

TEST(Trie, ReorderedColumnOrder) {
  Relation r("R", 2);
  r.Add({1, 10});
  r.Add({2, 10});
  r.Add({2, 11});
  Trie trie(r, {1, 0});  // Keyed by second column first.
  const Trie::Node* ten = trie.FindRoot(10);
  ASSERT_NE(ten, nullptr);
  EXPECT_EQ(trie.ChildEnd(0, *ten) - trie.ChildBegin(0, *ten), 2);
}

TEST(Trie, DedupsTuples) {
  Relation r("R", 1);
  r.Add({5});
  r.Add({5});
  Trie trie(r, {0});
  EXPECT_EQ(trie.Roots().size(), 1u);
}

TEST(Dictionary, InternAndLookup) {
  Dictionary d;
  Value a = d.Intern("alice");
  Value b = d.Intern("bob");
  EXPECT_EQ(d.Intern("alice"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Lookup(a), "alice");
  EXPECT_EQ(d.Find("carol"), kBottom);
  EXPECT_EQ(d.size(), 2u);
}

TEST(Loader, ParsesFactsWithStringsAndInts) {
  Database db;
  Dictionary dict;
  Status st = LoadFactsFromString(
      "# comment line\n"
      "Edge 1 2\n"
      "Edge 2 3\n"
      "Person alice 30\n"
      "\n"
      "Person bob 25\n",
      &db, &dict);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(db.Find("Edge").value()->NumTuples(), 2u);
  EXPECT_EQ(db.Find("Person").value()->NumTuples(), 2u);
  EXPECT_EQ(dict.size(), 2u);  // alice, bob.
}

TEST(Loader, RejectsArityMismatch) {
  Database db;
  Dictionary dict;
  Status st = LoadFactsFromString("R 1 2\nR 1 2 3\n", &db, &dict);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace fgq
