#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fgq/eval/engine.h"
#include "fgq/query/parser.h"
#include "fgq/serve/query_service.h"
#include "fgq/trace/explain.h"
#include "fgq/trace/trace.h"

namespace fgq {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto q = ParseConjunctiveQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

/// E = {(0,1),(1,2),(2,0),(0,3)}, B = {1, 2}, F = {(1,5),(2,6)}.
Database TinyGraph() {
  Database db;
  Relation e("E", 2);
  e.Add({0, 1});
  e.Add({1, 2});
  e.Add({2, 0});
  e.Add({0, 3});
  Relation b("B", 1);
  b.Add({1});
  b.Add({2});
  Relation f("F", 2);
  f.Add({1, 5});
  f.Add({2, 6});
  db.PutRelation(std::move(e));
  db.PutRelation(std::move(b));
  db.PutRelation(std::move(f));
  return db;
}

// ---- TraceContext primitives ------------------------------------------------

TEST(Trace, SpansAreWellNested) {
  TraceContext trace;
  {
    TraceSpan outer(&trace, "outer");
    {
      TraceSpan inner(&trace, "inner", "custom");
      inner.Arg("k", "v");
    }
    TraceSpan sibling(&trace, "sibling");
  }
  std::vector<TraceContext::Event> evs = trace.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].name, "outer");
  EXPECT_EQ(evs[0].parent, -1);
  EXPECT_EQ(evs[1].name, "inner");
  EXPECT_EQ(evs[1].parent, 0);
  EXPECT_EQ(evs[1].category, "custom");
  ASSERT_EQ(evs[1].args.size(), 1u);
  EXPECT_EQ(evs[1].args[0].first, "k");
  // `sibling` opened after `inner` closed, so it nests under `outer`,
  // not under `inner`.
  EXPECT_EQ(evs[2].parent, 0);
  for (const auto& ev : evs) {
    EXPECT_GE(ev.end_ns, ev.start_ns) << ev.name;
  }
  // Children are contained in their parent's interval.
  EXPECT_GE(evs[1].start_ns, evs[0].start_ns);
  EXPECT_LE(evs[1].end_ns, evs[0].end_ns);
}

TEST(Trace, NullSinkIsANoOp) {
  // The fast path: every instrumentation site tolerates a null context.
  TraceSpan span(nullptr, "ghost");
  span.Arg("k", "v");
  TraceCounter(nullptr, "tuples_scanned", 10);
  // No crash is the assertion.
}

TEST(Trace, CountersAccumulate) {
  TraceContext trace;
  TraceCounter(&trace, "tuples_scanned", 10);
  TraceCounter(&trace, "tuples_scanned", 7);
  TraceCounter(&trace, "tuples_scanned", 0);  // Zero deltas are dropped.
  EXPECT_EQ(trace.counter("tuples_scanned"), 17u);
  EXPECT_EQ(trace.counter("never_touched"), 0u);
}

TEST(Trace, RenderTextFromEventSkipsOlderSpans) {
  TraceContext trace;
  { TraceSpan a(&trace, "first_request"); }
  size_t mark = trace.events().size();
  { TraceSpan b(&trace, "second_request"); }
  std::string tail = trace.RenderText(mark);
  EXPECT_EQ(tail.find("first_request"), std::string::npos) << tail;
  EXPECT_NE(tail.find("second_request"), std::string::npos) << tail;
}

TEST(Trace, ChromeTraceJsonSkipsOpenSpansAndEscapes) {
  TraceContext trace;
  int open = trace.BeginSpan("still_open");
  {
    TraceSpan done(&trace, "done");
    done.Arg("query", "Q(x) :- R(x, \"quoted\\path\").");
  }
  std::string json = trace.ChromeTraceJson();
  EXPECT_EQ(json.find("still_open"), std::string::npos) << json;
  EXPECT_NE(json.find("\"done\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"quoted\\\\path\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  trace.EndSpan(open);
}

// ---- Engine instrumentation -------------------------------------------------

TEST(Trace, EngineCountersMatchKnownTupleCounts) {
  Database db = TinyGraph();
  Engine engine;
  TraceContext trace;
  ConjunctiveQuery q = Q("Q(x, y) :- E(x, y), B(y).");
  ExecRequest req(q, db);
  req.trace = &trace;
  auto res = engine.Run(req);
  ASSERT_TRUE(res.ok()) << res.status();
  // Scan touches every tuple of every atom exactly once: |E| + |B| = 6.
  EXPECT_EQ(trace.counter("tuples_scanned"), 6u);
  // E join B on y keeps (0,1) and (1,2).
  ASSERT_EQ(res->NumAnswers(), 2u);
  EXPECT_EQ(trace.counter("tuples_emitted"), res->NumAnswers());
  EXPECT_GT(trace.counter("tuples_probed"), 0u);
}

TEST(Trace, EngineSpansNestUnderExecute) {
  Database db = TinyGraph();
  Engine engine;
  TraceContext trace;
  ConjunctiveQuery q = Q("Q(x, y) :- E(x, y), B(y).");
  ExecRequest req(q, db);
  req.trace = &trace;
  auto res = engine.Run(req);
  ASSERT_TRUE(res.ok()) << res.status();
  std::vector<TraceContext::Event> evs = trace.events();
  ASSERT_FALSE(evs.empty());
  EXPECT_EQ(evs[0].name, "engine.execute");
  EXPECT_EQ(evs[0].parent, -1);
  std::set<std::string> names;
  for (size_t i = 1; i < evs.size(); ++i) {
    names.insert(evs[i].name);
    // Everything the engine opens is a descendant of engine.execute.
    EXPECT_GE(evs[i].parent, 0) << evs[i].name;
    EXPECT_GE(evs[i].start_ns, evs[0].start_ns) << evs[i].name;
    EXPECT_LE(evs[i].end_ns, evs[0].end_ns) << evs[i].name;
  }
  // The free-connex pipeline phases all appear.
  EXPECT_TRUE(names.count("prepare_atoms")) << trace.RenderText();
  EXPECT_TRUE(names.count("semijoin_sweeps")) << trace.RenderText();
  EXPECT_TRUE(names.count("enumerate")) << trace.RenderText();
}

TEST(Trace, UntracedExecutionStillWorks) {
  Database db = TinyGraph();
  Engine engine;
  ConjunctiveQuery q = Q("Q(x, y) :- E(x, y), B(y).");
  auto res = engine.Run(ExecRequest(q, db));
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->NumAnswers(), 2u);
}

// ---- EXPLAIN ----------------------------------------------------------------

// Mirror of tests/engine_classify_test.cc kGolden: EXPLAIN must agree
// with the engine's own dispatch for every class, because its theorem /
// bound / witness claims are keyed on the classification.
struct ExplainCase {
  const char* text;
  QueryClass expected;
};

const ExplainCase kExplainGolden[] = {
    {"Q() :- E(x, y).", QueryClass::kBooleanAcyclic},
    {"Q() :- E(x, y), F(y, z).", QueryClass::kBooleanAcyclic},
    {"Q(x, y) :- E(x, y).", QueryClass::kFreeConnexAcyclic},
    {"Q(x) :- E(x, y), B(y).", QueryClass::kFreeConnexAcyclic},
    {"Q(x, y, z) :- E(x, y), F(y, z).", QueryClass::kFreeConnexAcyclic},
    {"Q(x, z) :- E(x, y), F(y, z).", QueryClass::kGeneralAcyclic},
    {"Q(x, w) :- E(x, y), F(y, z), G(z, w).", QueryClass::kGeneralAcyclic},
    {"Q(x, y) :- E(x, y), x != y.", QueryClass::kAcyclicDisequalities},
    {"Q(x, y) :- E(x, y), x < y.", QueryClass::kAcyclicOrderComparisons},
    {"Q(x, y) :- E(x, y), x <= y.", QueryClass::kAcyclicOrderComparisons},
    {"Q(x, y) :- E(x, y), x < y, x != y.",
     QueryClass::kAcyclicOrderComparisons},
    {"Q(x) :- E(x, y), not B(y).", QueryClass::kNegated},
    {"Q() :- E(x, y), not E(y, x).", QueryClass::kNegated},
    {"Q(x) :- E(x, y), F(y, z), G(z, x).", QueryClass::kCyclic},
    {"Q() :- E(x, y), F(y, z), G(z, w), H(w, x).", QueryClass::kCyclic},
};

TEST(Explain, AgreesWithEngineClassifyOnAllSevenClasses) {
  Database db;  // Classification is structural; the db may be empty.
  std::set<QueryClass> seen;
  for (const ExplainCase& c : kExplainGolden) {
    ConjunctiveQuery q = Q(c.text);
    Result<Explanation> ex = Explain(q, db);
    ASSERT_TRUE(ex.ok()) << c.text << ": " << ex.status();
    EXPECT_EQ(ex->classification, Engine::Classify(q)) << c.text;
    EXPECT_EQ(ex->classification, c.expected) << c.text;
    EXPECT_STREQ(ex->info.name, QueryClassName(c.expected)) << c.text;
    EXPECT_FALSE(ex->witness.empty()) << c.text;
    seen.insert(c.expected);
  }
  EXPECT_EQ(seen.size(), 7u) << "golden corpus must cover all classes";
}

TEST(Explain, ClassTableRowsAreComplete) {
  for (int i = 0; i < 7; ++i) {
    const QueryClassInfo& info = GetQueryClassInfo(static_cast<QueryClass>(i));
    EXPECT_STREQ(info.name, QueryClassName(static_cast<QueryClass>(i)));
    EXPECT_NE(std::string(info.theorem).find("Theorem"), std::string::npos)
        << info.name;
    EXPECT_GT(std::string(info.bound).size(), 0u) << info.name;
    EXPECT_NE(std::string(info.file).find(".cc"), std::string::npos)
        << info.name;
    EXPECT_NE(std::string(info.benchmark).find("bench"), std::string::npos)
        << info.name;
  }
}

TEST(Explain, AcyclicWitnessShowsJoinTreeCyclicShowsCore) {
  Database db;
  Result<Explanation> tree = Explain(Q("Q(x) :- E(x, y), B(y)."), db);
  ASSERT_TRUE(tree.ok());
  EXPECT_NE(tree->witness.find("GYO join tree"), std::string::npos)
      << tree->witness;

  Result<Explanation> core =
      Explain(Q("Q(x) :- E(x, y), F(y, z), G(z, x)."), db);
  ASSERT_TRUE(core.ok());
  EXPECT_NE(core->witness.find("stalls on the core"), std::string::npos)
      << core->witness;
  // The triangle core is all three edges.
  EXPECT_NE(core->witness.find("e0"), std::string::npos);
  EXPECT_NE(core->witness.find("e1"), std::string::npos);
  EXPECT_NE(core->witness.find("e2"), std::string::npos);
}

TEST(Explain, ExecuteModeCarriesTraceAndAnswers) {
  Database db = TinyGraph();
  Engine engine;
  ExplainOptions opts;
  opts.execute = true;
  Result<Explanation> ex =
      Explain(Q("Q(x, y) :- E(x, y), B(y)."), db, engine, opts);
  ASSERT_TRUE(ex.ok()) << ex.status();
  EXPECT_TRUE(ex->executed);
  EXPECT_EQ(ex->num_answers, 2u);
  ASSERT_NE(ex->trace, nullptr);
  EXPECT_FALSE(ex->trace->events().empty());
  std::string text = ex->Text();
  EXPECT_NE(text.find("execution:"), std::string::npos) << text;
  EXPECT_NE(text.find("engine.execute"), std::string::npos) << text;
  std::string json = ex->Json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
}

// ---- Concurrency ------------------------------------------------------------

// Each request gets its own TraceContext; with multiple workers the
// service must never bleed spans between requests. Run under TSan this
// also vouches for TraceContext's internal locking.
TEST(Trace, ConcurrentServiceRequestsProduceDisjointTraces) {
  Database db = TinyGraph();
  ServiceOptions opts;
  opts.num_workers = 4;
  QueryService service(&db, opts);

  constexpr int kRequests = 32;
  std::vector<std::unique_ptr<TraceContext>> traces;
  for (int i = 0; i < kRequests; ++i) {
    traces.push_back(std::make_unique<TraceContext>());
  }
  std::vector<std::thread> clients;
  std::vector<Status> statuses(kRequests, Status::OK());
  clients.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    clients.emplace_back([&, i] {
      ServiceRequest req;
      // Alternate classes so both the cached-plan (free-connex) and the
      // engine (general-acyclic) serving paths run; each yields 2 answers.
      req.query = (i % 2 == 0) ? Q("Q(x, y) :- E(x, y), B(y).")
                               : Q("Q(x, z) :- E(x, y), F(y, z).");
      req.verb = ServeVerb::kRows;
      req.trace = traces[static_cast<size_t>(i)].get();
      ServiceResponse resp = service.Submit(std::move(req)).get();
      statuses[static_cast<size_t>(i)] = resp.status;
    });
  }
  for (std::thread& t : clients) t.join();

  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(statuses[static_cast<size_t>(i)].ok())
        << "request " << i << ": " << statuses[static_cast<size_t>(i)];
    std::vector<TraceContext::Event> evs =
        traces[static_cast<size_t>(i)]->events();
    ASSERT_FALSE(evs.empty()) << "request " << i << " produced no spans";
    // Exactly one root, and it is the serve.request envelope: nothing
    // from any other request landed here.
    int roots = 0;
    for (const auto& ev : evs) {
      if (ev.parent == -1) {
        ++roots;
        EXPECT_EQ(ev.name, "serve.request");
      }
      EXPECT_GE(ev.end_ns, ev.start_ns) << ev.name;
    }
    EXPECT_EQ(roots, 1) << "request " << i;
    EXPECT_EQ(traces[static_cast<size_t>(i)]->counter("tuples_emitted"), 2u)
        << "request " << i;
  }
}

TEST(Trace, CountersAreThreadSafe) {
  TraceContext trace;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      for (int i = 0; i < kIncrements; ++i) {
        TraceCounter(&trace, "tuples_probed", 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(trace.counter("tuples_probed"),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

}  // namespace
}  // namespace fgq
