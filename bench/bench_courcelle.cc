#include <benchmark/benchmark.h>

#include "fgq/mso/courcelle.h"
#include "fgq/mso/tree_decomposition.h"
#include "fgq/workload/generators.h"

/// Experiment E5 (Theorem 3.11, [6]): MSO model checking and counting on
/// bounded-treewidth graphs in linear time (data complexity). We run the
/// Courcelle-style DP for 3-colorability and independent-set counting on
/// growing trees and partial k-trees; the curves must be linear in n per
/// fixed width, with the constant rising in the width (the f(||phi||, w)
/// factor).

namespace fgq {
namespace {

void BM_CourcelleColorTree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(111);
  Graph g = RandomTree(n, &rng);
  TreeDecomposition td = DecomposeMinDegree(g);
  for (auto _ : state) {
    auto v = IsQColorable(g, td, 3);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["width"] = static_cast<double>(td.Width());
  state.SetComplexityN(n);
}
BENCHMARK(BM_CourcelleColorTree)
    ->Range(1 << 10, 1 << 17)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

void BM_CourcelleColorPartialKTree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  Rng rng(112);
  Graph g = RandomPartialKTree(n, k, 30, &rng);
  TreeDecomposition td = DecomposeMinDegree(g);
  for (auto _ : state) {
    auto v = IsQColorable(g, td, 3);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["width"] = static_cast<double>(td.Width());
}
BENCHMARK(BM_CourcelleColorPartialKTree)
    ->ArgsProduct({{1 << 10, 1 << 12, 1 << 14}, {2, 3, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_CourcelleCountIndependentSets(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  Rng rng(113);
  Graph g = k == 1 ? RandomTree(n, &rng) : RandomPartialKTree(n, k, 30, &rng);
  TreeDecomposition td = DecomposeMinDegree(g);
  std::string digits;
  for (auto _ : state) {
    auto c = CountIndependentSets(g, td);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    digits = c->ToString();
    benchmark::DoNotOptimize(c);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["width"] = static_cast<double>(td.Width());
  state.counters["count_digits"] = static_cast<double>(digits.size());
}
BENCHMARK(BM_CourcelleCountIndependentSets)
    ->ArgsProduct({{1 << 8, 1 << 10, 1 << 12}, {1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

/// Decomposition construction cost (part of preprocessing).
void BM_MinDegreeDecomposition(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(114);
  Graph g = RandomPartialKTree(n, 3, 30, &rng);
  for (auto _ : state) {
    TreeDecomposition td = DecomposeMinDegree(g);
    benchmark::DoNotOptimize(td);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_MinDegreeDecomposition)
    ->Range(1 << 8, 1 << 12)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fgq
