#ifndef FGQ_BENCH_BENCH_JSON_H_
#define FGQ_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_json_io.h"
#include "fgq/trace/trace.h"

/// \file bench_json.h
/// Machine-readable output for the perf-tracked bench binaries.
///
/// Replaces benchmark_main for binaries whose numbers are recorded in the
/// repo (BENCH_PR4.json, EXPERIMENTS.md): the usual console table still
/// prints, and every per-iteration run is additionally written as one
/// compact JSON object — name, ns/op (real and cpu), iterations, and all
/// user counters (items_per_second, delay percentiles, ...). The flat
/// schema stays diffable across runs, which is the point: a perf baseline
/// is only a baseline if two snapshots can be compared mechanically.
///
/// Usage: `#include "bench_json.h"` and end the file with
/// FGQ_BENCH_JSON_MAIN(). The JSON path comes from --json=PATH or the
/// FGQ_BENCH_JSON environment variable; without either, the binary
/// behaves exactly like a benchmark_main one.

namespace fgq {
namespace benchjson {

/// Folds one traced run into the benchmark's user counters, under fresh
/// key families only (existing keys like `n`, `answers`, `*_delay_ns`
/// stay byte-identical across the change):
///   phase_<span>_ns   — total wall time of each span name ('.' -> '_'),
///   trace_<counter>   — the work counters (tuples scanned/probed/emitted,
///                       index bytes).
/// The traced run happens *outside* the timed loop — benchmark numbers
/// measure the untraced fast path; the phases are attribution metadata.
inline void AddTraceCounters(benchmark::State& state,
                             const TraceContext& trace) {
  std::map<std::string, int64_t> phase_ns;
  for (const TraceContext::Event& ev : trace.events()) {
    if (ev.end_ns < 0) continue;
    phase_ns[ev.name] += ev.DurationNs();
  }
  for (const auto& [name, ns] : phase_ns) {
    std::string key = "phase_" + name + "_ns";
    for (char& c : key) {
      if (c == '.') c = '_';
    }
    state.counters[key] = static_cast<double>(ns);
  }
  for (const auto& [name, value] : trace.counters()) {
    state.counters["trace_" + name] = static_cast<double>(value);
  }
}

// Entry, Escape, WriteJson live in bench_json_io.h (shared with tools
// that emit the schema without the benchmark harness, e.g. fgq_loadgen).

/// Console reporter that also collects each per-iteration run (aggregates
/// like BigO/RMS rows are skipped — they have no ns/op).
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      Entry e;
      e.name = r.benchmark_name();
      const double iters =
          r.iterations > 0 ? static_cast<double>(r.iterations) : 1.0;
      e.real_ns = r.real_accumulated_time * 1e9 / iters;
      e.cpu_ns = r.cpu_accumulated_time * 1e9 / iters;
      e.iterations = r.iterations;
      for (const auto& [k, v] : r.counters) {
        e.counters.emplace_back(k, static_cast<double>(v));
      }
      entries_.push_back(std::move(e));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

inline int Main(int argc, char** argv) {
  std::string json_path;
  if (const char* env = std::getenv("FGQ_BENCH_JSON")) json_path = env;
  std::vector<char*> args(argv, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    if (std::strncmp(*it, "--json=", 7) == 0) {
      json_path = *it + 7;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() &&
      !WriteJson(json_path, args.empty() ? "" : args[0],
                 reporter.entries())) {
    std::fprintf(stderr, "bench_json: cannot write '%s'\n",
                 json_path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace benchjson
}  // namespace fgq

#define FGQ_BENCH_JSON_MAIN()                 \
  int main(int argc, char** argv) {           \
    return fgq::benchjson::Main(argc, argv);  \
  }

#endif  // FGQ_BENCH_BENCH_JSON_H_
