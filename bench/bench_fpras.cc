#include <benchmark/benchmark.h>

#include <cmath>

#include "fgq/so/sigma_count.h"
#include "fgq/workload/generators.h"

/// Experiment E19 ([57], Definition 5.4): the Karp-Luby FPRAS for #DNF
/// (and thus #Sigma1). Exact counting is exponential in the variable
/// count; the FPRAS runs in O(#clauses / eps^2) trials regardless of the
/// variable count, paying accuracy for time. We report both the runtime
/// sweep and the realized relative error against the exact count where
/// the exact count is still computable.

namespace fgq {
namespace {

void BM_DnfExact(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  Rng rng(141);
  DnfFormula dnf = RandomDnf(vars, 10, 3, &rng);
  for (auto _ : state) {
    auto c = CountDnfExact(dnf);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    benchmark::DoNotOptimize(c);
  }
  state.counters["vars"] = static_cast<double>(vars);
}
BENCHMARK(BM_DnfExact)->DenseRange(12, 24, 4)->Unit(benchmark::kMillisecond);

void BM_DnfKarpLuby(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const double eps = static_cast<double>(state.range(1)) / 100.0;
  Rng data_rng(141);
  DnfFormula dnf = RandomDnf(vars, 10, 3, &data_rng);
  Rng kl_rng(142);
  for (auto _ : state) {
    auto c = EstimateDnf(dnf, eps, &kl_rng);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    benchmark::DoNotOptimize(c);
  }
  state.counters["vars"] = static_cast<double>(vars);
  state.counters["eps"] = eps;
}
BENCHMARK(BM_DnfKarpLuby)
    ->ArgsProduct({{12, 24, 48, 96}, {10, 5, 2}})
    ->Unit(benchmark::kMillisecond);

/// Accuracy: realized |estimate/exact - 1| at eps = 0.05 over several
/// formulas (reported as a counter; the guarantee is <= eps w.p. 3/4).
void BM_DnfAccuracy(benchmark::State& state) {
  Rng data_rng(143);
  Rng kl_rng(144);
  double worst = 0;
  for (auto _ : state) {
    worst = 0;
    for (int trial = 0; trial < 5; ++trial) {
      DnfFormula dnf = RandomDnf(18, 8, 3, &data_rng);
      auto exact = CountDnfExact(dnf);
      auto est = EstimateDnf(dnf, 0.05, &kl_rng);
      if (!exact.ok() || !est.ok()) continue;
      double ex = exact->ToDouble();
      if (ex == 0) continue;
      worst = std::max(worst, std::abs(est->ToDouble() / ex - 1.0));
    }
    benchmark::DoNotOptimize(worst);
  }
  state.counters["worst_rel_error"] = worst;
}
BENCHMARK(BM_DnfAccuracy)->Unit(benchmark::kMillisecond);

/// FPRAS scales with #clauses, not #variables: clause sweep at 10k vars.
void BM_DnfKarpLubyClauseSweep(benchmark::State& state) {
  const int clauses = static_cast<int>(state.range(0));
  Rng data_rng(145);
  DnfFormula dnf = RandomDnf(10000, clauses, 5, &data_rng);
  Rng kl_rng(146);
  for (auto _ : state) {
    auto c = EstimateDnf(dnf, 0.1, &kl_rng);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    benchmark::DoNotOptimize(c);
  }
  state.SetComplexityN(clauses);
}
BENCHMARK(BM_DnfKarpLubyClauseSweep)
    ->Range(4, 64)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oNSquared);

}  // namespace
}  // namespace fgq
