#include <benchmark/benchmark.h>

#include "fgq/fo/bounded_degree.h"
#include "fgq/fo/naive_fo.h"
#include "fgq/query/parser.h"
#include "fgq/util/delay_recorder.h"
#include "fgq/workload/generators.h"

/// Experiment E3 (Theorems 3.1/3.2): on bounded-degree structures, FO
/// model checking, counting, and constant-delay enumeration all run in
/// time f(||phi||) * ||D||. The local evaluator's curves must be linear in
/// n and flat in the enumeration delay; the generic n^h evaluator serves
/// as the baseline the locality technique escapes.

namespace fgq {
namespace {

LocalQuery TriangleLocal() {
  LocalQuery q;
  q.var = "x";
  q.radius = 1;
  q.theta = std::move(ParseFoFormula(
                          "exists y. exists z. (E(x, y) & E(y, z) & "
                          "E(z, x) & x != y & y != z & x != z)"))
                .value();
  return q;
}

void BM_LocalModelCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  Rng rng(91);
  Database db = GraphDatabase(RandomBoundedDegreeGraph(n, d, &rng));
  LocalQuery q = TriangleLocal();
  for (auto _ : state) {
    auto v = ModelCheckExistsLocal(q, db);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["degree"] = static_cast<double>(d);
  state.SetComplexityN(n);
}
BENCHMARK(BM_LocalModelCheck)
    ->ArgsProduct({{1 << 10, 1 << 12, 1 << 14, 1 << 16}, {3, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_LocalCounting(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(92);
  Database db = GraphDatabase(RandomBoundedDegreeGraph(n, 6, &rng));
  LocalQuery q = TriangleLocal();
  for (auto _ : state) {
    auto c = CountLocal(q, db);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    benchmark::DoNotOptimize(c);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LocalCounting)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

void BM_LocalEnumerationDelay(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(93);
  Database db = GraphDatabase(RandomBoundedDegreeGraph(n, 6, &rng));
  LocalQuery q = TriangleLocal();
  double max_delay = 0;
  for (auto _ : state) {
    auto e = MakeLocalEnumerator(q, db);
    if (!e.ok()) state.SkipWithError(e.status().ToString().c_str());
    DelayRecorder rec;
    rec.StartEnumeration();
    Tuple t;
    while ((*e)->Next(&t)) rec.RecordOutput();
    max_delay = static_cast<double>(rec.max_delay_ns());
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["max_delay_ns"] = max_delay;
}
BENCHMARK(BM_LocalEnumerationDelay)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMillisecond);

/// Baseline: the generic FO evaluator on the same sentence costs ~n^3.
void BM_NaiveFoBaseline(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(94);
  Database db = GraphDatabase(RandomBoundedDegreeGraph(n, 6, &rng));
  auto f = ParseFoFormula(
      "exists x. exists y. exists z. (E(x, y) & E(y, z) & E(z, x) & "
      "x != y & y != z & x != z)");
  for (auto _ : state) {
    auto v = ModelCheckFoNaive(**f, db);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_NaiveFoBaseline)
    ->Range(1 << 4, 1 << 8)
    ->Unit(benchmark::kMillisecond);

/// Algorithm 1: pairs-with-exceptions enumeration is output-linear with
/// flat per-output cost.
void BM_Algorithm1(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(95);
  std::vector<Value> lhs(n), rhs(n);
  for (size_t i = 0; i < n; ++i) {
    lhs[i] = static_cast<Value>(i);
    rhs[i] = static_cast<Value>(i);
  }
  auto exclusions = [&](Value a) {
    return std::vector<Value>{a, (a + 1) % static_cast<Value>(n)};
  };
  for (auto _ : state) {
    int64_t emitted = EnumeratePairsWithExceptions(
        lhs, rhs, exclusions, [](Value, Value) {});
    benchmark::DoNotOptimize(emitted);
  }
  state.SetComplexityN(static_cast<int64_t>(n * n));
}
BENCHMARK(BM_Algorithm1)
    ->Range(1 << 6, 1 << 10)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace fgq
