#include <benchmark/benchmark.h>

#include "fgq/eval/random_access.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

/// Experiment E21 (extension, [23] in Section 4.3's additional
/// extensions): random access and uniform sampling over a free-connex
/// answer set. After linear preprocessing, Answer(j) costs time
/// depending only on the query (binary searches within buckets) — the
/// per-access cost must stay flat while n grows, and sampling must be
/// uniform (tested in tests/random_access_test.cc).

namespace fgq {
namespace {

Database Db(size_t n, Rng* rng) {
  Database db;
  Value domain = static_cast<Value>(n);
  db.PutRelation(RandomRelation("R", 2, n, domain, rng));
  db.PutRelation(RandomRelation("S", 2, n, domain, rng));
  db.PutRelation(RandomRelation("B", 1, n / 4 + 1, domain, rng));
  db.DeclareDomainSize(domain);
  return db;
}

ConjunctiveQuery Query() {
  return ParseConjunctiveQuery("Q(x, y) :- R(x, w), S(y, z), B(z).").value();
}

void BM_RandomAccessBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(161);
  Database db = Db(n, &rng);
  ConjunctiveQuery q = Query();
  int64_t count = 0;
  for (auto _ : state) {
    auto ra = BuildRandomAccess(q, db);
    if (!ra.ok()) state.SkipWithError(ra.status().ToString().c_str());
    count = (*ra)->Count();
    benchmark::DoNotOptimize(ra);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["answers"] = static_cast<double>(count);
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_RandomAccessBuild)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

void BM_RandomAccessLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(162);
  Database db = Db(n, &rng);
  ConjunctiveQuery q = Query();
  auto ra = BuildRandomAccess(q, db);
  if (!ra.ok()) {
    state.SkipWithError(ra.status().ToString().c_str());
    return;
  }
  const int64_t total = (*ra)->Count();
  if (total == 0) {
    state.SkipWithError("empty instance");
    return;
  }
  Rng pick(163);
  for (auto _ : state) {
    int64_t j =
        static_cast<int64_t>(pick.Below(static_cast<uint64_t>(total)));
    auto t = (*ra)->Answer(j);
    benchmark::DoNotOptimize(t);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["answers"] = static_cast<double>(total);
}
BENCHMARK(BM_RandomAccessLookup)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kNanosecond);

void BM_RandomAccessSample(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(164);
  Database db = Db(n, &rng);
  auto ra = BuildRandomAccess(Query(), db);
  if (!ra.ok() || (*ra)->Count() == 0) {
    state.SkipWithError("unavailable");
    return;
  }
  Rng pick(165);
  for (auto _ : state) {
    auto t = (*ra)->Sample(&pick);
    benchmark::DoNotOptimize(t);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_RandomAccessSample)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace fgq
