#include <benchmark/benchmark.h>

#include "fgq/eval/diseq.h"
#include "fgq/query/parser.h"
#include "fgq/util/delay_recorder.h"
#include "fgq/workload/generators.h"

/// Experiment E13 (Theorem 4.20): free-connex ACQ with disequalities is
/// still constant-delay enumerable — disequalities only cut query-many
/// exceptions per candidate (the covers/representative-set machinery of
/// Section 4.3). We sweep both data size and the number of disequalities
/// k: the delay must stay flat in n and grow only with k.

namespace fgq {
namespace {

/// Q(x, y) :- R(x, y), S(y, z), z != x [, z != y]: one constrained
/// quantified variable with k disequalities.
ConjunctiveQuery NeqQuery(int k) {
  ConjunctiveQuery q =
      ParseConjunctiveQuery("Q(x, y) :- R(x, y), S(y, z).").value();
  if (k >= 1) q.AddComparison({"z", "x", Comparison::Op::kNotEqual});
  if (k >= 2) q.AddComparison({"z", "y", Comparison::Op::kNotEqual});
  return q;
}

Database NeqDb(size_t n, Rng* rng) {
  Database db;
  Value domain = static_cast<Value>(n / 2 + 2);
  db.PutRelation(RandomRelation("R", 2, n, domain, rng));
  db.PutRelation(RandomRelation("S", 2, n, domain, rng));
  db.DeclareDomainSize(domain);
  return db;
}

void BM_NeqEnumeration(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  Rng rng(51);
  Database db = NeqDb(n, &rng);
  ConjunctiveQuery q = NeqQuery(k);
  double max_delay = 0;
  int64_t answers = 0;
  for (auto _ : state) {
    auto e = MakeNeqEnumerator(q, db);
    if (!e.ok()) state.SkipWithError(e.status().ToString().c_str());
    DelayRecorder rec;
    rec.StartEnumeration();
    Tuple t;
    answers = 0;
    while (answers < 4096 && (*e)->Next(&t)) {
      rec.RecordOutput();
      ++answers;
    }
    max_delay = static_cast<double>(rec.max_delay_ns());
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["k_diseq"] = static_cast<double>(k);
  state.counters["max_delay_ns"] = max_delay;
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_NeqEnumeration)
    ->ArgsProduct({{1 << 10, 1 << 12, 1 << 14, 1 << 16}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

/// Total evaluation cost: f(||phi||) * (||D|| + |out|) per Theorem 4.20's
/// corollary.
void BM_NeqEvaluateTotal(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(52);
  Database db = NeqDb(n, &rng);
  ConjunctiveQuery q = NeqQuery(2);
  for (auto _ : state) {
    auto res = EvaluateAcqNeq(q, db);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    benchmark::DoNotOptimize(res);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_NeqEvaluateTotal)
    ->Range(1 << 10, 1 << 15)
    ->Unit(benchmark::kMillisecond);

/// The covers machinery itself: minimal covers and representative sets
/// stay k!-bounded regardless of table size.
void BM_MinimalCovers(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  Rng rng(53);
  FunctionTable t;
  t.k = k;
  for (size_t r = 0; r < rows; ++r) {
    Tuple row(k);
    for (size_t c = 0; c < k; ++c) {
      row[c] = static_cast<Value>(rng.Below(8));
    }
    t.rows.push_back(std::move(row));
  }
  size_t covers = 0;
  size_t reps = 0;
  for (auto _ : state) {
    std::vector<Tuple> m = MinimalCovers(t);
    std::vector<size_t> r = RepresentativeSet(t);
    covers = m.size();
    reps = r.size();
    benchmark::DoNotOptimize(m);
    benchmark::DoNotOptimize(r);
  }
  state.counters["min_covers"] = static_cast<double>(covers);
  state.counters["representatives"] = static_cast<double>(reps);
}
BENCHMARK(BM_MinimalCovers)
    ->ArgsProduct({{64, 512, 4096}, {2, 3, 4}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fgq
