#include <benchmark/benchmark.h>

#include "fgq/eval/bmm.h"
#include "fgq/workload/generators.h"

/// Experiment E10 (Theorems 4.8/4.9): the Boolean matrix multiplication
/// reduction. The matrix query Pi(x, y) = exists z. A(x, z) & B(z, y) is
/// the canonical non-free-connex ACQ: any enumeration-with-constant-delay
/// algorithm for it would be an O(n^2) matrix multiplier. We measure both
/// reduction directions:
///   * multiplying via the query engine (output-sensitive, ~n^2 + |C|
///     plus the join work on the 1-entries),
///   * the cubic textbook loop.
/// The shape to observe: via-query tracks the number of one-entries; the
/// naive loop tracks n^3 regardless.

namespace fgq {
namespace {

void BM_MultiplyViaQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  Rng rng(2024);
  BoolMatrix a = RandomMatrix(n, density, &rng);
  BoolMatrix b = RandomMatrix(n, density, &rng);
  size_t ones = 0;
  for (auto _ : state) {
    auto c = MultiplyViaQuery(a, b);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    ones = static_cast<size_t>(
        std::count(c->bits.begin(), c->bits.end(), true));
    benchmark::DoNotOptimize(c);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["ones_in_C"] = static_cast<double>(ones);
}
BENCHMARK(BM_MultiplyViaQuery)
    ->ArgsProduct({{64, 128, 256, 512}, {1, 5, 20}})
    ->Unit(benchmark::kMillisecond);

void BM_MultiplyNaive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  Rng rng(2024);
  BoolMatrix a = RandomMatrix(n, density, &rng);
  BoolMatrix b = RandomMatrix(n, density, &rng);
  for (auto _ : state) {
    BoolMatrix c = MultiplyNaive(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_MultiplyNaive)
    ->ArgsProduct({{64, 128, 256, 512}, {1, 5, 20}})
    ->Unit(benchmark::kMillisecond);

/// The other direction (Example 4.7): embedding matrices into an arbitrary
/// non-free-connex query's database is linear in the matrix size.
void BM_EmbedMatrices(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2025);
  BoolMatrix a = RandomMatrix(n, 0.1, &rng);
  BoolMatrix b = RandomMatrix(n, 0.1, &rng);
  ConjunctiveQuery pi = MatrixProductQuery();
  for (auto _ : state) {
    auto db = EmbedMatricesIntoQuery(pi, "x", "y", "z", a, b);
    benchmark::DoNotOptimize(db);
  }
  state.SetComplexityN(static_cast<int64_t>(n * n));
}
BENCHMARK(BM_EmbedMatrices)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace fgq
