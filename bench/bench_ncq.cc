#include <benchmark/benchmark.h>

#include "fgq/eval/ncq.h"
#include "fgq/workload/generators.h"

/// Experiment E17 (Theorem 4.31): beta-acyclic NCQs decide in quasi-linear
/// time via nest-point-driven resolution, while the generic backtracking
/// decision procedure degrades with domain and variable count. The sweep
/// grows the forbidden-tuple data; the elimination algorithm's curve must
/// stay near-linear in ||D||.

namespace fgq {
namespace {

void BM_NcqElimination(benchmark::State& state) {
  const size_t vars = static_cast<size_t>(state.range(0));
  const size_t tuples = static_cast<size_t>(state.range(1));
  Rng rng(81);
  Database db;
  ConjunctiveQuery q = RandomChainNcq(
      vars, tuples, static_cast<Value>(tuples / 4 + 2), &db, &rng);
  for (auto _ : state) {
    auto v = DecideBetaAcyclicNcq(q, db);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v);
  }
  state.counters["vars"] = static_cast<double>(vars);
  state.counters["tuples_per_rel"] = static_cast<double>(tuples);
}
BENCHMARK(BM_NcqElimination)
    ->ArgsProduct({{4, 8, 16}, {1 << 8, 1 << 11, 1 << 14}})
    ->Unit(benchmark::kMillisecond);

void BM_NcqBruteForce(benchmark::State& state) {
  const size_t vars = static_cast<size_t>(state.range(0));
  const size_t tuples = static_cast<size_t>(state.range(1));
  Rng rng(81);
  Database db;
  ConjunctiveQuery q = RandomChainNcq(
      vars, tuples, static_cast<Value>(tuples / 4 + 2), &db, &rng);
  for (auto _ : state) {
    auto v = DecideNcqBruteForce(q, db);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v);
  }
  state.counters["vars"] = static_cast<double>(vars);
}
BENCHMARK(BM_NcqBruteForce)
    ->ArgsProduct({{3, 4}, {1 << 7, 1 << 9}})
    ->Unit(benchmark::kMillisecond);

/// Scaling in ||D|| alone at fixed query: the quasi-linearity claim.
void BM_NcqScalesInData(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  Rng rng(82);
  Database db;
  ConjunctiveQuery q =
      RandomChainNcq(6, tuples, static_cast<Value>(tuples / 4 + 2), &db, &rng);
  for (auto _ : state) {
    auto v = DecideBetaAcyclicNcq(q, db);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v);
  }
  state.SetComplexityN(static_cast<int64_t>(tuples));
}
BENCHMARK(BM_NcqScalesInData)
    ->Range(1 << 8, 1 << 16)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oNLogN);

}  // namespace
}  // namespace fgq
