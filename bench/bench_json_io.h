#ifndef FGQ_BENCH_BENCH_JSON_IO_H_
#define FGQ_BENCH_BENCH_JSON_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

/// \file bench_json_io.h
/// The schema half of bench_json.h, with no google-benchmark dependency.
///
/// Tools that measure without the benchmark harness (fgq_loadgen drives a
/// socket server open-loop; there is no timed inner function for
/// benchmark to own) still need to emit the exact BENCH_PR*.json schema
/// so snapshots stay mechanically comparable across PRs. This header is
/// that schema: one Entry per measured configuration, flat name/real_ns/
/// cpu_ns/iterations plus free-form counters, serialized by WriteJson.
/// bench_json.h includes this and layers the benchmark-reporter glue on
/// top.

namespace fgq {
namespace benchjson {

struct Entry {
  std::string name;
  double real_ns = 0;
  double cpu_ns = 0;
  int64_t iterations = 0;
  std::vector<std::pair<std::string, double>> counters;
};

inline std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

inline bool WriteJson(const std::string& path, const std::string& binary,
                      const std::vector<Entry>& entries) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"binary\": \"" << Escape(binary) << "\",\n"
      << "  \"benchmarks\": [\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out << "    {\"name\": \"" << Escape(e.name) << "\", \"real_ns\": "
        << e.real_ns << ", \"cpu_ns\": " << e.cpu_ns
        << ", \"iterations\": " << e.iterations;
    for (const auto& [k, v] : e.counters) {
      out << ", \"" << Escape(k) << "\": " << v;
    }
    out << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace benchjson
}  // namespace fgq

#endif  // FGQ_BENCH_BENCH_JSON_IO_H_
