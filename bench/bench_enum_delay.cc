#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "fgq/eval/enumerate.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/util/delay_recorder.h"
#include "fgq/workload/generators.h"

/// Experiments E8/E9 (Theorems 4.3 and 4.6): enumeration delay.
///
/// The paper's headline distinction is between *linear* delay (any ACQ,
/// Algorithm 2) and *constant* delay (free-connex ACQ). We measure the
/// inter-output gap distribution while the database grows: the
/// constant-delay enumerator's curve must stay flat; Algorithm 2's delay
/// grows with ||D||; the materializing baseline hides everything in
/// preprocessing (flat replay delay but full evaluation up front).
/// Besides max and mean we report p50/p95/p99: the max alone is dominated
/// by scheduler hiccups, while the percentiles cleanly separate a flat
/// delay profile from a genuinely linear one.

namespace fgq {
namespace {

Database FreeConnexDb(size_t n, Rng* rng) {
  // Q(x, y) :- R(x, w), S(y, z), B(z): free-connex with ~n answers when
  // relations are sparse.
  Database db;
  Value domain = static_cast<Value>(n);
  db.PutRelation(RandomRelation("R", 2, n, domain, rng));
  db.PutRelation(RandomRelation("S", 2, n, domain, rng));
  db.PutRelation(RandomRelation("B", 1, n / 4 + 1, domain, rng));
  db.DeclareDomainSize(domain);
  return db;
}

ConjunctiveQuery FreeConnexQuery() {
  ConjunctiveQuery q("Q", {"x", "y"}, {});
  Atom r, s, b;
  r.relation = "R";
  r.args = {Term::Var("x"), Term::Var("w")};
  s.relation = "S";
  s.args = {Term::Var("y"), Term::Var("z")};
  b.relation = "B";
  b.args = {Term::Var("z")};
  q.AddAtom(r);
  q.AddAtom(s);
  q.AddAtom(b);
  return q;
}

/// Drains up to `limit` answers, recording delays. Returns the recorder.
DelayRecorder Drain(AnswerEnumerator* e, int64_t limit) {
  DelayRecorder rec;
  rec.StartEnumeration();
  Tuple t;
  int64_t k = 0;
  while (k < limit && e->Next(&t)) {
    benchmark::DoNotOptimize(t);
    rec.RecordOutput();
    ++k;
  }
  return rec;
}

constexpr int64_t kOutputs = 4096;

void BM_ConstantDelayEnumeration(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Database db = FreeConnexDb(n, &rng);
  ConjunctiveQuery q = FreeConnexQuery();
  DelayRecorder last;
  for (auto _ : state) {
    auto e = MakeConstantDelayEnumerator(q, db);
    if (!e.ok()) state.SkipWithError(e.status().ToString().c_str());
    last = Drain(e->get(), kOutputs);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["max_delay_ns"] = static_cast<double>(last.max_delay_ns());
  state.counters["mean_delay_ns"] = last.mean_delay_ns();
  state.counters["p50_delay_ns"] = static_cast<double>(last.p50_delay_ns());
  state.counters["p95_delay_ns"] = static_cast<double>(last.p95_delay_ns());
  state.counters["p99_delay_ns"] = static_cast<double>(last.p99_delay_ns());
  // One traced build + drain outside the timed loop: attributes the
  // preprocessing (prepare / sweeps / projection / index build) that the
  // delay percentiles deliberately exclude.
  TraceContext trace;
  auto traced =
      MakeConstantDelayEnumerator(q, db, ExecContext().WithTrace(&trace));
  if (traced.ok()) {
    Drain(traced->get(), kOutputs);
    benchjson::AddTraceCounters(state, trace);
  }
}
BENCHMARK(BM_ConstantDelayEnumeration)
    ->Range(1 << 10, 1 << 17)
    ->Unit(benchmark::kMillisecond);

void BM_LinearDelayEnumeration(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Database db = FreeConnexDb(n, &rng);
  ConjunctiveQuery q = FreeConnexQuery();
  DelayRecorder last;
  for (auto _ : state) {
    auto e = MakeLinearDelayEnumerator(q, db);
    if (!e.ok()) state.SkipWithError(e.status().ToString().c_str());
    last = Drain(e->get(), /*limit=*/128);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["max_delay_ns"] = static_cast<double>(last.max_delay_ns());
  state.counters["mean_delay_ns"] = last.mean_delay_ns();
  state.counters["p50_delay_ns"] = static_cast<double>(last.p50_delay_ns());
  state.counters["p95_delay_ns"] = static_cast<double>(last.p95_delay_ns());
  state.counters["p99_delay_ns"] = static_cast<double>(last.p99_delay_ns());
}
BENCHMARK(BM_LinearDelayEnumeration)
    ->Range(1 << 10, 1 << 14)
    ->Unit(benchmark::kMillisecond);

/// Baseline: materialize everything, then replay. The replay delay is
/// flat, but the time-to-first-answer equals the full evaluation.
void BM_MaterializeThenReplay(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Database db = FreeConnexDb(n, &rng);
  ConjunctiveQuery q = FreeConnexQuery();
  double preprocessing_ns = 0;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    auto all = EvaluateYannakakis(q, db);
    if (!all.ok()) state.SkipWithError(all.status().ToString().c_str());
    auto e = MakeMaterializedEnumerator(std::move(*all));
    preprocessing_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    DelayRecorder rec = Drain(e.get(), kOutputs);
    benchmark::DoNotOptimize(rec);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["time_to_first_ns"] = preprocessing_ns;
}
// The output is quadratic in n here, so the baseline is capped at 2^12
// (by 2^14 it would materialize ~10^8 answers — which is the point).
BENCHMARK(BM_MaterializeThenReplay)
    ->Range(1 << 10, 1 << 12)
    ->Unit(benchmark::kMillisecond);

/// Preprocessing time of the constant-delay enumerator: must be linear.
void BM_ConstantDelayPreprocessing(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Database db = FreeConnexDb(n, &rng);
  ConjunctiveQuery q = FreeConnexQuery();
  for (auto _ : state) {
    auto e = MakeConstantDelayEnumerator(q, db);
    benchmark::DoNotOptimize(e);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ConstantDelayPreprocessing)
    ->Range(1 << 10, 1 << 17)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace fgq

FGQ_BENCH_JSON_MAIN()
