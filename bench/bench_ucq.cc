#include <benchmark/benchmark.h>

#include "fgq/eval/ucq_enum.h"
#include "fgq/query/parser.h"
#include "fgq/util/delay_recorder.h"
#include "fgq/workload/generators.h"

/// Experiment E11 (Theorem 4.13): unions of conjunctive queries. The
/// Equation (1) union pairs a non-free-connex disjunct with a free-connex
/// provider; the union extension makes the whole union enumerable with
/// (amortized) constant delay. We measure preprocessing and delay as data
/// grows, plus the all-free-connex case.

namespace fgq {
namespace {

UnionQuery Equation1Union() {
  return ParseUnionQuery(
             "Q(x, y, w) :- R1(x, z), R2(z, y), R3(x, w).\n"
             "Q(x, y, w) :- R1(x, y), R2(y, w).")
      .value();
}

Database Equation1Db(size_t n, Rng* rng) {
  Database db;
  Value domain = static_cast<Value>(n);
  db.PutRelation(RandomRelation("R1", 2, n, domain, rng));
  db.PutRelation(RandomRelation("R2", 2, n, domain, rng));
  db.PutRelation(RandomRelation("R3", 2, n, domain, rng));
  db.DeclareDomainSize(domain);
  return db;
}

void BM_UnionEnumerationEq1(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(31);
  Database db = Equation1Db(n, &rng);
  UnionQuery u = Equation1Union();
  double max_delay = 0;
  int64_t answers = 0;
  for (auto _ : state) {
    auto e = MakeUnionEnumerator(u, db);
    if (!e.ok()) state.SkipWithError(e.status().ToString().c_str());
    DelayRecorder rec;
    rec.StartEnumeration();
    Tuple t;
    answers = 0;
    while (answers < 4096 && (*e)->Next(&t)) {
      rec.RecordOutput();
      ++answers;
    }
    max_delay = static_cast<double>(rec.max_delay_ns());
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["max_delay_ns"] = max_delay;
}
BENCHMARK(BM_UnionEnumerationEq1)
    ->Range(1 << 9, 1 << 13)
    ->Unit(benchmark::kMillisecond);

void BM_UnionAllFreeConnex(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(32);
  Database db = Equation1Db(n, &rng);
  UnionQuery u = ParseUnionQuery(
                     "Q(x, y) :- R1(x, y).\n"
                     "Q(x, y) :- R2(x, y).\n"
                     "Q(x, y) :- R3(x, y).")
                     .value();
  for (auto _ : state) {
    auto e = MakeUnionEnumerator(u, db);
    if (!e.ok()) state.SkipWithError(e.status().ToString().c_str());
    Tuple t;
    int64_t count = 0;
    while ((*e)->Next(&t)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_UnionAllFreeConnex)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

/// The union-extension construction itself (homomorphism search plus
/// provider materialization).
void BM_BuildUnionExtension(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(33);
  Database db = Equation1Db(n, &rng);
  UnionQuery u = Equation1Union();
  for (auto _ : state) {
    Database scratch;
    auto ext = BuildFreeConnexExtension(u, db, &scratch);
    benchmark::DoNotOptimize(ext);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_BuildUnionExtension)
    ->Range(1 << 9, 1 << 13)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fgq
