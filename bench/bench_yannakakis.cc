#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "fgq/db/index.h"
#include "fgq/eval/oracle.h"
#include "fgq/eval/prepared.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/workload/generators.h"

/// Experiment E7 (Theorem 4.2): Yannakakis evaluates an acyclic join in
/// O(||phi|| * ||D|| * ||phi(D)||). We sweep the database size for path
/// queries of several lengths and compare against the left-deep
/// materializing baseline, whose intermediate results are not output-
/// bounded. The expected shape: Yannakakis scales near-linearly in
/// ||D|| + ||out||; the baseline blows up whenever intermediates exceed
/// the output.

namespace fgq {
namespace {

void BM_YannakakisPath(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(1234);
  // Sparse relations keep |out| comparable to n.
  Database db = PathDatabase(k, n, static_cast<Value>(n), &rng);
  ConjunctiveQuery q = PathQuery(k);
  size_t out_size = 0;
  for (auto _ : state) {
    auto res = EvaluateYannakakis(q, db);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    out_size = res->NumTuples();
    benchmark::DoNotOptimize(res);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["answers"] = static_cast<double>(out_size);
  // One traced run outside the timed loop: per-phase attribution
  // (prepare / sweeps / assembly) without perturbing the measurement.
  TraceContext trace;
  auto traced = EvaluateYannakakis(q, db, ExecContext().WithTrace(&trace));
  if (traced.ok()) benchjson::AddTraceCounters(state, trace);
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_YannakakisPath)
    ->ArgsProduct({{2, 3, 4}, {1 << 10, 1 << 12, 1 << 14, 1 << 16}})
    ->Unit(benchmark::kMillisecond);

void BM_JoinMaterializeBaseline(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(1234);
  Database db = PathDatabase(k, n, static_cast<Value>(n), &rng);
  ConjunctiveQuery q = PathQuery(k);
  for (auto _ : state) {
    auto res = EvaluateJoinMaterialize(q, db);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    benchmark::DoNotOptimize(res);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_JoinMaterializeBaseline)
    ->ArgsProduct({{2, 3, 4}, {1 << 10, 1 << 12, 1 << 14}})
    ->Unit(benchmark::kMillisecond);

/// Dense instance: every intermediate of the baseline is quadratic while
/// the (Boolean) output keeps Yannakakis linear.
void BM_YannakakisBooleanDense(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(99);
  // Domain sqrt(n): heavy skew, intermediates explode.
  Value domain = static_cast<Value>(std::max<size_t>(4, n / 64));
  Database db = PathDatabase(3, n, domain, &rng);
  ConjunctiveQuery q("B", {}, PathQuery(3).atoms());
  for (auto _ : state) {
    auto res = EvaluateBooleanAcq(q, db);
    benchmark::DoNotOptimize(res);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_YannakakisBooleanDense)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMillisecond);

/// Full reduction alone (the preprocessing phase shared by counting and
/// constant-delay enumeration): expected linear in ||D||.
void BM_FullReduce(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  Database db = Figure1Database(n, static_cast<Value>(n / 4 + 4), &rng);
  ConjunctiveQuery q = Figure1Query();
  for (auto _ : state) {
    auto rq = FullReduce(q, db);
    benchmark::DoNotOptimize(rq);
  }
  state.counters["n"] = static_cast<double>(n);
  TraceContext trace;
  auto traced = FullReduce(q, db, ExecContext().WithTrace(&trace));
  if (traced.ok()) benchjson::AddTraceCounters(state, trace);
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_FullReduce)
    ->Range(1 << 10, 1 << 17)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

// ---- Data-plane kernel microbenchmarks (EXPERIMENTS.md E25) ----------------
//
// The two kernels every algorithm class bottoms out in: the O(N) hash-index
// build and the semijoin sweeps of full reduction. Benchmarked at two key
// distributions — near-unique keys and a 64-value hot set (heavy
// duplication, the open-addressing worst case).

void BM_HashIndexBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Value domain = static_cast<Value>(state.range(1));
  Rng rng(5);
  Relation r = RandomRelation("R", 2, n, domain, &rng);
  r.SortDedup();
  for (auto _ : state) {
    HashIndex idx(r, {0});
    benchmark::DoNotOptimize(idx.NumKeys());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(r.NumTuples()));
  state.counters["n"] = static_cast<double>(r.NumTuples());
  state.counters["keys"] =
      static_cast<double>(HashIndex(r, {0}).NumKeys());
}
BENCHMARK(BM_HashIndexBuild)
    ->ArgsProduct({{1 << 14, 1 << 17}, {64, 1 << 16}})
    ->Unit(benchmark::kMicrosecond);

void BM_HashIndexProbe(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Value domain = static_cast<Value>(state.range(1));
  Rng rng(5);
  Relation r = RandomRelation("R", 2, n, domain, &rng);
  r.SortDedup();
  Relation probe = RandomRelation("P", 2, n, domain, &rng);
  HashIndex idx(r, {0});
  const std::vector<size_t> cols = {0};
  for (auto _ : state) {
    size_t hits = 0;
    for (size_t i = 0; i < probe.NumTuples(); ++i) {
      hits += idx.LookupRow(probe.RowData(i), cols).size();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(probe.NumTuples()));
}
BENCHMARK(BM_HashIndexProbe)
    ->ArgsProduct({{1 << 14, 1 << 17}, {64, 1 << 16}})
    ->Unit(benchmark::kMicrosecond);

/// The two semijoin sweeps in isolation (atom preparation hoisted out);
/// the per-iteration atom copy is a flat memcpy, identical on both sides
/// of any data-plane change.
void BM_SemijoinSweep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  Database db = Figure1Database(n, static_cast<Value>(n / 4 + 4), &rng);
  ConjunctiveQuery q = Figure1Query();
  auto atoms = PrepareAtoms(q, db);
  if (!atoms.ok()) {
    state.SkipWithError(atoms.status().ToString().c_str());
    return;
  }
  Hypergraph hg = Hypergraph::FromQuery(q);
  GyoResult gyo = GyoReduce(hg);
  for (auto _ : state) {
    std::vector<PreparedAtom> a = *atoms;
    SemijoinSweepBottomUp(&a, gyo.tree);
    SemijoinSweepTopDown(&a, gyo.tree);
    benchmark::DoNotOptimize(a);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_SemijoinSweep)
    ->Range(1 << 12, 1 << 17)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fgq

FGQ_BENCH_JSON_MAIN()
