#include <benchmark/benchmark.h>

#include "fgq/eval/oracle.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/workload/generators.h"

/// Experiment E7 (Theorem 4.2): Yannakakis evaluates an acyclic join in
/// O(||phi|| * ||D|| * ||phi(D)||). We sweep the database size for path
/// queries of several lengths and compare against the left-deep
/// materializing baseline, whose intermediate results are not output-
/// bounded. The expected shape: Yannakakis scales near-linearly in
/// ||D|| + ||out||; the baseline blows up whenever intermediates exceed
/// the output.

namespace fgq {
namespace {

void BM_YannakakisPath(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(1234);
  // Sparse relations keep |out| comparable to n.
  Database db = PathDatabase(k, n, static_cast<Value>(n), &rng);
  ConjunctiveQuery q = PathQuery(k);
  size_t out_size = 0;
  for (auto _ : state) {
    auto res = EvaluateYannakakis(q, db);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    out_size = res->NumTuples();
    benchmark::DoNotOptimize(res);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["answers"] = static_cast<double>(out_size);
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_YannakakisPath)
    ->ArgsProduct({{2, 3, 4}, {1 << 10, 1 << 12, 1 << 14, 1 << 16}})
    ->Unit(benchmark::kMillisecond);

void BM_JoinMaterializeBaseline(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(1234);
  Database db = PathDatabase(k, n, static_cast<Value>(n), &rng);
  ConjunctiveQuery q = PathQuery(k);
  for (auto _ : state) {
    auto res = EvaluateJoinMaterialize(q, db);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    benchmark::DoNotOptimize(res);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_JoinMaterializeBaseline)
    ->ArgsProduct({{2, 3, 4}, {1 << 10, 1 << 12, 1 << 14}})
    ->Unit(benchmark::kMillisecond);

/// Dense instance: every intermediate of the baseline is quadratic while
/// the (Boolean) output keeps Yannakakis linear.
void BM_YannakakisBooleanDense(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(99);
  // Domain sqrt(n): heavy skew, intermediates explode.
  Value domain = static_cast<Value>(std::max<size_t>(4, n / 64));
  Database db = PathDatabase(3, n, domain, &rng);
  ConjunctiveQuery q("B", {}, PathQuery(3).atoms());
  for (auto _ : state) {
    auto res = EvaluateBooleanAcq(q, db);
    benchmark::DoNotOptimize(res);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_YannakakisBooleanDense)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMillisecond);

/// Full reduction alone (the preprocessing phase shared by counting and
/// constant-delay enumeration): expected linear in ||D||.
void BM_FullReduce(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  Database db = Figure1Database(n, static_cast<Value>(n / 4 + 4), &rng);
  ConjunctiveQuery q = Figure1Query();
  for (auto _ : state) {
    auto rq = FullReduce(q, db);
    benchmark::DoNotOptimize(rq);
  }
  state.counters["n"] = static_cast<double>(n);
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_FullReduce)
    ->Range(1 << 10, 1 << 17)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace fgq
