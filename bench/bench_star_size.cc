#include <benchmark/benchmark.h>

#include "fgq/count/acq_count.h"
#include "fgq/count/matchings.h"
#include "fgq/hypergraph/star_size.h"
#include "fgq/workload/generators.h"

/// Experiments E15/E16 (Theorem 4.28 and Equation (2)): counting quantified
/// ACQ answers costs ||D||^O(quantified star size). We sweep star queries
/// of star size s = 1..4 — the curves must separate by polynomial degree —
/// and run the perfect-matching identity, whose psi has star size n (the
/// #P-hardness frontier), against the Ryser baseline.

namespace fgq {
namespace {

void BM_StarSizeCounting(benchmark::State& state) {
  const size_t s = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(71);
  ConjunctiveQuery q = StarQuery(s);
  Database db;
  // Sparse stars: each Ei has n tuples over domain ~n^(1/2) so component
  // materialization stays feasible but the s-dependence shows.
  Value domain = static_cast<Value>(std::max<size_t>(8, n / 16));
  for (size_t i = 1; i <= s; ++i) {
    db.PutRelation(
        RandomRelation("E" + std::to_string(i), 2, n, domain, &rng));
  }
  db.DeclareDomainSize(domain);
  std::string count;
  for (auto _ : state) {
    auto c = CountAcq(q, db);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    count = c->ToString();
    benchmark::DoNotOptimize(c);
  }
  state.counters["star_size"] = static_cast<double>(QuantifiedStarSize(q));
  state.counters["n"] = static_cast<double>(n);
  state.counters["count_digits"] = static_cast<double>(count.size());
}
BENCHMARK(BM_StarSizeCounting)
    ->ArgsProduct({{1, 2, 3}, {1 << 8, 1 << 10, 1 << 12}})
    ->Unit(benchmark::kMillisecond);

/// Star size 1 (free-connex) alone: must be linear across a wide range.
void BM_StarSizeOneIsLinear(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(72);
  ConjunctiveQuery q = StarQuery(1);
  Database db;
  db.PutRelation(
      RandomRelation("E1", 2, n, static_cast<Value>(n / 4 + 4), &rng));
  for (auto _ : state) {
    auto c = CountAcq(q, db);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    benchmark::DoNotOptimize(c);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_StarSizeOneIsLinear)
    ->Range(1 << 10, 1 << 17)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

/// Equation (2): #PM via |phi| - |psi| through the counting engine. psi's
/// star size is n, so the cost explodes with n — that is the measured
/// content of the #P-hardness reduction.
void BM_MatchingsViaQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(73);
  BipartiteGraph g = RandomBipartite(n, 2, &rng);
  for (auto _ : state) {
    auto c = CountPerfectMatchingsViaQuery(g);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    benchmark::DoNotOptimize(c);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_MatchingsViaQuery)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond);

void BM_MatchingsRyser(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(73);
  BipartiteGraph g = RandomBipartite(n, 2, &rng);
  for (auto _ : state) {
    auto c = CountPerfectMatchingsRyser(g);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    benchmark::DoNotOptimize(c);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_MatchingsRyser)
    ->DenseRange(2, 18, 4)
    ->Unit(benchmark::kMicrosecond);

/// Star-size computation itself (polynomial per the paper; tiny here).
void BM_ComputeStarSize(benchmark::State& state) {
  const size_t s = static_cast<size_t>(state.range(0));
  ConjunctiveQuery q = StarQuery(s);
  for (auto _ : state) {
    size_t v = QuantifiedStarSize(q);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ComputeStarSize)->DenseRange(1, 8)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fgq
