#include <benchmark/benchmark.h>

#include "fgq/eval/engine.h"
#include "fgq/eval/enumerate.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/workload/generators.h"

/// Experiment E17 (parallel scaling): speedup curves of the morsel-
/// parallel evaluation core at 1/2/4/8 threads. The first benchmark arg
/// is the thread count, so a single run prints the whole curve:
///
///   ./build/bench/bench_parallel_scaling
///
/// Expected shape on a multi-core host: full reduction and Yannakakis
/// scale with the thread count until the semijoin sweeps' level-width or
/// memory bandwidth binds; single-threaded rows reproduce the serial
/// engine exactly (same code path), so the t=1 rows double as the
/// baseline. On a single-core host all rows coincide modulo pool
/// overhead.

namespace fgq {
namespace {

ExecOptions Opts(int threads) {
  ExecOptions o;
  o.num_threads = threads;
  o.morsel_size = 4096;
  return o;
}

void BM_FullReduceParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(1234);
  Database db = PathDatabase(4, n, static_cast<Value>(n / 2), &rng);
  ConjunctiveQuery q = PathQuery(4);
  ExecContext ctx(Opts(threads));
  for (auto _ : state) {
    auto res = FullReduce(q, db, ctx);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    benchmark::DoNotOptimize(res);
  }
  state.counters["threads"] = threads;
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_FullReduceParallel)
    ->ArgsProduct({{1, 2, 4, 8}, {1 << 16, 1 << 18}})
    ->Unit(benchmark::kMillisecond);

void BM_YannakakisParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(99);
  Database db = PathDatabase(3, n, static_cast<Value>(n), &rng);
  ConjunctiveQuery q = PathQuery(3);
  ExecContext ctx(Opts(threads));
  size_t answers = 0;
  for (auto _ : state) {
    auto res = EvaluateYannakakis(q, db, ctx);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    answers = res->NumTuples();
    benchmark::DoNotOptimize(res);
  }
  state.counters["threads"] = threads;
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_YannakakisParallel)
    ->ArgsProduct({{1, 2, 4, 8}, {1 << 16, 1 << 18}})
    ->Unit(benchmark::kMillisecond);

void BM_FreeConnexPreprocessParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(7);
  Database db = Figure1Database(n, static_cast<Value>(n / 4), &rng);
  ConjunctiveQuery q = Figure1Query();
  ExecContext ctx(Opts(threads));
  for (auto _ : state) {
    auto plan = BuildFreeConnexPlan(q, db, ctx);
    if (!plan.ok()) state.SkipWithError(plan.status().ToString().c_str());
    benchmark::DoNotOptimize(plan);
  }
  state.counters["threads"] = threads;
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_FreeConnexPreprocessParallel)
    ->ArgsProduct({{1, 2, 4, 8}, {1 << 16, 1 << 18}})
    ->Unit(benchmark::kMillisecond);

void BM_EngineExecuteParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(55);
  Database db = PathDatabase(1, n, static_cast<Value>(n / 2), &rng);
  ConjunctiveQuery q = FullPathQuery(1);
  Engine engine(Opts(threads));
  for (auto _ : state) {
    auto res = engine.Run(ExecRequest(q, db));
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    benchmark::DoNotOptimize(res);
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_EngineExecuteParallel)
    ->ArgsProduct({{1, 2, 4, 8}, {1 << 18}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fgq
