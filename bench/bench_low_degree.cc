#include <benchmark/benchmark.h>

#include <cmath>

#include "fgq/fo/bounded_degree.h"
#include "fgq/query/parser.h"
#include "fgq/workload/generators.h"

/// Experiment E4 (Theorems 3.9/3.10): low-degree classes (degree <= n^eps)
/// still admit pseudo-linear FO evaluation — the ball sizes grow like
/// n^(eps * r) rather than staying constant, giving total time ~n^(1+eps*r).
/// We sweep eps: the measured exponent must track 1 + eps (radius 1 query)
/// and stay well below the naive n^3.

namespace fgq {
namespace {

Graph LowDegreeGraph(int n, double eps, Rng* rng) {
  int d = std::max(2, static_cast<int>(std::pow(n, eps)));
  return RandomBoundedDegreeGraph(n, d, rng);
}

LocalQuery NeighborhoodQuery() {
  LocalQuery q;
  q.var = "x";
  q.radius = 1;
  // "x has two distinct neighbors that are themselves adjacent".
  q.theta = std::move(ParseFoFormula(
                          "exists y. exists z. (E(x, y) & E(x, z) & "
                          "E(y, z) & y != z)"))
                .value();
  return q;
}

void BM_LowDegreeModelCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double eps = static_cast<double>(state.range(1)) / 100.0;
  Rng rng(101);
  Graph g = LowDegreeGraph(n, eps, &rng);
  Database db = GraphDatabase(g);
  LocalQuery q = NeighborhoodQuery();
  for (auto _ : state) {
    auto v = ModelCheckExistsLocal(q, db);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["eps"] = eps;
  state.counters["degree"] = static_cast<double>(db.Degree());
}
BENCHMARK(BM_LowDegreeModelCheck)
    ->ArgsProduct({{1 << 10, 1 << 12, 1 << 14}, {20, 40}})
    ->Unit(benchmark::kMillisecond);

void BM_LowDegreeCounting(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double eps = static_cast<double>(state.range(1)) / 100.0;
  Rng rng(102);
  Database db = GraphDatabase(LowDegreeGraph(n, eps, &rng));
  LocalQuery q = NeighborhoodQuery();
  for (auto _ : state) {
    auto c = CountLocal(q, db);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    benchmark::DoNotOptimize(c);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["eps"] = eps;
}
BENCHMARK(BM_LowDegreeCounting)
    ->ArgsProduct({{1 << 10, 1 << 12, 1 << 14}, {20, 40}})
    ->Unit(benchmark::kMillisecond);

/// Definition 3.8 sanity: the generator really is low-degree.
void BM_LowDegreeCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(103);
  Database db = GraphDatabase(LowDegreeGraph(n, 0.3, &rng));
  bool low = false;
  for (auto _ : state) {
    low = IsLowDegree(db, 0.35);
    benchmark::DoNotOptimize(low);
  }
  state.counters["is_low_degree"] = low ? 1 : 0;
}
BENCHMARK(BM_LowDegreeCheck)
    ->Range(1 << 10, 1 << 14)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fgq
