#include <benchmark/benchmark.h>

#include "fgq/query/parser.h"
#include "fgq/so/enum_so.h"
#include "fgq/util/delay_recorder.h"
#include "fgq/workload/generators.h"

/// Experiment E20 (Theorem 5.5): Sigma0 enumerates with constant
/// delta-delay (Gray-code walk editing one tape bit per solution), Sigma1
/// with polynomial delay (flashlight search). We measure the per-solution
/// delay: the Gray-code walk must be flat and tiny; the flashlight delay
/// grows polynomially with the slot count.

namespace fgq {
namespace {

Database ChainDb(Value n) {
  Database db;
  Relation e("E", 2);
  for (Value i = 0; i + 1 < n; ++i) e.Add({i, i + 1});
  db.PutRelation(std::move(e));
  db.DeclareDomainSize(n);
  return db;
}

/// Counts tape events without materializing solutions.
class CountingVisitor : public TapeVisitor {
 public:
  explicit CountingVisitor(DelayRecorder* rec) : rec_(rec) {}
  void ResetTape(const std::vector<bool>&) override { rec_->RecordOutput(); }
  void FlipBit(uint64_t) override { rec_->RecordOutput(); }

 private:
  DelayRecorder* rec_;
};

void BM_Sigma0GrayCodeEnum(benchmark::State& state) {
  const Value n = static_cast<Value>(state.range(0));
  Database db = ChainDb(n);
  SoQuery q;
  q.formula = std::move(ParseFoFormula("X(0) & ~X(1)", {"X"})).value();
  q.so_vars = {{"X", 1}};
  double max_delay = 0;
  double mean_delay = 0;
  int64_t produced = 0;
  for (auto _ : state) {
    DelayRecorder rec;
    rec.StartEnumeration();
    CountingVisitor visitor(&rec);
    // n slots, 2 constrained -> 2^(n-2) solutions; cap n so the walk ends.
    Status st = EnumerateSigma0GrayCode(q, db, &visitor);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    max_delay = static_cast<double>(rec.max_delay_ns());
    mean_delay = rec.mean_delay_ns();
    produced = rec.count();
  }
  state.counters["slots"] = static_cast<double>(n);
  state.counters["solutions"] = static_cast<double>(produced);
  state.counters["max_delay_ns"] = max_delay;
  state.counters["mean_delay_ns"] = mean_delay;
}
BENCHMARK(BM_Sigma0GrayCodeEnum)
    ->DenseRange(10, 22, 4)
    ->Unit(benchmark::kMillisecond);

void BM_Sigma1FlashlightEnum(benchmark::State& state) {
  const Value n = static_cast<Value>(state.range(0));
  Database db = ChainDb(n);
  SoQuery q;
  q.formula = std::move(ParseFoFormula(
                  "exists x. exists y. (E(x, y) & X(x) & ~X(y))", {"X"}))
                  .value();
  q.so_vars = {{"X", 1}};
  double max_delay = 0;
  int64_t produced = 0;
  for (auto _ : state) {
    DelayRecorder rec;
    rec.StartEnumeration();
    Status st = EnumerateSigma1Flashlight(
        q, db, /*max_solutions=*/512,
        [&rec](const std::vector<bool>&) { rec.RecordOutput(); });
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    max_delay = static_cast<double>(rec.max_delay_ns());
    produced = rec.count();
  }
  state.counters["slots"] = static_cast<double>(n);
  state.counters["solutions"] = static_cast<double>(produced);
  state.counters["max_delay_ns"] = max_delay;
}
BENCHMARK(BM_Sigma1FlashlightEnum)
    ->DenseRange(6, 18, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fgq
