#include <benchmark/benchmark.h>

#include "fgq/count/acq_count.h"
#include "fgq/count/fields.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/workload/generators.h"

/// Experiment E14 (Theorem 4.21): quantifier-free weighted #ACQ in a
/// single join-tree DP pass. The DP must scale linearly in ||D|| even
/// when the answer set is quadratic or worse — the whole point versus the
/// materialize-then-count baseline.

namespace fgq {
namespace {

void BM_CountQuantifierFreePath(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(61);
  // Dense-ish: answer count far exceeds ||D||.
  Database db = PathDatabase(k, n, static_cast<Value>(n / 8 + 4), &rng);
  ConjunctiveQuery q = FullPathQuery(k);
  std::string count;
  auto ones = [](Value) { return BigInt(1); };
  for (auto _ : state) {
    auto c = WeightedCountAcq0<BigIntField>(q, db, ones);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    count = c->ToString();
    benchmark::DoNotOptimize(c);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["count_digits"] = static_cast<double>(count.size());
}
BENCHMARK(BM_CountQuantifierFreePath)
    ->ArgsProduct({{2, 4, 6}, {1 << 10, 1 << 13, 1 << 16}})
    ->Unit(benchmark::kMillisecond);

void BM_CountByMaterializing(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(61);
  Database db = PathDatabase(k, n, static_cast<Value>(n / 8 + 4), &rng);
  ConjunctiveQuery q = FullPathQuery(k);
  for (auto _ : state) {
    auto res = EvaluateYannakakis(q, db);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    benchmark::DoNotOptimize(res->NumTuples());
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_CountByMaterializing)
    ->ArgsProduct({{2, 4}, {1 << 10, 1 << 12, 1 << 14}})
    ->Unit(benchmark::kMillisecond);

/// Field ablation: the DP cost across coefficient domains. BigInt pays
/// for exactness; Z_p and int64 are near-free.
template <typename Field>
void FieldBench(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(62);
  Database db = PathDatabase(4, n, static_cast<Value>(n / 8 + 4), &rng);
  ConjunctiveQuery q = FullPathQuery(4);
  auto ones = [](Value) { return typename Field::ValueType(1); };
  for (auto _ : state) {
    auto c = WeightedCountAcq0<Field>(q, db, ones);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    benchmark::DoNotOptimize(c);
  }
  state.counters["n"] = static_cast<double>(n);
}
void BM_CountFieldBigInt(benchmark::State& state) {
  FieldBench<BigIntField>(state);
}
void BM_CountFieldMod(benchmark::State& state) {
  FieldBench<ModField<1000000007>>(state);
}
void BM_CountFieldInt64(benchmark::State& state) {
  FieldBench<Int64Field>(state);
}
void BM_CountFieldDouble(benchmark::State& state) {
  FieldBench<DoubleField>(state);
}
BENCHMARK(BM_CountFieldBigInt)->Arg(1 << 14)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CountFieldMod)->Arg(1 << 14)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CountFieldInt64)->Arg(1 << 14)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CountFieldDouble)->Arg(1 << 14)->Unit(benchmark::kMillisecond);

/// Weighted aggregation (the #F-ACQ generalization): weights w(v) = v.
void BM_WeightedAggregation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(63);
  Database db = PathDatabase(3, n, static_cast<Value>(n / 8 + 4), &rng);
  ConjunctiveQuery q = FullPathQuery(3);
  auto w = [](Value v) { return static_cast<double>(v) * 1e-3; };
  for (auto _ : state) {
    auto c = WeightedCountAcq0<DoubleField>(q, db, w);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    benchmark::DoNotOptimize(c);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_WeightedAggregation)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace fgq
