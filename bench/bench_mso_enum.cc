#include <benchmark/benchmark.h>

#include "fgq/mso/courcelle.h"
#include "fgq/util/delay_recorder.h"
#include "fgq/workload/generators.h"

/// Experiment E6 (Theorem 3.12): MSO queries with free *set* variables are
/// enumerable with delay linear in the output size (solutions are size-n
/// objects, so constant delay is impossible — the paper's two-disjoint-
/// solutions example). We enumerate independent sets and report the
/// per-solution delay divided by n: that normalized value must stay flat
/// as n grows.

namespace fgq {
namespace {

void BM_IndependentSetEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(121);
  Graph g = RandomBoundedDegreeGraph(n, 3, &rng);
  double max_delay = 0;
  double per_output_bit = 0;
  int64_t produced = 0;
  for (auto _ : state) {
    IndependentSetEnumerator e(g);
    DelayRecorder rec;
    rec.StartEnumeration();
    std::vector<bool> s;
    produced = 0;
    while (produced < 2048 && e.Next(&s)) {
      benchmark::DoNotOptimize(s);
      rec.RecordOutput();
      ++produced;
    }
    max_delay = static_cast<double>(rec.max_delay_ns());
    per_output_bit = rec.mean_delay_ns() / static_cast<double>(n);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["max_delay_ns"] = max_delay;
  state.counters["mean_delay_per_bit_ns"] = per_output_bit;
  state.counters["solutions"] = static_cast<double>(produced);
}
BENCHMARK(BM_IndependentSetEnumeration)
    ->Range(1 << 6, 1 << 12)
    ->Unit(benchmark::kMillisecond);

/// The paper's disjoint-solutions worst case: complete bipartite halves.
/// Consecutive maximal solutions force a full tape rewrite.
void BM_DisjointSolutionsExample(benchmark::State& state) {
  const int half = static_cast<int>(state.range(0));
  Graph g(2 * half);
  for (int a = 0; a < half; ++a) {
    for (int b = half; b < 2 * half; ++b) g.AddEdge(a, b);
  }
  for (auto _ : state) {
    IndependentSetEnumerator e(g);
    std::vector<bool> s;
    int64_t count = 0;
    while (e.Next(&s)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.counters["half"] = static_cast<double>(half);
}
BENCHMARK(BM_DisjointSolutionsExample)
    ->DenseRange(4, 12, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fgq
