// Service-layer benchmarks: plan-cache speedup and end-to-end throughput
// under a mixed workload (EXPERIMENTS.md E-service entries).
//
// The point of the serving layer is amortization: preparing a free-connex
// query is O(||D||) (full reduction + index builds) while answering from
// a cached plan is output-linear. ServeColdVsCached measures exactly that
// gap; ServeMixedThroughput pushes a light/heavy request mix through the
// bounded queue and reports requests/sec plus the cache hit rate.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <chrono>
#include <future>
#include <vector>

#include "fgq/serve/query_service.h"
#include "fgq/workload/generators.h"

namespace fgq {
namespace {

// --- Cold vs cached: the same free-connex query repeated -----------------

void BM_ServeCold(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  Rng rng(7);
  Database db = Figure1Database(tuples, static_cast<Value>(tuples / 4), &rng);
  ConjunctiveQuery q = Figure1Query();
  ServiceOptions opts;
  opts.num_workers = 1;
  QueryService service(&db, opts);
  for (auto _ : state) {
    // A fresh key every iteration: clearing the cache forces the full
    // Theorem 4.6 preprocessing.
    service.cache().Clear();
    ServiceRequest req;
    req.query = q;
    ServiceResponse resp = service.Submit(std::move(req)).get();
    if (!resp.status.ok()) state.SkipWithError(resp.status.ToString().c_str());
    benchmark::DoNotOptimize(resp.answers);
  }
  state.counters["tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_ServeCold)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ServeCached(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  Rng rng(7);
  Database db = Figure1Database(tuples, static_cast<Value>(tuples / 4), &rng);
  ConjunctiveQuery q = Figure1Query();
  ServiceOptions opts;
  opts.num_workers = 1;
  QueryService service(&db, opts);
  {
    ServiceRequest warm;
    warm.query = q;
    service.Submit(std::move(warm)).get();  // Populate the cache.
  }
  for (auto _ : state) {
    ServiceRequest req;
    req.query = q;
    ServiceResponse resp = service.Submit(std::move(req)).get();
    if (!resp.status.ok()) state.SkipWithError(resp.status.ToString().c_str());
    benchmark::DoNotOptimize(resp.answers);
  }
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["hit_rate"] =
      static_cast<double>(service.cache().hits()) /
      static_cast<double>(service.cache().hits() + service.cache().misses());
}
BENCHMARK(BM_ServeCached)->Arg(1000)->Arg(10000)->Arg(100000);

// --- Mixed workload throughput -------------------------------------------

// A rotating mix: mostly repeated free-connex queries (cacheable), some
// general-acyclic paths, and a trickle of cyclic triangle queries that the
// heavy lane throttles.
std::vector<ConjunctiveQuery> MixedWorkload() {
  std::vector<ConjunctiveQuery> qs;
  for (size_t i = 0; i < 6; ++i) qs.push_back(Figure1Query());
  qs.push_back(PathQuery(2));
  qs.push_back(PathQuery(3));
  // The triangle over E1/E2/E3 (cyclic -> backtracking oracle, heavy lane).
  qs.push_back(ConjunctiveQuery(
      "Tri", {"x"},
      {Atom{"E1", {Term::Var("x"), Term::Var("y")}, false},
       Atom{"E2", {Term::Var("y"), Term::Var("z")}, false},
       Atom{"E3", {Term::Var("z"), Term::Var("x")}, false}}));
  return qs;
}

void BM_ServeMixedThroughput(benchmark::State& state) {
  const size_t workers = static_cast<size_t>(state.range(0));
  Rng rng(11);
  Database db = Figure1Database(2000, 300, &rng);
  // PathQuery/triangle relations E1..E3 over the same domain.
  Database paths = PathDatabase(3, 2000, 300, &rng);
  for (const auto& name : {"E1", "E2", "E3"}) {
    auto r = paths.Find(name);
    if (r.ok()) db.AddRelation(**r);
  }
  std::vector<ConjunctiveQuery> qs = MixedWorkload();
  ServiceOptions opts;
  opts.num_workers = workers;
  opts.max_pending = 256;
  QueryService service(&db, opts);
  // Warm the cache with one pass over the distinct queries: the steady
  // state is what throughput means here; BM_ServeCold covers cold costs.
  for (const ConjunctiveQuery& q : qs) {
    ServiceRequest req;
    req.query = q;
    service.Submit(std::move(req)).get();
  }
  size_t issued = 0;
  for (auto _ : state) {
    std::vector<std::future<ServiceResponse>> futs;
    futs.reserve(64);
    for (size_t i = 0; i < 64; ++i) {
      ServiceRequest req;
      req.query = qs[(issued + i) % qs.size()];
      req.timeout = std::chrono::seconds(30);
      futs.push_back(service.Submit(std::move(req)));
    }
    issued += 64;
    for (auto& f : futs) {
      ServiceResponse resp = f.get();
      if (!resp.status.ok()) {
        state.SkipWithError(resp.status.ToString().c_str());
        break;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(issued));
  const double hits = static_cast<double>(service.cache().hits());
  const double total =
      hits + static_cast<double>(service.cache().misses());
  state.counters["hit_rate"] = total > 0 ? hits / total : 0.0;
  state.counters["workers"] = static_cast<double>(workers);
}
// UseRealTime: the requests execute on the service's workers, so the
// bench thread's CPU time says nothing about throughput.
BENCHMARK(BM_ServeMixedThroughput)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace fgq

FGQ_BENCH_JSON_MAIN()
