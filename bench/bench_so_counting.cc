#include <benchmark/benchmark.h>

#include "fgq/query/parser.h"
#include "fgq/so/sigma_count.h"
#include "fgq/workload/generators.h"

/// Experiment E18 (Theorem 5.3): #Sigma0 is computable in polynomial time
/// even though the counts are astronomically large (2^(n^r) scale — hence
/// the BigInt plumbing). We sweep the domain size for unary and binary SO
/// variables; the time must stay polynomial (n^|fo_free| * 2^atoms) while
/// count_digits explodes.

namespace fgq {
namespace {

Database ChainDb(Value n, Rng* rng) {
  Database db;
  Relation e("E", 2);
  for (Value i = 0; i + 1 < n; ++i) e.Add({i, i + 1});
  db.PutRelation(std::move(e));
  (void)rng;
  db.DeclareDomainSize(n);
  return db;
}

SoQuery CutQuery() {
  // phi(x, y, X) = E(x, y) & X(x) & ~X(y): X "cuts" the edge (x, y).
  SoQuery q;
  q.formula = std::move(ParseFoFormula("E(x, y) & X(x) & ~X(y)", {"X"})).value();
  q.so_vars = {{"X", 1}};
  q.fo_free = {"x", "y"};
  return q;
}

void BM_Sigma0UnaryCount(benchmark::State& state) {
  const Value n = static_cast<Value>(state.range(0));
  Rng rng(131);
  Database db = ChainDb(n, &rng);
  SoQuery q = CutQuery();
  std::string digits;
  for (auto _ : state) {
    auto c = CountSigma0(q, db);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    digits = c->ToString();
    benchmark::DoNotOptimize(c);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["count_digits"] = static_cast<double>(digits.size());
}
BENCHMARK(BM_Sigma0UnaryCount)
    ->Range(8, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_Sigma0BinarySoVar(benchmark::State& state) {
  const Value n = static_cast<Value>(state.range(0));
  Rng rng(132);
  Database db = ChainDb(n, &rng);
  // T(x, y) & E(x, y): the binary SO variable contains the edge (x, y).
  SoQuery q;
  q.formula = std::move(ParseFoFormula("E(x, y) & T(x, y)", {"T"})).value();
  q.so_vars = {{"T", 2}};
  q.fo_free = {"x", "y"};
  std::string digits;
  for (auto _ : state) {
    auto c = CountSigma0(q, db);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    digits = c->ToString();
    benchmark::DoNotOptimize(c);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["count_digits"] = static_cast<double>(digits.size());
}
BENCHMARK(BM_Sigma0BinarySoVar)
    ->Range(8, 256)
    ->Unit(benchmark::kMillisecond);

/// #Sigma1 exact via cube extraction + brute union (small slot spaces):
/// exponential, the contrast motivating the FPRAS of E19.
void BM_Sigma1BruteCount(benchmark::State& state) {
  const Value n = static_cast<Value>(state.range(0));
  Rng rng(133);
  Database db = ChainDb(n, &rng);
  SoQuery q;
  q.formula = std::move(ParseFoFormula("exists x. exists y. (E(x, y) & X(x) & ~X(y))",
                              {"X"}))
                  .value();
  q.so_vars = {{"X", 1}};
  for (auto _ : state) {
    auto c = CountSigma1Brute(q, db);
    if (!c.ok()) state.SkipWithError(c.status().ToString().c_str());
    benchmark::DoNotOptimize(c);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_Sigma1BruteCount)
    ->DenseRange(8, 20, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fgq
