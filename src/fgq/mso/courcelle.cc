#include "fgq/mso/courcelle.h"

#include <algorithm>
#include <map>

namespace fgq {

Result<BigInt> CountBagStateAssignments(
    const Graph& g, const TreeDecomposition& td, int q,
    const std::function<bool(const std::vector<int>& bag,
                             const std::vector<int>& state)>& valid) {
  FGQ_RETURN_NOT_OK(td.Validate(g));
  using StateMap = std::map<std::vector<int>, BigInt>;
  std::vector<StateMap> dp(td.NumBags());

  std::vector<int> order = td.TopDownOrder();
  // Bottom-up over the rooted decomposition.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int b = *it;
    const std::vector<int>& bag = td.bags[static_cast<size_t>(b)];
    // Shared positions with each child (child bag position, my position).
    struct Shared {
      int child;
      std::vector<std::pair<size_t, size_t>> pairs;  // (child pos, my pos)
    };
    std::vector<Shared> shared;
    for (int c : td.children[static_cast<size_t>(b)]) {
      Shared s;
      s.child = c;
      const std::vector<int>& cbag = td.bags[static_cast<size_t>(c)];
      for (size_t i = 0; i < cbag.size(); ++i) {
        auto pos = std::lower_bound(bag.begin(), bag.end(), cbag[i]);
        if (pos != bag.end() && *pos == cbag[i]) {
          s.pairs.push_back({i, static_cast<size_t>(pos - bag.begin())});
        }
      }
      shared.push_back(std::move(s));
    }
    // Enumerate bag states by odometer.
    std::vector<int> state(bag.size(), 0);
    StateMap& mine = dp[static_cast<size_t>(b)];
    while (true) {
      if (valid(bag, state)) {
        BigInt total(1);
        bool dead = false;
        for (const Shared& s : shared) {
          BigInt child_sum(0);
          for (const auto& [cstate, cnt] :
               dp[static_cast<size_t>(s.child)]) {
            bool match = true;
            for (const auto& [cp, mp] : s.pairs) {
              if (cstate[cp] != state[mp]) {
                match = false;
                break;
              }
            }
            if (match) child_sum += cnt;
          }
          if (child_sum.is_zero()) {
            dead = true;
            break;
          }
          total *= child_sum;
        }
        if (!dead) mine[state] = total;
      }
      // Advance the odometer.
      size_t p = 0;
      while (p < state.size() && ++state[p] == q) {
        state[p] = 0;
        ++p;
      }
      if (p == state.size() || bag.empty()) break;
    }
    // Children counted vertices in (child bag minus my bag) plus deeper;
    // vertices shared with me were counted by both sides' states but the
    // child's dp is keyed on them, so the sum-over-matching avoids double
    // counting. However, a child-bag vertex absent from my bag is summed
    // inside child_sum — correct. A vertex present in both is pinned —
    // correct.
    (void)0;
  }
  // Total: sum over root states. Each global assignment contributes to
  // exactly one root state, and any vertex outside every bag is impossible
  // (Validate guarantees coverage).
  BigInt total(0);
  for (const auto& [state, cnt] : dp[static_cast<size_t>(td.root)]) {
    total += cnt;
  }
  return total;
}

namespace {

/// Validity plugin: proper coloring inside the bag.
bool ProperInBag(const Graph& g, const std::vector<int>& bag,
                 const std::vector<int>& state) {
  for (size_t i = 0; i < bag.size(); ++i) {
    for (size_t j = i + 1; j < bag.size(); ++j) {
      if (state[i] == state[j] && g.HasEdge(bag[i], bag[j])) return false;
    }
  }
  return true;
}

/// Validity plugin: independent set inside the bag (state 1 = in).
bool IndependentInBag(const Graph& g, const std::vector<int>& bag,
                      const std::vector<int>& state) {
  for (size_t i = 0; i < bag.size(); ++i) {
    for (size_t j = i + 1; j < bag.size(); ++j) {
      if (state[i] == 1 && state[j] == 1 && g.HasEdge(bag[i], bag[j])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

Result<bool> IsQColorable(const Graph& g, const TreeDecomposition& td,
                          int q) {
  FGQ_ASSIGN_OR_RETURN(BigInt count, CountProperColorings(g, td, q));
  return !count.is_zero();
}

Result<BigInt> CountProperColorings(const Graph& g,
                                    const TreeDecomposition& td, int q) {
  return CountBagStateAssignments(
      g, td, q,
      [&g](const std::vector<int>& bag, const std::vector<int>& state) {
        return ProperInBag(g, bag, state);
      });
}

Result<BigInt> CountIndependentSets(const Graph& g,
                                    const TreeDecomposition& td) {
  return CountBagStateAssignments(
      g, td, 2,
      [&g](const std::vector<int>& bag, const std::vector<int>& state) {
        return IndependentInBag(g, bag, state);
      });
}

Result<BigInt> CountVertexCovers(const Graph& g,
                                 const TreeDecomposition& td) {
  // Complementation is a bijection between vertex covers and independent
  // sets.
  return CountIndependentSets(g, td);
}

BigInt CountIndependentSetsBrute(const Graph& g) {
  BigInt count(0);
  for (uint64_t mask = 0; mask < (uint64_t{1} << g.n); ++mask) {
    bool ok = true;
    for (const auto& [u, v] : g.edges) {
      if ((mask >> u & 1) && (mask >> v & 1)) {
        ok = false;
        break;
      }
    }
    if (ok) count += BigInt(1);
  }
  return count;
}

BigInt CountProperColoringsBrute(const Graph& g, int q) {
  BigInt count(0);
  std::vector<int> color(static_cast<size_t>(g.n), 0);
  while (true) {
    bool ok = true;
    for (const auto& [u, v] : g.edges) {
      if (color[static_cast<size_t>(u)] == color[static_cast<size_t>(v)]) {
        ok = false;
        break;
      }
    }
    if (ok) count += BigInt(1);
    size_t p = 0;
    while (p < color.size() && ++color[p] == q) {
      color[p] = 0;
      ++p;
    }
    if (p == color.size() || g.n == 0) break;
  }
  return count;
}

IndependentSetEnumerator::IndependentSetEnumerator(const Graph& g)
    : g_(g), choice_(static_cast<size_t>(g.n), 0) {}

bool IndependentSetEnumerator::CanTake(int v) const {
  for (int u : g_.adj[static_cast<size_t>(v)]) {
    if (u < v && choice_[static_cast<size_t>(u)] == 1) return false;
  }
  return true;
}

bool IndependentSetEnumerator::Next(std::vector<bool>* out) {
  if (done_) return false;
  if (!primed_) {
    primed_ = true;  // First solution: the empty set (all out).
  } else {
    // Binary-counter increment where position v only admits 1 when
    // CanTake(v); positions after the increment point reset to 0.
    int v = g_.n - 1;
    while (v >= 0) {
      if (choice_[static_cast<size_t>(v)] == 0 && CanTake(v)) {
        choice_[static_cast<size_t>(v)] = 1;
        for (size_t w = static_cast<size_t>(v) + 1; w < choice_.size(); ++w) {
          choice_[w] = 0;
        }
        break;
      }
      choice_[static_cast<size_t>(v)] = 0;
      --v;
    }
    if (v < 0) {
      done_ = true;
      return false;
    }
  }
  out->assign(choice_.size(), false);
  for (size_t i = 0; i < choice_.size(); ++i) (*out)[i] = choice_[i] == 1;
  return true;
}

}  // namespace fgq
