#include "fgq/mso/tree_decomposition.h"

#include <algorithm>
#include <set>

namespace fgq {

void Graph::AddEdge(int u, int v) {
  if (u == v) return;
  if (HasEdge(u, v)) return;
  edges.push_back({u, v});
  adj[static_cast<size_t>(u)].push_back(v);
  adj[static_cast<size_t>(v)].push_back(u);
}

bool Graph::HasEdge(int u, int v) const {
  const std::vector<int>& a = adj[static_cast<size_t>(u)];
  return std::find(a.begin(), a.end(), v) != a.end();
}

size_t TreeDecomposition::Width() const {
  size_t w = 1;
  for (const std::vector<int>& bag : bags) w = std::max(w, bag.size());
  return w - 1;
}

std::vector<int> TreeDecomposition::TopDownOrder() const {
  std::vector<int> order;
  if (root < 0) return order;
  order.push_back(root);
  for (size_t i = 0; i < order.size(); ++i) {
    for (int c : children[order[i]]) order.push_back(c);
  }
  return order;
}

Status TreeDecomposition::Validate(const Graph& g) const {
  // Per-vertex lists of bags containing it (sorted by bag id), so every
  // check below is linear in the total bag content rather than
  // #bags * #vertices.
  std::vector<std::vector<int>> bags_of(static_cast<size_t>(g.n));
  for (size_t b = 0; b < bags.size(); ++b) {
    for (int v : bags[b]) {
      if (v < 0 || v >= g.n) {
        return Status::Internal("bag contains unknown vertex");
      }
      bags_of[static_cast<size_t>(v)].push_back(static_cast<int>(b));
    }
  }
  for (int v = 0; v < g.n; ++v) {
    if (bags_of[static_cast<size_t>(v)].empty()) {
      return Status::Internal("vertex " + std::to_string(v) + " not covered");
    }
  }
  for (const auto& [u, v] : g.edges) {
    const std::vector<int>& bu = bags_of[static_cast<size_t>(u)];
    const std::vector<int>& bv = bags_of[static_cast<size_t>(v)];
    bool ok = false;
    size_t i = 0, j = 0;
    while (i < bu.size() && j < bv.size()) {
      if (bu[i] == bv[j]) {
        ok = true;
        break;
      }
      if (bu[i] < bv[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    if (!ok) {
      return Status::Internal("edge (" + std::to_string(u) + "," +
                              std::to_string(v) + ") not covered");
    }
  }
  // Connectivity: for each vertex, the bags containing it must form a
  // connected subtree — exactly one of them has a parent without v.
  for (int v = 0; v < g.n; ++v) {
    int component_roots = 0;
    for (int b : bags_of[static_cast<size_t>(v)]) {
      int p = parent[static_cast<size_t>(b)];
      bool parent_has =
          p >= 0 && std::binary_search(bags[static_cast<size_t>(p)].begin(),
                                       bags[static_cast<size_t>(p)].end(), v);
      if (!parent_has) ++component_roots;
    }
    if (component_roots > 1) {
      return Status::Internal("vertex " + std::to_string(v) +
                              " bags are disconnected");
    }
  }
  return Status::OK();
}

TreeDecomposition DecomposeMinDegree(const Graph& g) {
  TreeDecomposition td;
  const size_t n = static_cast<size_t>(g.n);
  if (n == 0) {
    td.bags.push_back({});
    td.parent = {-1};
    td.children = {{}};
    td.root = 0;
    return td;
  }
  // Working fill graph as neighbor sets.
  std::vector<std::set<int>> nb(n);
  for (const auto& [u, v] : g.edges) {
    nb[static_cast<size_t>(u)].insert(v);
    nb[static_cast<size_t>(v)].insert(u);
  }
  std::vector<bool> eliminated(n, false);
  std::vector<int> elim_pos(n, -1);
  std::vector<int> bag_of(n, -1);  // Bag index created when eliminating v.

  td.bags.reserve(n);
  std::vector<std::vector<int>> elim_neighbors(n);
  std::vector<int> elim_order;
  for (size_t step = 0; step < n; ++step) {
    // Min fill-degree vertex.
    int best = -1;
    size_t best_deg = SIZE_MAX;
    for (size_t v = 0; v < n; ++v) {
      if (!eliminated[v] && nb[v].size() < best_deg) {
        best = static_cast<int>(v);
        best_deg = nb[v].size();
      }
    }
    size_t bv = static_cast<size_t>(best);
    std::vector<int> bag(nb[bv].begin(), nb[bv].end());
    elim_neighbors[bv] = bag;
    bag.push_back(best);
    std::sort(bag.begin(), bag.end());
    bag_of[bv] = static_cast<int>(td.bags.size());
    td.bags.push_back(bag);
    elim_pos[bv] = static_cast<int>(step);
    elim_order.push_back(best);
    eliminated[bv] = true;
    // Fill: connect remaining neighbors pairwise, remove v.
    std::vector<int> rest(nb[bv].begin(), nb[bv].end());
    for (int u : rest) nb[static_cast<size_t>(u)].erase(best);
    for (size_t i = 0; i < rest.size(); ++i) {
      for (size_t j = i + 1; j < rest.size(); ++j) {
        nb[static_cast<size_t>(rest[i])].insert(rest[j]);
        nb[static_cast<size_t>(rest[j])].insert(rest[i]);
      }
    }
  }
  // Tree structure: the parent of v's bag is the bag of v's earliest-
  // eliminated remaining neighbor; isolated bags chain to the last bag.
  td.parent.assign(n, -1);
  td.children.assign(n, {});
  int prev_root = -1;
  for (size_t v = 0; v < n; ++v) {
    int p_vertex = -1;
    int p_pos = INT32_MAX;
    for (int u : elim_neighbors[v]) {
      if (elim_pos[static_cast<size_t>(u)] < p_pos) {
        p_pos = elim_pos[static_cast<size_t>(u)];
        p_vertex = u;
      }
    }
    if (p_vertex >= 0) {
      td.parent[static_cast<size_t>(bag_of[v])] =
          bag_of[static_cast<size_t>(p_vertex)];
    }
  }
  // Link multiple roots into one tree (disconnected graphs).
  for (size_t b = 0; b < td.bags.size(); ++b) {
    if (td.parent[b] == -1) {
      if (prev_root >= 0) {
        td.parent[static_cast<size_t>(prev_root)] = static_cast<int>(b);
      }
      prev_root = static_cast<int>(b);
    }
  }
  td.root = prev_root;
  for (size_t b = 0; b < td.bags.size(); ++b) {
    if (td.parent[b] >= 0) {
      td.children[static_cast<size_t>(td.parent[b])].push_back(
          static_cast<int>(b));
    }
  }
  return td;
}

}  // namespace fgq
