#ifndef FGQ_MSO_TREE_DECOMPOSITION_H_
#define FGQ_MSO_TREE_DECOMPOSITION_H_

#include <utility>
#include <vector>

#include "fgq/util/status.h"

/// \file tree_decomposition.h
/// Undirected graphs and tree decompositions (Section 3.3).
///
/// Courcelle's theorem (Theorem 3.11) runs dynamic programs over a tree
/// decomposition; this module provides the graph type, an exact
/// decomposition for forests (width 1), and the min-degree elimination
/// heuristic for general graphs (exact on chordal graphs, near-optimal on
/// the partial k-trees our benchmarks generate).

namespace fgq {

/// A simple undirected graph on vertices [0, n).
struct Graph {
  explicit Graph(int n = 0) : n(n), adj(static_cast<size_t>(n)) {}

  int n = 0;
  std::vector<std::pair<int, int>> edges;
  std::vector<std::vector<int>> adj;

  void AddEdge(int u, int v);
  bool HasEdge(int u, int v) const;
};

/// A rooted tree decomposition: bags of vertices plus a tree over bags.
struct TreeDecomposition {
  std::vector<std::vector<int>> bags;  // Each sorted.
  std::vector<int> parent;             // -1 for the root.
  std::vector<std::vector<int>> children;
  int root = -1;

  size_t NumBags() const { return bags.size(); }

  /// Width = max bag size - 1.
  size_t Width() const;

  /// Checks the three tree-decomposition conditions against g:
  /// vertex coverage, edge coverage, and bag connectivity per vertex.
  Status Validate(const Graph& g) const;

  /// Bags in parent-before-child order.
  std::vector<int> TopDownOrder() const;
};

/// Min-degree elimination-order decomposition. Width 1 on forests; on
/// general graphs a heuristic upper bound.
TreeDecomposition DecomposeMinDegree(const Graph& g);

}  // namespace fgq

#endif  // FGQ_MSO_TREE_DECOMPOSITION_H_
