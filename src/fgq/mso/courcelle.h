#ifndef FGQ_MSO_COURCELLE_H_
#define FGQ_MSO_COURCELLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "fgq/mso/tree_decomposition.h"
#include "fgq/util/bigint.h"
#include "fgq/util/status.h"

/// \file courcelle.h
/// Courcelle-style dynamic programming over tree decompositions
/// (Theorems 3.11/3.12, [27], [6], [8, 29]).
///
/// Courcelle's theorem compiles a fixed MSO sentence into a tree
/// automaton; per fixed query, running that automaton is a dynamic program
/// whose state space depends only on the query and the width. We implement
/// the dynamic program directly for a catalog of MSO-definable properties
/// (the compilation step is query-sized and data-independent, so the
/// data-complexity claims — linear-time model checking and counting, and
/// output-linear-delay enumeration — are preserved; see DESIGN.md):
///
/// * q-colorability:        exists C_1..C_q partitioning V with no
///                          monochromatic edge  (MSO_1 sentence)
/// * #independent sets:     counting the sets X with
///                          forall x forall y (E(x,y) -> ~(X(x) /\ X(y)))
/// * independent-set enum:  enumerating those X, delay O(|V|) = O(|s|)
///                          per solution (Theorem 3.12's delay measure is
///                          linear in the output size).

namespace fgq {

/// Generic bag-state DP: each vertex takes a state in [0, q); `valid`
/// receives a bag (sorted vertex list) and the state of each bag vertex
/// and must accept iff the induced constraints hold. Returns the number of
/// global state assignments accepted in every bag. Cost
/// O(#bags * q^(width+1) * width^2).
Result<BigInt> CountBagStateAssignments(
    const Graph& g, const TreeDecomposition& td, int q,
    const std::function<bool(const std::vector<int>& bag,
                             const std::vector<int>& state)>& valid);

/// MSO model checking: is g properly q-colorable? Linear in |g| for fixed
/// q and width (Theorem 3.11's shape).
Result<bool> IsQColorable(const Graph& g, const TreeDecomposition& td, int q);

/// MSO counting: number of proper q-colorings.
Result<BigInt> CountProperColorings(const Graph& g,
                                    const TreeDecomposition& td, int q);

/// MSO counting: number of independent sets (including the empty set).
Result<BigInt> CountIndependentSets(const Graph& g,
                                    const TreeDecomposition& td);

/// MSO counting: number of vertex covers. (X is a vertex cover iff its
/// complement is independent, so this shares the independent-set DP.)
Result<BigInt> CountVertexCovers(const Graph& g, const TreeDecomposition& td);

/// Brute-force references for property tests (2^n; n <= 24).
BigInt CountIndependentSetsBrute(const Graph& g);
BigInt CountProperColoringsBrute(const Graph& g, int q);

/// Enumerates all independent sets of g as characteristic vectors, with
/// delay O(|V|) per solution — linear in the output size, the right
/// measure for MSO queries with free set variables (Theorem 3.12).
/// Backtracking over vertices never dead-ends ("all out" always extends).
class IndependentSetEnumerator {
 public:
  explicit IndependentSetEnumerator(const Graph& g);

  /// Fills `out` with the next independent set; false when exhausted.
  bool Next(std::vector<bool>* out);

 private:
  const Graph& g_;
  std::vector<int> choice_;  // -1 undecided, 0 out, 1 in.
  int depth_ = 0;
  bool done_ = false;
  bool primed_ = false;

  bool CanTake(int v) const;
};

}  // namespace fgq

#endif  // FGQ_MSO_COURCELLE_H_
