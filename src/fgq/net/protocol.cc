#include "fgq/net/protocol.h"

#include <cstring>

namespace fgq {
namespace net {

namespace {

/// Little-endian primitive writers. memcpy keeps them alignment-safe and
/// compiles to single moves on x86/ARM.
void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutBytes(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounded little-endian cursor; every read checks the remaining length.
struct Cursor {
  const uint8_t* p;
  size_t left;

  bool U8(uint8_t* v) {
    if (left < 1) return false;
    *v = *p;
    ++p;
    --left;
    return true;
  }
  bool U32(uint32_t* v) {
    if (left < 4) return false;
    *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    p += 4;
    left -= 4;
    return true;
  }
  bool U64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    if (!U32(&lo) || !U32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }
  bool Bytes(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n)) return false;
    if (left < n) return false;
    s->assign(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return true;
  }
};

Status Malformed(const char* what) {
  return Status::ParseError(std::string("malformed frame: ") + what);
}

}  // namespace

bool VerbIsValid(uint8_t v) { return v <= static_cast<uint8_t>(Verb::kPing); }

const char* VerbName(Verb v) {
  switch (v) {
    case Verb::kRows:
      return "rows";
    case Verb::kCount:
      return "count";
    case Verb::kEnumerateLimit:
      return "enumerate-limit";
    case Verb::kExplain:
      return "explain";
    case Verb::kPing:
      return "ping";
  }
  return "unknown";
}

void EncodeRequest(const Request& req, std::string* out) {
  std::string payload;
  PutU64(&payload, req.id);
  PutU8(&payload, static_cast<uint8_t>(req.verb));
  PutU32(&payload, req.limit);
  PutU32(&payload, req.deadline_ms);
  PutBytes(&payload, req.query);
  PutU32(out, kFrameMagic);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

void EncodeResponse(const Response& resp, Verb verb, std::string* out) {
  std::string payload;
  PutU64(&payload, resp.id);
  PutU8(&payload, resp.status);
  PutU8(&payload, resp.flags);
  PutU8(&payload, resp.classification);
  PutBytes(&payload, resp.text);
  if (resp.ok()) {
    switch (verb) {
      case Verb::kRows:
      case Verb::kEnumerateLimit: {
        PutU32(&payload, resp.arity);
        PutU64(&payload, resp.nrows);
        for (Value v : resp.values) {
          PutU64(&payload, static_cast<uint64_t>(v));
        }
        break;
      }
      case Verb::kCount:
        PutBytes(&payload, resp.count);
        break;
      case Verb::kExplain:
        PutBytes(&payload, resp.explain);
        break;
      case Verb::kPing:
        break;
    }
  }
  PutU32(out, kFrameMagic);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

Status DecodeRequest(const uint8_t* data, size_t len, Request* out) {
  Cursor c{data, len};
  uint8_t verb = 0;
  if (!c.U64(&out->id)) return Malformed("truncated request id");
  if (!c.U8(&verb)) return Malformed("truncated verb");
  if (!VerbIsValid(verb)) return Malformed("unknown verb");
  out->verb = static_cast<Verb>(verb);
  if (!c.U32(&out->limit)) return Malformed("truncated limit");
  if (!c.U32(&out->deadline_ms)) return Malformed("truncated deadline");
  if (!c.Bytes(&out->query)) return Malformed("truncated query text");
  if (c.left != 0) return Malformed("trailing bytes after request");
  return Status::OK();
}

Status DecodeResponse(const uint8_t* data, size_t len, Verb verb,
                      Response* out) {
  Cursor c{data, len};
  if (!c.U64(&out->id)) return Malformed("truncated response id");
  if (!c.U8(&out->status)) return Malformed("truncated status");
  if (!c.U8(&out->flags)) return Malformed("truncated flags");
  if (!c.U8(&out->classification)) return Malformed("truncated class");
  if (!c.Bytes(&out->text)) return Malformed("truncated text");
  if (!out->ok()) {
    if (c.left != 0) return Malformed("trailing bytes after error");
    return Status::OK();
  }
  switch (verb) {
    case Verb::kRows:
    case Verb::kEnumerateLimit: {
      if (!c.U32(&out->arity)) return Malformed("truncated arity");
      if (!c.U64(&out->nrows)) return Malformed("truncated row count");
      // Sized before any allocation, and computed from the (bounded)
      // remaining payload rather than nrows*arity — no multiply overflow
      // and no hostile-length-driven allocation.
      if (out->arity == 0) {
        if (c.left != 0) return Malformed("row body size mismatch");
      } else {
        const uint64_t row_bytes = 8ull * out->arity;
        if (c.left % row_bytes != 0 || c.left / row_bytes != out->nrows) {
          return Malformed("row body size mismatch");
        }
      }
      const size_t want = c.left / 8;
      out->values.clear();
      out->values.reserve(want);
      for (size_t i = 0; i < want; ++i) {
        uint64_t v = 0;
        c.U64(&v);  // Cannot fail: sized above.
        out->values.push_back(static_cast<Value>(v));
      }
      break;
    }
    case Verb::kCount:
      if (!c.Bytes(&out->count)) return Malformed("truncated count");
      break;
    case Verb::kExplain:
      if (!c.Bytes(&out->explain)) return Malformed("truncated explain");
      break;
    case Verb::kPing:
      break;
  }
  if (c.left != 0) return Malformed("trailing bytes after response");
  return Status::OK();
}

void FrameReader::Feed(const uint8_t* data, size_t len) {
  // Compact once the consumed prefix dominates — amortized O(1) per byte.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

FrameReader::State FrameReader::Next(std::vector<uint8_t>* payload) {
  if (!error_.ok()) return State::kError;
  const size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return State::kNeedMore;
  const uint8_t* h = buf_.data() + pos_;
  const uint32_t magic = static_cast<uint32_t>(h[0]) |
                         (static_cast<uint32_t>(h[1]) << 8) |
                         (static_cast<uint32_t>(h[2]) << 16) |
                         (static_cast<uint32_t>(h[3]) << 24);
  const uint32_t length = static_cast<uint32_t>(h[4]) |
                          (static_cast<uint32_t>(h[5]) << 8) |
                          (static_cast<uint32_t>(h[6]) << 16) |
                          (static_cast<uint32_t>(h[7]) << 24);
  if (magic != kFrameMagic) {
    error_ = Status::ParseError("bad frame magic (stream desynchronized)");
    return State::kError;
  }
  if (length > max_payload_) {
    error_ = Status::ResourceExhausted(
        "frame payload of " + std::to_string(length) +
        " bytes exceeds the limit of " + std::to_string(max_payload_));
    return State::kError;
  }
  if (avail < kFrameHeaderBytes + length) return State::kNeedMore;
  payload->assign(h + kFrameHeaderBytes, h + kFrameHeaderBytes + length);
  pos_ += kFrameHeaderBytes + length;
  return State::kFrame;
}

}  // namespace net
}  // namespace fgq
