#ifndef FGQ_NET_SERVER_H_
#define FGQ_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fgq/db/database.h"
#include "fgq/net/protocol.h"
#include "fgq/serve/query_service.h"
#include "fgq/util/status.h"

/// \file server.h
/// The epoll socket front end: shard-per-core request serving.
///
/// QueryService made fgq concurrent; NetServer makes it *networked*
/// without giving the concurrency back. The design goal is that the
/// paper's per-request budgets — O(||D||) preprocessing amortized into
/// the plan cache, O(||phi||) per answer — survive a real socket hop
/// under pipelined concurrent load:
///
/// * **Shard-per-core.** The server runs `num_shards` independent shards.
///   Each shard owns an epoll event loop thread, its accepted
///   connections, and a private QueryService (plan cache, admission
///   queue, worker threads) over the shared read-only Database. Shards
///   share no mutable state, so throughput scales with shards instead of
///   serializing on one service mutex/queue.
/// * **Routing.** With `use_reuseport` (the default), every shard binds
///   its own listening socket with SO_REUSEPORT and the kernel routes
///   each new connection to one shard — zero cross-thread handoff.
///   Without it (or where unsupported), shard 0 accepts and hands
///   connections to shards round-robin over an eventfd-signalled queue:
///   the partition-aware-router fallback. Either way a connection lives
///   its whole life on one shard.
/// * **Pipelining.** Clients may send many requests without waiting.
///   Frames are decoded as bytes arrive; each request is submitted to the
///   shard's QueryService with SubmitPolicy::Reject() (an event loop
///   never blocks) and its on_done hook wakes the shard's eventfd when
///   the response future is ready. Responses are written strictly in
///   request order per connection.
/// * **Protocol hygiene.** Framing violations (bad magic, oversized
///   length, malformed payload) get one error response and a close —
///   the stream cannot be trusted past them. Application errors (query
///   parse failure, deadline, queue-full rejection) are per-request
///   responses on a healthy connection.
///
/// The database is borrowed and must stay immutable while the server
/// runs, exactly as with a bare QueryService.

namespace fgq {
namespace net {

struct NetServerOptions {
  /// Listen address. Tests and the loopback harness use 127.0.0.1.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Event-loop shards, each with a private QueryService. 0 = one per
  /// hardware thread.
  size_t num_shards = 1;
  /// Per-shard QueryService configuration. The default differs from a
  /// standalone service: 1 worker per shard (shard-per-core means the
  /// parallelism lives in the shard count, not in one deep pool).
  ServiceOptions service = [] {
    ServiceOptions s;
    s.num_workers = 1;
    return s;
  }();
  /// Kernel-routed sharding via SO_REUSEPORT; false selects the
  /// round-robin acceptor router (shard 0 accepts, hands off fds).
  bool use_reuseport = true;
  /// Per-connection cap on decoded-but-unanswered requests; the excess
  /// request is rejected (ResourceExhausted) on an otherwise healthy
  /// connection.
  size_t max_pipeline = 1024;
  /// Frame payload cap for this server (<= protocol kMaxFramePayload).
  uint32_t max_frame_bytes = kMaxFramePayload;
  /// How long Stop() lets in-flight requests finish and flush before
  /// force-closing connections.
  std::chrono::milliseconds drain_timeout{2000};
};

/// Aggregate server statistics (summed over shards).
struct NetServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t requests = 0;        ///< Frames decoded as requests.
  uint64_t responses = 0;       ///< Response frames written out.
  uint64_t protocol_errors = 0; ///< Framing/decode violations (fatal).
  uint64_t parse_errors = 0;    ///< Query-text parse failures (benign).
  uint64_t rejected = 0;        ///< Queue-full / pipeline-cap rejections.
};

class NetServer {
 public:
  /// Binds, starts the shard threads, returns a running server. Fails
  /// with Unavailable/Internal on socket errors, Unsupported on
  /// platforms without epoll.
  static Result<std::unique_ptr<NetServer>> Start(const Database* db,
                                                  NetServerOptions opts);

  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound TCP port (resolved when options asked for port 0).
  uint16_t port() const;
  size_t num_shards() const;

  /// Graceful shutdown: stop accepting, let in-flight requests finish
  /// and flush (bounded by drain_timeout), stop the shard services, join
  /// every thread. Idempotent; the destructor calls it.
  void Stop();

  NetServerStats stats() const;
  /// Per-shard QueryService metrics + cache occupancy + server totals.
  std::string StatsDump() const;

 private:
  struct Impl;
  explicit NetServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace net
}  // namespace fgq

#endif  // FGQ_NET_SERVER_H_
