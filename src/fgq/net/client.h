#ifndef FGQ_NET_CLIENT_H_
#define FGQ_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "fgq/net/protocol.h"
#include "fgq/util/status.h"

/// \file client.h
/// A small blocking client for the fgq wire protocol.
///
/// This is the reference peer of NetServer: the loopback tests, the
/// differential fuzzer, and fgq_loadgen all speak through it. It is
/// deliberately synchronous — one fd, blocking reads — because its job is
/// correctness and measurement, not throughput. Pipelining is still fully
/// supported: Send() any number of requests, then Receive() the responses
/// in the same order (the protocol guarantees per-connection ordering, so
/// the caller only has to remember the verbs it sent).

namespace fgq {
namespace net {

class Client {
 public:
  /// Blocking TCP connect (IPv4 dotted-quad host).
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Encodes and writes one request frame. Does not wait for the reply —
  /// interleave Send/Receive freely to pipeline.
  Status Send(const Request& req);

  /// Writes raw bytes verbatim (no framing). Exists so tests and the
  /// fuzzer can hand the server deliberately broken streams.
  Status SendRaw(const std::string& bytes);

  /// Blocks until the next complete response frame arrives and decodes it.
  /// `verb` must be the verb of the request this response answers
  /// (responses arrive in request order). Fails with Internal when the
  /// server closes the connection first.
  Result<Response> Receive(Verb verb);

  /// Send + Receive for the unpipelined case.
  Result<Response> Call(const Request& req);

  /// Half-closes the write side (the server sees EOF, finishes pending
  /// responses, then closes). Receive() still works afterwards.
  void ShutdownWrite();

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  Status WriteAll(const char* data, size_t len);

  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace net
}  // namespace fgq

#endif  // FGQ_NET_CLIENT_H_
