#include "fgq/net/server.h"

#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "fgq/query/parser.h"
#include "fgq/trace/explain.h"
#include "fgq/util/thread_pool.h"

#ifdef __linux__

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

namespace fgq {
namespace net {

namespace {

/// epoll_event.data.u64 tags: the two singleton fds, then connection ids.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kFirstConnId = 2;

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

Result<int> OpenListener(const std::string& host, uint16_t port,
                         bool reuseport) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
    const Status st = Errno("setsockopt(SO_REUSEPORT)");
    ::close(fd);
    return st;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address '" + host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 512) < 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  return fd;
}

Result<uint16_t> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

/// One response awaiting its slot in the connection's ordered reply
/// stream: either already encoded (ping, explain, per-request errors) or
/// a future the shard polls once its on_done hook fires.
struct PendingReply {
  uint64_t req_id = 0;
  Verb verb = Verb::kRows;
  std::future<ServiceResponse> fut;  ///< Invalid for pre-encoded replies.
  std::string frame;                 ///< Pre-encoded reply (fut invalid).
};

struct Conn {
  int fd = -1;
  uint64_t id = 0;
  FrameReader reader;
  std::deque<PendingReply> pending;  ///< Replies in request order.
  std::string out;                   ///< Encoded-but-unsent bytes.
  size_t out_pos = 0;                ///< Sent prefix of `out`.
  uint32_t armed = 0;                ///< Last epoll interest mask.
  bool close_after_flush = false;    ///< Fatal protocol error seen.
  bool peer_closed = false;          ///< EOF read (half-close supported).

  Conn(int f, uint64_t i, uint32_t max_payload)
      : fd(f), id(i), reader(max_payload) {}
  size_t unsent() const { return out.size() - out_pos; }
};

}  // namespace

struct NetServer::Impl {
  struct Shard {
    Impl* owner = nullptr;
    size_t index = 0;
    int listen_fd = -1;  ///< -1 on non-zero shards in router mode.
    int epoll_fd = -1;
    int wake_fd = -1;
    std::unique_ptr<QueryService> service;
    std::thread thread;

    /// Cross-thread mailbox: fds handed over by the router shard and ids
    /// of connections whose response futures became ready. Drained by
    /// the shard thread on a wake_fd event.
    std::mutex mu;
    std::vector<int> incoming;
    std::vector<uint64_t> done;

    /// Shard-thread-private state.
    std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
    uint64_t next_conn_id = kFirstConnId;

    void Wake() {
      const uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
    }
  };

  const Database* db = nullptr;
  NetServerOptions opts;
  uint16_t port = 0;
  std::vector<std::unique_ptr<Shard>> shards;

  std::atomic<bool> stopping{false};
  bool joined = false;
  std::mutex stop_mu;
  std::chrono::steady_clock::time_point drain_deadline;
  std::atomic<size_t> rr_next{0};

  std::atomic<uint64_t> accepted{0}, closed{0}, requests{0}, responses{0},
      protocol_errors{0}, parse_errors{0}, rejected{0};

  ~Impl() { StopAll(); }

  void StopAll() {
    std::lock_guard<std::mutex> g(stop_mu);
    if (joined) return;
    drain_deadline = std::chrono::steady_clock::now() + opts.drain_timeout;
    stopping.store(true, std::memory_order_release);
    for (auto& s : shards) s->Wake();
    for (auto& s : shards) {
      if (s->thread.joinable()) s->thread.join();
    }
    joined = true;
  }

  // ----- Shard event loop --------------------------------------------

  void ShardLoop(Shard* s) {
    std::vector<epoll_event> evs(64);
    for (;;) {
      const bool draining = stopping.load(std::memory_order_acquire);
      const int timeout_ms = draining ? 10 : -1;
      const int n = ::epoll_wait(s->epoll_fd, evs.data(),
                                 static_cast<int>(evs.size()), timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epoll fd gone — unrecoverable; tear down.
      }
      for (int i = 0; i < n; ++i) {
        const uint64_t tag = evs[i].data.u64;
        if (tag == kListenTag) {
          if (!draining) HandleAccept(s);
          continue;
        }
        if (tag == kWakeTag) {
          DrainWake(s, draining);
          continue;
        }
        auto it = s->conns.find(tag);
        if (it == s->conns.end()) continue;  // Closed earlier this batch.
        Conn* c = it->second.get();
        if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
          CloseConn(s, tag);
          continue;
        }
        if (evs[i].events & EPOLLIN) HandleReadable(s, c);
        it = s->conns.find(tag);  // Reads can close the connection.
        if (it == s->conns.end()) continue;
        c = it->second.get();
        if (evs[i].events & EPOLLOUT) Flush(s, c);
        it = s->conns.find(tag);  // ... and so can writes.
        if (it != s->conns.end()) Settle(s, it->second.get());
      }
      if (draining && DrainTick(s)) break;
    }
    // Teardown, in dependency order: the service first (joins its
    // workers, after which no on_done hook can touch wake_fd), then the
    // connections, then the shard's own fds.
    s->service->CancelAll();
    s->service->Stop();
    std::vector<uint64_t> ids;
    ids.reserve(s->conns.size());
    for (const auto& [id, conn] : s->conns) ids.push_back(id);
    for (uint64_t id : ids) CloseConn(s, id);
    if (s->listen_fd >= 0) ::close(s->listen_fd);
    ::close(s->wake_fd);
    ::close(s->epoll_fd);
  }

  /// Shutdown progress check; true once every connection is gone. Flushes
  /// idle connections away and, past the drain deadline, cancels
  /// in-flight work and force-closes the rest.
  bool DrainTick(Shard* s) {
    const bool expired = std::chrono::steady_clock::now() >= drain_deadline;
    if (expired) s->service->CancelAll();
    std::vector<uint64_t> to_close;
    for (auto& [id, c] : s->conns) {
      DrainReplies(s, c.get());
      Flush(s, c.get());
      if (expired || (c->pending.empty() && c->unsent() == 0)) {
        to_close.push_back(id);
      }
    }
    for (uint64_t id : to_close) CloseConn(s, id);
    return s->conns.empty();
  }

  void HandleAccept(Shard* s) {
    for (;;) {
      const int fd =
          ::accept4(s->listen_fd, nullptr, nullptr,
                    SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN (drained) or transient accept error.
      }
      accepted.fetch_add(1, std::memory_order_relaxed);
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (!opts.use_reuseport && shards.size() > 1) {
        // Router mode: shard 0 accepts, connections go round-robin.
        Shard* target =
            shards[rr_next.fetch_add(1, std::memory_order_relaxed) %
                   shards.size()]
                .get();
        if (target != s) {
          {
            std::lock_guard<std::mutex> g(target->mu);
            target->incoming.push_back(fd);
          }
          target->Wake();
          continue;
        }
      }
      AdoptConn(s, fd);
    }
  }

  void AdoptConn(Shard* s, int fd) {
    const uint64_t id = s->next_conn_id++;
    auto conn = std::make_unique<Conn>(fd, id, opts.max_frame_bytes);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(s->epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      return;
    }
    conn->armed = EPOLLIN;
    s->conns.emplace(id, std::move(conn));
  }

  void DrainWake(Shard* s, bool draining) {
    uint64_t count = 0;
    while (::read(s->wake_fd, &count, sizeof(count)) > 0) {
    }
    std::vector<int> incoming;
    std::vector<uint64_t> done;
    {
      std::lock_guard<std::mutex> g(s->mu);
      incoming.swap(s->incoming);
      done.swap(s->done);
    }
    for (int fd : incoming) {
      if (draining) {
        ::close(fd);
      } else {
        AdoptConn(s, fd);
      }
    }
    for (uint64_t id : done) {
      auto it = s->conns.find(id);
      if (it == s->conns.end()) continue;  // Closed with work in flight.
      Conn* c = it->second.get();
      DrainReplies(s, c);
      Flush(s, c);
      it = s->conns.find(id);
      if (it != s->conns.end()) Settle(s, it->second.get());
    }
  }

  // ----- Per-connection I/O ------------------------------------------

  void HandleReadable(Shard* s, Conn* c) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::read(c->fd, buf, sizeof(buf));
      if (n > 0) {
        if (!c->close_after_flush) c->reader.Feed(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        // Half-close: no more requests, but earlier responses still owed.
        c->peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConn(s, c->id);
      return;
    }
    std::vector<uint8_t> payload;
    while (!c->close_after_flush) {
      const FrameReader::State st = c->reader.Next(&payload);
      if (st == FrameReader::State::kNeedMore) break;
      if (st == FrameReader::State::kFrame) {
        HandleRequestFrame(s, c, payload.data(), payload.size());
        continue;
      }
      // Framing violation: one last error frame (request id unknowable),
      // then the connection dies once it is flushed.
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      PushErrorReply(c, 0, c->reader.error());
      c->close_after_flush = true;
    }
    DrainReplies(s, c);
    Flush(s, c);
    // Settle is the caller's job (the conn may already be gone here).
  }

  /// Appends a pre-encoded reply to the ordered queue. Error responses
  /// carry no body regardless of verb, so kPing encoding is exact.
  void PushErrorReply(Conn* c, uint64_t req_id, const Status& st) {
    Response r;
    r.id = req_id;
    r.status = static_cast<uint8_t>(st.code());
    r.text = st.message();
    PendingReply pr;
    pr.req_id = req_id;
    pr.verb = Verb::kPing;
    EncodeResponse(r, Verb::kPing, &pr.frame);
    c->pending.push_back(std::move(pr));
  }

  void PushEncodedReply(Conn* c, const Response& r, Verb verb) {
    PendingReply pr;
    pr.req_id = r.id;
    pr.verb = verb;
    EncodeResponse(r, verb, &pr.frame);
    c->pending.push_back(std::move(pr));
  }

  void HandleRequestFrame(Shard* s, Conn* c, const uint8_t* data,
                          size_t len) {
    requests.fetch_add(1, std::memory_order_relaxed);
    Request req;
    Status st = DecodeRequest(data, len, &req);
    if (!st.ok()) {
      // Malformed payload inside a well-delimited frame: the stream
      // framing may be intact, but the peer's encoder clearly is not —
      // answer once and drop the connection.
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      PushErrorReply(c, req.id, st);
      c->close_after_flush = true;
      return;
    }
    if (req.verb == Verb::kPing) {
      Response r;
      r.id = req.id;
      PushEncodedReply(c, r, Verb::kPing);
      return;
    }
    if (c->pending.size() >= opts.max_pipeline) {
      rejected.fetch_add(1, std::memory_order_relaxed);
      PushErrorReply(c, req.id,
                     Status::ResourceExhausted(
                         "pipeline depth limit (" +
                         std::to_string(opts.max_pipeline) + ") reached"));
      return;
    }
    Result<ConjunctiveQuery> parsed = ParseConjunctiveQuery(req.query);
    if (!parsed.ok()) {
      // Application-level error: the connection stays healthy.
      parse_errors.fetch_add(1, std::memory_order_relaxed);
      PushErrorReply(c, req.id, parsed.status());
      return;
    }
    if (req.verb == Verb::kExplain) {
      Result<Explanation> ex = Explain(*parsed, *db);
      if (!ex.ok()) {
        PushErrorReply(c, req.id, ex.status());
        return;
      }
      Response r;
      r.id = req.id;
      r.classification = static_cast<uint8_t>(ex->classification);
      r.text = "explain";
      r.explain = ex->Text();
      PushEncodedReply(c, r, Verb::kExplain);
      return;
    }

    ServiceRequest sreq;
    sreq.query = std::move(*parsed);
    sreq.verb = req.verb == Verb::kCount ? ServeVerb::kCount : ServeVerb::kRows;
    if (req.verb == Verb::kEnumerateLimit) sreq.limit = req.limit;
    if (req.deadline_ms > 0) {
      sreq.timeout = std::chrono::milliseconds(req.deadline_ms);
    }
    // The wake-up path: the worker resolves the future, then this hook
    // nudges the shard's eventfd; the event loop polls the (now ready)
    // future from DrainWake. Ids, not pointers: the connection may be
    // gone by the time the hook runs.
    Shard* shard = s;
    const uint64_t conn_id = c->id;
    sreq.on_done = [shard, conn_id](const ServiceResponse&) {
      {
        std::lock_guard<std::mutex> g(shard->mu);
        shard->done.push_back(conn_id);
      }
      shard->Wake();
    };
    PendingReply pr;
    pr.req_id = req.id;
    pr.verb = req.verb;
    // Never block the event loop: a full admission queue is a per-request
    // ResourceExhausted (the future resolves before Submit returns).
    pr.fut = s->service->Submit(std::move(sreq), SubmitPolicy::Reject());
    c->pending.push_back(std::move(pr));
  }

  std::string EncodeServiceReply(uint64_t req_id, Verb verb,
                                 const ServiceResponse& resp) {
    Response r;
    r.id = req_id;
    r.classification = static_cast<uint8_t>(resp.classification);
    if (!resp.status.ok()) {
      if (resp.status.code() == StatusCode::kResourceExhausted) {
        rejected.fetch_add(1, std::memory_order_relaxed);
      }
      r.status = static_cast<uint8_t>(resp.status.code());
      r.text = resp.status.message();
    } else {
      if (resp.cache_hit) r.flags |= kFlagCacheHit;
      r.text = resp.algorithm;
      switch (verb) {
        case Verb::kRows:
        case Verb::kEnumerateLimit: {
          if (resp.answers) {
            r.arity = static_cast<uint32_t>(resp.answers->arity());
            r.nrows = resp.answers->NumTuples();
            r.values.assign(resp.answers->raw().begin(),
                            resp.answers->raw().end());
          }
          break;
        }
        case Verb::kCount:
          r.count = resp.count.ToString();
          break;
        case Verb::kExplain:
        case Verb::kPing:
          break;
      }
    }
    std::string frame;
    EncodeResponse(r, verb, &frame);
    return frame;
  }

  void DrainReplies(Shard* s, Conn* c) {
    (void)s;
    while (!c->pending.empty()) {
      PendingReply& front = c->pending.front();
      if (!front.fut.valid()) {
        c->out += front.frame;
      } else if (front.fut.wait_for(std::chrono::seconds(0)) ==
                 std::future_status::ready) {
        c->out += EncodeServiceReply(front.req_id, front.verb,
                                     front.fut.get());
      } else {
        break;  // Head-of-line response still in flight; order is sacred.
      }
      responses.fetch_add(1, std::memory_order_relaxed);
      c->pending.pop_front();
    }
  }

  void Flush(Shard* s, Conn* c) {
    while (c->unsent() > 0) {
      const ssize_t n =
          ::write(c->fd, c->out.data() + c->out_pos, c->unsent());
      if (n > 0) {
        c->out_pos += static_cast<size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConn(s, c->id);
      return;
    }
    if (c->out_pos == c->out.size()) {
      c->out.clear();
      c->out_pos = 0;
    }
  }

  /// Post-I/O bookkeeping: close a finished connection or re-arm epoll
  /// with the right interest set.
  void Settle(Shard* s, Conn* c) {
    const bool drained = c->pending.empty() && c->unsent() == 0;
    if (drained && (c->close_after_flush || c->peer_closed)) {
      CloseConn(s, c->id);
      return;
    }
    uint32_t want = c->unsent() > 0 ? EPOLLOUT : 0;
    if (!c->close_after_flush && !c->peer_closed) want |= EPOLLIN;
    if (want != c->armed) {
      epoll_event ev{};
      ev.events = want;
      ev.data.u64 = c->id;
      ::epoll_ctl(s->epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
      c->armed = want;
    }
  }

  void CloseConn(Shard* s, uint64_t id) {
    auto it = s->conns.find(id);
    if (it == s->conns.end()) return;
    ::epoll_ctl(s->epoll_fd, EPOLL_CTL_DEL, it->second->fd, nullptr);
    ::close(it->second->fd);
    s->conns.erase(it);
    closed.fetch_add(1, std::memory_order_relaxed);
  }
};

NetServer::NetServer(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
NetServer::~NetServer() { Stop(); }

Result<std::unique_ptr<NetServer>> NetServer::Start(const Database* db,
                                                    NetServerOptions opts) {
  if (db == nullptr) {
    return Status::InvalidArgument("NetServer needs a database");
  }
  if (opts.num_shards == 0) opts.num_shards = ThreadPool::HardwareThreads();
  if (opts.max_frame_bytes > kMaxFramePayload) {
    opts.max_frame_bytes = kMaxFramePayload;
  }
  auto impl = std::make_unique<Impl>();
  impl->db = db;
  impl->opts = opts;

  for (size_t i = 0; i < opts.num_shards; ++i) {
    auto shard = std::make_unique<Impl::Shard>();
    shard->owner = impl.get();
    shard->index = i;
    impl->shards.push_back(std::move(shard));
  }

  // Listeners. In SO_REUSEPORT mode every shard binds the same port and
  // the kernel routes connections; in router mode only shard 0 listens.
  // Shard 0 binds first so an ephemeral port request (port 0) resolves
  // to a concrete port the siblings can join.
  const bool multi = opts.num_shards > 1;
  const bool reuseport = opts.use_reuseport && multi;
  {
    FGQ_ASSIGN_OR_RETURN(
        int fd, OpenListener(opts.host, opts.port, opts.use_reuseport));
    FGQ_ASSIGN_OR_RETURN(impl->port, BoundPort(fd));
    impl->shards[0]->listen_fd = fd;
  }
  if (reuseport) {
    for (size_t i = 1; i < opts.num_shards; ++i) {
      FGQ_ASSIGN_OR_RETURN(
          int fd, OpenListener(opts.host, impl->port, /*reuseport=*/true));
      impl->shards[i]->listen_fd = fd;
    }
  }

  for (auto& s : impl->shards) {
    s->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (s->epoll_fd < 0) return Errno("epoll_create1");
    s->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (s->wake_fd < 0) return Errno("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(s->epoll_fd, EPOLL_CTL_ADD, s->wake_fd, &ev) < 0) {
      return Errno("epoll_ctl(wake)");
    }
    if (s->listen_fd >= 0) {
      ev.events = EPOLLIN;
      ev.data.u64 = kListenTag;
      if (::epoll_ctl(s->epoll_fd, EPOLL_CTL_ADD, s->listen_fd, &ev) < 0) {
        return Errno("epoll_ctl(listen)");
      }
    }
    s->service = std::make_unique<QueryService>(db, opts.service);
  }
  // Threads last: everything a shard touches exists before it runs.
  for (auto& s : impl->shards) {
    Impl* raw = impl.get();
    Impl::Shard* sp = s.get();
    s->thread = std::thread([raw, sp] { raw->ShardLoop(sp); });
  }
  return std::unique_ptr<NetServer>(new NetServer(std::move(impl)));
}

uint16_t NetServer::port() const { return impl_->port; }
size_t NetServer::num_shards() const { return impl_->shards.size(); }
void NetServer::Stop() { impl_->StopAll(); }

NetServerStats NetServer::stats() const {
  NetServerStats st;
  st.connections_accepted = impl_->accepted.load(std::memory_order_relaxed);
  st.connections_closed = impl_->closed.load(std::memory_order_relaxed);
  st.requests = impl_->requests.load(std::memory_order_relaxed);
  st.responses = impl_->responses.load(std::memory_order_relaxed);
  st.protocol_errors = impl_->protocol_errors.load(std::memory_order_relaxed);
  st.parse_errors = impl_->parse_errors.load(std::memory_order_relaxed);
  st.rejected = impl_->rejected.load(std::memory_order_relaxed);
  return st;
}

std::string NetServer::StatsDump() const {
  const NetServerStats st = stats();
  std::string out;
  out += "net accepted=" + std::to_string(st.connections_accepted) +
         " closed=" + std::to_string(st.connections_closed) +
         " requests=" + std::to_string(st.requests) +
         " responses=" + std::to_string(st.responses) +
         " protocol_errors=" + std::to_string(st.protocol_errors) +
         " parse_errors=" + std::to_string(st.parse_errors) +
         " rejected=" + std::to_string(st.rejected) + "\n";
  for (size_t i = 0; i < impl_->shards.size(); ++i) {
    out += "--- shard " + std::to_string(i) + " ---\n";
    out += impl_->shards[i]->service->StatsDump();
  }
  return out;
}

}  // namespace net
}  // namespace fgq

#else  // !__linux__

namespace fgq {
namespace net {

struct NetServer::Impl {};

NetServer::NetServer(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
NetServer::~NetServer() = default;

Result<std::unique_ptr<NetServer>> NetServer::Start(const Database*,
                                                    NetServerOptions) {
  return Status::Unsupported("fgq::net requires Linux (epoll/eventfd)");
}

uint16_t NetServer::port() const { return 0; }
size_t NetServer::num_shards() const { return 0; }
void NetServer::Stop() {}
NetServerStats NetServer::stats() const { return NetServerStats{}; }
std::string NetServer::StatsDump() const { return std::string(); }

}  // namespace net
}  // namespace fgq

#endif  // __linux__
