#include "fgq/net/client.h"

#include <cstring>

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace fgq {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::WriteAll(const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd_, data + off, len - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("write");
  }
  return Status::OK();
}

Status Client::Send(const Request& req) {
  std::string buf;
  EncodeRequest(req, &buf);
  return WriteAll(buf.data(), buf.size());
}

Status Client::SendRaw(const std::string& bytes) {
  return WriteAll(bytes.data(), bytes.size());
}

Result<Response> Client::Receive(Verb verb) {
  std::vector<uint8_t> payload;
  for (;;) {
    const FrameReader::State st = reader_.Next(&payload);
    if (st == FrameReader::State::kFrame) {
      Response resp;
      FGQ_RETURN_NOT_OK(DecodeResponse(payload.data(), payload.size(), verb,
                                       &resp));
      return resp;
    }
    if (st == FrameReader::State::kError) return reader_.error();
    char buf[64 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      reader_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::Internal("server closed the connection");
    if (errno == EINTR) continue;
    return Errno("read");
  }
}

Result<Response> Client::Call(const Request& req) {
  FGQ_RETURN_NOT_OK(Send(req));
  return Receive(req.verb);
}

void Client::ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

}  // namespace net
}  // namespace fgq
