#ifndef FGQ_NET_PROTOCOL_H_
#define FGQ_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fgq/db/value.h"
#include "fgq/util/status.h"

/// \file protocol.h
/// The fgq wire protocol: length-prefixed binary frames.
///
/// The paper's complexity guarantees (linear preprocessing, constant
/// delay) are per-request budgets; a network front end must not blur them
/// with per-request parsing overhead or ambiguous framing. The protocol
/// is therefore deliberately minimal and fully deterministic:
///
///   frame    := magic:u32 | length:u32 | payload[length]
///   request  := id:u64 | verb:u8 | limit:u32 | deadline_ms:u32
///               | query_len:u32 | query[query_len]
///   response := id:u64 | status:u8 | flags:u8 | class:u8
///               | text_len:u32 | text[text_len]          (message/algorithm)
///               | body (by verb, see below)
///
/// All integers are little-endian. `magic` guards stream desynchronization
/// (a frame boundary computed from a corrupted length lands on garbage
/// with probability ~2^-32 instead of silently mis-parsing). `length`
/// counts payload bytes only and is bounded by kMaxFramePayload; an
/// oversized or bad-magic frame is a *framing* error — the stream can no
/// longer be trusted and the connection must close after an error
/// response. A well-framed request whose query text fails to parse is an
/// *application* error: the error response carries the request id and the
/// connection stays usable (pipelined successors are unaffected).
///
/// Request verbs:
///   kRows            phi(D) in full; body = rows.
///   kCount           |phi(D)|; body = decimal string.
///   kEnumerateLimit  the first `limit` answers in enumeration order
///                    (limit = 0 means all); body = rows. This is the
///                    verb that exposes the paper's constant-delay
///                    contract over the wire: k answers cost O(k) after
///                    preprocessing, independent of |phi(D)|.
///   kExplain         classification verdict + witness text; no execution.
///   kPing            liveness/ordering probe; empty body.
///
/// Response row body := arity:u32 | num_rows:u64 | values[num_rows*arity]
/// with each value an i64. Every encoder/decoder here is pure (buffers in,
/// structs out), so the whole protocol is unit-testable and fuzzable
/// without a socket in sight (see src/fgq/check/net_fuzz.h).

namespace fgq {
namespace net {

/// Frame magic: "FGQ1" little-endian.
inline constexpr uint32_t kFrameMagic = 0x31514746u;

/// Hard cap on a frame payload (requests and responses). Large enough for
/// several million answer rows, small enough that a hostile length prefix
/// cannot make the server allocate unbounded memory.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

/// Frame header size on the wire: magic + length.
inline constexpr size_t kFrameHeaderBytes = 8;

enum class Verb : uint8_t {
  kRows = 0,
  kCount = 1,
  kEnumerateLimit = 2,
  kExplain = 3,
  kPing = 4,
};

/// True for the verb values the protocol defines (decode rejects others).
bool VerbIsValid(uint8_t v);
const char* VerbName(Verb v);

/// A decoded request frame payload.
struct Request {
  uint64_t id = 0;
  Verb verb = Verb::kRows;
  /// kEnumerateLimit: max answers to return (0 = no limit). Ignored by
  /// the other verbs.
  uint32_t limit = 0;
  /// Per-request deadline in milliseconds (0 = none).
  uint32_t deadline_ms = 0;
  /// Datalog rule text, e.g. "Q(x) :- E(x, y).". Empty for kPing.
  std::string query;
};

/// Response flag bits.
inline constexpr uint8_t kFlagCacheHit = 1u << 0;

/// A decoded response frame payload. `status` mirrors fgq::StatusCode;
/// on error `text` is the message, on success it is the serving
/// algorithm ("constant-delay-enumeration", "cached", ...). The row body
/// is flat (row-major values) so it round-trips a Relation exactly.
struct Response {
  uint64_t id = 0;
  uint8_t status = 0;       ///< StatusCode as u8.
  uint8_t flags = 0;        ///< kFlag* bits.
  uint8_t classification = 0;  ///< QueryClass as u8 (valid on success).
  std::string text;         ///< Error message or algorithm name.
  /// kRows/kEnumerateLimit body. `nrows` is explicit on the wire rather
  /// than derived from values.size()/arity because arity-0 (Boolean)
  /// answers carry 0 values but 0-or-1 rows.
  uint32_t arity = 0;
  uint64_t nrows = 0;
  std::vector<Value> values;  ///< nrows * arity, row-major.
  /// kCount body: |phi(D)| as a decimal string (BigInt-safe).
  std::string count;
  /// kExplain body: the EXPLAIN text.
  std::string explain;

  bool ok() const { return status == 0; }
  bool cache_hit() const { return (flags & kFlagCacheHit) != 0; }
  size_t num_rows() const { return static_cast<size_t>(nrows); }
};

/// Appends a complete frame (header + payload) carrying `req` to `out`.
void EncodeRequest(const Request& req, std::string* out);

/// Appends a complete frame carrying `resp` to `out`. The verb selects
/// which body section is written and must match the request's.
void EncodeResponse(const Response& resp, Verb verb, std::string* out);

/// Decodes a request frame *payload* (the bytes after the 8-byte header).
/// Any violation — short buffer, unknown verb, length fields pointing
/// past the end, trailing garbage — returns ParseError; the caller must
/// treat the stream as lost.
Status DecodeRequest(const uint8_t* data, size_t len, Request* out);

/// Decodes a response frame payload. `verb` must be the verb of the
/// request this response answers (the client tracks it by id).
Status DecodeResponse(const uint8_t* data, size_t len, Verb verb,
                      Response* out);

/// Incremental frame extractor for a byte stream. Feed() appends raw
/// bytes; Next() yields complete payloads in order. A framing violation
/// (bad magic, oversized length) puts the reader into a terminal error
/// state: Next() returns the error forever and the connection owning the
/// stream must close. Truncated trailing bytes are not an error — they
/// are simply an incomplete frame awaiting more input.
class FrameReader {
 public:
  /// `max_payload` caps the accepted frame length (the server lowers it
  /// via NetServerOptions; kMaxFramePayload is the protocol ceiling).
  explicit FrameReader(uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(const uint8_t* data, size_t len);
  void Feed(const char* data, size_t len) {
    Feed(reinterpret_cast<const uint8_t*>(data), len);
  }

  /// Extraction result: kFrame fills `payload`, kNeedMore means feed more
  /// bytes, kError means the stream is desynchronized (error() explains).
  enum class State { kFrame, kNeedMore, kError };
  State Next(std::vector<uint8_t>* payload);

  const Status& error() const { return error_; }
  /// Bytes buffered but not yet extracted (for backpressure accounting).
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  uint32_t max_payload_;
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  ///< Consumed prefix of buf_ (compacted lazily).
  Status error_ = Status::OK();
};

}  // namespace net
}  // namespace fgq

#endif  // FGQ_NET_PROTOCOL_H_
