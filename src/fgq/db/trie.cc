#include "fgq/db/trie.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace fgq {

Trie::Trie(const Relation& rel, std::vector<size_t> col_order) {
  assert(!col_order.empty());
  const size_t depth = col_order.size();
  levels_.resize(depth);

  // Single sort of a row-index array by `col_order`, straight over the
  // row-major store — no reordered copy of the relation is materialized.
  const size_t n = rel.NumTuples();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const Value* ra = rel.RowData(a);
    const Value* rb = rel.RowData(b);
    for (size_t c : col_order) {
      if (ra[c] != rb[c]) return ra[c] < rb[c];
    }
    return false;
  });

  // One pass over the sorted rows builds every level at once: an open-node
  // stack holds the current path; each distinct row closes the open nodes
  // below its divergence level (their child range ends at the next level's
  // current size) and opens fresh ones. Duplicate rows (equal on all
  // `col_order` columns) are skipped, so leaf k is the k-th distinct
  // reordered tuple and leaves carry the row range [k, k+1).
  uint32_t leaves = 0;
  const Value* prev = nullptr;
  for (size_t r = 0; r < n; ++r) {
    const Value* row = rel.RowData(order[r]);
    size_t diverge = 0;
    if (prev != nullptr) {
      while (diverge < depth && row[col_order[diverge]] == prev[col_order[diverge]]) {
        ++diverge;
      }
      if (diverge == depth) continue;  // Duplicate tuple.
    }
    // Close open inner nodes from the bottom up to the divergence level.
    if (prev != nullptr) {
      for (size_t l = depth - 1; l-- > diverge;) {
        levels_[l].back().end = static_cast<uint32_t>(levels_[l + 1].size());
      }
    }
    // Open the new path; beginning each child range at the next level's
    // current size makes the level arrays a CSR by construction.
    for (size_t l = diverge; l + 1 < depth; ++l) {
      levels_[l].push_back(Node{row[col_order[l]],
                                static_cast<uint32_t>(levels_[l + 1].size()),
                                0});
    }
    levels_[depth - 1].push_back(Node{row[col_order[depth - 1]], leaves,
                                      leaves + 1});
    ++leaves;
    prev = row;
  }
  // Close whatever is still open after the last row.
  if (prev != nullptr) {
    for (size_t l = depth - 1; l-- > 0;) {
      levels_[l].back().end = static_cast<uint32_t>(levels_[l + 1].size());
    }
  }
}

const Trie::Node* Trie::Find(const std::vector<Node>& nodes, uint32_t begin,
                             uint32_t end, Value v) {
  const Node* lo = nodes.data() + begin;
  const Node* hi = nodes.data() + end;
  const Node* it = std::lower_bound(
      lo, hi, v, [](const Node& n, Value x) { return n.value < x; });
  if (it != hi && it->value == v) return it;
  return nullptr;
}

const Trie::Node* Trie::FindChild(size_t level, const Node& node,
                                  Value v) const {
  return Find(levels_[level + 1], node.begin, node.end, v);
}

const Trie::Node* Trie::FindRoot(Value v) const {
  return Find(levels_[0], 0, static_cast<uint32_t>(levels_[0].size()), v);
}

}  // namespace fgq
