#include "fgq/db/trie.h"

#include <algorithm>
#include <cassert>

namespace fgq {

Trie::Trie(const Relation& rel, std::vector<size_t> col_order) {
  assert(!col_order.empty());
  const size_t depth = col_order.size();
  levels_.resize(depth);

  // Materialize the reordered, sorted, deduplicated tuple list first.
  Relation reordered = rel.Project(col_order, rel.name());
  const size_t n = reordered.NumTuples();

  // Build levels top-down: at each level, split each parent range into runs
  // of equal values.
  struct Range {
    uint32_t begin;
    uint32_t end;
  };
  std::vector<Range> ranges = {{0, static_cast<uint32_t>(n)}};
  for (size_t level = 0; level < depth; ++level) {
    std::vector<Range> next_ranges;
    for (const Range& r : ranges) {
      uint32_t i = r.begin;
      while (i < r.end) {
        Value v = reordered.RowData(i)[level];
        uint32_t j = i + 1;
        while (j < r.end && reordered.RowData(j)[level] == v) ++j;
        levels_[level].push_back(Node{v, i, j});
        next_ranges.push_back(Range{i, j});
        i = j;
      }
    }
    ranges = std::move(next_ranges);
  }

  // Rewrite child pointers from row ranges to node ranges: nodes on level
  // L+1 were emitted in row order, so for each level-L node we locate the
  // node span covering its row range. Both sequences are sorted by row
  // begin, so a single linear pass suffices.
  for (size_t level = 0; level + 1 < depth; ++level) {
    const std::vector<Node>& child = levels_[level + 1];
    size_t c = 0;
    for (Node& node : levels_[level]) {
      while (c < child.size() && child[c].begin < node.begin) ++c;
      uint32_t first = static_cast<uint32_t>(c);
      size_t c2 = c;
      while (c2 < child.size() && child[c2].begin < node.end) ++c2;
      uint32_t last = static_cast<uint32_t>(c2);
      node.begin = first;
      node.end = last;
      c = c2;
    }
  }
}

const Trie::Node* Trie::Find(const std::vector<Node>& nodes, uint32_t begin,
                             uint32_t end, Value v) {
  const Node* lo = nodes.data() + begin;
  const Node* hi = nodes.data() + end;
  const Node* it = std::lower_bound(
      lo, hi, v, [](const Node& n, Value x) { return n.value < x; });
  if (it != hi && it->value == v) return it;
  return nullptr;
}

const Trie::Node* Trie::FindChild(size_t level, const Node& node,
                                  Value v) const {
  return Find(levels_[level + 1], node.begin, node.end, v);
}

const Trie::Node* Trie::FindRoot(Value v) const {
  return Find(levels_[0], 0, static_cast<uint32_t>(levels_[0].size()), v);
}

}  // namespace fgq
