#include "fgq/db/relation.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

namespace fgq {

void Relation::Add(const Tuple& t) {
  assert(t.size() == arity_);
  if (arity_ == 0) {
    zero_arity_count_ = 1;
    return;
  }
  data_.insert(data_.end(), t.begin(), t.end());
}

void Relation::AddRow(const Value* t) {
  if (arity_ == 0) {
    zero_arity_count_ = 1;
    return;
  }
  data_.insert(data_.end(), t, t + arity_);
}

void Relation::AddNullary() {
  assert(arity_ == 0);
  zero_arity_count_ = 1;
}

namespace {

// Sorts row indexes of a flat row-major buffer by the given column order
// and rewrites the buffer in place.
void SortRows(std::vector<Value>* data, size_t arity,
              const std::vector<size_t>& cols) {
  if (arity == 0 || data->empty()) return;
  const size_t n = data->size() / arity;
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const Value* base = data->data();
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const Value* ra = base + static_cast<size_t>(a) * arity;
    const Value* rb = base + static_cast<size_t>(b) * arity;
    for (size_t c : cols) {
      if (ra[c] != rb[c]) return ra[c] < rb[c];
    }
    return false;
  });
  std::vector<Value> out(data->size());
  for (size_t i = 0; i < n; ++i) {
    const Value* src = base + static_cast<size_t>(order[i]) * arity;
    std::copy(src, src + arity, out.begin() + i * arity);
  }
  *data = std::move(out);
}

}  // namespace

void Relation::SortDedup() {
  if (arity_ == 0 || data_.empty()) return;
  std::vector<size_t> cols(arity_);
  std::iota(cols.begin(), cols.end(), 0);
  SortRows(&data_, arity_, cols);
  // In-place dedup of equal consecutive rows.
  size_t n = data_.size() / arity_;
  size_t w = 1;
  for (size_t i = 1; i < n; ++i) {
    const Value* prev = &data_[(w - 1) * arity_];
    const Value* cur = &data_[i * arity_];
    if (!std::equal(cur, cur + arity_, prev)) {
      if (w != i) std::copy(cur, cur + arity_, data_.begin() + w * arity_);
      ++w;
    }
  }
  data_.resize(w * arity_);
}

void Relation::SortBy(const std::vector<size_t>& cols) {
  SortRows(&data_, arity_, cols);
}

Relation Relation::Project(const std::vector<size_t>& cols,
                           const std::string& name) const {
  Relation out(name, cols.size());
  const size_t n = NumTuples();
  if (cols.empty()) {
    if (n > 0) out.AddNullary();
    return out;
  }
  Tuple t(cols.size());
  for (size_t i = 0; i < n; ++i) {
    const Value* row = RowData(i);
    for (size_t j = 0; j < cols.size(); ++j) t[j] = row[cols[j]];
    out.Add(t);
  }
  out.SortDedup();
  return out;
}

void Relation::Filter(const std::function<bool(TupleView)>& pred) {
  if (arity_ == 0) {
    if (zero_arity_count_ > 0 && !pred(TupleView{nullptr, 0})) {
      zero_arity_count_ = 0;
    }
    return;
  }
  size_t n = NumTuples();
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    if (pred(Row(i))) {
      if (w != i) {
        std::copy(RowData(i), RowData(i) + arity_, data_.begin() + w * arity_);
      }
      ++w;
    }
  }
  data_.resize(w * arity_);
}

bool Relation::Contains(const Tuple& t) const {
  assert(t.size() == arity_);
  if (arity_ == 0) return zero_arity_count_ > 0;
  const size_t n = NumTuples();
  for (size_t i = 0; i < n; ++i) {
    if (std::equal(t.begin(), t.end(), RowData(i))) return true;
  }
  return false;
}

Value Relation::MaxValue() const {
  Value m = -1;
  for (Value v : data_) m = std::max(m, v);
  return m;
}

std::string Relation::ToString(size_t limit) const {
  std::ostringstream os;
  os << name_ << "/" << arity_ << " [" << NumTuples() << " tuples]";
  const size_t n = std::min(limit, NumTuples());
  for (size_t i = 0; i < n; ++i) {
    os << "\n  (";
    for (size_t j = 0; j < arity_; ++j) {
      if (j) os << ", ";
      os << Row(i)[j];
    }
    os << ")";
  }
  if (NumTuples() > limit) os << "\n  ...";
  return os.str();
}

}  // namespace fgq
