#include "fgq/db/relation.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>
#include <sstream>

namespace fgq {

namespace {

/// Row count below which parallel mutators fall back to the serial path:
/// scheduling a morsel costs more than sorting a few thousand rows.
constexpr size_t kParallelRowCutoff = size_t{1} << 13;

}  // namespace

void Relation::Add(const Tuple& t) {
  assert(t.size() == arity_);
  if (arity_ == 0) {
    zero_arity_count_ = 1;
    return;
  }
  data_.insert(data_.end(), t.begin(), t.end());
  ++num_tuples_;
}

void Relation::AddRow(const Value* t) {
  if (arity_ == 0) {
    zero_arity_count_ = 1;
    return;
  }
  data_.insert(data_.end(), t, t + arity_);
  ++num_tuples_;
}

void Relation::AddNullary() {
  assert(arity_ == 0);
  zero_arity_count_ = 1;
}

void Relation::AppendRows(const Value* rows, size_t num_rows) {
  if (arity_ == 0) {
    if (num_rows > 0) zero_arity_count_ = 1;
    return;
  }
  data_.insert(data_.end(), rows, rows + num_rows * arity_);
  num_tuples_ += num_rows;
}

void Relation::AppendFrom(const Relation& other) {
  assert(other.arity_ == arity_);
  if (arity_ == 0) {
    if (other.NumTuples() > 0) zero_arity_count_ = 1;
    return;
  }
  AppendRows(other.data_.data(), other.num_tuples_);
}

namespace {

// Sorts row indexes of a flat row-major buffer by the given column order
// and rewrites the buffer in place.
void SortRows(std::vector<Value>* data, size_t arity,
              const std::vector<size_t>& cols) {
  if (arity == 0 || data->empty()) return;
  const size_t n = data->size() / arity;
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const Value* base = data->data();
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const Value* ra = base + static_cast<size_t>(a) * arity;
    const Value* rb = base + static_cast<size_t>(b) * arity;
    for (size_t c : cols) {
      if (ra[c] != rb[c]) return ra[c] < rb[c];
    }
    return false;
  });
  std::vector<Value> out(data->size());
  for (size_t i = 0; i < n; ++i) {
    const Value* src = base + static_cast<size_t>(order[i]) * arity;
    std::copy(src, src + arity, out.begin() + i * arity);
  }
  *data = std::move(out);
}

}  // namespace

void Relation::SortDedup() {
  if (arity_ == 0 || data_.empty()) return;
  std::vector<size_t> cols(arity_);
  std::iota(cols.begin(), cols.end(), 0);
  SortRows(&data_, arity_, cols);
  // In-place dedup of equal consecutive rows.
  size_t n = data_.size() / arity_;
  size_t w = 1;
  for (size_t i = 1; i < n; ++i) {
    const Value* prev = &data_[(w - 1) * arity_];
    const Value* cur = &data_[i * arity_];
    if (!std::equal(cur, cur + arity_, prev)) {
      if (w != i) std::copy(cur, cur + arity_, data_.begin() + w * arity_);
      ++w;
    }
  }
  data_.resize(w * arity_);
  num_tuples_ = w;
}

void Relation::SortDedup(const ExecContext& ctx) {
  ThreadPool* pool = ctx.pool();
  const size_t n = NumTuples();
  if (pool == nullptr || pool->num_threads() <= 1 || arity_ == 0 ||
      n < kParallelRowCutoff) {
    SortDedup();
    return;
  }
  // Morsel-parallel sort: each chunk of the row-index array is sorted by a
  // pool lane, then one dedup pass k-way-merges the sorted runs. The
  // output is the canonical sorted set, identical to the serial result.
  const size_t arity = arity_;
  const Value* base = data_.data();
  auto row_less = [base, arity](uint32_t a, uint32_t b) {
    const Value* ra = base + static_cast<size_t>(a) * arity;
    const Value* rb = base + static_cast<size_t>(b) * arity;
    for (size_t c = 0; c < arity; ++c) {
      if (ra[c] != rb[c]) return ra[c] < rb[c];
    }
    return false;
  };
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const size_t num_runs =
      std::min<size_t>(pool->num_threads(), (n + kParallelRowCutoff - 1) /
                                                kParallelRowCutoff);
  const size_t run_len = (n + num_runs - 1) / num_runs;
  pool->ParallelFor(num_runs, 1, [&](size_t rb, size_t re) {
    for (size_t r = rb; r < re; ++r) {
      const size_t begin = r * run_len;
      const size_t end = std::min(n, begin + run_len);
      std::sort(order.begin() + begin, order.begin() + end, row_less);
    }
  });

  // K-way merge with dedup into a fresh buffer.
  struct RunCursor {
    size_t pos;
    size_t end;
  };
  std::vector<RunCursor> runs;
  for (size_t r = 0; r < num_runs; ++r) {
    const size_t begin = r * run_len;
    const size_t end = std::min(n, begin + run_len);
    if (begin < end) runs.push_back({begin, end});
  }
  auto heap_greater = [&](size_t a, size_t b) {
    // Min-heap on the head rows; ties broken by run index for stability.
    if (row_less(order[runs[a].pos], order[runs[b].pos])) return false;
    if (row_less(order[runs[b].pos], order[runs[a].pos])) return true;
    return a > b;
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(heap_greater)>
      heap(heap_greater);
  for (size_t r = 0; r < runs.size(); ++r) heap.push(r);
  std::vector<Value> out;
  out.reserve(data_.size());
  size_t written = 0;
  while (!heap.empty()) {
    const size_t r = heap.top();
    heap.pop();
    const Value* row = base + static_cast<size_t>(order[runs[r].pos]) * arity;
    const bool duplicate =
        written > 0 &&
        std::equal(row, row + arity, out.data() + (written - 1) * arity);
    if (!duplicate) {
      out.insert(out.end(), row, row + arity);
      ++written;
    }
    if (++runs[r].pos < runs[r].end) heap.push(r);
  }
  data_ = std::move(out);
  num_tuples_ = written;
}

void Relation::SortBy(const std::vector<size_t>& cols) {
  SortRows(&data_, arity_, cols);
}

Relation Relation::Project(const std::vector<size_t>& cols,
                           const std::string& name) const {
  return Project(cols, name, ExecContext());
}

Relation Relation::Project(const std::vector<size_t>& cols,
                           const std::string& name,
                           const ExecContext& ctx) const {
  Relation out(name, cols.size());
  const size_t n = NumTuples();
  if (cols.empty()) {
    if (n > 0) out.AddNullary();
    return out;
  }
  ThreadPool* pool = ctx.pool();
  if (pool == nullptr || pool->num_threads() <= 1 || n < kParallelRowCutoff) {
    Tuple t(cols.size());
    for (size_t i = 0; i < n; ++i) {
      const Value* row = RowData(i);
      for (size_t j = 0; j < cols.size(); ++j) t[j] = row[cols[j]];
      out.Add(t);
    }
    out.SortDedup(ctx);
    return out;
  }
  // Morsel-parallel projection into chunk-local buffers, re-stitched in
  // input order (the trailing SortDedup canonicalizes anyway).
  const size_t grain = ctx.morsel_size();
  const size_t num_chunks = (n + grain - 1) / grain;
  std::vector<std::vector<Value>> parts(num_chunks);
  pool->ParallelFor(n, grain, [&](size_t begin, size_t end) {
    std::vector<Value>& part = parts[begin / grain];
    part.reserve((end - begin) * cols.size());
    for (size_t i = begin; i < end; ++i) {
      const Value* row = RowData(i);
      for (size_t j = 0; j < cols.size(); ++j) part.push_back(row[cols[j]]);
    }
  });
  out.Reserve(n);
  for (const std::vector<Value>& part : parts) {
    out.AppendRows(part.data(), part.size() / cols.size());
  }
  out.SortDedup(ctx);
  return out;
}

void Relation::CompactRows(const std::vector<uint8_t>& keep) {
  assert(keep.size() == NumTuples());
  if (arity_ == 0) {
    if (zero_arity_count_ > 0 && !keep[0]) zero_arity_count_ = 0;
    return;
  }
  const size_t n = NumTuples();
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!keep[i]) continue;
    if (w != i) {
      std::copy(RowData(i), RowData(i) + arity_, data_.begin() + w * arity_);
    }
    ++w;
  }
  data_.resize(w * arity_);
  num_tuples_ = w;
}

void Relation::Filter(const std::function<bool(TupleView)>& pred) {
  if (arity_ == 0) {
    if (zero_arity_count_ > 0 && !pred(TupleView{nullptr, 0})) {
      zero_arity_count_ = 0;
    }
    return;
  }
  size_t n = NumTuples();
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    if (pred(Row(i))) {
      if (w != i) {
        std::copy(RowData(i), RowData(i) + arity_, data_.begin() + w * arity_);
      }
      ++w;
    }
  }
  data_.resize(w * arity_);
  num_tuples_ = w;
}

void Relation::Filter(const std::function<bool(TupleView)>& pred,
                      const ExecContext& ctx) {
  ThreadPool* pool = ctx.pool();
  const size_t n = NumTuples();
  if (pool == nullptr || pool->num_threads() <= 1 || arity_ == 0 ||
      n < kParallelRowCutoff) {
    Filter(pred);
    return;
  }
  // Evaluate the predicate morsel-parallel, then compact serially (the
  // compaction is a straight memmove pass, well under the predicate cost).
  std::vector<uint8_t> keep(n);
  pool->ParallelFor(n, ctx.morsel_size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      keep[i] = pred(Row(i)) ? 1 : 0;
    }
  });
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!keep[i]) continue;
    if (w != i) {
      std::copy(RowData(i), RowData(i) + arity_, data_.begin() + w * arity_);
    }
    ++w;
  }
  data_.resize(w * arity_);
  num_tuples_ = w;
}

bool Relation::Contains(const Tuple& t) const {
  assert(t.size() == arity_);
  if (arity_ == 0) return zero_arity_count_ > 0;
  const size_t n = NumTuples();
  for (size_t i = 0; i < n; ++i) {
    if (std::equal(t.begin(), t.end(), RowData(i))) return true;
  }
  return false;
}

Value Relation::MaxValue() const {
  Value m = -1;
  for (Value v : data_) m = std::max(m, v);
  return m;
}

std::string Relation::ToString(size_t limit) const {
  std::ostringstream os;
  os << name_ << "/" << arity_ << " [" << NumTuples() << " tuples]";
  const size_t n = std::min(limit, NumTuples());
  for (size_t i = 0; i < n; ++i) {
    os << "\n  (";
    for (size_t j = 0; j < arity_; ++j) {
      if (j) os << ", ";
      os << Row(i)[j];
    }
    os << ")";
  }
  if (NumTuples() > limit) os << "\n  ...";
  return os.str();
}

}  // namespace fgq
