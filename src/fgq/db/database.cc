#include "fgq/db/database.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace fgq {

Status Database::AddRelation(Relation rel) {
  std::string name = rel.name();
  auto [it, inserted] = relations_.try_emplace(name, std::move(rel));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  ++version_;
  return Status::OK();
}

void Database::PutRelation(Relation rel) {
  std::string name = rel.name();
  relations_.insert_or_assign(std::move(name), std::move(rel));
  ++version_;
}

Result<const Relation*> Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not found");
  }
  return &it->second;
}

Result<Relation*> Database::FindMutable(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not found");
  }
  ++version_;
  return &it->second;
}

Value Database::DomainSize() const {
  Value m = declared_domain_;
  for (const auto& [name, rel] : relations_) {
    m = std::max(m, rel.MaxValue() + 1);
  }
  return m;
}

size_t Database::SizeWeight() const {
  size_t total = relations_.size() + static_cast<size_t>(DomainSize());
  for (const auto& [name, rel] : relations_) total += rel.SizeWeight();
  return total;
}

size_t Database::Degree() const {
  std::unordered_map<Value, size_t> deg;
  for (const auto& [name, rel] : relations_) {
    const size_t n = rel.NumTuples();
    const size_t k = rel.arity();
    for (size_t i = 0; i < n; ++i) {
      const Value* row = rel.RowData(i);
      // An element's degree counts tuples, not positions: dedup positions
      // within one tuple.
      for (size_t j = 0; j < k; ++j) {
        bool seen_before = false;
        for (size_t l = 0; l < j; ++l) {
          if (row[l] == row[j]) {
            seen_before = true;
            break;
          }
        }
        if (!seen_before) ++deg[row[j]];
      }
    }
  }
  size_t m = 0;
  for (const auto& [v, d] : deg) m = std::max(m, d);
  return m;
}

std::string Database::ToString(size_t per_relation_limit) const {
  std::ostringstream os;
  os << "Database(|dom|=" << DomainSize() << ", ||D||=" << SizeWeight() << ")";
  for (const auto& [name, rel] : relations_) {
    os << "\n" << rel.ToString(per_relation_limit);
  }
  return os.str();
}

}  // namespace fgq
