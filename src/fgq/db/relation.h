#ifndef FGQ_DB_RELATION_H_
#define FGQ_DB_RELATION_H_

#include <cassert>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "fgq/db/value.h"
#include "fgq/util/exec_options.h"
#include "fgq/util/status.h"

/// \file relation.h
/// Row-major relation storage.
///
/// A Relation is a named bag of fixed-arity tuples stored contiguously
/// (row-major in one flat vector). All evaluation algorithms treat
/// relations as sets; Relation::SortDedup establishes set semantics in
/// O(N log N), matching the paper's convention that the input encoding
/// induces a linear order on tuples. The mutators that dominate hot loops
/// (SortDedup, Filter, Project) have morsel-parallel variants taking an
/// ExecContext; with a serial context they are bit-for-bit identical to
/// the plain overloads.

namespace fgq {

/// A borrowed view of one tuple (a row of a Relation).
struct TupleView {
  const Value* data = nullptr;
  size_t arity = 0;

  Value operator[](size_t i) const { return data[i]; }
  Tuple ToTuple() const { return Tuple(data, data + arity); }
};

/// A named finite relation of fixed arity.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, size_t arity)
      : name_(std::move(name)), arity_(arity) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  size_t arity() const { return arity_; }
  /// Cached tuple count — no division on the hot path.
  size_t NumTuples() const {
    assert(arity_ == 0 || data_.size() % arity_ == 0);
    assert(arity_ == 0 || num_tuples_ == data_.size() / arity_);
    return arity_ == 0 ? zero_arity_count_ : num_tuples_;
  }
  bool empty() const { return NumTuples() == 0; }

  /// ||R|| contribution in the paper's size measure: #tuples * arity.
  size_t SizeWeight() const { return NumTuples() * arity_; }

  /// Appends a tuple. The tuple length must equal arity().
  void Add(const Tuple& t);
  /// Appends a tuple from a raw pointer of arity() values. (Named
  /// differently from Add so brace-initializer calls never decay to a
  /// null pointer.)
  void AddRow(const Value* t);
  /// Appends a 0-ary "present" marker (for Boolean relations).
  void AddNullary();
  /// Bulk-appends `num_rows` rows of arity() values each (used to stitch
  /// morsel-local results back together in input order).
  void AppendRows(const Value* rows, size_t num_rows);
  /// Appends every row of `other` (same arity required).
  void AppendFrom(const Relation& other);
  /// Pre-sizes the backing store for `num_rows` rows.
  void Reserve(size_t num_rows) { data_.reserve(num_rows * arity_); }

  /// Returns the i-th row (data pointer is null for 0-ary relations).
  TupleView Row(size_t i) const { return TupleView{RowData(i), arity_}; }
  /// Raw access used by hot loops.
  const Value* RowData(size_t i) const {
    return arity_ == 0 ? nullptr : data_.data() + i * arity_;
  }
  const std::vector<Value>& raw() const { return data_; }

  /// Sorts rows lexicographically and removes duplicates (set semantics).
  void SortDedup();
  /// Parallel variant: morsel-local sorts plus a dedup merge. The result
  /// is the same canonical sorted set for any thread count.
  void SortDedup(const ExecContext& ctx);

  /// Sorts rows lexicographically by the given column permutation/subset
  /// order, e.g. {1,0} sorts by column 1 then column 0.
  void SortBy(const std::vector<size_t>& cols);

  /// Returns the projection of this relation onto `cols` (with dedup).
  Relation Project(const std::vector<size_t>& cols,
                   const std::string& name) const;
  /// Parallel variant (same result for any thread count).
  Relation Project(const std::vector<size_t>& cols, const std::string& name,
                   const ExecContext& ctx) const;

  /// Keeps exactly the rows whose byte in `keep` is nonzero (one byte per
  /// row, keep.size() == NumTuples()): a single compaction pass, used by
  /// the selection-vector semijoin sweeps to materialize their survivors
  /// once at the end of preprocessing.
  void CompactRows(const std::vector<uint8_t>& keep);

  /// Keeps only the rows satisfying `pred`.
  void Filter(const std::function<bool(TupleView)>& pred);
  /// Parallel variant: `pred` is invoked concurrently from pool threads
  /// (it must be thread-safe); rows keep their relative order.
  void Filter(const std::function<bool(TupleView)>& pred,
              const ExecContext& ctx);

  /// True if some row equals `t` (linear scan; use HashIndex for bulk).
  bool Contains(const Tuple& t) const;

  /// Largest value appearing in the relation, or -1 when empty.
  Value MaxValue() const;

  /// Renders up to `limit` tuples for debugging/examples.
  std::string ToString(size_t limit = 20) const;

 private:
  std::string name_;
  size_t arity_ = 0;
  size_t zero_arity_count_ = 0;
  size_t num_tuples_ = 0;  // data_.size() / arity_, maintained by mutators.
  std::vector<Value> data_;
};

}  // namespace fgq

#endif  // FGQ_DB_RELATION_H_
