#ifndef FGQ_DB_DATABASE_H_
#define FGQ_DB_DATABASE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fgq/db/relation.h"
#include "fgq/util/status.h"

/// \file database.h
/// A database is a finite relational structure: a set of named relations
/// over a shared integer domain (Section 2.1 of the paper).

namespace fgq {

/// A finite relational structure.
///
/// The database carries a monotonic *version* counter, bumped by every
/// mutating entry point (AddRelation, PutRelation, FindMutable,
/// DeclareDomainSize). The serving layer keys cached plans by
/// (canonical query, version), so any mutation — even one that does not
/// change a queried relation — conservatively invalidates every cached
/// plan. Mutation is not thread-safe and must not race with readers;
/// version() may be read concurrently between mutations.
class Database {
 public:
  /// Adds a relation; fails if a relation with the same name exists.
  Status AddRelation(Relation rel);

  /// Adds or replaces a relation.
  void PutRelation(Relation rel);

  /// Looks up a relation by name.
  Result<const Relation*> Find(const std::string& name) const;

  /// Mutable lookup (used by rewriting passes that enrich the database).
  /// Conservatively counts as a mutation: the version is bumped even if
  /// the caller never writes through the returned pointer.
  Result<Relation*> FindMutable(const std::string& name);

  /// Monotonic mutation counter, starting at 1 for a fresh database.
  uint64_t version() const { return version_; }

  bool Has(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

  /// Number of distinct domain elements assumed: 1 + the largest value in
  /// any relation, unless a larger domain was declared explicitly.
  Value DomainSize() const;

  /// Declares that the domain is [0, n) even if not all values occur.
  void DeclareDomainSize(Value n) {
    declared_domain_ = n;
    ++version_;
  }

  /// ||D|| in the paper's size measure (Section 2.1).
  size_t SizeWeight() const;

  /// The degree of the structure: the maximum over domain elements of the
  /// number of tuples the element appears in (Section 3.1).
  size_t Degree() const;

  std::string ToString(size_t per_relation_limit = 10) const;

 private:
  std::map<std::string, Relation> relations_;
  Value declared_domain_ = 0;
  uint64_t version_ = 1;
};

}  // namespace fgq

#endif  // FGQ_DB_DATABASE_H_
