#ifndef FGQ_DB_INDEX_H_
#define FGQ_DB_INDEX_H_

#include <cstdint>
#include <vector>

#include "fgq/db/relation.h"
#include "fgq/util/exec_options.h"
#include "fgq/util/hash.h"

/// \file index.h
/// Flat hash index over a subset of a relation's columns.
///
/// Used by semijoins, joins, and the constant-delay enumeration phase:
/// a single O(N) build gives O(1) expected probes, which is what turns
/// Yannakakis' passes into the linear-time preprocessing the paper's
/// Constant-Delay_lin class requires.
///
/// Layout (everything flat, no per-key heap nodes):
///
///   slot_group_ : open-addressing linear-probing table of group ids,
///                 addressed by the 64-bit key hash. Load factor <= 1/2.
///   group_hash_ : the key hash of each group (probe short-circuit; a
///                 full-hash match is verified against the group's first
///                 row, so 64-bit collisions stay correct).
///   offsets_    : CSR offsets, one entry per group plus a sentinel.
///   row_ids_    : CSR payload, the matching row ids per group
///                 (ascending within a group).
///
/// Keys are hashed directly out of the row-major Relation store; neither
/// the build nor a probe ever materializes a Tuple. The index borrows
/// `rel` — the relation must stay alive and unmodified while the index is
/// in use (probes compare key columns against representative rows).
///
/// Large relations are hash-partitioned into a fixed number of shards; a
/// parallel build (ExecContext with a pool) scatters rows morsel by morsel
/// and populates every shard concurrently. The shard count depends only on
/// the relation size — never on the thread count — and rows enter each
/// shard in ascending row order either way, so the built arrays are
/// bit-identical for any thread count (the determinism contract the
/// differential fuzzer checks).

namespace fgq {

/// Immutable flat hash index mapping key-column values to the matching row
/// ids (ascending per key).
class HashIndex {
 public:
  /// A borrowed view of one key's matching row ids, valid for the lifetime
  /// of the index.
  struct RowSpan {
    const uint32_t* data = nullptr;
    size_t count = 0;

    const uint32_t* begin() const { return data; }
    const uint32_t* end() const { return data + count; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    uint32_t operator[](size_t i) const { return data[i]; }
  };

  /// Builds an index on `rel` keyed by `key_cols` (in that order).
  HashIndex(const Relation& rel, std::vector<size_t> key_cols);
  /// Morsel-parallel build; bit-identical to the serial one.
  HashIndex(const Relation& rel, std::vector<size_t> key_cols,
            const ExecContext& ctx);

  /// Rows whose key columns equal `key`.
  RowSpan Lookup(const Tuple& key) const {
    return ProbeGather([&](size_t j) { return key[j]; });
  }

  /// Probe from `key_cols().size()` contiguous values. always_inline for
  /// the same reason as ProbeGather: these wrappers sit in per-tuple loops.
  __attribute__((always_inline)) RowSpan LookupKey(const Value* key) const {
    return ProbeGather([&](size_t j) { return key[j]; });
  }

  /// Probe from a full row of another relation: gathers `probe_cols` from
  /// `row` on the fly — no temporary key is built.
  __attribute__((always_inline)) RowSpan LookupRow(
      const Value* row, const std::vector<size_t>& probe_cols) const {
    return ProbeGather([&](size_t j) { return row[probe_cols[j]]; });
  }

  bool ContainsKey(const Tuple& key) const { return !Lookup(key).empty(); }

  /// Number of distinct keys; cached at build time, O(1).
  size_t NumKeys() const { return num_keys_; }
  const std::vector<size_t>& key_cols() const { return key_cols_; }

  /// Heap footprint of the built arrays, in bytes (the borrowed relation
  /// is not counted). Feeds the `index_bytes` trace counter.
  size_t MemoryBytes() const {
    return slot_group_.capacity() * sizeof(uint32_t) +
           group_hash_.capacity() * sizeof(uint64_t) +
           offsets_.capacity() * sizeof(uint32_t) +
           row_ids_.capacity() * sizeof(uint32_t) +
           shards_.capacity() * sizeof(ShardMeta);
  }

  /// Raw layout accessors, used by the determinism tests (serial and
  /// parallel builds must produce bit-identical arrays).
  const std::vector<uint32_t>& offsets() const { return offsets_; }
  const std::vector<uint32_t>& row_ids() const { return row_ids_; }
  const std::vector<uint32_t>& slots() const { return slot_group_; }

 private:
  static constexpr uint32_t kEmptySlot = 0xffffffffu;

  /// Slot region of one hash shard inside slot_group_.
  struct ShardMeta {
    uint32_t slot_base = 0;
    uint32_t slot_mask = 0;   // Shard capacity - 1 (capacity is a power of 2).
    uint32_t group_base = 0;  // First global group id of the shard.
  };

  void Build(const Relation& rel, const ExecContext* ctx);

  /// Small-relation build (below the sharding cutoff): hash, group, and
  /// scatter fused into two row passes. Kept out of Build so the hot
  /// grouping loop gets its own register allocation, independent of the
  /// staged pipeline's many live ranges.
  void BuildFused(const Relation& rel);

  /// Hashes the key columns of a stored row (no materialization).
  uint64_t HashRowKey(const Value* row) const {
    uint64_t h = kKeySeed;
    for (size_t c : key_cols_) {
      h = HashCombine(h, static_cast<uint64_t>(row[c]));
    }
    return h;
  }

  /// Shared probe: `key_at(j)` yields the j-th key value. Returns the CSR
  /// span of the matching group, or an empty span. always_inline: every
  /// caller is a per-tuple probe loop, and the key gather (`key_at`) only
  /// folds into the hash/verify code when this lands in the caller — GCC's
  /// unit-growth budget otherwise outlines it in large translation units.
  template <typename KeyAt>
  __attribute__((always_inline)) RowSpan ProbeGather(KeyAt&& key_at) const {
    if (key_cols_.empty() || row_ids_.empty()) {
      // Empty key: one group holding every row (empty when the relation
      // is). The arrays are already in that trivial shape.
      return num_keys_ == 0 ? RowSpan{}
                            : RowSpan{row_ids_.data(), row_ids_.size()};
    }
    uint64_t h = kKeySeed;
    for (size_t j = 0; j < key_cols_.size(); ++j) {
      h = HashCombine(h, static_cast<uint64_t>(key_at(j)));
    }
    const ShardMeta& m = shards_[h & shard_mask_];
    size_t idx = (h >> shard_bits_) & m.slot_mask;
    for (;;) {
      const uint32_t g = slot_group_[m.slot_base + idx];
      if (g == kEmptySlot) return RowSpan{};
      if (group_hash_[g] == h) {
        // Verify against the group's first row (guards 64-bit collisions).
        const Value* rep = rel_->RowData(row_ids_[offsets_[g]]);
        bool eq = true;
        for (size_t j = 0; j < key_cols_.size(); ++j) {
          if (rep[key_cols_[j]] != key_at(j)) {
            eq = false;
            break;
          }
        }
        if (eq) {
          return RowSpan{row_ids_.data() + offsets_[g],
                         static_cast<size_t>(offsets_[g + 1] - offsets_[g])};
        }
      }
      idx = (idx + 1) & m.slot_mask;
    }
  }

  // Seed of the key hash chain (matches HashSpan's).
  static constexpr uint64_t kKeySeed = 0x51ed270b0a4725a3ULL;

  const Relation* rel_ = nullptr;
  std::vector<size_t> key_cols_;
  size_t num_keys_ = 0;

  std::vector<uint32_t> slot_group_;  // All shard slot regions, concatenated.
  std::vector<uint64_t> group_hash_;  // Per group.
  std::vector<uint32_t> offsets_;     // num_keys_ + 1 entries.
  std::vector<uint32_t> row_ids_;     // One entry per indexed row.
  std::vector<ShardMeta> shards_;
  size_t shard_mask_ = 0;
  unsigned shard_bits_ = 0;
};

}  // namespace fgq

#endif  // FGQ_DB_INDEX_H_
