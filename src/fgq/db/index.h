#ifndef FGQ_DB_INDEX_H_
#define FGQ_DB_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fgq/db/relation.h"
#include "fgq/util/exec_options.h"
#include "fgq/util/hash.h"

/// \file index.h
/// Hash index over a subset of a relation's columns.
///
/// Used by semijoins, joins, and the constant-delay enumeration phase:
/// a single O(N) build gives O(1) expected probes, which is what turns
/// Yannakakis' passes into the linear-time preprocessing the paper's
/// Constant-Delay_lin class requires.
///
/// Internally the index is split into hash-partitioned shards. A serial
/// build uses one shard; a parallel build (ExecContext with a pool)
/// scatters row ids to shards morsel by morsel, then populates every
/// shard concurrently. Because a key lives in exactly one shard and rows
/// are inserted in ascending row order either way, the built index is
/// identical for any thread count.

namespace fgq {

/// Immutable hash index mapping key-column values to the matching row ids
/// (ascending per key).
class HashIndex {
 public:
  /// Builds an index on `rel` keyed by `key_cols` (in that order).
  HashIndex(const Relation& rel, std::vector<size_t> key_cols);
  /// Morsel-parallel build; equivalent to the serial one.
  HashIndex(const Relation& rel, std::vector<size_t> key_cols,
            const ExecContext& ctx);

  /// Rows whose key columns equal `key`. The returned reference is valid
  /// for the lifetime of the index.
  const std::vector<uint32_t>& Lookup(const Tuple& key) const;

  /// Convenience probe from a full row of another relation: extracts
  /// `probe_cols` from `row` and looks them up.
  const std::vector<uint32_t>& LookupRow(
      const Value* row, const std::vector<size_t>& probe_cols) const;

  bool ContainsKey(const Tuple& key) const { return !Lookup(key).empty(); }

  size_t NumKeys() const;
  const std::vector<size_t>& key_cols() const { return key_cols_; }

 private:
  using Shard = std::unordered_map<Tuple, std::vector<uint32_t>, VecHash>;

  void BuildSerial(const Relation& rel);
  void BuildParallel(const Relation& rel, const ExecContext& ctx);

  std::vector<size_t> key_cols_;
  std::vector<Shard> shards_;  // Size is a power of two.
  size_t shard_mask_ = 0;      // shards_.size() - 1.
  std::vector<uint32_t> empty_;
};

}  // namespace fgq

#endif  // FGQ_DB_INDEX_H_
