#ifndef FGQ_DB_TRIE_H_
#define FGQ_DB_TRIE_H_

#include <cstdint>
#include <vector>

#include "fgq/db/relation.h"

/// \file trie.h
/// A level-array trie over a relation.
///
/// The trie stores the relation's tuples sorted by a chosen column order,
/// compressed into per-level arrays of (value, child range) nodes. It is
/// the data structure behind the constant-delay enumeration phase
/// (Theorem 4.6): after Yannakakis' full reduction, walking the trie of a
/// free-connex join tree never hits a dead end, so advancing to the next
/// answer touches at most one node per level — work bounded by the query
/// size, independent of the database.

namespace fgq {

/// Immutable sorted trie.
class Trie {
 public:
  /// A node: a distinct value at some level plus the range of its children
  /// on the next level (or of matching rows at the last level).
  struct Node {
    Value value;
    uint32_t begin;  // Child (or row) range start on the next level.
    uint32_t end;    // Child (or row) range end.
  };

  /// Builds a trie over `rel` using columns in `col_order`. `rel` does not
  /// need to be pre-sorted. Depth is col_order.size().
  Trie(const Relation& rel, std::vector<size_t> col_order);

  size_t depth() const { return levels_.size(); }

  /// All root nodes (level 0 values).
  const std::vector<Node>& Roots() const { return levels_[0]; }

  /// Nodes at `level` (0-based).
  const std::vector<Node>& Level(size_t level) const { return levels_[level]; }

  /// Children of a node at `level`, i.e. nodes at level+1 in
  /// [node.begin, node.end).
  const Node* ChildBegin(size_t level, const Node& node) const {
    return levels_[level + 1].data() + node.begin;
  }
  const Node* ChildEnd(size_t level, const Node& node) const {
    return levels_[level + 1].data() + node.end;
  }

  /// Binary-searches the children of `node` (at `level`) for `v`.
  /// Returns nullptr if absent. For level == -1 semantics use FindRoot.
  const Node* FindChild(size_t level, const Node& node, Value v) const;

  /// Binary-searches the roots for `v`.
  const Node* FindRoot(Value v) const;

  /// Total number of distinct prefixes at the deepest level
  /// (== number of distinct reordered tuples).
  size_t NumLeaves() const { return levels_.empty() ? 0 : levels_.back().size(); }

 private:
  static const Node* Find(const std::vector<Node>& nodes, uint32_t begin,
                          uint32_t end, Value v);

  std::vector<std::vector<Node>> levels_;
};

}  // namespace fgq

#endif  // FGQ_DB_TRIE_H_
