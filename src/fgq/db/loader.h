#ifndef FGQ_DB_LOADER_H_
#define FGQ_DB_LOADER_H_

#include <string>

#include "fgq/db/database.h"
#include "fgq/db/value.h"
#include "fgq/util/status.h"

/// \file loader.h
/// Text ingestion for examples and ad-hoc experiments.
///
/// Format: one fact per line, `RelName<TAB>v1<TAB>v2...` (or
/// whitespace-separated). Values that parse as integers are used verbatim;
/// anything else is dictionary-encoded. Lines starting with '#' and blank
/// lines are skipped.

namespace fgq {

/// Parses facts from a string buffer into `db`, interning strings in
/// `dict`. Relations are created on first use with the arity of the first
/// fact; later facts with a different arity are an error.
Status LoadFactsFromString(const std::string& text, Database* db,
                           Dictionary* dict);

/// Reads a file and delegates to LoadFactsFromString.
Status LoadFactsFromFile(const std::string& path, Database* db,
                         Dictionary* dict);

}  // namespace fgq

#endif  // FGQ_DB_LOADER_H_
