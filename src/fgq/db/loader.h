#ifndef FGQ_DB_LOADER_H_
#define FGQ_DB_LOADER_H_

#include <string>

#include "fgq/db/database.h"
#include "fgq/db/value.h"
#include "fgq/util/status.h"

/// \file loader.h
/// Text ingestion for examples and ad-hoc experiments.
///
/// Format: one fact per line, `RelName<TAB>v1<TAB>v2...` (or
/// whitespace-separated). Values that parse as integers are used verbatim;
/// anything else is dictionary-encoded. Lines starting with '#' and blank
/// lines are skipped. Relation names must start with a letter or '_'.
///
/// Every error Status pinpoints its origin as `<source>:<line>: ...`,
/// where `<source>` is the file path (or the `source_name` label for
/// string input), so a bad line in a million-fact load is findable.

namespace fgq {

/// Parses facts from a string buffer into `db`, interning strings in
/// `dict`. Relations are created on first use with the arity of the first
/// fact; later facts with a different arity are an error. `source_name`
/// labels error messages.
Status LoadFactsFromString(const std::string& text, Database* db,
                           Dictionary* dict,
                           const std::string& source_name = "<string>");

/// Reads a file and delegates to LoadFactsFromString, with `path` as the
/// error-message source label.
Status LoadFactsFromFile(const std::string& path, Database* db,
                         Dictionary* dict);

}  // namespace fgq

#endif  // FGQ_DB_LOADER_H_
