#include "fgq/db/index.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <numeric>

namespace fgq {

namespace {

/// Relations below this row count use a single shard; at or above it the
/// table splits into kNumShards hash shards so the grouping and scatter
/// phases can run one lane per shard. The choice is a pure function of the
/// relation size — never of the thread count — so serial and parallel
/// builds produce one layout.
constexpr size_t kShardedBuildCutoff = size_t{1} << 13;
constexpr size_t kNumShards = 64;
constexpr unsigned kNumShardBits = 6;

/// Also the parallel-vs-serial dispatch cutoff: below it a morsel is not
/// worth scheduling.
constexpr size_t kParallelBuildCutoff = kShardedBuildCutoff;

size_t NextPow2(size_t x) {
  size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Resets a slot table to all-empty. kEmptySlot is all-ones, so this is a
/// plain memset; vector::assign's generic fill is a scalar store loop when
/// the compiler declines to inline it, which dominates small builds (the
/// table is 2x the row count).
void ResetSlots(std::vector<uint32_t>& slots, size_t cap) {
  slots.resize(cap);
  std::memset(slots.data(), 0xff, cap * sizeof(uint32_t));
}

// always_inline: called from the probe loop of every sharded build; GCC's
// unit-growth budget otherwise outlines it as the translation unit grows,
// costing ~6% on BM_HashIndexBuild.
__attribute__((always_inline)) inline bool RowKeysEqual(
    const Relation& rel, const std::vector<size_t>& cols, uint32_t a,
    uint32_t b) {
  const Value* ra = rel.RowData(a);
  const Value* rb = rel.RowData(b);
  for (size_t c : cols) {
    if (ra[c] != rb[c]) return false;
  }
  return true;
}

}  // namespace

HashIndex::HashIndex(const Relation& rel, std::vector<size_t> key_cols)
    : rel_(&rel), key_cols_(std::move(key_cols)) {
  Build(rel, nullptr);
}

HashIndex::HashIndex(const Relation& rel, std::vector<size_t> key_cols,
                     const ExecContext& ctx)
    : rel_(&rel), key_cols_(std::move(key_cols)) {
  ThreadPool* pool = ctx.pool();
  if (pool == nullptr || pool->num_threads() <= 1 ||
      rel.NumTuples() < kParallelBuildCutoff) {
    Build(rel, nullptr);
  } else {
    Build(rel, &ctx);
  }
}

void HashIndex::Build(const Relation& rel, const ExecContext* ctx) {
  const size_t n = rel.NumTuples();
  if (n == 0) return;
  if (key_cols_.empty()) {
    // Empty key: one group holding every row; no table needed.
    num_keys_ = 1;
    offsets_ = {0, static_cast<uint32_t>(n)};
    group_hash_ = {kKeySeed};
    row_ids_.resize(n);
    std::iota(row_ids_.begin(), row_ids_.end(), 0u);
    return;
  }

  const size_t num_shards = n >= kShardedBuildCutoff ? kNumShards : 1;
  shard_bits_ = num_shards == 1 ? 0 : kNumShardBits;
  shard_mask_ = num_shards - 1;

  if (num_shards == 1) {
    BuildFused(rel);
    return;
  }

  // Phase 0: hash every row's key columns straight out of the row-major
  // store (morsel-parallel with a pool; the result is position-determined).
  std::vector<uint64_t> hashes(n);
  auto hash_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hashes[i] = HashRowKey(rel.RowData(i));
    }
  };
  if (ctx != nullptr) {
    ctx->pool()->ParallelFor(n, ctx->morsel_size(), hash_range);
  } else {
    hash_range(0, n);
  }

  // Phase 1: per-shard row lists in ascending row order. A parallel build
  // scatters into per-(morsel, shard) buckets and concatenates them in
  // morsel order, which yields exactly the serial single-pass sequences.
  std::vector<std::vector<uint32_t>> shard_rows(num_shards);
  if (num_shards == 1) {
    shard_rows[0].resize(n);
    std::iota(shard_rows[0].begin(), shard_rows[0].end(), 0u);
  } else if (ctx == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      shard_rows[hashes[i] & shard_mask_].push_back(static_cast<uint32_t>(i));
    }
  } else {
    const size_t grain = ctx->morsel_size();
    const size_t num_chunks = (n + grain - 1) / grain;
    std::vector<std::vector<std::vector<uint32_t>>> scatter(
        num_chunks, std::vector<std::vector<uint32_t>>(num_shards));
    ctx->pool()->ParallelFor(n, grain, [&](size_t begin, size_t end) {
      std::vector<std::vector<uint32_t>>& buckets = scatter[begin / grain];
      for (size_t i = begin; i < end; ++i) {
        buckets[hashes[i] & shard_mask_].push_back(static_cast<uint32_t>(i));
      }
    });
    ctx->pool()->ParallelFor(num_shards, 1, [&](size_t sb, size_t se) {
      for (size_t s = sb; s < se; ++s) {
        size_t total = 0;
        for (size_t c = 0; c < num_chunks; ++c) total += scatter[c][s].size();
        shard_rows[s].reserve(total);
        for (size_t c = 0; c < num_chunks; ++c) {
          shard_rows[s].insert(shard_rows[s].end(), scatter[c][s].begin(),
                               scatter[c][s].end());
        }
      }
    });
  }

  // Phase 2: per-shard open-addressing grouping plus a local two-pass CSR
  // (count, then scatter via per-group cursors). One lane per shard; the
  // layout depends only on each shard's row sequence.
  struct ShardBuild {
    std::vector<uint32_t> slots;     // Local group ids, kEmptySlot = free.
    std::vector<uint64_t> ghash;     // Key hash per local group.
    std::vector<uint32_t> goffsets;  // Local CSR offsets (+ sentinel).
    std::vector<uint32_t> rows;      // Local CSR payload (global row ids).
  };
  std::vector<ShardBuild> built(num_shards);
  auto build_shard = [&](size_t s) {
    const std::vector<uint32_t>& rows = shard_rows[s];
    ShardBuild& sb = built[s];
    const size_t cap = NextPow2(std::max<size_t>(2, rows.size() * 2));
    const size_t mask = cap - 1;
    ResetSlots(sb.slots, cap);
    std::vector<uint32_t> rep;    // First row of each local group.
    std::vector<uint32_t> count;  // Rows per local group.
    std::vector<uint32_t> row_group(rows.size());
    // The slot table outgrows L2 on large shards, making the probe a full
    // cache miss per row; prefetching the home slot a few rows ahead (the
    // hashes are already materialized) hides most of that latency.
    constexpr size_t kPrefetchDist = 8;
    uint32_t prev_group = 0;
    bool have_prev = false;
    for (size_t k = 0; k < rows.size(); ++k) {
      if (k + kPrefetchDist < rows.size()) {
        const uint64_t ph = hashes[rows[k + kPrefetchDist]];
        __builtin_prefetch(&sb.slots[(ph >> shard_bits_) & mask], 1);
      }
      const uint32_t i = rows[k];
      const uint64_t h = hashes[i];
      // Equal key to the previous row of this shard ⇒ same group, no probe
      // (equal keys always land in one shard, and SortDedup'ed input makes
      // them adjacent there).
      if (have_prev && h == hashes[rows[k - 1]] &&
          RowKeysEqual(rel, key_cols_, rows[k - 1], i)) {
        ++count[prev_group];
        row_group[k] = prev_group;
        continue;
      }
      have_prev = true;
      size_t idx = (h >> shard_bits_) & mask;
      for (;;) {
        const uint32_t g = sb.slots[idx];
        if (g == kEmptySlot) {
          const uint32_t fresh = static_cast<uint32_t>(sb.ghash.size());
          sb.slots[idx] = fresh;
          sb.ghash.push_back(h);
          rep.push_back(i);
          count.push_back(1);
          row_group[k] = fresh;
          prev_group = fresh;
          break;
        }
        if (sb.ghash[g] == h && RowKeysEqual(rel, key_cols_, rep[g], i)) {
          ++count[g];
          row_group[k] = g;
          prev_group = g;
          break;
        }
        idx = (idx + 1) & mask;
      }
    }
    const size_t ng = sb.ghash.size();
    sb.goffsets.resize(ng + 1);
    uint32_t acc = 0;
    for (size_t g = 0; g < ng; ++g) {
      sb.goffsets[g] = acc;
      acc += count[g];
    }
    sb.goffsets[ng] = acc;
    std::vector<uint32_t> cursor(sb.goffsets.begin(), sb.goffsets.end() - 1);
    sb.rows.resize(rows.size());
    for (size_t k = 0; k < rows.size(); ++k) {
      sb.rows[cursor[row_group[k]]++] = rows[k];
    }
  };
  auto for_each_shard = [&](auto&& fn) {
    if (ctx != nullptr && num_shards > 1) {
      ctx->pool()->ParallelFor(num_shards, 1, [&](size_t b, size_t e) {
        for (size_t s = b; s < e; ++s) fn(s);
      });
    } else {
      for (size_t s = 0; s < num_shards; ++s) fn(s);
    }
  };
  for_each_shard(build_shard);

  // Phase 3: stitch the shard-local arrays into the global flat layout.
  shards_.resize(num_shards);
  size_t total_groups = 0, total_rows = 0, total_slots = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    shards_[s].group_base = static_cast<uint32_t>(total_groups);
    shards_[s].slot_base = static_cast<uint32_t>(total_slots);
    shards_[s].slot_mask = static_cast<uint32_t>(built[s].slots.size() - 1);
    total_groups += built[s].ghash.size();
    total_rows += built[s].rows.size();
    total_slots += built[s].slots.size();
  }
  assert(total_rows == n);
  (void)total_rows;
  num_keys_ = total_groups;
  offsets_.resize(total_groups + 1);
  offsets_[total_groups] = static_cast<uint32_t>(n);
  group_hash_.resize(total_groups);
  row_ids_.resize(n);
  slot_group_.resize(total_slots);
  // Row region of each shard: groups are shard-major, so the row base of a
  // shard is the running row total ahead of it.
  std::vector<uint32_t> row_base(num_shards);
  uint32_t rb = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    row_base[s] = rb;
    rb += static_cast<uint32_t>(built[s].rows.size());
  }
  for_each_shard([&](size_t s) {
    const ShardBuild& sb = built[s];
    const uint32_t gb = shards_[s].group_base;
    const uint32_t rbase = row_base[s];
    for (size_t g = 0; g < sb.ghash.size(); ++g) {
      offsets_[gb + g] = rbase + sb.goffsets[g];
      group_hash_[gb + g] = sb.ghash[g];
    }
    std::copy(sb.rows.begin(), sb.rows.end(), row_ids_.begin() + rbase);
    const uint32_t slot_base = shards_[s].slot_base;
    for (size_t t = 0; t < sb.slots.size(); ++t) {
      slot_group_[slot_base + t] =
          sb.slots[t] == kEmptySlot ? kEmptySlot : gb + sb.slots[t];
    }
  });
}

void HashIndex::BuildFused(const Relation& rel) {
  // Small build (always serial): hash, group, and scatter fused into two
  // row passes, writing the flat arrays directly. The staged pipeline in
  // Build exists for the sharded regime; at this size its intermediate
  // hash and shard-list arrays are most of the cost.
  const size_t n = rel.NumTuples();
  const size_t cap = NextPow2(std::max<size_t>(2, n * 2));
  const size_t mask = cap - 1;
  ResetSlots(slot_group_, cap);
  std::vector<uint32_t> rep;    // First row of each group.
  std::vector<uint32_t> count;  // Rows per group.
  std::vector<uint32_t> row_group(n);
  // Locals for everything the hot loop reads: the push_backs below keep
  // the compiler from hoisting member/vector loads itself.
  const size_t* kc = key_cols_.data();
  const size_t nkc = key_cols_.size();
  const Value* base = rel.RowData(0);
  const size_t arity = rel.arity();
  uint32_t* slots = slot_group_.data();
  const Value* prev_row = nullptr;
  uint32_t prev_group = 0;
  for (size_t i = 0; i < n; ++i) {
    const Value* row = base + i * arity;
    // Equal key to the previous row ⇒ same group, no hash or probe. Pure
    // short-circuit (valid for any row order), but SortDedup'ed input
    // makes equal keys adjacent, collapsing duplicate-heavy builds to one
    // probe per distinct key.
    if (prev_row != nullptr) {
      bool same = true;
      for (size_t j = 0; j < nkc; ++j) {
        if (row[kc[j]] != prev_row[kc[j]]) {
          same = false;
          break;
        }
      }
      if (same) {
        ++count[prev_group];
        row_group[i] = prev_group;
        prev_row = row;
        continue;
      }
    }
    prev_row = row;
    uint64_t h = kKeySeed;
    for (size_t j = 0; j < nkc; ++j) {
      h = HashCombine(h, static_cast<uint64_t>(row[kc[j]]));
    }
    size_t idx = h & mask;  // shard_bits_ == 0: same slot as ProbeGather.
    for (;;) {
      const uint32_t g = slots[idx];
      if (g == kEmptySlot) {
        const uint32_t fresh = static_cast<uint32_t>(group_hash_.size());
        slots[idx] = fresh;
        group_hash_.push_back(h);
        rep.push_back(static_cast<uint32_t>(i));
        count.push_back(1);
        row_group[i] = fresh;
        prev_group = fresh;
        break;
      }
      if (group_hash_[g] == h) {
        const Value* grow = base + rep[g] * arity;
        bool eq = true;
        for (size_t j = 0; j < nkc; ++j) {
          if (grow[kc[j]] != row[kc[j]]) {
            eq = false;
            break;
          }
        }
        if (eq) {
          ++count[g];
          row_group[i] = g;
          prev_group = g;
          break;
        }
      }
      idx = (idx + 1) & mask;
    }
  }
  const size_t ng = group_hash_.size();
  offsets_.resize(ng + 1);
  uint32_t acc = 0;
  for (size_t g = 0; g < ng; ++g) {
    offsets_[g] = acc;
    acc += count[g];
  }
  offsets_[ng] = acc;
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  row_ids_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    row_ids_[cursor[row_group[i]]++] = static_cast<uint32_t>(i);
  }
  num_keys_ = ng;
  shards_ = {ShardMeta{0, static_cast<uint32_t>(mask), 0}};
}

}  // namespace fgq
