#include "fgq/db/index.h"

#include <algorithm>

namespace fgq {

namespace {

constexpr size_t kParallelBuildCutoff = size_t{1} << 13;

}  // namespace

HashIndex::HashIndex(const Relation& rel, std::vector<size_t> key_cols)
    : key_cols_(std::move(key_cols)) {
  BuildSerial(rel);
}

HashIndex::HashIndex(const Relation& rel, std::vector<size_t> key_cols,
                     const ExecContext& ctx)
    : key_cols_(std::move(key_cols)) {
  ThreadPool* pool = ctx.pool();
  if (pool == nullptr || pool->num_threads() <= 1 ||
      rel.NumTuples() < kParallelBuildCutoff) {
    BuildSerial(rel);
  } else {
    BuildParallel(rel, ctx);
  }
}

void HashIndex::BuildSerial(const Relation& rel) {
  shards_.resize(1);
  shard_mask_ = 0;
  const size_t n = rel.NumTuples();
  shards_[0].reserve(n);
  Tuple key(key_cols_.size());
  for (size_t i = 0; i < n; ++i) {
    const Value* row = rel.RowData(i);
    for (size_t j = 0; j < key_cols_.size(); ++j) key[j] = row[key_cols_[j]];
    shards_[0][key].push_back(static_cast<uint32_t>(i));
  }
}

void HashIndex::BuildParallel(const Relation& rel, const ExecContext& ctx) {
  ThreadPool* pool = ctx.pool();
  const size_t n = rel.NumTuples();
  size_t num_shards = 1;
  while (num_shards < 4 * pool->num_threads()) num_shards <<= 1;
  shards_.resize(num_shards);
  shard_mask_ = num_shards - 1;

  // Phase 1: scatter row ids into (morsel, shard) buckets. Each morsel
  // writes only its own bucket row, so no synchronization is needed.
  const size_t grain = ctx.morsel_size();
  const size_t num_chunks = (n + grain - 1) / grain;
  std::vector<std::vector<std::vector<uint32_t>>> scatter(
      num_chunks, std::vector<std::vector<uint32_t>>(num_shards));
  pool->ParallelFor(n, grain, [&](size_t begin, size_t end) {
    std::vector<std::vector<uint32_t>>& buckets = scatter[begin / grain];
    Tuple key(key_cols_.size());
    for (size_t i = begin; i < end; ++i) {
      const Value* row = rel.RowData(i);
      for (size_t j = 0; j < key_cols_.size(); ++j) {
        key[j] = row[key_cols_[j]];
      }
      const size_t s = static_cast<size_t>(VecHash{}(key)) & shard_mask_;
      buckets[s].push_back(static_cast<uint32_t>(i));
    }
  });

  // Phase 2: one lane per shard merges the buckets in morsel order, so
  // row ids stay ascending per key exactly as in the serial build.
  pool->ParallelFor(num_shards, 1, [&](size_t sb, size_t se) {
    Tuple key(key_cols_.size());
    for (size_t s = sb; s < se; ++s) {
      size_t total = 0;
      for (size_t c = 0; c < num_chunks; ++c) total += scatter[c][s].size();
      shards_[s].reserve(total);
      for (size_t c = 0; c < num_chunks; ++c) {
        for (uint32_t i : scatter[c][s]) {
          const Value* row = rel.RowData(i);
          for (size_t j = 0; j < key_cols_.size(); ++j) {
            key[j] = row[key_cols_[j]];
          }
          shards_[s][key].push_back(i);
        }
      }
    }
  });
}

const std::vector<uint32_t>& HashIndex::Lookup(const Tuple& key) const {
  const Shard& shard =
      shards_[static_cast<size_t>(VecHash{}(key)) & shard_mask_];
  auto it = shard.find(key);
  return it == shard.end() ? empty_ : it->second;
}

const std::vector<uint32_t>& HashIndex::LookupRow(
    const Value* row, const std::vector<size_t>& probe_cols) const {
  Tuple key(probe_cols.size());
  for (size_t j = 0; j < probe_cols.size(); ++j) key[j] = row[probe_cols[j]];
  return Lookup(key);
}

size_t HashIndex::NumKeys() const {
  size_t total = 0;
  for (const Shard& s : shards_) total += s.size();
  return total;
}

}  // namespace fgq
