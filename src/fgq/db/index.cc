#include "fgq/db/index.h"

namespace fgq {

HashIndex::HashIndex(const Relation& rel, std::vector<size_t> key_cols)
    : key_cols_(std::move(key_cols)) {
  const size_t n = rel.NumTuples();
  buckets_.reserve(n);
  Tuple key(key_cols_.size());
  for (size_t i = 0; i < n; ++i) {
    const Value* row = rel.RowData(i);
    for (size_t j = 0; j < key_cols_.size(); ++j) key[j] = row[key_cols_[j]];
    buckets_[key].push_back(static_cast<uint32_t>(i));
  }
}

const std::vector<uint32_t>& HashIndex::Lookup(const Tuple& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? empty_ : it->second;
}

const std::vector<uint32_t>& HashIndex::LookupRow(
    const Value* row, const std::vector<size_t>& probe_cols) const {
  Tuple key(probe_cols.size());
  for (size_t j = 0; j < probe_cols.size(); ++j) key[j] = row[probe_cols[j]];
  return Lookup(key);
}

}  // namespace fgq
