#include "fgq/db/loader.h"

#include <cctype>
#include <climits>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace fgq {

namespace {

/// Integer fast path over a raw character range: accepts [-]digits and
/// clamps on overflow exactly like strtoll, without materializing a token
/// string. Returns false for anything else (which then gets interned).
bool ParseInteger(const char* begin, const char* end, Value* out) {
  if (begin == end) return false;
  const bool neg = *begin == '-';
  const char* p = neg ? begin + 1 : begin;
  if (p == end) return false;
  unsigned long long acc = 0;
  bool overflow = false;
  for (; p != end; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
    if (acc > (ULLONG_MAX - 9) / 10) {
      overflow = true;
      continue;
    }
    acc = acc * 10 + static_cast<unsigned long long>(*p - '0');
  }
  const unsigned long long limit =
      neg ? static_cast<unsigned long long>(LLONG_MAX) + 1
          : static_cast<unsigned long long>(LLONG_MAX);
  if (overflow || acc > limit) {
    *out = neg ? LLONG_MIN : LLONG_MAX;
    return true;
  }
  if (neg) {
    *out = acc == limit ? LLONG_MIN : -static_cast<Value>(acc);
  } else {
    *out = static_cast<Value>(acc);
  }
  return true;
}

/// True for identifiers acceptable as relation names: leading letter or
/// underscore. Rejects stray data lines (e.g. a line of bare integers).
bool ValidRelationName(const char* begin) {
  unsigned char c = static_cast<unsigned char>(*begin);
  return std::isalpha(c) || *begin == '_';
}

std::string At(const std::string& source, size_t lineno) {
  return source + ":" + std::to_string(lineno) + ": ";
}

bool IsSpace(char c) { return c == ' ' || c == '\t' || c == '\r'; }

}  // namespace

Status LoadFactsFromString(const std::string& text, Database* db,
                           Dictionary* dict,
                           const std::string& source_name) {
  const char* p = text.data();
  const char* const text_end = p + text.size();
  size_t lineno = 0;

  // Consecutive facts usually target one relation: cache the last target to
  // skip the per-line name lookups, and reuse the row buffer across lines.
  std::string rel_name;
  std::string last_name;
  Relation* last_rel = nullptr;
  std::vector<Value> values;
  bool dict_reserved = false;

  while (p != text_end) {
    ++lineno;
    const char* line_end = p;
    while (line_end != text_end && *line_end != '\n') ++line_end;

    const char* t = p;
    p = line_end == text_end ? line_end : line_end + 1;
    while (t != line_end && IsSpace(*t)) ++t;
    if (t == line_end || *t == '#') continue;

    const char* name_begin = t;
    while (t != line_end && !IsSpace(*t)) ++t;
    if (!ValidRelationName(name_begin)) {
      return Status::ParseError(At(source_name, lineno) +
                                "malformed fact line: expected a relation "
                                "name, got '" +
                                std::string(name_begin, t) + "'");
    }
    rel_name.assign(name_begin, t);

    values.clear();
    while (true) {
      while (t != line_end && IsSpace(*t)) ++t;
      if (t == line_end) break;
      const char* tok_begin = t;
      while (t != line_end && !IsSpace(*t)) ++t;
      Value v;
      if (!ParseInteger(tok_begin, t, &v)) {
        if (!dict_reserved) {
          // First string of the load: size the dictionary for roughly one
          // string per remaining line so bulk loads stop rehashing.
          size_t lines = 1;
          for (const char* q = p; q != text_end; ++q) {
            if (*q == '\n') ++lines;
          }
          dict->Reserve(lines);
          dict_reserved = true;
        }
        v = dict->Intern(std::string(tok_begin, t));
      }
      values.push_back(v);
    }

    if (last_rel == nullptr || rel_name != last_name) {
      if (!db->Has(rel_name)) {
        db->PutRelation(Relation(rel_name, values.size()));
      }
      last_rel = db->FindMutable(rel_name).value();
      last_name = rel_name;
    }
    if (last_rel->arity() != values.size()) {
      return Status::ParseError(
          At(source_name, lineno) + "arity mismatch for relation '" +
          rel_name + "' (expected " + std::to_string(last_rel->arity()) +
          ", got " + std::to_string(values.size()) + ")");
    }
    last_rel->AddRow(values.data());
  }
  return Status::OK();
}

Status LoadFactsFromFile(const std::string& path, Database* db,
                         Dictionary* dict) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream buf;
  buf << f.rdbuf();
  return LoadFactsFromString(buf.str(), db, dict, path);
}

}  // namespace fgq
