#include "fgq/db/loader.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace fgq {

namespace {

bool ParseInteger(const std::string& tok, Value* out) {
  if (tok.empty()) return false;
  size_t i = tok[0] == '-' ? 1 : 0;
  if (i == tok.size()) return false;
  for (; i < tok.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) return false;
  }
  *out = std::strtoll(tok.c_str(), nullptr, 10);
  return true;
}

/// True for identifiers acceptable as relation names: leading letter or
/// underscore. Rejects stray data lines (e.g. a line of bare integers).
bool ValidRelationName(const std::string& tok) {
  unsigned char c = static_cast<unsigned char>(tok[0]);
  return std::isalpha(c) || tok[0] == '_';
}

std::string At(const std::string& source, size_t lineno) {
  return source + ":" + std::to_string(lineno) + ": ";
}

}  // namespace

Status LoadFactsFromString(const std::string& text, Database* db,
                           Dictionary* dict,
                           const std::string& source_name) {
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string rel_name;
    if (!(ls >> rel_name) || rel_name[0] == '#') continue;
    if (!ValidRelationName(rel_name)) {
      return Status::ParseError(At(source_name, lineno) +
                                "malformed fact line: expected a relation "
                                "name, got '" +
                                rel_name + "'");
    }
    std::vector<Value> values;
    std::string tok;
    while (ls >> tok) {
      Value v;
      if (!ParseInteger(tok, &v)) v = dict->Intern(tok);
      values.push_back(v);
    }
    if (!db->Has(rel_name)) {
      db->PutRelation(Relation(rel_name, values.size()));
    }
    Relation* rel = db->FindMutable(rel_name).value();
    if (rel->arity() != values.size()) {
      return Status::ParseError(
          At(source_name, lineno) + "arity mismatch for relation '" +
          rel_name + "' (expected " + std::to_string(rel->arity()) +
          ", got " + std::to_string(values.size()) + ")");
    }
    rel->Add(values);
  }
  return Status::OK();
}

Status LoadFactsFromFile(const std::string& path, Database* db,
                         Dictionary* dict) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream buf;
  buf << f.rdbuf();
  return LoadFactsFromString(buf.str(), db, dict, path);
}

}  // namespace fgq
