#ifndef FGQ_DB_VALUE_H_
#define FGQ_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

/// \file value.h
/// Value model of the fgq storage layer.
///
/// Following the paper's setting (finite relational structures whose domain
/// comes with a linear order, Section 2.3.1), domain elements are plain
/// int64 ids and the linear order is the integer order. External string
/// data is dictionary-encoded at the edge (see Dictionary); every internal
/// algorithm works on ids only, which keeps tuples POD and comparisons
/// branch-free.

namespace fgq {

/// A domain element. Non-negative for ordinary data; small negative values
/// are reserved for algorithm-internal sentinels (e.g. the "bottom" element
/// of the lower-bound reductions in Section 4.1.2).
using Value = int64_t;

/// The reserved sentinel element used by reductions that pad tuples
/// (written bottom in the paper).
inline constexpr Value kBottom = -1;

/// A tuple of domain elements.
using Tuple = std::vector<Value>;

/// Bidirectional string <-> id mapping used when loading external data.
///
/// Ids are assigned densely from 0 in first-seen order, so a freshly
/// encoded database has domain [0, size).
class Dictionary {
 public:
  /// Returns the id for `s`, interning it if unseen.
  Value Intern(const std::string& s) {
    auto [it, inserted] = ids_.try_emplace(s, static_cast<Value>(strings_.size()));
    if (inserted) strings_.push_back(s);
    return it->second;
  }

  /// Returns the id for `s` or kBottom when not interned.
  Value Find(const std::string& s) const {
    auto it = ids_.find(s);
    return it == ids_.end() ? kBottom : it->second;
  }

  /// Returns the string for an interned id.
  const std::string& Lookup(Value id) const {
    return strings_.at(static_cast<size_t>(id));
  }

  size_t size() const { return strings_.size(); }

  /// Pre-sizes both directions for about `n` additional strings, so bulk
  /// loads stop rehashing the map mid-stream.
  void Reserve(size_t n) {
    ids_.reserve(strings_.size() + n);
    strings_.reserve(strings_.size() + n);
  }

 private:
  std::unordered_map<std::string, Value> ids_;
  std::vector<std::string> strings_;
};

}  // namespace fgq

#endif  // FGQ_DB_VALUE_H_
