#include "fgq/count/acq_count.h"

#include <algorithm>

#include "fgq/eval/oracle.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/hypergraph/star_size.h"

namespace fgq {

std::vector<size_t> SharedColumnOrder(const PreparedAtom& node,
                                      const PreparedAtom& parent) {
  std::vector<std::string> shared;
  for (const std::string& v : node.vars) {
    if (parent.VarIndex(v) >= 0) shared.push_back(v);
  }
  std::sort(shared.begin(), shared.end());
  std::vector<size_t> cols;
  for (const std::string& v : shared) {
    cols.push_back(static_cast<size_t>(node.VarIndex(v)));
  }
  return cols;
}

namespace {

/// Rewrites a quantified ACQ into an equivalent quantifier-free ACQ over
/// an enriched database (the S-component materialization of Theorem
/// 4.28). Returns the new query; the new relations are added to
/// `scratch`.
Result<ConjunctiveQuery> MaterializeComponents(const ConjunctiveQuery& q,
                                               const Database& db,
                                               Database* scratch) {
  Hypergraph hg = Hypergraph::FromQuery(q);
  std::vector<int> s_ids;
  for (const std::string& v : q.head()) {
    int id = hg.FindVertex(v);
    if (id >= 0) s_ids.push_back(id);
  }
  std::vector<SComponent> comps = DecomposeSComponents(hg, s_ids);

  ConjunctiveQuery out(q.name(), q.head(), {});
  // Atoms fully inside S pass through unchanged.
  std::vector<bool> in_component(q.atoms().size(), false);
  for (const SComponent& comp : comps) {
    for (int e : comp.edges) {
      int atom_idx = hg.EdgeLabel(e);
      in_component[atom_idx] = true;
    }
  }
  for (size_t i = 0; i < q.atoms().size(); ++i) {
    if (!in_component[i]) out.AddAtom(q.atoms()[i]);
  }

  // Each component becomes one fresh atom over its free variables, whose
  // relation is the component subquery's answer set.
  int comp_id = 0;
  for (const SComponent& comp : comps) {
    std::vector<std::string> comp_head;
    for (int v : comp.s_vertices) comp_head.push_back(hg.VertexName(v));
    ConjunctiveQuery sub("comp" + std::to_string(comp_id), comp_head, {});
    for (int e : comp.edges) {
      sub.AddAtom(q.atoms()[hg.EdgeLabel(e)]);
    }
    FGQ_ASSIGN_OR_RETURN(Relation res, EvaluateYannakakis(sub, db));
    std::string rel_name = "__" + q.name() + "_comp" + std::to_string(comp_id);
    res.set_name(rel_name);
    scratch->PutRelation(std::move(res));
    Atom a;
    a.relation = rel_name;
    for (const std::string& v : comp_head) a.args.push_back(Term::Var(v));
    // A component with no free variable is a Boolean condition: keep it as
    // a nullary atom (empty => whole count is zero).
    out.AddAtom(std::move(a));
    ++comp_id;
  }
  return out;
}

/// Merges `db` and `scratch` views: counting runs against a database that
/// contains both the original and the materialized relations.
Database MergeViews(const Database& db, const Database& scratch) {
  Database merged;
  for (const auto& [name, rel] : db.relations()) merged.PutRelation(rel);
  for (const auto& [name, rel] : scratch.relations()) merged.PutRelation(rel);
  return merged;
}

}  // namespace

Result<BigInt> CountAcq(const ConjunctiveQuery& q, const Database& db) {
  FGQ_RETURN_NOT_OK(q.Validate());
  if (q.HasNegation() || !q.comparisons().empty()) {
    return Status::Unsupported("CountAcq handles plain ACQ");
  }
  if (!IsAcyclicQuery(q)) {
    return Status::InvalidArgument("query is not acyclic: " + q.ToString());
  }
  auto ones = [](Value) { return BigInt(1); };
  if (q.ExistentialVariables().empty()) {
    return WeightedCountAcq0<BigIntField>(q, db, ones);
  }
  Database scratch;
  FGQ_ASSIGN_OR_RETURN(ConjunctiveQuery qf,
                       MaterializeComponents(q, db, &scratch));
  Database merged = MergeViews(db, scratch);
  if (!IsAcyclicQuery(qf)) {
    return Status::Internal(
        "S-component materialization produced a cyclic query for: " +
        q.ToString());
  }
  return WeightedCountAcq0<BigIntField>(qf, merged, ones);
}

Result<double> WeightedCountAcq(const ConjunctiveQuery& q, const Database& db,
                                const std::function<double(Value)>& weight) {
  FGQ_RETURN_NOT_OK(q.Validate());
  if (q.ExistentialVariables().empty()) {
    return WeightedCountAcq0<DoubleField>(q, db, weight);
  }
  Database scratch;
  FGQ_ASSIGN_OR_RETURN(ConjunctiveQuery qf,
                       MaterializeComponents(q, db, &scratch));
  Database merged = MergeViews(db, scratch);
  return WeightedCountAcq0<DoubleField>(qf, merged, weight);
}

Result<BigInt> CountAnswers(const ConjunctiveQuery& q, const Database& db) {
  FGQ_RETURN_NOT_OK(q.Validate());
  if (!q.HasNegation() && q.comparisons().empty() && IsAcyclicQuery(q)) {
    return CountAcq(q, db);
  }
  // Exponential fallback: materialize with the oracle.
  FGQ_ASSIGN_OR_RETURN(Relation res, EvaluateBacktrack(q, db));
  return BigInt::FromUint64(res.NumTuples());
}

}  // namespace fgq
