#ifndef FGQ_COUNT_ACQ_COUNT_H_
#define FGQ_COUNT_ACQ_COUNT_H_

#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "fgq/count/fields.h"
#include "fgq/db/database.h"
#include "fgq/eval/prepared.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/query/cq.h"
#include "fgq/util/hash.h"
#include "fgq/util/status.h"

/// \file acq_count.h
/// Counting and weighted counting of ACQ answers (Section 4.4).
///
/// * WeightedCountAcq0 — Theorem 4.21: for quantifier-free acyclic
///   queries, a single bottom-up dynamic program over the join tree sums
///   the product-of-weights of all answers. Each variable is "owned" by
///   its highest join-tree node so its weight is multiplied exactly once;
///   per-child aggregate maps make the pass O(||phi|| * ||D||) (within the
///   paper's O(||phi|| * ||D||^2) bound).
/// * CountAcq — Theorem 4.28: for quantified acyclic queries, each
///   S-component is materialized onto its free variables (cost
///   ||D||^O(star size)) and the resulting quantifier-free acyclic query
///   is counted with the DP. Star size 1 keeps the whole pipeline
///   linear; unbounded star size is #W[1]-hard (the lower bound is
///   exercised by the perfect-matching reduction in matchings.h).

namespace fgq {

/// Column positions in `node` of the variables shared with `parent`, in
/// canonical (name-sorted) order. Both sides of every aggregate/probe key
/// in the counting DP use this order so the keys align.
std::vector<size_t> SharedColumnOrder(const PreparedAtom& node,
                                      const PreparedAtom& parent);

/// Weighted counting for quantifier-free acyclic conjunctive queries.
/// `weight` maps a domain element to its field weight; an answer weighs
/// the product over its head positions. All variables must be free.
template <typename Field>
Result<typename Field::ValueType> WeightedCountAcq0(
    const ConjunctiveQuery& q, const Database& db,
    const std::function<typename Field::ValueType(Value)>& weight) {
  using V = typename Field::ValueType;
  FGQ_RETURN_NOT_OK(q.Validate());
  if (q.HasNegation() || !q.comparisons().empty()) {
    return Status::Unsupported("counting DP handles plain ACQ");
  }
  if (!q.ExistentialVariables().empty()) {
    return Status::InvalidArgument(
        "WeightedCountAcq0 requires a quantifier-free query; use CountAcq");
  }
  Hypergraph hg = Hypergraph::FromQuery(q);
  GyoResult gyo = GyoReduce(hg);
  if (!gyo.acyclic) {
    return Status::InvalidArgument("query is not acyclic: " + q.ToString());
  }
  FGQ_ASSIGN_OR_RETURN(std::vector<PreparedAtom> atoms, PrepareAtoms(q, db));

  // Depth of each node, to assign each variable to its highest node.
  std::vector<int> order = gyo.tree.TopDownOrder();
  std::vector<size_t> depth(atoms.size(), 0);
  for (int e : order) {
    if (gyo.tree.parent[e] >= 0) depth[e] = depth[gyo.tree.parent[e]] + 1;
  }
  std::map<std::string, int> owner;
  for (size_t e = 0; e < atoms.size(); ++e) {
    for (const std::string& v : atoms[e].vars) {
      auto it = owner.find(v);
      if (it == owner.end() || depth[e] < depth[it->second]) {
        owner[v] = static_cast<int>(e);
      }
    }
  }

  // Bottom-up DP. child_sums[e]: connector key -> sum of W over matching
  // tuples of e.
  std::vector<std::unordered_map<Tuple, V, VecHash>> child_sums(atoms.size());
  for (int e : gyo.tree.BottomUpOrder()) {
    const PreparedAtom& a = atoms[e];
    // Connector columns to the parent, in canonical (name-sorted) order so
    // that the parent's probe keys align with this node's aggregate keys.
    std::vector<size_t> conn_cols;
    int p = gyo.tree.parent[e];
    if (p >= 0) conn_cols = SharedColumnOrder(a, atoms[p]);
    // Owned columns of this node.
    std::vector<size_t> owned_cols;
    for (size_t c = 0; c < a.vars.size(); ++c) {
      if (owner[a.vars[c]] == e) owned_cols.push_back(c);
    }
    // Connector columns to each child (pairs aligned with children).
    struct ChildConn {
      int child;
      std::vector<size_t> cols;  // Columns of *this* node.
    };
    std::vector<ChildConn> child_conns;
    for (int c : gyo.tree.children[e]) {
      ChildConn cc;
      cc.child = c;
      // Same canonical order as the child used when keying its aggregate.
      std::vector<size_t> child_side = SharedColumnOrder(atoms[c], a);
      for (size_t j : child_side) {
        cc.cols.push_back(
            static_cast<size_t>(a.VarIndex(atoms[c].vars[j])));
      }
      child_conns.push_back(std::move(cc));
    }
    auto& sums = child_sums[e];
    Tuple key(conn_cols.size());
    Tuple ckey;
    V total_root = Field::Zero();
    for (size_t r = 0; r < a.rel.NumTuples(); ++r) {
      const Value* row = a.rel.RowData(r);
      V w = Field::One();
      for (size_t c : owned_cols) w = Field::Mul(w, weight(row[c]));
      bool dead = false;
      for (const ChildConn& cc : child_conns) {
        ckey.resize(cc.cols.size());
        for (size_t j = 0; j < cc.cols.size(); ++j) ckey[j] = row[cc.cols[j]];
        auto it = child_sums[cc.child].find(ckey);
        if (it == child_sums[cc.child].end()) {
          dead = true;
          break;
        }
        w = Field::Mul(w, it->second);
      }
      if (dead) continue;
      if (p < 0) {
        total_root = Field::Add(total_root, w);
      } else {
        for (size_t j = 0; j < conn_cols.size(); ++j) key[j] = row[conn_cols[j]];
        auto [it, inserted] = sums.try_emplace(key, w);
        if (!inserted) it->second = Field::Add(it->second, w);
      }
    }
    if (p < 0) {
      // Root: done. Free the children's maps implicitly on return.
      return total_root;
    }
    // Release children's maps early.
    for (const ChildConn& cc : child_conns) {
      child_sums[cc.child] = {};
    }
  }
  return Status::Internal("join tree had no root");
}

/// Exact answer counting for any acyclic conjunctive query (Theorem
/// 4.28): linear for quantifier-star-size 1, ||D||^O(s) in general.
Result<BigInt> CountAcq(const ConjunctiveQuery& q, const Database& db);

/// Weighted counting for quantified acyclic queries via the S-component
/// pipeline (weights apply to head positions, Section 4.4's #F-ACQ).
Result<double> WeightedCountAcq(const ConjunctiveQuery& q, const Database& db,
                                const std::function<double(Value)>& weight);

/// Counts answers of an arbitrary CQ: DP/star-size pipeline when acyclic,
/// exponential backtracking fallback otherwise (oracle use only).
Result<BigInt> CountAnswers(const ConjunctiveQuery& q, const Database& db);

}  // namespace fgq

#endif  // FGQ_COUNT_ACQ_COUNT_H_
