#ifndef FGQ_COUNT_FIELDS_H_
#define FGQ_COUNT_FIELDS_H_

#include <cstdint>

#include "fgq/util/bigint.h"

/// \file fields.h
/// Coefficient fields for weighted counting (Section 4.4).
///
/// The weighted counting problem #F-ACQ sums, over all answers, the
/// product of per-element weights drawn from a field F. The counting DP
/// (acq_count.h) is templated over these field types; plain counting is
/// weighted counting over the integers with all weights 1.

namespace fgq {

/// IEEE doubles (the "numerical aggregation" instantiation).
struct DoubleField {
  using ValueType = double;
  static ValueType Zero() { return 0.0; }
  static ValueType One() { return 1.0; }
  static ValueType Add(ValueType a, ValueType b) { return a + b; }
  static ValueType Mul(ValueType a, ValueType b) { return a * b; }
};

/// The prime field Z_p (used to check the DP against overflow-free
/// modular arithmetic; p must be prime and < 2^31 so products fit).
template <uint64_t P>
struct ModField {
  using ValueType = uint64_t;
  static ValueType Zero() { return 0; }
  static ValueType One() { return 1 % P; }
  static ValueType Add(ValueType a, ValueType b) { return (a + b) % P; }
  static ValueType Mul(ValueType a, ValueType b) { return (a * b) % P; }
};

/// Exact integers of arbitrary size (the default for counting: answer
/// counts are products of relation sizes and overflow machine words
/// quickly).
struct BigIntField {
  using ValueType = BigInt;
  static ValueType Zero() { return BigInt(0); }
  static ValueType One() { return BigInt(1); }
  static ValueType Add(const ValueType& a, const ValueType& b) { return a + b; }
  static ValueType Mul(const ValueType& a, const ValueType& b) { return a * b; }
};

/// 64-bit wrap-around integers (fast path when the caller knows counts
/// fit; also usable as Z_2^64 for property tests).
struct Int64Field {
  using ValueType = int64_t;
  static ValueType Zero() { return 0; }
  static ValueType One() { return 1; }
  static ValueType Add(ValueType a, ValueType b) { return a + b; }
  static ValueType Mul(ValueType a, ValueType b) { return a * b; }
};

}  // namespace fgq

#endif  // FGQ_COUNT_FIELDS_H_
