#include "fgq/count/matchings.h"

#include "fgq/count/acq_count.h"

namespace fgq {

Result<BigInt> CountPerfectMatchingsRyser(const BipartiteGraph& g) {
  const size_t n = g.n();
  if (n == 0) return BigInt(1);
  if (n > 20) {
    return Status::InvalidArgument("Ryser permanent limited to n <= 20");
  }
  // Gray-code walk over non-empty column subsets, maintaining per-row sums.
  std::vector<__int128> row_sum(n, 0);
  __int128 total = 0;
  uint64_t gray_prev = 0;
  for (uint64_t k = 1; k < (uint64_t{1} << n); ++k) {
    uint64_t gray = k ^ (k >> 1);
    uint64_t diff = gray ^ gray_prev;
    gray_prev = gray;
    int j = __builtin_ctzll(diff);
    int sign_delta = (gray >> j) & 1 ? 1 : -1;
    for (size_t i = 0; i < n; ++i) {
      if (g.adj[i][static_cast<size_t>(j)]) row_sum[i] += sign_delta;
    }
    __int128 prod = 1;
    for (size_t i = 0; i < n && prod != 0; ++i) prod *= row_sum[i];
    int popcount = __builtin_popcountll(gray);
    // (-1)^(n - |S|) * prod.
    if ((n - static_cast<size_t>(popcount)) % 2 == 0) {
      total += prod;
    } else {
      total -= prod;
    }
  }
  // Convert the 128-bit total to BigInt limb by limb.
  bool neg = total < 0;
  unsigned __int128 mag =
      neg ? static_cast<unsigned __int128>(-total)
          : static_cast<unsigned __int128>(total);
  BigInt result(0);
  BigInt base = BigInt::Pow2(32);
  for (int limb = 3; limb >= 0; --limb) {
    uint32_t part = static_cast<uint32_t>(mag >> (32 * limb));
    result = result * base + BigInt(static_cast<int64_t>(part));
  }
  if (neg) result = -result;
  return result;
}

Database BuildMatchingDatabase(const BipartiteGraph& g) {
  const Value n = static_cast<Value>(g.n());
  Database db;
  Relation p("P", 2);
  for (Value i = 0; i < n; ++i) {
    for (Value j = 0; j < n; ++j) {
      if (g.adj[static_cast<size_t>(i)][static_cast<size_t>(j)]) {
        p.Add({i, n + j});
      }
    }
  }
  Relation e("E", 2);
  for (Value b = 0; b < n; ++b) {
    for (Value b2 = 0; b2 < n; ++b2) {
      if (b != b2) e.Add({n + b, n + b2});
    }
  }
  db.PutRelation(std::move(p));
  db.PutRelation(std::move(e));
  db.DeclareDomainSize(2 * n);
  return db;
}

namespace {

std::vector<std::string> MatchingHead(size_t n) {
  std::vector<std::string> head;
  for (size_t i = 0; i < n; ++i) head.push_back("x" + std::to_string(i));
  return head;
}

}  // namespace

ConjunctiveQuery BuildMatchingPhi(size_t n) {
  ConjunctiveQuery q("phi", MatchingHead(n), {});
  for (size_t i = 0; i < n; ++i) {
    Atom a;
    a.relation = "P";
    a.args = {Term::Const(static_cast<Value>(i)),
              Term::Var("x" + std::to_string(i))};
    q.AddAtom(std::move(a));
  }
  return q;
}

ConjunctiveQuery BuildMatchingPsi(size_t n) {
  ConjunctiveQuery q = BuildMatchingPhi(n);
  q.set_name("psi");
  for (size_t i = 0; i < n; ++i) {
    Atom a;
    a.relation = "E";
    a.args = {Term::Var("t"), Term::Var("x" + std::to_string(i))};
    q.AddAtom(std::move(a));
  }
  return q;
}

Result<BigInt> CountPerfectMatchingsViaQuery(const BipartiteGraph& g) {
  const size_t n = g.n();
  if (n == 0) return BigInt(1);
  Database db = BuildMatchingDatabase(g);
  FGQ_ASSIGN_OR_RETURN(BigInt phi_count, CountAcq(BuildMatchingPhi(n), db));
  FGQ_ASSIGN_OR_RETURN(BigInt psi_count, CountAcq(BuildMatchingPsi(n), db));
  return phi_count - psi_count;
}

}  // namespace fgq
