#ifndef FGQ_COUNT_MATCHINGS_H_
#define FGQ_COUNT_MATCHINGS_H_

#include <vector>

#include "fgq/db/database.h"
#include "fgq/query/cq.h"
#include "fgq/util/bigint.h"
#include "fgq/util/status.h"

/// \file matchings.h
/// The perfect-matching reduction of Equation (2) (Section 4.4).
///
/// The survey shows that counting answers of acyclic queries with even a
/// single quantified variable is #P-hard, by expressing the number of
/// perfect matchings of a bipartite graph as |phi(G)| - |psi(G)| where
///
///   phi(x1..xn)  =  /\_i P(a_i, x_i)
///   psi(x1..xn)  =  exists t  /\_i P(a_i, x_i) /\ E(t, x_i)
///
/// phi counts all neighbor-choice tuples and psi those that miss some
/// right-hand vertex (i.e. are not surjective, hence not matchings). The
/// survey compresses adjacency and the "missed vertex" relation into one
/// symbol E; we keep them as two symbols P and E (E = the inequality
/// clique on the right-hand side) so the identity is exact — the
/// structural point, a quantified star of size n, is unchanged.
///
/// psi has quantified star size n, so CountAcq's component pipeline pays
/// ||D||^Theta(n) — exactly the blow-up Theorem 4.28 predicts. The Ryser
/// permanent baseline provides the ground truth.

namespace fgq {

/// A bipartite graph on [0,n) x [0,n): adj[i][j] == true iff a_i ~ b_j.
struct BipartiteGraph {
  std::vector<std::vector<bool>> adj;

  size_t n() const { return adj.size(); }
};

/// Exact permanent of the adjacency matrix via Ryser's formula with Gray
/// code subset traversal, O(2^n * n). Requires n <= 20.
Result<BigInt> CountPerfectMatchingsRyser(const BipartiteGraph& g);

/// Builds the query database: domain [0, 2n), left vertices are [0, n),
/// right vertices are [n, 2n); P = adjacency, E = right-side disequality
/// clique.
Database BuildMatchingDatabase(const BipartiteGraph& g);

/// The query phi of Equation (2) (quantifier-free, acyclic).
ConjunctiveQuery BuildMatchingPhi(size_t n);

/// The query psi of Equation (2) (one quantified variable, star size n).
ConjunctiveQuery BuildMatchingPsi(size_t n);

/// #PM(g) computed as |phi(G)| - |psi(G)| through the ACQ counting
/// engine. Exponential in n (that is the point); keep n small.
Result<BigInt> CountPerfectMatchingsViaQuery(const BipartiteGraph& g);

}  // namespace fgq

#endif  // FGQ_COUNT_MATCHINGS_H_
