#ifndef FGQ_TRACE_EXPLAIN_H_
#define FGQ_TRACE_EXPLAIN_H_

#include <memory>
#include <string>

#include "fgq/db/database.h"
#include "fgq/eval/engine.h"
#include "fgq/query/cq.h"
#include "fgq/trace/trace.h"
#include "fgq/util/status.h"

/// \file explain.h
/// EXPLAIN: the classification verdict *with its evidence*.
///
/// Engine::Classify walks the paper's dichotomies and Engine::Execute
/// dispatches accordingly, but both are black boxes to a caller: you get
/// a class name and answers, not the join tree that proved acyclicity,
/// not the free-connex check, not the theorem whose bound you are being
/// promised. Explain() re-runs the structural analysis and keeps the
/// witnesses:
///
///   * the GYO join tree when the query is alpha-acyclic, or the
///     irreducible edge core the ear removal stalled on when it is not;
///   * the head-extended hypergraph verdict for the free-connex check;
///   * the comparison/negation features that route around the fast paths;
///   * the dispatch target, its implementing file, its paper theorem, its
///     complexity bound, and the benchmark that verifies the bound.
///
/// In post-execution mode (ExplainOptions::execute) the query actually
/// runs with a TraceContext attached, and the explanation additionally
/// carries the measured per-phase breakdown (prepare_atoms /
/// semijoin_sweeps / index_build / enumerate ...) plus the trace itself
/// for Chrome export.
///
/// Renderings:
///   * ClassificationText() — deterministic, timing-free; what the CI
///     golden files pin (catches silent classifier drift).
///   * Text() — ClassificationText() plus the measured breakdown.
///   * Json() — the same content as a JSON object.

namespace fgq {

/// Static facts about one QueryClass dispatch target. The same table
/// drives EXPLAIN and docs/ARCHITECTURE.md.
struct QueryClassInfo {
  const char* name;       ///< Stable class name (QueryClassName()).
  const char* theorem;    ///< Paper theorem backing the dispatch.
  const char* algorithm;  ///< QueryResult::algorithm of the dispatch target.
  const char* bound;      ///< Predicted complexity bound.
  const char* file;       ///< Implementing file.
  const char* benchmark;  ///< Benchmark that verifies the bound.
};

/// The dispatch-table row for a class. Never fails; every enumerator has
/// an entry.
const QueryClassInfo& GetQueryClassInfo(QueryClass c);

struct ExplainOptions {
  /// Also execute the query (with a trace attached) and include the
  /// measured per-phase breakdown.
  bool execute = false;
};

/// One explained query: verdict + witness (+ measurement).
struct Explanation {
  std::string query_text;                 ///< ConjunctiveQuery::ToString().
  QueryClass classification = QueryClass::kCyclic;
  QueryClassInfo info{};                  ///< Dispatch-table row.
  std::string witness;                    ///< Multi-line structural evidence.

  bool executed = false;
  size_t num_answers = 0;                 ///< Valid when executed.
  std::string algorithm;                  ///< Measured dispatch (executed).
  /// The spans/counters of the traced execution; null when not executed.
  std::shared_ptr<TraceContext> trace;

  /// Deterministic subset (no timings, no counts) — the golden-file
  /// format for classifier-drift detection.
  std::string ClassificationText() const;
  /// Human EXPLAIN: classification + witness + measured breakdown.
  std::string Text() const;
  /// The same as one JSON object (spans in Chrome form under "trace").
  std::string Json() const;
};

/// Explains `q` against `db` using `engine` for execution (its pool and
/// options apply in execute mode).
Result<Explanation> Explain(const ConjunctiveQuery& q, const Database& db,
                            const Engine& engine,
                            const ExplainOptions& opts = {});

/// Convenience: a serial engine.
Result<Explanation> Explain(const ConjunctiveQuery& q, const Database& db,
                            const ExplainOptions& opts = {});

}  // namespace fgq

#endif  // FGQ_TRACE_EXPLAIN_H_
