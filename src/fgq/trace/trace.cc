#include "fgq/trace/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace fgq {
namespace {

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Minimal JSON string escaping — span names and args are identifiers and
// query texts, but query texts can contain quotes/backslashes.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string HumanDuration(int64_t ns) {
  char buf[32];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof buf, "%.2f us", ns / 1e3);
  } else if (ns < 10'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", ns / 1e9);
  }
  return buf;
}

}  // namespace

TraceContext::TraceContext() : t0_ns_(MonotonicNowNs()) {}

int64_t TraceContext::NowNs() const { return MonotonicNowNs() - t0_ns_; }

int TraceContext::BeginSpan(std::string name, std::string category) {
  const int64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  const std::thread::id self = std::this_thread::get_id();
  auto [it, inserted] = tids_.try_emplace(self, tids_.size());
  std::vector<int>& stack = open_[self];

  Event ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.start_ns = now;
  ev.tid = it->second;
  ev.parent = stack.empty() ? -1 : stack.back();
  const int id = static_cast<int>(events_.size());
  events_.push_back(std::move(ev));
  stack.push_back(id);
  return id;
}

void TraceContext::EndSpan(int id) {
  const int64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(events_.size())) return;
  events_[id].end_ns = now;
  std::vector<int>& stack = open_[std::this_thread::get_id()];
  // RAII guarantees LIFO per thread; be defensive about manual misuse.
  auto it = std::find(stack.rbegin(), stack.rend(), id);
  if (it != stack.rend()) stack.erase(std::next(it).base());
}

void TraceContext::SpanArg(int id, std::string key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(events_.size())) return;
  events_[id].args.emplace_back(std::move(key), std::move(value));
}

void TraceContext::AddCounter(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

std::vector<TraceContext::Event> TraceContext::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::map<std::string, uint64_t> TraceContext::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

uint64_t TraceContext::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

int64_t TraceContext::SpanDurationNs(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const Event& ev : events_) {
    if (ev.name == name) total += ev.DurationNs();
  }
  return total;
}

std::string TraceContext::RenderText(size_t from_event) const {
  std::vector<Event> evs = events();
  std::map<std::string, uint64_t> ctrs = counters();

  // Depth via parent chain; events_ is in begin order, so parents always
  // precede children and one pass suffices.
  std::vector<int> depth(evs.size(), 0);
  for (size_t i = 0; i < evs.size(); ++i) {
    if (evs[i].parent >= 0) depth[i] = depth[evs[i].parent] + 1;
  }

  std::ostringstream out;
  for (size_t i = from_event; i < evs.size(); ++i) {
    std::string line(static_cast<size_t>(2 * depth[i]), ' ');
    line += evs[i].name;
    if (line.size() < 36) line.resize(36, ' ');
    out << line << ' ';
    if (evs[i].end_ns < 0) {
      out << "(open)";
    } else {
      out << HumanDuration(evs[i].DurationNs());
    }
    for (const auto& [k, v] : evs[i].args) out << "  " << k << '=' << v;
    out << '\n';
  }
  if (!ctrs.empty()) {
    out << "counters:";
    for (const auto& [k, v] : ctrs) out << ' ' << k << '=' << v;
    out << '\n';
  }
  return out.str();
}

std::string TraceContext::ChromeTraceJson() const {
  std::vector<Event> evs = events();
  std::map<std::string, uint64_t> ctrs = counters();

  // Chrome's trace_event format wants microsecond floats; keep sub-us
  // resolution by emitting three decimals.
  auto us = [](int64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", ns / 1e3);
    return std::string(buf);
  };

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const Event& ev : evs) {
    if (ev.end_ns < 0) continue;  // open spans have no duration yet
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, ev.name);
    out += ",\"cat\":";
    AppendJsonString(&out, ev.category);
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(ev.tid) +
           ",\"ts\":" + us(ev.start_ns) + ",\"dur\":" + us(ev.DurationNs());
    if (!ev.args.empty()) {
      out += ",\"args\":{";
      for (size_t i = 0; i < ev.args.size(); ++i) {
        if (i != 0) out += ",";
        AppendJsonString(&out, ev.args[i].first);
        out += ":";
        AppendJsonString(&out, ev.args[i].second);
      }
      out += "}";
    }
    out += "}";
  }
  if (!ctrs.empty()) {
    if (!first) out += ",\n";
    out +=
        "{\"name\":\"counters\",\"cat\":\"eval\",\"ph\":\"i\",\"pid\":1,"
        "\"tid\":0,\"s\":\"g\",\"ts\":0,\"args\":{";
    bool cfirst = true;
    for (const auto& [k, v] : ctrs) {
      if (!cfirst) out += ",";
      cfirst = false;
      AppendJsonString(&out, k);
      out += ":" + std::to_string(v);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

Status TraceContext::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open trace output: " + path);
  out << ChromeTraceJson();
  out.flush();
  if (!out) return Status::Internal("short write to trace output: " + path);
  return Status::OK();
}

}  // namespace fgq
