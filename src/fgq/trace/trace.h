#ifndef FGQ_TRACE_TRACE_H_
#define FGQ_TRACE_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fgq/util/status.h"

/// \file trace.h
/// The span/tracing layer of the evaluation core.
///
/// The paper's whole point is that *which* algorithm runs — one semijoin
/// sweep, full Yannakakis, the constant-delay plan, the backtracking
/// oracle — determines the complexity class, yet an end-to-end wall-clock
/// number says nothing about where the time went. A TraceContext records
/// the engine's phases as *spans* (named intervals with monotonic
/// timestamps, nested per thread) plus bulk counters (tuples scanned /
/// probed / emitted, bytes of index built), so a single run can be
/// attributed: this much in atom preparation, this much in the sweeps,
/// this much building indexes, this much per answer.
///
/// Cost model: tracing is strictly opt-in. Every instrumentation site
/// holds a `TraceContext*` that is null by default (ExecContext::trace());
/// with no sink attached the whole layer is one pointer compare per
/// *phase* (never per tuple — counters are added in bulk after a scan).
/// With a sink attached, Begin/End take a mutex, which is fine at phase
/// granularity (tens of spans per query, not thousands).
///
/// A TraceContext is meant to cover ONE logical unit — one Engine call or
/// one service request. The serving layer attaches a fresh context per
/// request, which is what keeps concurrent request traces disjoint (the
/// trace_test TSan case pins this down). Within a context, spans opened
/// by the same thread nest by construction; pool-internal morsel tasks do
/// not open spans (phases are attributed at the orchestration level).
///
/// Exports: RenderText() for human eyes (the EXPLAIN breakdown),
/// ChromeTraceJson()/WriteChromeTrace() in Chrome's trace_event format —
/// load the file at chrome://tracing or https://ui.perfetto.dev.

namespace fgq {

/// Collects spans and counters for one evaluation / one request.
/// Thread-safe; see the cost model above.
class TraceContext {
 public:
  /// One completed (or still-open) span.
  struct Event {
    std::string name;      ///< Phase name, e.g. "prepare_atoms".
    std::string category;  ///< Coarse grouping: "engine", "eval", "serve".
    int64_t start_ns = 0;  ///< Monotonic, relative to context creation.
    int64_t end_ns = -1;   ///< -1 while the span is open.
    uint64_t tid = 0;      ///< Small per-context thread number.
    int parent = -1;       ///< Index of the enclosing span, -1 for roots.
    /// String annotations ("class" = "free-connex", ...), set by the
    /// owning thread while the span is open.
    std::vector<std::pair<std::string, std::string>> args;

    int64_t DurationNs() const { return end_ns < 0 ? 0 : end_ns - start_ns; }
  };

  TraceContext();

  /// Opens a span; returns its id (index into events()). The parent is
  /// the calling thread's innermost open span.
  int BeginSpan(std::string name, std::string category = "eval");
  /// Closes the span (must be the calling thread's innermost open one —
  /// guaranteed when spans are only opened through the RAII TraceSpan).
  void EndSpan(int id);
  /// Attaches a string annotation to an open or closed span.
  void SpanArg(int id, std::string key, std::string value);

  /// Adds `delta` to the context-wide counter `name`. Counters are
  /// context totals (not per span): instrumentation sites increment them
  /// in bulk — once per scan/build, never per tuple.
  void AddCounter(const std::string& name, uint64_t delta);

  /// Snapshot accessors (copy under the mutex; cheap at phase counts).
  std::vector<Event> events() const;
  std::map<std::string, uint64_t> counters() const;
  uint64_t counter(const std::string& name) const;

  /// Total duration of all completed spans named `name` (benchmarks use
  /// this for per-phase attribution).
  int64_t SpanDurationNs(const std::string& name) const;

  /// Indented span tree with durations plus the counter totals:
  ///
  ///   engine.execute                      1.82 ms  class=free-connex
  ///     prepare_atoms                     0.61 ms
  ///     semijoin_sweeps                   0.33 ms
  ///     ...
  ///   counters: index_bytes=81920 tuples_scanned=24576 ...
  ///
  /// `from_event` skips the first events — callers reusing one context
  /// across units of work (the fgq_serve `trace` verb) render only the
  /// spans added since their last snapshot of events().size().
  std::string RenderText(size_t from_event = 0) const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}): one complete ("X")
  /// event per span, one instant event carrying the counter totals.
  std::string ChromeTraceJson() const;
  /// Writes ChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  int64_t NowNs() const;

  mutable std::mutex mu_;
  int64_t t0_ns_ = 0;
  std::vector<Event> events_;
  std::map<std::string, uint64_t> counters_;
  /// Per-thread stack of open span ids (well-nesting per thread).
  std::map<std::thread::id, std::vector<int>> open_;
  /// Stable small numbers for thread ids, in first-seen order.
  std::map<std::thread::id, uint64_t> tids_;
};

/// RAII span. Null context = no-op (one pointer compare).
class TraceSpan {
 public:
  TraceSpan(TraceContext* trace, const char* name, const char* category)
      : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->BeginSpan(name, category);
  }
  explicit TraceSpan(TraceContext* trace, const char* name)
      : TraceSpan(trace, name, "eval") {}
  ~TraceSpan() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Annotates the span ("class" = "cyclic", ...).
  void Arg(const char* key, std::string value) {
    if (trace_ != nullptr) trace_->SpanArg(id_, key, std::move(value));
  }

 private:
  TraceContext* trace_;
  int id_ = -1;
};

/// Bulk counter increment; no-op on a null context.
inline void TraceCounter(TraceContext* trace, const char* name,
                         uint64_t delta) {
  if (trace != nullptr && delta != 0) trace->AddCounter(name, delta);
}

}  // namespace fgq

#endif  // FGQ_TRACE_TRACE_H_
