#include "fgq/trace/explain.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "fgq/hypergraph/hypergraph.h"
#include "fgq/query/term.h"

namespace fgq {

namespace {

// One row per QueryClass, in enum order. docs/ARCHITECTURE.md renders the
// same table; keep them in sync.
constexpr QueryClassInfo kClassTable[] = {
    {"boolean-acyclic", "Theorem 4.2", "boolean-semijoin-sweep",
     "O(||phi|| * ||D||) decision", "src/fgq/eval/yannakakis.cc",
     "bench_yannakakis (BM_YannakakisBooleanDense)"},
    {"free-connex", "Theorem 4.6", "constant-delay-enumeration",
     "O(||phi|| * ||D||) preprocessing, O(||phi||) delay",
     "src/fgq/eval/enumerate.cc",
     "bench_enum_delay (BM_ConstantDelayEnumeration)"},
    {"general-acyclic", "Theorem 4.2", "yannakakis",
     "O(||phi|| * ||D|| * ||phi(D)||)", "src/fgq/eval/yannakakis.cc",
     "bench_yannakakis (BM_YannakakisPath)"},
    {"acyclic-disequalities", "Theorem 4.20", "neq-witness-elimination",
     "O(f(||phi||) * ||D||) preprocessing, constant delay",
     "src/fgq/eval/diseq.cc", "bench_disequality"},
    {"acyclic-order-comparisons", "Theorem 4.15", "backtracking-oracle",
     "W[1]-hard (k-clique reduction); oracle is worst-case exponential",
     "src/fgq/eval/oracle.cc", "bench_yannakakis (oracle baselines)"},
    {"negated", "Theorem 4.31", "backtracking-oracle",
     "beta-acyclic NCQ decidable in O(||phi|| * ||D|| log ||D||); "
     "general case via oracle",
     "src/fgq/eval/oracle.cc (decision: src/fgq/eval/ncq.cc)", "bench_ncq"},
    {"cyclic", "Theorem 4.1", "backtracking-oracle",
     "no ||phi||^O(1) * ||D||^O(1) algorithm expected (W[1]-hardness)",
     "src/fgq/eval/oracle.cc", "bench_yannakakis (BM_JoinMaterializeBaseline)"},
};

std::string Indent(const std::string& block, const std::string& pad) {
  std::istringstream in(block);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) out << pad << line << '\n';
  return out.str();
}

std::string EdgeList(const Hypergraph& hg, const std::vector<int>& edges) {
  std::ostringstream os;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i) os << ", ";
    os << 'e' << edges[i] << " {";
    const std::vector<int>& vs = hg.Edge(edges[i]);
    for (size_t j = 0; j < vs.size(); ++j) {
      if (j) os << ", ";
      os << hg.VertexName(vs[j]);
    }
    os << '}';
  }
  return os.str();
}

/// The structural evidence behind a Classify verdict, re-derived with the
/// intermediate objects kept.
std::string BuildWitness(const ConjunctiveQuery& q, QueryClass cls) {
  std::ostringstream w;
  if (q.HasNegation()) {
    size_t negated = 0;
    for (const Atom& a : q.atoms()) negated += a.negated ? 1 : 0;
    w << "negated atoms: " << negated << " of " << q.atoms().size()
      << " (outside the positive-ACQ fast paths)\n";
    Hypergraph hg = Hypergraph::FromQuery(q);
    BetaResult beta = BetaAcyclicity(hg);
    if (beta.beta_acyclic) {
      w << "beta-acyclic: yes; nest-point elimination order:";
      for (int v : beta.elimination_order) w << ' ' << hg.VertexName(v);
      w << " (Theorem 4.31 applies when all atoms are negated)\n";
    } else {
      w << "beta-acyclic: no (Theorem 4.31 does not apply)\n";
    }
    return w.str();
  }

  Hypergraph hg = Hypergraph::FromQuery(q);
  GyoResult gyo = GyoReduce(hg);
  if (!gyo.acyclic) {
    w << "alpha-acyclic: no; GYO ear removal stalls on the core: "
      << EdgeList(hg, gyo.remaining) << '\n';
    return w.str();
  }
  w << "alpha-acyclic: yes; GYO join tree:\n"
    << Indent(gyo.tree.ToString(hg), "  ");

  if (!q.comparisons().empty()) {
    size_t order = 0, neq = 0;
    for (const Comparison& c : q.comparisons()) {
      (c.op == Comparison::Op::kNotEqual ? neq : order) += 1;
    }
    w << "comparisons: " << neq << " disequalities, " << order
      << " order comparisons (excluded from the hypergraph, Def 4.14)\n";
    return w.str();
  }

  if (cls == QueryClass::kBooleanAcyclic) {
    w << "boolean: yes (empty head; only satisfiability is asked)\n";
    return w.str();
  }

  // Free-connex check (Definition 4.4): add one edge covering exactly the
  // head and re-test alpha-acyclicity. Mirrors IsFreeConnex, but keeps the
  // failing core when the answer is no.
  if (q.arity() <= 1) {
    w << "free-connex: yes (arity <= 1 is trivially free-connex)\n";
    return w.str();
  }
  Hypergraph ext = Hypergraph::FromQuery(q);
  std::vector<int> head_ids;
  for (const std::string& v : q.head()) head_ids.push_back(ext.AddVertex(v));
  const int head_edge = ext.AddEdge(head_ids, /*label=*/-2);
  GyoResult egyo = GyoReduce(ext);
  if (egyo.acyclic) {
    w << "free-connex: yes (head edge e" << head_edge
      << " keeps the extended hypergraph alpha-acyclic, Def 4.4)\n";
  } else {
    w << "free-connex: no; with head edge e" << head_edge << " {";
    for (size_t i = 0; i < q.head().size(); ++i) {
      if (i) w << ", ";
      w << q.head()[i];
    }
    w << "} GYO stalls on: " << EdgeList(ext, egyo.remaining)
      << " (Theorem 4.8: constant delay would imply fast Boolean matrix "
         "multiplication)\n";
  }
  return w.str();
}

void AppendJsonEscaped(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

const QueryClassInfo& GetQueryClassInfo(QueryClass c) {
  return kClassTable[static_cast<size_t>(c)];
}

std::string Explanation::ClassificationText() const {
  std::ostringstream os;
  os << "query: " << query_text << '\n';
  os << "class: " << info.name << '\n';
  os << "theorem: " << info.theorem << '\n';
  os << "algorithm: " << info.algorithm << '\n';
  os << "bound: " << info.bound << '\n';
  os << "implemented-in: " << info.file << '\n';
  os << "verified-by: " << info.benchmark << '\n';
  os << "witness:\n" << Indent(witness, "  ");
  return os.str();
}

std::string Explanation::Text() const {
  std::ostringstream os;
  os << ClassificationText();
  if (executed) {
    os << "execution:\n";
    os << "  answers: " << num_answers << '\n';
    os << "  dispatched-to: " << algorithm << '\n';
    if (trace != nullptr) os << Indent(trace->RenderText(), "  ");
  }
  return os.str();
}

std::string Explanation::Json() const {
  std::ostringstream os;
  os << "{\"query\":";
  AppendJsonEscaped(os, query_text);
  os << ",\"class\":\"" << info.name << '"';
  os << ",\"theorem\":\"" << info.theorem << '"';
  os << ",\"algorithm\":\"" << info.algorithm << '"';
  os << ",\"bound\":";
  AppendJsonEscaped(os, info.bound);
  os << ",\"implemented_in\":";
  AppendJsonEscaped(os, info.file);
  os << ",\"verified_by\":";
  AppendJsonEscaped(os, info.benchmark);
  os << ",\"witness\":";
  AppendJsonEscaped(os, witness);
  if (executed) {
    os << ",\"answers\":" << num_answers;
    os << ",\"dispatched_to\":\"" << algorithm << '"';
    if (trace != nullptr) {
      std::string chrome = trace->ChromeTraceJson();
      // ChromeTraceJson is a complete object; embed it verbatim.
      os << ",\"trace\":" << chrome;
    }
  }
  os << '}';
  return os.str();
}

Result<Explanation> Explain(const ConjunctiveQuery& q, const Database& db,
                            const Engine& engine,
                            const ExplainOptions& opts) {
  FGQ_RETURN_NOT_OK(q.Validate());
  Explanation out;
  out.query_text = q.ToString();
  out.classification = Engine::Classify(q);
  out.info = GetQueryClassInfo(out.classification);
  out.witness = BuildWitness(q, out.classification);
  if (opts.execute) {
    auto trace = std::make_shared<TraceContext>();
    ExecRequest req(q, db);
    req.trace = trace.get();
    FGQ_ASSIGN_OR_RETURN(ExecResult res, engine.Run(req));
    out.executed = true;
    out.num_answers = res.NumAnswers();
    out.algorithm = res.algorithm;
    out.trace = std::move(trace);
  }
  return out;
}

Result<Explanation> Explain(const ConjunctiveQuery& q, const Database& db,
                            const ExplainOptions& opts) {
  return Explain(q, db, Engine(), opts);
}

}  // namespace fgq
