#include "fgq/eval/engine.h"

#include <utility>

#include "fgq/count/acq_count.h"
#include "fgq/eval/diseq.h"
#include "fgq/eval/oracle.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/query/term.h"
#include "fgq/trace/trace.h"

namespace fgq {

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kBooleanAcyclic:
      return "boolean-acyclic";
    case QueryClass::kFreeConnexAcyclic:
      return "free-connex";
    case QueryClass::kGeneralAcyclic:
      return "general-acyclic";
    case QueryClass::kAcyclicDisequalities:
      return "acyclic-disequalities";
    case QueryClass::kAcyclicOrderComparisons:
      return "acyclic-order-comparisons";
    case QueryClass::kNegated:
      return "negated";
    case QueryClass::kCyclic:
      return "cyclic";
  }
  return "unknown";
}

Engine::Engine(const ExecOptions& opts) : opts_(opts), ctx_(opts) {}

QueryClass Engine::Classify(const ConjunctiveQuery& q) {
  if (q.HasNegation()) return QueryClass::kNegated;
  if (!IsAcyclicQuery(q)) return QueryClass::kCyclic;
  if (!q.comparisons().empty()) {
    for (const Comparison& c : q.comparisons()) {
      if (c.op != Comparison::Op::kNotEqual) {
        return QueryClass::kAcyclicOrderComparisons;
      }
    }
    return QueryClass::kAcyclicDisequalities;
  }
  if (q.IsBoolean()) return QueryClass::kBooleanAcyclic;
  if (IsFreeConnex(q)) return QueryClass::kFreeConnexAcyclic;
  return QueryClass::kGeneralAcyclic;
}

ExecContext Engine::ContextFor(const ExecRequest& req) const {
  // Start from the engine's shared context (its pool); only a per-call
  // ExecOptions override that actually differs forces a fresh pool.
  ExecContext ctx =
      (req.options.has_value() && !(*req.options == opts_))
          ? ExecContext(*req.options)
          : ctx_;
  if (req.cancel.cancellable()) ctx = ctx.WithCancel(req.cancel);
  if (req.trace != nullptr) ctx = ctx.WithTrace(req.trace);
  return ctx;
}

Result<ExecResult> Engine::Run(const ExecRequest& req) const {
  if (req.query == nullptr || req.db == nullptr) {
    return Status::InvalidArgument("ExecRequest needs a query and a database");
  }
  return ExecuteWith(*req.query, *req.db, ContextFor(req));
}

Result<ExecResult> Engine::Execute(const ConjunctiveQuery& q,
                                   const Database& db,
                                   const ExecContext& ctx) const {
  return ExecuteWith(q, db, ctx);
}

Result<QueryResult> Engine::ExecuteWith(const ConjunctiveQuery& q,
                                        const Database& db,
                                        const ExecContext& ctx) const {
  FGQ_RETURN_NOT_OK(q.Validate());
  QueryResult res;
  res.classification = Classify(q);
  TraceSpan span(ctx.trace(), "engine.execute", "engine");
  if (ctx.trace() != nullptr) {
    span.Arg("query", q.name());
    span.Arg("class", QueryClassName(res.classification));
  }
  switch (res.classification) {
    case QueryClass::kBooleanAcyclic: {
      FGQ_ASSIGN_OR_RETURN(bool sat, EvaluateBooleanAcq(q, db, ctx));
      res.answers = Relation(q.name(), 0);
      if (sat) res.answers.AddNullary();
      res.algorithm = "boolean-semijoin-sweep";
      span.Arg("algorithm", res.algorithm);
      return res;
    }
    case QueryClass::kFreeConnexAcyclic: {
      FGQ_ASSIGN_OR_RETURN(auto e, MakeConstantDelayEnumerator(q, db, ctx));
      {
        TraceSpan drain(ctx.trace(), "enumerate");
        res.answers = DrainEnumerator(e.get(), q.name(), q.arity());
      }
      TraceCounter(ctx.trace(), "tuples_emitted", res.answers.NumTuples());
      res.algorithm = "constant-delay-enumeration";
      span.Arg("algorithm", res.algorithm);
      return res;
    }
    case QueryClass::kGeneralAcyclic: {
      FGQ_ASSIGN_OR_RETURN(res.answers, EvaluateYannakakis(q, db, ctx));
      TraceCounter(ctx.trace(), "tuples_emitted", res.answers.NumTuples());
      res.algorithm = "yannakakis";
      span.Arg("algorithm", res.algorithm);
      return res;
    }
    case QueryClass::kAcyclicDisequalities: {
      {
        TraceSpan neq(ctx.trace(), "neq_witness_elimination");
        FGQ_ASSIGN_OR_RETURN(res.answers, EvaluateAcqNeq(q, db));
      }
      TraceCounter(ctx.trace(), "tuples_emitted", res.answers.NumTuples());
      res.algorithm = "neq-witness-elimination";
      span.Arg("algorithm", res.algorithm);
      return res;
    }
    case QueryClass::kAcyclicOrderComparisons:
    case QueryClass::kNegated:
    case QueryClass::kCyclic: {
      {
        TraceSpan oracle(ctx.trace(), "oracle.backtrack");
        FGQ_ASSIGN_OR_RETURN(res.answers,
                             EvaluateBacktrack(q, db, ctx.cancel()));
      }
      TraceCounter(ctx.trace(), "tuples_emitted", res.answers.NumTuples());
      res.algorithm = "backtracking-oracle";
      span.Arg("algorithm", res.algorithm);
      return res;
    }
  }
  return Status::Internal("unhandled query class");
}

Result<BigInt> Engine::Count(const ExecRequest& req) const {
  if (req.query == nullptr || req.db == nullptr) {
    return Status::InvalidArgument("ExecRequest needs a query and a database");
  }
  FGQ_RETURN_NOT_OK(req.query->Validate());
  // CountAnswers already dispatches: counting DP (Theorems 4.21/4.28) for
  // plain acyclic queries, oracle fallback for everything else.
  return CountAnswers(*req.query, *req.db);
}

Result<std::unique_ptr<AnswerEnumerator>> Engine::Enumerate(
    const ExecRequest& req) const {
  if (req.query == nullptr || req.db == nullptr) {
    return Status::InvalidArgument("ExecRequest needs a query and a database");
  }
  const ConjunctiveQuery& q = *req.query;
  const Database& db = *req.db;
  FGQ_RETURN_NOT_OK(q.Validate());
  const ExecContext ctx = ContextFor(req);
  switch (Classify(q)) {
    case QueryClass::kBooleanAcyclic:
    case QueryClass::kFreeConnexAcyclic:
      return MakeConstantDelayEnumerator(q, db, ctx);
    case QueryClass::kGeneralAcyclic:
      return MakeLinearDelayEnumerator(q, db, ctx);
    case QueryClass::kAcyclicDisequalities: {
      // Theorem 4.20's fast path needs a specific shape; fall back to
      // materializing when it declines.
      Result<std::unique_ptr<AnswerEnumerator>> e = MakeNeqEnumerator(q, db);
      if (e.ok()) return e;
      break;
    }
    default:
      break;
  }
  FGQ_ASSIGN_OR_RETURN(ExecResult res, Run(req));
  return MakeMaterializedEnumerator(std::move(res.answers));
}

}  // namespace fgq
