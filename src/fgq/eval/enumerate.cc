#include "fgq/eval/enumerate.h"

#include <algorithm>
#include <set>

#include "fgq/db/index.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/trace/trace.h"

namespace fgq {

namespace {

// ---- Materialized baseline --------------------------------------------------

class MaterializedEnumerator : public AnswerEnumerator {
 public:
  explicit MaterializedEnumerator(Relation answers)
      : answers_(std::move(answers)) {}

  bool Next(Tuple* out) override {
    if (answers_.arity() == 0) {
      if (pos_ > 0 || answers_.NumTuples() == 0) return false;
      ++pos_;
      out->clear();
      return true;
    }
    if (pos_ >= answers_.NumTuples()) return false;
    *out = answers_.Row(pos_).ToTuple();
    ++pos_;
    return true;
  }

 private:
  Relation answers_;
  size_t pos_ = 0;
};

// ---- Constant-delay enumerator (Theorem 4.6) --------------------------------

/// Enumeration over a fully reduced, quantifier-free acyclic join: one
/// hash-indexed node per join-tree vertex, walked as an odometer. After
/// full reduction every index probe is nonempty, so producing the next
/// answer touches at most O(#nodes) state — independent of the data.
///
/// All data-dependent state (nodes, indexes, root candidate lists) lives
/// in the shared immutable IndexedFreeConnexPlan; the cursor holds only
/// query-sized odometer state, so many cursors — possibly on different
/// request threads — can walk one cached plan concurrently.
class PlanCursorEnumerator : public AnswerEnumerator {
 public:
  explicit PlanCursorEnumerator(
      std::shared_ptr<const IndexedFreeConnexPlan> plan)
      : plan_(std::move(plan)),
        candidates_(plan_->nodes.size()),
        pos_(plan_->nodes.size(), 0) {
    exhausted_ = plan_->empty || plan_->nodes.empty();
    if (!exhausted_) {
      // Position the odometer on the first answer.
      for (size_t i = 0; i < plan_->nodes.size(); ++i) {
        Refill(i);
        pos_[i] = 0;
      }
      primed_ = true;
    }
  }

  bool Next(Tuple* out) override {
    if (exhausted_) return false;
    if (!primed_) {
      // Advance: increment from the deepest level.
      size_t level = plan_->nodes.size();
      while (level-- > 0) {
        if (pos_[level] + 1 < candidates_[level].size()) {
          ++pos_[level];
          for (size_t j = level + 1; j < plan_->nodes.size(); ++j) {
            Refill(j);
            pos_[j] = 0;
          }
          Emit(out);
          return true;
        }
        if (level == 0) {
          exhausted_ = true;
          return false;
        }
      }
      exhausted_ = true;
      return false;
    }
    primed_ = false;
    Emit(out);
    return true;
  }

 private:
  const Value* CurrentRow(size_t node) const {
    return plan_->nodes[node].rel.RowData(candidates_[node][pos_[node]]);
  }

  /// Recomputes node i's candidate span from its parent's current row.
  /// Nonempty by full reduction.
  void Refill(size_t i) {
    if (plan_->parent[i] < 0) {
      candidates_[i] = HashIndex::RowSpan{plan_->root_rows[i].data(),
                                          plan_->root_rows[i].size()};
      return;
    }
    const Value* prow = CurrentRow(static_cast<size_t>(plan_->parent[i]));
    candidates_[i] = plan_->indexes[i]->LookupRow(prow, plan_->parent_cols[i]);
  }

  void Emit(Tuple* out) {
    out->resize(plan_->out_slots.size());
    for (size_t i = 0; i < plan_->out_slots.size(); ++i) {
      (*out)[i] =
          CurrentRow(plan_->out_slots[i].first)[plan_->out_slots[i].second];
    }
  }

  std::shared_ptr<const IndexedFreeConnexPlan> plan_;
  std::vector<HashIndex::RowSpan> candidates_;  // Borrowed CSR spans.
  std::vector<size_t> pos_;
  bool exhausted_ = false;
  bool primed_ = false;
};

/// Emits a single empty tuple (satisfied Boolean query).
class BooleanTrueEnumerator : public AnswerEnumerator {
 public:
  bool Next(Tuple* out) override {
    if (done_) return false;
    done_ = true;
    out->clear();
    return true;
  }

 private:
  bool done_ = false;
};

class EmptyEnumerator : public AnswerEnumerator {
 public:
  bool Next(Tuple*) override { return false; }
};

// ---- Linear-delay enumerator (Theorem 4.3, Algorithm 2) ---------------------

/// Substitutes head variable `var` by the constant `v` everywhere in `q`
/// and removes it from the head.
ConjunctiveQuery SubstituteHeadVar(const ConjunctiveQuery& q,
                                   const std::string& var, Value v) {
  ConjunctiveQuery out = q;
  std::vector<std::string> head;
  for (const std::string& h : out.head()) {
    if (h != var) head.push_back(h);
  }
  out.set_head(head);
  for (Atom& a : *out.mutable_atoms()) {
    for (Term& t : a.args) {
      if (t.is_var() && t.var == var) t = Term::Const(v);
    }
  }
  return out;
}

class LinearDelayEnumerator : public AnswerEnumerator {
 public:
  LinearDelayEnumerator(const ConjunctiveQuery& q, const Database& db,
                        const ExecContext& ctx)
      : db_(db), ctx_(ctx) {
    levels_.push_back(Level{q, {}, 0});
    Status st = FillCandidates(&levels_.back());
    ok_ = st.ok();
  }

  bool ok() const { return ok_; }

  bool Next(Tuple* out) override {
    if (!ok_) return false;
    // Depth-first walk: extend the prefix until all head variables are
    // fixed, emit, then backtrack. A tripped CancelToken ends the stream
    // early (the per-step reductions also fail via their own checks).
    while (!levels_.empty()) {
      if (ctx_.cancel().cancelled()) {
        ok_ = false;
        return false;
      }
      Level& top = levels_.back();
      if (top.query.arity() == 0) {
        // Complete answer: emit the accumulated prefix, then pop.
        *out = prefix_;
        Pop();
        return true;
      }
      if (top.next_candidate >= top.candidates.size()) {
        Pop();
        continue;
      }
      Value v = top.candidates[top.next_candidate++];
      ConjunctiveQuery sub =
          SubstituteHeadVar(top.query, top.query.head()[0], v);
      prefix_.push_back(v);
      levels_.push_back(Level{std::move(sub), {}, 0});
      Status st = FillCandidates(&levels_.back());
      if (!st.ok()) {
        ok_ = false;
        return false;
      }
    }
    return false;
  }

 private:
  struct Level {
    ConjunctiveQuery query;       // Remaining query (prefix substituted).
    std::vector<Value> candidates;
    size_t next_candidate;
  };

  void Pop() {
    levels_.pop_back();
    if (!prefix_.empty() && levels_.size() <= prefix_.size()) {
      prefix_.pop_back();
    }
  }

  /// The candidate values of the level's first head variable: after full
  /// reduction, the distinct values of that variable in any reduced atom
  /// containing it (global consistency makes each one extendable).
  Status FillCandidates(Level* level) {
    if (level->query.arity() == 0) return Status::OK();
    FGQ_ASSIGN_OR_RETURN(ReducedQuery rq, FullReduce(level->query, db_, ctx_));
    if (rq.empty) return Status::OK();
    const std::string& var = level->query.head()[0];
    for (const PreparedAtom& a : rq.atoms) {
      int c = a.VarIndex(var);
      if (c < 0) continue;
      std::set<Value> vals;
      for (size_t r = 0; r < a.rel.NumTuples(); ++r) {
        vals.insert(a.rel.RowData(r)[static_cast<size_t>(c)]);
      }
      level->candidates.assign(vals.begin(), vals.end());
      return Status::OK();
    }
    return Status::Internal("head variable '" + var + "' not found");
  }

  const Database& db_;
  ExecContext ctx_;  // Shares the pool across the per-step reductions.
  std::vector<Level> levels_;
  Tuple prefix_;
  bool ok_ = true;
};

}  // namespace

std::unique_ptr<AnswerEnumerator> MakeMaterializedEnumerator(
    Relation answers) {
  return std::make_unique<MaterializedEnumerator>(std::move(answers));
}

Result<std::unique_ptr<AnswerEnumerator>> MakeLinearDelayEnumerator(
    const ConjunctiveQuery& q, const Database& db, const ExecOptions& opts) {
  return MakeLinearDelayEnumerator(q, db, ExecContext(opts));
}

Result<std::unique_ptr<AnswerEnumerator>> MakeLinearDelayEnumerator(
    const ConjunctiveQuery& q, const Database& db, const ExecContext& ctx) {
  FGQ_RETURN_NOT_OK(q.Validate());
  if (q.HasNegation() || !q.comparisons().empty()) {
    return Status::Unsupported("linear-delay enumeration handles plain ACQ");
  }
  if (!IsAcyclicQuery(q)) {
    return Status::InvalidArgument("query is not acyclic: " + q.ToString());
  }
  if (q.IsBoolean()) {
    FGQ_ASSIGN_OR_RETURN(ReducedQuery rq, FullReduce(q, db, ctx));
    if (rq.empty) {
      return std::unique_ptr<AnswerEnumerator>(new EmptyEnumerator());
    }
    return std::unique_ptr<AnswerEnumerator>(new BooleanTrueEnumerator());
  }
  auto e = std::make_unique<LinearDelayEnumerator>(q, db, ctx);
  if (!e->ok()) return Status::Internal("linear-delay preprocessing failed");
  return std::unique_ptr<AnswerEnumerator>(std::move(e));
}

Result<FreeConnexPlan> BuildFreeConnexPlan(const ConjunctiveQuery& q,
                                           const Database& db,
                                           const ExecOptions& opts) {
  return BuildFreeConnexPlan(q, db, ExecContext(opts));
}

Result<FreeConnexPlan> BuildFreeConnexPlan(const ConjunctiveQuery& q,
                                           const Database& db,
                                           const ExecContext& ctx) {
  FGQ_RETURN_NOT_OK(q.Validate());
  if (q.HasNegation() || !q.comparisons().empty()) {
    return Status::Unsupported(
        "constant-delay enumeration handles plain ACQ; see diseq.h for "
        "ACQ with disequalities");
  }
  if (!IsAcyclicQuery(q)) {
    return Status::InvalidArgument("query is not acyclic: " + q.ToString());
  }
  if (!IsFreeConnex(q)) {
    return Status::InvalidArgument(
        "query is not free-connex (Theorem 4.8: constant delay is then "
        "impossible unless Boolean matrix multiplication is easy): " +
        q.ToString());
  }

  // Preprocessing (linear): full reduction, then projection of every
  // reduced atom onto its free variables. Free-connexity makes the
  // projected join equal to phi(D) and its hypergraph acyclic.
  FreeConnexPlan plan;
  FGQ_ASSIGN_OR_RETURN(ReducedQuery rq, FullReduce(q, db, ctx));
  FGQ_RETURN_NOT_OK(ctx.cancel().Check("free-connex preprocessing"));
  if (rq.empty) {
    plan.empty = true;
    return plan;
  }
  if (q.IsBoolean()) {
    return plan;  // Non-empty: satisfiable, no nodes needed.
  }

  std::set<std::string> free(q.head().begin(), q.head().end());
  TraceSpan projection_span(ctx.trace(), "free_projection");
  // One projection task per atom (slots are disjoint; empty slots are
  // purely existential atoms, reduced away), each morsel-parallel inside.
  std::vector<PreparedAtom> slots(rq.atoms.size());
  ParallelFor(ctx.pool(), rq.atoms.size(), 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      const PreparedAtom& a = rq.atoms[i];
      std::vector<std::string> keep;
      std::vector<size_t> cols;
      for (size_t c = 0; c < a.vars.size(); ++c) {
        if (free.count(a.vars[c])) {
          keep.push_back(a.vars[c]);
          cols.push_back(c);
        }
      }
      if (keep.empty()) continue;
      slots[i].vars = std::move(keep);
      slots[i].rel = a.rel.Project(cols, a.rel.name(), ctx);
    }
  });
  std::vector<PreparedAtom> projected;
  for (PreparedAtom& p : slots) {
    if (!p.vars.empty()) projected.push_back(std::move(p));
  }
  // Absorb projected atoms whose variable set is covered by another atom
  // (they are implied after a semijoin).
  std::vector<PreparedAtom> nodes_raw;
  for (size_t i = 0; i < projected.size(); ++i) {
    bool covered = false;
    for (size_t j = 0; j < projected.size() && !covered; ++j) {
      if (i == j) continue;
      bool subset = true;
      for (const std::string& v : projected[i].vars) {
        if (projected[j].VarIndex(v) < 0) {
          subset = false;
          break;
        }
      }
      // Strict subset, or equal sets keeping the smaller index.
      if (subset &&
          (projected[i].vars.size() < projected[j].vars.size() || i > j)) {
        SemijoinReduce(&projected[j], projected[i], ctx);
        covered = true;
      }
    }
    if (!covered) nodes_raw.push_back(projected[i]);
  }

  // Join tree of the projected (free-only) hypergraph.
  Hypergraph hfree;
  for (const PreparedAtom& p : nodes_raw) {
    hfree.AddEdgeByNames(p.vars, -1);
  }
  GyoResult gyo = GyoReduce(hfree);
  if (!gyo.acyclic) {
    return Status::Internal(
        "free-connex query produced a cyclic free-projection: " +
        q.ToString());
  }

  // Full reduction among the projected relations (they are individually
  // consistent with full answers but must also be pairwise consistent).
  FullReduceSweeps(&nodes_raw, gyo.tree, ctx);
  FGQ_RETURN_NOT_OK(ctx.cancel().Check("free-projection reduction"));
  for (const PreparedAtom& p : nodes_raw) {
    if (p.rel.empty()) {
      plan.empty = true;
      return plan;
    }
  }

  // Reorder nodes top-down and rebase parent pointers.
  std::vector<int> order = gyo.tree.TopDownOrder();
  std::vector<int> position(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    position[order[i]] = static_cast<int>(i);
  }
  for (int e : order) {
    plan.nodes.push_back(std::move(nodes_raw[e]));
    int p = gyo.tree.parent[e];
    plan.parent.push_back(p < 0 ? -1 : position[p]);
  }
  return plan;
}

Result<std::shared_ptr<const IndexedFreeConnexPlan>> IndexFreeConnexPlan(
    FreeConnexPlan plan, const std::vector<std::string>& head,
    const ExecContext& ctx) {
  auto out = std::make_shared<IndexedFreeConnexPlan>();
  out->nodes = std::move(plan.nodes);
  out->parent = std::move(plan.parent);
  out->empty = plan.empty;
  out->is_boolean = head.empty();
  if (out->empty) {
    // nodes/parent are unspecified for an empty plan; there is nothing to
    // index and no output slots to resolve.
    return std::shared_ptr<const IndexedFreeConnexPlan>(std::move(out));
  }
  const size_t n = out->nodes.size();
  out->parent_cols.resize(n);
  out->root_rows.resize(n);
  // Connector columns with the parent; query-sized bookkeeping.
  std::vector<std::vector<size_t>> connector_cols(n);
  for (size_t i = 0; i < n; ++i) {
    if (out->parent[i] >= 0) {
      const PreparedAtom& p = out->nodes[out->parent[i]];
      for (size_t c = 0; c < out->nodes[i].vars.size(); ++c) {
        int pc = p.VarIndex(out->nodes[i].vars[c]);
        if (pc >= 0) {
          connector_cols[i].push_back(c);
          out->parent_cols[i].push_back(static_cast<size_t>(pc));
        }
      }
    } else if (!out->nodes[i].rel.empty()) {
      out->root_rows[i].resize(out->nodes[i].rel.NumTuples());
      for (size_t r = 0; r < out->root_rows[i].size(); ++r) {
        out->root_rows[i][r] = static_cast<uint32_t>(r);
      }
    }
  }
  // The O(||D||) hash-index builds fan out one task per node, each build
  // itself morsel-parallel.
  out->indexes.resize(n);
  {
    TraceSpan index_span(ctx.trace(), "index_build");
    ParallelFor(ctx.pool(), n, 1, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        out->indexes[i] =
            std::make_unique<HashIndex>(out->nodes[i].rel, connector_cols[i],
                                        ctx);
      }
    });
    if (ctx.trace() != nullptr) {
      uint64_t bytes = 0;
      for (const auto& idx : out->indexes) bytes += idx->MemoryBytes();
      TraceCounter(ctx.trace(), "index_bytes", bytes);
    }
  }
  FGQ_RETURN_NOT_OK(ctx.cancel().Check("plan index build"));
  // Output slots: first node/column providing each head variable.
  for (const std::string& v : head) {
    bool found = false;
    for (size_t i = 0; i < n && !found; ++i) {
      int c = out->nodes[i].VarIndex(v);
      if (c >= 0) {
        out->out_slots.push_back({i, static_cast<size_t>(c)});
        found = true;
      }
    }
    if (!found) {
      return Status::Internal("head variable '" + v +
                              "' missing from free-connex plan");
    }
  }
  return std::shared_ptr<const IndexedFreeConnexPlan>(std::move(out));
}

std::unique_ptr<AnswerEnumerator> MakePlanEnumerator(
    std::shared_ptr<const IndexedFreeConnexPlan> plan) {
  if (plan->empty) {
    return std::make_unique<EmptyEnumerator>();
  }
  if (plan->is_boolean) {
    return std::make_unique<BooleanTrueEnumerator>();
  }
  return std::make_unique<PlanCursorEnumerator>(std::move(plan));
}

Result<std::unique_ptr<AnswerEnumerator>> MakeConstantDelayEnumerator(
    const ConjunctiveQuery& q, const Database& db, const ExecOptions& opts) {
  return MakeConstantDelayEnumerator(q, db, ExecContext(opts));
}

Result<std::unique_ptr<AnswerEnumerator>> MakeConstantDelayEnumerator(
    const ConjunctiveQuery& q, const Database& db, const ExecContext& ctx) {
  FGQ_ASSIGN_OR_RETURN(FreeConnexPlan plan, BuildFreeConnexPlan(q, db, ctx));
  FGQ_ASSIGN_OR_RETURN(std::shared_ptr<const IndexedFreeConnexPlan> indexed,
                       IndexFreeConnexPlan(std::move(plan), q.head(), ctx));
  return MakePlanEnumerator(std::move(indexed));
}

Relation DrainEnumerator(AnswerEnumerator* e, const std::string& name,
                         size_t arity) {
  Relation out(name, arity);
  Tuple t;
  while (e->Next(&t)) {
    if (arity == 0) {
      out.AddNullary();
    } else {
      out.Add(t);
    }
  }
  out.SortDedup();
  return out;
}

}  // namespace fgq
