#ifndef FGQ_EVAL_YANNAKAKIS_H_
#define FGQ_EVAL_YANNAKAKIS_H_

#include <vector>

#include "fgq/eval/prepared.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/util/exec_options.h"

/// \file yannakakis.h
/// Yannakakis' algorithm for acyclic conjunctive queries (Theorem 4.2):
/// a bottom-up then top-down semijoin sweep over a join tree removes every
/// dangling tuple ("full reduction"), after which the answer set can be
/// assembled by joins whose intermediate results never exceed
/// ||D|| * ||phi(D)||, for a total of O(||phi|| * ||D|| * ||phi(D)||).
///
/// All entry points take ExecOptions: with num_threads > 1 atom
/// preparation, the two semijoin sweeps (sibling subtrees concurrently,
/// morsel-parallel within each semijoin) and the assembly joins run on a
/// work-stealing pool; num_threads = 1 (default) is the serial algorithm
/// unchanged. Overloads taking an ExecContext reuse an existing pool
/// (e.g. the Engine's) instead of creating one per call.

namespace fgq {

/// An acyclic query after full reduction: prepared atoms (aligned with the
/// query's atom indices), the query hypergraph, and a join tree.
struct ReducedQuery {
  std::vector<PreparedAtom> atoms;
  Hypergraph hg;
  JoinTree tree;
  /// True when some relation became empty: phi(D) is empty.
  bool empty = false;
};

/// Runs preparation plus the two semijoin sweeps. Fails when the query is
/// not acyclic, has negated atoms, or references missing relations.
/// Comparisons are ignored here (callers layering ACQ_!= handle them).
Result<ReducedQuery> FullReduce(const ConjunctiveQuery& q, const Database& db,
                                const ExecOptions& opts = ExecOptions());
Result<ReducedQuery> FullReduce(const ConjunctiveQuery& q, const Database& db,
                                const ExecContext& ctx);

/// Computes phi(D) for an acyclic query, with columns in head order.
/// For Boolean queries the result has arity 0 and is nonempty iff D |= phi.
Result<Relation> EvaluateYannakakis(const ConjunctiveQuery& q,
                                    const Database& db,
                                    const ExecOptions& opts = ExecOptions());
Result<Relation> EvaluateYannakakis(const ConjunctiveQuery& q,
                                    const Database& db,
                                    const ExecContext& ctx);

/// Model checking for Boolean acyclic queries: only the bottom-up sweep is
/// needed, giving O(||phi|| * ||D||).
Result<bool> EvaluateBooleanAcq(const ConjunctiveQuery& q, const Database& db,
                                const ExecOptions& opts = ExecOptions());
Result<bool> EvaluateBooleanAcq(const ConjunctiveQuery& q, const Database& db,
                                const ExecContext& ctx);

}  // namespace fgq

#endif  // FGQ_EVAL_YANNAKAKIS_H_
