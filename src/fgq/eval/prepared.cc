#include "fgq/eval/prepared.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "fgq/db/index.h"
#include "fgq/util/hash.h"

namespace fgq {

namespace {

/// Combined row count below which a semijoin/join runs serially.
constexpr size_t kParallelRowCutoff = size_t{1} << 13;

}  // namespace

int PreparedAtom::VarIndex(const std::string& v) const {
  for (size_t i = 0; i < vars.size(); ++i) {
    if (vars[i] == v) return static_cast<int>(i);
  }
  return -1;
}

std::vector<size_t> PreparedAtom::SharedColumns(
    const PreparedAtom& other) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (other.VarIndex(vars[i]) >= 0) out.push_back(i);
  }
  return out;
}

Result<PreparedAtom> PrepareAtom(const Atom& atom, const Database& db,
                                 const ExecContext& ctx) {
  FGQ_ASSIGN_OR_RETURN(const Relation* rel, db.Find(atom.relation));
  if (rel->arity() != atom.arity()) {
    return Status::InvalidArgument(
        "atom " + atom.ToString() + " has arity " +
        std::to_string(atom.arity()) + " but relation '" + atom.relation +
        "' has arity " + std::to_string(rel->arity()));
  }
  PreparedAtom out;
  out.vars = atom.Variables();
  // Column of the first occurrence of each distinct variable.
  std::vector<size_t> first_col(out.vars.size());
  for (size_t v = 0; v < out.vars.size(); ++v) {
    for (size_t j = 0; j < atom.args.size(); ++j) {
      if (atom.args[j].is_var() && atom.args[j].var == out.vars[v]) {
        first_col[v] = j;
        break;
      }
    }
  }
  out.rel = Relation(atom.relation, out.vars.size());
  const size_t n = rel->NumTuples();

  // Row admission test: constants must match and repeated variables must
  // agree with their first occurrence.
  auto keep_row = [&](const Value* row) {
    for (size_t j = 0; j < atom.args.size(); ++j) {
      const Term& a = atom.args[j];
      if (!a.is_var()) {
        if (row[j] != a.constant) return false;
        continue;
      }
      for (size_t v = 0; v < out.vars.size(); ++v) {
        if (out.vars[v] == a.var) {
          if (row[j] != row[first_col[v]]) return false;
          break;
        }
      }
    }
    return true;
  };

  ThreadPool* pool = ctx.pool();
  if (pool == nullptr || pool->num_threads() <= 1 ||
      n < kParallelRowCutoff) {
    Tuple t(out.vars.size());
    for (size_t i = 0; i < n; ++i) {
      const Value* row = rel->RowData(i);
      if (!keep_row(row)) continue;
      for (size_t v = 0; v < out.vars.size(); ++v) t[v] = row[first_col[v]];
      out.rel.Add(t);
    }
  } else {
    // Morsel-chunked filter/projection: chunk-local buffers stitched back
    // in input order, so the pre-dedup row order matches the serial scan.
    const size_t grain = ctx.morsel_size();
    const size_t num_chunks = (n + grain - 1) / grain;
    std::vector<Relation> parts(num_chunks,
                                Relation(atom.relation, out.vars.size()));
    pool->ParallelFor(n, grain, [&](size_t begin, size_t end) {
      Relation& part = parts[begin / grain];
      Tuple t(out.vars.size());
      for (size_t i = begin; i < end; ++i) {
        const Value* row = rel->RowData(i);
        if (!keep_row(row)) continue;
        for (size_t v = 0; v < out.vars.size(); ++v) t[v] = row[first_col[v]];
        part.Add(t);
      }
    });
    out.rel.Reserve(n);
    for (const Relation& part : parts) out.rel.AppendFrom(part);
  }
  out.rel.SortDedup(ctx);
  return out;
}

Result<std::vector<PreparedAtom>> PrepareAtoms(const ConjunctiveQuery& q,
                                               const Database& db,
                                               const ExecContext& ctx) {
  std::vector<const Atom*> positive;
  for (const Atom& a : q.atoms()) {
    if (!a.negated) positive.push_back(&a);
  }
  ThreadPool* pool = ctx.pool();
  if (pool == nullptr || pool->num_threads() <= 1 || positive.size() <= 1) {
    std::vector<PreparedAtom> out;
    out.reserve(positive.size());
    for (const Atom* a : positive) {
      FGQ_ASSIGN_OR_RETURN(PreparedAtom pa, PrepareAtom(*a, db, ctx));
      out.push_back(std::move(pa));
    }
    return out;
  }
  // One task per atom; each task morsel-chunks its own scan. Slots are
  // disjoint, so no synchronization beyond the loop barrier is needed.
  std::vector<std::optional<Result<PreparedAtom>>> slots(positive.size());
  pool->ParallelFor(positive.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      slots[i].emplace(PrepareAtom(*positive[i], db, ctx));
    }
  });
  std::vector<PreparedAtom> out;
  out.reserve(positive.size());
  for (std::optional<Result<PreparedAtom>>& slot : slots) {
    if (!slot->ok()) return slot->status();
    out.push_back(std::move(*slot).value());
  }
  return out;
}

namespace {

/// Hash-partitioned key set used by the parallel semijoin build: keys are
/// scattered to shards morsel by morsel, then each shard is populated by
/// one lane. Membership is deterministic regardless of thread count.
class ShardedKeySet {
 public:
  ShardedKeySet(const Relation& source, const std::vector<size_t>& cols,
                const ExecContext& ctx) {
    ThreadPool* pool = ctx.pool();
    size_t num_shards = 1;
    while (num_shards < 4 * pool->num_threads()) num_shards <<= 1;
    mask_ = num_shards - 1;
    shards_.resize(num_shards);

    const size_t n = source.NumTuples();
    const size_t grain = ctx.morsel_size();
    const size_t num_chunks = (n + grain - 1) / grain;
    std::vector<std::vector<std::vector<Tuple>>> scatter(
        num_chunks, std::vector<std::vector<Tuple>>(num_shards));
    pool->ParallelFor(n, grain, [&](size_t begin, size_t end) {
      std::vector<std::vector<Tuple>>& buckets = scatter[begin / grain];
      Tuple key(cols.size());
      for (size_t i = begin; i < end; ++i) {
        const Value* row = source.RowData(i);
        for (size_t j = 0; j < cols.size(); ++j) key[j] = row[cols[j]];
        buckets[static_cast<size_t>(VecHash{}(key)) & mask_].push_back(key);
      }
    });
    pool->ParallelFor(num_shards, 1, [&](size_t sb, size_t se) {
      for (size_t s = sb; s < se; ++s) {
        for (size_t c = 0; c < num_chunks; ++c) {
          for (Tuple& key : scatter[c][s]) shards_[s].insert(std::move(key));
        }
      }
    });
  }

  bool Contains(const Tuple& key) const {
    return shards_[static_cast<size_t>(VecHash{}(key)) & mask_].count(key) >
           0;
  }

 private:
  std::vector<std::unordered_set<Tuple, VecHash>> shards_;
  size_t mask_ = 0;
};

}  // namespace

void SemijoinReduce(PreparedAtom* target, const PreparedAtom& source,
                    const ExecContext& ctx) {
  std::vector<size_t> target_cols = target->SharedColumns(source);
  if (target_cols.empty()) {
    // No shared variables: reduction only applies when source is empty
    // (the cross-product factor vanishes).
    if (source.rel.empty()) {
      target->rel = Relation(target->rel.name(), target->rel.arity());
    }
    return;
  }
  std::vector<size_t> source_cols;
  for (size_t c : target_cols) {
    source_cols.push_back(
        static_cast<size_t>(source.VarIndex(target->vars[c])));
  }

  ThreadPool* pool = ctx.pool();
  const size_t ns = source.rel.NumTuples();
  const size_t nt = target->rel.NumTuples();
  if (pool == nullptr || pool->num_threads() <= 1 ||
      ns + nt < kParallelRowCutoff) {
    // Serial path (identical to the historical implementation).
    std::unordered_set<Tuple, VecHash> keys;
    keys.reserve(ns);
    Tuple key(source_cols.size());
    for (size_t i = 0; i < ns; ++i) {
      const Value* row = source.rel.RowData(i);
      for (size_t j = 0; j < source_cols.size(); ++j) {
        key[j] = row[source_cols[j]];
      }
      keys.insert(key);
    }
    Tuple probe(target_cols.size());
    target->rel.Filter([&](TupleView row) {
      for (size_t j = 0; j < target_cols.size(); ++j) {
        probe[j] = row[target_cols[j]];
      }
      return keys.count(probe) > 0;
    });
    return;
  }

  // Parallel path: morsel-partitioned hash build, then a parallel probe.
  ShardedKeySet keys(source.rel, source_cols, ctx);
  target->rel.Filter(
      [&](TupleView row) {
        thread_local Tuple probe;
        probe.resize(target_cols.size());
        for (size_t j = 0; j < target_cols.size(); ++j) {
          probe[j] = row[target_cols[j]];
        }
        return keys.Contains(probe);
      },
      ctx);
}

PreparedAtom JoinProject(const PreparedAtom& left, const PreparedAtom& right,
                         const std::vector<std::string>& keep_vars,
                         const ExecContext& ctx) {
  PreparedAtom out;
  out.vars = keep_vars;
  out.rel = Relation("join", keep_vars.size());

  std::vector<size_t> left_cols = left.SharedColumns(right);
  std::vector<size_t> right_cols;
  for (size_t c : left_cols) {
    right_cols.push_back(static_cast<size_t>(right.VarIndex(left.vars[c])));
  }
  HashIndex right_index(right.rel, right_cols, ctx);

  // Where does each kept variable come from?
  struct Source {
    bool from_left;
    size_t col;
  };
  std::vector<Source> sources;
  sources.reserve(keep_vars.size());
  for (const std::string& v : keep_vars) {
    int lc = left.VarIndex(v);
    if (lc >= 0) {
      sources.push_back({true, static_cast<size_t>(lc)});
    } else {
      sources.push_back({false, static_cast<size_t>(right.VarIndex(v))});
    }
  }

  const size_t nl = left.rel.NumTuples();
  auto probe_range = [&](size_t begin, size_t end, Relation* sink) {
    Tuple key(left_cols.size());
    Tuple t(keep_vars.size());
    for (size_t i = begin; i < end; ++i) {
      const Value* lrow = left.rel.RowData(i);
      for (size_t j = 0; j < left_cols.size(); ++j) {
        key[j] = lrow[left_cols[j]];
      }
      for (uint32_t ri : right_index.Lookup(key)) {
        const Value* rrow = right.rel.RowData(ri);
        for (size_t j = 0; j < sources.size(); ++j) {
          t[j] =
              sources[j].from_left ? lrow[sources[j].col] : rrow[sources[j].col];
        }
        sink->Add(t);
      }
    }
  };

  ThreadPool* pool = ctx.pool();
  if (pool == nullptr || pool->num_threads() <= 1 ||
      nl < kParallelRowCutoff) {
    probe_range(0, nl, &out.rel);
  } else {
    const size_t grain = ctx.morsel_size();
    const size_t num_chunks = (nl + grain - 1) / grain;
    std::vector<Relation> parts(num_chunks,
                                Relation("join", keep_vars.size()));
    pool->ParallelFor(nl, grain, [&](size_t begin, size_t end) {
      probe_range(begin, end, &parts[begin / grain]);
    });
    for (const Relation& part : parts) out.rel.AppendFrom(part);
  }
  out.rel.SortDedup(ctx);
  return out;
}

namespace {

/// Depth of every tree node (root depth 0), grouped per level.
std::vector<std::vector<int>> NodesByDepth(const JoinTree& tree) {
  std::vector<int> order = tree.TopDownOrder();
  std::vector<size_t> depth(tree.parent.size(), 0);
  size_t max_depth = 0;
  for (int e : order) {
    if (tree.parent[e] >= 0) {
      depth[e] = depth[tree.parent[e]] + 1;
      max_depth = std::max(max_depth, depth[e]);
    }
  }
  std::vector<std::vector<int>> levels(max_depth + 1);
  for (int e : order) levels[depth[e]].push_back(e);
  return levels;
}

}  // namespace

void SemijoinSweepBottomUp(std::vector<PreparedAtom>* atoms,
                           const JoinTree& tree, const ExecContext& ctx) {
  if (ctx.pool() == nullptr) {
    for (int e : tree.BottomUpOrder()) {
      if (ctx.cancel().cancelled()) return;
      int p = tree.parent[e];
      if (p >= 0) SemijoinReduce(&(*atoms)[p], (*atoms)[e], ctx);
    }
    return;
  }
  // Level-synchronous: all parents of one depth reduce concurrently. A
  // parent absorbs all of its children in one task (they mutate the same
  // atom), and distinct parents touch disjoint atoms.
  std::vector<std::vector<int>> levels = NodesByDepth(tree);
  for (size_t d = levels.size(); d-- > 0;) {
    if (ctx.cancel().cancelled()) return;
    std::vector<int> parents;
    for (int e : levels[d]) {
      if (!tree.children[e].empty()) parents.push_back(e);
    }
    if (parents.empty()) continue;
    ctx.pool()->ParallelFor(parents.size(), 1, [&](size_t b, size_t e_) {
      for (size_t i = b; i < e_; ++i) {
        const int p = parents[i];
        for (int c : tree.children[p]) {
          SemijoinReduce(&(*atoms)[p], (*atoms)[c], ctx);
        }
      }
    });
  }
}

void SemijoinSweepTopDown(std::vector<PreparedAtom>* atoms,
                          const JoinTree& tree, const ExecContext& ctx) {
  if (ctx.pool() == nullptr) {
    for (int e : tree.TopDownOrder()) {
      if (ctx.cancel().cancelled()) return;
      for (int c : tree.children[e]) {
        SemijoinReduce(&(*atoms)[c], (*atoms)[e], ctx);
      }
    }
    return;
  }
  std::vector<std::vector<int>> levels = NodesByDepth(tree);
  for (const std::vector<int>& level : levels) {
    if (ctx.cancel().cancelled()) return;
    std::vector<int> parents;
    for (int e : level) {
      if (!tree.children[e].empty()) parents.push_back(e);
    }
    if (parents.empty()) continue;
    ctx.pool()->ParallelFor(parents.size(), 1, [&](size_t b, size_t e_) {
      for (size_t i = b; i < e_; ++i) {
        const int p = parents[i];
        for (int c : tree.children[p]) {
          SemijoinReduce(&(*atoms)[c], (*atoms)[p], ctx);
        }
      }
    });
  }
}

}  // namespace fgq
