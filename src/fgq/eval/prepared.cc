#include "fgq/eval/prepared.h"

#include <algorithm>
#include <optional>

#include "fgq/db/index.h"
#include "fgq/trace/trace.h"
#include "fgq/util/hash.h"

namespace fgq {

namespace {

/// Combined row count below which a semijoin/join runs serially.
constexpr size_t kParallelRowCutoff = size_t{1} << 13;

}  // namespace

int PreparedAtom::VarIndex(const std::string& v) const {
  for (size_t i = 0; i < vars.size(); ++i) {
    if (vars[i] == v) return static_cast<int>(i);
  }
  return -1;
}

std::vector<size_t> PreparedAtom::SharedColumns(
    const PreparedAtom& other) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (other.VarIndex(vars[i]) >= 0) out.push_back(i);
  }
  return out;
}

Result<PreparedAtom> PrepareAtom(const Atom& atom, const Database& db,
                                 const ExecContext& ctx) {
  FGQ_ASSIGN_OR_RETURN(const Relation* rel, db.Find(atom.relation));
  if (rel->arity() != atom.arity()) {
    return Status::InvalidArgument(
        "atom " + atom.ToString() + " has arity " +
        std::to_string(atom.arity()) + " but relation '" + atom.relation +
        "' has arity " + std::to_string(rel->arity()));
  }
  PreparedAtom out;
  out.vars = atom.Variables();
  // Column of the first occurrence of each distinct variable.
  std::vector<size_t> first_col(out.vars.size());
  for (size_t v = 0; v < out.vars.size(); ++v) {
    for (size_t j = 0; j < atom.args.size(); ++j) {
      if (atom.args[j].is_var() && atom.args[j].var == out.vars[v]) {
        first_col[v] = j;
        break;
      }
    }
  }
  out.rel = Relation(atom.relation, out.vars.size());
  const size_t n = rel->NumTuples();
  // One bulk increment per atom scan (PrepareAtoms may run this on a pool
  // thread — counters are context-level and thread-safe, unlike spans).
  TraceCounter(ctx.trace(), "tuples_scanned", n);

  // Row admission test: constants must match and repeated variables must
  // agree with their first occurrence. always_inline for the same reason
  // as mark_range in SemijoinMark below: the per-row call must stay folded
  // into the scan loops whatever GCC's unit-growth budget decides.
  auto keep_row = [&](const Value* row) __attribute__((always_inline)) {
    for (size_t j = 0; j < atom.args.size(); ++j) {
      const Term& a = atom.args[j];
      if (!a.is_var()) {
        if (row[j] != a.constant) return false;
        continue;
      }
      for (size_t v = 0; v < out.vars.size(); ++v) {
        if (out.vars[v] == a.var) {
          if (row[j] != row[first_col[v]]) return false;
          break;
        }
      }
    }
    return true;
  };

  ThreadPool* pool = ctx.pool();
  if (pool == nullptr || pool->num_threads() <= 1 ||
      n < kParallelRowCutoff) {
    Tuple t(out.vars.size());
    for (size_t i = 0; i < n; ++i) {
      const Value* row = rel->RowData(i);
      if (!keep_row(row)) continue;
      for (size_t v = 0; v < out.vars.size(); ++v) t[v] = row[first_col[v]];
      out.rel.Add(t);
    }
  } else {
    // Morsel-chunked filter/projection: chunk-local buffers stitched back
    // in input order, so the pre-dedup row order matches the serial scan.
    const size_t grain = ctx.morsel_size();
    const size_t num_chunks = (n + grain - 1) / grain;
    std::vector<Relation> parts(num_chunks,
                                Relation(atom.relation, out.vars.size()));
    pool->ParallelFor(n, grain, [&](size_t begin, size_t end) {
      Relation& part = parts[begin / grain];
      Tuple t(out.vars.size());
      for (size_t i = begin; i < end; ++i) {
        const Value* row = rel->RowData(i);
        if (!keep_row(row)) continue;
        for (size_t v = 0; v < out.vars.size(); ++v) t[v] = row[first_col[v]];
        part.Add(t);
      }
    });
    out.rel.Reserve(n);
    for (const Relation& part : parts) out.rel.AppendFrom(part);
  }
  out.rel.SortDedup(ctx);
  return out;
}

Result<std::vector<PreparedAtom>> PrepareAtoms(const ConjunctiveQuery& q,
                                               const Database& db,
                                               const ExecContext& ctx) {
  std::vector<const Atom*> positive;
  for (const Atom& a : q.atoms()) {
    if (!a.negated) positive.push_back(&a);
  }
  ThreadPool* pool = ctx.pool();
  if (pool == nullptr || pool->num_threads() <= 1 || positive.size() <= 1) {
    std::vector<PreparedAtom> out;
    out.reserve(positive.size());
    for (const Atom* a : positive) {
      FGQ_ASSIGN_OR_RETURN(PreparedAtom pa, PrepareAtom(*a, db, ctx));
      out.push_back(std::move(pa));
    }
    return out;
  }
  // One task per atom; each task morsel-chunks its own scan. Slots are
  // disjoint, so no synchronization beyond the loop barrier is needed.
  std::vector<std::optional<Result<PreparedAtom>>> slots(positive.size());
  pool->ParallelFor(positive.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      slots[i].emplace(PrepareAtom(*positive[i], db, ctx));
    }
  });
  std::vector<PreparedAtom> out;
  out.reserve(positive.size());
  for (std::optional<Result<PreparedAtom>>& slot : slots) {
    if (!slot->ok()) return slot->status();
    out.push_back(std::move(*slot).value());
  }
  return out;
}

namespace {

/// Open-addressing membership set over the key columns of a relation's
/// rows. Each slot holds a representative row id plus its key hash; probes
/// compare key columns directly against the stored row, so neither the
/// build nor a probe materializes a Tuple. Membership is a pure set
/// property — independent of insertion order — so the bitmap a semijoin
/// derives from it is deterministic for any thread count.
class FlatKeySet {
 public:
  /// Builds over the rows of `rel` whose byte in `alive` is nonzero
  /// (`alive == nullptr` means every row).
  FlatKeySet(const Relation& rel, const std::vector<size_t>& cols,
             const std::vector<uint8_t>* alive)
      : rel_(&rel), cols_(&cols) {
    const size_t n = rel.NumTuples();
    size_t cap = 2;
    while (cap < 2 * std::max<size_t>(1, n)) cap <<= 1;
    mask_ = cap - 1;
    slots_.assign(cap, kEmpty);
    hashes_.resize(cap);
    // Hash a short run of rows ahead and prefetch their home slots before
    // probing: the table outgrows L2 quickly and the probe latency (not the
    // hashing) dominates the build on large relations.
    uint32_t rows[kBatch];
    uint64_t hs[kBatch];
    size_t i = 0;
    while (i < n) {
      size_t m = 0;
      for (; i < n && m < kBatch; ++i) {
        if (alive != nullptr && !(*alive)[i]) continue;
        const uint64_t h = HashKeyAt(rel.RowData(i), cols);
        Prefetch(h);
        rows[m] = static_cast<uint32_t>(i);
        hs[m] = h;
        ++m;
      }
      for (size_t j = 0; j < m; ++j) {
        const Value* row = rel.RowData(rows[j]);
        const uint64_t h = hs[j];
        size_t idx = h & mask_;
        for (;;) {
          const uint32_t r = slots_[idx];
          if (r == kEmpty) {
            slots_[idx] = rows[j];
            hashes_[idx] = h;
            break;
          }
          if (hashes_[idx] == h &&
              KeysEqual(rel.RowData(r), cols, row, cols)) {
            break;  // Key already present.
          }
          idx = (idx + 1) & mask_;
        }
      }
    }
  }

  /// Probe batch size: long enough to cover one memory round-trip with
  /// hashing work, short enough to live in registers/L1.
  static constexpr size_t kBatch = 16;

  static uint64_t HashKeyAt(const Value* row, const std::vector<size_t>& cols) {
    uint64_t h = kSeed;
    for (size_t c : cols) h = HashCombine(h, static_cast<uint64_t>(row[c]));
    return h;
  }

  /// Pulls the home slot of hash `h` toward the cache ahead of a probe.
  void Prefetch(uint64_t h) const {
    const size_t idx = h & mask_;
    __builtin_prefetch(&slots_[idx], 1);
    __builtin_prefetch(&hashes_[idx], 1);
  }

  /// True if some inserted row agrees with `row` on the (column-wise
  /// corresponding) probe columns.
  bool ContainsRow(const Value* row, const std::vector<size_t>& cols) const {
    return ContainsHashed(HashKeyAt(row, cols), row, cols);
  }

  /// ContainsRow with the key hash precomputed (the batched callers hash
  /// ahead so they can prefetch).
  bool ContainsHashed(uint64_t h, const Value* row,
                      const std::vector<size_t>& cols) const {
    size_t idx = h & mask_;
    for (;;) {
      const uint32_t r = slots_[idx];
      if (r == kEmpty) return false;
      if (hashes_[idx] == h &&
          KeysEqual(rel_->RowData(r), *cols_, row, cols)) {
        return true;
      }
      idx = (idx + 1) & mask_;
    }
  }

 private:
  static constexpr uint32_t kEmpty = 0xffffffffu;
  static constexpr uint64_t kSeed = 0x51ed270b0a4725a3ULL;

  static bool KeysEqual(const Value* a, const std::vector<size_t>& a_cols,
                        const Value* b, const std::vector<size_t>& b_cols) {
    for (size_t j = 0; j < a_cols.size(); ++j) {
      if (a[a_cols[j]] != b[b_cols[j]]) return false;
    }
    return true;
  }

  const Relation* rel_;
  const std::vector<size_t>* cols_;
  std::vector<uint32_t> slots_;   // Representative row id per slot.
  std::vector<uint64_t> hashes_;  // Key hash per occupied slot.
  size_t mask_ = 0;
};

/// One semijoin as a pure bitmap update: clears the alive byte of every
/// `target` row whose shared-variable key has no alive counterpart in
/// `source`. Returns the new alive count of the target.
size_t SemijoinMark(const PreparedAtom& target, std::vector<uint8_t>* t_alive,
                    size_t t_count, const PreparedAtom& source,
                    const std::vector<uint8_t>* s_alive, size_t s_count,
                    const ExecContext& ctx) {
  std::vector<size_t> target_cols = target.SharedColumns(source);
  if (target_cols.empty()) {
    // No shared variables: reduction only applies when source is empty
    // (the cross-product factor vanishes).
    if (s_count == 0 && t_count > 0) {
      std::fill(t_alive->begin(), t_alive->end(), 0);
      return 0;
    }
    return t_count;
  }
  std::vector<size_t> source_cols;
  for (size_t c : target_cols) {
    source_cols.push_back(
        static_cast<size_t>(source.VarIndex(target.vars[c])));
  }
  // The set build is a single O(|source|) pass; probes fan out per morsel
  // (disjoint alive bytes, so the marking is race-free and deterministic).
  FlatKeySet keys(source.rel, source_cols, s_alive);
  const size_t nt = target.rel.NumTuples();
  TraceCounter(ctx.trace(), "tuples_probed", nt);
  ThreadPool* pool = ctx.pool();
  // always_inline: the serial path calls this lambda directly, and the
  // probe loop must stay folded into SemijoinMark — GCC's unit-growth
  // budget otherwise outlines it as the translation unit grows, costing
  // ~8% on the sweep kernel (BM_SemijoinSweep).
  auto mark_range = [&](size_t begin,
                        size_t end) __attribute__((always_inline)) {
    // Same batched hash-then-prefetch-then-probe pattern as the set build;
    // each probe otherwise eats a full cache miss on large sets.
    constexpr size_t kBatch = 16;
    size_t rows[kBatch];
    uint64_t hs[kBatch];
    size_t i = begin;
    while (i < end) {
      size_t m = 0;
      for (; i < end && m < kBatch; ++i) {
        if (!(*t_alive)[i]) continue;
        const uint64_t h =
            FlatKeySet::HashKeyAt(target.rel.RowData(i), target_cols);
        keys.Prefetch(h);
        rows[m] = i;
        hs[m] = h;
        ++m;
      }
      for (size_t j = 0; j < m; ++j) {
        if (!keys.ContainsHashed(hs[j], target.rel.RowData(rows[j]),
                                 target_cols)) {
          (*t_alive)[rows[j]] = 0;
        }
      }
    }
  };
  if (pool == nullptr || pool->num_threads() <= 1 ||
      nt < kParallelRowCutoff) {
    mark_range(0, nt);
  } else {
    pool->ParallelFor(nt, ctx.morsel_size(), mark_range);
  }
  size_t count = 0;
  for (size_t i = 0; i < nt; ++i) count += (*t_alive)[i] ? 1 : 0;
  return count;
}

/// All-alive bitmap for one prepared atom (nullary atoms count their
/// present marker as one row).
std::vector<uint8_t> AllAlive(const PreparedAtom& atom) {
  return std::vector<uint8_t>(atom.rel.NumTuples(), 1);
}

}  // namespace

void SemijoinReduce(PreparedAtom* target, const PreparedAtom& source,
                    const ExecContext& ctx) {
  const size_t nt = target->rel.NumTuples();
  std::vector<uint8_t> alive = AllAlive(*target);
  const size_t count = SemijoinMark(*target, &alive, nt, source,
                                    /*s_alive=*/nullptr,
                                    source.rel.NumTuples(), ctx);
  if (count != nt) target->rel.CompactRows(alive);
}

PreparedAtom JoinProject(const PreparedAtom& left, const PreparedAtom& right,
                         const std::vector<std::string>& keep_vars,
                         const ExecContext& ctx) {
  PreparedAtom out;
  out.vars = keep_vars;
  out.rel = Relation("join", keep_vars.size());

  std::vector<size_t> left_cols = left.SharedColumns(right);
  std::vector<size_t> right_cols;
  for (size_t c : left_cols) {
    right_cols.push_back(static_cast<size_t>(right.VarIndex(left.vars[c])));
  }
  HashIndex right_index(right.rel, right_cols, ctx);
  TraceCounter(ctx.trace(), "index_bytes", right_index.MemoryBytes());
  TraceCounter(ctx.trace(), "tuples_probed", left.rel.NumTuples());

  // Where does each kept variable come from?
  struct Source {
    bool from_left;
    size_t col;
  };
  std::vector<Source> sources;
  sources.reserve(keep_vars.size());
  for (const std::string& v : keep_vars) {
    int lc = left.VarIndex(v);
    if (lc >= 0) {
      sources.push_back({true, static_cast<size_t>(lc)});
    } else {
      sources.push_back({false, static_cast<size_t>(right.VarIndex(v))});
    }
  }

  const size_t nl = left.rel.NumTuples();
  auto probe_range = [&](size_t begin, size_t end, Relation* sink) {
    Tuple t(keep_vars.size());
    for (size_t i = begin; i < end; ++i) {
      const Value* lrow = left.rel.RowData(i);
      // Gathers the key straight out of the left row — no temporary Tuple.
      for (uint32_t ri : right_index.LookupRow(lrow, left_cols)) {
        const Value* rrow = right.rel.RowData(ri);
        for (size_t j = 0; j < sources.size(); ++j) {
          t[j] =
              sources[j].from_left ? lrow[sources[j].col] : rrow[sources[j].col];
        }
        sink->Add(t);
      }
    }
  };

  ThreadPool* pool = ctx.pool();
  if (pool == nullptr || pool->num_threads() <= 1 ||
      nl < kParallelRowCutoff) {
    probe_range(0, nl, &out.rel);
  } else {
    const size_t grain = ctx.morsel_size();
    const size_t num_chunks = (nl + grain - 1) / grain;
    std::vector<Relation> parts(num_chunks,
                                Relation("join", keep_vars.size()));
    pool->ParallelFor(nl, grain, [&](size_t begin, size_t end) {
      probe_range(begin, end, &parts[begin / grain]);
    });
    for (const Relation& part : parts) out.rel.AppendFrom(part);
  }
  out.rel.SortDedup(ctx);
  return out;
}

namespace {

/// Depth of every tree node (root depth 0), grouped per level.
std::vector<std::vector<int>> NodesByDepth(const JoinTree& tree) {
  std::vector<int> order = tree.TopDownOrder();
  std::vector<size_t> depth(tree.parent.size(), 0);
  size_t max_depth = 0;
  for (int e : order) {
    if (tree.parent[e] >= 0) {
      depth[e] = depth[tree.parent[e]] + 1;
      max_depth = std::max(max_depth, depth[e]);
    }
  }
  std::vector<std::vector<int>> levels(max_depth + 1);
  for (int e : order) levels[depth[e]].push_back(e);
  return levels;
}

}  // namespace

void SemijoinSweepBottomUp(std::vector<PreparedAtom>* atoms,
                           const JoinTree& tree, const ExecContext& ctx) {
  if (ctx.pool() == nullptr) {
    for (int e : tree.BottomUpOrder()) {
      if (ctx.cancel().cancelled()) return;
      int p = tree.parent[e];
      if (p >= 0) SemijoinReduce(&(*atoms)[p], (*atoms)[e], ctx);
    }
    return;
  }
  // Level-synchronous: all parents of one depth reduce concurrently. A
  // parent absorbs all of its children in one task (they mutate the same
  // atom), and distinct parents touch disjoint atoms.
  std::vector<std::vector<int>> levels = NodesByDepth(tree);
  for (size_t d = levels.size(); d-- > 0;) {
    if (ctx.cancel().cancelled()) return;
    std::vector<int> parents;
    for (int e : levels[d]) {
      if (!tree.children[e].empty()) parents.push_back(e);
    }
    if (parents.empty()) continue;
    ctx.pool()->ParallelFor(parents.size(), 1, [&](size_t b, size_t e_) {
      for (size_t i = b; i < e_; ++i) {
        const int p = parents[i];
        for (int c : tree.children[p]) {
          SemijoinReduce(&(*atoms)[p], (*atoms)[c], ctx);
        }
      }
    });
  }
}

void SemijoinSweepTopDown(std::vector<PreparedAtom>* atoms,
                          const JoinTree& tree, const ExecContext& ctx) {
  if (ctx.pool() == nullptr) {
    for (int e : tree.TopDownOrder()) {
      if (ctx.cancel().cancelled()) return;
      for (int c : tree.children[e]) {
        SemijoinReduce(&(*atoms)[c], (*atoms)[e], ctx);
      }
    }
    return;
  }
  std::vector<std::vector<int>> levels = NodesByDepth(tree);
  for (const std::vector<int>& level : levels) {
    if (ctx.cancel().cancelled()) return;
    std::vector<int> parents;
    for (int e : level) {
      if (!tree.children[e].empty()) parents.push_back(e);
    }
    if (parents.empty()) continue;
    ctx.pool()->ParallelFor(parents.size(), 1, [&](size_t b, size_t e_) {
      for (size_t i = b; i < e_; ++i) {
        const int p = parents[i];
        for (int c : tree.children[p]) {
          SemijoinReduce(&(*atoms)[c], (*atoms)[p], ctx);
        }
      }
    });
  }
}

void FullReduceSweeps(std::vector<PreparedAtom>* atoms, const JoinTree& tree,
                      const ExecContext& ctx) {
  const size_t m = atoms->size();
  std::vector<std::vector<uint8_t>> alive(m);
  std::vector<size_t> count(m);
  for (size_t i = 0; i < m; ++i) {
    alive[i] = AllAlive((*atoms)[i]);
    count[i] = alive[i].size();
  }

  // Each semijoin of either sweep is a bitmap update; no relation is
  // touched until the single compaction at the end.
  auto reduce = [&](int t, int s) {
    count[t] = SemijoinMark((*atoms)[t], &alive[t], count[t], (*atoms)[s],
                            &alive[s], count[s], ctx);
  };

  bool tripped = false;
  if (ctx.pool() == nullptr) {
    for (int e : tree.BottomUpOrder()) {
      if ((tripped = ctx.cancel().cancelled())) break;
      const int p = tree.parent[e];
      if (p >= 0) reduce(p, e);
    }
    if (!tripped) {
      for (int e : tree.TopDownOrder()) {
        if ((tripped = ctx.cancel().cancelled())) break;
        for (int c : tree.children[e]) reduce(c, e);
      }
    }
  } else {
    // Level-synchronous, mirroring the materializing sweeps: parents of
    // one tree depth run concurrently (they update disjoint bitmaps).
    const std::vector<std::vector<int>> levels = NodesByDepth(tree);
    auto run_level = [&](const std::vector<int>& level, bool bottom_up) {
      std::vector<int> parents;
      for (int e : level) {
        if (!tree.children[e].empty()) parents.push_back(e);
      }
      if (parents.empty()) return;
      ctx.pool()->ParallelFor(parents.size(), 1, [&](size_t b, size_t e_) {
        for (size_t i = b; i < e_; ++i) {
          const int p = parents[i];
          for (int c : tree.children[p]) {
            bottom_up ? reduce(p, c) : reduce(c, p);
          }
        }
      });
    };
    for (size_t d = levels.size(); d-- > 0;) {
      if ((tripped = ctx.cancel().cancelled())) break;
      run_level(levels[d], /*bottom_up=*/true);
    }
    if (!tripped) {
      for (const std::vector<int>& level : levels) {
        if ((tripped = ctx.cancel().cancelled())) break;
        run_level(level, /*bottom_up=*/false);
      }
    }
  }

  // One compaction per atom (skipped when nothing died). On a cancel trip
  // this materializes the partial reduction, matching the materializing
  // sweeps' leave-partially-reduced contract.
  auto compact = [&](size_t i) {
    if (count[i] != alive[i].size()) (*atoms)[i].rel.CompactRows(alive[i]);
  };
  if (ctx.pool() != nullptr && m > 1) {
    ctx.pool()->ParallelFor(m, 1, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) compact(i);
    });
  } else {
    for (size_t i = 0; i < m; ++i) compact(i);
  }
}

}  // namespace fgq
