#include "fgq/eval/prepared.h"

#include <algorithm>
#include <unordered_set>

#include "fgq/db/index.h"
#include "fgq/util/hash.h"

namespace fgq {

int PreparedAtom::VarIndex(const std::string& v) const {
  for (size_t i = 0; i < vars.size(); ++i) {
    if (vars[i] == v) return static_cast<int>(i);
  }
  return -1;
}

std::vector<size_t> PreparedAtom::SharedColumns(
    const PreparedAtom& other) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (other.VarIndex(vars[i]) >= 0) out.push_back(i);
  }
  return out;
}

Result<PreparedAtom> PrepareAtom(const Atom& atom, const Database& db) {
  FGQ_ASSIGN_OR_RETURN(const Relation* rel, db.Find(atom.relation));
  if (rel->arity() != atom.arity()) {
    return Status::InvalidArgument(
        "atom " + atom.ToString() + " has arity " +
        std::to_string(atom.arity()) + " but relation '" + atom.relation +
        "' has arity " + std::to_string(rel->arity()));
  }
  PreparedAtom out;
  out.vars = atom.Variables();
  // Column of the first occurrence of each distinct variable.
  std::vector<size_t> first_col(out.vars.size());
  for (size_t v = 0; v < out.vars.size(); ++v) {
    for (size_t j = 0; j < atom.args.size(); ++j) {
      if (atom.args[j].is_var() && atom.args[j].var == out.vars[v]) {
        first_col[v] = j;
        break;
      }
    }
  }
  out.rel = Relation(atom.relation, out.vars.size());
  const size_t n = rel->NumTuples();
  Tuple t(out.vars.size());
  for (size_t i = 0; i < n; ++i) {
    const Value* row = rel->RowData(i);
    bool keep = true;
    for (size_t j = 0; j < atom.args.size() && keep; ++j) {
      const Term& a = atom.args[j];
      if (!a.is_var()) {
        keep = row[j] == a.constant;
      }
    }
    if (!keep) continue;
    // Repeated-variable equality: every occurrence must match the first.
    for (size_t j = 0; j < atom.args.size() && keep; ++j) {
      const Term& a = atom.args[j];
      if (a.is_var()) {
        for (size_t v = 0; v < out.vars.size(); ++v) {
          if (out.vars[v] == a.var) {
            keep = row[j] == row[first_col[v]];
            break;
          }
        }
      }
    }
    if (!keep) continue;
    for (size_t v = 0; v < out.vars.size(); ++v) t[v] = row[first_col[v]];
    out.rel.Add(t);
  }
  out.rel.SortDedup();
  return out;
}

Result<std::vector<PreparedAtom>> PrepareAtoms(const ConjunctiveQuery& q,
                                               const Database& db) {
  std::vector<PreparedAtom> out;
  for (const Atom& a : q.atoms()) {
    if (a.negated) continue;
    FGQ_ASSIGN_OR_RETURN(PreparedAtom pa, PrepareAtom(a, db));
    out.push_back(std::move(pa));
  }
  return out;
}

void SemijoinReduce(PreparedAtom* target, const PreparedAtom& source) {
  std::vector<size_t> target_cols = target->SharedColumns(source);
  if (target_cols.empty()) {
    // No shared variables: reduction only applies when source is empty
    // (the cross-product factor vanishes).
    if (source.rel.empty()) {
      target->rel = Relation(target->rel.name(), target->rel.arity());
    }
    return;
  }
  std::vector<size_t> source_cols;
  for (size_t c : target_cols) {
    source_cols.push_back(
        static_cast<size_t>(source.VarIndex(target->vars[c])));
  }
  // Hash the source keys.
  std::unordered_set<Tuple, VecHash> keys;
  keys.reserve(source.rel.NumTuples());
  Tuple key(source_cols.size());
  for (size_t i = 0; i < source.rel.NumTuples(); ++i) {
    const Value* row = source.rel.RowData(i);
    for (size_t j = 0; j < source_cols.size(); ++j) key[j] = row[source_cols[j]];
    keys.insert(key);
  }
  Tuple probe(target_cols.size());
  target->rel.Filter([&](TupleView row) {
    for (size_t j = 0; j < target_cols.size(); ++j) {
      probe[j] = row[target_cols[j]];
    }
    return keys.count(probe) > 0;
  });
}

PreparedAtom JoinProject(const PreparedAtom& left, const PreparedAtom& right,
                         const std::vector<std::string>& keep_vars) {
  PreparedAtom out;
  out.vars = keep_vars;
  out.rel = Relation("join", keep_vars.size());

  std::vector<size_t> left_cols = left.SharedColumns(right);
  std::vector<size_t> right_cols;
  for (size_t c : left_cols) {
    right_cols.push_back(static_cast<size_t>(right.VarIndex(left.vars[c])));
  }
  HashIndex right_index(right.rel, right_cols);

  // Where does each kept variable come from?
  struct Source {
    bool from_left;
    size_t col;
  };
  std::vector<Source> sources;
  sources.reserve(keep_vars.size());
  for (const std::string& v : keep_vars) {
    int lc = left.VarIndex(v);
    if (lc >= 0) {
      sources.push_back({true, static_cast<size_t>(lc)});
    } else {
      sources.push_back({false, static_cast<size_t>(right.VarIndex(v))});
    }
  }

  Tuple key(left_cols.size());
  Tuple t(keep_vars.size());
  for (size_t i = 0; i < left.rel.NumTuples(); ++i) {
    const Value* lrow = left.rel.RowData(i);
    for (size_t j = 0; j < left_cols.size(); ++j) key[j] = lrow[left_cols[j]];
    for (uint32_t ri : right_index.Lookup(key)) {
      const Value* rrow = right.rel.RowData(ri);
      for (size_t j = 0; j < sources.size(); ++j) {
        t[j] = sources[j].from_left ? lrow[sources[j].col] : rrow[sources[j].col];
      }
      out.rel.Add(t);
    }
  }
  out.rel.SortDedup();
  return out;
}

}  // namespace fgq
