#ifndef FGQ_EVAL_DISEQ_H_
#define FGQ_EVAL_DISEQ_H_

#include <memory>
#include <vector>

#include "fgq/db/database.h"
#include "fgq/eval/enumerate.h"
#include "fgq/query/cq.h"
#include "fgq/util/status.h"

/// \file diseq.h
/// Acyclic conjunctive queries with disequalities, ACQ_!= (Section 4.3).
///
/// Unlike order comparisons (which make acyclic queries W[1]-hard,
/// Theorem 4.15), disequalities only carve *exceptions* out of large
/// candidate sets, and the paper bounds those exceptions combinatorially
/// through covers of tables (Definitions 4.16-4.19): a table (E, f) of k
/// unary functions has at most k! minimal covers and a representative set
/// of size O(k!). This module implements that machinery verbatim — it is
/// directly testable against Example 4.19 — and uses its simplest
/// instantiation for evaluation: when a quantified variable z carries k
/// disequalities z != u_j, any k+1 distinct witnesses for z are a
/// representative set, because at most k of them can be forbidden.
///
/// EvaluateAcqNeq / MakeNeqEnumerator eliminate each constrained
/// quantified variable by storing up to k+1 witnesses per join key during
/// the (linear) preprocessing, then enumerate the remaining free-connex
/// query with constant delay, checking witnesses and free-free
/// disequalities in query-sized time per answer (Theorem 4.20's upper
/// bound). The fast path requires each constrained quantified variable to
/// occur in a single atom whose other variables are free, and each
/// disequality to touch at most one quantified variable; other shapes fall
/// back to the backtracking oracle (EvaluateAcqNeq) or report Unsupported
/// (MakeNeqEnumerator).

namespace fgq {

/// The blank symbol of covers, written "square cup" in the paper.
inline constexpr Value kBlank = INT64_MIN;

/// A table (E, f): |E| rows, each listing the values f_1(x)..f_k(x).
struct FunctionTable {
  size_t k = 0;
  std::vector<Tuple> rows;

  /// Distinct values appearing in column i.
  std::vector<Value> ColumnValues(size_t i) const;
};

/// True if `cover` (length k, kBlank allowed) covers the table: every row
/// agrees with the cover on at least one non-blank coordinate
/// (Definition 4.16).
bool CoversTable(const FunctionTable& table, const Tuple& cover);

/// True if c1 is more general than (or equal to) c2: componentwise, either
/// equal or c1 has a blank (Definition 4.17).
bool MoreGeneral(const Tuple& c1, const Tuple& c2);

/// All minimal covers of the table (Definition 4.17); at most k! of them.
std::vector<Tuple> MinimalCovers(const FunctionTable& table);

/// A representative set: row indices E' <= E with covers(E') = covers(E)
/// and |E'| = O(k!) (Definition and remark after Example 4.19).
std::vector<size_t> RepresentativeSet(const FunctionTable& table);

/// Every cover over the alphabet `range` (union of column values) plus
/// blank — brute force, for property tests only.
std::vector<Tuple> AllCoversBruteForce(const FunctionTable& table,
                                       const std::vector<Value>& range);

/// Evaluates an acyclic query whose comparisons are all disequalities.
/// Uses the witness fast path when the query's shape permits, otherwise
/// the backtracking oracle.
Result<Relation> EvaluateAcqNeq(const ConjunctiveQuery& q, const Database& db);

/// Constant-delay enumeration of a free-connex ACQ_!= (Theorem 4.20).
Result<std::unique_ptr<AnswerEnumerator>> MakeNeqEnumerator(
    const ConjunctiveQuery& q, const Database& db);

}  // namespace fgq

#endif  // FGQ_EVAL_DISEQ_H_
