#ifndef FGQ_EVAL_CLIQUE_GADGET_H_
#define FGQ_EVAL_CLIQUE_GADGET_H_

#include "fgq/db/database.h"
#include "fgq/mso/tree_decomposition.h"
#include "fgq/query/cq.h"

/// \file clique_gadget.h
/// The k-clique gadget for acyclic queries with order comparisons
/// (Section 4.3, Theorem 4.15, [69]).
///
/// Inequalities let an *acyclic* query express k-clique — which is why
/// ACQ_< is W[1]-hard while plain ACQ and ACQ_!= are tractable. The
/// encoding maps index pairs (i, j) with a flag b to domain elements
///
///     [i, j, b] = (i + j) n^3 + |i - j| n^2 + b n + i
///
/// so that x_ij < x_ji < y_ij forces the two elements to agree on their
/// underlying vertex pair, and builds k row-chains
/// P(x_i1, y_i1), R(y_i1, x_i2), P(x_i2, y_i2), ... — an acyclic body.
/// The graph G (with self-loops added) has a k-clique iff D |= phi.

namespace fgq {

/// The gadget instance: the database D and Boolean query phi of
/// Theorem 4.15 built from graph `g` and parameter `k`.
struct CliqueGadget {
  Database db;
  ConjunctiveQuery query;
};

/// Builds the gadget. The query has 2k^2 variables; evaluate with the
/// backtracking oracle (the point of the theorem is that no FPT algorithm
/// should exist).
CliqueGadget BuildCliqueGadget(const Graph& g, int k);

/// Reference check: does g contain a k-clique? (Exponential in k.)
bool HasClique(const Graph& g, int k);

}  // namespace fgq

#endif  // FGQ_EVAL_CLIQUE_GADGET_H_
