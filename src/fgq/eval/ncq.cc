#include "fgq/eval/ncq.h"

#include <algorithm>
#include <map>
#include <set>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "fgq/eval/oracle.h"
#include "fgq/eval/prepared.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/util/hash.h"

namespace fgq {

namespace {

/// A negative constraint: forbidden assignments of a variable scope.
struct Constraint {
  std::vector<std::string> scope;  // Sorted variable names.
  std::set<Tuple> forbidden;       // Tuples aligned with `scope`.
};

/// Positions of `sub` (a subset) inside `super`; both sorted.
std::vector<size_t> ScopePositions(const std::vector<std::string>& sub,
                                   const std::vector<std::string>& super) {
  std::vector<size_t> pos;
  for (const std::string& v : sub) {
    auto it = std::lower_bound(super.begin(), super.end(), v);
    pos.push_back(static_cast<size_t>(it - super.begin()));
  }
  return pos;
}

bool IsSubsetScope(const std::vector<std::string>& sub,
                   const std::vector<std::string>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

}  // namespace

Result<bool> DecideBetaAcyclicNcq(const ConjunctiveQuery& q,
                                  const Database& db) {
  FGQ_RETURN_NOT_OK(q.Validate());
  if (!q.IsBoolean()) {
    return Status::InvalidArgument("NCQ decision requires a Boolean query");
  }
  if (!q.IsNegative()) {
    return Status::InvalidArgument("NCQ requires all atoms negated");
  }
  if (!IsBetaAcyclicQuery(q)) {
    return Status::InvalidArgument("query is not beta-acyclic: " +
                                   q.ToString());
  }
  const Value domain = db.DomainSize();
  std::vector<std::string> all_vars = q.Variables();
  if (domain == 0) {
    // The empty domain satisfies no existential quantification.
    return all_vars.empty();
  }

  // Initial constraints from the (negated) atoms: PrepareAtom resolves
  // constants and repeated variables, leaving forbidden tuples over the
  // atom's distinct variables.
  std::vector<Constraint> constraints;
  for (const Atom& a : q.atoms()) {
    FGQ_ASSIGN_OR_RETURN(PreparedAtom pa, PrepareAtom(a, db));
    Constraint c;
    c.scope = pa.vars;
    std::sort(c.scope.begin(), c.scope.end());
    std::vector<size_t> order;
    for (const std::string& v : c.scope) {
      order.push_back(static_cast<size_t>(pa.VarIndex(v)));
    }
    Tuple t(c.scope.size());
    for (size_t r = 0; r < pa.rel.NumTuples(); ++r) {
      const Value* row = pa.rel.RowData(r);
      for (size_t j = 0; j < order.size(); ++j) t[j] = row[order[j]];
      c.forbidden.insert(t);
    }
    if (c.scope.empty()) {
      // Fully ground negated atom: a matching tuple falsifies the query.
      if (pa.rel.NumTuples() > 0) return false;
      continue;
    }
    constraints.push_back(std::move(c));
  }

  std::set<std::string> remaining(all_vars.begin(), all_vars.end());
  while (!remaining.empty()) {
    // Find a dynamic nest point: a variable whose constraints form a chain
    // under scope inclusion. Beta-acyclicity is hereditary under the
    // scope-shrinking our elimination performs, so one always exists.
    std::string z;
    std::vector<size_t> chain;  // Constraint indices, sorted by scope size.
    bool found = false;
    for (const std::string& cand : remaining) {
      chain.clear();
      for (size_t i = 0; i < constraints.size(); ++i) {
        if (std::binary_search(constraints[i].scope.begin(),
                               constraints[i].scope.end(), cand)) {
          chain.push_back(i);
        }
      }
      std::sort(chain.begin(), chain.end(), [&](size_t a, size_t b) {
        return constraints[a].scope.size() < constraints[b].scope.size();
      });
      bool is_chain = true;
      for (size_t i = 0; i + 1 < chain.size() && is_chain; ++i) {
        is_chain = IsSubsetScope(constraints[chain[i]].scope,
                                 constraints[chain[i + 1]].scope);
      }
      if (is_chain) {
        z = cand;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Internal("no nest point available mid-elimination");
    }
    remaining.erase(z);
    if (chain.empty()) continue;  // Unconstrained variable: drop it.

    // For each chain level, map (scope minus z) -> forbidden z values.
    struct Level {
      std::vector<std::string> scope_wo_z;
      std::unordered_map<Tuple, std::set<Value>, VecHash> forbidden_z;
    };
    std::vector<Level> levels;
    for (size_t ci : chain) {
      const Constraint& c = constraints[ci];
      Level lvl;
      size_t z_pos = static_cast<size_t>(
          std::lower_bound(c.scope.begin(), c.scope.end(), z) -
          c.scope.begin());
      for (size_t j = 0; j < c.scope.size(); ++j) {
        if (j != z_pos) lvl.scope_wo_z.push_back(c.scope[j]);
      }
      Tuple key(lvl.scope_wo_z.size());
      for (const Tuple& t : c.forbidden) {
        size_t w = 0;
        for (size_t j = 0; j < c.scope.size(); ++j) {
          if (j != z_pos) key[w++] = t[j];
        }
        lvl.forbidden_z[key].insert(t[z_pos]);
      }
      levels.push_back(std::move(lvl));
    }

    // Emit new constraints: a key at level j is forbidden when the union
    // of z-values from levels <= j (at the key's projections) covers the
    // domain.
    std::vector<Constraint> new_constraints;
    for (size_t j = 0; j < levels.size(); ++j) {
      Constraint nc;
      nc.scope = levels[j].scope_wo_z;
      for (const auto& [key, zs] : levels[j].forbidden_z) {
        std::set<Value> cov = zs;
        for (size_t i = 0; i < j; ++i) {
          std::vector<size_t> proj =
              ScopePositions(levels[i].scope_wo_z, levels[j].scope_wo_z);
          Tuple sub(proj.size());
          for (size_t p = 0; p < proj.size(); ++p) sub[p] = key[proj[p]];
          auto it = levels[i].forbidden_z.find(sub);
          if (it != levels[i].forbidden_z.end()) {
            cov.insert(it->second.begin(), it->second.end());
          }
        }
        if (static_cast<Value>(cov.size()) >= domain) {
          nc.forbidden.insert(key);
        }
      }
      if (nc.scope.empty()) {
        if (!nc.forbidden.empty()) return false;  // All assignments die.
        continue;
      }
      if (!nc.forbidden.empty()) new_constraints.push_back(std::move(nc));
    }

    // Remove the chain constraints; merge the new ones in (constraints
    // with identical scopes coalesce).
    std::vector<Constraint> next;
    std::set<size_t> chain_set(chain.begin(), chain.end());
    for (size_t i = 0; i < constraints.size(); ++i) {
      if (!chain_set.count(i)) next.push_back(std::move(constraints[i]));
    }
    for (Constraint& nc : new_constraints) {
      bool merged = false;
      for (Constraint& c : next) {
        if (c.scope == nc.scope) {
          c.forbidden.insert(nc.forbidden.begin(), nc.forbidden.end());
          merged = true;
          break;
        }
      }
      if (!merged) next.push_back(std::move(nc));
    }
    constraints = std::move(next);
  }

  // All variables eliminated without deriving the empty forbidden tuple.
  return true;
}

TriangleNcq BuildTriangleNcq(const Graph& g) {
  TriangleNcq out;
  // Complement adjacency (with the diagonal) in three self-join-free
  // copies, one per atom.
  for (int copy = 1; copy <= 3; ++copy) {
    Relation r("R" + std::to_string(copy), 2);
    for (int u = 0; u < g.n; ++u) {
      for (int v = 0; v < g.n; ++v) {
        if (u == v || !g.HasEdge(u, v)) {
          r.Add({static_cast<Value>(u), static_cast<Value>(v)});
        }
      }
    }
    out.db.PutRelation(std::move(r));
  }
  out.db.DeclareDomainSize(g.n);
  ConjunctiveQuery q("triangle", {}, {});
  const char* vars[3][2] = {{"x", "y"}, {"y", "z"}, {"z", "x"}};
  for (int copy = 0; copy < 3; ++copy) {
    Atom a;
    a.relation = "R" + std::to_string(copy + 1);
    a.negated = true;
    a.args = {Term::Var(vars[copy][0]), Term::Var(vars[copy][1])};
    q.AddAtom(std::move(a));
  }
  out.query = std::move(q);
  return out;
}

Result<bool> DecideNcqBruteForce(const ConjunctiveQuery& q,
                                 const Database& db) {
  FGQ_RETURN_NOT_OK(q.Validate());
  if (!q.IsBoolean() || !q.IsNegative()) {
    return Status::InvalidArgument("brute force expects a Boolean NCQ");
  }
  // Hash the forbidden tuple sets once, then walk domain^vars with eager
  // pruning: each negated atom is checked as soon as its variables are
  // bound.
  std::vector<std::string> vars = q.Variables();
  std::map<std::string, size_t> var_id;
  for (size_t i = 0; i < vars.size(); ++i) var_id[vars[i]] = i;

  struct HashedAtom {
    std::vector<size_t> var_ids;      // Per argument (constants resolved).
    std::unordered_set<Tuple, VecHash> forbidden;
    size_t last_var;                  // Check once this variable is bound.
  };
  std::vector<HashedAtom> atoms;
  for (const Atom& a : q.atoms()) {
    FGQ_ASSIGN_OR_RETURN(PreparedAtom pa, PrepareAtom(a, db));
    HashedAtom h;
    h.last_var = 0;
    for (const std::string& v : pa.vars) {
      size_t id = var_id[v];
      h.var_ids.push_back(id);
      h.last_var = std::max(h.last_var, id);
    }
    for (size_t r = 0; r < pa.rel.NumTuples(); ++r) {
      h.forbidden.insert(pa.rel.Row(r).ToTuple());
    }
    if (pa.vars.empty()) {
      // Ground negated atom.
      if (pa.rel.NumTuples() > 0) return false;
      continue;
    }
    atoms.push_back(std::move(h));
  }
  const Value n = db.DomainSize();
  if (n == 0) return vars.empty();

  std::vector<Value> assignment(vars.size(), 0);
  std::function<bool(size_t)> rec = [&](size_t depth) {
    if (depth == vars.size()) return true;
    for (Value d = 0; d < n; ++d) {
      assignment[depth] = d;
      bool ok = true;
      for (const HashedAtom& h : atoms) {
        if (h.last_var != depth) continue;
        Tuple key(h.var_ids.size());
        for (size_t j = 0; j < h.var_ids.size(); ++j) {
          key[j] = assignment[h.var_ids[j]];
        }
        if (h.forbidden.count(key)) {
          ok = false;
          break;
        }
      }
      if (ok && rec(depth + 1)) return true;
    }
    return false;
  };
  return rec(0);
}

}  // namespace fgq
