#ifndef FGQ_EVAL_PREPARED_H_
#define FGQ_EVAL_PREPARED_H_

#include <string>
#include <vector>

#include "fgq/db/database.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/query/cq.h"
#include "fgq/util/exec_options.h"
#include "fgq/util/status.h"

/// \file prepared.h
/// Atom preparation shared by every CQ evaluation algorithm.
///
/// Each positive atom R(t1..tk) is materialized as a relation over the
/// atom's *distinct variables*: rows violating constant arguments or
/// repeated-variable equalities are dropped, and columns are projected to
/// one per distinct variable (in first-occurrence order). All downstream
/// algorithms (Yannakakis, counting DP, enumerators) then reason purely in
/// terms of variable lists.
///
/// Every function takes an optional ExecContext. With a pool, preparation
/// fans out one task per atom and morsel-chunks the filter/projection scan
/// inside each atom; semijoins build their key set hash-partitioned by
/// morsel and probe in parallel. A default (serial) context reproduces the
/// single-threaded behavior bit-for-bit.
///
/// The semijoin sweeps poll the context's CancelToken between nodes (or
/// levels, in parallel mode) and return early once it trips, leaving the
/// atoms partially reduced; callers holding the token (FullReduce) turn
/// the trip into a DeadlineExceeded/Cancelled Status.

namespace fgq {

/// A positive atom resolved against the database.
struct PreparedAtom {
  /// Distinct variables of the atom, in first-occurrence order; these are
  /// the columns of `rel`.
  std::vector<std::string> vars;
  /// Filtered, projected, deduplicated tuples.
  Relation rel;

  /// Index of `v` in `vars`, or -1.
  int VarIndex(const std::string& v) const;

  /// Column positions (into `vars`) of the variables shared with `other`.
  std::vector<size_t> SharedColumns(const PreparedAtom& other) const;
};

/// Prepares every positive atom of `q` against `db`. Fails if a referenced
/// relation is missing or an atom's arity mismatches its relation.
Result<std::vector<PreparedAtom>> PrepareAtoms(
    const ConjunctiveQuery& q, const Database& db,
    const ExecContext& ctx = ExecContext());

/// Prepares a single atom.
Result<PreparedAtom> PrepareAtom(const Atom& atom, const Database& db,
                                 const ExecContext& ctx = ExecContext());

/// Semijoin reduction: keeps the tuples of `target` that agree with some
/// tuple of `source` on the shared variables. O(|source| + |target|).
void SemijoinReduce(PreparedAtom* target, const PreparedAtom& source,
                    const ExecContext& ctx = ExecContext());

/// In-place join of `left` with `right`, projecting the result onto
/// `keep_vars` (which must be a subset of the union of both variable
/// lists). Returns the joined PreparedAtom.
PreparedAtom JoinProject(const PreparedAtom& left, const PreparedAtom& right,
                         const std::vector<std::string>& keep_vars,
                         const ExecContext& ctx = ExecContext());

/// The bottom-up semijoin sweep of Yannakakis' full reduction: every
/// non-root node reduces its parent. With a pool, sibling subtrees are
/// processed level-synchronously — all parents of one tree depth reduce
/// concurrently (they write disjoint atoms) — and each semijoin is itself
/// morsel-parallel. The reduced atoms are identical to the serial sweep's
/// because semijoins against distinct children commute as row filters.
void SemijoinSweepBottomUp(std::vector<PreparedAtom>* atoms,
                           const JoinTree& tree,
                           const ExecContext& ctx = ExecContext());

/// The top-down sweep: every node reduces its children, root first.
/// Parallel mode processes each depth level concurrently.
void SemijoinSweepTopDown(std::vector<PreparedAtom>* atoms,
                          const JoinTree& tree,
                          const ExecContext& ctx = ExecContext());

/// Both sweeps of Yannakakis' full reduction in one call, run over
/// per-atom selection bitmaps instead of materialized intermediates: each
/// semijoin only flips alive bytes of the target atom, and every relation
/// is compacted exactly once at the end. Produces the same reduced atoms
/// as SemijoinSweepBottomUp followed by SemijoinSweepTopDown, for any
/// thread count. Polls ctx.cancel() between nodes (levels in parallel
/// mode) and compacts the partial reduction on a trip.
void FullReduceSweeps(std::vector<PreparedAtom>* atoms, const JoinTree& tree,
                      const ExecContext& ctx = ExecContext());

}  // namespace fgq

#endif  // FGQ_EVAL_PREPARED_H_
