#ifndef FGQ_EVAL_BMM_H_
#define FGQ_EVAL_BMM_H_

#include <vector>

#include "fgq/db/database.h"
#include "fgq/query/cq.h"
#include "fgq/util/status.h"

/// \file bmm.h
/// The Boolean matrix multiplication reduction (Section 4.1.2,
/// Theorems 4.8/4.9).
///
/// The matrix-product query Pi(x, y) = exists z. A(x, z) & B(z, y) is the
/// canonical non-free-connex acyclic query: enumerating Pi(D_BM) in
/// constant delay after linear preprocessing would multiply two n x n
/// Boolean matrices in O(n^2) — contradicting the Mat-Mul hypothesis.
/// Conversely, every self-join-free non-free-connex ACQ embeds Pi
/// (Example 4.7's padding with the bottom element). This module implements
/// both directions so the benchmarks can measure them:
///
/// * MultiplyViaQuery — multiplies matrices by evaluating Pi through the
///   ACQ engine (the "reduction forward" direction);
/// * MultiplyNaive — the cubic textbook baseline;
/// * EmbedMatricesIntoQuery — given any self-join-free non-free-connex
///   ACQ, builds the database D with phi(D) = Pi(D_BM) x {bottom}^(m-2).

namespace fgq {

/// A dense square Boolean matrix.
struct BoolMatrix {
  explicit BoolMatrix(size_t n) : n(n), bits(n * n, false) {}
  size_t n;
  std::vector<bool> bits;

  bool Get(size_t i, size_t j) const { return bits[i * n + j]; }
  void Set(size_t i, size_t j, bool v) { bits[i * n + j] = v; }
};

/// The query Pi(x, y) = exists z. A(x, z) & B(z, y).
ConjunctiveQuery MatrixProductQuery();

/// Encodes A and B as binary relations over domain [0, n).
Database BuildMatrixDatabase(const BoolMatrix& a, const BoolMatrix& b);

/// C = A * B by cubic triple loop.
BoolMatrix MultiplyNaive(const BoolMatrix& a, const BoolMatrix& b);

/// C = A * B by evaluating Pi through Yannakakis. Output-linear in the
/// number of 1s of C — the best the enumeration route can do for a
/// non-free-connex query (Theorem 4.8).
Result<BoolMatrix> MultiplyViaQuery(const BoolMatrix& a, const BoolMatrix& b);

/// Example 4.7: given a self-join-free, acyclic, NON-free-connex query
/// `q`, builds a database D such that phi(D) equals Pi(D_BM) padded with
/// the bottom element on the remaining head positions (up to head
/// reordering). `x_var`/`y_var`/`z_var` select which query variables play
/// x, y, z. Fails when the variables do not form a Pi-shaped obstruction
/// (x with z but not y, z with y, x and y sharing no atom).
Result<Database> EmbedMatricesIntoQuery(const ConjunctiveQuery& q,
                                        const std::string& x_var,
                                        const std::string& y_var,
                                        const std::string& z_var,
                                        const BoolMatrix& a,
                                        const BoolMatrix& b);

}  // namespace fgq

#endif  // FGQ_EVAL_BMM_H_
