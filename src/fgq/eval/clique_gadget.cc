#include "fgq/eval/clique_gadget.h"
#include <functional>

#include <cstdlib>
#include <string>
#include <vector>

namespace fgq {

namespace {

Value Encode(int i, int j, int b, int n) {
  Value nn = n;
  return (static_cast<Value>(i) + j) * nn * nn * nn +
         static_cast<Value>(std::abs(i - j)) * nn * nn +
         static_cast<Value>(b) * nn + i;
}

std::string XVar(int i, int j) {
  return "x_" + std::to_string(i) + "_" + std::to_string(j);
}
std::string YVar(int i, int j) {
  return "y_" + std::to_string(i) + "_" + std::to_string(j);
}

}  // namespace

CliqueGadget BuildCliqueGadget(const Graph& g, int k) {
  const int n = g.n;
  CliqueGadget out;

  // P([i,j,0], [i,j,1]) iff (i,j) in E (self-loops included).
  Relation p("P", 2);
  for (int i = 0; i < n; ++i) {
    p.Add({Encode(i, i, 0, n), Encode(i, i, 1, n)});
    for (int j : g.adj[static_cast<size_t>(i)]) {
      p.Add({Encode(i, j, 0, n), Encode(i, j, 1, n)});
    }
  }
  p.SortDedup();
  // R([i,j,1], [i,j',0]) for all i, j, j'.
  Relation r("R", 2);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int j2 = 0; j2 < n; ++j2) {
        r.Add({Encode(i, j, 1, n), Encode(i, j2, 0, n)});
      }
    }
  }
  r.SortDedup();
  out.db.PutRelation(std::move(p));
  out.db.PutRelation(std::move(r));

  // phi: k row chains + the ordering constraints.
  ConjunctiveQuery q("clique", {}, {});
  for (int i = 1; i <= k; ++i) {
    for (int j = 1; j <= k; ++j) {
      Atom pa;
      pa.relation = "P";
      pa.args = {Term::Var(XVar(i, j)), Term::Var(YVar(i, j))};
      q.AddAtom(std::move(pa));
      if (j < k) {
        Atom ra;
        ra.relation = "R";
        ra.args = {Term::Var(YVar(i, j)), Term::Var(XVar(i, j + 1))};
        q.AddAtom(std::move(ra));
      }
    }
  }
  for (int i = 1; i <= k; ++i) {
    for (int j = i + 1; j <= k; ++j) {
      q.AddComparison({XVar(i, j), XVar(j, i), Comparison::Op::kLess});
      q.AddComparison({XVar(j, i), YVar(i, j), Comparison::Op::kLess});
    }
  }
  out.query = std::move(q);
  return out;
}

bool HasClique(const Graph& g, int k) {
  std::vector<int> chosen;
  // Simple backtracking over vertices in increasing order.
  std::function<bool(int)> rec = [&](int start) {
    if (static_cast<int>(chosen.size()) == k) return true;
    for (int v = start; v < g.n; ++v) {
      bool ok = true;
      for (int u : chosen) {
        if (!g.HasEdge(u, v)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        chosen.push_back(v);
        if (rec(v + 1)) return true;
        chosen.pop_back();
      }
    }
    return false;
  };
  return rec(0);
}

}  // namespace fgq
