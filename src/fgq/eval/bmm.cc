#include "fgq/eval/bmm.h"

#include <algorithm>

#include "fgq/eval/yannakakis.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/query/parser.h"

namespace fgq {

ConjunctiveQuery MatrixProductQuery() {
  return ParseConjunctiveQuery("Pi(x, y) :- A(x, z), B(z, y).").value();
}

Database BuildMatrixDatabase(const BoolMatrix& a, const BoolMatrix& b) {
  Database db;
  Relation ra("A", 2);
  Relation rb("B", 2);
  for (size_t i = 0; i < a.n; ++i) {
    for (size_t j = 0; j < a.n; ++j) {
      if (a.Get(i, j)) ra.Add({static_cast<Value>(i), static_cast<Value>(j)});
      if (b.Get(i, j)) rb.Add({static_cast<Value>(i), static_cast<Value>(j)});
    }
  }
  db.PutRelation(std::move(ra));
  db.PutRelation(std::move(rb));
  db.DeclareDomainSize(static_cast<Value>(a.n));
  return db;
}

BoolMatrix MultiplyNaive(const BoolMatrix& a, const BoolMatrix& b) {
  BoolMatrix c(a.n);
  for (size_t i = 0; i < a.n; ++i) {
    for (size_t k = 0; k < a.n; ++k) {
      if (!a.Get(i, k)) continue;
      for (size_t j = 0; j < a.n; ++j) {
        if (b.Get(k, j)) c.Set(i, j, true);
      }
    }
  }
  return c;
}

Result<BoolMatrix> MultiplyViaQuery(const BoolMatrix& a, const BoolMatrix& b) {
  if (a.n != b.n) return Status::InvalidArgument("matrix size mismatch");
  Database db = BuildMatrixDatabase(a, b);
  FGQ_ASSIGN_OR_RETURN(Relation res, EvaluateYannakakis(MatrixProductQuery(), db));
  BoolMatrix c(a.n);
  for (size_t r = 0; r < res.NumTuples(); ++r) {
    const Value* row = res.RowData(r);
    c.Set(static_cast<size_t>(row[0]), static_cast<size_t>(row[1]), true);
  }
  return c;
}

Result<Database> EmbedMatricesIntoQuery(const ConjunctiveQuery& q,
                                        const std::string& x_var,
                                        const std::string& y_var,
                                        const std::string& z_var,
                                        const BoolMatrix& a,
                                        const BoolMatrix& b) {
  if (a.n != b.n) return Status::InvalidArgument("matrix size mismatch");
  if (!q.IsSelfJoinFree()) {
    return Status::InvalidArgument("embedding requires a self-join-free query");
  }
  const Value n = static_cast<Value>(a.n);
  const Value bottom = n;  // Padding element, the paper's "bot".

  Database db;
  for (const Atom& atom : q.atoms()) {
    std::vector<std::string> vars = atom.Variables();
    bool has_x = std::count(vars.begin(), vars.end(), x_var) > 0;
    bool has_y = std::count(vars.begin(), vars.end(), y_var) > 0;
    bool has_z = std::count(vars.begin(), vars.end(), z_var) > 0;
    if (has_x && has_y) {
      return Status::InvalidArgument(
          "variables '" + x_var + "' and '" + y_var +
          "' share an atom; pick a genuine Pi-shaped obstruction");
    }
    Relation rel(atom.relation, atom.arity());
    auto emit = [&](Value av, Value bv, Value cv) {
      Tuple t(atom.arity());
      for (size_t j = 0; j < atom.args.size(); ++j) {
        const Term& term = atom.args[j];
        if (!term.is_var()) {
          t[j] = term.constant;
        } else if (term.var == x_var) {
          t[j] = av;
        } else if (term.var == z_var) {
          t[j] = bv;
        } else if (term.var == y_var) {
          t[j] = cv;
        } else {
          t[j] = bottom;
        }
      }
      rel.Add(t);
    };
    if (has_x && has_z) {
      for (Value i = 0; i < n; ++i) {
        for (Value j = 0; j < n; ++j) {
          if (a.Get(static_cast<size_t>(i), static_cast<size_t>(j))) {
            emit(i, j, bottom);
          }
        }
      }
    } else if (has_z && has_y) {
      for (Value i = 0; i < n; ++i) {
        for (Value j = 0; j < n; ++j) {
          if (b.Get(static_cast<size_t>(i), static_cast<size_t>(j))) {
            emit(bottom, i, j);
          }
        }
      }
    } else if (has_x) {
      for (Value i = 0; i < n; ++i) emit(i, bottom, bottom);
    } else if (has_y) {
      for (Value i = 0; i < n; ++i) emit(bottom, bottom, i);
    } else if (has_z) {
      for (Value i = 0; i < n; ++i) emit(bottom, i, bottom);
    } else {
      emit(bottom, bottom, bottom);
    }
    rel.SortDedup();
    db.PutRelation(std::move(rel));
  }
  db.DeclareDomainSize(n + 1);
  return db;
}

}  // namespace fgq
