#ifndef FGQ_EVAL_UCQ_ENUM_H_
#define FGQ_EVAL_UCQ_ENUM_H_

#include <memory>

#include "fgq/eval/enumerate.h"
#include "fgq/query/cq.h"

/// \file ucq_enum.h
/// Enumeration for unions of conjunctive queries (Section 4.2, [22]).
///
/// * If every disjunct is free-connex, the union is enumerable with
///   constant (amortized) delay: the disjuncts' constant-delay enumerators
///   are interleaved and duplicates are suppressed with a hash set — the
///   Cheater's-lemma argument of [22] bounds the amortized delay because
///   each enumerator individually never repeats and there are only k of
///   them.
/// * A disjunct that is NOT free-connex can still be easy when its
///   missing variables are *provided* by another disjunct
///   (Definitions 4.11/4.12): we search for a body homomorphism from a
///   provider into the deficient disjunct, materialize the provider's
///   projection as a fresh atom P(v), and enumerate the now free-connex
///   union extension. Materializing the provided atom costs time
///   proportional to the provider's answer set (an output-sensitive
///   relaxation of [22]'s strictly-linear preprocessing; the enumeration
///   delay is unchanged).

namespace fgq {

/// True if `provider` provides the variables `targets` (names in
/// `deficient`'s variable space) to `deficient` in the sense of
/// Definition 4.11: some body homomorphism h maps provider atoms into
/// deficient atoms with h^-1(targets) free in the provider. On success,
/// `h_out` (optional) receives the homomorphism as pairs
/// (provider var -> deficient var).
bool ProvidesVariables(const ConjunctiveQuery& provider,
                       const ConjunctiveQuery& deficient,
                       const std::vector<std::string>& targets,
                       std::vector<std::pair<std::string, std::string>>* h_out);

/// Attempts to make every disjunct free-connex by adding provided atoms
/// (union extension, Definition 4.12). Returns the extended UCQ and
/// appends materialized provider relations to `scratch`. Fails if some
/// disjunct cannot be extended.
Result<UnionQuery> BuildFreeConnexExtension(const UnionQuery& u,
                                            const Database& db,
                                            Database* scratch);

/// Enumerates a UCQ with (amortized) constant delay after preprocessing,
/// using union extensions where needed (Theorem 4.13).
Result<std::unique_ptr<AnswerEnumerator>> MakeUnionEnumerator(
    const UnionQuery& u, const Database& db);

}  // namespace fgq

#endif  // FGQ_EVAL_UCQ_ENUM_H_
