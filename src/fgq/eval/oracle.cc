#include "fgq/eval/oracle.h"

#include <algorithm>
#include <map>
#include <set>

#include "fgq/eval/prepared.h"

namespace fgq {

namespace {

constexpr Value kUnset = INT64_MIN;

/// Backtracking state shared across the recursion.
struct SearchState {
  const ConjunctiveQuery* q;
  const Database* db;
  std::vector<std::string> vars;        // All variables.
  std::map<std::string, size_t> var_id;
  std::vector<Value> assignment;        // kUnset when unbound.
  Value domain_size;
  // Raw relations per atom (atom order of q->atoms()).
  std::vector<const Relation*> rels;
  Relation* out;
  std::vector<size_t> head_ids;
  const CancelToken* cancel;
  uint64_t nodes_visited = 0;
  bool aborted = false;
};

/// True if `row` of atom `a` is consistent with the current (partial)
/// assignment and the atom's constants / repeated variables.
bool RowConsistent(const SearchState& st, const Atom& a, const Value* row) {
  for (size_t j = 0; j < a.args.size(); ++j) {
    const Term& t = a.args[j];
    if (!t.is_var()) {
      if (row[j] != t.constant) return false;
    } else {
      Value bound = st.assignment[st.var_id.at(t.var)];
      if (bound != kUnset && row[j] != bound) return false;
    }
  }
  // Repeated variables must agree even when the variable is unbound.
  for (size_t j = 0; j < a.args.size(); ++j) {
    if (!a.args[j].is_var()) continue;
    for (size_t l = j + 1; l < a.args.size(); ++l) {
      if (a.args[l].is_var() && a.args[l].var == a.args[j].var &&
          row[l] != row[j]) {
        return false;
      }
    }
  }
  return true;
}

bool AtomFullyBound(const SearchState& st, const Atom& a) {
  for (const Term& t : a.args) {
    if (t.is_var() && st.assignment[st.var_id.at(t.var)] == kUnset) {
      return false;
    }
  }
  return true;
}

/// Checks all constraints whose variables are fully bound.
bool PartialCheck(const SearchState& st) {
  for (size_t i = 0; i < st.q->atoms().size(); ++i) {
    const Atom& a = st.q->atoms()[i];
    if (!AtomFullyBound(st, a)) continue;
    bool found = false;
    const Relation* rel = st.rels[i];
    for (size_t r = 0; r < rel->NumTuples() && !found; ++r) {
      found = RowConsistent(st, a, rel->RowData(r));
    }
    if (a.negated ? found : !found) return false;
  }
  for (const Comparison& c : st.q->comparisons()) {
    Value lhs = st.assignment[st.var_id.at(c.lhs)];
    Value rhs = st.assignment[st.var_id.at(c.rhs)];
    if (lhs == kUnset || rhs == kUnset) continue;
    if (!c.Holds(lhs, rhs)) return false;
  }
  return true;
}

/// Picks the next variable: prefer one occurring in a positive atom that
/// already has a bound variable or a constant (cheap propagation).
int PickVariable(const SearchState& st) {
  int fallback = -1;
  int positive_fallback = -1;
  for (size_t v = 0; v < st.vars.size(); ++v) {
    if (st.assignment[v] != kUnset) continue;
    if (fallback < 0) fallback = static_cast<int>(v);
    for (const Atom& a : st.q->atoms()) {
      if (a.negated) continue;
      bool contains = false;
      bool anchored = false;
      for (const Term& t : a.args) {
        if (!t.is_var()) {
          anchored = true;
        } else if (t.var == st.vars[v]) {
          contains = true;
        } else if (st.assignment[st.var_id.at(t.var)] != kUnset) {
          anchored = true;
        }
      }
      if (contains) {
        if (positive_fallback < 0) positive_fallback = static_cast<int>(v);
        if (anchored) return static_cast<int>(v);
      }
    }
  }
  return positive_fallback >= 0 ? positive_fallback : fallback;
}

/// Candidate values for variable v: from the first positive atom that
/// contains it (rows consistent with the current assignment), else the
/// whole domain.
std::vector<Value> Candidates(const SearchState& st, size_t v) {
  for (size_t i = 0; i < st.q->atoms().size(); ++i) {
    const Atom& a = st.q->atoms()[i];
    if (a.negated) continue;
    int pos = -1;
    for (size_t j = 0; j < a.args.size(); ++j) {
      if (a.args[j].is_var() && a.args[j].var == st.vars[v]) {
        pos = static_cast<int>(j);
        break;
      }
    }
    if (pos < 0) continue;
    std::set<Value> vals;
    const Relation* rel = st.rels[i];
    for (size_t r = 0; r < rel->NumTuples(); ++r) {
      const Value* row = rel->RowData(r);
      if (RowConsistent(st, a, row)) vals.insert(row[pos]);
    }
    return std::vector<Value>(vals.begin(), vals.end());
  }
  std::vector<Value> all;
  all.reserve(static_cast<size_t>(st.domain_size));
  for (Value d = 0; d < st.domain_size; ++d) all.push_back(d);
  return all;
}

void Recurse(SearchState* st, size_t bound_count) {
  ++st->nodes_visited;
  if (st->aborted || st->cancel->cancelled()) {
    st->aborted = true;
    return;
  }
  if (bound_count == st->vars.size()) {
    Tuple t(st->head_ids.size());
    for (size_t i = 0; i < st->head_ids.size(); ++i) {
      t[i] = st->assignment[st->head_ids[i]];
    }
    st->out->Add(t);
    return;
  }
  int v = PickVariable(*st);
  for (Value cand : Candidates(*st, static_cast<size_t>(v))) {
    st->assignment[v] = cand;
    if (PartialCheck(*st)) Recurse(st, bound_count + 1);
    st->assignment[v] = kUnset;
    if (st->aborted) return;
  }
}

}  // namespace

Result<Relation> EvaluateBacktrack(const ConjunctiveQuery& q,
                                   const Database& db,
                                   const CancelToken& cancel) {
  FGQ_RETURN_NOT_OK(q.Validate());
  SearchState st;
  st.q = &q;
  st.db = &db;
  st.cancel = &cancel;
  st.vars = q.Variables();
  for (size_t i = 0; i < st.vars.size(); ++i) st.var_id[st.vars[i]] = i;
  st.assignment.assign(st.vars.size(), kUnset);
  st.domain_size = db.DomainSize();
  for (const Atom& a : q.atoms()) {
    FGQ_ASSIGN_OR_RETURN(const Relation* rel, db.Find(a.relation));
    if (rel->arity() != a.arity()) {
      return Status::InvalidArgument("arity mismatch for atom " +
                                     a.ToString());
    }
    st.rels.push_back(rel);
  }
  Relation out(q.name(), q.arity());
  st.out = &out;
  for (const std::string& h : q.head()) st.head_ids.push_back(st.var_id[h]);

  // A Boolean query is satisfied once any full assignment passes; the
  // recursion naturally records the nullary tuple.
  Recurse(&st, 0);
  if (st.aborted) {
    Status base = cancel.Check("backtracking search");
    return Status(base.code(),
                  base.message() + " (visited " +
                      std::to_string(st.nodes_visited) +
                      " search nodes, found " +
                      std::to_string(out.NumTuples()) + " partial answers)");
  }
  out.SortDedup();
  return out;
}

Result<Relation> EvaluateJoinMaterialize(const ConjunctiveQuery& q,
                                         const Database& db) {
  FGQ_RETURN_NOT_OK(q.Validate());
  if (q.HasNegation()) {
    return Status::Unsupported("join materialization requires positive atoms");
  }
  FGQ_ASSIGN_OR_RETURN(std::vector<PreparedAtom> atoms, PrepareAtoms(q, db));
  if (atoms.empty()) {
    return Status::InvalidArgument("query has no positive atoms");
  }
  // Left-deep join keeping every variable (the naive materialization the
  // fine-grained algorithms avoid).
  std::vector<std::string> all_vars = q.Variables();
  PreparedAtom acc = atoms[0];
  for (size_t i = 1; i < atoms.size(); ++i) {
    std::vector<std::string> keep;
    std::set<std::string> have(acc.vars.begin(), acc.vars.end());
    have.insert(atoms[i].vars.begin(), atoms[i].vars.end());
    for (const std::string& v : all_vars) {
      if (have.count(v)) keep.push_back(v);
    }
    acc = JoinProject(acc, atoms[i], keep);
  }
  // Comparisons as a post-filter.
  for (const Comparison& c : q.comparisons()) {
    int lc = acc.VarIndex(c.lhs);
    int rc = acc.VarIndex(c.rhs);
    if (lc < 0 || rc < 0) {
      return Status::InvalidArgument("comparison over unbound variable: " +
                                     c.ToString());
    }
    acc.rel.Filter([&](TupleView row) {
      return c.Holds(row[static_cast<size_t>(lc)], row[static_cast<size_t>(rc)]);
    });
  }
  std::vector<size_t> cols;
  for (const std::string& v : q.head()) {
    cols.push_back(static_cast<size_t>(acc.VarIndex(v)));
  }
  Relation out = acc.rel.Project(cols, q.name());
  return out;
}

}  // namespace fgq
