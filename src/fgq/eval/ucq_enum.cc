#include "fgq/eval/ucq_enum.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "fgq/eval/oracle.h"
#include "fgq/eval/yannakakis.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/util/hash.h"

namespace fgq {

namespace {

/// Backtracking search for a body homomorphism mapping every atom of
/// `provider` onto some atom of `deficient` with the same symbol.
bool FindBodyHomomorphism(const ConjunctiveQuery& provider,
                          const ConjunctiveQuery& deficient, size_t atom_idx,
                          std::map<std::string, std::string>* h) {
  if (atom_idx == provider.atoms().size()) return true;
  const Atom& pa = provider.atoms()[atom_idx];
  for (const Atom& da : deficient.atoms()) {
    if (da.relation != pa.relation || da.args.size() != pa.args.size() ||
        da.negated != pa.negated) {
      continue;
    }
    // Try to unify pa -> da.
    std::vector<std::pair<std::string, std::string>> added;
    bool ok = true;
    for (size_t j = 0; j < pa.args.size() && ok; ++j) {
      const Term& pt = pa.args[j];
      const Term& dt = da.args[j];
      if (!pt.is_var()) {
        ok = !dt.is_var() && dt.constant == pt.constant;
        continue;
      }
      if (!dt.is_var()) {
        // h must map variables to variables.
        ok = false;
        continue;
      }
      auto it = h->find(pt.var);
      if (it == h->end()) {
        (*h)[pt.var] = dt.var;
        added.push_back({pt.var, dt.var});
      } else {
        ok = it->second == dt.var;
      }
    }
    if (ok && FindBodyHomomorphism(provider, deficient, atom_idx + 1, h)) {
      return true;
    }
    for (const auto& [k, v] : added) h->erase(k);
  }
  return false;
}

/// True if the hypergraph of q, extended with an edge over `extra_vars`,
/// is alpha-acyclic (the S-connexity test of Definition 4.11).
bool IsSConnex(const ConjunctiveQuery& q,
               const std::vector<std::string>& extra_vars) {
  Hypergraph hg = Hypergraph::FromQuery(q);
  std::vector<int> ids;
  for (const std::string& v : extra_vars) ids.push_back(hg.AddVertex(v));
  hg.AddEdge(ids, -2);
  return IsAlphaAcyclic(hg);
}

}  // namespace

bool ProvidesVariables(
    const ConjunctiveQuery& provider, const ConjunctiveQuery& deficient,
    const std::vector<std::string>& targets,
    std::vector<std::pair<std::string, std::string>>* h_out) {
  std::map<std::string, std::string> h;
  if (!FindBodyHomomorphism(provider, deficient, 0, &h)) return false;

  std::set<std::string> target_set(targets.begin(), targets.end());
  std::set<std::string> provider_free(provider.head().begin(),
                                      provider.head().end());
  // h^-1(targets) must lie inside free(provider), and every target needs a
  // preimage (otherwise its values cannot be produced).
  std::vector<std::string> preimage;
  std::set<std::string> covered;
  for (const auto& [w, v] : h) {
    if (target_set.count(v)) {
      if (!provider_free.count(w)) return false;
      preimage.push_back(w);
      covered.insert(v);
    }
  }
  if (covered.size() != target_set.size()) return false;

  // Some S with preimage <= S <= free(provider) must make the provider
  // S-connex. Try S = preimage first, then grow greedily to free(provider).
  std::vector<std::string> free_list(provider_free.begin(),
                                     provider_free.end());
  bool connex = false;
  if (IsSConnex(provider, preimage)) {
    connex = true;
  } else if (IsSConnex(provider, free_list)) {
    connex = true;
  } else {
    // Exhaustive search over subsets between preimage and free(provider).
    std::vector<std::string> optional_vars;
    std::set<std::string> pre_set(preimage.begin(), preimage.end());
    for (const std::string& v : free_list) {
      if (!pre_set.count(v)) optional_vars.push_back(v);
    }
    const size_t k = optional_vars.size();
    for (uint64_t mask = 1; mask + 1 < (uint64_t{1} << k) && !connex; ++mask) {
      std::vector<std::string> s = preimage;
      for (size_t j = 0; j < k; ++j) {
        if (mask & (uint64_t{1} << j)) s.push_back(optional_vars[j]);
      }
      connex = IsSConnex(provider, s);
    }
  }
  if (!connex) return false;

  if (h_out) {
    h_out->assign(h.begin(), h.end());
  }
  return true;
}

Result<UnionQuery> BuildFreeConnexExtension(const UnionQuery& u,
                                            const Database& db,
                                            Database* scratch) {
  FGQ_RETURN_NOT_OK(u.Validate());
  UnionQuery out;
  out.name = u.name;
  int fresh = 0;
  for (size_t i = 0; i < u.disjuncts.size(); ++i) {
    const ConjunctiveQuery& q = u.disjuncts[i];
    if (IsAcyclicQuery(q) && IsFreeConnex(q)) {
      out.disjuncts.push_back(q);
      continue;
    }
    // Search for a provided variable set that repairs free-connexity:
    // candidate target sets are subsets of the disjunct's variables, tried
    // from largest to smallest (larger atoms constrain more).
    std::vector<std::string> vars = q.Variables();
    if (vars.size() > 16) {
      return Status::Unsupported("union-extension search limited to 16 "
                                 "variables per disjunct");
    }
    bool repaired = false;
    std::vector<uint64_t> masks;
    for (uint64_t mask = 1; mask < (uint64_t{1} << vars.size()); ++mask) {
      masks.push_back(mask);
    }
    std::sort(masks.begin(), masks.end(), [](uint64_t a, uint64_t b) {
      return __builtin_popcountll(a) > __builtin_popcountll(b);
    });
    for (uint64_t mask : masks) {
      std::vector<std::string> targets;
      for (size_t j = 0; j < vars.size(); ++j) {
        if (mask & (uint64_t{1} << j)) targets.push_back(vars[j]);
      }
      // Would adding an atom over `targets` make the disjunct acyclic and
      // free-connex?
      ConjunctiveQuery candidate = q;
      Atom extra;
      extra.relation = "__probe";
      for (const std::string& t : targets) extra.args.push_back(Term::Var(t));
      candidate.AddAtom(extra);
      if (!IsAcyclicQuery(candidate) || !IsFreeConnex(candidate)) continue;
      // Does some other disjunct provide these variables?
      for (size_t p = 0; p < u.disjuncts.size() && !repaired; ++p) {
        if (p == i) continue;
        std::vector<std::pair<std::string, std::string>> h;
        if (!ProvidesVariables(u.disjuncts[p], q, targets, &h)) continue;
        // Materialize the provided atom from the provider's answers.
        Result<Relation> provider_answers =
            EvaluateYannakakis(u.disjuncts[p], db);
        if (!provider_answers.ok()) {
          provider_answers = EvaluateBacktrack(u.disjuncts[p], db);
        }
        if (!provider_answers.ok()) return provider_answers.status();
        // Column of each target inside the provider head, via a preimage.
        std::vector<size_t> cols;
        for (const std::string& t : targets) {
          int col = -1;
          for (const auto& [w, v] : h) {
            if (v != t) continue;
            const std::vector<std::string>& phead = u.disjuncts[p].head();
            auto it = std::find(phead.begin(), phead.end(), w);
            if (it != phead.end()) {
              col = static_cast<int>(it - phead.begin());
              break;
            }
          }
          if (col < 0) {
            return Status::Internal("provided variable lost its preimage");
          }
          cols.push_back(static_cast<size_t>(col));
        }
        std::string rel_name =
            "__provided_" + std::to_string(i) + "_" + std::to_string(fresh++);
        Relation provided =
            provider_answers.value().Project(cols, rel_name);
        scratch->PutRelation(std::move(provided));
        ConjunctiveQuery extended = q;
        Atom pa;
        pa.relation = rel_name;
        for (const std::string& t : targets) pa.args.push_back(Term::Var(t));
        extended.AddAtom(std::move(pa));
        out.disjuncts.push_back(std::move(extended));
        repaired = true;
      }
      if (repaired) break;
    }
    if (!repaired) {
      return Status::InvalidArgument(
          "disjunct is not free-connex and no union extension repairs it: " +
          q.ToString());
    }
  }
  return out;
}

namespace {

/// Round-robin interleaving of per-disjunct enumerators with hash-set
/// deduplication (amortized constant delay, Cheater's lemma style).
class UnionEnumerator : public AnswerEnumerator {
 public:
  /// Owns the merged base+scratch database view the per-disjunct
  /// enumerators were built against. The current constant-delay cursors
  /// copy everything they need into their plan, but the factory contract
  /// ("the database must outlive the enumerator") applies to the *merged*
  /// view, which no caller can keep alive — so the union enumerator
  /// itself must, or any future disjunct enumerator that borrows from its
  /// database (as the linear-delay one does) would dangle.
  UnionEnumerator(std::vector<std::unique_ptr<AnswerEnumerator>> parts,
                  std::unique_ptr<const Database> merged)
      : merged_(std::move(merged)), parts_(std::move(parts)) {}

  bool Next(Tuple* out) override {
    while (!parts_.empty()) {
      if (turn_ >= parts_.size()) turn_ = 0;
      Tuple t;
      if (!parts_[turn_]->Next(&t)) {
        parts_.erase(parts_.begin() + static_cast<ptrdiff_t>(turn_));
        continue;
      }
      ++turn_;
      if (seen_.insert(t).second) {
        *out = std::move(t);
        return true;
      }
    }
    return false;
  }

 private:
  /// Declared before parts_ so the enumerators are destroyed first.
  std::unique_ptr<const Database> merged_;
  std::vector<std::unique_ptr<AnswerEnumerator>> parts_;
  std::unordered_set<Tuple, VecHash> seen_;
  size_t turn_ = 0;
};

}  // namespace

Result<std::unique_ptr<AnswerEnumerator>> MakeUnionEnumerator(
    const UnionQuery& u, const Database& db) {
  auto scratch = std::make_unique<Database>();
  FGQ_ASSIGN_OR_RETURN(UnionQuery extended,
                       BuildFreeConnexExtension(u, db, scratch.get()));
  // Merge views so extended disjuncts can see the provided relations. The
  // merged view lives on the heap and is handed to the UnionEnumerator:
  // the per-disjunct enumerators are built against it, and neither `db`
  // (which lacks the provided relations) nor any caller-visible object
  // keeps it alive past this factory's return.
  auto merged = std::make_unique<Database>();
  for (const auto& [name, rel] : db.relations()) merged->PutRelation(rel);
  for (const auto& [name, rel] : scratch->relations()) {
    merged->PutRelation(rel);
  }

  std::vector<std::unique_ptr<AnswerEnumerator>> parts;
  for (const ConjunctiveQuery& q : extended.disjuncts) {
    FGQ_ASSIGN_OR_RETURN(std::unique_ptr<AnswerEnumerator> e,
                         MakeConstantDelayEnumerator(q, *merged));
    parts.push_back(std::move(e));
  }
  return std::unique_ptr<AnswerEnumerator>(
      new UnionEnumerator(std::move(parts), std::move(merged)));
}

}  // namespace fgq
