#include "fgq/eval/random_access.h"

#include <algorithm>
#include <unordered_map>

#include "fgq/eval/enumerate.h"
#include "fgq/eval/prepared.h"
#include "fgq/util/hash.h"

namespace fgq {

namespace {

constexpr int64_t kCountCap = int64_t{1} << 62;

/// A group of node rows sharing the same connector key, with prefix sums
/// of their subtree-completion counts (for rank descent by binary search).
struct Bucket {
  std::vector<uint32_t> rows;
  std::vector<int64_t> prefix;  // prefix[i] = sum of counts of rows[0..i].

  int64_t Total() const { return prefix.empty() ? 0 : prefix.back(); }
};

class RandomAccessImpl : public RandomAccessAnswers {
 public:
  /// Builds counts bottom-up over the plan's join tree.
  static Result<std::unique_ptr<RandomAccessAnswers>> Build(
      FreeConnexPlan plan, const std::vector<std::string>& head) {
    auto impl = std::unique_ptr<RandomAccessImpl>(new RandomAccessImpl());
    impl->nodes_ = std::move(plan.nodes);
    impl->parent_ = std::move(plan.parent);
    const size_t L = impl->nodes_.size();
    impl->children_.assign(L, {});
    for (size_t i = 0; i < L; ++i) {
      if (impl->parent_[i] >= 0) {
        impl->children_[static_cast<size_t>(impl->parent_[i])].push_back(
            static_cast<int>(i));
      }
    }
    // Connector columns: node-side and parent-side.
    impl->conn_cols_.resize(L);
    impl->parent_cols_.resize(L);
    for (size_t i = 0; i < L; ++i) {
      if (impl->parent_[i] < 0) continue;
      const PreparedAtom& p = impl->nodes_[static_cast<size_t>(impl->parent_[i])];
      for (size_t c = 0; c < impl->nodes_[i].vars.size(); ++c) {
        int pc = p.VarIndex(impl->nodes_[i].vars[c]);
        if (pc >= 0) {
          impl->conn_cols_[i].push_back(c);
          impl->parent_cols_[i].push_back(static_cast<size_t>(pc));
        }
      }
    }
    // Bottom-up count pass. count[i][row] = product over children of the
    // child's bucket total at the row's key.
    impl->buckets_.resize(L);
    std::vector<std::vector<int64_t>> counts(L);
    for (size_t ii = L; ii-- > 0;) {
      const PreparedAtom& node = impl->nodes_[ii];
      const size_t rows = node.rel.NumTuples();
      counts[ii].assign(rows, 1);
      for (size_t r = 0; r < rows; ++r) {
        const Value* row = node.rel.RowData(r);
        int64_t c = 1;
        for (int child : impl->children_[ii]) {
          Tuple key(impl->parent_cols_[static_cast<size_t>(child)].size());
          for (size_t j = 0; j < key.size(); ++j) {
            key[j] = row[impl->parent_cols_[static_cast<size_t>(child)][j]];
          }
          auto it = impl->buckets_[static_cast<size_t>(child)].find(key);
          int64_t child_total =
              it == impl->buckets_[static_cast<size_t>(child)].end()
                  ? 0
                  : it->second.Total();
          if (child_total == 0) {
            c = 0;
            break;
          }
          if (c > kCountCap / child_total) {
            return Status::OutOfRange("answer count exceeds 2^62");
          }
          c *= child_total;
        }
        counts[ii][r] = c;
      }
      // Group rows into buckets by this node's own connector key.
      for (size_t r = 0; r < rows; ++r) {
        if (counts[ii][r] == 0) continue;  // Dead row (kept defensively).
        Tuple key(impl->conn_cols_[ii].size());
        const Value* row = node.rel.RowData(r);
        for (size_t j = 0; j < key.size(); ++j) {
          key[j] = row[impl->conn_cols_[ii][j]];
        }
        Bucket& b = impl->buckets_[ii][key];
        int64_t base = b.Total();
        if (base > kCountCap - counts[ii][r]) {
          return Status::OutOfRange("answer count exceeds 2^62");
        }
        b.rows.push_back(static_cast<uint32_t>(r));
        b.prefix.push_back(base + counts[ii][r]);
      }
    }
    // Output slots.
    for (const std::string& v : head) {
      for (size_t i = 0; i < L; ++i) {
        int c = impl->nodes_[i].VarIndex(v);
        if (c >= 0) {
          impl->out_slots_.push_back({i, static_cast<size_t>(c)});
          break;
        }
      }
    }
    // Root bucket (empty key).
    auto it = impl->buckets_[0].find(Tuple{});
    impl->total_ = it == impl->buckets_[0].end() ? 0 : it->second.Total();
    return std::unique_ptr<RandomAccessAnswers>(std::move(impl));
  }

  int64_t Count() const override { return total_; }

  Result<Tuple> Answer(int64_t j) const override {
    if (j < 0 || j >= total_) {
      return Status::OutOfRange("rank " + std::to_string(j) +
                                " outside [0, " + std::to_string(total_) +
                                ")");
    }
    std::vector<uint32_t> chosen(nodes_.size(), 0);
    FGQ_RETURN_NOT_OK(Locate(0, Tuple{}, j, &chosen));
    Tuple out(out_slots_.size());
    for (size_t i = 0; i < out_slots_.size(); ++i) {
      out[i] = nodes_[out_slots_[i].first].rel.RowData(
          chosen[out_slots_[i].first])[out_slots_[i].second];
    }
    return out;
  }

  Result<Tuple> Sample(Rng* rng) const override {
    if (total_ == 0) return Status::OutOfRange("empty answer set");
    return Answer(
        static_cast<int64_t>(rng->Below(static_cast<uint64_t>(total_))));
  }

 private:
  RandomAccessImpl() = default;

  /// Fixes the row of `node` for rank `j` among the completions of its
  /// subtree given the connector `key`, then distributes the residual rank
  /// over the children in mixed radix.
  Status Locate(size_t node, const Tuple& key, int64_t j,
                std::vector<uint32_t>* chosen) const {
    auto it = buckets_[node].find(key);
    if (it == buckets_[node].end()) {
      return Status::Internal("rank descent hit an empty bucket");
    }
    const Bucket& b = it->second;
    // First index with prefix > j.
    size_t idx = static_cast<size_t>(
        std::upper_bound(b.prefix.begin(), b.prefix.end(), j) -
        b.prefix.begin());
    if (idx >= b.rows.size()) {
      return Status::Internal("rank descent out of range");
    }
    int64_t local = j - (idx == 0 ? 0 : b.prefix[idx - 1]);
    uint32_t row = b.rows[idx];
    (*chosen)[node] = row;
    const Value* row_data = nodes_[node].rel.RowData(row);
    for (int child : children_[node]) {
      size_t ci = static_cast<size_t>(child);
      Tuple ckey(parent_cols_[ci].size());
      for (size_t jj = 0; jj < ckey.size(); ++jj) {
        ckey[jj] = row_data[parent_cols_[ci][jj]];
      }
      auto cit = buckets_[ci].find(ckey);
      int64_t w = cit == buckets_[ci].end() ? 0 : cit->second.Total();
      if (w == 0) return Status::Internal("zero-weight child in descent");
      FGQ_RETURN_NOT_OK(Locate(ci, ckey, local % w, chosen));
      local /= w;
    }
    return Status::OK();
  }

  std::vector<PreparedAtom> nodes_;
  std::vector<int> parent_;
  std::vector<std::vector<int>> children_;
  std::vector<std::vector<size_t>> conn_cols_;    // Node-side columns.
  std::vector<std::vector<size_t>> parent_cols_;  // Parent-side columns.
  std::vector<std::unordered_map<Tuple, Bucket, VecHash>> buckets_;
  std::vector<std::pair<size_t, size_t>> out_slots_;
  int64_t total_ = 0;
};

/// Trivial cases: empty answer sets and Boolean queries.
class FixedAnswers : public RandomAccessAnswers {
 public:
  explicit FixedAnswers(int64_t total) : total_(total) {}
  int64_t Count() const override { return total_; }
  Result<Tuple> Answer(int64_t j) const override {
    if (j < 0 || j >= total_) return Status::OutOfRange("rank out of range");
    return Tuple{};
  }
  Result<Tuple> Sample(Rng*) const override {
    if (total_ == 0) return Status::OutOfRange("empty answer set");
    return Tuple{};
  }

 private:
  int64_t total_;
};

}  // namespace

Result<std::unique_ptr<RandomAccessAnswers>> BuildRandomAccess(
    const ConjunctiveQuery& q, const Database& db) {
  FGQ_ASSIGN_OR_RETURN(FreeConnexPlan plan, BuildFreeConnexPlan(q, db));
  if (plan.empty) {
    return std::unique_ptr<RandomAccessAnswers>(new FixedAnswers(0));
  }
  if (q.IsBoolean()) {
    return std::unique_ptr<RandomAccessAnswers>(new FixedAnswers(1));
  }
  return RandomAccessImpl::Build(std::move(plan), q.head());
}

}  // namespace fgq
