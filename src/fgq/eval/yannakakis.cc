#include "fgq/eval/yannakakis.h"

#include <algorithm>
#include <set>

#include "fgq/trace/trace.h"

namespace fgq {

Result<ReducedQuery> FullReduce(const ConjunctiveQuery& q, const Database& db,
                                const ExecOptions& opts) {
  return FullReduce(q, db, ExecContext(opts));
}

Result<ReducedQuery> FullReduce(const ConjunctiveQuery& q, const Database& db,
                                const ExecContext& ctx) {
  if (q.HasNegation()) {
    return Status::Unsupported(
        "Yannakakis handles positive queries; see ncq.h for NCQ");
  }
  ReducedQuery out;
  out.hg = Hypergraph::FromQuery(q);
  GyoResult gyo = GyoReduce(out.hg);
  if (!gyo.acyclic) {
    return Status::InvalidArgument("query is not alpha-acyclic: " +
                                   q.ToString());
  }
  out.tree = std::move(gyo.tree);
  {
    TraceSpan span(ctx.trace(), "prepare_atoms");
    FGQ_ASSIGN_OR_RETURN(out.atoms, PrepareAtoms(q, db, ctx));
  }
  FGQ_RETURN_NOT_OK(ctx.cancel().Check("atom preparation"));

  // Both sweeps (bottom-up then top-down, level-parallel with a pool) as
  // bitmap updates over the prepared atoms, compacted once at the end.
  {
    TraceSpan span(ctx.trace(), "semijoin_sweeps");
    FullReduceSweeps(&out.atoms, out.tree, ctx);
  }
  FGQ_RETURN_NOT_OK(ctx.cancel().Check("semijoin sweeps"));
  for (const PreparedAtom& a : out.atoms) {
    if (a.rel.empty() && a.rel.arity() > 0) {
      out.empty = true;
    }
    // A nullary prepared atom is empty exactly when its filter removed all
    // rows (or the relation was empty).
    if (a.rel.arity() == 0 && a.rel.NumTuples() == 0) out.empty = true;
  }
  return out;
}

namespace {

/// Joins the subtree rooted at `e` bottom-up, keeping free variables plus
/// the connector to e's parent.
PreparedAtom JoinSubtree(const ReducedQuery& rq,
                         const std::set<std::string>& free, int e,
                         const ExecContext& ctx) {
  PreparedAtom acc = rq.atoms[e];
  // Cooperative cancellation: the per-node joins are the output-dependent
  // (possibly superlinear) phase; bail with whatever was accumulated and
  // let the caller turn the tripped token into a Status.
  if (ctx.cancel().cancelled()) return acc;
  // Variables of the parent, used to decide what must be kept.
  std::set<std::string> parent_vars;
  int p = rq.tree.parent[e];
  if (p >= 0) {
    parent_vars.insert(rq.atoms[p].vars.begin(), rq.atoms[p].vars.end());
  }
  for (int c : rq.tree.children[e]) {
    PreparedAtom sub = JoinSubtree(rq, free, c, ctx);
    // Keep: free variables present on either side, plus variables of e
    // (needed to connect to remaining children and the parent).
    std::vector<std::string> keep;
    std::set<std::string> seen;
    auto add = [&](const std::string& v) {
      if (seen.insert(v).second) keep.push_back(v);
    };
    for (const std::string& v : acc.vars) {
      if (free.count(v) || rq.atoms[e].VarIndex(v) >= 0 || parent_vars.count(v)) {
        add(v);
      }
    }
    for (const std::string& v : sub.vars) {
      if (free.count(v) || rq.atoms[e].VarIndex(v) >= 0 || parent_vars.count(v)) {
        add(v);
      }
    }
    acc = JoinProject(acc, sub, keep, ctx);
  }
  // Project away existential variables not needed by the parent.
  std::vector<std::string> keep;
  for (const std::string& v : acc.vars) {
    if (free.count(v) || parent_vars.count(v)) keep.push_back(v);
  }
  if (keep.size() != acc.vars.size()) {
    std::vector<size_t> cols;
    for (const std::string& v : keep) {
      cols.push_back(static_cast<size_t>(acc.VarIndex(v)));
    }
    acc.rel = acc.rel.Project(cols, acc.rel.name(), ctx);
    acc.vars = keep;
  }
  return acc;
}

}  // namespace

Result<Relation> EvaluateYannakakis(const ConjunctiveQuery& q,
                                    const Database& db,
                                    const ExecOptions& opts) {
  return EvaluateYannakakis(q, db, ExecContext(opts));
}

Result<Relation> EvaluateYannakakis(const ConjunctiveQuery& q,
                                    const Database& db,
                                    const ExecContext& ctx) {
  FGQ_RETURN_NOT_OK(q.Validate());
  FGQ_ASSIGN_OR_RETURN(ReducedQuery rq, FullReduce(q, db, ctx));
  if (rq.empty) {
    return Relation(q.name(), q.arity());
  }
  std::set<std::string> free(q.head().begin(), q.head().end());
  TraceSpan assembly(ctx.trace(), "join_assembly");
  PreparedAtom joined = JoinSubtree(rq, free, rq.tree.root, ctx);
  if (ctx.cancel().cancelled()) {
    Status base = ctx.cancel().Check("join assembly");
    return Status(base.code(),
                  base.message() + " (" +
                      std::to_string(joined.rel.NumTuples()) +
                      " partial join rows materialized)");
  }

  // Reorder columns into head order. Boolean query: arity-0 result.
  Relation out(q.name(), q.arity());
  if (q.IsBoolean()) {
    if (joined.rel.NumTuples() > 0) out.AddNullary();
    return out;
  }
  std::vector<size_t> cols;
  for (const std::string& v : q.head()) {
    int c = joined.VarIndex(v);
    if (c < 0) {
      return Status::Internal("head variable '" + v +
                              "' missing from join result");
    }
    cols.push_back(static_cast<size_t>(c));
  }
  out = joined.rel.Project(cols, q.name(), ctx);
  out.set_name(q.name());
  return out;
}

Result<bool> EvaluateBooleanAcq(const ConjunctiveQuery& q, const Database& db,
                                const ExecOptions& opts) {
  return EvaluateBooleanAcq(q, db, ExecContext(opts));
}

Result<bool> EvaluateBooleanAcq(const ConjunctiveQuery& q, const Database& db,
                                const ExecContext& ctx) {
  if (!q.IsBoolean()) {
    return Status::InvalidArgument("query is not Boolean: " + q.ToString());
  }
  // Only the bottom-up sweep is needed for satisfiability.
  FGQ_ASSIGN_OR_RETURN(ReducedQuery rq, FullReduce(q, db, ctx));
  return !rq.empty;
}

}  // namespace fgq
