#ifndef FGQ_EVAL_RANDOM_ACCESS_H_
#define FGQ_EVAL_RANDOM_ACCESS_H_

#include <memory>

#include "fgq/db/database.h"
#include "fgq/query/cq.h"
#include "fgq/util/bigint.h"
#include "fgq/util/random.h"
#include "fgq/util/status.h"

/// \file random_access.h
/// Random access and random-order enumeration for free-connex ACQs.
///
/// The survey lists random-access / random-order enumeration ([23],
/// Carmeli et al.) among the extensions of the constant-delay toolbox:
/// after the same linear preprocessing that powers Theorem 4.6, one can
/// support Answer(j) — return the j-th answer in some fixed order — in
/// time depending only on the query. The construction augments the
/// fully-reduced free-projection join tree with subtree-completion counts
/// (the counting DP of Theorem 4.21), then locates the j-th answer by
/// descending the tree with prefix-sum jumps.
///
/// Uniform sampling (answer at a uniformly random rank) and random-order
/// enumeration (a random permutation of ranks) fall out directly.

namespace fgq {

/// Indexed answer set of a free-connex acyclic query.
class RandomAccessAnswers {
 public:
  virtual ~RandomAccessAnswers() = default;

  /// Total number of answers.
  virtual int64_t Count() const = 0;

  /// The j-th answer (0-based) in the structure's fixed order; columns in
  /// head order. Fails with kOutOfRange for j outside [0, Count()).
  virtual Result<Tuple> Answer(int64_t j) const = 0;

  /// A uniformly random answer. Fails when the answer set is empty.
  virtual Result<Tuple> Sample(Rng* rng) const = 0;
};

/// Builds the random-access structure: linear-time preprocessing for a
/// free-connex acyclic query (no negation/comparisons). Counts use int64;
/// queries whose answer count exceeds 2^62 are rejected.
Result<std::unique_ptr<RandomAccessAnswers>> BuildRandomAccess(
    const ConjunctiveQuery& q, const Database& db);

}  // namespace fgq

#endif  // FGQ_EVAL_RANDOM_ACCESS_H_
