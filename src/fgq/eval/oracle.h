#ifndef FGQ_EVAL_ORACLE_H_
#define FGQ_EVAL_ORACLE_H_

#include "fgq/db/database.h"
#include "fgq/query/cq.h"
#include "fgq/util/cancel.h"
#include "fgq/util/status.h"

/// \file oracle.h
/// Reference evaluators.
///
/// EvaluateBacktrack is the library's semantic oracle: it supports every
/// CQ feature (constants, self-joins, negated atoms, comparisons) by
/// constraint-propagating backtracking. It makes no complexity promise and
/// exists so that every fast algorithm can be property-tested against it.
///
/// EvaluateJoinMaterialize is the textbook baseline the paper's fine-
/// grained results improve on: left-deep hash joins materializing every
/// intermediate, comparisons applied as post-filters. It is the "compute
/// phi(D) then iterate/count" strawman in the enumeration and counting
/// benchmarks.

namespace fgq {

/// Exact evaluation by backtracking search with atom-driven candidate
/// propagation. Handles negation and comparisons. Variables that occur
/// only in negated atoms or comparisons range over [0, db.DomainSize()).
///
/// The search polls `cancel` at every node; on a tripped token it unwinds
/// and returns DeadlineExceeded/Cancelled with partial-work accounting
/// (search nodes visited, answers found so far). The default inert token
/// never trips. This is the hook the serving layer relies on: cyclic and
/// comparison-laden queries have no polynomial guarantee (Theorems
/// 4.1/4.15), so a bounded request must be able to cut the search short.
Result<Relation> EvaluateBacktrack(const ConjunctiveQuery& q,
                                   const Database& db,
                                   const CancelToken& cancel = CancelToken());

/// Left-deep hash-join materialization (positive atoms only; comparisons
/// as post-filter; negated atoms unsupported).
Result<Relation> EvaluateJoinMaterialize(const ConjunctiveQuery& q,
                                         const Database& db);

}  // namespace fgq

#endif  // FGQ_EVAL_ORACLE_H_
