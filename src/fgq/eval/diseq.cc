#include "fgq/eval/diseq.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "fgq/eval/oracle.h"
#include "fgq/eval/prepared.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/util/hash.h"

namespace fgq {

std::vector<Value> FunctionTable::ColumnValues(size_t i) const {
  std::set<Value> vals;
  for (const Tuple& row : rows) vals.insert(row[i]);
  return std::vector<Value>(vals.begin(), vals.end());
}

bool CoversTable(const FunctionTable& table, const Tuple& cover) {
  for (const Tuple& row : table.rows) {
    bool hit = false;
    for (size_t i = 0; i < table.k && !hit; ++i) {
      hit = cover[i] != kBlank && cover[i] == row[i];
    }
    if (!hit) return false;
  }
  return true;
}

bool MoreGeneral(const Tuple& c1, const Tuple& c2) {
  for (size_t i = 0; i < c1.size(); ++i) {
    if (c1[i] != kBlank && c1[i] != c2[i]) return false;
  }
  return true;
}

namespace {

/// Recursive cover generation following the remark after Definition 4.17:
/// c covers (E, f) iff for some i, c_i = f_i(a) and c_-i covers
/// (E_i^a, f_-i), where a is any fixed element of E. `active_rows` are
/// indices into table.rows, `active_cols` into [0, k).
void GenerateCovers(const FunctionTable& table,
                    const std::vector<size_t>& active_rows,
                    const std::vector<size_t>& active_cols, Tuple* partial,
                    std::vector<Tuple>* out) {
  if (active_rows.empty()) {
    out->push_back(*partial);  // Remaining coordinates stay blank (minimal).
    return;
  }
  if (active_cols.empty()) return;  // Uncoverable branch.
  size_t a = active_rows[0];
  for (size_t ci = 0; ci < active_cols.size(); ++ci) {
    size_t col = active_cols[ci];
    Value v = table.rows[a][col];
    std::vector<size_t> next_rows;
    for (size_t r : active_rows) {
      if (table.rows[r][col] != v) next_rows.push_back(r);
    }
    std::vector<size_t> next_cols = active_cols;
    next_cols.erase(next_cols.begin() + static_cast<ptrdiff_t>(ci));
    (*partial)[col] = v;
    GenerateCovers(table, next_rows, next_cols, partial, out);
    (*partial)[col] = kBlank;
  }
}

}  // namespace

std::vector<Tuple> MinimalCovers(const FunctionTable& table) {
  std::vector<size_t> rows(table.rows.size());
  std::vector<size_t> cols(table.k);
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = i;
  Tuple partial(table.k, kBlank);
  std::vector<Tuple> candidates;
  GenerateCovers(table, rows, cols, &partial, &candidates);
  // Deduplicate and keep only minimal ones.
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<Tuple> minimal;
  for (const Tuple& c : candidates) {
    bool dominated = false;
    for (const Tuple& other : candidates) {
      if (other != c && MoreGeneral(other, c)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(c);
  }
  return minimal;
}

namespace {

void CollectRepresentatives(const FunctionTable& table,
                            const std::vector<size_t>& active_rows,
                            const std::vector<size_t>& active_cols,
                            std::set<size_t>* out) {
  if (active_rows.empty()) return;
  size_t a = active_rows[0];
  // `a` is always kept: when no columns remain it is the witness that
  // kills covers which would otherwise hold on the subset but not on E.
  out->insert(a);
  if (active_cols.empty()) return;
  for (size_t ci = 0; ci < active_cols.size(); ++ci) {
    size_t col = active_cols[ci];
    Value v = table.rows[a][col];
    std::vector<size_t> next_rows;
    for (size_t r : active_rows) {
      if (table.rows[r][col] != v) next_rows.push_back(r);
    }
    std::vector<size_t> next_cols = active_cols;
    next_cols.erase(next_cols.begin() + static_cast<ptrdiff_t>(ci));
    CollectRepresentatives(table, next_rows, next_cols, out);
  }
}

}  // namespace

std::vector<size_t> RepresentativeSet(const FunctionTable& table) {
  std::vector<size_t> rows(table.rows.size());
  std::vector<size_t> cols(table.k);
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = i;
  std::set<size_t> reps;
  CollectRepresentatives(table, rows, cols, &reps);
  return std::vector<size_t>(reps.begin(), reps.end());
}

std::vector<Tuple> AllCoversBruteForce(const FunctionTable& table,
                                       const std::vector<Value>& range) {
  std::vector<Value> alphabet = range;
  alphabet.push_back(kBlank);
  std::vector<Tuple> out;
  Tuple cur(table.k, kBlank);
  // Odometer over alphabet^k.
  std::vector<size_t> idx(table.k, 0);
  while (true) {
    for (size_t i = 0; i < table.k; ++i) cur[i] = alphabet[idx[i]];
    if (CoversTable(table, cur)) out.push_back(cur);
    size_t p = 0;
    while (p < table.k && ++idx[p] == alphabet.size()) {
      idx[p] = 0;
      ++p;
    }
    if (p == table.k) break;
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---- ACQ_!= evaluation ------------------------------------------------------

namespace {

/// One eliminated quantified variable: the rewritten atom's key variables
/// (all free), the free variables it must differ from, and the witness
/// store (key -> up to m+1 distinct values of z).
struct WitnessCheck {
  std::vector<std::string> key_vars;
  std::vector<std::string> forbidden_vars;
  std::unordered_map<Tuple, std::vector<Value>, VecHash> witnesses;
};

/// Analysis outcome for the fast path.
struct NeqPlan {
  ConjunctiveQuery rewritten;  // ACQ without the constrained variables.
  std::vector<WitnessCheck> checks;
  std::vector<Comparison> free_diseqs;  // Both sides free.
  Database scratch;                     // Rewritten atom relations.
};

Result<NeqPlan> BuildNeqPlan(const ConjunctiveQuery& q, const Database& db) {
  for (const Comparison& c : q.comparisons()) {
    if (c.op != Comparison::Op::kNotEqual) {
      return Status::Unsupported("only disequalities are allowed in ACQ_!=");
    }
  }
  std::set<std::string> free(q.head().begin(), q.head().end());

  // Group constraints by the quantified variable they touch.
  std::map<std::string, std::vector<std::string>> quantified_constraints;
  NeqPlan plan;
  for (const Comparison& c : q.comparisons()) {
    bool lhs_free = free.count(c.lhs) > 0;
    bool rhs_free = free.count(c.rhs) > 0;
    if (lhs_free && rhs_free) {
      plan.free_diseqs.push_back(c);
    } else if (lhs_free || rhs_free) {
      const std::string& qvar = lhs_free ? c.rhs : c.lhs;
      const std::string& fvar = lhs_free ? c.lhs : c.rhs;
      quantified_constraints[qvar].push_back(fvar);
    } else {
      return Status::Unsupported(
          "disequality between two quantified variables: " + c.ToString());
    }
  }

  // Rewrite each constrained quantified variable away.
  plan.rewritten = ConjunctiveQuery(q.name(), q.head(), {});
  int fresh = 0;
  for (const Atom& atom : q.atoms()) {
    std::vector<std::string> avars = atom.Variables();
    std::vector<std::string> constrained;
    for (const std::string& v : avars) {
      if (quantified_constraints.count(v)) constrained.push_back(v);
    }
    if (constrained.empty()) {
      plan.rewritten.AddAtom(atom);
      continue;
    }
    if (constrained.size() > 1) {
      return Status::Unsupported(
          "atom has several constrained quantified variables: " +
          atom.ToString());
    }
    const std::string& z = constrained[0];
    // z must occur only in this atom; the other variables must be free.
    int occurrences = 0;
    for (const Atom& other : q.atoms()) {
      for (const std::string& v : other.Variables()) {
        if (v == z) ++occurrences;
      }
    }
    if (occurrences != 1) {
      return Status::Unsupported("constrained quantified variable '" + z +
                                 "' occurs in several atoms");
    }
    for (const std::string& v : avars) {
      if (v != z && !free.count(v)) {
        return Status::Unsupported(
            "atom mixing a constrained quantified variable with another "
            "quantified variable: " +
            atom.ToString());
      }
    }
    // Build the witness store from the prepared atom.
    FGQ_ASSIGN_OR_RETURN(PreparedAtom pa, PrepareAtom(atom, db));
    int z_col = pa.VarIndex(z);
    WitnessCheck check;
    check.forbidden_vars = quantified_constraints[z];
    const size_t budget = check.forbidden_vars.size() + 1;
    std::vector<size_t> key_cols;
    for (size_t c = 0; c < pa.vars.size(); ++c) {
      if (static_cast<int>(c) != z_col) {
        check.key_vars.push_back(pa.vars[c]);
        key_cols.push_back(c);
      }
    }
    Tuple key(key_cols.size());
    for (size_t r = 0; r < pa.rel.NumTuples(); ++r) {
      const Value* row = pa.rel.RowData(r);
      for (size_t j = 0; j < key_cols.size(); ++j) key[j] = row[key_cols[j]];
      std::vector<Value>& wl = check.witnesses[key];
      Value zv = row[static_cast<size_t>(z_col)];
      if (wl.size() < budget &&
          std::find(wl.begin(), wl.end(), zv) == wl.end()) {
        wl.push_back(zv);
      }
    }
    // The rewritten atom: projection onto the key variables.
    std::string rel_name = "__neq_" + std::to_string(fresh++);
    Relation proj = pa.rel.Project(key_cols, rel_name);
    plan.scratch.PutRelation(std::move(proj));
    Atom rewritten_atom;
    rewritten_atom.relation = rel_name;
    for (const std::string& v : check.key_vars) {
      rewritten_atom.args.push_back(Term::Var(v));
    }
    plan.rewritten.AddAtom(std::move(rewritten_atom));
    plan.checks.push_back(std::move(check));
  }
  return plan;
}

/// Filters an inner enumerator's answers through witness checks and
/// free-free disequalities. Each check costs query-sized time; witness
/// representative sets bound the number of consecutive rejections per key
/// in the workloads Theorem 4.20 covers.
class NeqFilterEnumerator : public AnswerEnumerator {
 public:
  NeqFilterEnumerator(std::unique_ptr<AnswerEnumerator> inner, NeqPlan plan,
                      const std::vector<std::string>& head)
      : inner_(std::move(inner)), plan_(std::move(plan)) {
    std::map<std::string, size_t> pos;
    for (size_t i = 0; i < head.size(); ++i) pos[head[i]] = i;
    for (const WitnessCheck& c : plan_.checks) {
      CheckCols cc;
      for (const std::string& v : c.key_vars) cc.key_cols.push_back(pos[v]);
      for (const std::string& v : c.forbidden_vars) {
        cc.forbidden_cols.push_back(pos[v]);
      }
      check_cols_.push_back(std::move(cc));
    }
    for (const Comparison& c : plan_.free_diseqs) {
      diseq_cols_.push_back({pos[c.lhs], pos[c.rhs]});
    }
  }

  bool Next(Tuple* out) override {
    Tuple t;
    while (inner_->Next(&t)) {
      if (Accept(t)) {
        *out = std::move(t);
        return true;
      }
    }
    return false;
  }

 private:
  struct CheckCols {
    std::vector<size_t> key_cols;
    std::vector<size_t> forbidden_cols;
  };

  bool Accept(const Tuple& t) const {
    for (const auto& [l, r] : diseq_cols_) {
      if (t[l] == t[r]) return false;
    }
    for (size_t i = 0; i < plan_.checks.size(); ++i) {
      const WitnessCheck& check = plan_.checks[i];
      const CheckCols& cc = check_cols_[i];
      Tuple key(cc.key_cols.size());
      for (size_t j = 0; j < cc.key_cols.size(); ++j) key[j] = t[cc.key_cols[j]];
      auto it = check.witnesses.find(key);
      if (it == check.witnesses.end()) return false;
      bool ok = false;
      for (Value w : it->second) {
        bool clash = false;
        for (size_t f : cc.forbidden_cols) {
          if (t[f] == w) {
            clash = true;
            break;
          }
        }
        if (!clash) {
          ok = true;
          break;
        }
      }
      if (!ok) return false;
    }
    return true;
  }

  std::unique_ptr<AnswerEnumerator> inner_;
  NeqPlan plan_;
  std::vector<CheckCols> check_cols_;
  std::vector<std::pair<size_t, size_t>> diseq_cols_;
};

Database MergeScratch(const Database& db, const Database& scratch) {
  Database merged;
  for (const auto& [name, rel] : db.relations()) merged.PutRelation(rel);
  for (const auto& [name, rel] : scratch.relations()) merged.PutRelation(rel);
  return merged;
}

}  // namespace

Result<std::unique_ptr<AnswerEnumerator>> MakeNeqEnumerator(
    const ConjunctiveQuery& q, const Database& db) {
  FGQ_RETURN_NOT_OK(q.Validate());
  FGQ_ASSIGN_OR_RETURN(NeqPlan plan, BuildNeqPlan(q, db));
  Database merged = MergeScratch(db, plan.scratch);
  FGQ_ASSIGN_OR_RETURN(std::unique_ptr<AnswerEnumerator> inner,
                       MakeConstantDelayEnumerator(plan.rewritten, merged));
  return std::unique_ptr<AnswerEnumerator>(new NeqFilterEnumerator(
      std::move(inner), std::move(plan), q.head()));
}

Result<Relation> EvaluateAcqNeq(const ConjunctiveQuery& q, const Database& db) {
  Result<std::unique_ptr<AnswerEnumerator>> e = MakeNeqEnumerator(q, db);
  if (!e.ok()) {
    // Unsupported shapes fall back to the oracle.
    return EvaluateBacktrack(q, db);
  }
  return DrainEnumerator(e.value().get(), q.name(), q.arity());
}

}  // namespace fgq
