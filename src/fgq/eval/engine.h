#ifndef FGQ_EVAL_ENGINE_H_
#define FGQ_EVAL_ENGINE_H_

#include <memory>
#include <string>

#include "fgq/db/database.h"
#include "fgq/eval/enumerate.h"
#include "fgq/query/cq.h"
#include "fgq/util/bigint.h"
#include "fgq/util/cancel.h"
#include "fgq/util/exec_options.h"
#include "fgq/util/status.h"

/// \file engine.h
/// The unified evaluation facade.
///
/// fgq grew one free function per theorem (EvaluateYannakakis,
/// MakeConstantDelayEnumerator, CountAcq, EvaluateAcqNeq, ...). Those
/// remain available as the low-level API, but applications should talk to
/// fgq::Engine: it classifies a query along the paper's dichotomies
/// (Boolean ACQ / free-connex ACQ / general ACQ / ACQ with disequalities /
/// cyclic or negated), dispatches to the fastest applicable algorithm, and
/// runs it on the engine's shared thread pool according to its
/// ExecOptions. One Engine can serve many queries; it is immutable after
/// construction and safe to share across request threads (each Execute
/// call only reads the configuration and uses the internally synchronized
/// pool).

namespace fgq {

/// Where a query falls in the paper's complexity landscape; decides the
/// algorithm Engine::Execute dispatches to.
enum class QueryClass {
  /// Boolean acyclic CQ: one bottom-up semijoin sweep, O(||phi|| ||D||)
  /// (Theorem 4.2's model-checking half).
  kBooleanAcyclic,
  /// Free-connex acyclic CQ: linear preprocessing, then output-linear
  /// assembly via the constant-delay plan (Theorem 4.6).
  kFreeConnexAcyclic,
  /// Acyclic but not free-connex: full Yannakakis,
  /// O(||phi|| ||D|| ||phi(D)||) (Theorem 4.2).
  kGeneralAcyclic,
  /// Acyclic with disequality comparisons: witness elimination
  /// (Theorem 4.20) with an oracle fallback.
  kAcyclicDisequalities,
  /// Acyclic with order comparisons: W[1]-hard (Theorem 4.15); served by
  /// the backtracking oracle.
  kAcyclicOrderComparisons,
  /// Contains negated atoms: outside the positive-ACQ fast paths.
  kNegated,
  /// Cyclic: no poly algorithm expected (Theorem 4.1 side); backtracking.
  kCyclic,
};

/// Stable human-readable name ("boolean-acyclic", "free-connex", ...).
const char* QueryClassName(QueryClass c);

/// The outcome of Engine::Execute.
struct QueryResult {
  /// phi(D), columns in head order (arity 0, nonempty marker for Boolean
  /// queries).
  Relation answers;
  /// Structural classification that drove the dispatch.
  QueryClass classification = QueryClass::kCyclic;
  /// The algorithm that produced `answers` (for logging/inspection).
  std::string algorithm;

  size_t NumAnswers() const { return answers.NumTuples(); }
  bool BooleanValue() const { return answers.NumTuples() > 0; }
};

/// The unified entry point to every evaluation algorithm in the library.
class Engine {
 public:
  /// An engine with the given execution options. The thread pool (when
  /// num_threads > 1) is created once and shared by all calls.
  explicit Engine(const ExecOptions& opts = ExecOptions());

  const ExecOptions& options() const { return opts_; }
  /// The engine's execution context (shared pool + morsel size).
  const ExecContext& context() const { return ctx_; }

  /// Structural classification along the paper's dichotomies. Pure
  /// query analysis; does not touch a database.
  static QueryClass Classify(const ConjunctiveQuery& q);

  /// Evaluates phi(D) with the fastest algorithm for the query's class,
  /// using the engine's options.
  Result<QueryResult> Execute(const ConjunctiveQuery& q,
                              const Database& db) const;
  /// Same, with per-call options (a fresh pool is spun up when the
  /// requested thread count differs from the engine's).
  Result<QueryResult> Execute(const ConjunctiveQuery& q, const Database& db,
                              const ExecOptions& opts) const;
  /// Same, polling `cancel` in the evaluation loops: a tripped token makes
  /// the call return DeadlineExceeded/Cancelled (with partial-work
  /// accounting in the message) instead of running to completion. This is
  /// the entry point the serving layer uses to enforce request deadlines.
  Result<QueryResult> Execute(const ConjunctiveQuery& q, const Database& db,
                              const CancelToken& cancel) const;
  /// Fully explicit form: evaluate under a caller-assembled ExecContext
  /// (pool + cancel token + trace sink). `Explain` and the serving layer
  /// use this to attach a TraceContext for per-phase attribution.
  Result<QueryResult> Execute(const ConjunctiveQuery& q, const Database& db,
                              const ExecContext& ctx) const;

  /// Counts |phi(D)| without materializing answers: counting DP for
  /// acyclic queries (Theorems 4.21/4.28), oracle fallback otherwise.
  Result<BigInt> Count(const ConjunctiveQuery& q, const Database& db) const;

  /// Streams the answers with the strongest delay guarantee available:
  /// constant delay for free-connex ACQs, linear delay for general ACQs,
  /// witness-based for ACQ with disequalities, materialize-then-replay
  /// otherwise.
  Result<std::unique_ptr<AnswerEnumerator>> Enumerate(
      const ConjunctiveQuery& q, const Database& db) const;

 private:
  Result<QueryResult> ExecuteWith(const ConjunctiveQuery& q,
                                  const Database& db,
                                  const ExecContext& ctx) const;

  ExecOptions opts_;
  ExecContext ctx_;
};

}  // namespace fgq

#endif  // FGQ_EVAL_ENGINE_H_
