#ifndef FGQ_EVAL_ENGINE_H_
#define FGQ_EVAL_ENGINE_H_

#include <memory>
#include <optional>
#include <string>

#include "fgq/db/database.h"
#include "fgq/eval/enumerate.h"
#include "fgq/query/cq.h"
#include "fgq/util/bigint.h"
#include "fgq/util/cancel.h"
#include "fgq/util/exec_options.h"
#include "fgq/util/status.h"

/// \file engine.h
/// The unified evaluation facade.
///
/// fgq grew one free function per theorem (EvaluateYannakakis,
/// MakeConstantDelayEnumerator, CountAcq, EvaluateAcqNeq, ...). Those
/// remain available as the low-level API, but applications should talk to
/// fgq::Engine: it classifies a query along the paper's dichotomies
/// (Boolean ACQ / free-connex ACQ / general ACQ / ACQ with disequalities /
/// cyclic or negated), dispatches to the fastest applicable algorithm, and
/// runs it on the engine's shared thread pool according to its
/// ExecOptions. One Engine can serve many queries; it is immutable after
/// construction and safe to share across request threads (each call only
/// reads the configuration and uses the internally synchronized pool).
///
/// The call surface is one request aggregate: build an ExecRequest (query
/// + database + optional per-call options, cancel token, trace sink) and
/// pass it to Run / Count / Enumerate. The historical Execute overloads
/// (plain, per-call ExecOptions, CancelToken, raw ExecContext) are kept as
/// thin deprecated shims over Run.

namespace fgq {

/// Where a query falls in the paper's complexity landscape; decides the
/// algorithm Engine::Execute dispatches to.
enum class QueryClass {
  /// Boolean acyclic CQ: one bottom-up semijoin sweep, O(||phi|| ||D||)
  /// (Theorem 4.2's model-checking half).
  kBooleanAcyclic,
  /// Free-connex acyclic CQ: linear preprocessing, then output-linear
  /// assembly via the constant-delay plan (Theorem 4.6).
  kFreeConnexAcyclic,
  /// Acyclic but not free-connex: full Yannakakis,
  /// O(||phi|| ||D|| ||phi(D)||) (Theorem 4.2).
  kGeneralAcyclic,
  /// Acyclic with disequality comparisons: witness elimination
  /// (Theorem 4.20) with an oracle fallback.
  kAcyclicDisequalities,
  /// Acyclic with order comparisons: W[1]-hard (Theorem 4.15); served by
  /// the backtracking oracle.
  kAcyclicOrderComparisons,
  /// Contains negated atoms: outside the positive-ACQ fast paths.
  kNegated,
  /// Cyclic: no poly algorithm expected (Theorem 4.1 side); backtracking.
  kCyclic,
};

/// Stable human-readable name ("boolean-acyclic", "free-connex", ...).
const char* QueryClassName(QueryClass c);

class TraceContext;  // src/fgq/trace/trace.h

/// Everything one evaluation call needs, in one aggregate. The query and
/// database are borrowed (non-owning, must outlive the call); the rest
/// defaults to "the engine's configuration, no cancellation, no tracing".
///
///   ExecRequest req(q, db);
///   req.cancel = CancelToken::WithTimeout(50ms);
///   req.trace = &trace;
///   auto res = engine.Run(req);
///
/// One struct instead of N overloads means a new knob (a future snapshot
/// epoch, a compiled-plan hint) is one new field, not 2^k new signatures.
struct ExecRequest {
  const ConjunctiveQuery* query = nullptr;  ///< Required.
  const Database* db = nullptr;             ///< Required.
  /// Per-call options override. Unset = the engine's own options; a set
  /// value whose thread count differs spins up a fresh pool for the call.
  std::optional<ExecOptions> options;
  /// Polled by the evaluation loops; a tripped token surfaces as
  /// DeadlineExceeded/Cancelled with partial-work accounting. The default
  /// inert token costs nothing.
  CancelToken cancel;
  /// Span/counter sink for per-phase attribution, or null (untraced fast
  /// path). Not owned; must outlive the call.
  TraceContext* trace = nullptr;

  ExecRequest() = default;
  ExecRequest(const ConjunctiveQuery& q, const Database& d)
      : query(&q), db(&d) {}
};

/// The outcome of Engine::Run.
struct ExecResult {
  /// phi(D), columns in head order (arity 0, nonempty marker for Boolean
  /// queries).
  Relation answers;
  /// Structural classification that drove the dispatch.
  QueryClass classification = QueryClass::kCyclic;
  /// The algorithm that produced `answers` (for logging/inspection).
  std::string algorithm;

  size_t NumAnswers() const { return answers.NumTuples(); }
  bool BooleanValue() const { return answers.NumTuples() > 0; }
};

/// Historical name of ExecResult (pre-ExecRequest API).
using QueryResult = ExecResult;

/// The unified entry point to every evaluation algorithm in the library.
class Engine {
 public:
  /// An engine with the given execution options. The thread pool (when
  /// num_threads > 1) is created once and shared by all calls.
  explicit Engine(const ExecOptions& opts = ExecOptions());

  const ExecOptions& options() const { return opts_; }
  /// The engine's execution context (shared pool + morsel size).
  const ExecContext& context() const { return ctx_; }

  /// Structural classification along the paper's dichotomies. Pure
  /// query analysis; does not touch a database.
  static QueryClass Classify(const ConjunctiveQuery& q);

  /// Evaluates phi(D) with the fastest algorithm for the query's class.
  /// InvalidArgument when req.query/req.db is null.
  Result<ExecResult> Run(const ExecRequest& req) const;

  /// Counts |phi(D)| without materializing answers: counting DP for
  /// acyclic queries (Theorems 4.21/4.28), oracle fallback otherwise.
  /// (The counting DP is not yet cancellation-aware; req.cancel applies
  /// to the oracle fallback only.)
  Result<BigInt> Count(const ExecRequest& req) const;

  /// Streams the answers with the strongest delay guarantee available:
  /// constant delay for free-connex ACQs, linear delay for general ACQs,
  /// witness-based for ACQ with disequalities, materialize-then-replay
  /// otherwise.
  Result<std::unique_ptr<AnswerEnumerator>> Enumerate(
      const ExecRequest& req) const;

  /// ------------------------------------------------------------------
  /// Deprecated pre-ExecRequest surface, kept as thin shims over Run.
  /// ------------------------------------------------------------------

  [[deprecated("use Run(ExecRequest(q, db))")]]
  Result<ExecResult> Execute(const ConjunctiveQuery& q,
                             const Database& db) const {
    return Run(ExecRequest(q, db));
  }
  [[deprecated("use Run with ExecRequest::options")]]
  Result<ExecResult> Execute(const ConjunctiveQuery& q, const Database& db,
                             const ExecOptions& opts) const {
    ExecRequest req(q, db);
    req.options = opts;
    return Run(req);
  }
  [[deprecated("use Run with ExecRequest::cancel")]]
  Result<ExecResult> Execute(const ConjunctiveQuery& q, const Database& db,
                             const CancelToken& cancel) const {
    ExecRequest req(q, db);
    req.cancel = cancel;
    return Run(req);
  }
  /// The raw-ExecContext form has no ExecRequest equivalent (cancel +
  /// trace cover every in-tree use); defined out of line so it can reach
  /// the private ExecuteWith.
  [[deprecated("use Run with ExecRequest::cancel / ExecRequest::trace")]]
  Result<ExecResult> Execute(const ConjunctiveQuery& q, const Database& db,
                             const ExecContext& ctx) const;

  /// Non-aggregate conveniences (still current API, used by the low-level
  /// tests): equivalent to Run/Count/Enumerate on a default ExecRequest.
  Result<BigInt> Count(const ConjunctiveQuery& q, const Database& db) const {
    return Count(ExecRequest(q, db));
  }
  Result<std::unique_ptr<AnswerEnumerator>> Enumerate(
      const ConjunctiveQuery& q, const Database& db) const {
    return Enumerate(ExecRequest(q, db));
  }

 private:
  Result<ExecResult> ExecuteWith(const ConjunctiveQuery& q,
                                 const Database& db,
                                 const ExecContext& ctx) const;
  /// Assembles the per-call ExecContext from the request (options
  /// override, cancel token, trace sink).
  ExecContext ContextFor(const ExecRequest& req) const;

  ExecOptions opts_;
  ExecContext ctx_;
};

}  // namespace fgq

#endif  // FGQ_EVAL_ENGINE_H_
