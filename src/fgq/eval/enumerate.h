#ifndef FGQ_EVAL_ENUMERATE_H_
#define FGQ_EVAL_ENUMERATE_H_

#include <memory>
#include <utility>

#include "fgq/db/database.h"
#include "fgq/db/index.h"
#include "fgq/eval/prepared.h"
#include "fgq/query/cq.h"
#include "fgq/util/exec_options.h"
#include "fgq/util/status.h"

/// \file enumerate.h
/// Answer enumeration for acyclic conjunctive queries.
///
/// Three enumerators with increasingly strong delay guarantees:
///
/// * MakeMaterializedEnumerator — the baseline: compute phi(D) in full,
///   then replay it. Preprocessing pays the whole evaluation cost.
/// * MakeLinearDelayEnumerator — Theorem 4.3 / Algorithm 2 of the paper:
///   linear-time preprocessing and O(||phi|| * ||D||) delay, for every
///   acyclic conjunctive query. Each step fixes the next head variable and
///   re-reduces the restricted instance; full reduction guarantees every
///   candidate extends to an answer, so there are no dead ends.
/// * MakeConstantDelayEnumerator — Theorem 4.6: for *free-connex* acyclic
///   queries, linear-time preprocessing and delay depending only on the
///   query. Preprocessing fully reduces the instance and projects it onto
///   the free variables (safe exactly because the query is free-connex);
///   the enumeration phase is an odometer walk over hash-indexed
///   join-tree nodes in which every probe is guaranteed nonempty.
///
/// Factories accept ExecOptions: preprocessing (full reduction, free-
/// variable projections, hash-index builds) runs morsel-parallel on a
/// work-stealing pool when num_threads > 1, while the enumeration phase
/// itself stays single-threaded — the delay guarantees are per answer and
/// unaffected. The default options reproduce serial behavior bit-for-bit.

namespace fgq {

/// Pull-based answer stream. Answers arrive with no repetition; column
/// order matches the query head.
class AnswerEnumerator {
 public:
  virtual ~AnswerEnumerator() = default;

  /// Fills `out` with the next answer and returns true, or returns false
  /// when the answer set is exhausted.
  virtual bool Next(Tuple* out) = 0;
};

/// Baseline: materialize, then replay.
std::unique_ptr<AnswerEnumerator> MakeMaterializedEnumerator(Relation answers);

/// Theorem 4.3: linear-preprocessing, linear-delay enumeration for any
/// acyclic conjunctive query (no negation/comparisons).
Result<std::unique_ptr<AnswerEnumerator>> MakeLinearDelayEnumerator(
    const ConjunctiveQuery& q, const Database& db,
    const ExecOptions& opts = ExecOptions());
Result<std::unique_ptr<AnswerEnumerator>> MakeLinearDelayEnumerator(
    const ConjunctiveQuery& q, const Database& db, const ExecContext& ctx);

/// Theorem 4.6: linear-preprocessing, constant-delay enumeration for
/// free-connex acyclic conjunctive queries. Fails with InvalidArgument if
/// the query is not acyclic or not free-connex.
Result<std::unique_ptr<AnswerEnumerator>> MakeConstantDelayEnumerator(
    const ConjunctiveQuery& q, const Database& db,
    const ExecOptions& opts = ExecOptions());
Result<std::unique_ptr<AnswerEnumerator>> MakeConstantDelayEnumerator(
    const ConjunctiveQuery& q, const Database& db, const ExecContext& ctx);

/// Drains an enumerator into a relation (test/bench helper).
Relation DrainEnumerator(AnswerEnumerator* e, const std::string& name,
                         size_t arity);

/// The preprocessing artifact shared by the constant-delay enumerator and
/// the random-access structure (random_access.h): the fully reduced
/// free-projection join tree of a free-connex query. `nodes` are in
/// top-down order; `parent[i]` indexes into `nodes` (-1 for the root).
struct FreeConnexPlan {
  std::vector<PreparedAtom> nodes;
  std::vector<int> parent;
  /// True when phi(D) is empty (nodes/parent are then unspecified).
  bool empty = false;
};

/// Runs the Theorem 4.6 preprocessing and returns the plan. Fails for
/// non-acyclic or non-free-connex queries. Boolean queries yield an empty
/// node list with `empty` reflecting satisfiability.
Result<FreeConnexPlan> BuildFreeConnexPlan(
    const ConjunctiveQuery& q, const Database& db,
    const ExecOptions& opts = ExecOptions());
Result<FreeConnexPlan> BuildFreeConnexPlan(const ConjunctiveQuery& q,
                                           const Database& db,
                                           const ExecContext& ctx);

/// A FreeConnexPlan plus everything the enumeration phase needs that is
/// data-dependent but query-independent of the *cursor*: per-node hash
/// indexes on the parent connector, connector column maps, head output
/// slots, and root candidate lists. Immutable after IndexFreeConnexPlan,
/// so one indexed plan can back any number of concurrent cursors — this
/// is the artifact the serving layer caches, making repeated queries skip
/// both the reduction sweeps and the index builds.
struct IndexedFreeConnexPlan {
  std::vector<PreparedAtom> nodes;  // Top-down join-tree order.
  std::vector<int> parent;          // Index into nodes, -1 for roots.
  /// parent_cols[i][k]: the parent column matching node i's k-th
  /// connector column.
  std::vector<std::vector<size_t>> parent_cols;
  /// Index of node i keyed by its connector with the parent (empty key
  /// for roots).
  std::vector<std::unique_ptr<HashIndex>> indexes;
  /// (node, column) providing each head variable, in head order.
  std::vector<std::pair<size_t, size_t>> out_slots;
  /// Candidate row ids for nodes with no parent; empty for other nodes.
  std::vector<std::vector<uint32_t>> root_rows;
  /// True when phi(D) is empty.
  bool empty = false;
  /// True for a Boolean query (no output columns; `empty` is the verdict).
  bool is_boolean = false;
};

/// Builds the indexes over a FreeConnexPlan (O(||D||), morsel-parallel
/// with a pool). `head` is the query head the cursors will emit.
Result<std::shared_ptr<const IndexedFreeConnexPlan>> IndexFreeConnexPlan(
    FreeConnexPlan plan, const std::vector<std::string>& head,
    const ExecContext& ctx = ExecContext());

/// A fresh constant-delay cursor over a shared indexed plan. Cheap
/// (query-sized state only); cursors are independent and single-threaded.
std::unique_ptr<AnswerEnumerator> MakePlanEnumerator(
    std::shared_ptr<const IndexedFreeConnexPlan> plan);

}  // namespace fgq

#endif  // FGQ_EVAL_ENUMERATE_H_
