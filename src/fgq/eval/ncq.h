#ifndef FGQ_EVAL_NCQ_H_
#define FGQ_EVAL_NCQ_H_

#include "fgq/db/database.h"
#include "fgq/mso/tree_decomposition.h"
#include "fgq/query/cq.h"
#include "fgq/util/status.h"

/// \file ncq.h
/// Negative conjunctive queries (Section 4.5, Theorem 4.31 [17]).
///
/// An NCQ is a Boolean query exists x. /\_i NOT R_i(z_i): the relations
/// list *forbidden* tuples (the negative encoding of CSP/SAT with
/// unbounded constraint arity). Deciding an NCQ is quasi-linear exactly
/// when its hypergraph is beta-acyclic; the algorithm eliminates
/// variables along a nest-point order (the same order that witnesses
/// beta-acyclicity), performing a Davis-Putnam-style resolution at each
/// step:
///
/// Eliminating a nest point z whose atoms form the chain A_1 <= ... <= A_m
/// (by variable-set inclusion): an assignment tau of A_j \ {z} is newly
/// forbidden iff the union of forbidden z-values contributed by levels
/// 1..j at tau's projections covers the whole domain. Each new forbidden
/// tuple is charged to an existing tuple at its level, so the instance
/// grows by at most a constant factor per elimination and the whole run is
/// quasi-linear in ||D||.

namespace fgq {

/// Decides a Boolean beta-acyclic NCQ. The query must consist solely of
/// negated atoms and have an empty head; the domain is
/// [0, db.DomainSize()). Fails with InvalidArgument when the hypergraph is
/// not beta-acyclic (Theorem 4.31's hardness side says no fast algorithm
/// should exist there).
Result<bool> DecideBetaAcyclicNcq(const ConjunctiveQuery& q,
                                  const Database& db);

/// Brute-force NCQ decision by backtracking (test oracle).
Result<bool> DecideNcqBruteForce(const ConjunctiveQuery& q,
                                 const Database& db);

/// The hardness side of Theorem 4.31 (the Triangle hypothesis): a
/// *cyclic* NCQ whose decision is exactly triangle detection. The
/// negative atoms hold the complement graph (plus the diagonal), so
///   exists x y z. not R1(x,y) & not R2(y,z) & not R3(z,x)
/// holds iff g contains a triangle. DecideBetaAcyclicNcq rejects the
/// query (its hypergraph is a triangle, not beta-acyclic) — which is the
/// dichotomy's point: only generic, super-quasi-linear procedures apply.
struct TriangleNcq {
  Database db;
  ConjunctiveQuery query;
};
TriangleNcq BuildTriangleNcq(const Graph& g);

}  // namespace fgq

#endif  // FGQ_EVAL_NCQ_H_
