#ifndef FGQ_UTIL_EXEC_OPTIONS_H_
#define FGQ_UTIL_EXEC_OPTIONS_H_

#include <cstddef>
#include <memory>
#include <utility>

#include "fgq/util/cancel.h"
#include "fgq/util/thread_pool.h"

/// \file exec_options.h
/// Execution knobs for the parallel evaluation core.
///
/// Every evaluation entry point (EvaluateYannakakis, FullReduce, the
/// enumerator factories, the Engine facade) accepts an ExecOptions. The
/// default — num_threads = 1 — reproduces the historical serial behavior
/// bit-for-bit: no pool is created and every algorithm takes its original
/// code path. With num_threads > 1 the linear-time phases (atom
/// preparation, semijoin sweeps, sort/dedup, hash-index builds) run
/// morsel-parallel; the per-thread work stays O(||D|| / threads + morsels),
/// preserving the paper's O(||D||) preprocessing bound.

namespace fgq {

class TraceContext;  // src/fgq/trace/trace.h — util must not depend on it

struct ExecOptions {
  /// Total execution lanes. 1 = serial (the default); 0 or negative =
  /// one lane per hardware thread.
  int num_threads = 1;
  /// Rows per parallel work unit. Small enough to load-balance skewed
  /// relations, big enough to amortize scheduling (~a few cache pages).
  size_t morsel_size = 4096;

  size_t ResolvedThreads() const {
    if (num_threads > 0) return static_cast<size_t>(num_threads);
    return ThreadPool::HardwareThreads();
  }

  static ExecOptions Serial() { return ExecOptions{}; }
  static ExecOptions Parallel(int threads = 0) {
    ExecOptions o;
    o.num_threads = threads;
    return o;
  }

  friend bool operator==(const ExecOptions& a, const ExecOptions& b) {
    return a.num_threads == b.num_threads && a.morsel_size == b.morsel_size;
  }
};

/// A shared handle on the execution resources of one (or many) evaluation
/// calls: the thread pool — null in serial mode — plus the morsel size.
/// Copies share the pool; a default-constructed context is serial.
/// Algorithms receive an ExecContext so a single pool is reused across all
/// phases of an evaluation (and across queries, when held by an Engine).
class ExecContext {
 public:
  ExecContext() = default;
  explicit ExecContext(const ExecOptions& opts)
      : morsel_size_(opts.morsel_size == 0 ? 4096 : opts.morsel_size) {
    const size_t threads = opts.ResolvedThreads();
    if (threads > 1) pool_ = std::make_shared<ThreadPool>(threads);
  }

  /// The pool, or null in serial mode.
  ThreadPool* pool() const { return pool_.get(); }
  /// Shared ownership, for enumerators that outlive their factory call.
  std::shared_ptr<ThreadPool> shared_pool() const { return pool_; }
  size_t morsel_size() const { return morsel_size_; }
  bool serial() const { return pool_ == nullptr; }

  /// The cancellation token the evaluation loops poll. Inert by default.
  const CancelToken& cancel() const { return cancel_; }

  /// A copy of this context (sharing the pool) that polls `token`. The
  /// serving layer wraps the engine's context per request this way.
  ExecContext WithCancel(CancelToken token) const {
    ExecContext out = *this;
    out.cancel_ = std::move(token);
    return out;
  }

  /// The trace sink the instrumentation sites report to, or null (the
  /// default — tracing off, near-zero cost). Not owned; the caller keeps
  /// the TraceContext alive for the duration of the evaluation.
  TraceContext* trace() const { return trace_; }

  /// A copy of this context that reports spans/counters to `trace`.
  /// Pass nullptr to detach.
  ExecContext WithTrace(TraceContext* trace) const {
    ExecContext out = *this;
    out.trace_ = trace;
    return out;
  }

 private:
  std::shared_ptr<ThreadPool> pool_;
  size_t morsel_size_ = 4096;
  CancelToken cancel_;
  TraceContext* trace_ = nullptr;
};

}  // namespace fgq

#endif  // FGQ_UTIL_EXEC_OPTIONS_H_
