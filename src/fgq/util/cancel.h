#ifndef FGQ_UTIL_CANCEL_H_
#define FGQ_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "fgq/util/status.h"

/// \file cancel.h
/// Cooperative cancellation and deadlines.
///
/// Mengel-style lower bounds say some query classes are unavoidably
/// expensive, so a serving layer must be able to *cut off* a hopeless
/// request rather than assume fast evaluation. CancelToken is the
/// mechanism: a cheap, copyable handle on shared cancellation state that
/// the long-running evaluation loops (backtracking oracle, semijoin
/// sweeps, enumerator preprocessing) poll at loop boundaries. A token can
/// be cancelled explicitly (shutdown, load shedding) or trip on a wall-
/// clock deadline; once tripped it stays tripped, so every subsequent
/// check observes the same terminal reason.
///
/// A default-constructed token is *inert*: it has no shared state, never
/// trips, and checks compile down to a null test — algorithms pay nothing
/// when no caller asked for cancellation.

namespace fgq {

/// Copyable handle on shared cancellation state; copies observe the same
/// cancellation. Thread-safe.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// An inert token: never cancelled, checks are free.
  CancelToken() = default;

  /// A token that trips only via Cancel().
  static CancelToken Cancellable() { return CancelToken(Clock::time_point{}, false); }

  /// A token that trips when `deadline` passes (or via Cancel()).
  static CancelToken WithDeadline(Clock::time_point deadline) {
    return CancelToken(deadline, true);
  }

  /// A token that trips `timeout` from now (or via Cancel()).
  template <typename Rep, typename Period>
  static CancelToken WithTimeout(std::chrono::duration<Rep, Period> timeout) {
    return WithDeadline(Clock::now() +
                        std::chrono::duration_cast<Clock::duration>(timeout));
  }

  /// True when this token can ever trip (i.e. is not inert).
  bool cancellable() const { return state_ != nullptr; }

  /// True when `o` is a copy of this token (shares its state). Inert
  /// tokens share nothing, so two inert tokens are not the same.
  bool SameStateAs(const CancelToken& o) const {
    return state_ != nullptr && state_ == o.state_;
  }

  /// Trips the token explicitly. No-op on an inert token.
  void Cancel() const {
    if (state_ == nullptr) return;
    Reason expected = Reason::kNone;
    state_->reason.compare_exchange_strong(expected, Reason::kCancelled,
                                           std::memory_order_relaxed);
  }

  /// True once the token has tripped (explicit cancel or deadline). The
  /// deadline clock is read on the first call and then every
  /// `kClockStride`-th call; once observed expired the result is latched.
  bool cancelled() const {
    if (state_ == nullptr) return false;
    if (state_->reason.load(std::memory_order_relaxed) != Reason::kNone) {
      return true;
    }
    if (!state_->has_deadline) return false;
    if (state_->ticks.fetch_add(1, std::memory_order_relaxed) %
            kClockStride !=
        0) {
      return false;
    }
    if (Clock::now() >= state_->deadline) {
      Reason expected = Reason::kNone;
      state_->reason.compare_exchange_strong(expected,
                                             Reason::kDeadlineExceeded,
                                             std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// OK while the token has not tripped; afterwards DeadlineExceeded or
  /// Cancelled, mentioning `where` (e.g. "full reduction") when given.
  Status Check(const char* where = nullptr) const {
    if (!cancelled()) return Status::OK();
    std::string msg = state_->reason.load(std::memory_order_relaxed) ==
                              Reason::kDeadlineExceeded
                          ? "deadline exceeded"
                          : "request cancelled";
    if (where != nullptr) {
      msg += " during ";
      msg += where;
    }
    if (state_->reason.load(std::memory_order_relaxed) ==
        Reason::kDeadlineExceeded) {
      return Status::DeadlineExceeded(std::move(msg));
    }
    return Status::Cancelled(std::move(msg));
  }

 private:
  enum class Reason : int { kNone = 0, kCancelled, kDeadlineExceeded };

  struct State {
    std::atomic<Reason> reason{Reason::kNone};
    bool has_deadline = false;
    Clock::time_point deadline{};
    /// Amortizes clock reads across cancelled() calls; shared by all
    /// copies, which only makes deadline observation more frequent.
    mutable std::atomic<uint64_t> ticks{0};
  };

  /// Clock reads happen on 1 out of kClockStride checks. The first check
  /// always reads the clock, so an already-expired deadline trips on the
  /// very first poll.
  static constexpr uint64_t kClockStride = 32;

  CancelToken(Clock::time_point deadline, bool has_deadline)
      : state_(std::make_shared<State>()) {
    state_->has_deadline = has_deadline;
    state_->deadline = deadline;
  }

  std::shared_ptr<State> state_;
};

}  // namespace fgq

#endif  // FGQ_UTIL_CANCEL_H_
