#ifndef FGQ_UTIL_DELAY_RECORDER_H_
#define FGQ_UTIL_DELAY_RECORDER_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

/// \file delay_recorder.h
/// Measurement of enumeration delay.
///
/// The paper's central enumeration notion (Section 2.3.3) separates
/// preprocessing time from the *delay* between consecutive outputs, and
/// Constant-Delay_lin requires the delay to be independent of the database
/// size. DelayRecorder timestamps each output so benchmarks can report the
/// maximum and mean inter-output gap and verify the flat-vs-linear shape
/// the theorems predict.

namespace fgq {

/// Records inter-output gaps during an enumeration run.
class DelayRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  /// Marks the end of the preprocessing phase / start of enumeration.
  void StartEnumeration() {
    last_ = Clock::now();
    max_delay_ns_ = 0;
    total_delay_ns_ = 0;
    count_ = 0;
  }

  /// Records one output event.
  void RecordOutput() {
    Clock::time_point now = Clock::now();
    int64_t gap =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - last_)
            .count();
    last_ = now;
    max_delay_ns_ = std::max(max_delay_ns_, gap);
    total_delay_ns_ += gap;
    ++count_;
  }

  int64_t max_delay_ns() const { return max_delay_ns_; }
  int64_t count() const { return count_; }
  double mean_delay_ns() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_delay_ns_) /
                             static_cast<double>(count_);
  }

 private:
  Clock::time_point last_{};
  int64_t max_delay_ns_ = 0;
  int64_t total_delay_ns_ = 0;
  int64_t count_ = 0;
};

}  // namespace fgq

#endif  // FGQ_UTIL_DELAY_RECORDER_H_
