#ifndef FGQ_UTIL_DELAY_RECORDER_H_
#define FGQ_UTIL_DELAY_RECORDER_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

/// \file delay_recorder.h
/// Measurement of enumeration delay.
///
/// The paper's central enumeration notion (Section 2.3.3) separates
/// preprocessing time from the *delay* between consecutive outputs, and
/// Constant-Delay_lin requires the delay to be independent of the database
/// size. DelayRecorder timestamps each output so benchmarks can report the
/// maximum, mean, and p50/p95/p99 inter-output gaps and verify the
/// flat-vs-linear shape the theorems predict. Max alone is noisy (one
/// scheduler hiccup dominates); the tail percentiles separate a genuinely
/// linear delay from measurement noise.

namespace fgq {

/// Records inter-output gaps during an enumeration run.
class DelayRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  /// Marks the end of the preprocessing phase / start of enumeration.
  void StartEnumeration() {
    last_ = Clock::now();
    max_delay_ns_ = 0;
    total_delay_ns_ = 0;
    gaps_ns_.clear();
  }

  /// Records one output event.
  void RecordOutput() {
    Clock::time_point now = Clock::now();
    int64_t gap =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - last_)
            .count();
    last_ = now;
    max_delay_ns_ = std::max(max_delay_ns_, gap);
    total_delay_ns_ += gap;
    gaps_ns_.push_back(gap);
  }

  int64_t max_delay_ns() const { return max_delay_ns_; }
  int64_t count() const { return static_cast<int64_t>(gaps_ns_.size()); }
  double mean_delay_ns() const {
    return gaps_ns_.empty() ? 0.0
                            : static_cast<double>(total_delay_ns_) /
                                  static_cast<double>(gaps_ns_.size());
  }

  /// The q-quantile gap (nearest-rank), q in [0, 1]; 0 when no outputs
  /// were recorded.
  int64_t quantile_delay_ns(double q) const {
    if (gaps_ns_.empty()) return 0;
    q = std::min(std::max(q, 0.0), 1.0);
    size_t rank = static_cast<size_t>(q * static_cast<double>(gaps_ns_.size()));
    if (rank >= gaps_ns_.size()) rank = gaps_ns_.size() - 1;
    std::vector<int64_t> gaps = gaps_ns_;
    std::nth_element(gaps.begin(), gaps.begin() + static_cast<long>(rank),
                     gaps.end());
    return gaps[rank];
  }

  int64_t p50_delay_ns() const { return quantile_delay_ns(0.50); }
  int64_t p95_delay_ns() const { return quantile_delay_ns(0.95); }
  int64_t p99_delay_ns() const { return quantile_delay_ns(0.99); }

 private:
  Clock::time_point last_{};
  int64_t max_delay_ns_ = 0;
  int64_t total_delay_ns_ = 0;
  std::vector<int64_t> gaps_ns_;
};

}  // namespace fgq

#endif  // FGQ_UTIL_DELAY_RECORDER_H_
