#ifndef FGQ_UTIL_RANDOM_H_
#define FGQ_UTIL_RANDOM_H_

#include <cstdint>

/// \file random.h
/// A small, fast, deterministic PRNG (xorshift128+) used by workload
/// generators and randomized algorithms (e.g. the Karp-Luby FPRAS).
///
/// We deliberately avoid <random> engines in hot paths: workload generation
/// appears inside benchmark setup, and determinism across platforms matters
/// for reproducing the experiment tables.

namespace fgq {

/// xorshift128+ generator. Not cryptographic; statistically fine for
/// sampling and synthetic data.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, which avoids the all-zero state and decorrelates
    // nearby seeds.
    state_[0] = SplitMix(&seed);
    state_[1] = SplitMix(&seed);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = state_[0];
    const uint64_t y = state_[1];
    state_[0] = y;
    x ^= x << 23;
    state_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state_[1] + y;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // bounds used here (bound << 2^64).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform value in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* s) {
    uint64_t z = (*s += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t state_[2];
};

}  // namespace fgq

#endif  // FGQ_UTIL_RANDOM_H_
