#ifndef FGQ_UTIL_THREAD_POOL_H_
#define FGQ_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

/// \file thread_pool.h
/// Work-stealing thread pool and morsel-driven parallel loops.
///
/// The pool backs the parallel evaluation core: atom preparation, semijoin
/// sweeps, sort/dedup and hash-index builds all decompose into independent
/// morsels (fixed-size row ranges) claimed dynamically by whichever thread
/// is free, in the style of morsel-driven query execution. Each worker owns
/// a deque; it executes its own tasks FIFO and steals the newest task from
/// a victim when its deque runs dry. Blocking calls (ParallelFor, and any
/// task that itself waits on nested parallel work) cooperatively execute
/// queued tasks while waiting, so nested parallelism cannot deadlock.
///
/// Every algorithm built on the pool is deterministic: morsels only write
/// thread-private buffers that are concatenated in morsel order, or
/// disjoint slots, so results are identical for any thread count.

namespace fgq {

class ThreadPool {
 public:
  /// A pool of `num_threads` total execution lanes: `num_threads - 1`
  /// worker threads are spawned, the caller of ParallelFor is the last
  /// lane. `num_threads <= 1` spawns nothing and runs everything inline.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t HardwareThreads();

  /// Schedules `fn` on a worker and returns its future. Exceptions thrown
  /// by `fn` surface from future::get(). Runs inline when the pool has no
  /// workers. Tasks submitted from one thread to one worker run FIFO.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    Enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Runs `body(begin, end)` over [0, n) split into `grain`-sized morsels.
  /// Morsels are claimed dynamically by the caller plus idle workers;
  /// the call blocks until every morsel finished and rethrows the first
  /// exception any morsel threw (remaining morsels are then cancelled).
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void Enqueue(std::function<void()> fn);
  /// Claims one queued task (own queue FIFO, then steal newest from a
  /// victim) and runs it. Returns false when every queue is empty.
  bool TryRunOne();
  void WorkerLoop(size_t index);

  size_t num_threads_ = 1;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  size_t pending_ = 0;  // Queued-but-unclaimed tasks; guarded by sleep_mu_.
  bool stop_ = false;   // Guarded by sleep_mu_.
  std::atomic<size_t> round_robin_{0};
};

/// Serial-fallback wrapper: runs `body(0, n)` inline when `pool` is null,
/// single-threaded, or the range fits in one morsel.
inline void ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                        const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || n <= grain) {
    body(0, n);
    return;
  }
  pool->ParallelFor(n, grain, body);
}

}  // namespace fgq

#endif  // FGQ_UTIL_THREAD_POOL_H_
