#include "fgq/util/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace fgq {

namespace {

/// Index of the worker owning the current thread, or SIZE_MAX on threads
/// the pool did not spawn (the "external" caller of ParallelFor).
thread_local size_t tls_worker_index = static_cast<size_t>(-1);

}  // namespace

size_t ThreadPool::HardwareThreads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(std::max<size_t>(1, num_threads)) {
  const size_t num_workers = num_threads_ - 1;
  queues_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  if (queues_.empty()) {
    // No workers: degenerate pool, run inline.
    fn();
    return;
  }
  // A worker submits to its own queue (executed FIFO, stolen LIFO);
  // external threads spray round-robin.
  size_t q = tls_worker_index;
  if (q >= queues_.size()) {
    q = round_robin_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lk(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(fn));
  }
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    ++pending_;
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::TryRunOne() {
  std::function<void()> task;
  const size_t self = tls_worker_index;
  if (self < queues_.size()) {
    std::lock_guard<std::mutex> lk(queues_[self]->mu);
    if (!queues_[self]->tasks.empty()) {
      task = std::move(queues_[self]->tasks.front());
      queues_[self]->tasks.pop_front();
    }
  }
  if (!task) {
    // Steal the newest task of the first non-empty victim queue.
    const size_t k = queues_.size();
    const size_t start = self < k ? self + 1 : 0;
    for (size_t i = 0; i < k && !task; ++i) {
      Queue& victim = *queues_[(start + i) % k];
      std::lock_guard<std::mutex> lk(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.back());
        victim.tasks.pop_back();
      }
    }
  }
  if (!task) return false;
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    --pending_;
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_worker_index = index;
  for (;;) {
    while (TryRunOne()) {
    }
    std::unique_lock<std::mutex> lk(sleep_mu_);
    sleep_cv_.wait(lk, [this]() { return stop_ || pending_ > 0; });
    if (stop_) break;
  }
  // Drain whatever is still queued so submitted futures always resolve.
  while (TryRunOne()) {
  }
}

void ThreadPool::ParallelFor(
    size_t n, size_t grain, const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t num_morsels = (n + grain - 1) / grain;
  if (num_morsels <= 1 || workers_.empty()) {
    body(0, n);
    return;
  }

  struct LoopState {
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    size_t outstanding = 0;
    std::exception_ptr err;
  };
  auto state = std::make_shared<LoopState>();
  const std::function<void(size_t, size_t)>* body_ptr = &body;

  // Claim-and-run loop shared by the caller and the helper tasks: morsels
  // are handed out by an atomic cursor, so a fast thread simply claims
  // more of them (dynamic load balancing at morsel granularity).
  auto drain = [state, body_ptr, n, grain, num_morsels]() {
    size_t m;
    while ((m = state->next.fetch_add(1, std::memory_order_relaxed)) <
           num_morsels) {
      const size_t begin = m * grain;
      const size_t end = std::min(n, begin + grain);
      try {
        (*body_ptr)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lk(state->mu);
        if (!state->err) state->err = std::current_exception();
        state->next.store(num_morsels, std::memory_order_relaxed);
      }
    }
  };

  const size_t num_helpers = std::min(workers_.size(), num_morsels - 1);
  state->outstanding = num_helpers;
  for (size_t h = 0; h < num_helpers; ++h) {
    Enqueue([state, drain]() {
      drain();
      std::lock_guard<std::mutex> lk(state->mu);
      if (--state->outstanding == 0) state->done_cv.notify_all();
    });
  }
  drain();

  // Wait for the helpers. They may be queued behind unrelated tasks (or
  // behind tasks blocked in a nested ParallelFor), so cooperatively run
  // queued work instead of sleeping — this is what makes nested parallel
  // loops deadlock-free.
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(state->mu);
      if (state->outstanding == 0) break;
    }
    if (!TryRunOne()) {
      std::unique_lock<std::mutex> lk(state->mu);
      if (state->outstanding == 0) break;
      state->done_cv.wait_for(lk, std::chrono::microseconds(200));
    }
  }
  if (state->err) std::rethrow_exception(state->err);
}

}  // namespace fgq
