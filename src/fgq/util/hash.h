#ifndef FGQ_UTIL_HASH_H_
#define FGQ_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file hash.h
/// Hashing helpers shared by indexes, tries and deduplication sets.

namespace fgq {

/// Mixes a 64-bit value (splittable-random finalizer). Good avalanche for
/// sequential keys, which dominate dictionary-encoded databases.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Combines a hash with the next value, order-sensitive.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return Mix64(seed ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// Hashes a span of 64-bit values (e.g. a tuple or key prefix).
inline uint64_t HashSpan(const int64_t* data, size_t n) {
  uint64_t h = 0x51ed270b0a4725a3ULL;
  for (size_t i = 0; i < n; ++i) {
    h = HashCombine(h, static_cast<uint64_t>(data[i]));
  }
  return h;
}

/// std::hash-compatible functor for vector<int64_t> keys.
struct VecHash {
  size_t operator()(const std::vector<int64_t>& v) const {
    return static_cast<size_t>(HashSpan(v.data(), v.size()));
  }
};

}  // namespace fgq

#endif  // FGQ_UTIL_HASH_H_
