#ifndef FGQ_UTIL_STATUS_H_
#define FGQ_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

/// \file status.h
/// Error model for the fgq library.
///
/// Library code does not throw exceptions. Fallible operations return
/// fgq::Status (for side-effecting calls) or fgq::Result<T> (for
/// value-producing calls), in the style of Apache Arrow / RocksDB.

namespace fgq {

/// Coarse error taxonomy. Kept deliberately small: callers almost always
/// either propagate or print.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsupported,
  kParseError,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// An (code, message) pair describing the outcome of an operation.
///
/// A default-constructed Status is OK. Statuses are cheap to copy in the
/// OK case and carry a message string otherwise.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status.
///
/// Accessors assert on misuse in debug builds; use ok() to branch.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status: `return Status::InvalidArgument(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define FGQ_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::fgq::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise binds the value to `lhs`.
#define FGQ_ASSIGN_OR_RETURN(lhs, expr)    \
  auto FGQ_CONCAT_(res_, __LINE__) = (expr);             \
  if (!FGQ_CONCAT_(res_, __LINE__).ok())                 \
    return FGQ_CONCAT_(res_, __LINE__).status();         \
  lhs = std::move(FGQ_CONCAT_(res_, __LINE__)).value()

#define FGQ_CONCAT_INNER_(a, b) a##b
#define FGQ_CONCAT_(a, b) FGQ_CONCAT_INNER_(a, b)

}  // namespace fgq

#endif  // FGQ_UTIL_STATUS_H_
