#include "fgq/util/bigint.h"

#include <cassert>
#include <cmath>

namespace fgq {

BigInt::BigInt(int64_t v) {
  if (v == 0) return;
  uint64_t u;
  if (v < 0) {
    negative_ = true;
    u = static_cast<uint64_t>(-(v + 1)) + 1;  // Avoids INT64_MIN overflow.
  } else {
    u = static_cast<uint64_t>(v);
  }
  mag_.push_back(static_cast<uint32_t>(u));
  if (u >> 32) mag_.push_back(static_cast<uint32_t>(u >> 32));
}

BigInt BigInt::FromUint64(uint64_t v) {
  BigInt r;
  if (v == 0) return r;
  r.mag_.push_back(static_cast<uint32_t>(v));
  if (v >> 32) r.mag_.push_back(static_cast<uint32_t>(v >> 32));
  return r;
}

BigInt BigInt::Pow2(uint64_t e) {
  BigInt r;
  r.mag_.assign(e / 32 + 1, 0);
  r.mag_.back() = 1u << (e % 32);
  return r;
}

BigInt BigInt::Pow(const BigInt& base, uint64_t e) {
  BigInt result(1);
  BigInt b = base;
  while (e > 0) {
    if (e & 1) result *= b;
    b *= b;
    e >>= 1;
  }
  return result;
}

BigInt BigInt::FromString(const std::string& s) {
  BigInt r;
  size_t i = 0;
  bool neg = false;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) {
    neg = s[i] == '-';
    ++i;
  }
  const BigInt ten(10);
  for (; i < s.size(); ++i) {
    assert(s[i] >= '0' && s[i] <= '9');
    r = r * ten + BigInt(s[i] - '0');
  }
  if (neg && !r.is_zero()) r.negative_ = true;
  return r;
}

int BigInt::CompareMag(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<uint32_t> BigInt::AddMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  const auto& big = a.size() >= b.size() ? a : b;
  const auto& small = a.size() >= b.size() ? b : a;
  std::vector<uint32_t> out(big.size(), 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < big.size(); ++i) {
    uint64_t sum = carry + big[i] + (i < small.size() ? small[i] : 0);
    out[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<uint32_t>(carry));
  return out;
}

std::vector<uint32_t> BigInt::SubMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  assert(CompareMag(a, b) >= 0);
  std::vector<uint32_t> out(a.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    borrow = diff < 0;
    if (diff < 0) diff += int64_t{1} << 32;
    out[i] = static_cast<uint32_t>(diff);
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

void BigInt::Trim() {
  while (!mag_.empty() && mag_.back() == 0) mag_.pop_back();
  if (mag_.empty()) negative_ = false;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt r;
  if (negative_ == o.negative_) {
    r.mag_ = AddMag(mag_, o.mag_);
    r.negative_ = negative_;
  } else {
    int cmp = CompareMag(mag_, o.mag_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      r.mag_ = SubMag(mag_, o.mag_);
      r.negative_ = negative_;
    } else {
      r.mag_ = SubMag(o.mag_, mag_);
      r.negative_ = o.negative_;
    }
  }
  r.Trim();
  return r;
}

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.is_zero()) r.negative_ = !r.negative_;
  return r;
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

BigInt BigInt::operator*(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return BigInt();
  BigInt r;
  r.mag_.assign(mag_.size() + o.mag_.size(), 0);
  for (size_t i = 0; i < mag_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < o.mag_.size(); ++j) {
      uint64_t cur = r.mag_[i + j] + carry +
                     static_cast<uint64_t>(mag_[i]) * o.mag_[j];
      r.mag_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + o.mag_.size();
    while (carry) {
      uint64_t cur = r.mag_[k] + carry;
      r.mag_[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  r.negative_ = negative_ != o.negative_;
  r.Trim();
  return r;
}

bool BigInt::operator<(const BigInt& o) const {
  if (negative_ != o.negative_) return negative_;
  int cmp = CompareMag(mag_, o.mag_);
  return negative_ ? cmp > 0 : cmp < 0;
}

BigInt BigInt::DivSmall(uint32_t divisor) const {
  assert(divisor != 0);
  BigInt out;
  out.negative_ = negative_;
  out.mag_.assign(mag_.size(), 0);
  uint64_t rem = 0;
  for (size_t i = mag_.size(); i-- > 0;) {
    uint64_t cur = (rem << 32) | mag_[i];
    out.mag_[i] = static_cast<uint32_t>(cur / divisor);
    rem = cur % divisor;
  }
  out.Trim();
  return out;
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  // Repeated division of the limb vector by 10^9.
  std::vector<uint32_t> limbs = mag_;
  std::string digits;
  while (!limbs.empty()) {
    uint64_t rem = 0;
    for (size_t i = limbs.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | limbs[i];
      limbs[i] = static_cast<uint32_t>(cur / 1000000000ULL);
      rem = cur % 1000000000ULL;
    }
    while (!limbs.empty() && limbs.back() == 0) limbs.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  return std::string(digits.rbegin(), digits.rend());
}

double BigInt::ToDouble() const {
  double v = 0;
  for (size_t i = mag_.size(); i-- > 0;) {
    v = v * 4294967296.0 + mag_[i];
  }
  return negative_ ? -v : v;
}

int64_t BigInt::ToInt64() const {
  assert(mag_.size() <= 2);
  uint64_t u = 0;
  if (!mag_.empty()) u = mag_[0];
  if (mag_.size() > 1) u |= static_cast<uint64_t>(mag_[1]) << 32;
  int64_t v = static_cast<int64_t>(u);
  return negative_ ? -v : v;
}

}  // namespace fgq
