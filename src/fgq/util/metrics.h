#ifndef FGQ_UTIL_METRICS_H_
#define FGQ_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// \file metrics.h
/// Counters and fixed-bucket histograms for the serving layer.
///
/// A production query service must be *observable*: how many requests per
/// class, how long they queued, how long they ran, how often the plan
/// cache hit. MetricsRegistry holds named Counter and Histogram
/// instruments; instrument handles are stable for the registry's lifetime,
/// and recording on them is lock-free (registration takes a mutex once
/// per name). TextDump renders everything for the `\stats` verb of the
/// line-protocol front end.

namespace fgq {

/// Monotonically increasing counter. Thread-safe, lock-free.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Fixed-bucket histogram. Buckets are defined by ascending upper bounds;
/// an implicit overflow bucket catches everything above the last bound.
/// Observation is lock-free; percentile estimates interpolate linearly
/// within the containing bucket.
class Histogram {
 public:
  /// `bounds` are the inclusive upper bounds, strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t TotalCount() const;
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  /// Estimated q-quantile, q in [0, 1]. Returns 0 when empty; values in
  /// the overflow bucket report the last finite bound.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }

  /// One-line summary: count/mean/p50/p95/p99/max-bound.
  std::string Summary() const;

  /// `count` exponential bucket bounds starting at `start`, each `factor`
  /// times the previous (e.g. microsecond latency buckets).
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               size_t count);

  /// Log-spaced latency bounds in microseconds covering 1 ns .. ~8.6 s.
  /// Starting at 0.001 us matters: with bounds starting at 1 us, every
  /// sub-microsecond observation lands in the bottom bucket and the
  /// interpolated quantiles cannot resolve constant-delay enumeration
  /// steps (p50 around 38 ns on the bench databases).
  static std::vector<double> LatencyBounds() {
    return ExponentialBounds(0.001, 2.0, 34);
  }

 private:
  std::vector<double> bounds_;
  /// counts_[i] for bounds_[i]; counts_[bounds_.size()] is the overflow.
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<double> sum_{0.0};
};

/// Named instruments, created on first use and stable thereafter.
/// Thread-safe; Get* takes a mutex, the returned references are safe to
/// record on concurrently without it.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  /// Returns the histogram `name`, creating it with `bounds` on first
  /// use (later calls ignore `bounds`).
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// Renders every instrument, sorted by name:
  ///   counter <name> <value>
  ///   histogram <name> count=... mean=... p50=... p95=... p99=...
  std::string TextDump() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fgq

#endif  // FGQ_UTIL_METRICS_H_
