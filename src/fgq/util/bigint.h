#ifndef FGQ_UTIL_BIGINT_H_
#define FGQ_UTIL_BIGINT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

/// \file bigint.h
/// Arbitrary-precision signed integers.
///
/// Counting problems in Section 5 of the paper produce answer counts as
/// large as 2^(n^k) (the number of second-order assignments), which
/// overflows any machine word. BigInt supports exactly the operations the
/// counting engines need: add, subtract, multiply, compare, powers of two,
/// and decimal rendering. Schoolbook algorithms are sufficient: operand
/// sizes are tiny compared to the data sizes that dominate our benchmarks.

namespace fgq {

/// Signed arbitrary-precision integer with magnitude stored in base 2^32.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From a machine integer.
  BigInt(int64_t v);  // NOLINT(runtime/explicit): numeric literal ergonomics.

  /// From an unsigned machine integer. A plain uint64_t cannot go through
  /// the int64_t constructor: values above 2^63 - 1 would wrap negative
  /// (this is how answer counts used to truncate in the serving layer).
  static BigInt FromUint64(uint64_t v);

  /// 2^e.
  static BigInt Pow2(uint64_t e);
  /// base^e by square-and-multiply.
  static BigInt Pow(const BigInt& base, uint64_t e);
  /// Parses a decimal string with optional leading '-'.
  static BigInt FromString(const std::string& s);

  bool is_zero() const { return mag_.empty(); }
  bool is_negative() const { return negative_; }

  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator-() const;
  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }

  bool operator==(const BigInt& o) const {
    return negative_ == o.negative_ && mag_ == o.mag_;
  }
  bool operator!=(const BigInt& o) const { return !(*this == o); }
  bool operator<(const BigInt& o) const;
  bool operator<=(const BigInt& o) const { return *this < o || *this == o; }
  bool operator>(const BigInt& o) const { return o < *this; }
  bool operator>=(const BigInt& o) const { return o <= *this; }

  /// Quotient by a small positive divisor (remainder discarded); used by
  /// the FPRAS estimators to scale big weights by sample counts.
  BigInt DivSmall(uint32_t divisor) const;

  /// Decimal representation ("-123", "0", ...).
  std::string ToString() const;

  /// Lossy conversion to double, for accuracy reporting in the FPRAS
  /// benchmarks. Saturates to +/-inf far beyond double range.
  double ToDouble() const;

  /// Exact conversion to int64 when the value fits.
  /// Asserts (debug) / truncates (release) otherwise.
  int64_t ToInt64() const;

 private:
  static int CompareMag(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint32_t> SubMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  void Trim();

  bool negative_ = false;          // Never true when mag_ is empty (zero).
  std::vector<uint32_t> mag_;      // Little-endian limbs, base 2^32.
};

inline std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToString();
}

}  // namespace fgq

#endif  // FGQ_UTIL_BIGINT_H_
