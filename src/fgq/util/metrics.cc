#include "fgq/util/metrics.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace fgq {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(double value) {
  size_t b = std::upper_bound(bounds_.begin(), bounds_.end(), value) -
             bounds_.begin();
  // upper_bound treats bounds as exclusive; shift exact hits into their
  // bucket so bounds read as inclusive upper limits.
  if (b > 0 && bounds_[b - 1] == value) --b;
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double Histogram::Mean() const {
  uint64_t n = TotalCount();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  const uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  uint64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cum + c) >= rank) {
      if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      if (c == 0) return hi;
      const double frac = (rank - static_cast<double>(cum)) /
                          static_cast<double>(c);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum += c;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << TotalCount() << " mean=" << Mean()
     << " p50=" << Quantile(0.50) << " p95=" << Quantile(0.95)
     << " p99=" << Quantile(0.99);
  return os.str();
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::string MetricsRegistry::TextDump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << "counter " << name << " " << c->Value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "histogram " << name << " " << h->Summary() << "\n";
  }
  return os.str();
}

}  // namespace fgq
