#include "fgq/query/cq.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace fgq {

std::vector<std::string> Atom::Variables() const {
  std::vector<std::string> out;
  for (const Term& t : args) {
    if (t.is_var() && std::find(out.begin(), out.end(), t.var) == out.end()) {
      out.push_back(t.var);
    }
  }
  return out;
}

std::string Atom::ToString() const {
  std::string s;
  if (negated) s += "not ";
  s += relation + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) s += ", ";
    s += args[i].ToString();
  }
  s += ")";
  return s;
}

std::string Comparison::ToString() const {
  const char* ops = op == Op::kLess ? " < " : op == Op::kLessEq ? " <= " : " != ";
  return lhs + ops + rhs;
}

std::vector<std::string> ConjunctiveQuery::Variables() const {
  std::vector<std::string> out;
  auto add = [&out](const std::string& v) {
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  };
  for (const std::string& v : head_) add(v);
  for (const Atom& a : atoms_) {
    for (const Term& t : a.args) {
      if (t.is_var()) add(t.var);
    }
  }
  for (const Comparison& c : comparisons_) {
    add(c.lhs);
    add(c.rhs);
  }
  return out;
}

std::vector<std::string> ConjunctiveQuery::ExistentialVariables() const {
  std::vector<std::string> out;
  for (const std::string& v : Variables()) {
    if (std::find(head_.begin(), head_.end(), v) == head_.end()) {
      out.push_back(v);
    }
  }
  return out;
}

Status ConjunctiveQuery::Validate() const {
  std::set<std::string> atom_vars;
  for (const Atom& a : atoms_) {
    for (const Term& t : a.args) {
      if (t.is_var()) atom_vars.insert(t.var);
    }
  }
  std::set<std::string> head_seen;
  for (const std::string& v : head_) {
    if (!head_seen.insert(v).second) {
      return Status::InvalidArgument("duplicate head variable '" + v + "'");
    }
    if (atom_vars.count(v) == 0) {
      return Status::InvalidArgument("head variable '" + v +
                                     "' does not occur in any atom");
    }
  }
  for (const Comparison& c : comparisons_) {
    for (const std::string& v : {c.lhs, c.rhs}) {
      if (atom_vars.count(v) == 0) {
        return Status::InvalidArgument("comparison variable '" + v +
                                       "' does not occur in any atom");
      }
    }
  }
  if (atoms_.empty()) {
    return Status::InvalidArgument("query has no atoms");
  }
  return Status::OK();
}

bool ConjunctiveQuery::IsSelfJoinFree() const {
  std::set<std::string> seen;
  for (const Atom& a : atoms_) {
    if (a.negated) continue;
    if (!seen.insert(a.relation).second) return false;
  }
  return true;
}

bool ConjunctiveQuery::HasNegation() const {
  return std::any_of(atoms_.begin(), atoms_.end(),
                     [](const Atom& a) { return a.negated; });
}

bool ConjunctiveQuery::IsNegative() const {
  return !atoms_.empty() &&
         std::all_of(atoms_.begin(), atoms_.end(),
                     [](const Atom& a) { return a.negated; });
}

size_t ConjunctiveQuery::SizeWeight() const {
  size_t s = head_.size();
  for (const Atom& a : atoms_) s += 1 + a.args.size();
  s += 3 * comparisons_.size();
  return s;
}

std::string ConjunctiveQuery::ToString() const {
  std::ostringstream os;
  os << name_ << "(";
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i) os << ", ";
    os << head_[i];
  }
  os << ") :- ";
  bool first = true;
  for (const Atom& a : atoms_) {
    if (!first) os << ", ";
    first = false;
    os << a.ToString();
  }
  for (const Comparison& c : comparisons_) {
    if (!first) os << ", ";
    first = false;
    os << c.ToString();
  }
  os << ".";
  return os.str();
}

Status UnionQuery::Validate() const {
  if (disjuncts.empty()) {
    return Status::InvalidArgument("union query has no disjuncts");
  }
  for (const ConjunctiveQuery& q : disjuncts) {
    FGQ_RETURN_NOT_OK(q.Validate());
    if (q.arity() != arity()) {
      return Status::InvalidArgument(
          "union disjuncts disagree on arity: " + q.ToString());
    }
  }
  return Status::OK();
}

std::string UnionQuery::ToString() const {
  std::string s;
  for (const ConjunctiveQuery& q : disjuncts) {
    if (!s.empty()) s += "\n";
    s += q.ToString();
  }
  return s;
}

}  // namespace fgq
