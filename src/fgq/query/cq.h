#ifndef FGQ_QUERY_CQ_H_
#define FGQ_QUERY_CQ_H_

#include <string>
#include <vector>

#include "fgq/query/term.h"
#include "fgq/util/status.h"

/// \file cq.h
/// Conjunctive queries (Section 4):
///
///   phi(x) := exists y  /\_i  [not] R_i(z_i)  /\_j  u_j <op> v_j
///
/// The free variables x are the head, in output order; all other variables
/// are existentially quantified. Plain CQs have no negated atoms and no
/// comparisons; the NCQ fragment (Section 4.5) has only negated atoms; the
/// ACQ_< / ACQ_!= fragments (Section 4.3) add comparison atoms.

namespace fgq {

/// A conjunctive query with optional negated atoms and comparisons.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  ConjunctiveQuery(std::string name, std::vector<std::string> head,
                   std::vector<Atom> atoms,
                   std::vector<Comparison> comparisons = {})
      : name_(std::move(name)),
        head_(std::move(head)),
        atoms_(std::move(atoms)),
        comparisons_(std::move(comparisons)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& head() const { return head_; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<Comparison>& comparisons() const { return comparisons_; }

  std::vector<Atom>* mutable_atoms() { return &atoms_; }
  std::vector<Comparison>* mutable_comparisons() { return &comparisons_; }
  void set_head(std::vector<std::string> head) { head_ = std::move(head); }
  void set_name(std::string name) { name_ = std::move(name); }
  void AddAtom(Atom a) { atoms_.push_back(std::move(a)); }
  void AddComparison(Comparison c) { comparisons_.push_back(std::move(c)); }

  /// Arity of the query = number of free variables.
  size_t arity() const { return head_.size(); }
  bool IsBoolean() const { return head_.empty(); }

  /// All distinct variables, in first-occurrence order (head first).
  std::vector<std::string> Variables() const;

  /// Variables that are existentially quantified (not in the head).
  std::vector<std::string> ExistentialVariables() const;

  /// True if every variable in the head and in comparisons occurs in some
  /// atom, and every head entry is distinct (a well-formed range-restricted
  /// query).
  Status Validate() const;

  /// True if no relation symbol occurs twice among positive atoms
  /// (the self-join-freeness hypothesis of Theorems 4.8/4.9).
  bool IsSelfJoinFree() const;

  /// True if some atom is negated.
  bool HasNegation() const;

  /// True if all atoms are negated (the NCQ fragment).
  bool IsNegative() const;

  /// ||phi|| in the paper's size measure: total number of symbols.
  size_t SizeWeight() const;

  /// Renders `Q(x, y) :- R(x, z), S(z, y), x != y.`
  std::string ToString() const;

 private:
  std::string name_ = "Q";
  std::vector<std::string> head_;
  std::vector<Atom> atoms_;
  std::vector<Comparison> comparisons_;
};

/// A union of conjunctive queries (Section 4.2). All disjuncts must share
/// the same head arity; head variable *names* may differ per disjunct
/// (answers are positional).
struct UnionQuery {
  std::string name = "Q";
  std::vector<ConjunctiveQuery> disjuncts;

  size_t arity() const {
    return disjuncts.empty() ? 0 : disjuncts[0].arity();
  }
  Status Validate() const;
  std::string ToString() const;
};

}  // namespace fgq

#endif  // FGQ_QUERY_CQ_H_
