#include "fgq/query/parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <utility>
#include <vector>

namespace fgq {

namespace {

/// Token kinds produced by the shared lexer.
enum class Tok {
  kIdent,
  kNumber,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kTurnstile,  // :-
  kNeq,        // !=
  kLessEq,     // <=
  kLess,       // <
  kEquals,     // =
  kAnd,        // &
  kOr,         // |
  kNot,        // ~
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  size_t pos;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '#') {  // Comment to end of line.
        while (i < text_.size() && text_[i] != '\n') ++i;
        continue;
      }
      size_t start = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_' || text_[i] == '\'')) {
          ++i;
        }
        out.push_back({Tok::kIdent, text_.substr(start, i - start), start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        ++i;
        while (i < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[i]))) {
          ++i;
        }
        out.push_back({Tok::kNumber, text_.substr(start, i - start), start});
        continue;
      }
      auto two = [&](char a, char b) {
        return c == a && i + 1 < text_.size() && text_[i + 1] == b;
      };
      if (two(':', '-')) {
        out.push_back({Tok::kTurnstile, ":-", start});
        i += 2;
        continue;
      }
      if (two('!', '=')) {
        out.push_back({Tok::kNeq, "!=", start});
        i += 2;
        continue;
      }
      if (two('<', '=')) {
        out.push_back({Tok::kLessEq, "<=", start});
        i += 2;
        continue;
      }
      switch (c) {
        case '(':
          out.push_back({Tok::kLParen, "(", start});
          break;
        case ')':
          out.push_back({Tok::kRParen, ")", start});
          break;
        case ',':
          out.push_back({Tok::kComma, ",", start});
          break;
        case '.':
          out.push_back({Tok::kDot, ".", start});
          break;
        case '<':
          out.push_back({Tok::kLess, "<", start});
          break;
        case '=':
          out.push_back({Tok::kEquals, "=", start});
          break;
        case '&':
          out.push_back({Tok::kAnd, "&", start});
          break;
        case '|':
          out.push_back({Tok::kOr, "|", start});
          break;
        case '~':
          out.push_back({Tok::kNot, "~", start});
          break;
        default:
          return Status::ParseError("unexpected character '" +
                                    std::string(1, c) + "' at offset " +
                                    std::to_string(start));
      }
      ++i;
    }
    out.push_back({Tok::kEnd, "", text_.size()});
    return out;
  }

 private:
  const std::string& text_;
};

/// Shared cursor over a token stream.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_ == tokens_.size() - 1 ? pos_ : pos_++]; }
  bool AtEnd() const { return Peek().kind == Tok::kEnd; }

  bool Accept(Tok k) {
    if (Peek().kind == k) {
      Next();
      return true;
    }
    return false;
  }

  Status Expect(Tok k, const char* what) {
    if (Accept(k)) return Status::OK();
    return Status::ParseError(std::string("expected ") + what + " at offset " +
                              std::to_string(Peek().pos) + ", found '" +
                              Peek().text + "'");
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<Term> MakeTerm(const Token& t) {
  if (t.kind == Tok::kNumber) {
    // strtoll clamps out-of-range literals to INT64_MIN/INT64_MAX and only
    // reports the overflow through errno; without the check, a constant
    // like 99999999999999999999 silently becomes INT64_MAX.
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(t.text.c_str(), &end, 10);
    if (errno == ERANGE || end != t.text.c_str() + t.text.size()) {
      return Status::ParseError("integer literal '" + t.text +
                                "' out of range at offset " +
                                std::to_string(t.pos));
    }
    return Term::Const(v);
  }
  return Term::Var(t.text);
}

Result<Atom> ParseAtomBody(Cursor* cur, const std::string& rel) {
  Atom a;
  a.relation = rel;
  FGQ_RETURN_NOT_OK(cur->Expect(Tok::kLParen, "'('"));
  if (!cur->Accept(Tok::kRParen)) {
    while (true) {
      const Token& t = cur->Peek();
      if (t.kind != Tok::kIdent && t.kind != Tok::kNumber) {
        return Status::ParseError("expected term at offset " +
                                  std::to_string(t.pos));
      }
      FGQ_ASSIGN_OR_RETURN(Term term, MakeTerm(cur->Next()));
      a.args.push_back(std::move(term));
      if (cur->Accept(Tok::kRParen)) break;
      FGQ_RETURN_NOT_OK(cur->Expect(Tok::kComma, "','"));
    }
  }
  return a;
}

Result<ConjunctiveQuery> ParseRule(Cursor* cur) {
  const Token& name_tok = cur->Peek();
  if (name_tok.kind != Tok::kIdent) {
    return Status::ParseError("expected rule head at offset " +
                              std::to_string(name_tok.pos));
  }
  std::string name = cur->Next().text;
  FGQ_RETURN_NOT_OK(cur->Expect(Tok::kLParen, "'('"));
  std::vector<std::string> head;
  if (!cur->Accept(Tok::kRParen)) {
    while (true) {
      const Token& t = cur->Peek();
      if (t.kind != Tok::kIdent) {
        return Status::ParseError("expected head variable at offset " +
                                  std::to_string(t.pos));
      }
      head.push_back(cur->Next().text);
      if (cur->Accept(Tok::kRParen)) break;
      FGQ_RETURN_NOT_OK(cur->Expect(Tok::kComma, "','"));
    }
  }
  FGQ_RETURN_NOT_OK(cur->Expect(Tok::kTurnstile, "':-'"));

  ConjunctiveQuery q(name, head, {});
  while (true) {
    const Token& t = cur->Peek();
    if (t.kind != Tok::kIdent) {
      return Status::ParseError("expected body literal at offset " +
                                std::to_string(t.pos));
    }
    std::string first = cur->Next().text;
    bool negated = false;
    if (first == "not") {
      negated = true;
      const Token& rt = cur->Peek();
      if (rt.kind != Tok::kIdent) {
        return Status::ParseError("expected relation after 'not' at offset " +
                                  std::to_string(rt.pos));
      }
      first = cur->Next().text;
    }
    if (cur->Peek().kind == Tok::kLParen) {
      FGQ_ASSIGN_OR_RETURN(Atom a, ParseAtomBody(cur, first));
      a.negated = negated;
      q.AddAtom(std::move(a));
    } else {
      if (negated) {
        return Status::ParseError("'not' must precede an atom");
      }
      Comparison c;
      c.lhs = first;
      const Token& op = cur->Next();
      switch (op.kind) {
        case Tok::kNeq:
          c.op = Comparison::Op::kNotEqual;
          break;
        case Tok::kLess:
          c.op = Comparison::Op::kLess;
          break;
        case Tok::kLessEq:
          c.op = Comparison::Op::kLessEq;
          break;
        default:
          return Status::ParseError("expected comparison operator at offset " +
                                    std::to_string(op.pos));
      }
      const Token& rhs = cur->Peek();
      if (rhs.kind != Tok::kIdent) {
        return Status::ParseError("expected variable after comparison at offset " +
                                  std::to_string(rhs.pos));
      }
      c.rhs = cur->Next().text;
      q.AddComparison(std::move(c));
    }
    if (cur->Accept(Tok::kDot)) break;
    FGQ_RETURN_NOT_OK(cur->Expect(Tok::kComma, "',' or '.'"));
  }
  return q;
}

// ---- FO formula parsing -----------------------------------------------------

class FoParser {
 public:
  FoParser(Cursor* cur, const std::set<std::string>& so_vars)
      : cur_(cur), so_vars_(so_vars) {}

  Result<FoPtr> ParseFormula() { return ParseOr(); }

 private:
  Result<FoPtr> ParseOr() {
    FGQ_ASSIGN_OR_RETURN(FoPtr lhs, ParseAnd());
    std::vector<FoPtr> parts;
    parts.push_back(std::move(lhs));
    while (cur_->Accept(Tok::kOr)) {
      FGQ_ASSIGN_OR_RETURN(FoPtr rhs, ParseAnd());
      parts.push_back(std::move(rhs));
    }
    if (parts.size() == 1) return std::move(parts[0]);
    return FoFormula::MakeOr(std::move(parts));
  }

  Result<FoPtr> ParseAnd() {
    FGQ_ASSIGN_OR_RETURN(FoPtr lhs, ParseUnary());
    std::vector<FoPtr> parts;
    parts.push_back(std::move(lhs));
    while (cur_->Accept(Tok::kAnd)) {
      FGQ_ASSIGN_OR_RETURN(FoPtr rhs, ParseUnary());
      parts.push_back(std::move(rhs));
    }
    if (parts.size() == 1) return std::move(parts[0]);
    return FoFormula::MakeAnd(std::move(parts));
  }

  Result<FoPtr> ParseUnary() {
    if (cur_->Accept(Tok::kNot)) {
      FGQ_ASSIGN_OR_RETURN(FoPtr c, ParseUnary());
      return FoFormula::MakeNot(std::move(c));
    }
    const Token& t = cur_->Peek();
    if (t.kind == Tok::kIdent && (t.text == "exists" || t.text == "forall")) {
      bool is_exists = t.text == "exists";
      cur_->Next();
      const Token& v = cur_->Peek();
      if (v.kind != Tok::kIdent) {
        return Status::ParseError("expected quantified variable at offset " +
                                  std::to_string(v.pos));
      }
      std::string var = cur_->Next().text;
      FGQ_RETURN_NOT_OK(cur_->Expect(Tok::kDot, "'.'"));
      FGQ_ASSIGN_OR_RETURN(FoPtr body, ParseUnary());
      return is_exists ? FoFormula::MakeExists(var, std::move(body))
                       : FoFormula::MakeForall(var, std::move(body));
    }
    return ParsePrimary();
  }

  Result<FoPtr> ParsePrimary() {
    if (cur_->Accept(Tok::kLParen)) {
      FGQ_ASSIGN_OR_RETURN(FoPtr f, ParseFormula());
      FGQ_RETURN_NOT_OK(cur_->Expect(Tok::kRParen, "')'"));
      return f;
    }
    const Token& t = cur_->Peek();
    if (t.kind == Tok::kIdent && t.text == "true") {
      cur_->Next();
      return FoFormula::MakeTrue();
    }
    if (t.kind != Tok::kIdent && t.kind != Tok::kNumber) {
      return Status::ParseError("expected atom or term at offset " +
                                std::to_string(t.pos));
    }
    // Either R(...) or a comparison between terms.
    Token first = cur_->Next();
    if (first.kind == Tok::kIdent && cur_->Peek().kind == Tok::kLParen) {
      FGQ_ASSIGN_OR_RETURN(Atom a, ParseAtomBody(cur_, first.text));
      return FoFormula::MakeAtom(a.relation, a.args,
                                 so_vars_.count(a.relation) > 0);
    }
    FGQ_ASSIGN_OR_RETURN(Term lhs, MakeTerm(first));
    const Token& op = cur_->Next();
    const Token& rhs_tok = cur_->Peek();
    if (rhs_tok.kind != Tok::kIdent && rhs_tok.kind != Tok::kNumber) {
      return Status::ParseError("expected term at offset " +
                                std::to_string(rhs_tok.pos));
    }
    FGQ_ASSIGN_OR_RETURN(Term rhs, MakeTerm(cur_->Next()));
    switch (op.kind) {
      case Tok::kEquals:
        return FoFormula::MakeEquals(lhs, rhs);
      case Tok::kLess:
        return FoFormula::MakeLess(lhs, rhs);
      case Tok::kLessEq:
        return FoFormula::MakeOr(FoFormula::MakeLess(lhs, rhs),
                                 FoFormula::MakeEquals(lhs, rhs));
      case Tok::kNeq:
        return FoFormula::MakeNot(FoFormula::MakeEquals(lhs, rhs));
      default:
        return Status::ParseError("expected comparison operator at offset " +
                                  std::to_string(op.pos));
    }
  }

  Cursor* cur_;
  const std::set<std::string>& so_vars_;
};

}  // namespace

Result<ConjunctiveQuery> ParseConjunctiveQuery(const std::string& text) {
  FGQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(text).Tokenize());
  Cursor cur(std::move(tokens));
  FGQ_ASSIGN_OR_RETURN(ConjunctiveQuery q, ParseRule(&cur));
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing input after rule (use ParseUnionQuery "
                              "for multiple rules)");
  }
  FGQ_RETURN_NOT_OK(q.Validate());
  return q;
}

Result<UnionQuery> ParseUnionQuery(const std::string& text) {
  FGQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(text).Tokenize());
  Cursor cur(std::move(tokens));
  UnionQuery u;
  while (!cur.AtEnd()) {
    FGQ_ASSIGN_OR_RETURN(ConjunctiveQuery q, ParseRule(&cur));
    if (u.disjuncts.empty()) u.name = q.name();
    u.disjuncts.push_back(std::move(q));
  }
  FGQ_RETURN_NOT_OK(u.Validate());
  return u;
}

Result<FoPtr> ParseFoFormula(const std::string& text,
                             const std::set<std::string>& so_vars) {
  FGQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(text).Tokenize());
  Cursor cur(std::move(tokens));
  FoParser parser(&cur, so_vars);
  FGQ_ASSIGN_OR_RETURN(FoPtr f, parser.ParseFormula());
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing input after formula at offset " +
                              std::to_string(cur.Peek().pos));
  }
  return f;
}

}  // namespace fgq
