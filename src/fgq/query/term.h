#ifndef FGQ_QUERY_TERM_H_
#define FGQ_QUERY_TERM_H_

#include <string>
#include <vector>

#include "fgq/db/value.h"

/// \file term.h
/// Syntactic building blocks shared by all query dialects: terms (variables
/// or constants), relational atoms (possibly negated, for the NCQ fragment
/// of Section 4.5), and comparison atoms (<, <=, != — Section 4.3).

namespace fgq {

/// A variable or a constant argument of an atom.
struct Term {
  enum class Kind { kVariable, kConstant };

  Kind kind = Kind::kVariable;
  std::string var;     // Valid when kind == kVariable.
  Value constant = 0;  // Valid when kind == kConstant.

  static Term Var(std::string name) {
    Term t;
    t.kind = Kind::kVariable;
    t.var = std::move(name);
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.kind = Kind::kConstant;
    t.constant = v;
    return t;
  }

  bool is_var() const { return kind == Kind::kVariable; }

  bool operator==(const Term& o) const {
    return kind == o.kind &&
           (is_var() ? var == o.var : constant == o.constant);
  }

  std::string ToString() const {
    return is_var() ? var : std::to_string(constant);
  }
};

/// A relational atom R(t1, ..., tk), possibly negated (NCQ, Section 4.5).
struct Atom {
  std::string relation;
  std::vector<Term> args;
  bool negated = false;

  size_t arity() const { return args.size(); }

  /// The distinct variable names occurring in the atom, in first-occurrence
  /// order.
  std::vector<std::string> Variables() const;

  std::string ToString() const;
};

/// A comparison atom between two variables (Section 4.3). Comparisons do
/// not participate in the acyclicity measure.
struct Comparison {
  enum class Op { kLess, kLessEq, kNotEqual };

  std::string lhs;
  std::string rhs;
  Op op = Op::kNotEqual;

  /// Evaluates the comparison on concrete values.
  bool Holds(Value a, Value b) const {
    switch (op) {
      case Op::kLess:
        return a < b;
      case Op::kLessEq:
        return a <= b;
      case Op::kNotEqual:
        return a != b;
    }
    return false;
  }

  std::string ToString() const;
};

}  // namespace fgq

#endif  // FGQ_QUERY_TERM_H_
