#ifndef FGQ_QUERY_PARSER_H_
#define FGQ_QUERY_PARSER_H_

#include <set>
#include <string>

#include "fgq/query/cq.h"
#include "fgq/query/fo.h"
#include "fgq/util/status.h"

/// \file parser.h
/// Text syntax for queries.
///
/// Conjunctive queries use Datalog-style rules:
///
///   Q(x, y) :- R(x, z), S(z, y), not T(x), x != y, z < y.
///
/// Identifiers in atom argument positions are variables; integer literals
/// are constants. A UnionQuery is a sequence of rules with the same head
/// arity.
///
/// First-order formulas use a conventional syntax:
///
///   exists z. (A(x, z) & B(z, y) & ~(x = y)) | x < y
///
/// with `~` binding tightest, then `&`, then `|`; quantifier bodies extend
/// as far to the right as possible. `t1 != t2` and `t1 <= t2` are sugar.
/// Atom symbols listed in `so_vars` are parsed as free second-order
/// variables (Section 5).

namespace fgq {

/// Parses a single rule.
Result<ConjunctiveQuery> ParseConjunctiveQuery(const std::string& text);

/// Parses one or more rules into a union query.
Result<UnionQuery> ParseUnionQuery(const std::string& text);

/// Parses a first-order formula; atoms whose symbol is in `so_vars` become
/// second-order-variable atoms.
Result<FoPtr> ParseFoFormula(const std::string& text,
                             const std::set<std::string>& so_vars = {});

}  // namespace fgq

#endif  // FGQ_QUERY_PARSER_H_
