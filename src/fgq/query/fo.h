#ifndef FGQ_QUERY_FO_H_
#define FGQ_QUERY_FO_H_

#include <memory>
#include <string>
#include <vector>

#include "fgq/query/term.h"

/// \file fo.h
/// First-order formulas (Section 3), optionally with free second-order
/// variables (Section 5).
///
/// The AST covers: relational atoms (over database relations or free
/// second-order variables), equality and order atoms between terms,
/// negation, conjunction, disjunction, and first-order quantifiers.
/// Formulas are immutable trees owned through unique_ptr.

namespace fgq {

class FoFormula;
using FoPtr = std::unique_ptr<FoFormula>;

/// A node of a first-order formula.
class FoFormula {
 public:
  enum class Kind {
    kAtom,     // R(t1..tk); `so_var` distinguishes second-order variables.
    kEquals,   // t1 = t2
    kLess,     // t1 < t2 (the domain's linear order, Section 2.3.1)
    kTrue,     // verum
    kNot,
    kAnd,
    kOr,
    kExists,   // exists v. child
    kForall,   // forall v. child
  };

  // -- Factories ------------------------------------------------------------

  static FoPtr MakeAtom(std::string relation, std::vector<Term> args,
                        bool so_var = false);
  static FoPtr MakeEquals(Term a, Term b);
  static FoPtr MakeLess(Term a, Term b);
  static FoPtr MakeTrue();
  static FoPtr MakeNot(FoPtr child);
  static FoPtr MakeAnd(std::vector<FoPtr> children);
  static FoPtr MakeOr(std::vector<FoPtr> children);
  static FoPtr MakeAnd(FoPtr a, FoPtr b);
  static FoPtr MakeOr(FoPtr a, FoPtr b);
  static FoPtr MakeExists(std::string var, FoPtr child);
  static FoPtr MakeForall(std::string var, FoPtr child);
  /// exists v1. exists v2. ... child
  static FoPtr MakeExistsBlock(const std::vector<std::string>& vars,
                               FoPtr child);

  // -- Accessors ------------------------------------------------------------

  Kind kind() const { return kind_; }
  const std::string& relation() const { return relation_; }
  const std::vector<Term>& args() const { return args_; }
  bool is_so_atom() const { return so_var_; }
  const std::string& quantified_var() const { return relation_; }
  const std::vector<FoPtr>& children() const { return children_; }
  const FoFormula& child(size_t i = 0) const { return *children_[i]; }

  // -- Analysis -------------------------------------------------------------

  /// Free first-order variables, in first-occurrence order.
  std::vector<std::string> FreeVariables() const;

  /// Names of free second-order variables (SO atoms' relation symbols).
  std::vector<std::string> SecondOrderVariables() const;

  /// The maximum number of free variables over all subformulas — the
  /// exponent h in the generic ||phi|| * ||D||^h evaluation bound
  /// (Section 3).
  size_t MaxSubformulaFreeVars() const;

  /// Quantifier depth.
  size_t QuantifierDepth() const;

  /// True if no quantifier occurs.
  bool IsQuantifierFree() const;

  /// Deep copy.
  FoPtr Clone() const;

  std::string ToString() const;

 private:
  FoFormula() = default;

  void CollectFreeVars(std::vector<std::string>* bound,
                       std::vector<std::string>* out) const;
  void CollectSoVars(std::vector<std::string>* out) const;

  Kind kind_ = Kind::kTrue;
  std::string relation_;        // Atom relation name, or quantified variable.
  std::vector<Term> args_;      // Atom/equality/order arguments.
  bool so_var_ = false;
  std::vector<FoPtr> children_;
};

}  // namespace fgq

#endif  // FGQ_QUERY_FO_H_
