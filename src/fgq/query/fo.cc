#include "fgq/query/fo.h"

#include <algorithm>
#include <sstream>

namespace fgq {

namespace {

void AddUnique(std::vector<std::string>* out, const std::string& v) {
  if (std::find(out->begin(), out->end(), v) == out->end()) out->push_back(v);
}

}  // namespace

FoPtr FoFormula::MakeAtom(std::string relation, std::vector<Term> args,
                          bool so_var) {
  FoPtr f(new FoFormula());
  f->kind_ = Kind::kAtom;
  f->relation_ = std::move(relation);
  f->args_ = std::move(args);
  f->so_var_ = so_var;
  return f;
}

FoPtr FoFormula::MakeEquals(Term a, Term b) {
  FoPtr f(new FoFormula());
  f->kind_ = Kind::kEquals;
  f->args_ = {std::move(a), std::move(b)};
  return f;
}

FoPtr FoFormula::MakeLess(Term a, Term b) {
  FoPtr f(new FoFormula());
  f->kind_ = Kind::kLess;
  f->args_ = {std::move(a), std::move(b)};
  return f;
}

FoPtr FoFormula::MakeTrue() {
  return FoPtr(new FoFormula());
}

FoPtr FoFormula::MakeNot(FoPtr child) {
  FoPtr f(new FoFormula());
  f->kind_ = Kind::kNot;
  f->children_.push_back(std::move(child));
  return f;
}

FoPtr FoFormula::MakeAnd(std::vector<FoPtr> children) {
  FoPtr f(new FoFormula());
  f->kind_ = Kind::kAnd;
  f->children_ = std::move(children);
  return f;
}

FoPtr FoFormula::MakeOr(std::vector<FoPtr> children) {
  FoPtr f(new FoFormula());
  f->kind_ = Kind::kOr;
  f->children_ = std::move(children);
  return f;
}

FoPtr FoFormula::MakeAnd(FoPtr a, FoPtr b) {
  std::vector<FoPtr> cs;
  cs.push_back(std::move(a));
  cs.push_back(std::move(b));
  return MakeAnd(std::move(cs));
}

FoPtr FoFormula::MakeOr(FoPtr a, FoPtr b) {
  std::vector<FoPtr> cs;
  cs.push_back(std::move(a));
  cs.push_back(std::move(b));
  return MakeOr(std::move(cs));
}

FoPtr FoFormula::MakeExists(std::string var, FoPtr child) {
  FoPtr f(new FoFormula());
  f->kind_ = Kind::kExists;
  f->relation_ = std::move(var);
  f->children_.push_back(std::move(child));
  return f;
}

FoPtr FoFormula::MakeForall(std::string var, FoPtr child) {
  FoPtr f(new FoFormula());
  f->kind_ = Kind::kForall;
  f->relation_ = std::move(var);
  f->children_.push_back(std::move(child));
  return f;
}

FoPtr FoFormula::MakeExistsBlock(const std::vector<std::string>& vars,
                                 FoPtr child) {
  FoPtr f = std::move(child);
  for (size_t i = vars.size(); i-- > 0;) {
    f = MakeExists(vars[i], std::move(f));
  }
  return f;
}

void FoFormula::CollectFreeVars(std::vector<std::string>* bound,
                                std::vector<std::string>* out) const {
  switch (kind_) {
    case Kind::kAtom:
    case Kind::kEquals:
    case Kind::kLess:
      for (const Term& t : args_) {
        if (t.is_var() &&
            std::find(bound->begin(), bound->end(), t.var) == bound->end()) {
          AddUnique(out, t.var);
        }
      }
      break;
    case Kind::kTrue:
      break;
    case Kind::kNot:
    case Kind::kAnd:
    case Kind::kOr:
      for (const FoPtr& c : children_) c->CollectFreeVars(bound, out);
      break;
    case Kind::kExists:
    case Kind::kForall: {
      bound->push_back(relation_);
      children_[0]->CollectFreeVars(bound, out);
      bound->pop_back();
      break;
    }
  }
}

std::vector<std::string> FoFormula::FreeVariables() const {
  std::vector<std::string> bound, out;
  CollectFreeVars(&bound, &out);
  return out;
}

void FoFormula::CollectSoVars(std::vector<std::string>* out) const {
  if (kind_ == Kind::kAtom && so_var_) AddUnique(out, relation_);
  for (const FoPtr& c : children_) c->CollectSoVars(out);
}

std::vector<std::string> FoFormula::SecondOrderVariables() const {
  std::vector<std::string> out;
  CollectSoVars(&out);
  return out;
}

size_t FoFormula::MaxSubformulaFreeVars() const {
  size_t m = FreeVariables().size();
  for (const FoPtr& c : children_) {
    m = std::max(m, c->MaxSubformulaFreeVars());
  }
  return m;
}

size_t FoFormula::QuantifierDepth() const {
  size_t m = 0;
  for (const FoPtr& c : children_) m = std::max(m, c->QuantifierDepth());
  if (kind_ == Kind::kExists || kind_ == Kind::kForall) ++m;
  return m;
}

bool FoFormula::IsQuantifierFree() const {
  if (kind_ == Kind::kExists || kind_ == Kind::kForall) return false;
  return std::all_of(children_.begin(), children_.end(),
                     [](const FoPtr& c) { return c->IsQuantifierFree(); });
}

FoPtr FoFormula::Clone() const {
  FoPtr f(new FoFormula());
  f->kind_ = kind_;
  f->relation_ = relation_;
  f->args_ = args_;
  f->so_var_ = so_var_;
  for (const FoPtr& c : children_) f->children_.push_back(c->Clone());
  return f;
}

std::string FoFormula::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kAtom: {
      os << relation_ << "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i) os << ", ";
        os << args_[i].ToString();
      }
      os << ")";
      break;
    }
    case Kind::kEquals:
      os << args_[0].ToString() << " = " << args_[1].ToString();
      break;
    case Kind::kLess:
      os << args_[0].ToString() << " < " << args_[1].ToString();
      break;
    case Kind::kTrue:
      os << "true";
      break;
    case Kind::kNot:
      os << "~(" << children_[0]->ToString() << ")";
      break;
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = kind_ == Kind::kAnd ? " & " : " | ";
      os << "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) os << sep;
        os << children_[i]->ToString();
      }
      os << ")";
      break;
    }
    case Kind::kExists:
      os << "exists " << relation_ << ". (" << children_[0]->ToString() << ")";
      break;
    case Kind::kForall:
      os << "forall " << relation_ << ". (" << children_[0]->ToString() << ")";
      break;
  }
  return os.str();
}

}  // namespace fgq
