#ifndef FGQ_FGQ_H_
#define FGQ_FGQ_H_

/// \file fgq.h
/// The fgq umbrella header: the stable public surface in one include.
///
/// Pulls in the layers an application normally touches, bottom-up:
///
///   data      Relation / Database / fact loading      (fgq/db/)
///   queries   ConjunctiveQuery / UnionQuery / parser  (fgq/query/)
///   engine    Engine::Run(ExecRequest) -> ExecResult, plus the
///             Count/Enumerate/Decide verb entry points (fgq/eval/)
///   serving   QueryService::Submit(ServiceRequest, SubmitPolicy)
///             with plan caching + admission control   (fgq/serve/)
///   network   NetServer / Client / wire protocol      (fgq/net/)
///   insight   Explain() and TraceContext              (fgq/trace/)
///   workload  synthetic generators for benchmarks     (fgq/workload/)
///
/// Specialist subsystems stay behind their own headers on purpose:
/// fgq/check/ (differential fuzzing), fgq/count/, fgq/fo/, fgq/mso/,
/// fgq/so/ (the paper's counting and logic fragments), and the
/// internal evaluators under fgq/eval/ other than engine.h — their
/// interfaces move with the research, not with the API deprecation
/// policy. See docs/API.md for the compatibility contract.

#include "fgq/db/database.h"
#include "fgq/db/loader.h"
#include "fgq/db/relation.h"
#include "fgq/db/value.h"
#include "fgq/eval/engine.h"
#include "fgq/net/client.h"
#include "fgq/net/protocol.h"
#include "fgq/net/server.h"
#include "fgq/query/cq.h"
#include "fgq/query/parser.h"
#include "fgq/serve/query_service.h"
#include "fgq/trace/explain.h"
#include "fgq/trace/trace.h"
#include "fgq/util/status.h"
#include "fgq/workload/generators.h"

#endif  // FGQ_FGQ_H_
