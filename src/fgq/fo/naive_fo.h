#ifndef FGQ_FO_NAIVE_FO_H_
#define FGQ_FO_NAIVE_FO_H_

#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "fgq/db/database.h"
#include "fgq/query/fo.h"
#include "fgq/util/hash.h"
#include "fgq/util/status.h"

/// \file naive_fo.h
/// Generic first-order evaluation — the ||phi|| * ||D||^h baseline of
/// Section 3. Quantifiers range over the whole domain, so a sentence of
/// quantifier depth d costs O(n^d) atom checks; this is the curve the
/// sparsity-based algorithms (bounded_degree.h) beat on sparse classes.

namespace fgq {

/// Hash-set view of a database's relations, so atom checks are O(1).
class FoEvalContext {
 public:
  explicit FoEvalContext(const Database& db);

  /// True if relation `name` contains `t`. Unknown relations are empty.
  bool Holds(const std::string& name, const Tuple& t) const;

  Value domain_size() const { return domain_size_; }

 private:
  std::map<std::string, std::unordered_set<Tuple, VecHash>> sets_;
  Value domain_size_;
};

/// Evaluates `f` under `assignment` (which must bind every free variable).
/// Quantifiers range over [0, domain). Second-order atoms are rejected.
Result<bool> EvalFo(const FoFormula& f, const FoEvalContext& ctx,
                    std::map<std::string, Value>* assignment);

/// Model checking for FO sentences: O(||phi|| * n^depth).
Result<bool> ModelCheckFoNaive(const FoFormula& sentence, const Database& db);

/// Computes the answer set of phi(head...) by looping over all
/// assignments of the free variables: O(n^(|head| + depth)).
Result<Relation> EvaluateFoNaive(const FoFormula& f, const Database& db,
                                 const std::vector<std::string>& head);

/// Counts answers without materializing them.
Result<int64_t> CountFoNaive(const FoFormula& f, const Database& db,
                             const std::vector<std::string>& head);

}  // namespace fgq

#endif  // FGQ_FO_NAIVE_FO_H_
