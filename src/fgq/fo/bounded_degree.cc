#include "fgq/fo/bounded_degree.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_set>

#include "fgq/fo/naive_fo.h"

namespace fgq {

AdjacencyIndex::AdjacencyIndex(const Database& db) {
  neighbors_.resize(static_cast<size_t>(db.DomainSize()));
  for (const auto& [name, rel] : db.relations()) {
    const size_t k = rel.arity();
    for (size_t r = 0; r < rel.NumTuples(); ++r) {
      const Value* row = rel.RowData(r);
      for (size_t i = 0; i < k; ++i) {
        for (size_t j = 0; j < k; ++j) {
          if (i != j && row[i] != row[j]) {
            neighbors_[static_cast<size_t>(row[i])].push_back(row[j]);
          }
        }
      }
    }
  }
  for (auto& list : neighbors_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
}

const std::vector<Value>& AdjacencyIndex::Neighbors(Value v) const {
  if (v < 0 || static_cast<size_t>(v) >= neighbors_.size()) return empty_;
  return neighbors_[static_cast<size_t>(v)];
}

std::vector<Value> AdjacencyIndex::Ball(Value center, int radius) const {
  std::vector<Value> frontier = {center};
  std::set<Value> seen = {center};
  for (int step = 0; step < radius; ++step) {
    std::vector<Value> next;
    for (Value v : frontier) {
      for (Value w : Neighbors(v)) {
        if (seen.insert(w).second) next.push_back(w);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return std::vector<Value>(seen.begin(), seen.end());
}

namespace {

/// FO evaluation with quantifiers restricted to an explicit element list
/// (the relativization to a Gaifman ball).
Result<bool> EvalRelativized(const FoFormula& f, const FoEvalContext& ctx,
                             const std::vector<Value>& universe,
                             std::map<std::string, Value>* assignment) {
  switch (f.kind()) {
    case FoFormula::Kind::kExists:
    case FoFormula::Kind::kForall: {
      const std::string& var = f.quantified_var();
      auto saved = assignment->find(var);
      bool had = saved != assignment->end();
      Value old = had ? saved->second : 0;
      bool result = f.kind() == FoFormula::Kind::kForall;
      for (Value d : universe) {
        (*assignment)[var] = d;
        FGQ_ASSIGN_OR_RETURN(
            bool v, EvalRelativized(f.child(), ctx, universe, assignment));
        if (f.kind() == FoFormula::Kind::kExists && v) {
          result = true;
          break;
        }
        if (f.kind() == FoFormula::Kind::kForall && !v) {
          result = false;
          break;
        }
      }
      if (had) {
        (*assignment)[var] = old;
      } else {
        assignment->erase(var);
      }
      return result;
    }
    case FoFormula::Kind::kNot: {
      FGQ_ASSIGN_OR_RETURN(
          bool v, EvalRelativized(f.child(), ctx, universe, assignment));
      return !v;
    }
    case FoFormula::Kind::kAnd: {
      for (const FoPtr& c : f.children()) {
        FGQ_ASSIGN_OR_RETURN(bool v,
                             EvalRelativized(*c, ctx, universe, assignment));
        if (!v) return false;
      }
      return true;
    }
    case FoFormula::Kind::kOr: {
      for (const FoPtr& c : f.children()) {
        FGQ_ASSIGN_OR_RETURN(bool v,
                             EvalRelativized(*c, ctx, universe, assignment));
        if (v) return true;
      }
      return false;
    }
    default:
      // Atoms / equalities / order / true: same as unrestricted evaluation.
      return EvalFo(f, ctx, assignment);
  }
}

}  // namespace

Result<bool> HoldsAt(const LocalQuery& q, const Database& db,
                     const AdjacencyIndex& adj, Value a) {
  FoEvalContext ctx(db);
  std::vector<Value> ball = adj.Ball(a, q.radius);
  std::map<std::string, Value> assignment;
  assignment[q.var] = a;
  return EvalRelativized(*q.theta, ctx, ball, &assignment);
}

namespace {

/// Shared scan: calls `visit(a)` for each satisfying element.
Status ScanLocal(const LocalQuery& q, const Database& db,
                 const std::function<void(Value)>& visit) {
  AdjacencyIndex adj(db);
  FoEvalContext ctx(db);
  std::map<std::string, Value> assignment;
  const Value n = db.DomainSize();
  for (Value a = 0; a < n; ++a) {
    std::vector<Value> ball = adj.Ball(a, q.radius);
    assignment.clear();
    assignment[q.var] = a;
    FGQ_ASSIGN_OR_RETURN(bool v,
                         EvalRelativized(*q.theta, ctx, ball, &assignment));
    if (v) visit(a);
  }
  return Status::OK();
}

}  // namespace

Result<bool> ModelCheckExistsLocal(const LocalQuery& q, const Database& db) {
  bool found = false;
  FGQ_RETURN_NOT_OK(ScanLocal(q, db, [&](Value) { found = true; }));
  return found;
}

Result<int64_t> CountLocal(const LocalQuery& q, const Database& db) {
  int64_t count = 0;
  FGQ_RETURN_NOT_OK(ScanLocal(q, db, [&](Value) { ++count; }));
  return count;
}

Result<std::unique_ptr<AnswerEnumerator>> MakeLocalEnumerator(
    const LocalQuery& q, const Database& db) {
  Relation sat("local", 1);
  FGQ_RETURN_NOT_OK(ScanLocal(q, db, [&](Value a) { sat.Add({a}); }));
  return MakeMaterializedEnumerator(std::move(sat));
}

bool IsLowDegree(const Database& db, double eps) {
  double n = static_cast<double>(db.DomainSize());
  if (n < 2) return true;
  return static_cast<double>(db.Degree()) <= std::pow(n, eps);
}

size_t FunctionalStructure::PsiCount() const {
  size_t c = 0;
  for (bool b : psi) c += b;
  return c;
}

bool ExistsPsiAvoiding(const FunctionalStructure& fs,
                       const std::vector<size_t>& func_ids,
                       const std::vector<Value>& args) {
  // Count distinct excluded values that lie in psi.
  std::set<Value> excluded;
  for (size_t i = 0; i < func_ids.size(); ++i) {
    Value y = fs.funcs[func_ids[i]][static_cast<size_t>(args[i])];
    if (y != FunctionalStructure::kNoValue &&
        fs.psi[static_cast<size_t>(y)]) {
      excluded.insert(y);
    }
  }
  return excluded.size() < fs.PsiCount();
}

int64_t EnumeratePairsWithExceptions(
    const std::vector<Value>& lhs, const std::vector<Value>& rhs,
    const std::function<std::vector<Value>(Value)>& exclusions,
    const std::function<void(Value, Value)>& emit) {
  int64_t emitted = 0;
  for (Value a : lhs) {
    std::vector<Value> excl = exclusions(a);
    std::unordered_set<Value> excl_set(excl.begin(), excl.end());
    // At most |excl| consecutive skips: the delay stays bounded by the
    // (query-sized) exception count, never by |rhs|.
    for (Value b : rhs) {
      if (excl_set.count(b)) continue;
      emit(a, b);
      ++emitted;
    }
  }
  return emitted;
}

}  // namespace fgq
