#include "fgq/fo/naive_fo.h"

namespace fgq {

FoEvalContext::FoEvalContext(const Database& db)
    : domain_size_(db.DomainSize()) {
  for (const auto& [name, rel] : db.relations()) {
    auto& set = sets_[name];
    set.reserve(rel.NumTuples());
    for (size_t i = 0; i < rel.NumTuples(); ++i) {
      set.insert(rel.Row(i).ToTuple());
    }
  }
}

bool FoEvalContext::Holds(const std::string& name, const Tuple& t) const {
  auto it = sets_.find(name);
  return it != sets_.end() && it->second.count(t) > 0;
}

namespace {

Result<Value> TermValue(const Term& t,
                        const std::map<std::string, Value>& assignment) {
  if (!t.is_var()) return t.constant;
  auto it = assignment.find(t.var);
  if (it == assignment.end()) {
    return Status::InvalidArgument("unbound variable '" + t.var + "'");
  }
  return it->second;
}

}  // namespace

Result<bool> EvalFo(const FoFormula& f, const FoEvalContext& ctx,
                    std::map<std::string, Value>* assignment) {
  switch (f.kind()) {
    case FoFormula::Kind::kAtom: {
      if (f.is_so_atom()) {
        return Status::Unsupported(
            "second-order atoms require the so/ evaluators");
      }
      Tuple t(f.args().size());
      for (size_t i = 0; i < f.args().size(); ++i) {
        FGQ_ASSIGN_OR_RETURN(t[i], TermValue(f.args()[i], *assignment));
      }
      return ctx.Holds(f.relation(), t);
    }
    case FoFormula::Kind::kEquals: {
      FGQ_ASSIGN_OR_RETURN(Value a, TermValue(f.args()[0], *assignment));
      FGQ_ASSIGN_OR_RETURN(Value b, TermValue(f.args()[1], *assignment));
      return a == b;
    }
    case FoFormula::Kind::kLess: {
      FGQ_ASSIGN_OR_RETURN(Value a, TermValue(f.args()[0], *assignment));
      FGQ_ASSIGN_OR_RETURN(Value b, TermValue(f.args()[1], *assignment));
      return a < b;
    }
    case FoFormula::Kind::kTrue:
      return true;
    case FoFormula::Kind::kNot: {
      FGQ_ASSIGN_OR_RETURN(bool v, EvalFo(f.child(), ctx, assignment));
      return !v;
    }
    case FoFormula::Kind::kAnd: {
      for (const FoPtr& c : f.children()) {
        FGQ_ASSIGN_OR_RETURN(bool v, EvalFo(*c, ctx, assignment));
        if (!v) return false;
      }
      return true;
    }
    case FoFormula::Kind::kOr: {
      for (const FoPtr& c : f.children()) {
        FGQ_ASSIGN_OR_RETURN(bool v, EvalFo(*c, ctx, assignment));
        if (v) return true;
      }
      return false;
    }
    case FoFormula::Kind::kExists:
    case FoFormula::Kind::kForall: {
      const std::string& var = f.quantified_var();
      auto saved = assignment->find(var);
      bool had = saved != assignment->end();
      Value old = had ? saved->second : 0;
      bool result = f.kind() == FoFormula::Kind::kForall;
      for (Value d = 0; d < ctx.domain_size(); ++d) {
        (*assignment)[var] = d;
        FGQ_ASSIGN_OR_RETURN(bool v, EvalFo(f.child(), ctx, assignment));
        if (f.kind() == FoFormula::Kind::kExists && v) {
          result = true;
          break;
        }
        if (f.kind() == FoFormula::Kind::kForall && !v) {
          result = false;
          break;
        }
      }
      if (had) {
        (*assignment)[var] = old;
      } else {
        assignment->erase(var);
      }
      return result;
    }
  }
  return Status::Internal("unhandled formula kind");
}

Result<bool> ModelCheckFoNaive(const FoFormula& sentence, const Database& db) {
  if (!sentence.FreeVariables().empty()) {
    return Status::InvalidArgument("not a sentence: " + sentence.ToString());
  }
  FoEvalContext ctx(db);
  std::map<std::string, Value> assignment;
  return EvalFo(sentence, ctx, &assignment);
}

namespace {

template <typename OnAnswer>
Status ForEachAnswer(const FoFormula& f, const Database& db,
                     const std::vector<std::string>& head,
                     const OnAnswer& on_answer) {
  std::vector<std::string> free = f.FreeVariables();
  for (const std::string& v : free) {
    if (std::find(head.begin(), head.end(), v) == head.end()) {
      return Status::InvalidArgument("free variable '" + v +
                                     "' missing from head");
    }
  }
  FoEvalContext ctx(db);
  std::map<std::string, Value> assignment;
  Tuple t(head.size(), 0);
  // Odometer over domain^|head|.
  while (true) {
    for (size_t i = 0; i < head.size(); ++i) assignment[head[i]] = t[i];
    FGQ_ASSIGN_OR_RETURN(bool v, EvalFo(f, ctx, &assignment));
    if (v) on_answer(t);
    size_t p = 0;
    while (p < head.size() && ++t[p] == ctx.domain_size()) {
      t[p] = 0;
      ++p;
    }
    if (p == head.size() || head.empty()) break;
  }
  return Status::OK();
}

}  // namespace

Result<Relation> EvaluateFoNaive(const FoFormula& f, const Database& db,
                                 const std::vector<std::string>& head) {
  Relation out("fo", head.size());
  FGQ_RETURN_NOT_OK(ForEachAnswer(f, db, head, [&](const Tuple& t) {
    if (head.empty()) {
      out.AddNullary();
    } else {
      out.Add(t);
    }
  }));
  out.SortDedup();
  return out;
}

Result<int64_t> CountFoNaive(const FoFormula& f, const Database& db,
                             const std::vector<std::string>& head) {
  int64_t count = 0;
  FGQ_RETURN_NOT_OK(ForEachAnswer(f, db, head, [&](const Tuple&) { ++count; }));
  return count;
}

}  // namespace fgq
