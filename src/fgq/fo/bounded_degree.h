#ifndef FGQ_FO_BOUNDED_DEGREE_H_
#define FGQ_FO_BOUNDED_DEGREE_H_

#include <functional>
#include <memory>
#include <vector>

#include "fgq/db/database.h"
#include "fgq/eval/enumerate.h"
#include "fgq/query/fo.h"
#include "fgq/util/status.h"

/// \file bounded_degree.h
/// FO query answering on structures of bounded (and low) degree
/// (Sections 3.1-3.2; Theorems 3.1, 3.2, 3.9, 3.10; [32, 59, 51, 36]).
///
/// The enabling fact is locality: in a structure of degree <= d, the
/// radius-r Gaifman ball around an element has at most d^(r+1) elements,
/// so any r-local condition is checkable in constant time per element.
/// We expose the machinery the survey explains:
///
/// * AdjacencyIndex / GaifmanBall — neighborhood extraction in time
///   proportional to the ball size.
/// * LocalQuery evaluation — unary queries "x satisfies theta within its
///   radius-r ball", evaluated in f(||phi||, d, r) per element: model
///   checking of exists x. theta(x) / forall x. theta(x), counting, and
///   constant-delay enumeration after linear preprocessing (the
///   Theorem 3.1/3.2 shape). On low-degree classes (degree <= n^eps,
///   Definition 3.8) the same code is pseudo-linear (Theorems 3.9/3.10).
/// * The Example 3.3 quantifier elimination — exists y. psi(y) /\ y != f_1
///   (x_1) /\ ... /\ y != f_k(x_k) reduces to comparing the number of
///   distinct excluded psi-elements with |psi| — and Algorithm 1, the
///   constant-delay product-with-exceptions enumerator it feeds.

namespace fgq {

/// Per-element incidence lists over all relations of a database.
class AdjacencyIndex {
 public:
  explicit AdjacencyIndex(const Database& db);

  /// Gaifman neighbors of `v` (elements sharing a tuple with it),
  /// deduplicated.
  const std::vector<Value>& Neighbors(Value v) const;

  /// Elements at Gaifman distance <= radius from `center` (including it).
  std::vector<Value> Ball(Value center, int radius) const;

  Value domain_size() const {
    return static_cast<Value>(neighbors_.size());
  }

 private:
  std::vector<std::vector<Value>> neighbors_;
  std::vector<Value> empty_;
};

/// A unary local query: "theta holds of x, with all quantifiers ranging
/// over the radius-r ball around x".
struct LocalQuery {
  FoPtr theta;      // One free variable.
  std::string var;  // Its name.
  int radius = 1;
};

/// True if `q` holds at element `a` (quantifiers relativized to the ball).
Result<bool> HoldsAt(const LocalQuery& q, const Database& db,
                     const AdjacencyIndex& adj, Value a);

/// Model checks exists x. theta(x) in time O(n * f(d^r)).
Result<bool> ModelCheckExistsLocal(const LocalQuery& q, const Database& db);

/// Counts the elements satisfying theta (Theorem 3.2's counting claim).
Result<int64_t> CountLocal(const LocalQuery& q, const Database& db);

/// Linear preprocessing + constant-delay enumeration of the satisfying
/// elements (Theorem 3.2's enumeration claim).
Result<std::unique_ptr<AnswerEnumerator>> MakeLocalEnumerator(
    const LocalQuery& q, const Database& db);

/// The Definition 3.8 test: degree(D) <= |D|^eps.
bool IsLowDegree(const Database& db, double eps);

// ---- Example 3.3 / Algorithm 1 ----------------------------------------------

/// A structure of unary partial functions over [0, n), the normalized
/// representation of bounded-degree data used by [32]'s quantifier
/// elimination. funcs[i][x] is f_i(x), or kNoValue when undefined.
struct FunctionalStructure {
  static constexpr Value kNoValue = -1;
  std::vector<std::vector<Value>> funcs;
  std::vector<bool> psi;  // The unary predicate of Example 3.3.

  size_t domain_size() const { return psi.size(); }
  size_t PsiCount() const;
};

/// Example 3.3 semantics: exists y. psi(y) /\ /\_i y != f_i(args[i]) —
/// true iff the number of *distinct* values f_i(args[i]) lying in psi is
/// strictly smaller than |psi|. Constant time in the data for fixed k.
bool ExistsPsiAvoiding(const FunctionalStructure& fs,
                       const std::vector<size_t>& func_ids,
                       const std::vector<Value>& args);

/// Algorithm 1: enumerates {(a, b) : a in lhs, b in rhs, b not excluded
/// by a} with constant delay, given |exclusions(a)| <= k << |rhs|.
/// `exclusions` returns the excluded b-values for a given a. Outputs via
/// `emit(a, b)`. Returns the number of pairs emitted.
int64_t EnumeratePairsWithExceptions(
    const std::vector<Value>& lhs, const std::vector<Value>& rhs,
    const std::function<std::vector<Value>(Value)>& exclusions,
    const std::function<void(Value, Value)>& emit);

}  // namespace fgq

#endif  // FGQ_FO_BOUNDED_DEGREE_H_
