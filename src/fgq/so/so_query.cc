#include "fgq/so/so_query.h"

namespace fgq {

bool SoQuery::IsSigma1() const {
  const FoFormula* f = formula.get();
  while (f->kind() == FoFormula::Kind::kExists) f = &f->child();
  return f->IsQuantifierFree();
}

std::pair<std::vector<std::string>, const FoFormula*> SoQuery::SplitSigma1()
    const {
  std::vector<std::string> prefix;
  const FoFormula* f = formula.get();
  while (f->kind() == FoFormula::Kind::kExists) {
    prefix.push_back(f->quantified_var());
    f = &f->child();
  }
  return {prefix, f};
}

Result<SlotSpace> SlotSpace::Create(const std::vector<SoVar>& so_vars,
                                    Value domain_size) {
  SlotSpace s;
  s.n_ = domain_size;
  uint64_t base = 0;
  for (const SoVar& v : so_vars) {
    s.bases_.push_back(base);
    s.arities_.push_back(v.arity);
    uint64_t count = 1;
    for (size_t i = 0; i < v.arity; ++i) {
      if (count > (uint64_t{1} << 62) / std::max<uint64_t>(1, domain_size)) {
        return Status::OutOfRange("SO bit-space exceeds 2^62 slots");
      }
      count *= static_cast<uint64_t>(domain_size);
    }
    base += count;
  }
  s.total_ = base;
  return s;
}

uint64_t SlotSpace::SlotOf(size_t var_idx,
                           const std::vector<Value>& tuple) const {
  uint64_t offset = 0;
  for (Value t : tuple) {
    offset = offset * static_cast<uint64_t>(n_) + static_cast<uint64_t>(t);
  }
  return bases_[var_idx] + offset;
}

void SlotSpace::Decode(uint64_t slot, size_t* var_idx,
                       std::vector<Value>* tuple) const {
  size_t i = bases_.size() - 1;
  while (bases_[i] > slot) --i;
  *var_idx = i;
  uint64_t offset = slot - bases_[i];
  tuple->assign(arities_[i], 0);
  for (size_t j = arities_[i]; j-- > 0;) {
    (*tuple)[j] = static_cast<Value>(offset % static_cast<uint64_t>(n_));
    offset /= static_cast<uint64_t>(n_);
  }
}

}  // namespace fgq
