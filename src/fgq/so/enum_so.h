#ifndef FGQ_SO_ENUM_SO_H_
#define FGQ_SO_ENUM_SO_H_

#include <functional>
#include <vector>

#include "fgq/so/so_query.h"
#include "fgq/util/status.h"

/// \file enum_so.h
/// Enumeration for prefix-restricted SO queries (Section 5.2, Theorem 5.5,
/// [37]).
///
/// Solutions are second-order assignments — bit vectors over the SO slot
/// space — so "constant delay" must be read in the delta model: the
/// algorithm owns an output tape holding the current solution and each
/// step edits a bounded part of it.
///
/// * EnumerateSigma0GrayCode — enum.Sigma0 with constant delta-delay:
///   for each witness (FO assignment, satisfying pattern on the
///   query-many constrained slots), the free slots are walked in binary
///   reflected Gray-code order, so consecutive solutions differ in exactly
///   one bit; moving between witnesses rewrites only the constrained
///   slots. The visitor receives tape edits, not whole solutions.
/// * EnumerateSigma1Flashlight — enum.Sigma1 with polynomial delay:
///   depth-first search over slots with an extension check ("can this
///   prefix be completed?") that is polynomial because a completion
///   exists iff some witness (a, pattern) is consistent with the prefix.
///
/// (Theorem 5.5's negative side — enum.Pi1 has no polynomial delay unless
/// P = NP — is a proof; the benchmarks only measure the two upper bounds.)

namespace fgq {

/// Tape-edit visitor for the delta-delay model. ResetTape announces a
/// fresh base solution (full bit vector); FlipBit edits one slot. Each
/// callback invocation corresponds to exactly one emitted solution.
class TapeVisitor {
 public:
  virtual ~TapeVisitor() = default;
  virtual void ResetTape(const std::vector<bool>& solution) = 0;
  virtual void FlipBit(uint64_t slot) = 0;
};

/// A TapeVisitor that materializes every solution (for tests).
class CollectingVisitor : public TapeVisitor {
 public:
  void ResetTape(const std::vector<bool>& solution) override {
    tape_ = solution;
    solutions_.push_back(tape_);
  }
  void FlipBit(uint64_t slot) override {
    tape_[slot] = !tape_[slot];
    solutions_.push_back(tape_);
  }
  const std::vector<std::vector<bool>>& solutions() const {
    return solutions_;
  }

 private:
  std::vector<bool> tape_;
  std::vector<std::vector<bool>> solutions_;
};

/// Enumerates the SO assignments satisfying a Sigma0 query with no free
/// FO variables (fo_free must be empty; bind FO values into constants
/// first). Each solution is emitted exactly once; total slot count must
/// stay below 2^20 per solution tape. Constant delta-delay.
Status EnumerateSigma0GrayCode(const SoQuery& q, const Database& db,
                               TapeVisitor* visitor);

/// Enumerates the SO assignments satisfying a Sigma1 query (exists-prefix)
/// in lexicographic order with polynomial delay, invoking `emit` with each
/// full solution. Stops after `max_solutions` (0 = unlimited).
Status EnumerateSigma1Flashlight(
    const SoQuery& q, const Database& db, uint64_t max_solutions,
    const std::function<void(const std::vector<bool>&)>& emit);

}  // namespace fgq

#endif  // FGQ_SO_ENUM_SO_H_
