#ifndef FGQ_SO_SIGMA_COUNT_H_
#define FGQ_SO_SIGMA_COUNT_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "fgq/fo/naive_fo.h"
#include "fgq/so/so_query.h"
#include "fgq/util/bigint.h"
#include "fgq/util/random.h"

/// \file sigma_count.h
/// Counting for prefix-restricted SO queries (Section 5.1, Theorem 5.3,
/// [72]) and the Karp-Luby FPRAS ([57], Definition 5.4).
///
/// * CountSigma0 — #Sigma0^rel is polynomial-time computable: for each
///   assignment of the free FO variables, the formula constrains only
///   query-many ground SO atom instances; each satisfying bit pattern
///   contributes 2^(T - m) completions of the remaining T - m free slots.
///   Counts are returned as BigInt (they reach 2^(n^r)).
/// * CountSigma1Brute — exact #Sigma1 by brute force over the SO
///   bit-space (test oracle; #Sigma1 contains #P-complete problems such
///   as #3DNF, Example 5.1).
/// * The cube machinery + EstimateUnionOfCubes — a Sigma1 query denotes a
///   union of subcubes of {0,1}^T (one per witness (a, pattern) pair);
///   Karp-Luby importance sampling estimates the union size within
///   relative error eps with probability >= 3/4, in time polynomial in
///   #cubes and 1/eps. #DNF (the paper's inspirational case) is the
///   special instance where cubes come from DNF clauses.

namespace fgq {

/// A subcube of the SO bit-space: fixed literals (slot, bit), everything
/// else free. Literals are sorted by slot.
struct Cube {
  std::vector<std::pair<uint64_t, bool>> literals;

  bool operator<(const Cube& o) const { return literals < o.literals; }
  bool operator==(const Cube& o) const { return literals == o.literals; }
};

/// Collects the ground SO slots the quantifier-free formula `f` touches
/// under the given FO assignment. Shared with the enumeration module.
Status CollectSoSlotsForQuery(const FoFormula& f, const SoQuery& q,
                              const SlotSpace& space,
                              const std::map<std::string, Value>& assignment,
                              std::set<uint64_t>* slots);

/// Evaluates a quantifier-free matrix under an FO assignment plus SO bits
/// (slot -> bit); every touched slot must be present in `bits`.
Result<bool> EvalSigmaMatrix(const FoFormula& f, const SoQuery& q,
                             const FoEvalContext& ctx, const SlotSpace& space,
                             std::map<std::string, Value>* assignment,
                             const std::map<uint64_t, bool>& bits);

/// Exact #Sigma0 counting (Theorem 5.3). The formula must be
/// quantifier-free; free FO variables are q.fo_free.
Result<BigInt> CountSigma0(const SoQuery& q, const Database& db);

/// Extracts the witness cubes of a Sigma1 query: one cube per (prefix
/// assignment, satisfying pattern) pair, deduplicated.
Result<std::vector<Cube>> Sigma1Cubes(const SoQuery& q, const Database& db);

/// Exact #Sigma1 by iterating the whole bit-space (requires total slots
/// <= 24; test oracle).
Result<BigInt> CountSigma1Brute(const SoQuery& q, const Database& db);

/// Exact size of a union of cubes by brute force (total_slots <= 24).
Result<BigInt> CountUnionOfCubesBrute(const std::vector<Cube>& cubes,
                                      uint64_t total_slots);

/// Karp-Luby estimator for |union of cubes| with relative error `eps`
/// (probability >= 3/4). Runs ceil(8 * #cubes / eps^2) trials.
Result<BigInt> EstimateUnionOfCubes(const std::vector<Cube>& cubes,
                                    uint64_t total_slots, double eps,
                                    Rng* rng);

/// FPRAS for #Sigma1 = cubes + Karp-Luby (the [57]-style algorithm the
/// paper cites for #Sigma1^rel).
Result<BigInt> EstimateSigma1(const SoQuery& q, const Database& db,
                              double eps, Rng* rng);

// ---- #DNF -------------------------------------------------------------------

/// A propositional DNF formula: clauses are conjunctions of literals,
/// literal +v means variable (v-1) positive, -v negative.
struct DnfFormula {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;
};

/// The clauses as cubes over slots [0, num_vars).
std::vector<Cube> DnfCubes(const DnfFormula& dnf);

/// Exact #DNF by enumeration (num_vars <= 24).
Result<BigInt> CountDnfExact(const DnfFormula& dnf);

/// Karp-Luby FPRAS for #DNF.
Result<BigInt> EstimateDnf(const DnfFormula& dnf, double eps, Rng* rng);

}  // namespace fgq

#endif  // FGQ_SO_SIGMA_COUNT_H_
