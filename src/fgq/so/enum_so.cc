#include "fgq/so/enum_so.h"

#include <map>
#include <set>

#include "fgq/fo/naive_fo.h"
#include "fgq/so/sigma_count.h"

namespace fgq {

Status EnumerateSigma0GrayCode(const SoQuery& q, const Database& db,
                               TapeVisitor* visitor) {
  if (!q.IsSigma0()) {
    return Status::InvalidArgument("query is not Sigma0");
  }
  if (!q.fo_free.empty()) {
    return Status::InvalidArgument(
        "bind free FO variables to constants before enumerating");
  }
  FGQ_ASSIGN_OR_RETURN(SlotSpace space,
                       SlotSpace::Create(q.so_vars, db.DomainSize()));
  const uint64_t total = space.total_slots();
  if (total >= (uint64_t{1} << 20)) {
    return Status::OutOfRange("solution tape too large");
  }
  // The witness cubes of a Sigma0 sentence partition the solution space:
  // two distinct satisfying patterns differ on a constrained slot.
  SoQuery as_sigma1;
  as_sigma1.formula = q.formula->Clone();
  as_sigma1.so_vars = q.so_vars;
  FGQ_ASSIGN_OR_RETURN(std::vector<Cube> cubes, Sigma1Cubes(as_sigma1, db));

  std::vector<bool> tape(total, false);
  for (const Cube& cube : cubes) {
    // Base solution: the pattern plus all-zero free slots.
    std::fill(tape.begin(), tape.end(), false);
    std::set<uint64_t> constrained;
    for (const auto& [slot, bit] : cube.literals) {
      tape[slot] = bit;
      constrained.insert(slot);
    }
    std::vector<uint64_t> free_slots;
    for (uint64_t s = 0; s < total; ++s) {
      if (!constrained.count(s)) free_slots.push_back(s);
    }
    visitor->ResetTape(tape);
    // Binary reflected Gray code over the free slots: step k flips the
    // slot indexed by the ruler sequence (number of trailing ones of k).
    const uint64_t steps = free_slots.empty()
                               ? 0
                               : (uint64_t{1} << free_slots.size()) - 1;
    for (uint64_t k = 1; k <= steps; ++k) {
      int flip = __builtin_ctzll(k);
      uint64_t slot = free_slots[static_cast<size_t>(flip)];
      tape[slot] = !tape[slot];
      visitor->FlipBit(slot);
    }
  }
  return Status::OK();
}

namespace {

struct FlashlightContext {
  const SoQuery* q;
  const Database* db;
  const SlotSpace* space;
  const FoFormula* matrix;
  std::vector<std::string> prefix_vars;
  std::vector<int8_t> bits;  // -1 undecided.
  uint64_t emitted = 0;
  uint64_t max_solutions = 0;
  const std::function<void(const std::vector<bool>&)>* emit;
};

/// True if some witness (prefix assignment, pattern) is consistent with
/// the currently decided bits — i.e. the partial solution extends.
Result<bool> CanExtend(FlashlightContext* ctx) {
  FoEvalContext fo_ctx(*ctx->db);
  std::map<std::string, Value> assignment;
  bool found = false;
  // Odometer over prefix-variable assignments.
  std::vector<Value> vals(ctx->prefix_vars.size(), 0);
  const Value n = ctx->db->DomainSize();
  while (!found) {
    for (size_t i = 0; i < ctx->prefix_vars.size(); ++i) {
      assignment[ctx->prefix_vars[i]] = vals[i];
    }
    std::set<uint64_t> slot_set;
    FGQ_RETURN_NOT_OK(CollectSoSlotsForQuery(*ctx->matrix, *ctx->q,
                                             *ctx->space, assignment,
                                             &slot_set));
    std::vector<uint64_t> slots(slot_set.begin(), slot_set.end());
    std::map<uint64_t, bool> pattern;
    for (uint64_t mask = 0; mask < (uint64_t{1} << slots.size()); ++mask) {
      bool consistent = true;
      for (size_t i = 0; i < slots.size(); ++i) {
        bool bit = (mask >> i) & 1;
        int8_t decided = ctx->bits[slots[i]];
        if (decided != -1 && decided != static_cast<int8_t>(bit)) {
          consistent = false;
          break;
        }
        pattern[slots[i]] = bit;
      }
      if (consistent) {
        FGQ_ASSIGN_OR_RETURN(
            bool v, EvalSigmaMatrix(*ctx->matrix, *ctx->q, fo_ctx,
                                    *ctx->space, &assignment, pattern));
        if (v) {
          found = true;
          break;
        }
      }
      if (slots.empty()) break;
    }
    size_t p = 0;
    while (p < vals.size() && ++vals[p] == n) {
      vals[p] = 0;
      ++p;
    }
    if (p == vals.size() || vals.empty()) break;
  }
  return found;
}

Status Descend(FlashlightContext* ctx, uint64_t depth) {
  if (ctx->max_solutions > 0 && ctx->emitted >= ctx->max_solutions) {
    return Status::OK();
  }
  if (depth == ctx->bits.size()) {
    std::vector<bool> solution(ctx->bits.size());
    for (size_t i = 0; i < ctx->bits.size(); ++i) {
      solution[i] = ctx->bits[i] == 1;
    }
    (*ctx->emit)(solution);
    ++ctx->emitted;
    return Status::OK();
  }
  for (int8_t bit = 0; bit <= 1; ++bit) {
    ctx->bits[depth] = bit;
    FGQ_ASSIGN_OR_RETURN(bool extendable, CanExtend(ctx));
    if (extendable) {
      FGQ_RETURN_NOT_OK(Descend(ctx, depth + 1));
    }
    if (ctx->max_solutions > 0 && ctx->emitted >= ctx->max_solutions) break;
  }
  ctx->bits[depth] = -1;
  return Status::OK();
}

}  // namespace

Status EnumerateSigma1Flashlight(
    const SoQuery& q, const Database& db, uint64_t max_solutions,
    const std::function<void(const std::vector<bool>&)>& emit) {
  if (!q.IsSigma1()) {
    return Status::InvalidArgument("query is not Sigma1");
  }
  FGQ_ASSIGN_OR_RETURN(SlotSpace space,
                       SlotSpace::Create(q.so_vars, db.DomainSize()));
  if (space.total_slots() >= 40) {
    return Status::OutOfRange("flashlight limited to 40 slots");
  }
  FlashlightContext ctx;
  ctx.q = &q;
  ctx.db = &db;
  ctx.space = &space;
  auto [prefix, matrix] = q.SplitSigma1();
  ctx.prefix_vars = prefix;
  ctx.matrix = matrix;
  ctx.bits.assign(space.total_slots(), -1);
  ctx.max_solutions = max_solutions;
  ctx.emit = &emit;
  // Root feasibility check, then DFS.
  FGQ_ASSIGN_OR_RETURN(bool any, CanExtend(&ctx));
  if (!any) return Status::OK();
  return Descend(&ctx, 0);
}

}  // namespace fgq
