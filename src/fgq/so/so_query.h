#ifndef FGQ_SO_SO_QUERY_H_
#define FGQ_SO_SO_QUERY_H_

#include <string>
#include <vector>

#include "fgq/db/database.h"
#include "fgq/query/fo.h"
#include "fgq/util/status.h"

/// \file so_query.h
/// Queries with free second-order variables (Section 5).
///
/// A SoQuery is a first-order formula over database relations and free
/// relation variables X_1..X_m (marked as SO atoms in the AST). The prefix
/// classes of the paper are recognized syntactically: Sigma0 formulas are
/// quantifier-free, Sigma1 formulas are an exists-block over a
/// quantifier-free matrix.
///
/// An *answer* is a pair (a, A): values for the free first-order variables
/// plus relations for the SO variables over the database domain. SO
/// assignments are manipulated through their bit-space: variable X of
/// arity r owns n^r slots, one per tuple over the domain, with a global
/// slot numbering (SlotSpace).

namespace fgq {

/// A free second-order (relation) variable.
struct SoVar {
  std::string name;
  size_t arity = 1;
};

/// A prefix-class query with free SO variables.
struct SoQuery {
  FoPtr formula;
  std::vector<SoVar> so_vars;
  std::vector<std::string> fo_free;  // Free first-order variables.

  /// Syntactic class checks.
  bool IsSigma0() const { return formula->IsQuantifierFree(); }
  bool IsSigma1() const;

  /// Strips the exists-prefix, returning (prefix vars, matrix pointer).
  /// The matrix is owned by `formula`.
  std::pair<std::vector<std::string>, const FoFormula*> SplitSigma1() const;
};

/// Global numbering of the SO bit-space: variable i of arity r owns the
/// contiguous slot range [base_i, base_i + n^r).
class SlotSpace {
 public:
  /// Fails when the bit-space exceeds 2^62 slots.
  static Result<SlotSpace> Create(const std::vector<SoVar>& so_vars,
                                  Value domain_size);

  uint64_t total_slots() const { return total_; }
  Value domain_size() const { return n_; }

  /// Slot of X_var(tuple).
  uint64_t SlotOf(size_t var_idx, const std::vector<Value>& tuple) const;

  /// Inverse: which variable and tuple a slot denotes.
  void Decode(uint64_t slot, size_t* var_idx, std::vector<Value>* tuple) const;

 private:
  std::vector<uint64_t> bases_;
  std::vector<size_t> arities_;
  uint64_t total_ = 0;
  Value n_ = 0;
};

}  // namespace fgq

#endif  // FGQ_SO_SO_QUERY_H_
