#include "fgq/so/sigma_count.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "fgq/fo/naive_fo.h"

namespace fgq {

namespace {

Result<Value> TermValue(const Term& t,
                        const std::map<std::string, Value>& assignment) {
  if (!t.is_var()) return t.constant;
  auto it = assignment.find(t.var);
  if (it == assignment.end()) {
    return Status::InvalidArgument("unbound variable '" + t.var + "'");
  }
  return it->second;
}

Result<int> SoVarIndex(const SoQuery& q, const std::string& name) {
  for (size_t i = 0; i < q.so_vars.size(); ++i) {
    if (q.so_vars[i].name == name) return static_cast<int>(i);
  }
  return Status::InvalidArgument("unknown SO variable '" + name + "'");
}

}  // namespace

Status CollectSoSlotsForQuery(const FoFormula& f, const SoQuery& q,
                              const SlotSpace& space,
                              const std::map<std::string, Value>& assignment,
                              std::set<uint64_t>* slots) {
  if (f.kind() == FoFormula::Kind::kAtom && f.is_so_atom()) {
    FGQ_ASSIGN_OR_RETURN(int var_idx, SoVarIndex(q, f.relation()));
    std::vector<Value> t(f.args().size());
    for (size_t i = 0; i < f.args().size(); ++i) {
      FGQ_ASSIGN_OR_RETURN(t[i], TermValue(f.args()[i], assignment));
    }
    slots->insert(space.SlotOf(static_cast<size_t>(var_idx), t));
  }
  for (const FoPtr& c : f.children()) {
    FGQ_RETURN_NOT_OK(CollectSoSlotsForQuery(*c, q, space, assignment, slots));
  }
  return Status::OK();
}

namespace {
// Reopened for the witness-iteration templates below.
}  // namespace

Result<bool> EvalSigmaMatrix(const FoFormula& f, const SoQuery& q,
                             const FoEvalContext& ctx, const SlotSpace& space,
                             std::map<std::string, Value>* assignment,
                             const std::map<uint64_t, bool>& bits) {
  switch (f.kind()) {
    case FoFormula::Kind::kAtom: {
      if (!f.is_so_atom()) return EvalFo(f, ctx, assignment);
      FGQ_ASSIGN_OR_RETURN(int var_idx, SoVarIndex(q, f.relation()));
      std::vector<Value> t(f.args().size());
      for (size_t i = 0; i < f.args().size(); ++i) {
        FGQ_ASSIGN_OR_RETURN(t[i], TermValue(f.args()[i], *assignment));
      }
      uint64_t slot = space.SlotOf(static_cast<size_t>(var_idx), t);
      auto it = bits.find(slot);
      if (it == bits.end()) {
        return Status::Internal("unassigned SO slot during evaluation");
      }
      return it->second;
    }
    case FoFormula::Kind::kNot: {
      FGQ_ASSIGN_OR_RETURN(
          bool v, EvalSigmaMatrix(f.child(), q, ctx, space, assignment, bits));
      return !v;
    }
    case FoFormula::Kind::kAnd: {
      for (const FoPtr& c : f.children()) {
        FGQ_ASSIGN_OR_RETURN(
            bool v, EvalSigmaMatrix(*c, q, ctx, space, assignment, bits));
        if (!v) return false;
      }
      return true;
    }
    case FoFormula::Kind::kOr: {
      for (const FoPtr& c : f.children()) {
        FGQ_ASSIGN_OR_RETURN(
            bool v, EvalSigmaMatrix(*c, q, ctx, space, assignment, bits));
        if (v) return true;
      }
      return false;
    }
    case FoFormula::Kind::kExists:
    case FoFormula::Kind::kForall:
      return Status::InvalidArgument("matrix must be quantifier-free");
    default:
      return EvalFo(f, ctx, assignment);
  }
}

namespace {

/// Runs `body(assignment)` for every assignment of `vars` over the domain.
template <typename Body>
Status ForEachAssignment(const std::vector<std::string>& vars, Value n,
                         std::map<std::string, Value>* assignment,
                         const Body& body) {
  std::vector<Value> vals(vars.size(), 0);
  while (true) {
    for (size_t i = 0; i < vars.size(); ++i) (*assignment)[vars[i]] = vals[i];
    FGQ_RETURN_NOT_OK(body());
    size_t p = 0;
    while (p < vars.size() && ++vals[p] == n) {
      vals[p] = 0;
      ++p;
    }
    if (p == vars.size() || vars.empty()) break;
  }
  return Status::OK();
}

constexpr size_t kMaxGroundAtoms = 24;

/// Enumerates the satisfying (assignment, pattern) pairs of a
/// quantifier-free matrix, invoking `on_witness(slots, pattern_mask)`.
template <typename OnWitness>
Status ForEachWitness(const FoFormula& matrix, const SoQuery& q,
                      const Database& db, const SlotSpace& space,
                      const std::vector<std::string>& fo_vars,
                      const OnWitness& on_witness) {
  FoEvalContext ctx(db);
  std::map<std::string, Value> assignment;
  return ForEachAssignment(fo_vars, db.DomainSize(), &assignment, [&]() {
    std::set<uint64_t> slot_set;
    FGQ_RETURN_NOT_OK(
        CollectSoSlotsForQuery(matrix, q, space, assignment, &slot_set));
    std::vector<uint64_t> slots(slot_set.begin(), slot_set.end());
    if (slots.size() > kMaxGroundAtoms) {
      return Status::OutOfRange("too many ground SO atoms per assignment");
    }
    std::map<uint64_t, bool> bits;
    for (uint64_t mask = 0; mask < (uint64_t{1} << slots.size()); ++mask) {
      for (size_t i = 0; i < slots.size(); ++i) {
        bits[slots[i]] = (mask >> i) & 1;
      }
      FGQ_ASSIGN_OR_RETURN(
          bool v, EvalSigmaMatrix(matrix, q, ctx, space, &assignment, bits));
      if (v) {
        FGQ_RETURN_NOT_OK(on_witness(slots, mask));
      }
      if (slots.empty()) break;
    }
    return Status::OK();
  });
}

}  // namespace

Result<BigInt> CountSigma0(const SoQuery& q, const Database& db) {
  if (!q.IsSigma0()) {
    return Status::InvalidArgument("query is not Sigma0 (quantifier-free)");
  }
  FGQ_ASSIGN_OR_RETURN(SlotSpace space,
                       SlotSpace::Create(q.so_vars, db.DomainSize()));
  BigInt total(0);
  FGQ_RETURN_NOT_OK(ForEachWitness(
      *q.formula, q, db, space, q.fo_free,
      [&](const std::vector<uint64_t>& slots, uint64_t) {
        total += BigInt::Pow2(space.total_slots() - slots.size());
        return Status::OK();
      }));
  return total;
}

Result<std::vector<Cube>> Sigma1Cubes(const SoQuery& q, const Database& db) {
  if (!q.IsSigma1()) {
    return Status::InvalidArgument("query is not Sigma1");
  }
  if (!q.fo_free.empty()) {
    return Status::InvalidArgument(
        "Sigma1 counting treats all FO variables as quantified");
  }
  auto [prefix, matrix] = q.SplitSigma1();
  FGQ_ASSIGN_OR_RETURN(SlotSpace space,
                       SlotSpace::Create(q.so_vars, db.DomainSize()));
  std::set<Cube> cubes;
  FGQ_RETURN_NOT_OK(ForEachWitness(
      *matrix, q, db, space, prefix,
      [&](const std::vector<uint64_t>& slots, uint64_t mask) {
        Cube c;
        for (size_t i = 0; i < slots.size(); ++i) {
          c.literals.push_back({slots[i], ((mask >> i) & 1) != 0});
        }
        cubes.insert(std::move(c));
        return Status::OK();
      }));
  return std::vector<Cube>(cubes.begin(), cubes.end());
}

Result<BigInt> CountUnionOfCubesBrute(const std::vector<Cube>& cubes,
                                      uint64_t total_slots) {
  if (total_slots > 24) {
    return Status::OutOfRange("brute-force union limited to 24 slots");
  }
  int64_t count = 0;
  for (uint64_t assignment = 0; assignment < (uint64_t{1} << total_slots);
       ++assignment) {
    for (const Cube& c : cubes) {
      bool member = true;
      for (const auto& [slot, bit] : c.literals) {
        if (((assignment >> slot) & 1) != static_cast<uint64_t>(bit)) {
          member = false;
          break;
        }
      }
      if (member) {
        ++count;
        break;
      }
    }
  }
  return BigInt(count);
}

Result<BigInt> CountSigma1Brute(const SoQuery& q, const Database& db) {
  FGQ_ASSIGN_OR_RETURN(SlotSpace space,
                       SlotSpace::Create(q.so_vars, db.DomainSize()));
  FGQ_ASSIGN_OR_RETURN(std::vector<Cube> cubes, Sigma1Cubes(q, db));
  return CountUnionOfCubesBrute(cubes, space.total_slots());
}

Result<BigInt> EstimateUnionOfCubes(const std::vector<Cube>& cubes,
                                    uint64_t total_slots, double eps,
                                    Rng* rng) {
  if (cubes.empty()) return BigInt(0);
  if (eps <= 0) return Status::InvalidArgument("eps must be positive");
  // Total weight W = sum 2^(T - m_i), and relative sampling weights
  // proportional to 2^(-m_i).
  BigInt big_w(0);
  std::vector<double> cumulative(cubes.size());
  double acc = 0;
  for (size_t i = 0; i < cubes.size(); ++i) {
    big_w += BigInt::Pow2(total_slots - cubes[i].literals.size());
    acc += std::ldexp(1.0, -static_cast<int>(cubes[i].literals.size()));
    cumulative[i] = acc;
  }
  const uint64_t trials = static_cast<uint64_t>(
      std::ceil(8.0 * static_cast<double>(cubes.size()) / (eps * eps)));
  if (trials > UINT32_MAX) {
    return Status::OutOfRange("eps too small: trial count exceeds 2^32");
  }
  uint64_t successes = 0;
  std::unordered_map<uint64_t, bool> sample;
  for (uint64_t t = 0; t < trials; ++t) {
    // Pick a cube proportional to its size.
    double r = rng->NextDouble() * acc;
    size_t i = static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), r) -
        cumulative.begin());
    if (i >= cubes.size()) i = cubes.size() - 1;
    // Lazy uniform completion: cube i's literals fixed, the rest drawn on
    // demand.
    sample.clear();
    for (const auto& [slot, bit] : cubes[i].literals) sample[slot] = bit;
    auto bit_at = [&](uint64_t slot) {
      auto [it, inserted] = sample.try_emplace(slot, false);
      if (inserted) it->second = rng->Next() & 1;
      return it->second;
    };
    // Success iff i is the first cube containing the sample.
    bool first = true;
    for (size_t j = 0; j < i && first; ++j) {
      bool member = true;
      for (const auto& [slot, bit] : cubes[j].literals) {
        if (bit_at(slot) != bit) {
          member = false;
          break;
        }
      }
      if (member) first = false;
    }
    if (first) ++successes;
  }
  BigInt scaled = big_w * BigInt(static_cast<int64_t>(successes));
  // Divide by the number of trials (fits in 32 bits by construction),
  // rounding to nearest so small counts are not floored a full unit down.
  scaled += BigInt(static_cast<int64_t>(trials / 2));
  return scaled.DivSmall(static_cast<uint32_t>(trials));
}

Result<BigInt> EstimateSigma1(const SoQuery& q, const Database& db,
                              double eps, Rng* rng) {
  FGQ_ASSIGN_OR_RETURN(SlotSpace space,
                       SlotSpace::Create(q.so_vars, db.DomainSize()));
  FGQ_ASSIGN_OR_RETURN(std::vector<Cube> cubes, Sigma1Cubes(q, db));
  return EstimateUnionOfCubes(cubes, space.total_slots(), eps, rng);
}

std::vector<Cube> DnfCubes(const DnfFormula& dnf) {
  std::vector<Cube> cubes;
  for (const std::vector<int>& clause : dnf.clauses) {
    Cube c;
    bool contradictory = false;
    std::map<uint64_t, bool> lits;
    for (int lit : clause) {
      uint64_t slot = static_cast<uint64_t>(std::abs(lit) - 1);
      bool bit = lit > 0;
      auto [it, inserted] = lits.try_emplace(slot, bit);
      if (!inserted && it->second != bit) {
        contradictory = true;
        break;
      }
    }
    if (contradictory) continue;
    for (const auto& [slot, bit] : lits) c.literals.push_back({slot, bit});
    cubes.push_back(std::move(c));
  }
  return cubes;
}

Result<BigInt> CountDnfExact(const DnfFormula& dnf) {
  return CountUnionOfCubesBrute(DnfCubes(dnf),
                                static_cast<uint64_t>(dnf.num_vars));
}

Result<BigInt> EstimateDnf(const DnfFormula& dnf, double eps, Rng* rng) {
  std::vector<Cube> cubes = DnfCubes(dnf);
  return EstimateUnionOfCubes(cubes, static_cast<uint64_t>(dnf.num_vars), eps,
                              rng);
}

}  // namespace fgq
