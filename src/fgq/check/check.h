#ifndef FGQ_CHECK_CHECK_H_
#define FGQ_CHECK_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fgq/check/differ.h"
#include "fgq/check/shrink.h"

/// \file check.h
/// The top of the differential-testing subsystem: run a seed range, shrink
/// what fails, replay the committed corpus.
///
/// RunSeedRange is what both the `fuzz_check` example binary and the CI
/// fuzz steps call: case i uses seed `first_seed + i` and cycles through
/// the enabled classes (case i draws class i mod |classes|), so any seed
/// count exercises every query population evenly and a single (seed,
/// class) pair reproduces any failure. ReplayRegressionDir is the tier-1
/// half: every `.fgqr` file under tests/regress/ is re-diffed on every
/// test run, so a bug the fuzzer once caught can never quietly return.

namespace fgq {

struct CheckOptions {
  FuzzOptions fuzz;
  uint64_t first_seed = 0;
  size_t num_seeds = 100;
  /// Classes to cycle through; empty means all kNumFuzzClasses.
  std::vector<FuzzClass> classes;
  /// Shrink failures before reporting (and before writing regressions).
  bool shrink = true;
  /// When non-empty, each (shrunk) failure is written here as
  /// seed<seed>-<class>.fgqr.
  std::string regress_dir;
};

struct CheckSummary {
  size_t cases_run = 0;
  /// Total evaluation paths diffed across all cases.
  size_t paths_diffed = 0;
  /// Cases the reference refused (assignment budget) — not checked.
  size_t skipped = 0;
  /// Failing cases, shrunk when CheckOptions::shrink is set.
  std::vector<DiffReport> failures;

  bool ok() const { return failures.empty(); }
  /// One-line totals plus a full dump of every failure.
  std::string ToString() const;
};

/// Runs `num_seeds` differential cases. Deterministic: the summary is a
/// pure function of the options.
CheckSummary RunSeedRange(const CheckOptions& opt);

/// Re-diffs every `.fgqr` case under `dir`. OK when all pass (including
/// the vacuous empty-directory case); Internal with a full report in
/// `report` (optional) when any case fails to load or to verify.
Status ReplayRegressionDir(const std::string& dir, const FuzzOptions& opt,
                           std::string* report = nullptr);

}  // namespace fgq

#endif  // FGQ_CHECK_CHECK_H_
