#ifndef FGQ_CHECK_NET_FUZZ_H_
#define FGQ_CHECK_NET_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file net_fuzz.h
/// Wire-protocol robustness fuzzing for fgq::net.
///
/// The server's contract for hostile bytes is simple: *never* crash,
/// *never* mis-parse — every malformed input must surface as a clean
/// Status (and, stream-side, as a terminal FrameReader error). This
/// module drives that contract from three directions, all deterministic
/// from a seed:
///
/// 1. **Mutated frames.** Valid request/response frames are encoded, then
///    mutated — truncation, bit flips, hostile length prefixes, garbage
///    splices, oversized payloads — and pushed through FrameReader +
///    DecodeRequest/DecodeResponse. Any decode of a mutated frame must
///    either fail cleanly or produce a struct (mutations can be no-ops or
///    land in don't-care bytes); crashes and sanitizer reports are the
///    bugs being hunted.
/// 2. **Random garbage.** Arbitrary byte soup fed at random chunk
///    boundaries, which exercises resynchronization and the incremental
///    header parse.
/// 3. **Round-trips.** Unmutated frames must decode to exactly what was
///    encoded (the protocol's correctness half, so the fuzz can't pass
///    vacuously by rejecting everything).
///
/// Run under ASan/UBSan/TSan in CI via fuzz_check --net-frames=N.

namespace fgq {
namespace check {

struct FrameFuzzOptions {
  uint64_t seed = 1;
  /// Fuzz iterations; each feeds one (possibly mutated) stream.
  size_t iterations = 1000;
  /// Max values in a generated response row body.
  size_t max_values = 64;
  /// Max query text length in a generated request.
  size_t max_query_len = 96;
};

struct FrameFuzzReport {
  size_t iterations = 0;
  size_t frames_fed = 0;        ///< Frames (valid or mutated) pushed in.
  size_t clean_decodes = 0;     ///< Mutated inputs that still decoded.
  size_t clean_errors = 0;      ///< Mutated inputs rejected with a Status.
  size_t roundtrips = 0;        ///< Unmutated encode->decode->compare passes.
  /// Contract violations (round-trip mismatch, accepted garbage where the
  /// spec demands rejection, reader state errors). Empty = pass.
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

/// Runs the frame fuzz. Pure computation: no sockets, no threads — the
/// protocol layer is deliberately testable in isolation; memory bugs are
/// the sanitizers' department.
FrameFuzzReport RunFrameFuzz(const FrameFuzzOptions& opt);

}  // namespace check
}  // namespace fgq

#endif  // FGQ_CHECK_NET_FUZZ_H_
