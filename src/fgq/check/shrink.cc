#include "fgq/check/shrink.h"

#include <algorithm>
#include <set>
#include <utility>

namespace fgq {

namespace {

std::set<std::string> BodyVars(const ConjunctiveQuery& q) {
  std::set<std::string> vars;
  for (const Atom& a : q.atoms()) {
    for (const Term& t : a.args) {
      if (t.is_var()) vars.insert(t.var);
    }
  }
  return vars;
}

/// After removing structure from a disjunct: drop head variables that no
/// longer occur in the body, dedupe the head, drop comparisons over
/// vanished variables. Returns false when the repair would change the
/// head arity but the caller cannot allow that (multi-disjunct unions
/// share one arity).
bool RepairDisjunct(ConjunctiveQuery* q, bool allow_head_change) {
  const std::set<std::string> vars = BodyVars(*q);
  std::vector<std::string> head;
  for (const std::string& h : q->head()) {
    if (vars.count(h) &&
        std::find(head.begin(), head.end(), h) == head.end()) {
      head.push_back(h);
    }
  }
  if (head.size() != q->head().size() && !allow_head_change) return false;
  q->set_head(std::move(head));
  auto* comps = q->mutable_comparisons();
  comps->erase(std::remove_if(comps->begin(), comps->end(),
                              [&](const Comparison& c) {
                                return !vars.count(c.lhs) ||
                                       !vars.count(c.rhs);
                              }),
               comps->end());
  return true;
}

/// Renames `from` to `to` throughout one disjunct (atoms, comparisons,
/// head). Returns false when the resulting head dedup would change the
/// arity and that is not allowed.
bool MergeVars(ConjunctiveQuery* q, const std::string& from,
               const std::string& to, bool allow_head_change) {
  for (Atom& a : *q->mutable_atoms()) {
    for (Term& t : a.args) {
      if (t.is_var() && t.var == from) t.var = to;
    }
  }
  for (Comparison& c : *q->mutable_comparisons()) {
    if (c.lhs == from) c.lhs = to;
    if (c.rhs == from) c.rhs = to;
  }
  std::vector<std::string> head;
  for (const std::string& h : q->head()) {
    const std::string& renamed = (h == from) ? to : h;
    if (std::find(head.begin(), head.end(), renamed) == head.end()) {
      head.push_back(renamed);
    }
  }
  if (head.size() != q->head().size() && !allow_head_change) return false;
  q->set_head(std::move(head));
  return true;
}

/// A database with only the named relations, same effective domain.
Database KeepRelations(const Database& db, const std::set<std::string>& keep) {
  Database out;
  for (const auto& [name, rel] : db.relations()) {
    if (keep.count(name)) out.PutRelation(rel);
  }
  out.DeclareDomainSize(db.DomainSize());
  return out;
}

std::set<std::string> ReferencedRelations(const UnionQuery& u) {
  std::set<std::string> refs;
  for (const ConjunctiveQuery& q : u.disjuncts) {
    for (const Atom& a : q.atoms()) refs.insert(a.relation);
  }
  return refs;
}

}  // namespace

ShrinkResult ShrinkCase(const UnionQuery& u, const Database& db,
                        const FuzzOptions& opt, size_t max_attempts) {
  ShrinkResult cur;
  cur.query = u;
  cur.db = db;

  size_t attempts = 0;
  // A candidate is accepted iff it validates and still fails the differ.
  auto fails = [&](const UnionQuery& q, const Database& d,
                   std::vector<std::string>* mm) {
    if (attempts >= max_attempts) return false;
    ++attempts;
    if (q.disjuncts.empty() || !q.Validate().ok()) return false;
    bool skipped = false;
    std::vector<std::string> m = DiffCase(q, d, opt, nullptr, &skipped);
    if (skipped || m.empty()) return false;
    *mm = std::move(m);
    return true;
  };

  if (!fails(cur.query, cur.db, &cur.mismatches)) {
    // The input did not fail (or immediately exhausted the budget):
    // nothing to shrink.
    return cur;
  }

  bool progress = true;
  while (progress && attempts < max_attempts) {
    progress = false;
    const bool single = cur.query.disjuncts.size() == 1;

    // 1. Drop a whole disjunct.
    for (size_t i = 0; !progress && cur.query.disjuncts.size() > 1 &&
                       i < cur.query.disjuncts.size();
         ++i) {
      UnionQuery cand = cur.query;
      cand.disjuncts.erase(cand.disjuncts.begin() + i);
      std::vector<std::string> mm;
      if (fails(cand, cur.db, &mm)) {
        cur.query = std::move(cand);
        cur.mismatches = std::move(mm);
        ++cur.steps;
        progress = true;
      }
    }

    // 2. Drop an atom (with head/comparison repair).
    for (size_t d = 0; !progress && d < cur.query.disjuncts.size(); ++d) {
      const size_t num_atoms = cur.query.disjuncts[d].atoms().size();
      for (size_t j = 0; !progress && num_atoms > 1 && j < num_atoms; ++j) {
        UnionQuery cand = cur.query;
        ConjunctiveQuery* cq = &cand.disjuncts[d];
        cq->mutable_atoms()->erase(cq->mutable_atoms()->begin() + j);
        if (!RepairDisjunct(cq, single)) continue;
        std::vector<std::string> mm;
        if (fails(cand, cur.db, &mm)) {
          cur.query = std::move(cand);
          cur.mismatches = std::move(mm);
          ++cur.steps;
          progress = true;
        }
      }
    }

    // 3. Drop a comparison.
    for (size_t d = 0; !progress && d < cur.query.disjuncts.size(); ++d) {
      const size_t num = cur.query.disjuncts[d].comparisons().size();
      for (size_t j = 0; !progress && j < num; ++j) {
        UnionQuery cand = cur.query;
        auto* comps = cand.disjuncts[d].mutable_comparisons();
        comps->erase(comps->begin() + j);
        std::vector<std::string> mm;
        if (fails(cand, cur.db, &mm)) {
          cur.query = std::move(cand);
          cur.mismatches = std::move(mm);
          ++cur.steps;
          progress = true;
        }
      }
    }

    // 4. Merge two variables.
    for (size_t d = 0; !progress && d < cur.query.disjuncts.size(); ++d) {
      const std::vector<std::string> vars =
          cur.query.disjuncts[d].Variables();
      for (size_t a = 0; !progress && a < vars.size(); ++a) {
        for (size_t b = a + 1; !progress && b < vars.size(); ++b) {
          UnionQuery cand = cur.query;
          if (!MergeVars(&cand.disjuncts[d], vars[b], vars[a], single)) {
            continue;
          }
          std::vector<std::string> mm;
          if (fails(cand, cur.db, &mm)) {
            cur.query = std::move(cand);
            cur.mismatches = std::move(mm);
            ++cur.steps;
            progress = true;
          }
        }
      }
    }

    // 5. Drop a tuple.
    for (const auto& [name, rel] : cur.db.relations()) {
      if (progress) break;
      for (size_t t = rel.NumTuples(); !progress && t-- > 0;) {
        Relation smaller(rel.name(), rel.arity());
        for (size_t r = 0; r < rel.NumTuples(); ++r) {
          if (r == t) continue;
          if (rel.arity() == 0) {
            smaller.AddNullary();
          } else {
            smaller.AddRow(rel.RowData(r));
          }
        }
        Database cand_db = cur.db;
        cand_db.PutRelation(std::move(smaller));
        std::vector<std::string> mm;
        if (fails(cur.query, cand_db, &mm)) {
          cur.db = std::move(cand_db);
          cur.mismatches = std::move(mm);
          ++cur.steps;
          progress = true;
        }
      }
    }

    // 6. Drop relations no atom references (free cleanup — still
    // re-checked, since the domain or service paths could conceivably
    // care).
    if (!progress) {
      const std::set<std::string> refs = ReferencedRelations(cur.query);
      if (refs.size() < cur.db.relations().size()) {
        Database cand_db = KeepRelations(cur.db, refs);
        std::vector<std::string> mm;
        if (fails(cur.query, cand_db, &mm)) {
          cur.db = std::move(cand_db);
          cur.mismatches = std::move(mm);
          ++cur.steps;
          progress = true;
        }
      }
    }
  }
  return cur;
}

}  // namespace fgq
