#include "fgq/check/check.h"

#include <utility>

#include "fgq/check/regress.h"

namespace fgq {

CheckSummary RunSeedRange(const CheckOptions& opt) {
  std::vector<FuzzClass> classes = opt.classes;
  if (classes.empty()) {
    for (size_t c = 0; c < kNumFuzzClasses; ++c) {
      classes.push_back(static_cast<FuzzClass>(c));
    }
  }

  CheckSummary summary;
  for (size_t i = 0; i < opt.num_seeds; ++i) {
    const uint64_t seed = opt.first_seed + i;
    const FuzzClass cls = classes[i % classes.size()];
    DiffReport report = RunDifferentialCase(seed, cls, opt.fuzz);
    ++summary.cases_run;
    summary.paths_diffed += report.paths_run;
    if (report.reference_skipped) ++summary.skipped;
    if (report.ok()) continue;

    if (opt.shrink) {
      ShrinkResult shrunk =
          ShrinkCase(report.query, report.db, opt.fuzz);
      if (!shrunk.mismatches.empty()) {
        report.query = std::move(shrunk.query);
        report.db = std::move(shrunk.db);
        report.mismatches = std::move(shrunk.mismatches);
      }
    }
    if (!opt.regress_dir.empty()) {
      std::vector<std::string> comments;
      comments.push_back("found by fuzz_check: seed " +
                         std::to_string(report.seed) + " class " +
                         FuzzClassName(report.cls));
      for (const std::string& m : report.mismatches) {
        // First line only: mismatch messages can embed relation dumps.
        comments.push_back(m.substr(0, m.find('\n')));
      }
      const std::string path = opt.regress_dir + "/seed" +
                               std::to_string(report.seed) + "-" +
                               FuzzClassName(report.cls) + ".fgqr";
      WriteRegressionCase(path, report.query, report.db, comments)
          .ok();  // Best effort: the failure is reported either way.
    }
    summary.failures.push_back(std::move(report));
  }
  return summary;
}

std::string CheckSummary::ToString() const {
  std::string out = std::to_string(cases_run) + " cases, " +
                    std::to_string(paths_diffed) + " paths diffed, " +
                    std::to_string(skipped) + " skipped, " +
                    std::to_string(failures.size()) + " failures\n";
  for (const DiffReport& f : failures) {
    out += "--------\n" + f.ToString();
  }
  return out;
}

Status ReplayRegressionDir(const std::string& dir, const FuzzOptions& opt,
                           std::string* report) {
  std::string log;
  size_t failures = 0;
  for (const std::string& path : ListRegressionFiles(dir)) {
    Result<RegressionCase> loaded = LoadRegressionCase(path);
    if (!loaded.ok()) {
      ++failures;
      log += path + ": " + loaded.status().ToString() + "\n";
      continue;
    }
    size_t paths = 0;
    bool skipped = false;
    const std::vector<std::string> mismatches =
        DiffCase(loaded.value().query, loaded.value().db, opt, &paths,
                 &skipped);
    if (skipped) {
      ++failures;
      log += loaded.value().name +
             ": reference refused (case too large for the regression "
             "corpus)\n";
      continue;
    }
    if (!mismatches.empty()) {
      ++failures;
      log += loaded.value().name + " (" + std::to_string(paths) +
             " paths):\n";
      for (const std::string& m : mismatches) log += "  " + m + "\n";
    }
  }
  if (report) *report = log;
  if (failures > 0) {
    return Status::Internal(std::to_string(failures) +
                            " regression case(s) failed:\n" + log);
  }
  return Status::OK();
}

}  // namespace fgq
