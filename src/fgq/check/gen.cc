#include "fgq/check/gen.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "fgq/eval/engine.h"

namespace fgq {

namespace {

std::string VarName(size_t i) { return "v" + std::to_string(i); }

template <typename T>
void Shuffle(std::vector<T>* v, Rng* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    std::swap((*v)[i - 1], (*v)[rng->Below(i)]);
  }
}

/// A random positive body whose hypergraph has a join tree by
/// construction: atom i's old variables all come from one earlier atom.
struct Body {
  std::vector<Atom> atoms;
  std::vector<std::string> vars;            // Distinct, first-use order.
  std::vector<std::vector<std::string>> atom_vars;  // Per atom.
};

Body GenBody(const FuzzOptions& opt, Rng* rng, size_t max_atoms) {
  Body b;
  const size_t natoms = 1 + rng->Below(max_atoms);
  for (size_t i = 0; i < natoms; ++i) {
    Atom a;
    size_t arity;
    if (i > 0 && rng->Chance(opt.self_join_prob)) {
      const Atom& prev = b.atoms[rng->Below(i)];
      a.relation = prev.relation;
      arity = prev.args.size();
    } else {
      a.relation = "R" + std::to_string(i);
      arity = 1 + rng->Below(opt.max_arity);
    }
    // The one earlier atom this atom may share variables with.
    const std::vector<std::string>* base =
        i > 0 ? &b.atom_vars[rng->Below(i)] : nullptr;
    std::vector<std::string> mine;
    for (size_t k = 0; k < arity; ++k) {
      if (rng->Chance(opt.constant_prob)) {
        a.args.push_back(
            Term::Const(static_cast<Value>(rng->Below(
                static_cast<uint64_t>(opt.domain)))));
        continue;
      }
      std::string v;
      if (!mine.empty() && rng->Chance(opt.repeat_var_prob)) {
        v = mine[rng->Below(mine.size())];
      } else if (base != nullptr && !base->empty() &&
                 (b.vars.size() >= opt.max_vars || rng->Chance(0.6))) {
        v = (*base)[rng->Below(base->size())];
      } else if (b.vars.size() < opt.max_vars) {
        v = VarName(b.vars.size());
        b.vars.push_back(v);
      } else if (base != nullptr && !base->empty()) {
        v = (*base)[rng->Below(base->size())];
      } else if (!mine.empty()) {
        v = mine[rng->Below(mine.size())];
      } else if (!b.vars.empty()) {
        v = b.vars[0];  // Last resort keeps the sharing tree-shaped only
                        // for fresh atoms; harmless for atom 0.
      } else {
        v = VarName(0);
        b.vars.push_back(v);
      }
      if (std::find(mine.begin(), mine.end(), v) == mine.end()) {
        mine.push_back(v);
      }
      a.args.push_back(Term::Var(v));
    }
    b.atom_vars.push_back(std::move(mine));
    b.atoms.push_back(std::move(a));
  }
  return b;
}

/// A random head: a shuffled subset of `vars` (possibly empty).
std::vector<std::string> RandomHead(const std::vector<std::string>& vars,
                                    Rng* rng) {
  std::vector<std::string> head;
  for (const std::string& v : vars) {
    if (rng->Chance(0.5)) head.push_back(v);
  }
  Shuffle(&head, rng);
  return head;
}

ConjunctiveQuery MakeQuery(const Body& b, std::vector<std::string> head) {
  return ConjunctiveQuery("Q", std::move(head), b.atoms);
}

bool Classifies(const ConjunctiveQuery& q, QueryClass want) {
  return q.Validate().ok() && Engine::Classify(q) == want;
}

/// Adds 1-2 comparisons over the body's variables. `ops` is the pool of
/// operators to draw from.
void AddComparisons(ConjunctiveQuery* q, const std::vector<Comparison::Op>& ops,
                    const std::vector<std::string>& vars, Rng* rng) {
  const size_t n = 1 + rng->Below(2);
  for (size_t i = 0; i < n; ++i) {
    Comparison c;
    c.lhs = vars[rng->Below(vars.size())];
    c.rhs = vars[rng->Below(vars.size())];
    if (c.lhs == c.rhs) continue;  // x < x / x != x add nothing but noise.
    c.op = ops[rng->Below(ops.size())];
    q->AddComparison(std::move(c));
  }
}

/// Deterministic fallbacks, used when the randomized retry loop fails to
/// land in the target class (rare; keeps generation total).
ConjunctiveQuery Fallback(FuzzClass cls) {
  Atom r0, r1, r2;
  r0.relation = "R0";
  r0.args = {Term::Var("v0"), Term::Var("v1")};
  r1.relation = "R1";
  r1.args = {Term::Var("v1"), Term::Var("v2")};
  r2.relation = "R2";
  r2.args = {Term::Var("v2"), Term::Var("v0")};
  switch (cls) {
    case FuzzClass::kBooleanAcyclic:
      return ConjunctiveQuery("Q", {}, {r0, r1});
    case FuzzClass::kFreeConnex:
      return ConjunctiveQuery("Q", {"v0", "v1"}, {r0});
    case FuzzClass::kGeneralAcyclic:
      return ConjunctiveQuery("Q", {"v0", "v2"}, {r0, r1});
    case FuzzClass::kDisequalities: {
      ConjunctiveQuery q("Q", {"v0", "v2"}, {r0, r1});
      q.AddComparison({"v0", "v2", Comparison::Op::kNotEqual});
      return q;
    }
    case FuzzClass::kOrderComparisons: {
      ConjunctiveQuery q("Q", {"v0", "v2"}, {r0, r1});
      q.AddComparison({"v0", "v2", Comparison::Op::kLess});
      return q;
    }
    case FuzzClass::kNegated: {
      Atom n = r1;
      n.negated = true;
      return ConjunctiveQuery("Q", {"v0"}, {r0, n});
    }
    case FuzzClass::kCyclic:
    case FuzzClass::kUnion:
      return ConjunctiveQuery("Q", {"v0"}, {r0, r1, r2});
  }
  return ConjunctiveQuery("Q", {}, {r0});
}

constexpr int kRetries = 64;

}  // namespace

const char* FuzzClassName(FuzzClass c) {
  switch (c) {
    case FuzzClass::kBooleanAcyclic:
      return "boolean-acyclic";
    case FuzzClass::kFreeConnex:
      return "free-connex";
    case FuzzClass::kGeneralAcyclic:
      return "general-acyclic";
    case FuzzClass::kDisequalities:
      return "disequalities";
    case FuzzClass::kOrderComparisons:
      return "order-comparisons";
    case FuzzClass::kNegated:
      return "negated";
    case FuzzClass::kCyclic:
      return "cyclic";
    case FuzzClass::kUnion:
      return "union";
  }
  return "unknown";
}

bool FuzzClassFromName(const std::string& name, FuzzClass* out) {
  for (size_t i = 0; i < kNumFuzzClasses; ++i) {
    FuzzClass c = static_cast<FuzzClass>(i);
    if (name == FuzzClassName(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

ConjunctiveQuery GenerateFuzzQuery(FuzzClass cls, const FuzzOptions& opt,
                                   Rng* rng) {
  for (int attempt = 0; attempt < kRetries; ++attempt) {
    Body b = GenBody(opt, rng, opt.max_atoms);
    switch (cls) {
      case FuzzClass::kBooleanAcyclic: {
        ConjunctiveQuery q = MakeQuery(b, {});
        if (Classifies(q, QueryClass::kBooleanAcyclic)) return q;
        break;
      }
      case FuzzClass::kFreeConnex: {
        ConjunctiveQuery q = MakeQuery(b, RandomHead(b.vars, rng));
        if (Classifies(q, QueryClass::kFreeConnexAcyclic)) return q;
        // A quantifier-free acyclic query is always free-connex.
        q = MakeQuery(b, b.vars);
        if (Classifies(q, QueryClass::kFreeConnexAcyclic)) return q;
        break;
      }
      case FuzzClass::kGeneralAcyclic: {
        ConjunctiveQuery q = MakeQuery(b, RandomHead(b.vars, rng));
        if (Classifies(q, QueryClass::kGeneralAcyclic)) return q;
        break;
      }
      case FuzzClass::kDisequalities:
      case FuzzClass::kOrderComparisons: {
        if (b.vars.size() < 2) break;
        ConjunctiveQuery q = MakeQuery(b, RandomHead(b.vars, rng));
        if (cls == FuzzClass::kDisequalities) {
          AddComparisons(&q, {Comparison::Op::kNotEqual}, b.vars, rng);
          if (Classifies(q, QueryClass::kAcyclicDisequalities)) return q;
        } else {
          AddComparisons(&q,
                         {Comparison::Op::kLess, Comparison::Op::kLessEq,
                          Comparison::Op::kNotEqual},
                         b.vars, rng);
          if (Classifies(q, QueryClass::kAcyclicOrderComparisons)) return q;
        }
        break;
      }
      case FuzzClass::kNegated: {
        ConjunctiveQuery q = MakeQuery(b, RandomHead(b.vars, rng));
        const size_t nneg = 1 + rng->Below(2);
        for (size_t i = 0; i < nneg; ++i) {
          Atom n;
          n.negated = true;
          if (rng->Chance(0.3)) {
            // Negate an existing symbol: tuples both asserted and denied.
            const Atom& pos = b.atoms[rng->Below(b.atoms.size())];
            n.relation = pos.relation;
            n.args.resize(pos.args.size());
          } else {
            n.relation = "N" + std::to_string(i);
            n.args.resize(1 + rng->Below(opt.max_arity));
          }
          for (Term& t : n.args) {
            if (rng->Chance(opt.constant_prob)) {
              t = Term::Const(static_cast<Value>(
                  rng->Below(static_cast<uint64_t>(opt.domain))));
            } else if (!b.vars.empty() && rng->Chance(0.85)) {
              t = Term::Var(b.vars[rng->Below(b.vars.size())]);
            } else {
              // A variable constrained only by the negated atom: it
              // ranges over the whole declared domain.
              t = Term::Var("w" + std::to_string(i));
            }
          }
          q.AddAtom(std::move(n));
        }
        if (rng->Chance(0.25) && b.vars.size() >= 2) {
          AddComparisons(&q, {Comparison::Op::kNotEqual}, b.vars, rng);
        }
        if (q.Validate().ok() &&
            Engine::Classify(q) == QueryClass::kNegated) {
          return q;
        }
        break;
      }
      case FuzzClass::kCyclic: {
        if (b.vars.size() < 3) break;
        // Close a cycle over three body variables with a fresh atom.
        Atom c;
        c.relation = "C0";
        const std::string& x = b.vars[0];
        const std::string& y = b.vars[1];
        const std::string& z = b.vars[2];
        Atom c2;
        c.args = {Term::Var(x), Term::Var(y)};
        c2.relation = "C1";
        c2.args = {Term::Var(y), Term::Var(z)};
        Atom c3;
        c3.relation = "C2";
        c3.args = {Term::Var(z), Term::Var(x)};
        Body bb = b;
        bb.atoms.push_back(c);
        bb.atoms.push_back(c2);
        bb.atoms.push_back(c3);
        ConjunctiveQuery q = MakeQuery(bb, RandomHead(b.vars, rng));
        if (Classifies(q, QueryClass::kCyclic)) return q;
        break;
      }
      case FuzzClass::kUnion:
        break;  // Handled by GenerateFuzzUnion.
    }
  }
  return Fallback(cls);
}

UnionQuery GenerateFuzzUnion(const FuzzOptions& opt, Rng* rng) {
  UnionQuery u;
  u.name = "Q";
  const size_t arity = 1 + rng->Below(2);
  const size_t n =
      2 + rng->Below(opt.max_disjuncts > 2 ? opt.max_disjuncts - 1 : 1);
  // Relation arities already used, so disjuncts can share symbols (the
  // union-extension search needs shared symbols to find providers).
  std::map<std::string, size_t> arities;
  for (size_t d = 0; d < n && u.disjuncts.size() < n; ++d) {
    for (int attempt = 0; attempt < kRetries; ++attempt) {
      Body b = GenBody(opt, rng, 3);
      // Rename relations: share an existing symbol when arity matches.
      for (Atom& a : b.atoms) {
        std::vector<std::string> candidates;
        for (const auto& [name, ar] : arities) {
          if (ar == a.args.size()) candidates.push_back(name);
        }
        if (!candidates.empty() && rng->Chance(0.5)) {
          a.relation = candidates[rng->Below(candidates.size())];
        } else {
          a.relation = "S" + std::to_string(arities.size());
          arities[a.relation] = a.args.size();
        }
      }
      if (b.vars.size() < arity) continue;
      std::vector<std::string> head(b.vars.begin(),
                                    b.vars.begin() +
                                        static_cast<ptrdiff_t>(arity));
      Shuffle(&head, rng);
      ConjunctiveQuery q("Q", head, b.atoms);
      if (!q.Validate().ok() || Engine::Classify(q) == QueryClass::kCyclic) {
        continue;
      }
      u.disjuncts.push_back(std::move(q));
      break;
    }
  }
  if (u.disjuncts.size() < 2) {
    // Deterministic two-disjunct fallback (both free-connex).
    Atom a;
    a.relation = "S0";
    a.args = {Term::Var("v0"), Term::Var("v1")};
    Atom b;
    b.relation = "S1";
    b.args = {Term::Var("v0"), Term::Var("v1")};
    u.disjuncts.clear();
    u.disjuncts.push_back(ConjunctiveQuery("Q", {"v0"}, {a}));
    u.disjuncts.push_back(ConjunctiveQuery("Q", {"v1"}, {b}));
  }
  return u;
}

Database GenerateFuzzDatabase(const UnionQuery& u, const FuzzOptions& opt,
                              Rng* rng) {
  // One relation per distinct symbol; arity from the first occurrence.
  std::map<std::string, size_t> arities;
  for (const ConjunctiveQuery& q : u.disjuncts) {
    for (const Atom& a : q.atoms()) {
      arities.emplace(a.relation, a.args.size());
    }
  }
  Database db;
  const Value hot = std::max<Value>(1, opt.domain / 3);
  for (const auto& [name, arity] : arities) {
    Relation rel(name, arity);
    if (!rng->Chance(opt.empty_relation_prob)) {
      if (arity > 0 && rng->Chance(opt.heavy_dup_prob)) {
        // Key-collapsed relation: one column pinned to a single value, the
        // rest drawn from a two-value set, at full size. Any index or key
        // set built over it degenerates to a handful of fat posting lists.
        const size_t pinned = rng->Below(arity);
        const Value pin =
            static_cast<Value>(rng->Below(static_cast<uint64_t>(opt.domain)));
        const Value tiny =
            std::min<Value>(opt.domain, 2);
        Tuple t(arity);
        for (size_t i = 0; i < opt.max_tuples; ++i) {
          for (size_t c = 0; c < arity; ++c) {
            t[c] = c == pinned
                       ? pin
                       : static_cast<Value>(
                             rng->Below(static_cast<uint64_t>(tiny)));
          }
          rel.Add(t);
        }
      } else {
        const size_t tuples = 1 + rng->Below(opt.max_tuples);
        Tuple t(arity);
        for (size_t i = 0; i < tuples; ++i) {
          for (size_t c = 0; c < arity; ++c) {
            t[c] = rng->Chance(opt.skew)
                       ? static_cast<Value>(
                             rng->Below(static_cast<uint64_t>(hot)))
                       : static_cast<Value>(
                             rng->Below(static_cast<uint64_t>(opt.domain)));
          }
          rel.Add(t);
        }
      }
      rel.SortDedup();
    }
    db.PutRelation(std::move(rel));
  }
  // Pin the domain: variables constrained only by negated atoms or
  // comparisons range over [0, DomainSize()) in every evaluator, so the
  // domain must not depend on which values happened to be generated.
  db.DeclareDomainSize(opt.domain);
  return db;
}

}  // namespace fgq
