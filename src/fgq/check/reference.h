#ifndef FGQ_CHECK_REFERENCE_H_
#define FGQ_CHECK_REFERENCE_H_

#include "fgq/db/database.h"
#include "fgq/query/cq.h"
#include "fgq/util/status.h"

/// \file reference.h
/// The obviously-correct reference semantics.
///
/// ReferenceEvaluate enumerates *every* assignment of the query's
/// variables over [0, db.DomainSize()) and keeps the ones under which all
/// positive atoms hold, no negated atom holds, and every comparison is
/// satisfied — a direct transcription of the satisfaction relation in
/// Section 2 of the paper, with no indexes, no join ordering, no
/// reduction, and therefore no room for the bugs the optimized paths can
/// have. The cost is Theta(domain^variables); the fuzzer sizes its inputs
/// so this stays feasible, and the evaluator refuses (Unsupported) rather
/// than run past its assignment budget, so a misconfigured run can never
/// silently "check" anything it did not fully enumerate.
///
/// Every optimized path in the library — the Engine dispatch targets, the
/// three enumerators, the counting DP, the serving layer — is diffed
/// against this function by fgq/check/differ.h.

namespace fgq {

/// phi(D) by exhaustive assignment enumeration. Answers are sorted and
/// deduplicated (set semantics, matching every other evaluator). Fails
/// with Unsupported when domain^|Variables()| exceeds `assignment_limit`,
/// and NotFound when an atom references a missing relation.
Result<Relation> ReferenceEvaluate(const ConjunctiveQuery& q,
                                   const Database& db,
                                   size_t assignment_limit = 4'000'000);

/// Union semantics: the sorted, deduplicated union of the disjuncts'
/// reference answers (all disjuncts share one head arity).
Result<Relation> ReferenceEvaluateUnion(const UnionQuery& u,
                                        const Database& db,
                                        size_t assignment_limit = 4'000'000);

}  // namespace fgq

#endif  // FGQ_CHECK_REFERENCE_H_
