#ifndef FGQ_CHECK_GEN_H_
#define FGQ_CHECK_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fgq/db/database.h"
#include "fgq/query/cq.h"
#include "fgq/util/random.h"

/// \file gen.h
/// Random query and database generation for the differential fuzzer.
///
/// Every generator is a pure function of its Rng: the same seed always
/// yields the same (query, database) pair on every platform, so a failing
/// case is reproducible from its seed alone. Queries are generated *per
/// structural class* — the paper assigns each class its own algorithm
/// (semijoin sweep, constant-delay plan, Yannakakis, witness elimination,
/// backtracking), and a fuzzer that only ever produced easy free-connex
/// queries would leave most of those code paths untested.
///
/// Acyclic bodies are built tree-shaped: each new atom shares variables
/// with exactly one previously generated atom, which guarantees a join
/// tree exists (GYO succeeds) by construction. Class-specific decoration
/// (head choice, comparisons, negated atoms, extra cyclic atoms) follows,
/// and the result is re-checked against Engine::Classify — with a bounded
/// retry loop — so each generated query provably lands in its target
/// class.

namespace fgq {

/// The query populations the fuzzer draws from. The first seven mirror
/// fgq::QueryClass (every Engine dispatch target); kUnion additionally
/// exercises the UCQ union-extension enumerator.
enum class FuzzClass {
  kBooleanAcyclic = 0,
  kFreeConnex,
  kGeneralAcyclic,
  kDisequalities,
  kOrderComparisons,
  kNegated,
  kCyclic,
  kUnion,
};

inline constexpr size_t kNumFuzzClasses = 8;

/// Stable name used in reports and --classes flags ("free-connex", ...).
const char* FuzzClassName(FuzzClass c);

/// Parses a FuzzClassName back; returns false for unknown names.
bool FuzzClassFromName(const std::string& name, FuzzClass* out);

/// Size and shape knobs for generated cases. The defaults keep the
/// brute-force reference evaluator comfortably inside its assignment
/// budget (domain^max_vars about 50k) while still producing empty
/// relations, constants, repeated variables, self-joins and skewed data.
struct FuzzOptions {
  size_t max_atoms = 4;     ///< Positive atoms per conjunctive query.
  size_t max_arity = 3;     ///< Max columns per relation.
  size_t max_vars = 6;      ///< Distinct variables per disjunct.
  Value domain = 6;         ///< Values are drawn from [0, domain).
  size_t max_tuples = 14;   ///< Max tuples per generated relation.
  double skew = 0.4;        ///< P(tuple drawn from the hot third of the domain).
  double constant_prob = 0.12;   ///< P(an atom argument is a constant).
  double repeat_var_prob = 0.2;  ///< P(reusing a variable already in the atom).
  double self_join_prob = 0.15;  ///< P(an atom reuses an earlier relation).
  double empty_relation_prob = 0.08;  ///< P(a relation gets zero tuples).
  /// P(a relation is generated key-collapsed: one random column pinned to
  /// a single value and the rest drawn from a two-value set). Maximizes
  /// duplicate keys and hash collisions — the worst case for the
  /// open-addressing CSR index and the flat semijoin key sets.
  double heavy_dup_prob = 0.15;
  size_t max_disjuncts = 3;      ///< Disjuncts per generated union query.
  /// Assignment budget of the reference evaluator; cases whose
  /// domain^vars exceeds it are skipped (never silently mis-checked).
  size_t reference_limit = 4'000'000;
  /// Thread count of the parallel Engine path in the differential runner.
  int parallel_threads = 8;
  /// Include the QueryService paths (cold / cache-hit / post-mutation /
  /// count verb) in the differential runner.
  bool include_service = true;
  /// Include the fgq::net loopback paths (rows / count / enumerate-limit
  /// verbs through a real socket server) in the differential runner. Off
  /// by default: a server per case costs a TCP round trip and thread
  /// startup; the corpus replay and the dedicated net fuzz turn it on.
  bool include_net = false;
};

/// Generates one conjunctive query in the target class. The result always
/// satisfies Validate() and Engine::Classify maps it to the corresponding
/// QueryClass (kUnion is not a valid argument here; see GenerateFuzzUnion).
ConjunctiveQuery GenerateFuzzQuery(FuzzClass cls, const FuzzOptions& opt,
                                   Rng* rng);

/// Generates a multi-disjunct union of plain acyclic queries sharing one
/// head arity. Disjuncts are biased toward free-connex but may require
/// union extension (Definition 4.12) to enumerate.
UnionQuery GenerateFuzzUnion(const FuzzOptions& opt, Rng* rng);

/// Generates a database providing every relation mentioned by `u` (one
/// entry per distinct relation symbol, arity taken from its first
/// occurrence), with skewed value distribution and occasional empty
/// relations. Declares the domain so that variables constrained only by
/// negated atoms or comparisons range identically in every evaluator.
Database GenerateFuzzDatabase(const UnionQuery& u, const FuzzOptions& opt,
                              Rng* rng);

}  // namespace fgq

#endif  // FGQ_CHECK_GEN_H_
