#ifndef FGQ_CHECK_DIFFER_H_
#define FGQ_CHECK_DIFFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fgq/check/gen.h"
#include "fgq/db/database.h"
#include "fgq/query/cq.h"

/// \file differ.h
/// The differential runner: one (query, database) pair, every applicable
/// evaluation path, all diffed against the brute-force reference.
///
/// For a conjunctive query the paths are: the Engine facade at 1 thread
/// and at FuzzOptions::parallel_threads threads, Engine::Count,
/// Engine::Enumerate, the linear-delay enumerator (plain ACQs), the
/// constant-delay enumerator (free-connex ACQs), and — when
/// include_service is set — the QueryService cold path, the cache-hit
/// path, the count verb, and the post-mutation (invalidated-cache) path.
/// For a multi-disjunct union the union enumerator and the disjunct-wise
/// Engine union are diffed against the union reference, and each disjunct
/// additionally runs through the serial Engine on its own.
///
/// Enumerator paths are drained with a budget (a runaway enumerator is
/// reported as a mismatch, not an endless loop) and checked for repeated
/// answers (the enumerators' no-repetition contract).

namespace fgq {

/// The outcome of one differential case.
struct DiffReport {
  uint64_t seed = 0;
  FuzzClass cls = FuzzClass::kFreeConnex;
  /// The case under test; one disjunct for conjunctive classes.
  UnionQuery query;
  Database db;
  /// Human-readable descriptions of every disagreement (empty = pass).
  std::vector<std::string> mismatches;
  /// Evaluation paths actually executed and compared.
  size_t paths_run = 0;
  /// True when the reference refused (assignment budget); nothing was
  /// checked. Never happens with default FuzzOptions sizes.
  bool reference_skipped = false;

  bool ok() const { return mismatches.empty(); }
  /// Multi-line summary: query, database sizes, mismatches.
  std::string ToString() const;
};

/// Diffs every applicable path on a fixed case. `paths_run` and
/// `reference_skipped` (both optional) report coverage.
std::vector<std::string> DiffCase(const UnionQuery& u, const Database& db,
                                  const FuzzOptions& opt,
                                  size_t* paths_run = nullptr,
                                  bool* reference_skipped = nullptr);

/// Generates the (query, db) pair for (seed, cls) and diffs it. The
/// generation is a pure function of the seed, so a failing report is
/// reproducible from (seed, cls, opt) alone.
DiffReport RunDifferentialCase(uint64_t seed, FuzzClass cls,
                               const FuzzOptions& opt);

}  // namespace fgq

#endif  // FGQ_CHECK_DIFFER_H_
