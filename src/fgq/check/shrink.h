#ifndef FGQ_CHECK_SHRINK_H_
#define FGQ_CHECK_SHRINK_H_

#include <cstddef>
#include <string>
#include <vector>

#include "fgq/check/differ.h"

/// \file shrink.h
/// Greedy shrinking of failing differential cases.
///
/// A raw fuzzer counterexample carries noise: atoms, tuples and variables
/// that have nothing to do with the disagreement. ShrinkCase repeatedly
/// tries structure-removing transformations — drop a disjunct, drop an
/// atom, drop a comparison, merge two variables, drop a tuple, drop an
/// unreferenced relation — and keeps a transformation exactly when the
/// reduced case *still fails* DiffCase. There is no semantics-preservation
/// argument to make (and none is needed): any candidate is re-validated
/// and re-diffed from scratch, so the only thing a kept step can do is
/// make the repro smaller. The result is what gets written to
/// tests/regress/ (see regress.h).

namespace fgq {

/// A shrunk failing case.
struct ShrinkResult {
  UnionQuery query;
  Database db;
  /// Mismatches of the final (shrunk) case — never empty when the input
  /// case failed.
  std::vector<std::string> mismatches;
  /// Accepted reductions.
  size_t steps = 0;
};

/// Greedily shrinks a failing case. `u`/`db` must fail DiffCase under
/// `opt` (otherwise the input is returned unchanged with empty
/// mismatches). At most `max_attempts` candidate evaluations are spent.
ShrinkResult ShrinkCase(const UnionQuery& u, const Database& db,
                        const FuzzOptions& opt, size_t max_attempts = 600);

}  // namespace fgq

#endif  // FGQ_CHECK_SHRINK_H_
