#include "fgq/check/regress.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "fgq/query/parser.h"

namespace fgq {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

Result<Value> ParseValue(const std::string& tok, size_t line_no) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (errno == ERANGE || end != tok.c_str() + tok.size() || tok.empty()) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": bad integer '" + tok + "'");
  }
  return static_cast<Value>(v);
}

}  // namespace

Result<RegressionCase> LoadRegressionCase(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);

  RegressionCase out;
  out.name = std::filesystem::path(path).stem().string();

  Relation* current = nullptr;  // Relation whose tuple lines we are in.
  Value declared_domain = -1;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string t = Trim(line);
    if (t.empty() || t[0] == '#') continue;

    if (t.rfind("domain ", 0) == 0) {
      FGQ_ASSIGN_OR_RETURN(declared_domain, ParseValue(t.substr(7), line_no));
      current = nullptr;
      continue;
    }
    if (t.rfind("query ", 0) == 0) {
      FGQ_ASSIGN_OR_RETURN(ConjunctiveQuery q,
                           ParseConjunctiveQuery(t.substr(6)));
      if (out.query.disjuncts.empty()) out.query.name = q.name();
      out.query.disjuncts.push_back(std::move(q));
      current = nullptr;
      continue;
    }
    if (t.rfind("rel ", 0) == 0) {
      std::istringstream hdr(t.substr(4));
      std::string name;
      size_t arity = 0;
      if (!(hdr >> name >> arity)) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": expected 'rel NAME ARITY'");
      }
      if (out.db.Has(name)) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": duplicate relation " + name);
      }
      out.db.PutRelation(Relation(name, arity));
      FGQ_ASSIGN_OR_RETURN(Relation * rel, out.db.FindMutable(name));
      current = rel;
      continue;
    }

    // A tuple line of the current relation.
    if (current == nullptr) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": tuple outside any 'rel' block: " + t);
    }
    if (t == "()") {
      if (current->arity() != 0) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": '()' marker in arity-" +
            std::to_string(current->arity()) + " relation " +
            current->name());
      }
      current->AddNullary();
      continue;
    }
    std::istringstream row(t);
    Tuple tuple;
    std::string tok;
    while (row >> tok) {
      FGQ_ASSIGN_OR_RETURN(Value v, ParseValue(tok, line_no));
      tuple.push_back(v);
    }
    if (tuple.size() != current->arity()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": tuple of arity " +
          std::to_string(tuple.size()) + " in arity-" +
          std::to_string(current->arity()) + " relation " + current->name());
    }
    current->Add(tuple);
  }

  if (out.query.disjuncts.empty()) {
    return Status::ParseError(path + ": no 'query' line");
  }
  if (declared_domain >= 0) out.db.DeclareDomainSize(declared_domain);
  FGQ_RETURN_NOT_OK(out.query.Validate());
  return out;
}

Status WriteRegressionCase(const std::string& path, const UnionQuery& u,
                           const Database& db,
                           const std::vector<std::string>& comments) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  for (const std::string& c : comments) out << "# " << c << "\n";
  out << "domain " << db.DomainSize() << "\n";
  for (const ConjunctiveQuery& q : u.disjuncts) {
    out << "query " << q.ToString() << "\n";
  }
  for (const auto& [name, rel] : db.relations()) {
    out << "rel " << name << " " << rel.arity() << "\n";
    for (size_t r = 0; r < rel.NumTuples(); ++r) {
      if (rel.arity() == 0) {
        out << "()\n";
        continue;
      }
      for (size_t c = 0; c < rel.arity(); ++c) {
        if (c) out << " ";
        out << rel.Row(r)[c];
      }
      out << "\n";
    }
  }
  out.flush();
  return out ? Status::OK()
             : Status::InvalidArgument("short write to " + path);
}

std::vector<std::string> ListRegressionFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".fgqr") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace fgq
