#include "fgq/check/reference.h"

#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "fgq/util/hash.h"

namespace fgq {

namespace {

/// A positive or negated atom resolved for membership testing: the
/// relation's tuples in a hash set, plus per-argument slots (variable
/// index or constant).
struct ResolvedAtom {
  bool negated = false;
  std::unordered_set<Tuple, VecHash> tuples;
  /// For each argument: >= 0 is an index into the assignment vector,
  /// < 0 encodes the constant -(c + 1).
  std::vector<int64_t> slots;
};

}  // namespace

Result<Relation> ReferenceEvaluate(const ConjunctiveQuery& q,
                                   const Database& db,
                                   size_t assignment_limit) {
  FGQ_RETURN_NOT_OK(q.Validate());
  const std::vector<std::string> vars = q.Variables();
  std::map<std::string, size_t> var_index;
  for (size_t i = 0; i < vars.size(); ++i) var_index[vars[i]] = i;

  const Value domain = db.DomainSize();
  // domain^|vars| with overflow saturation.
  size_t total = 1;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (domain <= 0) {
      total = 0;
      break;
    }
    if (total > assignment_limit / static_cast<size_t>(domain) + 1) {
      return Status::Unsupported(
          "reference evaluation would enumerate more than " +
          std::to_string(assignment_limit) + " assignments");
    }
    total *= static_cast<size_t>(domain);
  }
  if (total > assignment_limit) {
    return Status::Unsupported(
        "reference evaluation would enumerate more than " +
        std::to_string(assignment_limit) + " assignments");
  }

  std::vector<ResolvedAtom> atoms;
  for (const Atom& a : q.atoms()) {
    FGQ_ASSIGN_OR_RETURN(const Relation* rel, db.Find(a.relation));
    if (rel->arity() != a.args.size()) {
      return Status::InvalidArgument("atom " + a.ToString() + " has arity " +
                                     std::to_string(a.args.size()) +
                                     " but relation arity is " +
                                     std::to_string(rel->arity()));
    }
    ResolvedAtom ra;
    ra.negated = a.negated;
    for (size_t r = 0; r < rel->NumTuples(); ++r) {
      ra.tuples.insert(rel->Row(r).ToTuple());
    }
    for (const Term& t : a.args) {
      ra.slots.push_back(t.is_var()
                             ? static_cast<int64_t>(var_index.at(t.var))
                             : -(t.constant + 1));
    }
    atoms.push_back(std::move(ra));
  }
  std::vector<std::pair<size_t, size_t>> comps;  // (lhs idx, rhs idx)
  for (const Comparison& c : q.comparisons()) {
    comps.push_back({var_index.at(c.lhs), var_index.at(c.rhs)});
  }

  Relation out(q.name(), q.head().size());
  std::vector<size_t> head_idx;
  for (const std::string& h : q.head()) head_idx.push_back(var_index.at(h));

  Tuple assign(vars.size(), 0);
  Tuple probe;
  Tuple answer(head_idx.size());
  for (size_t n = 0; n < total; ++n) {
    // Decode the n-th assignment (odometer in base `domain`).
    size_t rem = n;
    for (size_t i = 0; i < assign.size(); ++i) {
      assign[i] = static_cast<Value>(rem % static_cast<size_t>(domain));
      rem /= static_cast<size_t>(domain);
    }
    bool sat = true;
    for (const ResolvedAtom& ra : atoms) {
      probe.clear();
      for (int64_t s : ra.slots) {
        probe.push_back(s >= 0 ? assign[static_cast<size_t>(s)] : -(s + 1));
      }
      const bool present = ra.tuples.count(probe) > 0;
      if (present == ra.negated) {
        sat = false;
        break;
      }
    }
    if (!sat) continue;
    for (size_t c = 0; c < comps.size() && sat; ++c) {
      sat = q.comparisons()[c].Holds(assign[comps[c].first],
                                     assign[comps[c].second]);
    }
    if (!sat) continue;
    if (head_idx.empty()) {
      out.AddNullary();
    } else {
      for (size_t i = 0; i < head_idx.size(); ++i) {
        answer[i] = assign[head_idx[i]];
      }
      out.Add(answer);
    }
  }
  out.SortDedup();
  return out;
}

Result<Relation> ReferenceEvaluateUnion(const UnionQuery& u,
                                        const Database& db,
                                        size_t assignment_limit) {
  FGQ_RETURN_NOT_OK(u.Validate());
  Relation out(u.name, u.arity());
  for (const ConjunctiveQuery& q : u.disjuncts) {
    FGQ_ASSIGN_OR_RETURN(Relation part,
                         ReferenceEvaluate(q, db, assignment_limit));
    out.AppendFrom(part);
  }
  out.SortDedup();
  return out;
}

}  // namespace fgq
