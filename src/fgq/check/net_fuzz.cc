#include "fgq/check/net_fuzz.h"

#include <algorithm>

#include "fgq/net/protocol.h"
#include "fgq/util/random.h"

namespace fgq {
namespace check {

namespace {

using net::FrameReader;
using net::Request;
using net::Response;
using net::Verb;

std::string RandomText(Rng* rng, size_t max_len) {
  const size_t len = rng->Below(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng->Below(256)));
  }
  return s;
}

Request RandomRequest(Rng* rng, const FrameFuzzOptions& opt) {
  Request req;
  req.id = rng->Next();
  req.verb = static_cast<Verb>(rng->Below(5));
  req.limit = static_cast<uint32_t>(rng->Next());
  req.deadline_ms = static_cast<uint32_t>(rng->Below(10'000));
  req.query = RandomText(rng, opt.max_query_len);
  return req;
}

Response RandomResponse(Rng* rng, Verb verb, const FrameFuzzOptions& opt) {
  Response resp;
  resp.id = rng->Next();
  resp.status = rng->Chance(0.25) ? static_cast<uint8_t>(rng->Below(11)) : 0;
  resp.flags = static_cast<uint8_t>(rng->Below(4));
  resp.classification = static_cast<uint8_t>(rng->Below(8));
  resp.text = RandomText(rng, 32);
  if (resp.ok()) {
    switch (verb) {
      case Verb::kRows:
      case Verb::kEnumerateLimit: {
        resp.arity = static_cast<uint32_t>(rng->Below(5));
        if (resp.arity == 0) {
          resp.nrows = rng->Below(2);
        } else {
          const size_t rows = rng->Below(opt.max_values / resp.arity + 1);
          resp.nrows = rows;
          for (size_t i = 0; i < rows * resp.arity; ++i) {
            resp.values.push_back(static_cast<Value>(rng->Next()));
          }
        }
        break;
      }
      case Verb::kCount:
        resp.count = RandomText(rng, 24);
        break;
      case Verb::kExplain:
        resp.explain = RandomText(rng, 64);
        break;
      case Verb::kPing:
        break;
    }
  }
  return resp;
}

bool SameRequest(const Request& a, const Request& b) {
  return a.id == b.id && a.verb == b.verb && a.limit == b.limit &&
         a.deadline_ms == b.deadline_ms && a.query == b.query;
}

bool SameResponse(const Response& a, const Response& b) {
  return a.id == b.id && a.status == b.status && a.flags == b.flags &&
         a.classification == b.classification && a.text == b.text &&
         a.arity == b.arity && a.nrows == b.nrows && a.values == b.values &&
         a.count == b.count && a.explain == b.explain;
}

enum class Mutation {
  kNone,         // Round-trip check.
  kTruncate,     // Drop a suffix (incomplete frame / short payload).
  kBitFlip,      // Flip 1..8 random bits anywhere.
  kLengthLie,    // Rewrite the length prefix to a wrong-but-bounded value.
  kOversize,     // Length prefix beyond kMaxFramePayload.
  kGarbage,      // Replace the whole stream with byte soup.
  kSplice,       // Insert garbage bytes at a random offset.
};

/// Feeds `stream` to a FrameReader in random chunks and decodes every
/// complete frame both ways. Exercises the reassembly path and checks the
/// terminal-error contract; returns false only on a contract violation
/// (recorded in *failures).
struct FeedResult {
  size_t frames = 0;
  size_t decoded = 0;
  size_t decode_errors = 0;
  bool reader_error = false;
};

bool FeedStream(const std::string& stream, Verb verb, Rng* rng,
                FeedResult* out, std::vector<std::string>* failures) {
  FrameReader reader;
  size_t off = 0;
  std::vector<uint8_t> payload;
  while (off < stream.size()) {
    const size_t chunk =
        std::min(stream.size() - off, static_cast<size_t>(rng->Below(97) + 1));
    reader.Feed(stream.data() + off, chunk);
    off += chunk;
    for (;;) {
      const FrameReader::State st = reader.Next(&payload);
      if (st == FrameReader::State::kNeedMore) break;
      if (st == FrameReader::State::kError) {
        out->reader_error = true;
        if (reader.error().ok()) {
          failures->push_back("reader in error state with OK status");
          return false;
        }
        // Terminal: the error must persist across further feeds.
        reader.Feed("\0\0\0\0", 4);
        if (reader.Next(&payload) != FrameReader::State::kError) {
          failures->push_back("frame reader error state was not terminal");
          return false;
        }
        return true;
      }
      ++out->frames;
      Request req;
      Response resp;
      const Status rq = DecodeRequest(payload.data(), payload.size(), &req);
      const Status rs =
          DecodeResponse(payload.data(), payload.size(), verb, &resp);
      if (rq.ok() || rs.ok()) {
        ++out->decoded;
      } else {
        ++out->decode_errors;
      }
    }
  }
  return true;
}

}  // namespace

FrameFuzzReport RunFrameFuzz(const FrameFuzzOptions& opt) {
  FrameFuzzReport report;
  Rng rng(opt.seed);
  for (size_t iter = 0; iter < opt.iterations; ++iter) {
    ++report.iterations;
    const Verb verb = static_cast<Verb>(rng.Below(5));
    const bool as_request = rng.Chance(0.5);
    Request req;
    Response resp;
    std::string stream;
    if (as_request) {
      req = RandomRequest(&rng, opt);
      EncodeRequest(req, &stream);
    } else {
      resp = RandomResponse(&rng, verb, opt);
      EncodeResponse(resp, verb, &stream);
    }

    const Mutation mut = static_cast<Mutation>(rng.Below(7));
    switch (mut) {
      case Mutation::kNone:
        break;
      case Mutation::kTruncate:
        if (!stream.empty()) stream.resize(rng.Below(stream.size()));
        break;
      case Mutation::kBitFlip: {
        const size_t flips = rng.Below(8) + 1;
        for (size_t i = 0; i < flips && !stream.empty(); ++i) {
          stream[rng.Below(stream.size())] ^=
              static_cast<char>(1u << rng.Below(8));
        }
        break;
      }
      case Mutation::kLengthLie: {
        // A wrong length that still passes the cap: the payload decoders
        // must catch the mismatch (truncated fields or trailing bytes).
        const uint32_t lie = static_cast<uint32_t>(rng.Below(256));
        stream[4] = static_cast<char>(lie & 0xff);
        stream[5] = static_cast<char>((lie >> 8) & 0xff);
        stream[6] = 0;
        stream[7] = 0;
        // Pad so the lied-about frame can complete.
        stream.append(lie, '\xAA');
        break;
      }
      case Mutation::kOversize: {
        const uint32_t big = net::kMaxFramePayload + 1 +
                             static_cast<uint32_t>(rng.Below(1u << 20));
        stream[4] = static_cast<char>(big & 0xff);
        stream[5] = static_cast<char>((big >> 8) & 0xff);
        stream[6] = static_cast<char>((big >> 16) & 0xff);
        stream[7] = static_cast<char>((big >> 24) & 0xff);
        break;
      }
      case Mutation::kGarbage: {
        stream = RandomText(&rng, 256);
        break;
      }
      case Mutation::kSplice: {
        const std::string junk = RandomText(&rng, 32);
        stream.insert(rng.Below(stream.size() + 1), junk);
        break;
      }
    }

    FeedResult fed;
    if (!FeedStream(stream, verb, &rng, &fed, &report.failures)) continue;
    report.frames_fed += fed.frames;
    report.clean_decodes += fed.decoded;
    report.clean_errors += fed.decode_errors + (fed.reader_error ? 1 : 0);

    if (mut == Mutation::kNone) {
      // The unmutated frame must arrive intact and round-trip exactly.
      if (fed.reader_error || fed.frames != 1) {
        report.failures.push_back(
            "clean frame did not survive the reader (iteration " +
            std::to_string(iter) + ")");
        continue;
      }
      FrameReader reader;
      reader.Feed(stream.data(), stream.size());
      std::vector<uint8_t> payload;
      if (reader.Next(&payload) != FrameReader::State::kFrame) {
        report.failures.push_back("clean frame re-read failed (iteration " +
                                  std::to_string(iter) + ")");
        continue;
      }
      if (as_request) {
        Request back;
        const Status st = DecodeRequest(payload.data(), payload.size(), &back);
        if (!st.ok() || !SameRequest(req, back)) {
          report.failures.push_back("request round-trip mismatch (iteration " +
                                    std::to_string(iter) + ")");
          continue;
        }
      } else {
        Response back;
        const Status st =
            DecodeResponse(payload.data(), payload.size(), verb, &back);
        if (!st.ok() || !SameResponse(resp, back)) {
          report.failures.push_back(
              "response round-trip mismatch (iteration " +
              std::to_string(iter) + ")");
          continue;
        }
      }
      ++report.roundtrips;
    }
    if (mut == Mutation::kOversize && !fed.reader_error) {
      report.failures.push_back(
          "oversized length prefix was not rejected (iteration " +
          std::to_string(iter) + ")");
    }
  }
  return report;
}

std::string FrameFuzzReport::Summary() const {
  std::string s = "net-frame fuzz: " + std::to_string(iterations) +
                  " iterations, " + std::to_string(frames_fed) +
                  " frames, " + std::to_string(roundtrips) +
                  " round-trips, " + std::to_string(clean_decodes) +
                  " decodes, " + std::to_string(clean_errors) +
                  " clean rejections, " + std::to_string(failures.size()) +
                  " failures";
  return s;
}

}  // namespace check
}  // namespace fgq
