#ifndef FGQ_CHECK_REGRESS_H_
#define FGQ_CHECK_REGRESS_H_

#include <string>
#include <vector>

#include "fgq/db/database.h"
#include "fgq/query/cq.h"
#include "fgq/util/status.h"

/// \file regress.h
/// The regression corpus: failing cases the fuzzer found, shrunk and
/// committed to tests/regress/ so they run forever in tier-1.
///
/// One `.fgqr` file holds one case in a line-oriented text format (see
/// tests/regress/README.md):
///
///   # free-form comment lines
///   domain 6
///   query Q(v0, v1) :- R0(v0, v1), R1(v1).
///   query Q(a, b) :- S0(a, b).          (additional disjuncts, unions)
///   rel R0 2
///   0 1
///   2 3
///   rel R1 1
///   4
///
/// `query` lines reuse the library's Datalog syntax (parser.h) so the
/// files round-trip through ConjunctiveQuery::ToString, and a case can be
/// written by hand. Arity-0 relations list one `()` line per marker.

namespace fgq {

/// One committed case.
struct RegressionCase {
  /// File stem, e.g. "ucq-dup-suppression" (used in test failure output).
  std::string name;
  UnionQuery query;
  Database db;
};

/// Parses one `.fgqr` file. Fails with ParseError (malformed line),
/// InvalidArgument (tuple/relation arity disagreement), or NotFound (file
/// unreadable).
Result<RegressionCase> LoadRegressionCase(const std::string& path);

/// Writes a case in the format above, `comments` first (one `# ` line
/// each). Overwrites an existing file.
Status WriteRegressionCase(const std::string& path, const UnionQuery& u,
                           const Database& db,
                           const std::vector<std::string>& comments = {});

/// All `*.fgqr` paths directly under `dir`, sorted by name. An absent or
/// empty directory yields an empty list.
std::vector<std::string> ListRegressionFiles(const std::string& dir);

}  // namespace fgq

#endif  // FGQ_CHECK_REGRESS_H_
