#include "fgq/check/differ.h"

#include <unordered_set>
#include <utility>

#include "fgq/check/reference.h"
#include "fgq/eval/engine.h"
#include "fgq/eval/ucq_enum.h"
#include "fgq/hypergraph/hypergraph.h"
#include "fgq/net/client.h"
#include "fgq/net/server.h"
#include "fgq/serve/query_service.h"
#include "fgq/util/hash.h"

namespace fgq {

namespace {

/// Canonical form for comparison: sorted, deduplicated; arity-0 relations
/// normalize their marker count to 0/1 (set semantics — the reference may
/// have recorded one marker per satisfying assignment).
Relation Canon(const Relation& r) {
  Relation out(r.name(), r.arity());
  if (r.arity() == 0) {
    if (r.NumTuples() > 0) out.AddNullary();
    return out;
  }
  out.AppendFrom(r);
  out.SortDedup();
  return out;
}

bool SameAnswers(const Relation& canon_a, const Relation& canon_b) {
  if (canon_a.arity() != canon_b.arity()) return false;
  if (canon_a.arity() == 0) {
    return (canon_a.NumTuples() > 0) == (canon_b.NumTuples() > 0);
  }
  return canon_a.NumTuples() == canon_b.NumTuples() &&
         canon_a.raw() == canon_b.raw();
}

std::string DescribeDiff(const std::string& path, const Relation& expected,
                         const Relation& actual) {
  std::string msg = path + ": expected " +
                    std::to_string(expected.NumTuples()) + " answers, got " +
                    std::to_string(actual.NumTuples());
  if (expected.NumTuples() <= 24 && actual.NumTuples() <= 24) {
    msg += "\n  expected: " + expected.ToString(24) +
           "\n  actual:   " + actual.ToString(24);
  }
  return msg;
}

/// Collects mismatches for one fixed case.
class CaseDiffer {
 public:
  CaseDiffer(const Database& db, const FuzzOptions& opt,
             std::vector<std::string>* out)
      : db_(db), opt_(opt), out_(out) {}

  size_t paths_run() const { return paths_run_; }

  void Check(const std::string& path, const Relation& reference,
             const Result<Relation>& actual) {
    ++paths_run_;
    if (!actual.ok()) {
      out_->push_back(path + ": failed where the reference succeeded: " +
                      actual.status().ToString());
      return;
    }
    Relation canon = Canon(actual.value());
    if (!SameAnswers(reference, canon)) {
      out_->push_back(DescribeDiff(path, reference, canon));
    }
  }

  /// Drains an enumerator with a budget and a repetition check.
  Result<Relation> Drain(AnswerEnumerator* e, size_t arity,
                         size_t reference_count, const std::string& path) {
    Relation out("drained", arity);
    std::unordered_set<Tuple, VecHash> seen;
    const size_t budget = 4 * reference_count + 64;
    Tuple t;
    size_t produced = 0;
    while (e->Next(&t)) {
      if (++produced > budget) {
        return Status::Internal(path + ": enumerator exceeded " +
                                std::to_string(budget) +
                                " answers (runaway or cyclic stream)");
      }
      if (!seen.insert(t).second) {
        return Status::Internal(path + ": repeated answer (violates the "
                                       "no-repetition contract)");
      }
      if (arity == 0) {
        out.AddNullary();
      } else {
        out.Add(t);
      }
    }
    return out;
  }

  void CheckEnumerator(const std::string& path, const Relation& reference,
                       Result<std::unique_ptr<AnswerEnumerator>> e) {
    ++paths_run_;
    if (!e.ok()) {
      out_->push_back(path + ": factory failed where the reference "
                             "succeeded: " + e.status().ToString());
      return;
    }
    Result<Relation> drained =
        Drain(e.value().get(), reference.arity(), reference.NumTuples(), path);
    if (!drained.ok()) {
      out_->push_back(drained.status().message());
      return;
    }
    Relation canon = Canon(drained.value());
    if (!SameAnswers(reference, canon)) {
      out_->push_back(DescribeDiff(path, reference, canon));
    }
  }

  /// All single-CQ paths.
  void DiffConjunctive(const ConjunctiveQuery& q, const Relation& reference) {
    const QueryClass cls = Engine::Classify(q);

    Engine serial{ExecOptions::Serial()};
    {
      Result<ExecResult> r = serial.Run(ExecRequest(q, db_));
      Check("engine-serial", reference,
            r.ok() ? Result<Relation>(r.value().answers)
                   : Result<Relation>(r.status()));
    }
    {
      Engine parallel{ExecOptions::Parallel(opt_.parallel_threads)};
      Result<ExecResult> r = parallel.Run(ExecRequest(q, db_));
      Check("engine-parallel", reference,
            r.ok() ? Result<Relation>(r.value().answers)
                   : Result<Relation>(r.status()));
    }
    {
      ++paths_run_;
      Result<BigInt> c = serial.Count(q, db_);
      const BigInt want = BigInt::FromUint64(
          reference.arity() == 0 ? (reference.NumTuples() > 0 ? 1 : 0)
                                 : reference.NumTuples());
      if (!c.ok()) {
        out_->push_back("engine-count: failed where the reference "
                        "succeeded: " + c.status().ToString());
      } else if (c.value() != want) {
        out_->push_back("engine-count: expected " + want.ToString() +
                        ", got " + c.value().ToString());
      }
    }
    CheckEnumerator("engine-enumerate", reference, serial.Enumerate(q, db_));
    if (!q.HasNegation() && q.comparisons().empty() && IsAcyclicQuery(q)) {
      CheckEnumerator("enum-linear-delay", reference,
                      MakeLinearDelayEnumerator(q, db_));
    }
    if (cls == QueryClass::kBooleanAcyclic ||
        cls == QueryClass::kFreeConnexAcyclic) {
      CheckEnumerator("enum-constant-delay", reference,
                      MakeConstantDelayEnumerator(q, db_));
    }
    if (opt_.include_service) DiffService(q, reference);
    if (opt_.include_net) DiffNet(q, reference);
  }

  /// The serving-layer paths: cold, cache hit, count verb, post-mutation.
  void DiffService(const ConjunctiveQuery& q, const Relation& reference) {
    Database sdb = db_;  // Mutable copy: the mutation path bumps versions.
    ServiceOptions sopts;
    sopts.num_workers = 2;
    QueryService service(&sdb, sopts);

    auto rows = [&](const std::string& path, bool want_cache_hit) {
      ++paths_run_;
      ServiceRequest req;
      req.query = q;
      req.verb = ServeVerb::kRows;
      ServiceResponse resp = service.Submit(std::move(req)).get();
      if (!resp.status.ok()) {
        out_->push_back(path + ": failed where the reference succeeded: " +
                        resp.status.ToString());
        return;
      }
      if (resp.cache_hit != want_cache_hit) {
        out_->push_back(path + ": expected cache_hit=" +
                        (want_cache_hit ? "true" : "false") + ", got " +
                        (resp.cache_hit ? "true" : "false"));
      }
      Relation canon = resp.answers ? Canon(*resp.answers)
                                    : Relation(q.name(), q.arity());
      if (!SameAnswers(reference, canon)) {
        out_->push_back(DescribeDiff(path, reference, canon));
      }
    };

    rows("serve-cold", /*want_cache_hit=*/false);
    rows("serve-cache-hit", /*want_cache_hit=*/true);
    {
      ++paths_run_;
      ServiceRequest req;
      req.query = q;
      req.verb = ServeVerb::kCount;
      ServiceResponse resp = service.Submit(std::move(req)).get();
      const BigInt want = BigInt::FromUint64(
          reference.arity() == 0 ? (reference.NumTuples() > 0 ? 1 : 0)
                                 : reference.NumTuples());
      if (!resp.status.ok()) {
        out_->push_back("serve-count: failed where the reference "
                        "succeeded: " + resp.status.ToString());
      } else if (resp.count != want) {
        out_->push_back("serve-count: expected " + want.ToString() +
                        ", got " + resp.count.ToString());
      }
    }
    // Mutate the database (re-put the first relation: contents unchanged,
    // version bumped) and verify the cached plan is NOT reused and the
    // fresh answers still match.
    if (!sdb.relations().empty()) {
      Relation copy = sdb.relations().begin()->second;
      sdb.PutRelation(std::move(copy));
      rows("serve-post-mutation", /*want_cache_hit=*/false);
    }
    service.Stop();
  }

  /// The fgq::net loopback paths: the same query through a real socket
  /// server (wire encode -> epoll shard -> QueryService -> wire decode),
  /// pipelined with a count, a limited enumeration, and a ping. This is
  /// the end-to-end guarantee behind BENCH_PR6: what the network serves
  /// is bit-identical to what the engine computes.
  void DiffNet(const ConjunctiveQuery& q, const Relation& reference) {
    net::NetServerOptions nopts;
    nopts.num_shards = 1;
    Result<std::unique_ptr<net::NetServer>> server =
        net::NetServer::Start(&db_, nopts);
    if (!server.ok()) {
      // Unsupported = no epoll on this platform; a legitimate skip.
      if (server.status().code() != StatusCode::kUnsupported) {
        out_->push_back("net-start: " + server.status().ToString());
      }
      return;
    }
    Result<std::unique_ptr<net::Client>> client =
        net::Client::Connect("127.0.0.1", server.value()->port());
    if (!client.ok()) {
      out_->push_back("net-connect: " + client.status().ToString());
      return;
    }
    net::Client& conn = *client.value();
    const std::string text = q.ToString();

    // Pipeline all four requests before reading any response: exercises
    // frame reassembly and per-connection response ordering, not just
    // request/reply ping-pong.
    net::Request rows_req;
    rows_req.id = 1;
    rows_req.verb = net::Verb::kRows;
    rows_req.query = text;
    net::Request count_req;
    count_req.id = 2;
    count_req.verb = net::Verb::kCount;
    count_req.query = text;
    net::Request limit_req;
    limit_req.id = 3;
    limit_req.verb = net::Verb::kEnumerateLimit;
    limit_req.limit = 2;
    limit_req.query = text;
    net::Request ping_req;
    ping_req.id = 4;
    ping_req.verb = net::Verb::kPing;
    for (const net::Request* r :
         {&rows_req, &count_req, &limit_req, &ping_req}) {
      Status st = conn.Send(*r);
      if (!st.ok()) {
        out_->push_back("net-send: " + st.ToString());
        return;
      }
    }

    auto receive = [&](const net::Request& req,
                       const char* path) -> Result<net::Response> {
      ++paths_run_;
      Result<net::Response> resp = conn.Receive(req.verb);
      if (!resp.ok()) {
        out_->push_back(std::string(path) + ": " + resp.status().ToString());
        return resp;
      }
      if (resp.value().id != req.id) {
        out_->push_back(std::string(path) + ": response id " +
                        std::to_string(resp.value().id) +
                        " for request id " + std::to_string(req.id) +
                        " (ordering violated)");
        return Status::Internal("out of order");
      }
      if (!resp.value().ok()) {
        out_->push_back(std::string(path) +
                        ": failed where the reference succeeded: " +
                        resp.value().text);
        return Status::Internal("remote error");
      }
      return resp;
    };

    const BigInt want_count = BigInt::FromUint64(
        reference.arity() == 0 ? (reference.NumTuples() > 0 ? 1 : 0)
                               : reference.NumTuples());

    if (Result<net::Response> r = receive(rows_req, "net-rows"); r.ok()) {
      Relation got(q.name(), r.value().arity);
      if (r.value().arity == 0) {
        for (uint64_t i = 0; i < r.value().nrows; ++i) got.AddNullary();
      } else {
        got.AppendRows(r.value().values.data(), r.value().num_rows());
      }
      Relation canon = Canon(got);
      if (!SameAnswers(reference, canon)) {
        out_->push_back(DescribeDiff("net-rows", reference, canon));
      }
    }
    if (Result<net::Response> r = receive(count_req, "net-count"); r.ok()) {
      if (r.value().count != want_count.ToString()) {
        out_->push_back("net-count: expected " + want_count.ToString() +
                        ", got " + r.value().count);
      }
    }
    if (Result<net::Response> r = receive(limit_req, "net-limit"); r.ok()) {
      const net::Response& resp = r.value();
      if (resp.nrows > limit_req.limit) {
        out_->push_back("net-limit: asked for at most " +
                        std::to_string(limit_req.limit) + " answers, got " +
                        std::to_string(resp.nrows));
      } else if ((resp.nrows > 0) != (reference.NumTuples() > 0)) {
        out_->push_back(std::string("net-limit: ") +
                        (resp.nrows > 0 ? "answers for an empty query"
                                        : "no answers for a nonempty query"));
      } else if (resp.arity > 0) {
        // Every truncated answer must be a genuine answer.
        std::unordered_set<Tuple, VecHash> allowed;
        for (size_t i = 0; i < reference.NumTuples(); ++i) {
          const Value* row = reference.RowData(i);
          allowed.insert(Tuple(row, row + reference.arity()));
        }
        for (size_t i = 0; i < resp.num_rows(); ++i) {
          Tuple t(resp.values.begin() + i * resp.arity,
                  resp.values.begin() + (i + 1) * resp.arity);
          if (allowed.count(t) == 0) {
            out_->push_back("net-limit: returned a tuple outside phi(D)");
            break;
          }
        }
      }
    }
    receive(ping_req, "net-ping");
    server.value()->Stop();
    const net::NetServerStats stats = server.value()->stats();
    if (stats.protocol_errors != 0) {
      out_->push_back("net: server counted " +
                      std::to_string(stats.protocol_errors) +
                      " protocol errors on a clean stream");
    }
  }

  /// The union paths.
  void DiffUnion(const UnionQuery& u, const Relation& reference) {
    {
      Result<std::unique_ptr<AnswerEnumerator>> e =
          MakeUnionEnumerator(u, db_);
      if (!e.ok() && (e.status().code() == StatusCode::kInvalidArgument ||
                      e.status().code() == StatusCode::kUnsupported)) {
        // Not every union is (repairably) free-connex; declining to
        // enumerate is a legitimate outcome, not a wrong answer.
      } else {
        CheckEnumerator("union-enumerator", reference, std::move(e));
      }
    }
    {
      ++paths_run_;
      Engine serial{ExecOptions::Serial()};
      Relation merged(u.name, u.arity());
      Status failed = Status::OK();
      for (const ConjunctiveQuery& q : u.disjuncts) {
        Result<ExecResult> r = serial.Run(ExecRequest(q, db_));
        if (!r.ok()) {
          failed = r.status();
          break;
        }
        merged.AppendFrom(r.value().answers);
      }
      if (!failed.ok()) {
        out_->push_back("union-via-engine: failed where the reference "
                        "succeeded: " + failed.ToString());
      } else {
        Relation canon = Canon(merged);
        if (!SameAnswers(reference, canon)) {
          out_->push_back(DescribeDiff("union-via-engine", reference, canon));
        }
      }
    }
  }

 private:
  const Database& db_;
  const FuzzOptions& opt_;
  std::vector<std::string>* out_;
  size_t paths_run_ = 0;
};

}  // namespace

std::vector<std::string> DiffCase(const UnionQuery& u, const Database& db,
                                  const FuzzOptions& opt, size_t* paths_run,
                                  bool* reference_skipped) {
  std::vector<std::string> mismatches;
  if (paths_run) *paths_run = 0;
  if (reference_skipped) *reference_skipped = false;
  if (u.disjuncts.empty()) return mismatches;

  CaseDiffer differ(db, opt, &mismatches);
  if (u.disjuncts.size() == 1) {
    const ConjunctiveQuery& q = u.disjuncts[0];
    Result<Relation> ref = ReferenceEvaluate(q, db, opt.reference_limit);
    if (!ref.ok()) {
      if (ref.status().code() == StatusCode::kUnsupported) {
        if (reference_skipped) *reference_skipped = true;
      } else {
        mismatches.push_back("reference failed: " + ref.status().ToString());
      }
      return mismatches;
    }
    differ.DiffConjunctive(q, Canon(ref.value()));
  } else {
    Result<Relation> ref = ReferenceEvaluateUnion(u, db, opt.reference_limit);
    if (!ref.ok()) {
      if (ref.status().code() == StatusCode::kUnsupported) {
        if (reference_skipped) *reference_skipped = true;
      } else {
        mismatches.push_back("reference failed: " + ref.status().ToString());
      }
      return mismatches;
    }
    differ.DiffUnion(u, Canon(ref.value()));
    // Each disjunct also runs the serial engine on its own: a disjunct
    // bug can hide behind the union's dedup.
    for (size_t i = 0; i < u.disjuncts.size(); ++i) {
      Result<Relation> dref =
          ReferenceEvaluate(u.disjuncts[i], db, opt.reference_limit);
      if (!dref.ok()) continue;
      Engine serial{ExecOptions::Serial()};
      Result<ExecResult> r = serial.Run(ExecRequest(u.disjuncts[i], db));
      differ.Check("disjunct-" + std::to_string(i) + "-engine",
                   dref.value(),
                   r.ok() ? Result<Relation>(r.value().answers)
                          : Result<Relation>(r.status()));
    }
  }
  if (paths_run) *paths_run = differ.paths_run();
  return mismatches;
}

DiffReport RunDifferentialCase(uint64_t seed, FuzzClass cls,
                               const FuzzOptions& opt) {
  DiffReport report;
  report.seed = seed;
  report.cls = cls;
  // Decorrelate (seed, class) pairs: nearby seeds across classes must not
  // reuse each other's random streams.
  Rng rng(HashCombine(seed, static_cast<uint64_t>(cls) + 0x51ed));
  if (cls == FuzzClass::kUnion) {
    report.query = GenerateFuzzUnion(opt, &rng);
  } else {
    report.query.name = "Q";
    report.query.disjuncts.push_back(GenerateFuzzQuery(cls, opt, &rng));
  }
  report.db = GenerateFuzzDatabase(report.query, opt, &rng);
  report.mismatches = DiffCase(report.query, report.db, opt,
                               &report.paths_run, &report.reference_skipped);
  return report;
}

std::string DiffReport::ToString() const {
  std::string out = "seed " + std::to_string(seed) + " class " +
                    FuzzClassName(cls) + " (" +
                    std::to_string(paths_run) + " paths)\n";
  out += query.disjuncts.size() == 1 ? query.disjuncts[0].ToString()
                                     : query.ToString();
  out += "\n" + db.ToString(8);
  for (const std::string& m : mismatches) {
    out += "MISMATCH " + m + "\n";
  }
  return out;
}

}  // namespace fgq
