#include "fgq/workload/generators.h"

#include <algorithm>
#include <set>

#include "fgq/query/parser.h"

namespace fgq {

Relation RandomRelation(const std::string& name, size_t arity, size_t tuples,
                        Value domain, Rng* rng) {
  Relation rel(name, arity);
  Tuple t(arity);
  for (size_t i = 0; i < tuples; ++i) {
    for (size_t j = 0; j < arity; ++j) {
      t[j] = static_cast<Value>(rng->Below(static_cast<uint64_t>(domain)));
    }
    rel.Add(t);
  }
  rel.SortDedup();
  return rel;
}

Database RandomBinaryDatabase(size_t num_relations, size_t tuples,
                              Value domain, Rng* rng) {
  Database db;
  for (size_t i = 0; i < num_relations; ++i) {
    db.PutRelation(
        RandomRelation("R" + std::to_string(i + 1), 2, tuples, domain, rng));
  }
  db.DeclareDomainSize(domain);
  return db;
}

ConjunctiveQuery PathQuery(size_t k) {
  ConjunctiveQuery q("Path" + std::to_string(k),
                     {"x1", "x" + std::to_string(k + 1)}, {});
  for (size_t i = 1; i <= k; ++i) {
    Atom a;
    a.relation = "E" + std::to_string(i);
    a.args = {Term::Var("x" + std::to_string(i)),
              Term::Var("x" + std::to_string(i + 1))};
    q.AddAtom(std::move(a));
  }
  return q;
}

ConjunctiveQuery FullPathQuery(size_t k) {
  ConjunctiveQuery q = PathQuery(k);
  std::vector<std::string> head;
  for (size_t i = 1; i <= k + 1; ++i) head.push_back("x" + std::to_string(i));
  q.set_head(head);
  q.set_name("FullPath" + std::to_string(k));
  return q;
}

ConjunctiveQuery StarQuery(size_t s) {
  std::vector<std::string> head;
  for (size_t i = 1; i <= s; ++i) head.push_back("x" + std::to_string(i));
  ConjunctiveQuery q("Star" + std::to_string(s), head, {});
  for (size_t i = 1; i <= s; ++i) {
    Atom a;
    a.relation = "E" + std::to_string(i);
    a.args = {Term::Var("t"), Term::Var("x" + std::to_string(i))};
    q.AddAtom(std::move(a));
  }
  return q;
}

Database PathDatabase(size_t k, size_t tuples, Value domain, Rng* rng) {
  Database db;
  for (size_t i = 1; i <= k; ++i) {
    db.PutRelation(
        RandomRelation("E" + std::to_string(i), 2, tuples, domain, rng));
  }
  db.DeclareDomainSize(domain);
  return db;
}

ConjunctiveQuery Figure1Query() {
  return ParseConjunctiveQuery(
             "Q(x1, x2, x3) :- R(x1, x2), S(x2, x3, y3), R2(x1, y1), "
             "T(y3, y4, y5), S2(x2, y2).")
      .value();
}

Database Figure1Database(size_t tuples, Value domain, Rng* rng) {
  Database db;
  db.PutRelation(RandomRelation("R", 2, tuples, domain, rng));
  db.PutRelation(RandomRelation("S", 3, tuples, domain, rng));
  db.PutRelation(RandomRelation("R2", 2, tuples, domain, rng));
  db.PutRelation(RandomRelation("T", 3, tuples, domain, rng));
  db.PutRelation(RandomRelation("S2", 2, tuples, domain, rng));
  db.DeclareDomainSize(domain);
  return db;
}

Graph RandomGraph(int n, int m, Rng* rng) {
  Graph g(n);
  std::set<std::pair<int, int>> seen;
  int attempts = 0;
  while (static_cast<int>(g.edges.size()) < m && attempts < 20 * m + 100) {
    ++attempts;
    int u = static_cast<int>(rng->Below(static_cast<uint64_t>(n)));
    int v = static_cast<int>(rng->Below(static_cast<uint64_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (seen.insert({u, v}).second) g.AddEdge(u, v);
  }
  return g;
}

Graph RandomBoundedDegreeGraph(int n, int d, Rng* rng) {
  Graph g(n);
  std::vector<int> degree(static_cast<size_t>(n), 0);
  int target_edges = n * d / 2;
  int attempts = 0;
  while (static_cast<int>(g.edges.size()) < target_edges &&
         attempts < 40 * target_edges + 100) {
    ++attempts;
    int u = static_cast<int>(rng->Below(static_cast<uint64_t>(n)));
    int v = static_cast<int>(rng->Below(static_cast<uint64_t>(n)));
    if (u == v || degree[static_cast<size_t>(u)] >= d ||
        degree[static_cast<size_t>(v)] >= d || g.HasEdge(u, v)) {
      continue;
    }
    g.AddEdge(u, v);
    ++degree[static_cast<size_t>(u)];
    ++degree[static_cast<size_t>(v)];
  }
  return g;
}

Graph RandomTree(int n, Rng* rng) {
  Graph g(n);
  for (int v = 1; v < n; ++v) {
    int parent = static_cast<int>(rng->Below(static_cast<uint64_t>(v)));
    g.AddEdge(parent, v);
  }
  return g;
}

Graph GridGraph(int m, int n) {
  Graph g(m * n);
  auto id = [n](int i, int j) { return i * n + j; };
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      if (j + 1 < n) g.AddEdge(id(i, j), id(i, j + 1));
      if (i + 1 < m) g.AddEdge(id(i, j), id(i + 1, j));
    }
  }
  return g;
}

Graph RandomPartialKTree(int n, int k, int drop_percent, Rng* rng) {
  Graph full(n);
  if (n <= k + 1) {
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) full.AddEdge(u, v);
    }
  } else {
    // Seed clique.
    std::vector<std::vector<int>> cliques;
    std::vector<int> seed;
    for (int u = 0; u <= k; ++u) {
      for (int v = u + 1; v <= k; ++v) full.AddEdge(u, v);
    }
    for (int u = 0; u < k; ++u) seed.push_back(u);
    cliques.push_back(seed);
    for (int v = k + 1; v < n; ++v) {
      // Copy: pushing new cliques below may reallocate the vector.
      const std::vector<int> base = cliques[rng->Below(cliques.size())];
      for (int u : base) full.AddEdge(u, v);
      // New k-cliques: base with one member replaced by v.
      for (size_t i = 0; i < base.size(); ++i) {
        std::vector<int> next = base;
        next[i] = v;
        cliques.push_back(next);
      }
    }
  }
  Graph g(n);
  for (const auto& [u, v] : full.edges) {
    if (static_cast<int>(rng->Below(100)) >= drop_percent) g.AddEdge(u, v);
  }
  return g;
}

Database GraphDatabase(const Graph& g) {
  Database db;
  Relation e("E", 2);
  for (const auto& [u, v] : g.edges) {
    e.Add({static_cast<Value>(u), static_cast<Value>(v)});
    e.Add({static_cast<Value>(v), static_cast<Value>(u)});
  }
  e.SortDedup();
  db.PutRelation(std::move(e));
  db.DeclareDomainSize(g.n);
  return db;
}

BipartiteGraph RandomBipartite(size_t n, size_t degree, Rng* rng) {
  BipartiteGraph g;
  g.adj.assign(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < degree; ++d) {
      g.adj[i][rng->Below(n)] = true;
    }
  }
  return g;
}

BoolMatrix RandomMatrix(size_t n, double density, Rng* rng) {
  BoolMatrix m(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (rng->Chance(density)) m.Set(i, j, true);
    }
  }
  return m;
}

DnfFormula RandomDnf(int num_vars, int clauses, int width, Rng* rng) {
  DnfFormula dnf;
  dnf.num_vars = num_vars;
  for (int c = 0; c < clauses; ++c) {
    std::set<int> vars;
    while (static_cast<int>(vars.size()) < width) {
      vars.insert(
          static_cast<int>(rng->Below(static_cast<uint64_t>(num_vars))));
    }
    std::vector<int> clause;
    for (int v : vars) {
      clause.push_back((rng->Next() & 1) ? (v + 1) : -(v + 1));
    }
    dnf.clauses.push_back(std::move(clause));
  }
  return dnf;
}

ConjunctiveQuery RandomChainNcq(size_t vars, size_t tuples_per_relation,
                                Value domain, Database* db, Rng* rng) {
  ConjunctiveQuery q("ncq", {}, {});
  // Chain of 2-ary then 3-ary windows: not Q_i(x_i, x_{i+1}) — beta-acyclic.
  for (size_t i = 1; i + 1 <= vars; ++i) {
    std::string rel_name = "Q" + std::to_string(i);
    db->PutRelation(
        RandomRelation(rel_name, 2, tuples_per_relation, domain, rng));
    Atom a;
    a.relation = rel_name;
    a.negated = true;
    a.args = {Term::Var("x" + std::to_string(i)),
              Term::Var("x" + std::to_string(i + 1))};
    q.AddAtom(std::move(a));
  }
  db->DeclareDomainSize(domain);
  return q;
}

Database ServeWorkloadDatabase(size_t tuples, uint64_t seed) {
  Rng rng(seed);
  const Value domain = static_cast<Value>(tuples / 4 + 4);
  // Figure-1 relations...
  Database db = Figure1Database(tuples, domain, &rng);
  // ...plus a 2-path graph (E1, E2) and a unary filter B for the path and
  // lookup queries of the mix.
  db.PutRelation(RandomRelation("E1", 2, tuples, domain, &rng));
  db.PutRelation(RandomRelation("E2", 2, tuples, domain, &rng));
  db.PutRelation(RandomRelation("B", 1, tuples / 2 + 1, domain, &rng));
  return db;
}

std::vector<ServeWorkloadQuery> ServeWorkloadMix() {
  return {
      // Free-connex: constant-delay enumeration off the cached plan.
      {"Q(x) :- E1(x, y), B(x).", 4.0, "fc-lookup"},
      {"Q(x1, x2, x3) :- R(x1, x2), S(x2, x3, y3), R2(x1, y1), "
       "T(y3, y4, y5), S2(x2, y2).",
       3.0, "figure1"},
      // General-acyclic: served from materialized cached answers.
      {"Q(x, z) :- E1(x, y), E2(y, z).", 2.0, "path2"},
      // Count verb traffic rides the same cached plans.
      {"Q(x, y) :- E1(x, y).", 1.0, "count-edges", /*count=*/true},
  };
}

}  // namespace fgq
