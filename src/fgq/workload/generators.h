#ifndef FGQ_WORKLOAD_GENERATORS_H_
#define FGQ_WORKLOAD_GENERATORS_H_

#include <cstddef>

#include "fgq/count/matchings.h"
#include "fgq/db/database.h"
#include "fgq/eval/bmm.h"
#include "fgq/mso/tree_decomposition.h"
#include "fgq/query/cq.h"
#include "fgq/so/sigma_count.h"
#include "fgq/util/random.h"

/// \file generators.h
/// Synthetic workload generators shared by tests, examples and benchmarks.
///
/// The paper has no experimental datasets (it is a theory survey), so every
/// benchmark in EXPERIMENTS.md runs on synthetic inputs generated here:
/// random relations and graphs with controlled size/degree/selectivity,
/// the query families the survey uses as running examples (paths, stars,
/// the Figure-1 query, the matrix query), plus DNF formulas and bipartite
/// graphs for Section 5 and Equation (2).

namespace fgq {

/// A random k-ary relation with `tuples` tuples over domain [0, domain).
Relation RandomRelation(const std::string& name, size_t arity, size_t tuples,
                        Value domain, Rng* rng);

/// A database with binary relations R1..Rm, each with `tuples` random
/// tuples over [0, domain).
Database RandomBinaryDatabase(size_t num_relations, size_t tuples,
                              Value domain, Rng* rng);

/// The path query P_k(x1, x_{k+1}) :- E1(x1,x2), ..., Ek(xk, x_{k+1}),
/// with all intermediate variables existential. Acyclic; free-connex
/// for k = 1 and NOT free-connex for k >= 2.
ConjunctiveQuery PathQuery(size_t k);

/// The full path query with every variable free (quantifier-free,
/// free-connex).
ConjunctiveQuery FullPathQuery(size_t k);

/// The star query S_s(x1..xs) :- E1(t, x1), ..., Es(t, xs) with the
/// center t existential: acyclic with quantified star size s.
ConjunctiveQuery StarQuery(size_t s);

/// A database on which PathQuery/StarQuery over relations E1..Ek have
/// controlled size: each Ei gets `tuples` random pairs over [0, domain).
Database PathDatabase(size_t k, size_t tuples, Value domain, Rng* rng);

/// The Figure 1 query of the paper:
/// Q(x1,x2,x3) :- R(x1,x2), S(x2,x3,y3), R2(x1,y1), T(y3,y4,y5), S2(x2,y2).
/// Acyclic and free-connex.
ConjunctiveQuery Figure1Query();

/// A database for Figure1Query with `tuples` rows per relation.
Database Figure1Database(size_t tuples, Value domain, Rng* rng);

/// A random undirected graph with n vertices and m edges (no duplicates).
Graph RandomGraph(int n, int m, Rng* rng);

/// A random graph of maximum degree <= d (greedy edge insertion).
Graph RandomBoundedDegreeGraph(int n, int d, Rng* rng);

/// A random tree on n vertices (uniform attachment).
Graph RandomTree(int n, Rng* rng);

/// The (m, n)-grid of Section 3.3: vertices {0..m-1} x {0..n-1} with
/// horizontal and vertical unit edges. Sparse but of treewidth min(m, n)
/// — the paper's witness that MSO tractability cannot go beyond bounded
/// treewidth (grids encode space-bounded Turing computations).
Graph GridGraph(int m, int n);

/// A partial k-tree: starts from a (k+1)-clique and repeatedly attaches a
/// new vertex to a random k-clique of the current graph, then deletes
/// `drop_percent` of edges. Treewidth <= k.
Graph RandomPartialKTree(int n, int k, int drop_percent, Rng* rng);

/// Encodes a graph as a database with binary relation E (symmetric).
Database GraphDatabase(const Graph& g);

/// A random bipartite graph where each left vertex gets `degree` random
/// right neighbors.
BipartiteGraph RandomBipartite(size_t n, size_t degree, Rng* rng);

/// A random Boolean matrix with the given density in [0, 1].
BoolMatrix RandomMatrix(size_t n, double density, Rng* rng);

/// A random DNF formula: `clauses` clauses of `width` literals over
/// `num_vars` variables.
DnfFormula RandomDnf(int num_vars, int clauses, int width, Rng* rng);

/// A random beta-acyclic NCQ instance: a chain-shaped negative query
/// not Q1(x1,x2), not Q2(x1,x2,x3), ..., plus the database of forbidden
/// tuples with the requested density. Returns the query; relations are
/// added to `db`.
ConjunctiveQuery RandomChainNcq(size_t vars, size_t tuples_per_relation,
                                Value domain, Database* db, Rng* rng);

/// One query of a serving mix, as wire-ready text plus its weight. The
/// weights are relative (they need not sum to anything); a load generator
/// draws queries proportionally.
struct ServeWorkloadQuery {
  std::string text;    ///< Parseable rule, e.g. "Q(x) :- E(x, y), B(y).".
  double weight = 1;   ///< Relative frequency in the mix.
  const char* label;   ///< Short name for reports ("figure1", "path2", ...).
  bool count = false;  ///< True: issue as a count request, not rows.
};

/// The database every ServeWorkloadMix query runs against: the Figure-1
/// relations plus E1/E2 path relations and a unary B, all sized by
/// `tuples` and drawn deterministically from `seed`. One database serves
/// the whole mix so a socket server can be pointed at a single immutable
/// snapshot.
Database ServeWorkloadDatabase(size_t tuples, uint64_t seed);

/// The default serving query mix used by fgq_loadgen and the CI smoke:
/// weighted toward the cheap classes (free-connex point lookups and the
/// Figure-1 query) with a minority of general-acyclic and count traffic —
/// a read-mostly OLTP-ish shape where the paper's per-class budgets are
/// visible as separate latency modes.
std::vector<ServeWorkloadQuery> ServeWorkloadMix();

}  // namespace fgq

#endif  // FGQ_WORKLOAD_GENERATORS_H_
