#include "fgq/serve/plan_cache.h"

#include <utility>

namespace fgq {

namespace {

/// Appends the canonical spelling of `t` (renamed variable or literal
/// constant), assigning the next positional name on first sight.
void AppendTerm(const Term& t,
                std::unordered_map<std::string, std::string>* names,
                std::string* out) {
  if (!t.is_var()) {
    out->append(std::to_string(t.constant));
    return;
  }
  auto it = names->find(t.var);
  if (it == names->end()) {
    it = names->emplace(t.var, "v" + std::to_string(names->size())).first;
  }
  out->append(it->second);
}

}  // namespace

std::string CanonicalQueryText(const ConjunctiveQuery& q) {
  std::unordered_map<std::string, std::string> names;
  std::string out;
  out.reserve(q.SizeWeight() * 4);
  // The head first: head order defines the output columns, so it also
  // drives the positional renaming.
  out.push_back('(');
  for (size_t i = 0; i < q.head().size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendTerm(Term::Var(q.head()[i]), &names, &out);
  }
  out.push_back(')');
  for (const Atom& a : q.atoms()) {
    out.push_back(a.negated ? '!' : ',');
    out.append(a.relation);
    out.push_back('(');
    for (size_t j = 0; j < a.args.size(); ++j) {
      if (j > 0) out.push_back(',');
      AppendTerm(a.args[j], &names, &out);
    }
    out.push_back(')');
  }
  for (const Comparison& c : q.comparisons()) {
    out.push_back(';');
    AppendTerm(Term::Var(c.lhs), &names, &out);
    switch (c.op) {
      case Comparison::Op::kLess:
        out.push_back('<');
        break;
      case Comparison::Op::kLessEq:
        out.append("<=");
        break;
      case Comparison::Op::kNotEqual:
        out.append("!=");
        break;
    }
    AppendTerm(Term::Var(c.rhs), &names, &out);
  }
  return out;
}

PlanCache::PlanCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const CachedPlan> PlanCache::Get(const PlanKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->plan;
}

void PlanCache::Put(const PlanKey& key, std::shared_ptr<const CachedPlan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  map_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace fgq
