#ifndef FGQ_SERVE_QUERY_SERVICE_H_
#define FGQ_SERVE_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fgq/db/database.h"
#include "fgq/eval/engine.h"
#include "fgq/query/cq.h"
#include "fgq/serve/plan_cache.h"
#include "fgq/trace/trace.h"
#include "fgq/util/cancel.h"
#include "fgq/util/metrics.h"
#include "fgq/util/status.h"

/// \file query_service.h
/// A concurrent query service on top of fgq::Engine.
///
/// Engine evaluates one query; QueryService turns it into something you
/// can put behind a network front end:
///
/// * **Plan caching.** Prepared plans (the Theorem 4.6 preprocessing for
///   free-connex queries, materialized answers otherwise) live in an LRU
///   keyed by canonical query text + database version, so repeated
///   queries skip the O(||D||) preparation and any database mutation
///   invalidates stale plans by construction (see plan_cache.h).
/// * **Deadlines and cancellation.** Every request carries a CancelToken
///   that the evaluation loops poll; an expired deadline surfaces as
///   Status::DeadlineExceeded with partial-work accounting instead of a
///   runaway worker. CancelAll trips every queued and in-flight request.
/// * **Admission control.** Requests wait in a bounded two-lane queue.
///   The heavy lane holds the oracle-backed classes (cyclic, negated,
///   order comparisons) whose worst case is exponential; at most
///   `max_concurrent_heavy` of them run at once, so a flood of cyclic
///   queries cannot occupy every worker and starve the O(||D||)
///   free-connex traffic. What happens on a full queue is the caller's
///   SubmitPolicy: kBlock applies backpressure (optionally bounded by
///   `max_wait`), kReject resolves the future immediately with
///   ResourceExhausted — the choice an event loop needs, since it can
///   never block.
/// * **Metrics.** Request counts per class, cache hits/misses, queue-wait
///   and execution-time histograms, all readable as a text dump (the
///   `\stats` verb of examples/fgq_serve.cpp).
///
/// The service reads the database through the pointer given at
/// construction and never mutates it. Mutating the database between
/// requests is fine (plans re-prepare against the new version); mutating
/// it *while* requests are in flight is a data race, exactly as with a
/// bare Engine.

namespace fgq {

/// What the client wants back.
enum class ServeVerb {
  kRows,   ///< The full answer relation.
  kCount,  ///< |phi(D)| only.
};

struct ServiceOptions {
  /// Worker threads executing requests. >= 1.
  size_t num_workers = 4;
  /// Queued (not yet running) requests across both lanes before Submit
  /// blocks and TrySubmit rejects. >= 1.
  size_t max_pending = 64;
  /// Cap on simultaneously *running* heavy-lane requests; 0 means
  /// num_workers / 2 (at least 1). Must stay below num_workers to
  /// guarantee a light lane.
  size_t max_concurrent_heavy = 0;
  /// PlanCache capacity (entries).
  size_t cache_capacity = 128;
  /// Engine options shared by the workers (thread pool etc.).
  ExecOptions exec;
};

/// Which admission lane a request takes. kAuto derives the lane from the
/// query's classification (the default and almost always right); the
/// explicit hints exist for front ends that know better — e.g. the net
/// layer downgrading a client marked as best-effort to the heavy lane.
enum class LaneHint : uint8_t {
  kAuto,   ///< Heavy iff the classification is oracle-backed.
  kLight,  ///< Force the light lane.
  kHeavy,  ///< Force the throttled heavy lane.
};

struct ServiceResponse;

struct ServiceRequest {
  ConjunctiveQuery query;
  ServeVerb verb = ServeVerb::kRows;
  /// kRows only: stop after this many answers (0 = all). On the cached
  /// free-connex path the cursor is abandoned after `limit` steps, so k
  /// answers cost O(k) — the constant-delay budget survives truncation.
  uint64_t limit = 0;
  /// Per-request execution deadline; zero means no deadline.
  std::chrono::nanoseconds timeout{0};
  /// Admission lane (see LaneHint). The net layer and fgq_serve build
  /// requests identically: verb + timeout + lane all live here.
  LaneHint lane = LaneHint::kAuto;
  /// Optional trace sink for this request (not owned; must outlive the
  /// response future). The worker opens a `serve.request` span, plumbs
  /// the sink through the evaluation (prepare / sweeps / index build /
  /// enumerate spans), and feeds the completed span durations into the
  /// `serve.phase.<name>_us` metrics histograms. Each request gets its
  /// own TraceContext, so concurrent traces never interleave. Null (the
  /// default) keeps the request on the untraced fast path.
  TraceContext* trace = nullptr;
  /// Completion hook, invoked exactly once after the response future
  /// becomes ready — on the worker thread normally, on the submitting
  /// thread for rejected requests, on the stopping thread for orphans.
  /// This is how a non-blocking front end (the epoll server) learns a
  /// response is ready without polling futures: the hook signals its
  /// event loop. Must not block and must not call back into the service.
  std::function<void(const ServiceResponse&)> on_done;
};

/// How Submit behaves when the bounded queue is full.
struct SubmitPolicy {
  enum class OnFull : uint8_t {
    kBlock,   ///< Wait for space (backpressure), optionally bounded.
    kReject,  ///< Resolve immediately with ResourceExhausted.
  };
  OnFull on_full = OnFull::kBlock;
  /// kBlock only: the longest Submit may wait for queue space before
  /// rejecting anyway. Zero = wait indefinitely.
  std::chrono::nanoseconds max_wait{0};

  static SubmitPolicy Block() { return SubmitPolicy{}; }
  static SubmitPolicy Reject() {
    return SubmitPolicy{OnFull::kReject, std::chrono::nanoseconds{0}};
  }
};

struct ServiceResponse {
  /// OK, or DeadlineExceeded/Cancelled/ResourceExhausted/evaluation error.
  Status status;
  QueryClass classification = QueryClass::kCyclic;
  /// The algorithm used, or "cached" when served from the plan cache.
  std::string algorithm;
  /// Set for kRows on success (shared immutable — may alias the cache).
  std::shared_ptr<const Relation> answers;
  /// Set for kCount on success.
  BigInt count;
  bool cache_hit = false;
  std::chrono::nanoseconds queue_wait{0};
  std::chrono::nanoseconds exec_time{0};
};

/// The service. Construction starts the workers; destruction cancels
/// queued requests, waits for in-flight ones, and joins.
class QueryService {
 public:
  QueryService(const Database* db, ServiceOptions opts = ServiceOptions());
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// The single submission entry point. Always returns a future; every
  /// outcome — success, evaluation error, deadline, queue-full rejection,
  /// service stopping — arrives as a ServiceResponse through it (and
  /// through req.on_done, when set). The policy decides only what happens
  /// while the queue is full: kBlock waits for space (bounded by
  /// policy.max_wait when nonzero), kReject resolves immediately with
  /// ResourceExhausted.
  std::future<ServiceResponse> Submit(ServiceRequest req,
                                      SubmitPolicy policy = SubmitPolicy());

  /// Deprecated pre-SubmitPolicy surface, kept as thin shims.
  [[deprecated("use Submit(req, SubmitPolicy::Reject())")]]
  Result<std::future<ServiceResponse>> TrySubmit(ServiceRequest req);

  /// Submit + wait (convenience for tests and the example shell).
  [[deprecated("use Submit(req).get()")]]
  ServiceResponse Call(ServiceRequest req);

  /// Trips the CancelToken of every queued and in-flight request. Queued
  /// requests resolve with Cancelled without running; in-flight ones
  /// return at their next cancellation check.
  void CancelAll();

  /// Stops accepting work, cancels the queue, waits for in-flight
  /// requests, joins the workers. Idempotent; the destructor calls it.
  void Stop();

  MetricsRegistry& metrics() { return metrics_; }
  PlanCache& cache() { return cache_; }
  const ServiceOptions& options() const { return opts_; }

  /// Renders metrics plus cache occupancy (the `\stats` payload).
  std::string StatsDump();

 private:
  struct Pending {
    ServiceRequest req;
    CancelToken cancel;
    std::promise<ServiceResponse> promise;
    QueryClass classification;
    std::chrono::steady_clock::time_point enqueued;
    uint64_t seq = 0;
  };

  /// True for the oracle-backed classes that get the throttled lane.
  static bool IsHeavy(QueryClass c);

  void WorkerLoop();
  /// Executes one admitted request (cache lookup, evaluation, metrics).
  ServiceResponse Process(Pending& p);
  /// Evaluation on cache miss; fills `out` and returns the plan to cache
  /// (nullptr when the result must not be cached, e.g. after a deadline).
  std::shared_ptr<const CachedPlan> Prepare(Pending& p, ServiceResponse* out);

  /// True when `p` takes the heavy lane (classification + lane hint).
  static bool TakesHeavyLane(const Pending& p);

  /// Fulfills the promise, then fires the on_done hook (in that order, so
  /// the hook always observes a ready future).
  static void Resolve(Pending& p, ServiceResponse resp);

  std::future<ServiceResponse> Enqueue(ServiceRequest req, SubmitPolicy policy,
                                       Status* reject);

  const Database* db_;
  ServiceOptions opts_;
  Engine engine_;
  PlanCache cache_;
  MetricsRegistry metrics_;

  /// Serializes Stop(): held for the entire shutdown (including the
  /// joins, which must happen outside mu_). Always acquired before mu_.
  std::mutex stop_mu_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // Workers: work available / stop.
  std::condition_variable space_cv_;  // Submitters: queue has room.
  std::deque<std::unique_ptr<Pending>> light_;
  std::deque<std::unique_ptr<Pending>> heavy_;
  /// Tokens of currently running requests (for CancelAll).
  std::vector<CancelToken> running_;
  size_t heavy_running_ = 0;
  uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fgq

#endif  // FGQ_SERVE_QUERY_SERVICE_H_
