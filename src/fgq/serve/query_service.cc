#include "fgq/serve/query_service.h"

#include <algorithm>
#include <utility>

namespace fgq {

namespace {

/// Latency buckets, 1 ns .. ~8.6 s (Histogram::LatencyBounds). The old
/// 1 us-start buckets clipped sub-microsecond enumeration steps into the
/// bottom bucket, making p50 of a ~38 ns delay read as ~0.5 us.
std::vector<double> LatencyBounds() { return Histogram::LatencyBounds(); }

double ToMicros(std::chrono::nanoseconds d) {
  return static_cast<double>(d.count()) / 1000.0;
}

}  // namespace

bool QueryService::IsHeavy(QueryClass c) {
  // The oracle-backed classes: worst-case exponential backtracking. The
  // light lane keeps the O(||D||)-preprocessing classes flowing past them.
  return c == QueryClass::kCyclic || c == QueryClass::kNegated ||
         c == QueryClass::kAcyclicOrderComparisons;
}

bool QueryService::TakesHeavyLane(const Pending& p) {
  switch (p.req.lane) {
    case LaneHint::kLight:
      return false;
    case LaneHint::kHeavy:
      return true;
    case LaneHint::kAuto:
      break;
  }
  return IsHeavy(p.classification);
}

void QueryService::Resolve(Pending& p, ServiceResponse resp) {
  // The future first, the hook second: a hook that signals an event loop
  // must find the future already ready when the loop polls it.
  auto on_done = std::move(p.req.on_done);
  if (on_done) {
    ServiceResponse copy = resp;
    p.promise.set_value(std::move(resp));
    on_done(copy);
  } else {
    p.promise.set_value(std::move(resp));
  }
}

QueryService::QueryService(const Database* db, ServiceOptions opts)
    : db_(db),
      opts_(opts),
      engine_(opts.exec),
      cache_(opts.cache_capacity) {
  if (opts_.num_workers == 0) opts_.num_workers = 1;
  if (opts_.max_pending == 0) opts_.max_pending = 1;
  if (opts_.max_concurrent_heavy == 0) {
    opts_.max_concurrent_heavy = std::max<size_t>(1, opts_.num_workers / 2);
  }
  opts_.max_concurrent_heavy =
      std::min(opts_.max_concurrent_heavy, opts_.num_workers);
  workers_.reserve(opts_.num_workers);
  for (size_t i = 0; i < opts_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Stop(); }

std::future<ServiceResponse> QueryService::Enqueue(ServiceRequest req,
                                                   SubmitPolicy policy,
                                                   Status* reject) {
  auto p = std::make_unique<Pending>();
  p->classification = Engine::Classify(req.query);
  p->cancel = req.timeout.count() > 0 ? CancelToken::WithTimeout(req.timeout)
                                      : CancelToken::Cancellable();
  p->enqueued = std::chrono::steady_clock::now();
  p->req = std::move(req);
  std::future<ServiceResponse> fut = p->promise.get_future();

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (policy.on_full == SubmitPolicy::OnFull::kBlock) {
      auto have_space = [this] {
        return stopping_ || light_.size() + heavy_.size() < opts_.max_pending;
      };
      if (policy.max_wait.count() > 0) {
        space_cv_.wait_for(lock, policy.max_wait, have_space);
      } else {
        space_cv_.wait(lock, have_space);
      }
    }
    if (stopping_) {
      *reject = Status::Cancelled("service is stopping");
    } else if (light_.size() + heavy_.size() >= opts_.max_pending) {
      *reject = Status::ResourceExhausted(
          "request queue full (" + std::to_string(opts_.max_pending) +
          " pending)");
    } else {
      p->seq = next_seq_++;
      metrics_.GetCounter("serve.requests").Increment();
      metrics_
          .GetCounter(std::string("serve.requests.") +
                      QueryClassName(p->classification))
          .Increment();
      (TakesHeavyLane(*p) ? heavy_ : light_).push_back(std::move(p));
      work_cv_.notify_one();
      return fut;
    }
  }
  metrics_.GetCounter("serve.rejected").Increment();
  ServiceResponse resp;
  resp.status = *reject;
  resp.classification = p->classification;
  Resolve(*p, std::move(resp));
  return fut;
}

std::future<ServiceResponse> QueryService::Submit(ServiceRequest req,
                                                  SubmitPolicy policy) {
  Status reject = Status::OK();
  return Enqueue(std::move(req), policy, &reject);
}

Result<std::future<ServiceResponse>> QueryService::TrySubmit(
    ServiceRequest req) {
  Status reject = Status::OK();
  std::future<ServiceResponse> fut =
      Enqueue(std::move(req), SubmitPolicy::Reject(), &reject);
  if (!reject.ok()) return reject;
  return fut;
}

ServiceResponse QueryService::Call(ServiceRequest req) {
  return Submit(std::move(req)).get();
}

void QueryService::CancelAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& p : light_) p->cancel.Cancel();
  for (auto& p : heavy_) p->cancel.Cancel();
  for (CancelToken& t : running_) t.Cancel();
}

void QueryService::Stop() {
  // Serialize the whole shutdown sequence: without stop_mu_, a second
  // concurrent Stop() (e.g. an explicit Stop() racing the destructor)
  // passes the guard below while the first caller is still joining, and
  // both then walk workers_ outside mu_ — a double join. The late caller
  // blocks here until the first finishes, then sees workers_ empty.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  std::deque<std::unique_ptr<Pending>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    for (auto& p : light_) orphans.push_back(std::move(p));
    for (auto& p : heavy_) orphans.push_back(std::move(p));
    light_.clear();
    heavy_.clear();
    // In-flight requests are cancelled, not abandoned: the workers see
    // the trip at the next check and resolve their promises normally.
    for (CancelToken& t : running_) t.Cancel();
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& p : orphans) {
    ServiceResponse resp;
    resp.status = Status::Cancelled("service stopped before execution");
    resp.classification = p->classification;
    Resolve(*p, std::move(resp));
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void QueryService::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Pending> p;
    bool heavy = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stopping_ || !light_.empty() ||
               (!heavy_.empty() && heavy_running_ < opts_.max_concurrent_heavy);
      });
      if (stopping_) return;
      // Pick the oldest admissible request across the lanes; the heavy
      // lane is admissible only below its concurrency cap.
      bool heavy_ok =
          !heavy_.empty() && heavy_running_ < opts_.max_concurrent_heavy;
      if (!light_.empty() &&
          (!heavy_ok || light_.front()->seq < heavy_.front()->seq)) {
        p = std::move(light_.front());
        light_.pop_front();
      } else if (heavy_ok) {
        p = std::move(heavy_.front());
        heavy_.pop_front();
        heavy = true;
        ++heavy_running_;
      } else {
        continue;  // Spurious wake with only capped heavy work.
      }
      running_.push_back(p->cancel);
    }
    space_cv_.notify_one();

    ServiceResponse resp = Process(*p);
    Resolve(*p, std::move(resp));

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (heavy) --heavy_running_;
      for (size_t i = 0; i < running_.size(); ++i) {
        if (running_[i].SameStateAs(p->cancel)) {
          running_.erase(running_.begin() + static_cast<long>(i));
          break;
        }
      }
    }
    if (heavy) work_cv_.notify_one();  // A heavy slot opened up.
  }
}

ServiceResponse QueryService::Process(Pending& p) {
  const auto started = std::chrono::steady_clock::now();
  ServiceResponse resp;
  resp.classification = p.classification;
  resp.queue_wait = started - p.enqueued;
  metrics_
      .GetHistogram("serve.queue_wait_us", LatencyBounds())
      .Observe(ToMicros(resp.queue_wait));

  TraceSpan request_span(p.req.trace, "serve.request", "serve");
  if (p.req.trace != nullptr) {
    request_span.Arg("class", QueryClassName(p.classification));
    request_span.Arg("verb", p.req.verb == ServeVerb::kRows ? "rows" : "count");
  }

  PlanKey key{CanonicalQueryText(p.req.query), db_->version()};
  std::shared_ptr<const CachedPlan> cached;
  // A request whose deadline expired while queued fails fast.
  Status admitted = p.cancel.Check("queue wait");
  if (!admitted.ok()) {
    resp.status = std::move(admitted);
  } else {
    cached = cache_.Get(key);
    if (cached) {
      metrics_.GetCounter("serve.cache.hits").Increment();
      resp.cache_hit = true;
      request_span.Arg("cache", "hit");
    } else {
      metrics_.GetCounter("serve.cache.misses").Increment();
      cached = Prepare(p, &resp);
      if (cached && resp.status.ok()) cache_.Put(key, cached);
    }
  }

  if (resp.status.ok() && cached) {
    resp.algorithm = cached->algorithm;
    if (cached->plan) {
      // Serve from the shared indexed plan: a fresh cursor per request.
      TraceSpan enumerate_span(p.req.trace, "enumerate", "serve");
      std::unique_ptr<AnswerEnumerator> cursor =
          MakePlanEnumerator(cached->plan);
      if (p.req.verb == ServeVerb::kRows) {
        auto out = std::make_shared<Relation>(p.req.query.name(),
                                              p.req.query.arity());
        Tuple t;
        while ((p.req.limit == 0 || out->NumTuples() < p.req.limit) &&
               cursor->Next(&t)) {
          if (p.req.query.arity() == 0) {
            out->AddNullary();
          } else {
            out->Add(t);
          }
          if (p.cancel.cancelled()) break;
        }
        if (p.cancel.cancelled()) {
          Status base = p.cancel.Check("answer enumeration");
          resp.status = Status(
              base.code(), base.message() + " (" +
                               std::to_string(out->NumTuples()) +
                               " answers enumerated)");
        } else {
          TraceCounter(p.req.trace, "tuples_emitted", out->NumTuples());
          resp.answers = std::move(out);
        }
      } else {
        uint64_t n = 0;
        Tuple t;
        while (cursor->Next(&t) && !p.cancel.cancelled()) ++n;
        if (p.cancel.cancelled()) {
          resp.status = p.cancel.Check("answer counting");
        } else {
          TraceCounter(p.req.trace, "tuples_emitted", n);
          resp.count = BigInt::FromUint64(n);
        }
      }
    } else if (cached->answers) {
      // Materialized answers still count as emitted to *this* request, so
      // a traced cache hit reads the same as a traced miss (whose emits
      // were already counted by the engine inside Prepare).
      if (resp.cache_hit) {
        TraceCounter(p.req.trace, "tuples_emitted",
                     cached->answers->NumTuples());
      }
      if (p.req.verb == ServeVerb::kRows) {
        if (p.req.limit != 0 &&
            p.req.limit < cached->answers->NumTuples()) {
          // Truncated view of the shared materialized answers.
          auto prefix = std::make_shared<Relation>(cached->answers->name(),
                                                   cached->answers->arity());
          if (cached->answers->arity() == 0) {
            for (uint64_t i = 0; i < p.req.limit; ++i) prefix->AddNullary();
          } else {
            prefix->AppendRows(cached->answers->RowData(0), p.req.limit);
          }
          resp.answers = std::move(prefix);
        } else {
          resp.answers = cached->answers;
        }
      } else {
        resp.count = BigInt::FromUint64(cached->answers->NumTuples());
      }
    }
  }

  if (resp.status.code() == StatusCode::kDeadlineExceeded) {
    metrics_.GetCounter("serve.deadline_exceeded").Increment();
  } else if (resp.status.code() == StatusCode::kCancelled) {
    metrics_.GetCounter("serve.cancelled").Increment();
  }
  resp.exec_time = std::chrono::steady_clock::now() - started;
  metrics_
      .GetHistogram("serve.exec_us", LatencyBounds())
      .Observe(ToMicros(resp.exec_time));
  if (p.req.trace != nullptr) {
    // Per-phase attribution: completed evaluation spans of this request
    // become serve.phase.<name>_us observations, so the \stats dump shows
    // where traced requests spent their time (index build vs sweeps vs
    // enumeration), not just end-to-end exec_us.
    for (const TraceContext::Event& ev : p.req.trace->events()) {
      if (ev.end_ns < 0 || ev.name == "serve.request") continue;
      metrics_.GetHistogram("serve.phase." + ev.name + "_us", LatencyBounds())
          .Observe(static_cast<double>(ev.DurationNs()) / 1000.0);
    }
  }
  return resp;
}

std::shared_ptr<const CachedPlan> QueryService::Prepare(Pending& p,
                                                        ServiceResponse* out) {
  auto plan = std::make_shared<CachedPlan>();
  plan->classification = p.classification;
  if (p.classification == QueryClass::kBooleanAcyclic ||
      p.classification == QueryClass::kFreeConnexAcyclic) {
    // Cache the Theorem 4.6 preprocessing; the enumeration phase runs per
    // request against the shared indexes.
    ExecContext ctx =
        engine_.context().WithCancel(p.cancel).WithTrace(p.req.trace);
    Result<FreeConnexPlan> fc = BuildFreeConnexPlan(p.req.query, *db_, ctx);
    if (!fc.ok()) {
      out->status = fc.status();
      return nullptr;
    }
    Result<std::shared_ptr<const IndexedFreeConnexPlan>> indexed =
        IndexFreeConnexPlan(std::move(fc).value(), p.req.query.head(), ctx);
    if (!indexed.ok()) {
      out->status = indexed.status();
      return nullptr;
    }
    plan->plan = std::move(indexed).value();
    plan->algorithm = p.classification == QueryClass::kBooleanAcyclic
                          ? "boolean-semijoin-sweep"
                          : "constant-delay-enumeration";
    return plan;
  }
  // Every other class: evaluate once, cache the materialized answers (they
  // serve both verbs; general-acyclic counts equal the answer count).
  ExecRequest exec(p.req.query, *db_);
  exec.cancel = p.cancel;
  exec.trace = p.req.trace;
  Result<ExecResult> res = engine_.Run(exec);
  if (!res.ok()) {
    out->status = res.status();
    return nullptr;
  }
  plan->algorithm = res->algorithm;
  plan->answers = std::make_shared<const Relation>(std::move(res->answers));
  return plan;
}

std::string QueryService::StatsDump() {
  std::string out = metrics_.TextDump();
  out += "cache size=" + std::to_string(cache_.size()) +
         " capacity=" + std::to_string(cache_.capacity()) +
         " hits=" + std::to_string(cache_.hits()) +
         " misses=" + std::to_string(cache_.misses()) + "\n";
  return out;
}

}  // namespace fgq
