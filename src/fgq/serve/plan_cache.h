#ifndef FGQ_SERVE_PLAN_CACHE_H_
#define FGQ_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "fgq/db/relation.h"
#include "fgq/eval/engine.h"
#include "fgq/eval/enumerate.h"
#include "fgq/query/cq.h"
#include "fgq/util/bigint.h"

/// \file plan_cache.h
/// The serving layer's prepared-plan cache.
///
/// Preparing a query is the expensive half of answering it: for a
/// free-connex query, the Theorem 4.6 preprocessing (full reduction +
/// free-projection sweeps + hash-index builds) is O(||D||), while each
/// answer afterwards costs O(||phi||). A service that re-runs the
/// preprocessing on every request throws that asymmetry away. PlanCache
/// keeps the immutable preprocessing artifact — an IndexedFreeConnexPlan
/// for free-connex/Boolean queries, the materialized answer relation for
/// the other classes — keyed by the *canonicalized* query text and the
/// database's version counter, so a repeated query (even alpha-renamed)
/// skips straight to the enumeration phase, and any mutation of the
/// database invalidates every plan built against it simply by changing
/// the key.

namespace fgq {

/// Renders `q` with variables renamed positionally ("v0", "v1", ... in
/// first-occurrence order, head first) so alpha-equivalent queries —
/// `Q(x) :- E(x, y)` and `Q(a) :- E(a, b)` — share one cache entry. Atom
/// order is preserved: reordering atoms is a different (if semantically
/// equal) plan, and canonicalizing modulo atom permutation would cost more
/// than a cache miss.
std::string CanonicalQueryText(const ConjunctiveQuery& q);

/// Cache key: canonical query text + the database version it was built
/// against (Database::version(), bumped on every mutation).
struct PlanKey {
  std::string canonical;
  uint64_t db_version = 0;

  bool operator==(const PlanKey& o) const {
    return db_version == o.db_version && canonical == o.canonical;
  }
};

struct PlanKeyHash {
  size_t operator()(const PlanKey& k) const {
    return std::hash<std::string>()(k.canonical) ^
           (std::hash<uint64_t>()(k.db_version) * 0x9e3779b97f4a7c15ULL);
  }
};

/// One cached preparation. Exactly one of `plan` / `answers` is set:
/// free-connex and Boolean queries cache the indexed plan (cursors are
/// created per request), everything else caches the materialized answers.
/// `count`, when present, memoizes |phi(D)| for the count verb. All
/// members are immutable shared state — safe to hand to any number of
/// concurrent requests.
struct CachedPlan {
  QueryClass classification = QueryClass::kCyclic;
  std::string algorithm;
  std::shared_ptr<const IndexedFreeConnexPlan> plan;
  std::shared_ptr<const Relation> answers;
  std::shared_ptr<const BigInt> count;
};

/// A bounded LRU over CachedPlan entries. All operations take the cache
/// mutex; the values handed out are shared_ptrs to immutable state, so an
/// entry evicted mid-request stays alive until its last user drops it.
class PlanCache {
 public:
  /// `capacity` = max resident entries (>= 1).
  explicit PlanCache(size_t capacity = 128);

  /// Returns the entry for `key` and marks it most-recently-used, or
  /// nullptr on miss.
  std::shared_ptr<const CachedPlan> Get(const PlanKey& key);

  /// Inserts (or replaces) the entry for `key`, evicting the least
  /// recently used entry when over capacity.
  void Put(const PlanKey& key, std::shared_ptr<const CachedPlan> plan);

  /// Drops every entry.
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Lifetime hit/miss tallies (Get calls).
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  struct Entry {
    PlanKey key;
    std::shared_ptr<const CachedPlan> plan;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace fgq

#endif  // FGQ_SERVE_PLAN_CACHE_H_
