#include "fgq/hypergraph/hypergraph.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace fgq {

Hypergraph Hypergraph::FromQuery(const ConjunctiveQuery& q) {
  Hypergraph hg;
  for (const std::string& v : q.Variables()) hg.AddVertex(v);
  for (size_t i = 0; i < q.atoms().size(); ++i) {
    hg.AddEdgeByNames(q.atoms()[i].Variables(), static_cast<int>(i));
  }
  return hg;
}

int Hypergraph::AddVertex(const std::string& name) {
  int existing = FindVertex(name);
  if (existing >= 0) return existing;
  vertex_names_.push_back(name);
  incident_.emplace_back();
  return static_cast<int>(vertex_names_.size()) - 1;
}

int Hypergraph::AddEdge(std::vector<int> vertices, int label) {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  int e = static_cast<int>(edges_.size());
  for (int v : vertices) incident_[v].push_back(e);
  edges_.push_back(std::move(vertices));
  labels_.push_back(label);
  return e;
}

int Hypergraph::AddEdgeByNames(const std::vector<std::string>& names,
                               int label) {
  std::vector<int> ids;
  ids.reserve(names.size());
  for (const std::string& n : names) ids.push_back(AddVertex(n));
  return AddEdge(std::move(ids), label);
}

int Hypergraph::FindVertex(const std::string& name) const {
  for (size_t i = 0; i < vertex_names_.size(); ++i) {
    if (vertex_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

bool Hypergraph::EdgeSubset(int a, int b) const {
  return std::includes(edges_[b].begin(), edges_[b].end(), edges_[a].begin(),
                       edges_[a].end());
}

bool Hypergraph::Adjacent(int u, int v) const {
  for (int e : incident_[u]) {
    if (std::binary_search(edges_[e].begin(), edges_[e].end(), v)) return true;
  }
  return false;
}

std::string Hypergraph::ToString() const {
  std::ostringstream os;
  os << "H(V=" << NumVertices() << ", E=" << NumEdges() << ")";
  for (size_t e = 0; e < edges_.size(); ++e) {
    os << "\n  e" << e << " = {";
    for (size_t i = 0; i < edges_[e].size(); ++i) {
      if (i) os << ", ";
      os << vertex_names_[edges_[e][i]];
    }
    os << "}";
  }
  return os.str();
}

// ---- JoinTree ---------------------------------------------------------------

std::vector<int> JoinTree::TopDownOrder() const {
  std::vector<int> order;
  if (root < 0) return order;
  order.push_back(root);
  for (size_t i = 0; i < order.size(); ++i) {
    for (int c : children[order[i]]) order.push_back(c);
  }
  return order;
}

std::vector<int> JoinTree::BottomUpOrder() const {
  std::vector<int> order = TopDownOrder();
  std::reverse(order.begin(), order.end());
  return order;
}

bool JoinTree::IsValid(const Hypergraph& hg) const {
  // Every edge must be a node.
  std::vector<int> nodes = TopDownOrder();
  if (nodes.size() != hg.NumEdges()) return false;
  // Running intersection: for each vertex, nodes containing it must be
  // connected. Equivalent check: for each non-root node e containing v,
  // walking to the root must stay inside "contains v" until leaving it
  // once and never re-entering. Simpler: for each vertex, count connected
  // components among containing nodes via adjacency in the tree.
  for (size_t v = 0; v < hg.NumVertices(); ++v) {
    const std::vector<int>& in = hg.EdgesOf(static_cast<int>(v));
    if (in.empty()) continue;
    std::set<int> containing(in.begin(), in.end());
    // A node is a component root (w.r.t. v) if its parent does not
    // contain v.
    int component_roots = 0;
    for (int e : in) {
      if (parent[e] < 0 || containing.count(parent[e]) == 0) {
        ++component_roots;
      }
    }
    if (component_roots != 1) return false;
  }
  return true;
}

void JoinTree::ReRoot(int new_root) {
  if (new_root == root) return;
  // Reverse parent pointers along the path new_root -> old root.
  std::vector<int> path;
  for (int e = new_root; e != -1; e = parent[e]) path.push_back(e);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    parent[path[i + 1]] = path[i];
  }
  parent[new_root] = -1;
  root = new_root;
  // Rebuild children lists.
  for (auto& c : children) c.clear();
  for (size_t e = 0; e < parent.size(); ++e) {
    if (parent[e] >= 0) children[parent[e]].push_back(static_cast<int>(e));
  }
}

std::string JoinTree::ToString(const Hypergraph& hg) const {
  std::ostringstream os;
  for (int e : TopDownOrder()) {
    int depth = 0;
    for (int p = parent[e]; p != -1; p = parent[p]) ++depth;
    for (int i = 0; i < depth; ++i) os << "  ";
    os << "e" << e << " {";
    const std::vector<int>& vs = hg.Edge(e);
    for (size_t i = 0; i < vs.size(); ++i) {
      if (i) os << ", ";
      os << hg.VertexName(vs[i]);
    }
    os << "}\n";
  }
  return os.str();
}

// ---- GYO reduction ----------------------------------------------------------

GyoResult GyoReduce(const Hypergraph& hg) {
  const size_t m = hg.NumEdges();
  GyoResult result;
  result.tree.parent.assign(m, -1);
  result.tree.children.assign(m, {});
  if (m == 0) {
    result.acyclic = true;
    return result;
  }

  // Working vertex sets, shrinking as the reduction proceeds.
  std::vector<std::set<int>> sets(m);
  for (size_t e = 0; e < m; ++e) {
    sets[e].insert(hg.Edge(static_cast<int>(e)).begin(),
                   hg.Edge(static_cast<int>(e)).end());
  }
  std::vector<bool> alive(m, true);
  size_t alive_count = m;

  bool changed = true;
  while (changed && alive_count > 1) {
    changed = false;
    // Step 1: remove vertices occurring in exactly one alive edge.
    std::vector<int> occurrence(hg.NumVertices(), 0);
    for (size_t e = 0; e < m; ++e) {
      if (!alive[e]) continue;
      for (int v : sets[e]) ++occurrence[v];
    }
    for (size_t e = 0; e < m; ++e) {
      if (!alive[e]) continue;
      for (auto it = sets[e].begin(); it != sets[e].end();) {
        if (occurrence[*it] == 1) {
          it = sets[e].erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
    // Step 2: remove edges contained in another alive edge, attaching them
    // as children in the join tree.
    for (size_t e = 0; e < m && alive_count > 1; ++e) {
      if (!alive[e]) continue;
      for (size_t f = 0; f < m; ++f) {
        if (f == e || !alive[f]) continue;
        if (std::includes(sets[f].begin(), sets[f].end(), sets[e].begin(),
                          sets[e].end())) {
          alive[e] = false;
          --alive_count;
          result.tree.parent[e] = static_cast<int>(f);
          changed = true;
          break;
        }
      }
    }
  }

  result.acyclic = alive_count == 1;
  if (!result.acyclic) {
    for (size_t e = 0; e < m; ++e) {
      if (alive[e]) result.remaining.push_back(static_cast<int>(e));
    }
    return result;
  }
  for (size_t e = 0; e < m; ++e) {
    if (alive[e]) result.tree.root = static_cast<int>(e);
  }
  for (size_t e = 0; e < m; ++e) {
    if (result.tree.parent[e] >= 0) {
      result.tree.children[result.tree.parent[e]].push_back(
          static_cast<int>(e));
    }
  }
  return result;
}

bool IsAcyclicQuery(const ConjunctiveQuery& q) {
  return IsAlphaAcyclic(Hypergraph::FromQuery(q));
}

bool IsFreeConnex(const ConjunctiveQuery& q) {
  if (q.arity() <= 1) return true;
  Hypergraph hg = Hypergraph::FromQuery(q);
  std::vector<int> head_ids;
  for (const std::string& v : q.head()) head_ids.push_back(hg.AddVertex(v));
  hg.AddEdge(head_ids, /*label=*/-2);
  return IsAlphaAcyclic(hg);
}

// ---- Beta-acyclicity --------------------------------------------------------

BetaResult BetaAcyclicity(const Hypergraph& hg) {
  BetaResult result;
  const size_t m = hg.NumEdges();
  std::vector<std::set<int>> sets(m);
  for (size_t e = 0; e < m; ++e) {
    sets[e].insert(hg.Edge(static_cast<int>(e)).begin(),
                   hg.Edge(static_cast<int>(e)).end());
  }
  std::vector<bool> vertex_alive(hg.NumVertices(), true);
  size_t vertices_left = hg.NumVertices();

  auto is_nest_point = [&](int v) {
    // Collect alive edges containing v and check they form a chain.
    std::vector<const std::set<int>*> containing;
    for (int e : hg.EdgesOf(v)) {
      if (sets[e].count(v)) containing.push_back(&sets[e]);
    }
    std::sort(containing.begin(), containing.end(),
              [](const std::set<int>* a, const std::set<int>* b) {
                return a->size() < b->size();
              });
    for (size_t i = 0; i + 1 < containing.size(); ++i) {
      if (!std::includes(containing[i + 1]->begin(), containing[i + 1]->end(),
                         containing[i]->begin(), containing[i]->end())) {
        return false;
      }
    }
    return true;
  };

  bool progress = true;
  while (vertices_left > 0 && progress) {
    progress = false;
    for (size_t v = 0; v < hg.NumVertices(); ++v) {
      if (!vertex_alive[v]) continue;
      if (!is_nest_point(static_cast<int>(v))) continue;
      vertex_alive[v] = false;
      --vertices_left;
      result.elimination_order.push_back(static_cast<int>(v));
      for (int e : hg.EdgesOf(static_cast<int>(v))) {
        sets[e].erase(static_cast<int>(v));
      }
      progress = true;
    }
  }
  result.beta_acyclic = vertices_left == 0;
  if (!result.beta_acyclic) result.elimination_order.clear();
  return result;
}

bool IsBetaAcyclicQuery(const ConjunctiveQuery& q) {
  return BetaAcyclicity(Hypergraph::FromQuery(q)).beta_acyclic;
}

}  // namespace fgq
