#ifndef FGQ_HYPERGRAPH_HYPERGRAPH_H_
#define FGQ_HYPERGRAPH_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "fgq/query/cq.h"
#include "fgq/util/status.h"

/// \file hypergraph.h
/// The hypergraph of a query (Section 4): vertices are the query's
/// variables, hyperedges are its atoms' variable sets. All structural
/// notions the paper uses — alpha-acyclicity, join trees, free-connexity,
/// beta-acyclicity, S-components, quantified star size — are computed on
/// this representation.

namespace fgq {

/// A finite hypergraph with named vertices and labelled edges.
class Hypergraph {
 public:
  Hypergraph() = default;

  /// Builds the hypergraph of a query: one vertex per variable, one edge
  /// per atom (negated atoms included — the NCQ notions use them too).
  /// Comparison atoms are NOT edges (Definition 4.14).
  static Hypergraph FromQuery(const ConjunctiveQuery& q);

  /// Adds a vertex; returns its id. Adding an existing name returns the
  /// existing id.
  int AddVertex(const std::string& name);

  /// Adds an edge over vertex ids (deduplicated, sorted). `label` is
  /// caller-defined (atom index for query hypergraphs).
  int AddEdge(std::vector<int> vertices, int label = -1);

  /// Adds an edge over vertex names, creating vertices as needed.
  int AddEdgeByNames(const std::vector<std::string>& names, int label = -1);

  size_t NumVertices() const { return vertex_names_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  const std::string& VertexName(int v) const { return vertex_names_[v]; }
  /// Vertex id for a name, or -1.
  int FindVertex(const std::string& name) const;

  /// Sorted vertex ids of edge e.
  const std::vector<int>& Edge(int e) const { return edges_[e]; }
  int EdgeLabel(int e) const { return labels_[e]; }

  /// Ids of edges containing vertex v.
  const std::vector<int>& EdgesOf(int v) const { return incident_[v]; }

  /// True if edge a's vertex set is a subset of edge b's.
  bool EdgeSubset(int a, int b) const;

  /// True if u and v share an edge.
  bool Adjacent(int u, int v) const;

  std::string ToString() const;

 private:
  std::vector<std::string> vertex_names_;
  std::vector<std::vector<int>> edges_;      // Sorted vertex ids.
  std::vector<int> labels_;
  std::vector<std::vector<int>> incident_;   // vertex -> edge ids.
};

/// A join tree over a hypergraph's edges (Section 4.1): nodes are edge
/// ids; for every vertex, the tree nodes whose edge contains it form a
/// connected subtree.
struct JoinTree {
  int root = -1;
  /// parent[e] is the parent edge id of e, or -1 for the root and for
  /// edges not in the tree.
  std::vector<int> parent;
  /// children[e] lists e's children.
  std::vector<std::vector<int>> children;

  /// Nodes in a top-down (parent before child) order.
  std::vector<int> TopDownOrder() const;
  /// Nodes bottom-up (children before parents).
  std::vector<int> BottomUpOrder() const;

  /// Verifies the join-tree property ("running intersection") against hg.
  bool IsValid(const Hypergraph& hg) const;

  /// Re-roots the tree at `new_root` (must be a tree node).
  void ReRoot(int new_root);

  std::string ToString(const Hypergraph& hg) const;
};

/// Result of the GYO reduction.
struct GyoResult {
  bool acyclic = false;
  /// Valid join tree when acyclic.
  JoinTree tree;
  /// When cyclic: the edge ids of the irreducible core the ear removal
  /// stalled on (every remaining edge has a vertex shared with two others
  /// and is contained in no other). EXPLAIN renders this as the cyclicity
  /// witness. Empty when acyclic.
  std::vector<int> remaining;
};

/// Runs the GYO ear-removal algorithm: alternately deletes vertices that
/// occur in a single edge and edges contained in another edge (recording
/// the containment as a tree attachment). The hypergraph is alpha-acyclic
/// iff the reduction consumes every edge, in which case the recorded
/// attachments form a join tree (Theorem: Beeri-Fagin-Maier-Yannakakis).
GyoResult GyoReduce(const Hypergraph& hg);

/// True iff the hypergraph is alpha-acyclic.
inline bool IsAlphaAcyclic(const Hypergraph& hg) {
  return GyoReduce(hg).acyclic;
}

/// True iff the query's hypergraph is alpha-acyclic (the paper's "ACQ").
bool IsAcyclicQuery(const ConjunctiveQuery& q);

/// True iff the query is free-connex (Definition 4.4): its hypergraph,
/// extended with one edge covering exactly the free variables, is still
/// alpha-acyclic. Boolean and unary queries are trivially free-connex.
bool IsFreeConnex(const ConjunctiveQuery& q);

/// Beta-acyclicity (Definition 4.29) decided by nest-point elimination
/// [38]: a vertex is a nest point when the edges containing it form a
/// chain under inclusion; a hypergraph is beta-acyclic iff repeatedly
/// removing nest points (and then empty/duplicate edges) empties it.
/// On success `elimination_order` lists vertex ids in removal order —
/// the order that drives the NCQ Davis-Putnam algorithm (Theorem 4.31).
struct BetaResult {
  bool beta_acyclic = false;
  std::vector<int> elimination_order;
};
BetaResult BetaAcyclicity(const Hypergraph& hg);

/// True iff the query's hypergraph is beta-acyclic.
bool IsBetaAcyclicQuery(const ConjunctiveQuery& q);

}  // namespace fgq

#endif  // FGQ_HYPERGRAPH_HYPERGRAPH_H_
