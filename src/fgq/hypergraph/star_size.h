#ifndef FGQ_HYPERGRAPH_STAR_SIZE_H_
#define FGQ_HYPERGRAPH_STAR_SIZE_H_

#include <vector>

#include "fgq/hypergraph/hypergraph.h"
#include "fgq/query/cq.h"

/// \file star_size.h
/// S-components and quantified star size (Section 4.4, [34]).
///
/// Given a hypergraph H = (V, E) and a set S of vertices (the query's free
/// variables), the S-component of an edge e not contained in S groups all
/// edges whose non-S parts are connected in H[V - S] (Definition 4.23).
/// The S-star size is the maximum size of an independent set of
/// S-vertices inside a single S-component (Definition 4.25); the
/// quantified star size of an acyclic query is the S-star size of its
/// hypergraph with S = free variables (Definition 4.26). Star size 1
/// coincides with free-connexity, and Theorem 4.28 gives a counting
/// algorithm running in (||D|| + ||phi||)^O(star size).

namespace fgq {

/// One S-component: the edge ids it contains, all its vertices, and the
/// subset of its vertices lying in S.
struct SComponent {
  std::vector<int> edges;
  std::vector<int> vertices;
  std::vector<int> s_vertices;
};

/// Decomposes the hypergraph into S-components (Definition 4.23). Edges
/// fully contained in S belong to no component.
std::vector<SComponent> DecomposeSComponents(const Hypergraph& hg,
                                             const std::vector<int>& s);

/// Maximum independent set size among `vertices`, where two vertices are
/// dependent when some edge in `edges` contains both. Exact
/// branch-and-bound; intended for query-sized inputs.
size_t MaxIndependentSetSize(const Hypergraph& hg,
                             const std::vector<int>& vertices,
                             const std::vector<int>& edges);

/// The S-star size of hg (Definition 4.25); at least 1 by convention so
/// that star size 1 <=> free-connex also covers quantifier-free queries.
size_t StarSize(const Hypergraph& hg, const std::vector<int>& s);

/// The quantified star size of a query (Definition 4.26).
size_t QuantifiedStarSize(const ConjunctiveQuery& q);

}  // namespace fgq

#endif  // FGQ_HYPERGRAPH_STAR_SIZE_H_
