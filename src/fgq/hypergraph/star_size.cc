#include "fgq/hypergraph/star_size.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

namespace fgq {

namespace {

/// Tiny union-find used for S-component discovery.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

std::vector<SComponent> DecomposeSComponents(const Hypergraph& hg,
                                             const std::vector<int>& s) {
  std::set<int> s_set(s.begin(), s.end());
  UnionFind uf(hg.NumVertices());

  // Connect the non-S vertices within every edge: inside one edge they are
  // pairwise path-connected in H[V - S].
  for (size_t e = 0; e < hg.NumEdges(); ++e) {
    int first = -1;
    for (int v : hg.Edge(static_cast<int>(e))) {
      if (s_set.count(v)) continue;
      if (first < 0) {
        first = v;
      } else {
        uf.Union(first, v);
      }
    }
  }

  // Group edges by the component of their non-S part.
  std::map<int, SComponent> by_root;
  for (size_t e = 0; e < hg.NumEdges(); ++e) {
    int rep = -1;
    for (int v : hg.Edge(static_cast<int>(e))) {
      if (!s_set.count(v)) {
        rep = uf.Find(v);
        break;
      }
    }
    if (rep < 0) continue;  // Edge fully inside S: no component.
    by_root[rep].edges.push_back(static_cast<int>(e));
  }

  std::vector<SComponent> out;
  for (auto& [root, comp] : by_root) {
    std::set<int> verts;
    for (int e : comp.edges) {
      verts.insert(hg.Edge(e).begin(), hg.Edge(e).end());
    }
    comp.vertices.assign(verts.begin(), verts.end());
    for (int v : comp.vertices) {
      if (s_set.count(v)) comp.s_vertices.push_back(v);
    }
    out.push_back(std::move(comp));
  }
  return out;
}

namespace {

// Branch-and-bound maximum independent set on the conflict graph induced
// by `edges` over `vertices`.
size_t MisRecurse(const std::vector<std::vector<bool>>& conflict,
                  std::vector<int>& order, size_t idx,
                  std::vector<int>& chosen) {
  if (idx == order.size()) return chosen.size();
  int v = order[idx];
  // Branch 1: skip v.
  size_t best = MisRecurse(conflict, order, idx + 1, chosen);
  // Branch 2: take v if compatible.
  bool compatible = true;
  for (int c : chosen) {
    if (conflict[v][c]) {
      compatible = false;
      break;
    }
  }
  if (compatible) {
    chosen.push_back(v);
    best = std::max(best, MisRecurse(conflict, order, idx + 1, chosen));
    chosen.pop_back();
  }
  return best;
}

}  // namespace

size_t MaxIndependentSetSize(const Hypergraph& hg,
                             const std::vector<int>& vertices,
                             const std::vector<int>& edges) {
  if (vertices.empty()) return 0;
  // Map vertices to local ids.
  std::map<int, int> local;
  for (size_t i = 0; i < vertices.size(); ++i) {
    local[vertices[i]] = static_cast<int>(i);
  }
  std::vector<std::vector<bool>> conflict(
      vertices.size(), std::vector<bool>(vertices.size(), false));
  for (int e : edges) {
    const std::vector<int>& vs = hg.Edge(e);
    for (size_t i = 0; i < vs.size(); ++i) {
      auto it_i = local.find(vs[i]);
      if (it_i == local.end()) continue;
      for (size_t j = i + 1; j < vs.size(); ++j) {
        auto it_j = local.find(vs[j]);
        if (it_j == local.end()) continue;
        conflict[it_i->second][it_j->second] = true;
        conflict[it_j->second][it_i->second] = true;
      }
    }
  }
  std::vector<int> order(vertices.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<int> chosen;
  return MisRecurse(conflict, order, 0, chosen);
}

size_t StarSize(const Hypergraph& hg, const std::vector<int>& s) {
  size_t best = 1;
  for (const SComponent& comp : DecomposeSComponents(hg, s)) {
    best = std::max(
        best, MaxIndependentSetSize(hg, comp.s_vertices, comp.edges));
  }
  return best;
}

size_t QuantifiedStarSize(const ConjunctiveQuery& q) {
  Hypergraph hg = Hypergraph::FromQuery(q);
  std::vector<int> s;
  for (const std::string& v : q.head()) {
    int id = hg.FindVertex(v);
    if (id >= 0) s.push_back(id);
  }
  return StarSize(hg, s);
}

}  // namespace fgq
