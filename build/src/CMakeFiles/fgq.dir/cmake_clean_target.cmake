file(REMOVE_RECURSE
  "libfgq.a"
)
