# Empty compiler generated dependencies file for fgq.
# This may be replaced when dependencies are built.
